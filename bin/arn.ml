(* arn — command-line front end for the alternate-routing library.

   Subcommands expose the building blocks (Erlang calculations,
   protection levels, path enumeration, the traffic-matrix fit, the
   cut-set bound) and full simulations of the paper's networks. *)

open Cmdliner
open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core
module Path_dv = Arnet_paths.Distance_vector
module Dalfar = Arnet_paths.Dalfar
module Obs = Arnet_obs

let ppf = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* shared argument parsing *)

let network_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "nsfnet" -> Ok `Nsfnet
    | "quadrangle" | "k4" -> Ok `Quadrangle
    | s -> (
      match String.split_on_char ':' s with
      | [ "mesh"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 2 -> Ok (`Mesh n)
        | _ -> Error (`Msg "mesh:N needs N >= 2"))
      | [ "ring"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 3 -> Ok (`Ring n)
        | _ -> Error (`Msg "ring:N needs N >= 3"))
      | "file" :: rest when rest <> [] ->
        Ok (`File (String.concat ":" rest))
      | _ -> Error (`Msg (Printf.sprintf "unknown network %S" s)))
  in
  let print ppf = function
    | `Nsfnet -> Format.fprintf ppf "nsfnet"
    | `Quadrangle -> Format.fprintf ppf "quadrangle"
    | `Mesh n -> Format.fprintf ppf "mesh:%d" n
    | `Ring n -> Format.fprintf ppf "ring:%d" n
    | `File p -> Format.fprintf ppf "file:%s" p
  in
  Arg.conv (parse, print)

let network_arg =
  let doc =
    "Network: $(b,nsfnet), $(b,quadrangle), $(b,mesh:N), $(b,ring:N) or \
     $(b,file:PATH) (see the spec format in lib/serial)."
  in
  Arg.(value & opt network_conv `Nsfnet & info [ "network"; "n" ] ~doc)

let capacity_arg =
  let doc = "Link capacity (calls) for synthetic networks." in
  Arg.(value & opt int 100 & info [ "capacity"; "c" ] ~doc)

let load_spec path =
  match Arnet_serial.Spec.of_file path with
  | spec -> spec
  | exception Arnet_serial.Spec.Parse_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1

let build_graph network capacity =
  match network with
  | `Nsfnet -> Nsfnet.graph ()
  | `Quadrangle -> Builders.full_mesh ~nodes:4 ~capacity
  | `Mesh n -> Builders.full_mesh ~nodes:n ~capacity
  | `Ring n -> Builders.ring ~nodes:n ~capacity
  | `File path -> (load_spec path).Arnet_serial.Spec.graph

(* the traffic matrix a network implies: NSFNet -> the fitted nominal,
   file specs -> their demand lines, synthetic -> uniform demand *)
let build_matrix network graph ~scale ~demand =
  match network with
  | `Nsfnet ->
    let _, m = Arnet_experiments.Internet.nominal () in
    Matrix.scale m scale
  | `File path -> (
    match (load_spec path).Arnet_serial.Spec.matrix with
    | Some m -> Matrix.scale m scale
    | None ->
      Matrix.uniform ~nodes:(Graph.node_count graph) ~demand:(demand *. scale))
  | `Quadrangle | `Mesh _ | `Ring _ ->
    Matrix.uniform ~nodes:(Graph.node_count graph) ~demand:(demand *. scale)

let quick_arg =
  let doc = "Fewer seeds and a shorter window (for iteration)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let format_conv =
  let parse = function
    | "text" -> Ok `Text
    | "json" -> Ok `Json
    | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
  in
  let print ppf = function
    | `Text -> Format.fprintf ppf "text"
    | `Json -> Format.fprintf ppf "json"
  in
  Arg.conv (parse, print)

let network_to_string = function
  | `Nsfnet -> "nsfnet"
  | `Quadrangle -> "quadrangle"
  | `Mesh n -> Printf.sprintf "mesh:%d" n
  | `Ring n -> Printf.sprintf "ring:%d" n
  | `File p -> Printf.sprintf "file:%s" p

let config_of_quick quick =
  let base =
    if quick then Arnet_experiments.Config.quick
    else Arnet_experiments.Config.paper
  in
  (* ARNET_DOMAINS parallelizes replications everywhere a config flows;
     results are bit-identical to the sequential run *)
  { base with Arnet_experiments.Config.domains = Pool.of_env () }

(* ------------------------------------------------------------------ *)
(* arn erlang *)

let erlang_cmd =
  let offered =
    Arg.(required & pos 0 (some float) None & info [] ~docv:"OFFERED")
  in
  let capacity =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"CAPACITY")
  in
  let run offered capacity =
    let b = Arnet_erlang.Erlang_b.blocking ~offered ~capacity in
    Format.fprintf ppf "B(%g, %d)        = %.8f@." offered capacity b;
    Format.fprintf ppf "carried          = %.4f Erlangs@."
      (Arnet_erlang.Erlang_b.mean_carried ~offered ~capacity);
    Format.fprintf ppf "loss rate        = %.4f calls/unit time@."
      (Arnet_erlang.Erlang_b.loss_rate ~offered ~capacity);
    Format.fprintf ppf "d(loss)/d(load)  = %.6f@."
      (Arnet_erlang.Erlang_b.loss_rate_derivative ~offered ~capacity)
  in
  Cmd.v
    (Cmd.info "erlang" ~doc:"Erlang-B blocking and derived quantities")
    Term.(const run $ offered $ capacity)

(* ------------------------------------------------------------------ *)
(* arn protection *)

let protection_cmd =
  let offered =
    Arg.(required & pos 0 (some float) None & info [] ~docv:"LOAD")
  in
  let capacity =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"CAPACITY")
  in
  let h =
    let doc = "Maximum alternate path hop length H." in
    Arg.(value & opt int 6 & info [ "max-hops"; "H" ] ~doc)
  in
  let run offered capacity h =
    let r = Protection.level ~offered ~capacity ~h in
    Format.fprintf ppf
      "smallest r with B(%g,%d)/B(%g,%d-r) <= 1/%d:  r = %d@." offered
      capacity offered capacity h r;
    Format.fprintf ppf "bound at that r: %.6f (target %.6f)@."
      (Protection.bound ~offered ~capacity ~reserve:r)
      (1. /. float_of_int h)
  in
  Cmd.v
    (Cmd.info "protection"
       ~doc:"State-protection level for a link (Section 3.1)")
    Term.(const run $ offered $ capacity $ h)

(* ------------------------------------------------------------------ *)
(* arn paths *)

let paths_cmd =
  let src = Arg.(required & pos 0 (some int) None & info [] ~docv:"SRC") in
  let dst = Arg.(required & pos 1 (some int) None & info [] ~docv:"DST") in
  let h =
    let doc = "Cap alternate hop length." in
    Arg.(value & opt (some int) None & info [ "max-hops"; "H" ] ~doc)
  in
  let run network capacity src dst h =
    let g = build_graph network capacity in
    let routes = Route_table.build ?h g in
    if not (Route_table.has_route routes ~src ~dst) then
      Format.fprintf ppf "no route from %d to %d@." src dst
    else begin
      Format.fprintf ppf "primary:   %s@."
        (Path.to_string (Route_table.primary routes ~src ~dst));
      List.iteri
        (fun i p ->
          Format.fprintf ppf "alt %2d:    %s (%d hops)@." (i + 1)
            (Path.to_string p) (Path.hops p))
        (Route_table.alternates routes ~src ~dst)
    end
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Primary and alternate paths for an O-D pair")
    Term.(const run $ network_arg $ capacity_arg $ src $ dst $ h)

(* ------------------------------------------------------------------ *)
(* arn topology *)

let topology_cmd =
  let dot =
    let doc = "Emit graphviz instead of a link table." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let run network capacity dot =
    let g = build_graph network capacity in
    if dot then print_string (Graph.to_dot g)
    else Format.fprintf ppf "%a@." Graph.pp g
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Describe a built-in network")
    Term.(const run $ network_arg $ capacity_arg $ dot)

(* ------------------------------------------------------------------ *)
(* arn topo: real-topology ingestion (GraphViz dot, Topology-Zoo GML) *)

module Ingest = Arnet_ingest

let topo_format_conv =
  let parse = function
    | "gml" -> Ok `Gml
    | "dot" | "gv" -> Ok `Dot
    | s -> Error (`Msg (Printf.sprintf "unknown topology format %S" s))
  in
  let print ppf = function
    | `Gml -> Format.fprintf ppf "gml"
    | `Dot -> Format.fprintf ppf "dot"
  in
  Arg.conv (parse, print)

let topo_format_of_path path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".gml" -> Some `Gml
  | ".dot" | ".gv" -> Some `Dot
  | _ -> None

(* Imported meshes can be big and sparse, where the unrestricted
   default H = node_count - 1 makes alternate enumeration explode; when
   --topology is given without an explicit -H, cap alternates at the
   deployment-style hop length the compile bench uses. *)
let default_import_h = 6

let import_h h topology =
  match (h, topology) with
  | None, Some _ -> Some default_import_h
  | _ -> h

let load_topo ?format path =
  let format =
    match format with
    | Some f -> f
    | None -> (
      match topo_format_of_path path with
      | Some f -> f
      | None ->
        Printf.eprintf
          "arn topo: %s: unrecognised extension (expected .gml, .dot or \
           .gv); pass --format\n"
          path;
        exit 2)
  in
  try
    match format with
    | `Gml -> Ingest.Gml.load path
    | `Dot -> Ingest.Dot.load path
  with
  | Ingest.Gml.Error msg | Ingest.Dot.Error msg ->
    Printf.eprintf "arn topo: %s: %s\n" path msg;
    exit 2
  | Sys_error msg ->
    Printf.eprintf "arn topo: %s\n" msg;
    exit 2

let render_topo ~format topo =
  match format with
  | `Gml -> Ingest.Gml.to_gml topo
  | `Dot -> Ingest.Dot.to_dot topo

let topo_write out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.fprintf ppf "wrote %s@." path

let topo_file_arg =
  let doc = "Topology file: Topology-Zoo GML ($(b,.gml)) or GraphViz \
             ($(b,.dot), $(b,.gv))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let topo_fmt_arg =
  let doc = "Input format ($(b,gml) or $(b,dot)); default from the file \
             extension." in
  Arg.(value & opt (some topo_format_conv) None & info [ "format" ] ~doc)

let topo_out_arg =
  let doc = "Write to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let topo_to_arg default =
  let doc = "Output codec: $(b,gml) or $(b,dot)." in
  Arg.(value & opt topo_format_conv default & info [ "to" ] ~doc)

let topo_import_cmd =
  let run file fmt out =
    let t = load_topo ?format:fmt file in
    Format.fprintf ppf "imported %s: %d nodes, %d links@." t.Ingest.Topo.name
      (Graph.node_count t.Ingest.Topo.graph)
      (Graph.link_count t.Ingest.Topo.graph);
    if t.Ingest.Topo.merged_parallel > 0 then
      Format.fprintf ppf "  merged %d parallel edge(s), capacities summed@."
        t.Ingest.Topo.merged_parallel;
    if t.Ingest.Topo.dropped_self_loops > 0 then
      Format.fprintf ppf "  dropped %d self loop(s)@."
        t.Ingest.Topo.dropped_self_loops;
    (* -o normalises: the canonical GML is a fixpoint of parse/print *)
    Option.iter
      (fun path -> topo_write (Some path) (Ingest.Gml.to_gml t))
      out
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Parse a topology file, report what the importer cleaned up, \
          and optionally write the canonical GML form")
    Term.(const run $ topo_file_arg $ topo_fmt_arg $ topo_out_arg)

let topo_export_cmd =
  let run file fmt target out =
    topo_write out (render_topo ~format:target (load_topo ?format:fmt file))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Convert a topology file between the GML and dot codecs \
          (export then import is the identity)")
    Term.(
      const run $ topo_file_arg $ topo_fmt_arg $ topo_to_arg `Dot
      $ topo_out_arg)

let topo_stats_cmd =
  let run file fmt =
    let t = load_topo ?format:fmt file in
    Format.fprintf ppf "%a@."
      (Ingest.Topo.pp_summary ~name:t.Ingest.Topo.name)
      (Ingest.Topo.summarize t)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Summarize a topology file")
    Term.(const run $ topo_file_arg $ topo_fmt_arg)

let topo_gen_cmd =
  let nodes =
    let doc = "Number of nodes (>= 2)." in
    Arg.(value & opt int 100 & info [ "nodes"; "n" ] ~doc)
  in
  let degree =
    let doc = "Maximum undirected degree (>= 2)." in
    Arg.(value & opt int 4 & info [ "degree" ] ~doc)
  in
  let seed =
    let doc = "Generator seed; the mesh is a pure function of \
               (seed, capacity, degree, nodes)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~doc)
  in
  let run nodes degree capacity seed target out =
    let t =
      try Ingest.Mesh.random_mesh ~seed ~capacity ~degree ~nodes ()
      with Invalid_argument msg ->
        Printf.eprintf "arn topo gen: %s\n" msg;
        exit 2
    in
    topo_write out (render_topo ~format:target t)
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a deterministic ISP-like mesh (sparse, geographic, \
          degree-bounded) for scale tests")
    Term.(
      const run $ nodes $ degree $ capacity_arg $ seed $ topo_to_arg `Gml
      $ topo_out_arg)

let topo_cmd =
  Cmd.group
    (Cmd.info "topo"
       ~doc:
         "Import, convert, summarize and generate network topologies \
          (Topology-Zoo GML, GraphViz dot)")
    [ topo_import_cmd; topo_export_cmd; topo_stats_cmd; topo_gen_cmd ]

(* ------------------------------------------------------------------ *)
(* arn fit *)

let fit_cmd =
  let run () =
    let _, fit = Fit.nsfnet_nominal () in
    Format.fprintf ppf
      "fitted NSFNet nominal matrix: %d iterations, max relative link-load \
       error %.2e, total %.1f Erlangs@."
      fit.Fit.iterations fit.Fit.max_relative_error
      (Matrix.total fit.Fit.matrix);
    Format.fprintf ppf "%a@." Matrix.pp fit.Fit.matrix
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:"Reconstruct the NSFNet traffic matrix from Table 1 loads")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* arn bound *)

let bound_cmd =
  let scale =
    let doc = "Scale factor on the nominal/base traffic matrix." in
    Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~doc)
  in
  let demand =
    let doc = "Per-pair demand (synthetic networks only)." in
    Arg.(value & opt float 80. & info [ "demand"; "d" ] ~doc)
  in
  let run network capacity scale demand =
    let g = build_graph network capacity in
    let matrix = build_matrix network g ~scale ~demand in
    let bound, cut = Arnet_bound.Erlang_bound.compute_with_argmax g matrix in
    Format.fprintf ppf "erlang cut-set bound: %.6f@." bound;
    let members =
      Array.to_list (Array.mapi (fun v b -> (v, b)) cut)
      |> List.filter_map (fun (v, b) -> if b then Some (string_of_int v) else None)
    in
    Format.fprintf ppf "binding cut S = {%s}@." (String.concat "," members)
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"Erlang cut-set lower bound on network blocking")
    Term.(const run $ network_arg $ capacity_arg $ scale $ demand)

(* ------------------------------------------------------------------ *)
(* arn simulate *)

let simulate_cmd =
  let scale =
    let doc = "Traffic scale (NSFNet) or per-pair Erlangs (synthetic)." in
    Arg.(value & opt float 1.0 & info [ "load"; "l" ] ~doc)
  in
  let topology =
    let doc =
      "Simulate an imported topology file ($(b,.gml), $(b,.dot)/$(b,.gv)) \
       instead of a built-in network, with degree-weighted gravity \
       traffic scaled by $(b,--load).  Alternates are capped at H = 6 \
       unless $(b,--max-hops) says otherwise (the unrestricted default \
       explodes on large sparse meshes)."
    in
    Arg.(
      value & opt (some string) None & info [ "topology" ] ~docv:"FILE" ~doc)
  in
  let h =
    let doc = "Maximum alternate hop length." in
    Arg.(value & opt (some int) None & info [ "max-hops"; "H" ] ~doc)
  in
  let with_ott =
    let doc = "Include the Ott-Krishnan shadow-price scheme." in
    Arg.(value & flag & info [ "ott-krishnan" ] ~doc)
  in
  let trace_file =
    let doc =
      "Stream every simulation event (arrivals, per-alternate \
       trunk-reservation rejections, admits, blocks, departures) as JSON \
       lines to $(docv).  Summarize later with $(b,arn trace summarize)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_file =
    let doc =
      "Write a Prometheus text-format metrics snapshot (counters, \
       occupancy gauges, holding-time and hop histograms) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let json =
    let doc = "Emit the results as JSON on stdout instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let domains_opt =
    let doc =
      "Shard the (seed, policy) replication runs across $(docv) OCaml \
       domains.  Statistics are bit-identical to a sequential run.  \
       Defaults to the ARNET_DOMAINS environment variable, or 1.  \
       Forced to 1 when $(b,--trace) or $(b,--metrics) streams events \
       to a shared sink."
    in
    let positive =
      (* shared validation with ARNET_DOMAINS parsing: one line naming
         the valid range, e.g. on --domains 0 or a negative count *)
      Arg.conv' (Pool.domains_of_string, Format.pp_print_int)
    in
    Arg.(
      value & opt (some positive) None & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let run network capacity scale h with_ott quick topology trace_file
      metrics_file json domains_opt =
    let config = config_of_quick quick in
    (* an imported topology overrides --network: its gravity matrix is
       the natural demand for a graph with no fitted matrix of its own *)
    let g, matrix =
      match topology with
      | Some path ->
        let t = load_topo path in
        ( t.Ingest.Topo.graph,
          Matrix.scale (Ingest.Mesh.gravity t) scale )
      | None ->
        let g = build_graph network capacity in
        let matrix = build_matrix network g ~scale:1.0 ~demand:1.0 in
        let matrix =
          match network with
          | `Nsfnet | `File _ -> Matrix.scale matrix scale
          | `Quadrangle | `Mesh _ | `Ring _ ->
            Matrix.uniform ~nodes:(Graph.node_count g) ~demand:scale
        in
        (g, matrix)
    in
    let routes = Route_table.build ?h:(import_h h topology) g in
    (* observability: fan the event stream out to whichever consumers
       were requested; [None] leaves the engine hot path untouched *)
    let trace_sink = Option.map Obs.Jsonl.sink_of_file trace_file in
    let metrics_feed =
      Option.map
        (fun path -> (path, Obs.Metrics_sink.create (Obs.Metrics.create ())))
        metrics_file
    in
    let sink =
      match
        Option.to_list trace_sink
        @ Option.to_list (Option.map (fun (_, m) -> Obs.Metrics_sink.sink m)
                            metrics_feed)
      with
      | [] -> None
      | [ s ] -> Some s
      | sinks -> Some (Obs.Sink.tee sinks)
    in
    let observer = Option.map Obs.Sink.observer sink in
    let policies =
      [ Scheme.single_path ?observer routes;
        Scheme.uncontrolled ?observer routes;
        Scheme.controlled_auto ?observer ~matrix routes ]
      @ (if with_ott then [ Scheme.ott_krishnan ~matrix routes ] else [])
    in
    let { Arnet_experiments.Config.seeds; duration; warmup; domains } =
      config
    in
    let domains = Option.value ~default:domains domains_opt in
    let config = { config with Arnet_experiments.Config.domains } in
    if not json then
      Format.fprintf ppf "simulating (%s)...@."
        (Arnet_experiments.Config.describe config);
    let observe =
      Option.map (fun f ~seed:_ ~policy:_ -> Some f) observer
    in
    let results =
      Engine.replicate ~warmup ?observe ~domains ~seeds ~duration ~graph:g
        ~matrix ~policies ()
    in
    Option.iter Obs.Sink.close sink;
    Option.iter
      (fun (path, m) ->
        (* the same per-link capacity/r^k gauges the daemon's /metrics
           serves: one registry shape across sim and serve *)
        Obs.Metrics_sink.set_network m
          ~capacities:
            (Array.map (fun l -> l.Arnet_topology.Link.capacity)
               (Graph.links g))
          ~reserves:
            (Protection.levels routes matrix ~h:(Route_table.h routes));
        let oc = open_out path in
        output_string oc (Obs.Metrics.to_prometheus (Obs.Metrics_sink.registry m));
        close_out oc;
        if not json then Format.fprintf ppf "wrote %s@." path)
      metrics_feed;
    (match trace_file with
    | Some path when not json -> Format.fprintf ppf "wrote %s@." path
    | _ -> ());
    (* the cut-set bound enumerates every cut — exponential in nodes, and
       Cutset refuses past 24; on larger imports just omit the line *)
    let bound =
      if Graph.node_count g <= 24 then
        Some (Arnet_bound.Erlang_bound.compute g matrix)
      else None
    in
    if json then begin
      let summary_json (s : Stats.summary) =
        Obs.Jsonu.Obj
          [ ("mean", Obs.Jsonu.Float s.Stats.mean);
            ("std_error", Obs.Jsonu.Float s.Stats.std_error);
            ("replications", Obs.Jsonu.Int s.Stats.replications) ]
      in
      let run_json (st : Stats.t) =
        Obs.Jsonu.Obj
          [ ("offered", Obs.Jsonu.Int st.Stats.offered);
            ("blocked", Obs.Jsonu.Int st.Stats.blocked);
            ("carried_primary", Obs.Jsonu.Int st.Stats.carried_primary);
            ("carried_alternate", Obs.Jsonu.Int st.Stats.carried_alternate);
            ("blocking", Obs.Jsonu.Float (Stats.blocking st));
            ("alternate_fraction",
             Obs.Jsonu.Float (Stats.alternate_fraction st)) ]
      in
      let policy_json (name, runs) =
        Obs.Jsonu.Obj
          [ ("policy", Obs.Jsonu.String name);
            ("blocking", summary_json (Stats.blocking_summary runs));
            ("alternate_fraction",
             summary_json
               (Stats.summarize (List.map Stats.alternate_fraction runs)));
            ("runs", Obs.Jsonu.List (List.map run_json runs)) ]
      in
      let doc =
        Obs.Jsonu.Obj
          ([ ("network",
             Obs.Jsonu.String
               (match topology with
               | Some path -> "topo:" ^ path
               | None -> network_to_string network));
            ("load", Obs.Jsonu.Float scale);
            ("seeds", Obs.Jsonu.List (List.map (fun s -> Obs.Jsonu.Int s) seeds));
            ("duration", Obs.Jsonu.Float duration);
            ("warmup", Obs.Jsonu.Float warmup);
            ("policies", Obs.Jsonu.List (List.map policy_json results)) ]
          @
          match bound with
          | Some b -> [ ("erlang_bound", Obs.Jsonu.Float b) ]
          | None -> [])
      in
      print_endline (Obs.Jsonu.to_string doc)
    end
    else begin
      List.iter
        (fun (name, runs) ->
          let s = Stats.blocking_summary runs in
          let alt =
            Stats.summarize (List.map Stats.alternate_fraction runs)
          in
          Format.fprintf ppf
            "  %-22s blocking %.4f +/- %.4f   alternate-routed %.1f%%@." name
            s.Stats.mean s.Stats.std_error (100. *. alt.Stats.mean))
        results;
      Option.iter
        (fun b -> Format.fprintf ppf "  %-22s blocking %.4f@." "erlang-bound" b)
        bound
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Call-by-call simulation of the schemes")
    Term.(
      const run $ network_arg $ capacity_arg $ scale $ h $ with_ott
      $ quick_arg $ topology $ trace_file $ metrics_file $ json
      $ domains_opt)

(* ------------------------------------------------------------------ *)
(* arn experiment *)

let experiment_cmd =
  let exp_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "One of: fig1 fig2 fig3 fig6 table1 exp_h6 exp_fairness \
             exp_minloss exp_overload ext_cellular ext_bistability \
             ext_signalling ext_random_mesh ext_failure")
  in
  let csv =
    let doc = "Also write the sweep as CSV to this file (fig3/fig6 only)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc)
  in
  let write_csv csv points =
    match csv with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Arnet_experiments.Sweep.to_csv points);
      close_out oc;
      Format.fprintf ppf "wrote %s@." path
  in
  let run name quick csv =
    let config = config_of_quick quick in
    let module E = Arnet_experiments in
    match name with
    | "fig1" -> E.Fig1.print ppf (E.Fig1.run ())
    | "fig2" -> E.Fig2.print ppf (E.Fig2.run ())
    | "fig3" ->
      let points = E.Quadrangle.run ~config () in
      E.Quadrangle.print ppf points;
      write_csv csv points
    | "fig6" ->
      let points = E.Internet.run ~config () in
      E.Internet.print ppf points;
      write_csv csv points
    | "table1" -> E.Internet.print_table1 ppf (E.Internet.table1 ())
    | "exp_h6" ->
      E.Internet.print ppf
        (E.Internet.run ~h:6 ~with_ott_krishnan:false ~config ())
    | "exp_fairness" -> E.Internet.print_fairness ppf (E.Internet.fairness ~config ())
    | "exp_minloss" -> E.Minloss.print ppf (E.Minloss.run ~config ())
    | "ext_cellular" -> E.Cellular_exp.print ppf (E.Cellular_exp.run ~config ())
    | "ext_bistability" -> E.Bistability_exp.print ppf (E.Bistability_exp.run ~config ())
    | "ext_signalling" -> E.Signalling_exp.print ppf (E.Signalling_exp.run ~config ())
    | "ext_random_mesh" -> E.Random_mesh.print ppf (E.Random_mesh.run ~config ())
    | "exp_overload" -> E.Overload_exp.print ppf (E.Overload_exp.run ~config ())
    | "ext_failure" -> E.Failure_exp.print ppf (E.Failure_exp.run ~config ())
    | other -> Format.fprintf ppf "unknown experiment %S@." other
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one reproduction experiment")
    Term.(const run $ exp_name $ quick_arg $ csv)

(* ------------------------------------------------------------------ *)
(* arn dalfar *)

let dalfar_cmd =
  let src = Arg.(required & pos 0 (some int) None & info [] ~docv:"SRC") in
  let dst = Arg.(required & pos 1 (some int) None & info [] ~docv:"DST") in
  let h =
    let doc = "Hop budget for the set-up packet." in
    Arg.(value & opt int 11 & info [ "max-hops"; "H" ] ~doc)
  in
  let run network capacity src dst h =
    let g = build_graph network capacity in
    let dv = Path_dv.compute g in
    Format.fprintf ppf
      "distance-vector protocol: %d rounds, %d messages (agrees with \
       centralized BFS: %b)@."
      (Path_dv.rounds dv) (Path_dv.messages dv)
      (Path_dv.agrees_with_bfs g dv);
    let paths, stats = Dalfar.find_paths g dv ~src ~dst ~max_hops:h in
    Format.fprintf ppf
      "set-up exploration %d->%d (budget %d): %d paths, %d expansions, %d \
       crankbacks@."
      src dst h (List.length paths) stats.Dalfar.expansions
      stats.Dalfar.crankbacks;
    List.iteri
      (fun i p ->
        Format.fprintf ppf "  %2d. %s (%d hops)@." (i + 1) (Path.to_string p)
          (Path.hops p))
      paths
  in
  Cmd.v
    (Cmd.info "dalfar"
       ~doc:"Distributed alternate-route discovery with crankback")
    Term.(const run $ network_arg $ capacity_arg $ src $ dst $ h)

(* ------------------------------------------------------------------ *)
(* arn spec *)

let spec_cmd =
  let with_matrix =
    let doc = "Include the network's traffic matrix as demand lines." in
    Arg.(value & flag & info [ "with-demands" ] ~doc)
  in
  let run network capacity with_matrix =
    let g = build_graph network capacity in
    let matrix =
      if with_matrix then Some (build_matrix network g ~scale:1.0 ~demand:1.0)
      else None
    in
    print_string (Arnet_serial.Spec.to_string ?matrix g)
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:"Dump a network (optionally with demands) in the text format")
    Term.(const run $ network_arg $ capacity_arg $ with_matrix)

(* ------------------------------------------------------------------ *)
(* arn lint *)

let lint_cmd =
  let format_arg =
    let doc = "Output format: $(b,text) or $(b,json)." in
    Arg.(value & opt format_conv `Text & info [ "format"; "f" ] ~doc)
  in
  let strict =
    let doc = "Treat warnings and infos as findings (nonzero exit)." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let h =
    let doc = "Maximum alternate hop length H for the route table." in
    Arg.(value & opt (some int) None & info [ "max-hops"; "H" ] ~doc)
  in
  let demand =
    let doc = "Per-pair demand in Erlangs (synthetic networks only)." in
    Arg.(value & opt float 80. & info [ "demand"; "d" ] ~doc)
  in
  let scale =
    let doc = "Scale factor on the nominal/base traffic matrix." in
    Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~doc)
  in
  let reserve_conv =
    let parse s =
      match String.split_on_char '=' s with
      | [ k; r ] -> (
        match (int_of_string_opt k, int_of_string_opt r) with
        | Some k, Some r -> Ok (k, r)
        | _ -> Error (`Msg "expected LINK=RESERVE with integer parts"))
      | _ -> Error (`Msg "expected LINK=RESERVE")
    in
    let print ppf (k, r) = Format.fprintf ppf "%d=%d" k r in
    Arg.conv (parse, print)
  in
  let overrides =
    let doc =
      "Override the protection level of link $(i,LINK) (by id) to \
       $(i,RESERVE) before linting; repeatable.  The default levels come \
       from Protection.levels and are minimal by construction — use this \
       to audit a hand-tuned (or corrupted) deployment."
    in
    Arg.(
      value
      & opt_all reserve_conv []
      & info [ "reserve"; "r" ] ~docv:"LINK=RESERVE" ~doc)
  in
  let topology =
    let doc =
      "Lint an imported topology file ($(b,.gml), $(b,.dot)/$(b,.gv)) \
       instead of a built-in network: the import checks (merged parallel \
       edges, dropped self loops, missing coordinates, isolated nodes) \
       run alongside the structural ones, against degree-weighted \
       gravity traffic.  Alternates are capped at H = 6 unless \
       $(b,--max-hops) says otherwise."
    in
    Arg.(
      value & opt (some string) None & info [ "topology" ] ~docv:"FILE" ~doc)
  in
  let regional =
    let doc =
      "The configuration is meant to drive the regional failure model, \
       so nodes without coordinates are errors, not infos (only \
       meaningful with $(b,--topology))."
    in
    Arg.(value & flag & info [ "regional" ] ~doc)
  in
  let only =
    let doc =
      "Run only this check (repeatable): one of the names shown by \
       $(b,--list-checks)."
    in
    Arg.(value & opt_all string [] & info [ "check" ] ~docv:"NAME" ~doc)
  in
  let list_checks =
    let doc =
      "List every registered check with its diagnostic codes and exit \
       (includes the $(b,--source) pass)."
    in
    Arg.(value & flag & info [ "list"; "list-checks" ] ~doc)
  in
  let source =
    let doc =
      "Lint this repository's own OCaml sources for shared-mutable-state \
       sites instead of linting a network configuration (the network \
       arguments are ignored)."
    in
    Arg.(value & flag & info [ "source" ] ~doc)
  in
  let srcs =
    let doc =
      "Directory to scan under $(b,--source); repeatable.  Defaults to \
       $(b,lib)."
    in
    Arg.(value & opt_all string [] & info [ "src" ] ~docv:"DIR" ~doc)
  in
  let allow =
    let doc =
      "Shared-state allowlist for $(b,--source) (see lint/allow.sexp).  \
       The default path is used only when the file exists; an explicitly \
       given file must exist."
    in
    Arg.(
      value & opt (some string) None & info [ "allow" ] ~docv:"FILE" ~doc)
  in
  let run network capacity h scale demand format strict overrides topology
      regional only list_checks source srcs allow =
    let module A = Arnet_analysis in
    if list_checks then begin
      List.iter
        (fun (c : A.Check.t) ->
          Format.fprintf ppf "%-12s %s@." c.A.Check.name c.A.Check.describe;
          List.iter
            (fun (code, meaning) ->
              Format.fprintf ppf "  %-18s %s@." code meaning)
            c.A.Check.codes)
        (A.Check.registered ());
      Format.fprintf ppf "%-12s %s@." "source"
        "shared-mutable-state audit of this repository's own code \
         (--source)";
      List.iter
        (fun (code, meaning) ->
          Format.fprintf ppf "  %-18s %s@." code meaning)
        A.Src_check.codes
    end
    else if source then begin
      let dirs = match srcs with [] -> [ "lib" ] | dirs -> dirs in
      let allow_file =
        match allow with
        | Some path ->
          if not (Sys.file_exists path) then begin
            Printf.eprintf "arn lint: --allow %s: no such file\n" path;
            exit 2
          end;
          Some path
        | None ->
          let default = "lint/allow.sexp" in
          if Sys.file_exists default then Some default else None
      in
      let findings =
        try A.Src_check.run ?allow_file ~dirs ()
        with
        | A.Allowlist.Parse_error (line, msg) ->
          Printf.eprintf "arn lint: %s: line %d: %s\n"
            (Option.value ~default:"allowlist" allow_file)
            line msg;
          exit 2
        | Sys_error msg ->
          Printf.eprintf "arn lint: %s\n" msg;
          exit 2
      in
      (match format with
      | `Text -> Format.fprintf ppf "%a" A.Lint.pp_text findings
      | `Json -> Format.fprintf ppf "%s@." (A.Lint.to_json findings));
      exit (A.Lint.exit_code ~strict findings)
    end
    else begin
      let config =
        (* exit 2 on anything that prevents even assembling the
           configuration: unreadable spec files, out-of-range overrides,
           a bad H *)
        try
          (* load file specs directly: parse failures must reach the
             catch below (exit 2), not load_spec's generic [exit 1],
             which would collide with "1 = findings" *)
          let g, spec_matrix, import =
            match topology with
            | Some path ->
              (* load_topo exits 2 on parse errors itself, matching the
                 invalid-configuration convention *)
              let t = load_topo path in
              ( t.Ingest.Topo.graph,
                Some (Matrix.scale (Ingest.Mesh.gravity t) scale),
                Some
                  { A.Check.coords = t.Ingest.Topo.coords;
                    merged_parallel = t.Ingest.Topo.merged_parallel;
                    dropped_self_loops = t.Ingest.Topo.dropped_self_loops } )
            | None -> (
              match network with
              | `File path ->
                let spec = Arnet_serial.Spec.of_file path in
                ( spec.Arnet_serial.Spec.graph,
                  spec.Arnet_serial.Spec.matrix,
                  None )
              | _ -> (build_graph network capacity, None, None))
          in
          let matrix =
            match (topology, network, spec_matrix) with
            | Some _, _, Some m -> m
            | _, `File _, Some m -> Matrix.scale m scale
            | _, `File _, None ->
              Matrix.uniform
                ~nodes:(Graph.node_count g)
                ~demand:(demand *. scale)
            | _ -> build_matrix network g ~scale ~demand
          in
          let routes = Route_table.build ?h:(import_h h topology) g in
          let reserves =
            Protection.levels routes matrix ~h:(Route_table.h routes)
          in
          List.iter
            (fun (k, r) ->
              if k < 0 || k >= Array.length reserves then
                invalid_arg
                  (Printf.sprintf "--reserve %d=%d: no link with id %d" k r k);
              reserves.(k) <- r)
            overrides;
          A.Check.config ~routes ~matrix ~reserves ?import ~regional g
        with
        | Invalid_argument msg | Failure msg | Sys_error msg ->
          Printf.eprintf "arn lint: invalid configuration: %s\n" msg;
          exit 2
        | Arnet_serial.Spec.Parse_error (line, msg) ->
          Printf.eprintf "arn lint: invalid configuration: line %d: %s\n"
            line msg;
          exit 2
      in
      let only = match only with [] -> None | names -> Some names in
      let findings =
        try A.Lint.run ?only config
        with Invalid_argument msg ->
          Printf.eprintf "arn lint: %s\n" msg;
          exit 2
      in
      (match format with
      | `Text -> Format.fprintf ppf "%a" A.Lint.pp_text findings
      | `Json -> Format.fprintf ppf "%s@." (A.Lint.to_json findings));
      exit (A.Lint.exit_code ~strict findings)
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify a routing configuration (topology, routes, \
          protection levels, traffic) before running it — or, with \
          $(b,--source), audit this repository's own code for unguarded \
          shared mutable state"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "0 on a clean configuration (no error-severity findings;";
           `Noblank;
           `P "with $(b,--strict), no findings at all);";
           `Noblank;
           `P "1 when findings remain;";
           `Noblank;
           `P
             "2 when the configuration (or, under $(b,--source), the \
              allowlist or a scan directory) cannot be loaded at all.";
         ])
    Term.(
      const run $ network_arg $ capacity_arg $ h $ scale $ demand
      $ format_arg $ strict $ overrides $ topology $ regional $ only
      $ list_checks $ source $ srcs $ allow)

(* ------------------------------------------------------------------ *)
(* arn trace *)

let trace_summarize_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
           ~doc:"JSON-lines trace written by $(b,arn simulate --trace).")
  in
  let format_arg =
    let doc = "Output format: $(b,text) or $(b,json)." in
    Arg.(value & opt format_conv `Text & info [ "format"; "f" ] ~doc)
  in
  let run file format =
    let counters = Obs.Counters.create () in
    (try
       Obs.Jsonl.fold_file file ~init:() ~f:(fun () ev ->
           Obs.Counters.emit counters ev)
     with
    | Sys_error msg ->
      Printf.eprintf "arn trace summarize: %s\n" msg;
      exit 2
    | Obs.Jsonu.Parse_error msg ->
      Printf.eprintf "arn trace summarize: %s\n" msg;
      exit 2);
    let groups = Obs.Counters.by_policy counters in
    if groups = [] then begin
      Printf.eprintf "arn trace summarize: %s holds no events\n" file;
      exit 2
    end;
    (* pool decision detail across a policy's replications *)
    let pooled_rejections runs =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun r ->
          List.iter
            (fun (link, n) ->
              let prev = Option.value ~default:0 (Hashtbl.find_opt tbl link) in
              Hashtbl.replace tbl link (prev + n))
            (Obs.Counters.rejections_by_link r))
        runs;
      Hashtbl.fold (fun link n acc -> (link, n) :: acc) tbl []
      |> List.sort compare
    in
    let sum f runs = List.fold_left (fun acc r -> acc + f r) 0 runs in
    match format with
    | `Json ->
      let policy_json (policy, runs) =
        let blocking =
          Stats.summarize (List.map Obs.Counters.blocking runs)
        in
        let alt =
          Stats.summarize (List.map Obs.Counters.alternate_fraction runs)
        in
        Obs.Jsonu.Obj
          [ ("policy", Obs.Jsonu.String policy);
            ("runs", Obs.Jsonu.Int (List.length runs));
            ("blocking",
             Obs.Jsonu.Obj
               [ ("mean", Obs.Jsonu.Float blocking.Stats.mean);
                 ("std_error", Obs.Jsonu.Float blocking.Stats.std_error) ]);
            ("alternate_fraction", Obs.Jsonu.Float alt.Stats.mean);
            ("offered", Obs.Jsonu.Int (sum (fun r -> r.Obs.Counters.offered) runs));
            ("blocked", Obs.Jsonu.Int (sum (fun r -> r.Obs.Counters.blocked) runs));
            ("carried_primary",
             Obs.Jsonu.Int (sum (fun r -> r.Obs.Counters.carried_primary) runs));
            ("carried_alternate",
             Obs.Jsonu.Int (sum (fun r -> r.Obs.Counters.carried_alternate) runs));
            ("primary_attempts",
             Obs.Jsonu.Int (sum (fun r -> r.Obs.Counters.primary_attempts) runs));
            ("primary_admitted",
             Obs.Jsonu.Int (sum (fun r -> r.Obs.Counters.primary_admitted) runs));
            ("alternate_rejections",
             Obs.Jsonu.Int
               (sum (fun r -> r.Obs.Counters.alternate_rejections) runs));
            ("rejections_by_link",
             Obs.Jsonu.Obj
               (List.map
                  (fun (link, n) -> (string_of_int link, Obs.Jsonu.Int n))
                  (pooled_rejections runs))) ]
      in
      let doc =
        Obs.Jsonu.Obj
          [ ("file", Obs.Jsonu.String file);
            ("events", Obs.Jsonu.Int (Obs.Counters.total_events counters));
            ("runs",
             Obs.Jsonu.Int (List.length (Obs.Counters.runs counters)));
            ("policies", Obs.Jsonu.List (List.map policy_json groups)) ]
      in
      print_endline (Obs.Jsonu.to_string doc)
    | `Text ->
      Format.fprintf ppf "%s: %d events, %d runs, %d policies@." file
        (Obs.Counters.total_events counters)
        (List.length (Obs.Counters.runs counters))
        (List.length groups);
      List.iter
        (fun (policy, runs) ->
          let blocking =
            Stats.summarize (List.map Obs.Counters.blocking runs)
          in
          let alt =
            Stats.summarize (List.map Obs.Counters.alternate_fraction runs)
          in
          Format.fprintf ppf
            "  %-22s blocking %.4f +/- %.4f   alternate-routed %.1f%%@."
            policy blocking.Stats.mean blocking.Stats.std_error
            (100. *. alt.Stats.mean);
          let attempts = sum (fun r -> r.Obs.Counters.primary_attempts) runs in
          let admitted = sum (fun r -> r.Obs.Counters.primary_admitted) runs in
          if attempts > 0 then
            Format.fprintf ppf
              "    primary attempts %d admitted %d (%.1f%%)@." attempts
              admitted
              (100. *. float_of_int admitted /. float_of_int attempts);
          let rejections =
            sum (fun r -> r.Obs.Counters.alternate_rejections) runs
          in
          if rejections > 0 then begin
            let by_link =
              pooled_rejections runs
              |> List.sort (fun (_, a) (_, b) -> compare b a)
            in
            let top = List.filteri (fun i _ -> i < 8) by_link in
            Format.fprintf ppf
              "    trunk-reservation rejections %d on %d links (top:%s%s)@."
              rejections (List.length by_link)
              (String.concat ""
                 (List.map
                    (fun (link, n) -> Printf.sprintf " %d=%d" link n)
                    top))
              (if List.length by_link > 8 then " ..." else "")
          end)
        groups
  in
  Cmd.v
    (Cmd.info "summarize"
       ~doc:
         "Reconstruct blocking and overflow statistics from a trace file \
          (warm-up windows honoured per run, so the figures match the \
          originating simulation)")
    Term.(const run $ file $ format_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect JSON-lines event traces")
    [ trace_summarize_cmd ]

(* ------------------------------------------------------------------ *)
(* arn adaptive *)

let adaptive_cmd =
  let scale =
    let doc = "Load scale on the nominal NSFNet matrix." in
    Arg.(value & opt float 1.0 & info [ "load"; "l" ] ~doc)
  in
  let run scale quick =
    let config = config_of_quick quick in
    Format.fprintf ppf
      "NSFNet at %.1fx nominal: a-priori vs estimated protection (%s)@."
      scale
      (Arnet_experiments.Config.describe config);
    Arnet_experiments.Robustness.print_adaptive ppf
      (Arnet_experiments.Robustness.adaptive ~scale ~config ())
  in
  Cmd.v
    (Cmd.info "adaptive"
       ~doc:"Distributed load estimation vs a-priori protection levels")
    Term.(const run $ scale $ quick_arg)

(* ------------------------------------------------------------------ *)
(* arn mdp *)

let mdp_cmd =
  let load =
    let doc = "Erlangs per stream on the triangle model." in
    Arg.(value & opt float 7. & info [ "load"; "l" ] ~doc)
  in
  let capacity =
    let doc = "Capacity of each of the three links." in
    Arg.(value & opt int 8 & info [ "capacity"; "c" ] ~doc)
  in
  let run load capacity =
    let module M = Arnet_mdp.Loss_mdp in
    let m =
      M.make
        ~capacities:(Array.make 3 capacity)
        ~arrivals:(Array.make 3 load)
        ~routes:[ (0, [ 0 ]); (1, [ 1 ]); (2, [ 2 ]); (2, [ 0; 1 ]) ]
    in
    Format.fprintf ppf
      "directed triangle, C=%d, %g Erlangs/stream (%d states, %d routes)@."
      capacity load (M.state_count m) (M.route_count m);
    let r = Protection.level ~offered:load ~capacity ~h:2 in
    Format.fprintf ppf "  %-22s %.6f@." "optimal" (M.optimal_blocking m);
    Format.fprintf ppf "  %-22s %.6f@." "single-path"
      (M.policy_blocking m (M.single_path_policy m));
    Format.fprintf ppf "  %-22s %.6f@." "uncontrolled"
      (M.policy_blocking m (M.uncontrolled_policy m));
    Format.fprintf ppf "  %-22s %.6f  (r=%d)@." "controlled (H=2)"
      (M.policy_blocking m
         (M.controlled_policy m ~reserves:(Array.make 3 r)))
      r;
    match M.alternate_acceptance_threshold m ~od:2 with
    | Some r_star ->
      Format.fprintf ppf
        "  optimal policy is an occupancy threshold with r* = %d@." r_star
    | None ->
      Format.fprintf ppf
        "  optimal policy is not a pure occupancy threshold (depends on \
         call composition)@."
  in
  Cmd.v
    (Cmd.info "mdp"
       ~doc:"Exact Markov-decision analysis of the triangle model")
    Term.(const run $ load $ capacity)

(* ------------------------------------------------------------------ *)
(* arn serve / arn load *)

module Service = Arnet_service

let addr_conv =
  Arg.conv'
    ( Service.Server.addr_of_string,
      fun ppf a -> Format.pp_print_string ppf (Service.Server.addr_to_string a)
    )

let default_addr = Service.Server.Tcp ("127.0.0.1", 4791)

let serve_cmd =
  let listen =
    let doc =
      "Address to listen on: $(b,unix:PATH), $(b,tcp:HOST:PORT), \
       $(b,HOST:PORT) or a bare port (loopback)."
    in
    Arg.(value & opt addr_conv default_addr & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let h =
    let doc = "Maximum alternate hop length H for the route table." in
    Arg.(value & opt (some int) None & info [ "max-hops"; "H" ] ~doc)
  in
  let scale =
    let doc = "Scale factor on the planning traffic matrix." in
    Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~doc)
  in
  let demand =
    let doc = "Per-pair planning demand in Erlangs (synthetic networks)." in
    Arg.(value & opt float 80. & info [ "demand"; "d" ] ~doc)
  in
  let unprotected =
    let doc =
      "Start with no planning matrix: every protection level begins at 0 \
       and converges as the estimators observe live demand (reload to \
       apply)."
    in
    Arg.(value & flag & info [ "unprotected" ] ~doc)
  in
  let seed =
    let doc =
      "Run seed, echoed in the banner and the event trace.  The daemon \
       itself draws no randomness — decisions depend only on the command \
       stream — so matching seeds between $(b,arn serve) and $(b,arn \
       load) labels the pair of logs as one reproducible run."
    in
    Arg.(value & opt int 0 & info [ "seed" ] ~doc)
  in
  let reload_every =
    let doc =
      "Recompute the Theorem-1 protection levels automatically after \
       every $(docv) admission decisions (RELOAD on the wire works \
       either way)."
    in
    Arg.(
      value & opt (some int) None & info [ "reload-every" ] ~docv:"N" ~doc)
  in
  let snapshot =
    let doc =
      "Write the drained state (spec, occupancy, reserves, failures, \
       counters) to $(docv) through lib/serial when the daemon exits."
    in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let trace_file =
    let doc =
      "Stream the daemon's decision events (arrivals, per-alternate \
       rejections, admits, blocks, departures) as JSON lines to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_file =
    let doc =
      "Write a Prometheus text-format snapshot of the service metrics to \
       $(docv) when the daemon drains."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let failure_script =
    let doc =
      "Replay a timed failure script against the live daemon: each line \
       is $(b,TIME FAIL|REPAIR LINK) (virtual time; $(b,#) comments).  \
       Events fire as the virtual clock passes their timestamp, before \
       the triggering SETUP is decided, so a run with a script is as \
       reproducible as one driven by FAIL/REPAIR on the wire."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "failure-script" ] ~docv:"FILE" ~doc)
  in
  let window =
    let doc = "Demand-estimator window length (virtual time)." in
    Arg.(value & opt (some float) None & info [ "window" ] ~doc)
  in
  let smoothing =
    let doc = "Demand-estimator smoothing factor in (0, 1]." in
    Arg.(value & opt (some float) None & info [ "smoothing" ] ~doc)
  in
  let telemetry =
    let doc =
      "Serve live telemetry over HTTP/1.0 on a second socket (same \
       address forms as $(b,--listen)): $(b,GET /metrics) is the \
       Prometheus exposition of the full registry — command latency \
       histograms, per-link occupancy/capacity/r^k gauges, per-pair \
       accept/block counters — rendered from the running daemon, \
       $(b,GET /healthz) a liveness probe, $(b,GET /statz) a JSON \
       status document including the slow-command log."
    in
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "telemetry" ] ~docv:"ADDR" ~doc)
  in
  let slow_ms =
    let doc =
      "Slow-command threshold in milliseconds: commands at or above it \
       enter the slow log (shown by $(b,/statz)) and are logged at \
       warn level."
    in
    Arg.(value & opt float 10. & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let log_level =
    let level_conv =
      Arg.conv
        ( (fun s ->
            match Obs.Logger.level_of_string s with
            | Some l -> Ok l
            | None ->
              Error
                (`Msg
                   (Printf.sprintf
                      "unknown level %S (debug, info, warn, error)" s))),
          fun ppf l ->
            Format.pp_print_string ppf (Obs.Logger.level_to_string l) )
    in
    let doc = "Log threshold: debug, info, warn or error." in
    Arg.(
      value & opt level_conv Obs.Logger.Info
      & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let log_json =
    let doc = "Log JSONL (one JSON object per line) instead of text." in
    Arg.(value & flag & info [ "log-json" ] ~doc)
  in
  let domains_opt =
    let doc =
      "Shard the service plane across $(docv) domains: one dispatcher \
       dealing connections to $(docv) worker loops that read, parse, \
       frame and write in parallel, with admission decisions still a \
       single total order under one lock.  1 (the default, or \
       $(b,ARNET_DOMAINS)) is the unsharded single-threaded daemon."
    in
    let positive =
      Arg.conv' (Pool.domains_of_string, Format.pp_print_int)
    in
    Arg.(
      value & opt (some positive) None & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let run network capacity listen h scale demand unprotected seed
      reload_every snapshot trace_file failure_script metrics_file window
      smoothing telemetry slow_ms log_level log_json domains_opt =
    let logger =
      Obs.Logger.create ~level:log_level
        ~format:(if log_json then Obs.Logger.Jsonl else Obs.Logger.Text)
        stderr
    in
    let g = build_graph network capacity in
    let matrix =
      if unprotected then None
      else Some (build_matrix network g ~scale ~demand)
    in
    let metrics =
      Service.Service_metrics.create ~slow_threshold:(slow_ms /. 1000.) ()
    in
    let trace_sink = Option.map Obs.Jsonl.sink_of_file trace_file in
    (* every decision event feeds the live registry; the JSONL trace
       tees off the same stream when requested *)
    let observer =
      let to_metrics = Service.Service_metrics.observer metrics in
      match Option.map Obs.Sink.observer trace_sink with
      | None -> to_metrics
      | Some to_trace ->
        fun ev ->
          to_trace ev;
          to_metrics ev
    in
    let failure_script =
      Option.map
        (fun path ->
          match Arnet_failure.Script.of_file path with
          | Ok s -> s
          | Error msg ->
            Printf.eprintf "arn serve: %s\n" msg;
            exit 2)
        failure_script
    in
    let state =
      try
        Service.State.create ?h ?matrix ?window ?smoothing ?reload_every
          ?failure_script ~observer g
      with Invalid_argument msg ->
        Printf.eprintf "arn serve: %s\n" msg;
        exit 2
    in
    let on_listen addr =
      Obs.Logger.info logger "arn serve: listening"
        ~fields:
          [ ("network", Obs.Jsonu.String (network_to_string network));
            ("nodes", Obs.Jsonu.Int (Graph.node_count g));
            ("links", Obs.Jsonu.Int (Graph.link_count g));
            ("h", Obs.Jsonu.Int (Route_table.h (Service.State.routes state)));
            ("seed", Obs.Jsonu.Int seed);
            ("addr", Obs.Jsonu.String (Service.Server.addr_to_string addr)) ]
    in
    (try
       Service.Server.serve ?domains:domains_opt ~metrics ?telemetry ~logger
         ?snapshot ~on_listen ~state listen
     with Unix.Unix_error (err, fn, arg) ->
       Printf.eprintf "arn serve: cannot listen: %s (%s %s)\n"
         (Unix.error_message err) fn arg;
       exit 2);
    Option.iter Obs.Sink.close trace_sink;
    let wrote path =
      Obs.Logger.info logger "wrote"
        ~fields:[ ("path", Obs.Jsonu.String path) ]
    in
    Option.iter
      (fun path ->
        Service.Service_metrics.refresh metrics state;
        let oc = open_out path in
        output_string oc (Service.Service_metrics.to_prometheus metrics);
        close_out oc;
        wrote path)
      metrics_file;
    Option.iter wrote trace_file;
    Option.iter wrote snapshot;
    let s = Service.State.stats state in
    Obs.Logger.info logger "arn serve: drained"
      ~fields:
        [ ("accepted", Obs.Jsonu.Int s.Service.Wire.accepted);
          ("blocked", Obs.Jsonu.Int s.Service.Wire.blocked);
          ("torn_down", Obs.Jsonu.Int s.Service.Wire.torn_down);
          ("dropped", Obs.Jsonu.Int s.Service.Wire.dropped);
          ("failovers", Obs.Jsonu.Int s.Service.Wire.failovers);
          ("reloads", Obs.Jsonu.Int s.Service.Wire.reloads) ]
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the live admission-control daemon (SETUP/TEARDOWN over a \
          line protocol; FAIL/REPAIR reroute, RELOAD reprotects, DRAIN \
          exits cleanly; --telemetry serves live /metrics)")
    Term.(
      const run $ network_arg $ capacity_arg $ listen $ h $ scale $ demand
      $ unprotected $ seed $ reload_every $ snapshot $ trace_file
      $ failure_script $ metrics_file $ window $ smoothing $ telemetry
      $ slow_ms $ log_level $ log_json $ domains_opt)

let load_cmd =
  let connect =
    let doc = "Daemon address (same forms as $(b,arn serve --listen))." in
    Arg.(
      value & opt addr_conv default_addr & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let seed =
    let doc = "Master seed for the Poisson workload." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let calls =
    let doc = "Number of call arrivals to send." in
    Arg.(value & opt int 10_000 & info [ "calls" ] ~doc)
  in
  let connections =
    let doc =
      "Shard the workload round-robin across $(docv) concurrent \
       connections (one thread each).  More than one trades the \
       single-connection determinism for a throughput measurement."
    in
    Arg.(value & opt int 1 & info [ "connections" ] ~docv:"N" ~doc)
  in
  let scale =
    let doc = "Scale factor on the offered traffic matrix." in
    Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~doc)
  in
  let demand =
    let doc = "Per-pair offered demand in Erlangs (synthetic networks)." in
    Arg.(value & opt float 80. & info [ "demand"; "d" ] ~doc)
  in
  let no_timestamps =
    let doc =
      "Send untimed SETUPs: the daemon's virtual clock (and hence its \
       demand estimators) stands still."
    in
    Arg.(value & flag & info [ "no-timestamps" ] ~doc)
  in
  let retry_for =
    let doc = "Seconds to retry a refused connection (daemon start-up)." in
    Arg.(value & opt float 5.0 & info [ "retry-for" ] ~doc)
  in
  let json =
    let doc = "Emit the results as JSON on stdout instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let drain =
    let doc =
      "Send DRAIN when the run finishes.  The generator tears down every \
       call it admitted, so a daemon serving only this client exits \
       cleanly right away."
    in
    Arg.(value & flag & info [ "drain" ] ~doc)
  in
  let binary =
    let doc =
      "Upgrade each connection with HELLO binary and drive the binary \
       batch framing instead of the line protocol."
    in
    Arg.(value & flag & info [ "binary" ] ~doc)
  in
  let batch =
    let doc =
      "Commands pipelined per binary frame (needs $(b,--binary)): one \
       write/read syscall round per batch of $(docv)."
    in
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let run network capacity connect seed calls connections scale demand
      no_timestamps retry_for json drain binary batch =
    let g = build_graph network capacity in
    let matrix = build_matrix network g ~scale ~demand in
    let result =
      try
        Service.Loadgen.run ~connections ~timestamps:(not no_timestamps)
          ~retry_for ~binary ~batch ~seed ~calls ~matrix ~addr:connect ()
      with
      | Invalid_argument msg ->
        Printf.eprintf "arn load: %s\n" msg;
        exit 2
      | Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "arn load: cannot reach %s: %s (%s %s)\n"
          (Service.Server.addr_to_string connect)
          (Unix.error_message err) fn arg;
        exit 2
    in
    if drain then begin
      let ic, oc = Service.Server.connect ~retry_for connect in
      (match Service.Server.request ic oc Service.Wire.Drain with
      | Service.Wire.Done -> ()
      | r ->
        Printf.eprintf "arn load: DRAIN answered %s\n"
          (Service.Wire.print_response r);
        exit 1);
      close_out_noerr oc
    end;
    if json then
      print_endline (Obs.Jsonu.to_string (Service.Loadgen.to_json result))
    else Format.fprintf ppf "%a@." Service.Loadgen.print result
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a daemon with a seeded Poisson workload and report \
          accept/block counts and wire-latency quantiles")
    Term.(
      const run $ network_arg $ capacity_arg $ connect $ seed $ calls
      $ connections $ scale $ demand $ no_timestamps $ retry_for $ json
      $ drain $ binary $ batch)

(* ------------------------------------------------------------------ *)
(* arn bench *)

let bench_diff_cmd =
  let old_file =
    let doc = "Baseline BENCH_*.json document ($(b,-) reads stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc)
  in
  let new_file =
    let doc = "Candidate BENCH_*.json document ($(b,-) reads stdin)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)
  in
  let tolerance =
    let doc =
      "Regression tolerance in percent: throughputs may drop and \
       allocation rates rise by up to $(docv) before the exit status \
       turns nonzero."
    in
    Arg.(value & opt float 10. & info [ "tolerance" ] ~docv:"PCT" ~doc)
  in
  let json =
    let doc = "Emit the comparison as JSON instead of the delta table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let read_doc name =
    let contents =
      if name = "-" then In_channel.input_all Stdlib.stdin
      else In_channel.with_open_bin name In_channel.input_all
    in
    Obs.Jsonu.parse contents
  in
  let run old_file new_file tolerance json =
    if old_file = "-" && new_file = "-" then begin
      Printf.eprintf "arn bench diff: only one input can be stdin\n";
      exit 2
    end;
    let doc name =
      try read_doc name with
      | Sys_error msg ->
        Printf.eprintf "arn bench diff: %s\n" msg;
        exit 2
      | Obs.Jsonu.Parse_error msg ->
        Printf.eprintf "arn bench diff: %s: %s\n" name msg;
        exit 2
    in
    let old_doc = doc old_file in
    let new_doc = doc new_file in
    let report =
      try
        Arnet_experiments.Bench_diff.compare ~tolerance ~old_doc ~new_doc ()
      with
      | Obs.Jsonu.Parse_error msg | Invalid_argument msg ->
        Printf.eprintf "arn bench diff: %s\n" msg;
        exit 2
    in
    if json then
      print_endline
        (Obs.Jsonu.to_string (Arnet_experiments.Bench_diff.to_json report))
    else Format.fprintf ppf "%a" Arnet_experiments.Bench_diff.print report;
    if Arnet_experiments.Bench_diff.regressions report <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH_*.json documents (calls/s, req/s, minor \
          words/call) and exit nonzero on a regression past the \
          tolerance")
    Term.(const run $ old_file $ new_file $ tolerance $ json)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Operate on the bench trajectory (BENCH_*.json documents)")
    [ bench_diff_cmd ]

let () =
  let info =
    Cmd.info "arn" ~version:"1.0.0"
      ~doc:
        "Controlled alternate routing in general-mesh loss networks \
         (SIGCOMM '94 reproduction)"
  in
  let group =
    Cmd.group info
      [ erlang_cmd; protection_cmd; paths_cmd; topology_cmd; fit_cmd;
        bound_cmd; topo_cmd; simulate_cmd; experiment_cmd; dalfar_cmd; spec_cmd;
        lint_cmd; adaptive_cmd; mdp_cmd; trace_cmd; serve_cmd; load_cmd;
        bench_cmd ]
  in
  exit (Cmd.eval group)
