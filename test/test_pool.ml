(* Determinism of the Domain-based replication pool.

   The headline claim: [Engine.replicate ~domains:n] is bit-identical
   to the sequential run for any n — sharding (seed x policy) runs
   across domains must leak no scheduling order into the statistics.
   Plus the Pool.map contract itself (order, length, fail-fast errors)
   and the atomic odometer under concurrent runs. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_core
open Arnet_sim

let seeds = [ 1; 2; 3; 4; 5 ]

(* structural equality over the full result: names, order, and every
   counter of every Stats.t (including the per-pair arrays) *)
let check_identical msg a b =
  Alcotest.(check (list string))
    (msg ^ ": policy names")
    (List.map fst a) (List.map fst b);
  List.iter2
    (fun (name, runs_a) (_, runs_b) ->
      Alcotest.(check (list (float 0.)))
        (Printf.sprintf "%s: %s per-seed blocking" msg name)
        (List.map Stats.blocking runs_a)
        (List.map Stats.blocking runs_b);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s stats structurally equal" msg name)
        true (runs_a = runs_b))
    a b

let standard_policies routes matrix =
  [ Scheme.single_path routes;
    Scheme.uncontrolled routes;
    Scheme.controlled_auto ~matrix routes ]

let replicate_mesh ~domains ~graph ~matrix =
  let routes = Route_table.build graph in
  Engine.replicate ~warmup:5. ~domains ~seeds ~duration:40. ~graph ~matrix
    ~policies:(standard_policies routes matrix)
    ()

let test_quadrangle_deterministic () =
  let graph = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:20. in
  check_identical "quadrangle 4 domains vs sequential"
    (replicate_mesh ~domains:4 ~graph ~matrix)
    (replicate_mesh ~domains:1 ~graph ~matrix)

let test_asymmetric_mesh_deterministic () =
  (* a sparse Waxman mesh: asymmetric routes, some long alternates *)
  let graph = Builders.waxman ~seed:11 ~nodes:8 ~capacity:20 () in
  let matrix = Matrix.uniform ~nodes:8 ~demand:6. in
  check_identical "waxman 4 domains vs sequential"
    (replicate_mesh ~domains:4 ~graph ~matrix)
    (replicate_mesh ~domains:1 ~graph ~matrix);
  check_identical "waxman 3 domains vs 4 domains"
    (replicate_mesh ~domains:3 ~graph ~matrix)
    (replicate_mesh ~domains:4 ~graph ~matrix)

let test_no_scheduling_leakage () =
  (* two parallel runs with the same seeds must agree exactly: nothing
     about domain scheduling may reach the results *)
  let graph = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:25. in
  check_identical "parallel run vs parallel rerun"
    (replicate_mesh ~domains:4 ~graph ~matrix)
    (replicate_mesh ~domains:4 ~graph ~matrix)

let test_replicate_fresh_deterministic () =
  (* stateful policies through the factory path: each (seed, policy)
     run builds its own adaptive estimators inside the worker *)
  let graph = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:25. in
  let routes = Route_table.build graph in
  let factory () =
    [ Scheme.single_path routes; Scheme.controlled_adaptive routes ]
  in
  let go domains =
    Engine.replicate_fresh ~warmup:5. ~domains ~seeds ~duration:40. ~graph
      ~matrix ~policies:factory ()
  in
  check_identical "replicate_fresh 4 domains vs sequential" (go 4) (go 1)

(* ------------------------------------------------------------------ *)
(* failure propagation *)

let bomb =
  { Engine.name = "bomb";
    decide = (fun ~occupancy:_ ~call:_ -> failwith "bomb");
    is_primary = (fun ~call:_ _ -> false) }

let test_parallel_failure_attribution () =
  let graph = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:20. in
  let routes = Route_table.build graph in
  match
    Engine.replicate ~warmup:5. ~domains:4 ~seeds ~duration:40. ~graph
      ~matrix
      ~policies:[ Scheme.single_path routes; bomb ]
      ()
  with
  | _ -> Alcotest.fail "expected Replication_failure"
  | exception Engine.Replication_failure { seed; policy; exn } ->
    Alcotest.(check string) "failing policy attributed" "bomb" policy;
    Alcotest.(check bool) "seed is one of ours" true (List.mem seed seeds);
    Alcotest.(check bool) "original exception preserved" true
      (match exn with Failure m -> m = "bomb" | _ -> false)

let test_sequential_failure_unwrapped () =
  (* domains = 1 is exactly the historical path: the raw exception *)
  let graph = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:20. in
  match
    Engine.replicate ~warmup:5. ~domains:1 ~seeds ~duration:40. ~graph
      ~matrix ~policies:[ bomb ] ()
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "raw failure" "bomb" m

let test_bad_domain_count () =
  let graph = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:20. in
  let routes = Route_table.build graph in
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Engine.replicate: domains must be >= 1") (fun () ->
      ignore
        (Engine.replicate ~warmup:5. ~domains:0 ~seeds ~duration:40. ~graph
           ~matrix
           ~policies:(standard_policies routes matrix)
           ()))

(* ------------------------------------------------------------------ *)
(* the odometer under concurrency *)

let test_odometer_concurrent_runs () =
  let graph = Builders.full_mesh ~nodes:3 ~capacity:10 in
  let matrix = Matrix.uniform ~nodes:3 ~demand:5. in
  let routes = Route_table.build graph in
  let traces =
    List.init 8 (fun i ->
        let rng = Rng.substream (Rng.create ~seed:(200 + i)) "trace" in
        Trace.generate ~rng ~duration:30. matrix)
  in
  let total =
    List.fold_left (fun acc t -> acc + Array.length t.Trace.calls) 0 traces
  in
  let before = Engine.calls_simulated () in
  ignore
    (Pool.map ~domains:4
       (fun trace ->
         Engine.run ~warmup:5. ~graph
           ~policy:(Scheme.uncontrolled routes)
           trace)
       traces);
  Alcotest.(check int) "no counts lost across domains" total
    (Engine.calls_simulated () - before);
  Alcotest.(check bool) "monotonic" true (Engine.calls_simulated () >= total)

(* ------------------------------------------------------------------ *)
(* Pool.map itself *)

let test_pool_map_basics () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 43 ] (Pool.map ~domains:8 succ [ 42 ]);
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Pool.map: domains must be >= 1") (fun () ->
      ignore (Pool.map ~domains:0 succ [ 1 ]))

let test_domains_of_string () =
  (* the shared validation behind [arn simulate --domains] and of_env:
     out-of-range counts answer one line naming the valid range *)
  Alcotest.(check (result int string))
    "4 parses" (Ok 4)
    (Pool.domains_of_string "4");
  Alcotest.(check (result int string))
    "trimmed" (Ok 2)
    (Pool.domains_of_string " 2 ");
  let expect_error input =
    match Pool.domains_of_string input with
    | Ok n -> Alcotest.failf "%S accepted as %d" input n
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error is one line" input)
        false (String.contains msg '\n');
      Alcotest.(check bool)
        (Printf.sprintf "%S error names the valid range" input)
        true
        (let sub = "valid range" in
         let n = String.length msg and m = String.length sub in
         let rec scan i =
           i + m <= n && (String.sub msg i m = sub || scan (i + 1))
         in
         scan 0)
  in
  expect_error "0";
  expect_error "-3";
  expect_error "many";
  expect_error ""

let test_pool_of_env () =
  let var = "ARNET_POOL_TEST" in
  Unix.putenv var "6";
  Alcotest.(check int) "parses" 6 (Pool.of_env ~var ());
  Unix.putenv var " 3 ";
  Alcotest.(check int) "trims" 3 (Pool.of_env ~var ());
  Unix.putenv var "0";
  Alcotest.(check int) "non-positive -> 1" 1 (Pool.of_env ~var ());
  Unix.putenv var "many";
  Alcotest.(check int) "garbage -> 1" 1 (Pool.of_env ~var ());
  Unix.putenv var "";
  Alcotest.(check int) "empty -> 1" 1 (Pool.of_env ~var ());
  Alcotest.(check bool) "available >= 1" true (Pool.available () >= 1)

let prop_map_matches_list_map =
  QCheck.Test.make ~count:200 ~name:"Pool.map ~domains:n = List.map"
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (xs, domains) ->
      let f x = (x * x) - (3 * x) + 7 in
      Pool.map ~domains f xs = List.map f xs)

let prop_exception_index =
  QCheck.Test.make ~count:200
    ~name:"Pool.map propagates the failing job's index"
    QCheck.(triple (int_range 1 20) small_nat (int_range 1 8))
    (fun (n, k, domains) ->
      let k = k mod n in
      let jobs = List.init n Fun.id in
      match
        Pool.map ~domains
          (fun i -> if i = k then failwith "boom" else i)
          jobs
      with
      | _ -> false
      | exception Pool.Worker { index; exn } ->
        index = k && (match exn with Failure m -> m = "boom" | _ -> false)
      | exception _ -> false)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pool"
    [ ( "determinism",
        [ Alcotest.test_case "quadrangle parallel = sequential" `Slow
            test_quadrangle_deterministic;
          Alcotest.test_case "asymmetric mesh parallel = sequential" `Slow
            test_asymmetric_mesh_deterministic;
          Alcotest.test_case "no scheduling leakage" `Slow
            test_no_scheduling_leakage;
          Alcotest.test_case "replicate_fresh adaptive" `Slow
            test_replicate_fresh_deterministic ] );
      ( "failures",
        [ Alcotest.test_case "parallel attribution" `Quick
            test_parallel_failure_attribution;
          Alcotest.test_case "sequential unwrapped" `Quick
            test_sequential_failure_unwrapped;
          Alcotest.test_case "bad domain count" `Quick test_bad_domain_count ] );
      ( "odometer",
        [ Alcotest.test_case "concurrent runs" `Quick
            test_odometer_concurrent_runs ] );
      ( "pool-map",
        [ Alcotest.test_case "basics" `Quick test_pool_map_basics;
          Alcotest.test_case "domains_of_string" `Quick test_domains_of_string;
          Alcotest.test_case "of_env" `Quick test_pool_of_env;
          qcheck prop_map_matches_list_map;
          qcheck prop_exception_index ] ) ]
