(* lib/ingest: GML and dot codecs (fixture goldens, malformed inputs,
   print/parse round-trip laws), the ISP-mesh generator, gravity
   traffic, and an end-to-end simulate smoke over a real fixture. *)

open Arnet_topology
open Arnet_ingest

let fixture name =
  Filename.concat (Filename.concat "../lib/ingest" "fixtures") name

(* ------------------------------------------------------------------ *)
(* fixture goldens *)

let test_abilene_golden () =
  let t = Gml.load (fixture "Abilene.gml") in
  Alcotest.(check string) "name" "Abilene" t.Topo.name;
  Alcotest.(check int) "nodes" 11 (Graph.node_count t.Topo.graph);
  Alcotest.(check int) "links" 28 (Graph.link_count t.Topo.graph);
  Alcotest.(check int) "no parallel edges" 0 t.Topo.merged_parallel;
  Alcotest.(check int) "no self loops" 0 t.Topo.dropped_self_loops;
  Alcotest.(check string) "first label" "Seattle" (Graph.label t.Topo.graph 0);
  Alcotest.(check bool) "symmetric" true (Graph.is_symmetric t.Topo.graph);
  Alcotest.(check bool) "strongly connected" true
    (Graph.is_strongly_connected t.Topo.graph);
  Array.iter
    (fun l -> Alcotest.(check int) "capacity" 100 l.Link.capacity)
    (Graph.links t.Topo.graph);
  Alcotest.(check bool) "all nodes placed" true
    (Array.for_all Option.is_some t.Topo.coords);
  let s = Topo.summarize t in
  Alcotest.(check int) "summary nodes" 11 s.Topo.nodes;
  Alcotest.(check int) "summary with_coords" 11 s.Topo.with_coords;
  Alcotest.(check int) "summary total capacity" 2800 s.Topo.total_capacity

let test_geant_golden () =
  let t = Gml.load (fixture "Geant.gml") in
  let g = t.Topo.graph in
  Alcotest.(check string) "name" "Geant" t.Topo.name;
  (* the file numbers its nodes 1..12: import renumbers densely *)
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  Alcotest.(check int) "links" 34 (Graph.link_count g);
  Alcotest.(check int) "duplicate London-Paris edge merged" 1
    t.Topo.merged_parallel;
  (* node 0 is the file's id 1 (London), node 1 its id 2 (Paris) *)
  Alcotest.(check string) "dense renumbering" "London" (Graph.label g 0);
  Alcotest.(check int) "merged capacities sum (60 + 60)" 120
    (Graph.find_link_exn g ~src:0 ~dst:1).Link.capacity;
  (* the Prague -> Budapest edge carries no capacity attribute *)
  let prague = 8 and budapest = 9 in
  Alcotest.(check string) "prague" "Prague" (Graph.label g prague);
  Alcotest.(check int) "defaulted capacity" Gml.default_capacity
    (Graph.find_link_exn g ~src:prague ~dst:budapest).Link.capacity;
  Alcotest.(check bool) "undirected file imports symmetric" true
    (Graph.is_symmetric g);
  Alcotest.(check bool) "strongly connected" true
    (Graph.is_strongly_connected g)

(* ------------------------------------------------------------------ *)
(* malformed inputs parse to Error, never an exception leak *)

let check_gml_error name text =
  match Gml.parse text with
  | exception Gml.Error _ -> ()
  | _ -> Alcotest.failf "%s: parsed" name

let check_dot_error name text =
  match Dot.parse text with
  | exception Dot.Error _ -> ()
  | _ -> Alcotest.failf "%s: parsed" name

let test_gml_errors () =
  check_gml_error "no graph block" "node [ id 0 ]";
  check_gml_error "unclosed block" "graph [ node [ id 0 ]";
  check_gml_error "node without id" "graph [ node [ label \"x\" ] ]";
  check_gml_error "duplicate node id"
    "graph [ node [ id 0 ] node [ id 0 ] ]";
  check_gml_error "edge to unknown node"
    "graph [ node [ id 0 ] edge [ source 0 target 7 ] ]";
  check_gml_error "negative capacity"
    "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 \
     capacity -3 ] ]";
  check_gml_error "unterminated string" "graph [ label \"oops ]"

let test_dot_errors () =
  check_dot_error "not a graph" "strict {}";
  check_dot_error "unclosed brace" "digraph g { a -> b ";
  check_dot_error "dangling arrow" "digraph g { a -> }";
  check_dot_error "unclosed attrs" "digraph g { a -> b [capacity=3 }";
  check_dot_error "unterminated string" "digraph \"g {}"

(* ------------------------------------------------------------------ *)
(* dot semantics: chains, undirected graphs, dir=both, merging *)

let test_dot_semantics () =
  let t =
    Dot.parse
      "// a comment\n\
       digraph backbone {\n\
      \  core [label=\"Core router\", lon=\"-3.5\", lat=\"40.25\"];\n\
      \  a -> b -> core [capacity=7];  /* chain: two links */\n\
      \  a -> a;                       # self loop, dropped\n\
      \  b -> core [capacity=5];       // parallel with the chain edge\n\
      \  core -> a [dir=both, label=\"9\"];\n\
       }"
  in
  let g = t.Topo.graph in
  Alcotest.(check string) "name" "backbone" t.Topo.name;
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  (* a->b, b->core (7 + 5 merged), core->a, a->core *)
  Alcotest.(check int) "links" 4 (Graph.link_count g);
  Alcotest.(check int) "self loop dropped" 1 t.Topo.dropped_self_loops;
  Alcotest.(check int) "parallel merged" 1 t.Topo.merged_parallel;
  Alcotest.(check string) "label attr wins" "Core router" (Graph.label g 0);
  Alcotest.(check string) "name is the default label" "a" (Graph.label g 1);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "coords from lon/lat" (Some (-3.5, 40.25)) t.Topo.coords.(0);
  Alcotest.(check int) "chain attr applies to every edge" 7
    (Graph.find_link_exn g ~src:1 ~dst:2).Link.capacity;
  Alcotest.(check int) "chain edge merges with the parallel one" 12
    (Graph.find_link_exn g ~src:2 ~dst:0).Link.capacity;
  Alcotest.(check int) "dir=both, numeric label as capacity" 9
    (Graph.find_link_exn g ~src:0 ~dst:1).Link.capacity;
  Alcotest.(check int) "dir=both twin" 9
    (Graph.find_link_exn g ~src:1 ~dst:0).Link.capacity;
  (* an undirected graph doubles every edge *)
  let u = Dot.parse "graph ring { a -- b -- c; c -- a; }" in
  Alcotest.(check int) "undirected links" 6 (Graph.link_count u.Topo.graph);
  Alcotest.(check bool) "undirected is symmetric" true
    (Graph.is_symmetric u.Topo.graph)

let test_dot_reads_graph_to_dot () =
  (* the library's own exporter speaks the dialect the parser reads *)
  let g = Nsfnet.graph () in
  let t = Dot.parse (Graph.to_dot g) in
  Alcotest.(check int) "nodes" (Graph.node_count g)
    (Graph.node_count t.Topo.graph);
  Alcotest.(check int) "links" (Graph.link_count g)
    (Graph.link_count t.Topo.graph);
  Graph.iter_links
    (fun l ->
      let l' =
        Graph.find_link_exn t.Topo.graph ~src:l.Link.src ~dst:l.Link.dst
      in
      Alcotest.(check int) "capacity" l.Link.capacity l'.Link.capacity)
    g

(* ------------------------------------------------------------------ *)
(* round-trip laws: parse (print t) = t for both codecs *)

(* random topologies over the codecs' full value space: optional
   coordinates (including long-fraction floats), sparse link sets with
   arbitrary capacities, labels over a safe charset *)
let topo_gen =
  QCheck.Gen.(
    let label_gen =
      string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 6)
    in
    let coord = map (fun n -> float_of_int n /. 16.) (int_range (-800) 800) in
    int_range 2 8 >>= fun nodes ->
    array_size (return nodes) label_gen >>= fun labels ->
    array_size (return nodes)
      (oneof [ return None; map Option.some (pair coord coord) ])
    >>= fun coords ->
    let pairs =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun d -> if s = d then None else Some (s, d))
            (List.init nodes Fun.id))
        (List.init nodes Fun.id)
    in
    list_size (return (List.length pairs)) (option (int_bound 500))
    >>= fun caps ->
    let links =
      List.filter_map
        (fun ((src, dst), cap) ->
          Option.map (fun capacity -> (src, dst, capacity)) cap)
        (List.combine pairs caps)
    in
    let links =
      List.mapi
        (fun id (src, dst, capacity) -> Link.make ~id ~src ~dst ~capacity)
        links
    in
    label_gen >>= fun name ->
    return
      (Topo.make ~name ~coords
         (Graph.create ~labels ~nodes links)))

let topo_arbitrary =
  QCheck.make topo_gen ~print:(fun t ->
      Printf.sprintf "%s (%d nodes, %d links)" t.Topo.name
        (Graph.node_count t.Topo.graph)
        (Graph.link_count t.Topo.graph))

let prop_gml_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Gml.parse (Gml.to_gml t) = t"
    topo_arbitrary
    (fun t -> Topo.equal (Gml.parse (Gml.to_gml t)) t)

let prop_dot_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Dot.parse (Dot.to_dot t) = t"
    topo_arbitrary
    (fun t -> Topo.equal (Dot.parse (Dot.to_dot t)) t)

let prop_cross_codec =
  (* a GML-imported topology and its dot re-export describe one graph *)
  QCheck.Test.make ~count:100 ~name:"Gml.parse (to_gml (Dot.parse (to_dot)))"
    topo_arbitrary
    (fun t -> Topo.equal (Gml.parse (Gml.to_gml (Dot.parse (Dot.to_dot t)))) t)

let test_fixture_roundtrips () =
  List.iter
    (fun name ->
      let t = Gml.load (fixture name) in
      Alcotest.(check bool) (name ^ " gml fixpoint") true
        (Topo.equal (Gml.parse (Gml.to_gml t)) t);
      Alcotest.(check string) (name ^ " canonical gml is a fixpoint")
        (Gml.to_gml t)
        (Gml.to_gml (Gml.parse (Gml.to_gml t)));
      Alcotest.(check bool) (name ^ " dot fixpoint") true
        (Topo.equal (Dot.parse (Dot.to_dot t)) t);
      Alcotest.(check string) (name ^ " canonical dot is a fixpoint")
        (Dot.to_dot t)
        (Dot.to_dot (Dot.parse (Dot.to_dot t))))
    [ "Abilene.gml"; "Geant.gml" ]

(* ------------------------------------------------------------------ *)
(* Topo metadata *)

let test_normalized_coords () =
  let g = Builders.ring ~nodes:3 ~capacity:10 in
  let t =
    Topo.make ~coords:[| Some (10., 5.); Some (30., 5.); Some (20., 5.) |] g
  in
  (match Topo.normalized_coords t with
  | None -> Alcotest.fail "expected coordinates"
  | Some c ->
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min" (0., 0.5) c.(0);
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) "max" (1., 0.5) c.(1);
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) "mid" (0.5, 0.5) c.(2));
  let partial = Topo.make ~coords:[| Some (0., 0.); None; None |] g in
  Alcotest.(check bool) "partial coords do not normalize" true
    (Topo.normalized_coords partial = None);
  (match Topo.make ~coords:[| Some (nan, 0.); None; None |] g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan coordinate accepted");
  match Topo.make ~coords:[| Some (0., 0.) |] g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short coords accepted"

(* ------------------------------------------------------------------ *)
(* the ISP-mesh generator *)

let test_random_mesh () =
  let nodes = 120 and degree = 4 in
  let t = Mesh.random_mesh ~seed:7 ~nodes ~degree () in
  let g = t.Topo.graph in
  Alcotest.(check int) "nodes" nodes (Graph.node_count g);
  Alcotest.(check bool) "symmetric" true (Graph.is_symmetric g);
  Alcotest.(check bool) "strongly connected" true
    (Graph.is_strongly_connected g);
  Alcotest.(check bool) "all nodes placed" true
    (Array.for_all Option.is_some t.Topo.coords);
  for v = 0 to nodes - 1 do
    if Graph.degree_out g v > degree then
      Alcotest.failf "node %d exceeds the degree bound: %d" v
        (Graph.degree_out g v)
  done;
  (* a pure function of its parameters *)
  Alcotest.(check bool) "deterministic" true
    (Topo.equal t (Mesh.random_mesh ~seed:7 ~nodes ~degree ()));
  Alcotest.(check bool) "seed matters" false
    (Topo.equal t (Mesh.random_mesh ~seed:8 ~nodes ~degree ()));
  (match Mesh.random_mesh ~nodes:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nodes=1 accepted");
  match Mesh.random_mesh ~nodes:4 ~degree:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "degree=1 accepted"

let test_gravity () =
  let t = Mesh.random_mesh ~nodes:30 () in
  let m = Mesh.gravity t in
  Alcotest.(check (float 1e-6)) "default total is 5 Erlangs per node" 150.
    (Arnet_traffic.Matrix.total m);
  Alcotest.(check (float 1e-6)) "total override" 42.
    (Arnet_traffic.Matrix.total (Mesh.gravity ~total:42. t));
  for v = 0 to 29 do
    Alcotest.(check (float 0.)) "zero diagonal" 0.
      (Arnet_traffic.Matrix.get m v v)
  done

(* ------------------------------------------------------------------ *)
(* imported fixtures drive the whole pipeline *)

let test_fixture_simulate_smoke () =
  let t = Gml.load (fixture "Abilene.gml") in
  let g = t.Topo.graph in
  let matrix = Arnet_traffic.Matrix.scale (Mesh.gravity t) 12. in
  let routes = Arnet_paths.Route_table.build ~h:4 g in
  let policy = Arnet_core.Scheme.controlled_auto ~matrix routes in
  let trace =
    Arnet_sim.Trace.generate
      ~rng:(Arnet_sim.Rng.create ~seed:11)
      ~duration:30. matrix
  in
  let stats = Arnet_sim.Engine.run ~warmup:5. ~graph:g ~policy trace in
  Alcotest.(check bool) "calls were offered" true
    (stats.Arnet_sim.Stats.offered > 0);
  Alcotest.(check bool) "blocking is a probability" true
    (let b = Arnet_sim.Stats.blocking stats in
     b >= 0. && b <= 1.)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ingest"
    [ ("fixtures",
       [ Alcotest.test_case "Abilene golden" `Quick test_abilene_golden;
         Alcotest.test_case "Geant golden" `Quick test_geant_golden;
         Alcotest.test_case "fixture round-trips" `Quick
           test_fixture_roundtrips;
         Alcotest.test_case "simulate smoke" `Quick
           test_fixture_simulate_smoke ]);
      ("errors",
       [ Alcotest.test_case "malformed gml" `Quick test_gml_errors;
         Alcotest.test_case "malformed dot" `Quick test_dot_errors ]);
      ("dot",
       [ Alcotest.test_case "semantics" `Quick test_dot_semantics;
         Alcotest.test_case "reads Graph.to_dot" `Quick
           test_dot_reads_graph_to_dot ]);
      ("roundtrip",
       [ qcheck prop_gml_roundtrip;
         qcheck prop_dot_roundtrip;
         qcheck prop_cross_codec ]);
      ("topo",
       [ Alcotest.test_case "normalized coords" `Quick
           test_normalized_coords ]);
      ("mesh",
       [ Alcotest.test_case "random mesh" `Quick test_random_mesh;
         Alcotest.test_case "gravity" `Quick test_gravity ]) ]
