(* The admission-control daemon: wire codec round-trips (qcheck),
   protocol error handling, decision equivalence with the batch
   simulator, failure rerouting, online reload under drifting load,
   drain/snapshot semantics, and end-to-end determinism over a real
   Unix socket. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core
open Arnet_service

(* ------------------------------------------------------------------ *)
(* wire codec: print/parse round-trips for every constructor *)

let time_gen =
  (* None, exact decimals, and repeating fractions that need the long
     float form — all must survive the wire *)
  QCheck.Gen.(
    oneof
      [ return None;
        map (fun n -> Some (float_of_int n /. 8.)) (int_bound 10_000);
        map2
          (fun a b -> Some (float_of_int a /. float_of_int (b + 1)))
          (int_bound 1_000_000) (int_bound 997) ])

let word_gen =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 8))

let command_gen =
  QCheck.Gen.(
    oneof
      [ map3
          (fun src dst time -> Wire.Setup { src; dst; time })
          (int_range (-3) 40) (int_range (-3) 40) time_gen;
        map (fun id -> Wire.Teardown { id }) (int_bound 1_000_000);
        map (fun link -> Wire.Fail { link }) (int_range (-2) 500);
        map (fun link -> Wire.Repair { link }) (int_range (-2) 500);
        return Wire.Reload;
        map3
          (fun src dst capacity -> Wire.Link_add { src; dst; capacity })
          (int_range (-2) 40) (int_range (-2) 40) (int_range (-2) 500);
        map2
          (fun src dst -> Wire.Link_del { src; dst })
          (int_range (-2) 40) (int_range (-2) 40);
        return Wire.Stats;
        return Wire.Drain;
        return Wire.Quit;
        map (fun mode -> Wire.Hello { mode }) word_gen ])

let response_gen =
  QCheck.Gen.(
    oneof
      [ map2
          (fun id path -> Wire.Admitted { id; path })
          (int_bound 1_000_000)
          (list_size (int_range 2 6) (int_bound 50));
        return Wire.Blocked;
        return Wire.Done;
        map (fun changed -> Wire.Reloaded { changed }) (int_bound 200);
        map (fun recomputed -> Wire.Patched { recomputed }) (int_bound 500);
        map3
          (fun (accepted, blocked, torn_down) (dropped, failovers, active)
               (reloads, failed, draining) ->
            Wire.Stats_reply
              { Wire.accepted; blocked; torn_down; dropped; failovers;
                active; reloads; failed; draining })
          (triple (int_bound 9999) (int_bound 9999) (int_bound 9999))
          (triple (int_bound 9999) (int_bound 9999) (int_bound 9999))
          (triple (int_bound 9999)
             (list_size (int_bound 5) (int_bound 40))
             bool);
        map2
          (fun code words ->
            Wire.Err { code; detail = String.concat " " words })
          word_gen
          (list_size (int_bound 4) word_gen) ])

let prop_command_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"Wire: parse (print cmd) = cmd"
    (QCheck.make command_gen ~print:Wire.print_command)
    (fun c ->
      match Wire.parse_command (Wire.print_command c) with
      | Ok c' -> Wire.equal_command c c'
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"Wire: parse (print resp) = resp"
    (QCheck.make response_gen ~print:Wire.print_response)
    (fun r ->
      match Wire.parse_response (Wire.print_response r) with
      | Ok r' -> Wire.equal_response r r'
      | Error _ -> false)

(* the non-allocating SETUP/TEARDOWN scanner must be indistinguishable
   from the token-splitting reference parser — on well-formed lines, on
   garbage, and on the adversarial spacing in between *)
let scanner_line_gen =
  QCheck.Gen.(
    let soup =
      string_size
        ~gen:
          (oneofl
             [ 'S'; 'E'; 'T'; 'U'; 'P'; 's'; 'e'; 't'; 'u'; 'p'; 'T'; 'D';
               'O'; 'W'; 'N'; 'R'; 'A'; 'I'; 'L'; '0'; '1'; '2'; '7'; '9';
               ' '; ' '; ' '; '\t'; '\r'; '-'; '+'; '.'; 'x'; '_' ])
        (int_range 0 28)
    in
    let pad = oneofl [ ""; " "; "  "; "\t"; " \t " ] in
    let num =
      oneofl
        [ "0"; "1"; "39"; "65536"; "-1"; "007"; "1_0"; "0x2"; "1e2"; "2.5";
          "-0.5"; "nan"; "inf"; "."; "x" ]
    in
    let verb =
      oneofl [ "SETUP"; "setup"; "SetUp"; "TEARDOWN"; "teardown"; "SETUPX" ]
    in
    let templated =
      map
        (fun ((p0, v), (p1, a), (p2, b), (p3, c)) ->
          p0 ^ v ^ p1 ^ " " ^ a ^ p2 ^ " " ^ b ^ p3 ^ " " ^ c)
        (quad (pair pad verb) (pair pad num) (pair pad num) (pair pad num))
    in
    let short =
      map2 (fun v a -> v ^ " " ^ a) verb num
    in
    oneof [ map Wire.print_command command_gen; templated; short; soup ])

let prop_scanner_matches_general =
  QCheck.Test.make ~count:3000 ~name:"Wire: fast scanner = general parser"
    (QCheck.make scanner_line_gen ~print:String.escaped)
    (fun line ->
      match (Wire.parse_command line, Wire.parse_command_general line) with
      | Ok a, Ok b -> Wire.equal_command a b
      | Error (c1, d1), Error (c2, d2) -> c1 = c2 && d1 = d2
      | Ok _, Error _ | Error _, Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* binary batch framing: decode (encode batch) = batch, and malformed
   bytes decode to the typed error, never an exception *)

let bwire_command_gen =
  (* every constructor the codec must carry: the dense SETUP/TEARDOWN
     tags and the escaped-line fallback for the rest *)
  QCheck.Gen.(
    oneof
      [ map3
          (fun src dst time -> Wire.Setup { src; dst; time })
          (int_bound 65535) (int_bound 65535)
          (oneof
             [ return None;
               map (fun n -> Some (float_of_int n /. 8.)) (int_bound 10_000);
               map2
                 (fun a b -> Some (float_of_int a /. float_of_int (b + 1)))
                 (int_bound 1_000_000) (int_bound 997) ]);
        map (fun id -> Wire.Teardown { id }) (int_bound 0xFFFF_FFFF);
        map (fun link -> Wire.Fail { link }) (int_bound 500);
        map (fun link -> Wire.Repair { link }) (int_bound 500);
        return Wire.Reload;
        map3
          (fun src dst capacity -> Wire.Link_add { src; dst; capacity })
          (int_bound 40) (int_bound 40) (int_bound 500);
        map2
          (fun src dst -> Wire.Link_del { src; dst })
          (int_bound 40) (int_bound 40);
        return Wire.Stats;
        return Wire.Drain;
        return Wire.Quit;
        map (fun mode -> Wire.Hello { mode }) word_gen ])

let prop_bwire_commands_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Bwire: decode (encode cmds) = cmds"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 40) bwire_command_gen)
       ~print:(fun l ->
         String.concat "; " (List.map Wire.print_command l)))
    (fun cmds ->
      let s = Bwire.encode_commands cmds in
      match Bwire.decode s with
      | Ok (Bwire.Commands cmds', n) ->
        n = String.length s
        && List.length cmds = List.length cmds'
        && List.for_all2 Wire.equal_command cmds cmds'
      | _ -> false)

let prop_bwire_replies_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Bwire: decode (encode replies) = replies"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 40) response_gen)
       ~print:(fun l ->
         String.concat "; " (List.map Wire.print_response l)))
    (fun resps ->
      let s = Bwire.encode_replies resps in
      match Bwire.decode s with
      | Ok (Bwire.Replies resps', n) ->
        n = String.length s
        && List.length resps = List.length resps'
        && List.for_all2 Wire.equal_response resps resps'
      | _ -> false)

let test_bwire_malformed () =
  let frame =
    Bwire.encode_commands
      [ Wire.Setup { src = 0; dst = 1; time = Some 2.5 }; Wire.Stats ]
  in
  (* every strict prefix is Truncated, with have/need consistent *)
  for i = 0 to String.length frame - 1 do
    match Bwire.decode (String.sub frame 0 i) with
    | Error (Bwire.Truncated { have; need }) ->
      Alcotest.(check int) "have is what arrived" i have;
      Alcotest.(check bool) "need beyond have" true (need > have);
      Alcotest.(check bool) "need within the full frame" true
        (need <= String.length frame)
    | _ -> Alcotest.failf "prefix of %d bytes should be Truncated" i
  done;
  (* a length word past the ceiling is Oversized, not a huge buffer *)
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (Bwire.max_frame_payload + 1));
  (match Bwire.decode (Bytes.to_string b) with
  | Error (Bwire.Oversized { declared; limit }) ->
    Alcotest.(check int) "declared" (Bwire.max_frame_payload + 1) declared;
    Alcotest.(check int) "limit" Bwire.max_frame_payload limit
  | _ -> Alcotest.fail "oversized length word should be refused");
  (* unknown kind byte *)
  let b = Bytes.of_string frame in
  Bytes.set b 4 '\x07';
  (match Bwire.decode (Bytes.to_string b) with
  | Error (Bwire.Corrupt _) -> ()
  | _ -> Alcotest.fail "unknown kind should be Corrupt");
  (* trailing bytes inside a well-formed frame *)
  let b = Bytes.of_string (frame ^ "\x00") in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length frame - 4 + 1));
  (match Bwire.decode (Bytes.to_string b) with
  | Error (Bwire.Corrupt _) -> ()
  | _ -> Alcotest.fail "trailing bytes should be Corrupt");
  (* frames decode back to back through [off] *)
  let second = Bwire.encode_replies [ Wire.Blocked; Wire.Done ] in
  let both = frame ^ second in
  match Bwire.decode both with
  | Ok (Bwire.Commands _, n) -> (
    match Bwire.decode ~off:n both with
    | Ok (Bwire.Replies [ Wire.Blocked; Wire.Done ], n2) ->
      Alcotest.(check int) "both frames consumed" (String.length both)
        (n + n2)
    | _ -> Alcotest.fail "second frame should decode at off")
  | _ -> Alcotest.fail "first frame should decode"

let test_malformed_commands () =
  let expect code line =
    match Wire.parse_command line with
    | Error (c, _) -> Alcotest.(check string) line code c
    | Ok c ->
      Alcotest.failf "%S parsed as %s" line (Wire.print_command c)
  in
  expect "bad-command" "";
  expect "bad-command" "   ";
  expect "bad-command" "FLOOP 1 2";
  expect "bad-argument" "SETUP 1";
  expect "bad-argument" "SETUP 1 2 3 4";
  expect "bad-argument" "SETUP one 2";
  expect "bad-argument" "SETUP 1 2 -0.5";
  expect "bad-argument" "SETUP 1 2 nan";
  expect "bad-argument" "TEARDOWN";
  expect "bad-argument" "TEARDOWN 1.5";
  expect "bad-argument" "FAIL";
  expect "bad-argument" "REPAIR x";
  expect "bad-argument" "RELOAD now";
  expect "bad-argument" "STATS 1";
  expect "bad-argument" "DRAIN please";
  expect "bad-argument" "QUIT 0";
  (* case-insensitive verbs, tolerant spacing *)
  (match Wire.parse_command "  setup  0   2  " with
  | Ok (Wire.Setup { src = 0; dst = 2; time = None }) -> ()
  | _ -> Alcotest.fail "lowercase SETUP with extra spaces should parse")

let test_malformed_responses () =
  let expect line =
    match Wire.parse_response line with
    | Error _ -> ()
    | Ok r ->
      Alcotest.failf "%S parsed as %s" line (Wire.print_response r)
  in
  expect "";
  expect "WAT";
  expect "ADMITTED 3";
  expect "ADMITTED 3 5";
  (* single-node path *)
  expect "ADMITTED x 0-1";
  expect "RELOADED soon";
  expect "STATS accepted=1";
  (* missing fields *)
  expect "ERR";
  (* ERR detail keeps inner spacing *)
  match Wire.parse_response "ERR bad-argument usage: SETUP <src> <dst>" with
  | Ok (Wire.Err { code = "bad-argument"; detail }) ->
    Alcotest.(check string) "detail" "usage: SETUP <src> <dst>" detail
  | _ -> Alcotest.fail "ERR with detail should parse"

(* ------------------------------------------------------------------ *)
(* protocol: session-level errors *)

let quadrangle ?(capacity = 20) () = Builders.full_mesh ~nodes:4 ~capacity

let test_session_errors () =
  let st = State.create (quadrangle ()) in
  let expect_err code resp =
    match resp with
    | Wire.Err { code = c; _ } -> Alcotest.(check string) "error code" code c
    | r -> Alcotest.failf "expected ERR %s, got %s" code (Wire.print_response r)
  in
  expect_err "bad-argument" (State.setup st ~src:0 ~dst:0 ~time:None);
  expect_err "bad-argument" (State.setup st ~src:(-1) ~dst:2 ~time:None);
  expect_err "bad-argument" (State.setup st ~src:0 ~dst:99 ~time:None);
  expect_err "unknown-call" (State.teardown st ~id:7);
  expect_err "no-such-link" (State.fail st ~link:999);
  expect_err "no-such-link" (State.repair st ~link:(-1));
  (* double teardown *)
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { id; _ } ->
    (match State.teardown st ~id with
    | Wire.Done -> ()
    | r -> Alcotest.failf "teardown: %s" (Wire.print_response r));
    expect_err "unknown-call" (State.teardown st ~id)
  | r -> Alcotest.failf "setup: %s" (Wire.print_response r));
  (* malformed lines answer a typed ERR and keep the connection *)
  (match Session.handle_line st "SETUP 1" with
  | Wire.Err { code = "bad-argument"; _ }, `Continue -> ()
  | r, _ ->
    Alcotest.failf "handle_line: %s" (Wire.print_response r));
  (match Session.handle_line st "QUIT" with
  | Wire.Done, `Quit -> ()
  | r, _ -> Alcotest.failf "QUIT: %s" (Wire.print_response r));
  (* draining refuses new work but allows teardown *)
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { id; _ } ->
    ignore (State.drain st : Wire.response);
    expect_err "draining" (State.setup st ~src:0 ~dst:2 ~time:None);
    Alcotest.(check bool) "not drained yet" false (State.drained st);
    (match State.teardown st ~id with
    | Wire.Done -> ()
    | r -> Alcotest.failf "teardown while draining: %s" (Wire.print_response r));
    Alcotest.(check bool) "drained" true (State.drained st)
  | r -> Alcotest.failf "setup: %s" (Wire.print_response r))

(* ------------------------------------------------------------------ *)
(* decisions: the daemon is Controller.decide, call for call *)

(* replay a trace through the state in the engine's event order:
   departures due at or before each arrival go first *)
let replay st (trace : Trace.t) =
  let departures = Event_queue.create () in
  let accepted = ref 0 and blocked = ref 0 in
  Array.iter
    (fun (call : Trace.call) ->
      Event_queue.pop_until departures ~time:call.Trace.time
        ~f:(fun _ id ->
          match State.teardown st ~id with
          | Wire.Done -> ()
          | r -> Alcotest.failf "teardown: %s" (Wire.print_response r));
      match
        State.setup st ~src:call.Trace.src ~dst:call.Trace.dst
          ~time:(Some call.Trace.time)
      with
      | Wire.Admitted { id; _ } ->
        incr accepted;
        Event_queue.push departures
          ~time:(call.Trace.time +. call.Trace.holding)
          id
      | Wire.Blocked -> incr blocked
      | r -> Alcotest.failf "setup: %s" (Wire.print_response r))
    trace.Trace.calls;
  (!accepted, !blocked)

let test_matches_batch_simulator () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let trace =
    Trace.generate ~rng:(Rng.create ~seed:7) ~duration:80. matrix
  in
  let routes = Route_table.build g in
  let stats =
    Engine.run ~warmup:0. ~graph:g
      ~policy:(Scheme.controlled_auto ~matrix routes)
      trace
  in
  let st = State.create ~matrix g in
  let accepted, blocked = replay st trace in
  Alcotest.(check int) "same offered" stats.Stats.offered (accepted + blocked);
  Alcotest.(check int) "same blocked" stats.Stats.blocked blocked;
  let s = State.stats st in
  Alcotest.(check int) "stats agree" accepted s.Wire.accepted;
  Alcotest.(check int) "stats agree" blocked s.Wire.blocked

let test_failure_rerouting () =
  let g = quadrangle ~capacity:5 () in
  let st = State.create g in
  let direct =
    (Route_table.primary (State.routes st) ~src:0 ~dst:1).Path.link_ids.(0)
  in
  (* an admitted call holding the link is dropped with it *)
  let id =
    match State.setup st ~src:0 ~dst:1 ~time:None with
    | Wire.Admitted { id; path } ->
      Alcotest.(check (list int)) "direct path" [ 0; 1 ] path;
      id
    | r -> Alcotest.failf "setup: %s" (Wire.print_response r)
  in
  (match State.fail st ~link:direct with
  | Wire.Done -> ()
  | r -> Alcotest.failf "fail: %s" (Wire.print_response r));
  Alcotest.(check int) "call dropped" 0 (State.active_calls st);
  Alcotest.(check int) "dropped counted" 1 (State.stats st).Wire.dropped;
  (match State.teardown st ~id with
  | Wire.Err { code = "unknown-call"; _ } -> ()
  | r -> Alcotest.failf "teardown of dropped call: %s" (Wire.print_response r));
  Alcotest.(check (list int)) "failed listed" [ direct ]
    (State.failed_links st);
  (* new calls route around the dead link *)
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { path; _ } ->
    Alcotest.(check bool) "rerouted on an alternate" true
      (List.length path > 2)
  | r -> Alcotest.failf "setup after fail: %s" (Wire.print_response r));
  (* repair restores the primary *)
  (match State.repair st ~link:direct with
  | Wire.Done -> ()
  | r -> Alcotest.failf "repair: %s" (Wire.print_response r));
  Alcotest.(check (list int)) "none failed" [] (State.failed_links st);
  match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { path; _ } ->
    Alcotest.(check (list int)) "direct again" [ 0; 1 ] path
  | r -> Alcotest.failf "setup after repair: %s" (Wire.print_response r)

let test_all_paths_dead_blocks () =
  let g = quadrangle ~capacity:5 () in
  let st = State.create g in
  (* kill every link out of node 0: nothing can leave *)
  Array.iter
    (fun (l : Link.t) ->
      if l.Link.src = 0 then
        match State.fail st ~link:l.Link.id with
        | Wire.Done -> ()
        | r -> Alcotest.failf "fail: %s" (Wire.print_response r))
    (Graph.links g);
  match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Blocked -> ()
  | r -> Alcotest.failf "expected BLOCKED, got %s" (Wire.print_response r)

let test_fail_repair_edge_cases () =
  let g = quadrangle ~capacity:5 () in
  let st = State.create g in
  let direct =
    (Route_table.primary (State.routes st) ~src:0 ~dst:1).Path.link_ids.(0)
  in
  let expect_done what resp =
    match resp with
    | Wire.Done -> ()
    | r -> Alcotest.failf "%s: %s" what (Wire.print_response r)
  in
  (* out-of-range links answer a typed ERR, not an exception *)
  (match State.fail st ~link:(Graph.link_count g) with
  | Wire.Err { code = "no-such-link"; _ } -> ()
  | r -> Alcotest.failf "fail out of range: %s" (Wire.print_response r));
  (match State.repair st ~link:(-1) with
  | Wire.Err { code = "no-such-link"; _ } -> ()
  | r -> Alcotest.failf "repair out of range: %s" (Wire.print_response r));
  (* REPAIR of a link that never failed is an idempotent no-op *)
  expect_done "repair of healthy link" (State.repair st ~link:direct);
  Alcotest.(check (list int)) "nothing failed" [] (State.failed_links st);
  (* an admitted call, then a double FAIL: the second changes nothing *)
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted _ -> ()
  | r -> Alcotest.failf "setup: %s" (Wire.print_response r));
  expect_done "first fail" (State.fail st ~link:direct);
  expect_done "second fail (idempotent)" (State.fail st ~link:direct);
  Alcotest.(check int) "victim dropped exactly once" 1
    (State.stats st).Wire.dropped;
  Alcotest.(check (list int)) "listed exactly once" [ direct ]
    (State.failed_links st);
  (* SETUP racing the failed primary lands on an alternate and is
     counted as a failover *)
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { path; _ } ->
    Alcotest.(check bool) "routed around the cut" true (List.length path > 2)
  | r -> Alcotest.failf "setup racing the cut: %s" (Wire.print_response r));
  Alcotest.(check int) "failover counted" 1 (State.stats st).Wire.failovers;
  (* after repair the primary carries again, with no new failover *)
  expect_done "repair" (State.repair st ~link:direct);
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { path; _ } ->
    Alcotest.(check (list int)) "direct again" [ 0; 1 ] path
  | r -> Alcotest.failf "setup after repair: %s" (Wire.print_response r));
  Alcotest.(check int) "failovers unchanged" 1 (State.stats st).Wire.failovers

(* LINK ADD / LINK DEL: the service-layer face of Route_table.patch.
   A patched daemon must agree with a freshly built one, survivors'
   circuits must follow the renumbered link ids, and scripted daemons
   must refuse patches outright. *)
let test_link_patch () =
  let g = quadrangle ~capacity:5 () in
  let st = State.create g in
  let m = Graph.link_count g in
  let expect_patched what resp =
    match resp with
    | Wire.Patched { recomputed } ->
      Alcotest.(check bool) (what ^ " recompiled something") true
        (recomputed >= 1)
    | r -> Alcotest.failf "%s: %s" what (Wire.print_response r)
  in
  (* typed errors, not exceptions *)
  (match State.link_add st ~src:0 ~dst:0 ~capacity:5 with
  | Wire.Err { code = "bad-argument"; _ } -> ()
  | r -> Alcotest.failf "self loop: %s" (Wire.print_response r));
  (match State.link_add st ~src:0 ~dst:1 ~capacity:5 with
  | Wire.Err { code = "link-exists"; _ } -> ()
  | r -> Alcotest.failf "duplicate: %s" (Wire.print_response r));
  (match State.link_del st ~src:0 ~dst:99 with
  | Wire.Err { code = "no-such-link"; _ } -> ()
  | r -> Alcotest.failf "missing link: %s" (Wire.print_response r));
  (* a bystander call on another pair, and a victim on 0 -> 1 *)
  let bystander =
    match State.setup st ~src:2 ~dst:3 ~time:None with
    | Wire.Admitted { id; _ } -> id
    | r -> Alcotest.failf "bystander setup: %s" (Wire.print_response r)
  in
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { path; _ } ->
    Alcotest.(check (list int)) "direct primary" [ 0; 1 ] path
  | r -> Alcotest.failf "victim setup: %s" (Wire.print_response r));
  expect_patched "del 0->1" (State.link_del st ~src:0 ~dst:1);
  Alcotest.(check int) "one link fewer" (m - 1)
    (Graph.link_count (State.graph st));
  Alcotest.(check int) "call on the dead link dropped" 1
    (State.stats st).Wire.dropped;
  (* the patched table is exactly what a full rebuild would produce *)
  Alcotest.(check bool) "patch = rebuild after del" true
    (Route_table.equal (State.routes st)
       (Route_table.build ~h:(Route_table.h (State.routes st))
          (State.graph st)));
  (* 0 -> 1 now rides a two-hop primary; no failover is counted because
     the table itself changed, nothing failed *)
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { id; path } ->
    Alcotest.(check int) "two hops now" 3 (List.length path);
    ignore (State.teardown st ~id : Wire.response)
  | r -> Alcotest.failf "setup after del: %s" (Wire.print_response r));
  Alcotest.(check int) "no failover" 0 (State.stats st).Wire.failovers;
  (* the bystander's circuits were remapped with the shifted ids: its
     teardown must release cleanly (release asserts occupancy > 0) *)
  (match State.teardown st ~id:bystander with
  | Wire.Done -> ()
  | r -> Alcotest.failf "bystander teardown: %s" (Wire.print_response r));
  Alcotest.(check (list int)) "occupancy fully drained" []
    (Array.to_list (State.occupancy st)
    |> List.filteri (fun _ o -> o <> 0));
  (* restore the arc; the direct route comes back *)
  expect_patched "add 0->1" (State.link_add st ~src:0 ~dst:1 ~capacity:5);
  Alcotest.(check int) "link count restored" m
    (Graph.link_count (State.graph st));
  Alcotest.(check bool) "patch = rebuild after add" true
    (Route_table.equal (State.routes st)
       (Route_table.build ~h:(Route_table.h (State.routes st))
          (State.graph st)));
  (match State.setup st ~src:0 ~dst:1 ~time:None with
  | Wire.Admitted { path; _ } ->
    Alcotest.(check (list int)) "direct again" [ 0; 1 ] path
  | r -> Alcotest.failf "setup after add: %s" (Wire.print_response r));
  (* a daemon driving a failure script refuses patches: script events
     address links by id, and patches shift ids *)
  let module S = Arnet_failure.Script in
  let scripted =
    State.create
      ~failure_script:
        (S.of_events [ { S.time = 5.; link = 0; action = S.Fail } ])
      (quadrangle ())
  in
  match State.link_del scripted ~src:0 ~dst:1 with
  | Wire.Err { code = "script-active"; _ } -> ()
  | r -> Alcotest.failf "scripted patch: %s" (Wire.print_response r)

let test_failure_script_follows_clock () =
  let module S = Arnet_failure.Script in
  let g = quadrangle ~capacity:5 () in
  let link = (Graph.find_link_exn g ~src:0 ~dst:1).Link.id in
  let script =
    S.of_events
      [ { S.time = 5.; link; action = S.Fail };
        { S.time = 8.; link; action = S.Repair } ]
  in
  let st = State.create ~failure_script:script g in
  let path_at t =
    match State.setup st ~src:0 ~dst:1 ~time:(Some t) with
    | Wire.Admitted { id; path } ->
      ignore (State.teardown st ~id : Wire.response);
      path
    | r -> Alcotest.failf "setup at %g: %s" t (Wire.print_response r)
  in
  Alcotest.(check (list int)) "before the cut: primary" [ 0; 1 ] (path_at 4.);
  Alcotest.(check (list int)) "no event fired yet" []
    (State.failed_links st);
  Alcotest.(check (list int)) "during the cut: alternate dodges it" [ 0; 2; 1 ]
    (path_at 6.);
  Alcotest.(check (list int)) "cut visible in stats" [ link ]
    (State.failed_links st);
  Alcotest.(check int) "counted as a failover" 1
    (State.stats st).Wire.failovers;
  Alcotest.(check (list int)) "after the scripted repair: primary again"
    [ 0; 1 ] (path_at 9.);
  Alcotest.(check (list int)) "repaired" [] (State.failed_links st);
  (* a script mentioning a link outside the graph is refused up front *)
  let bad =
    S.of_events
      [ { S.time = 1.; link = Graph.link_count g; action = S.Fail } ]
  in
  match State.create ~failure_script:bad g with
  | _ -> Alcotest.fail "out-of-graph script should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* online reconfiguration: reload tracks a drifting load *)

let test_reload_tracks_load_step () =
  (* unprotected start; a deterministic arrival stream on one pair at
     rate lambda1, then a step down to lambda2.  After enough windows
     the estimate converges and RELOAD must set the primary link's
     protection to Protection.level at the *new* demand. *)
  let g = quadrangle ~capacity:24 () in
  let st = State.create ~window:5. ~smoothing:0.5 g in
  let h = Route_table.h (State.routes st) in
  let link =
    (Route_table.primary (State.routes st) ~src:0 ~dst:1).Path.link_ids.(0)
  in
  let drive ~from ~until ~rate =
    let dt = 1. /. rate in
    let t = ref from in
    while !t < until do
      (match State.setup st ~src:0 ~dst:1 ~time:(Some !t) with
      | Wire.Admitted { id; _ } ->
        (* tear straight down: we are feeding the estimator, not
           filling the link *)
        ignore (State.teardown st ~id : Wire.response)
      | Wire.Blocked -> ()
      | r -> Alcotest.failf "setup: %s" (Wire.print_response r));
      t := !t +. dt
    done
  in
  let lambda1 = 30. and lambda2 = 18. in
  drive ~from:0. ~until:100. ~rate:lambda1;
  (match State.reload st with
  | Wire.Reloaded { changed } ->
    Alcotest.(check bool) "first reload changes the hot link" true
      (changed >= 1)
  | r -> Alcotest.failf "reload: %s" (Wire.print_response r));
  let r1 = (State.reserves st).(link) in
  Alcotest.(check int) "level at lambda1"
    (Protection.level ~offered:lambda1 ~capacity:24 ~h)
    r1;
  drive ~from:100. ~until:300. ~rate:lambda2;
  ignore (State.reload st : Wire.response);
  let r2 = (State.reserves st).(link) in
  Alcotest.(check int) "level follows the step to lambda2"
    (Protection.level ~offered:lambda2 ~capacity:24 ~h)
    r2;
  Alcotest.(check bool) "the step actually moved the level" true (r1 <> r2);
  (* unexercised links saw no set-ups: still unprotected *)
  Array.iteri
    (fun k r -> if k <> link then Alcotest.(check int) "idle link" 0 r)
    (State.reserves st);
  Alcotest.(check int) "reloads counted" 2 (State.stats st).Wire.reloads

let test_reload_every_cadence () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let st = State.create ~matrix ~reload_every:10 g in
  for i = 0 to 24 do
    match State.setup st ~src:(i mod 3) ~dst:3 ~time:(Some (float_of_int i)) with
    | Wire.Admitted _ | Wire.Blocked -> ()
    | r -> Alcotest.failf "setup: %s" (Wire.print_response r)
  done;
  (* 25 decisions at a 10-decision cadence: reloads at 10 and 20 *)
  Alcotest.(check int) "automatic reloads" 2 (State.stats st).Wire.reloads

(* ------------------------------------------------------------------ *)
(* snapshots *)

let test_snapshot_roundtrip () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let st = State.create ~matrix g in
  let trace =
    Trace.generate ~rng:(Rng.create ~seed:3) ~duration:30. matrix
  in
  ignore (replay st trace : int * int);
  ignore (State.fail st ~link:2 : Wire.response);
  let snap = State.snapshot st in
  Alcotest.(check bool) "snapshot round-trips" true
    (Arnet_serial.Snapshot.roundtrip_ok snap);
  let back =
    Arnet_serial.Snapshot.of_string (Arnet_serial.Snapshot.to_string snap)
  in
  Alcotest.(check bool) "equal after reparse" true
    (Arnet_serial.Snapshot.equal snap back)

let test_snapshot_parse_error () =
  let snap = State.snapshot (State.create (quadrangle ())) in
  let text = Arnet_serial.Snapshot.to_string snap ^ "occupancy 0 1 nope\n" in
  match Arnet_serial.Snapshot.of_string text with
  | _ -> Alcotest.fail "bad occupancy line should raise"
  | exception Arnet_serial.Snapshot.Parse_error (_, msg) ->
    Alcotest.(check bool) "message mentions the directive" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* end to end over a real socket *)

let socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "arnet-test-%d-%d.sock" (Unix.getpid ()) !counter)

let serve_and_load ?snapshot ?failure_script ~seed ~calls ~matrix g =
  let addr = Server.Unix_sock (socket_path ()) in
  let st = State.create ~matrix ?failure_script g in
  let server =
    Thread.create (fun () -> Server.serve ?snapshot ~state:st addr) ()
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try
           let ic, oc = Server.connect ~retry_for:5. addr in
           ignore (Server.request ic oc Wire.Drain : Wire.response);
           close_out_noerr oc;
           ignore (ic : in_channel)
         with _ -> ());
        Thread.join server)
      (fun () -> Loadgen.run ~retry_for:5. ~seed ~calls ~matrix ~addr ())
  in
  (st, result)

let test_socket_determinism () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let go () = serve_and_load ~seed:42 ~calls:2000 ~matrix g in
  let st1, r1 = go () in
  let st2, r2 = go () in
  Alcotest.(check int) "all calls sent" 2000 r1.Loadgen.calls;
  Alcotest.(check int) "no wire errors" 0 r1.Loadgen.errors;
  Alcotest.(check bool) "some accepted" true (r1.Loadgen.accepted > 0);
  Alcotest.(check bool) "some blocked" true (r1.Loadgen.blocked > 0);
  Alcotest.(check int) "accepted reproduce" r1.Loadgen.accepted
    r2.Loadgen.accepted;
  Alcotest.(check int) "blocked reproduce" r1.Loadgen.blocked
    r2.Loadgen.blocked;
  (* the daemon saw what the client counted, and drained clean *)
  List.iter
    (fun st ->
      let s = State.stats st in
      Alcotest.(check int) "daemon accepted" r1.Loadgen.accepted
        s.Wire.accepted;
      Alcotest.(check int) "every call torn down" s.Wire.accepted
        s.Wire.torn_down;
      Alcotest.(check bool) "drained" true (State.drained st))
    [ st1; st2 ]

let test_socket_drain_snapshot () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let path = Filename.temp_file "arnet-drain" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let st, result =
        serve_and_load ~snapshot:path ~seed:5 ~calls:500 ~matrix g
      in
      let snap = Arnet_serial.Snapshot.of_file path in
      Alcotest.(check bool) "drained state is empty" true
        (Array.for_all (fun o -> o = 0) snap.Arnet_serial.Snapshot.occupancy);
      Alcotest.(check (option int)) "accepted counter persisted"
        (Some result.Loadgen.accepted)
        (List.assoc_opt "accepted" snap.Arnet_serial.Snapshot.counters);
      Alcotest.(check int) "daemon agreed" result.Loadgen.accepted
        (State.stats st).Wire.accepted)

let test_socket_sharded_connections () =
  (* throughput mode: counts still conserved, daemon still drains *)
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let addr = Server.Unix_sock (socket_path ()) in
  let st = State.create ~matrix g in
  let server = Thread.create (fun () -> Server.serve ~state:st addr) () in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try
           let ic, oc = Server.connect ~retry_for:5. addr in
           ignore (Server.request ic oc Wire.Drain : Wire.response);
           close_out_noerr oc;
           ignore (ic : in_channel)
         with _ -> ());
        Thread.join server)
      (fun () ->
        Loadgen.run ~connections:4 ~retry_for:5. ~seed:11 ~calls:1000
          ~matrix ~addr ())
  in
  Alcotest.(check int) "all calls sent" 1000 result.Loadgen.calls;
  Alcotest.(check int) "accept + block = calls" 1000
    (result.Loadgen.accepted + result.Loadgen.blocked);
  Alcotest.(check int) "no wire errors" 0 result.Loadgen.errors;
  Alcotest.(check bool) "drained" true (State.drained st)

(* drive a trace over the socket in engine order, recording every
   response verbatim: the transcript *is* the run, so two identical
   transcripts mean decision-for-decision determinism *)
let drive_transcript addr (calls : Trace.call array) =
  let ic, oc = Server.connect ~retry_for:5. addr in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      ignore (ic : in_channel))
    (fun () ->
      let departures = Event_queue.create () in
      let log = Buffer.create 4096 in
      let request cmd =
        let r = Server.request ic oc cmd in
        Buffer.add_string log (Wire.print_response r);
        Buffer.add_char log '\n';
        r
      in
      Array.iter
        (fun (call : Trace.call) ->
          Event_queue.pop_until departures ~time:call.Trace.time
            ~f:(fun _ id -> ignore (request (Wire.Teardown { id })));
          match
            request
              (Wire.Setup
                 { src = call.Trace.src;
                   dst = call.Trace.dst;
                   time = Some call.Trace.time })
          with
          | Wire.Admitted { id; _ } ->
            Event_queue.push departures
              ~time:(call.Trace.time +. call.Trace.holding)
              id
          | _ -> ())
        calls;
      let rec flush () =
        match Event_queue.pop departures with
        | Some (_, id) ->
          ignore (request (Wire.Teardown { id }));
          flush ()
        | None -> ()
      in
      flush ();
      Buffer.contents log)

let test_socket_failure_storm () =
  let module S = Arnet_failure.Script in
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  (* 2000 arrivals at aggregate rate 180/tu span ~11 tu of virtual
     time; the storm cuts three directed links mid-load and repairs
     every one before the tail of the run *)
  let id src dst = (Graph.find_link_exn g ~src ~dst).Link.id in
  let ev time link action = { S.time; link; action } in
  let script =
    S.of_events
      [ ev 2. (id 0 1) S.Fail;
        ev 3. (id 1 2) S.Fail;
        ev 5. (id 0 1) S.Repair;
        ev 5.5 (id 2 3) S.Fail;
        ev 7. (id 1 2) S.Repair;
        ev 8. (id 2 3) S.Repair ]
  in
  let trace =
    Trace.generate ~rng:(Rng.create ~seed:42) ~duration:11. matrix
  in
  let go () =
    let addr = Server.Unix_sock (socket_path ()) in
    let st = State.create ~matrix ~failure_script:script g in
    let server = Thread.create (fun () -> Server.serve ~state:st addr) () in
    let transcript =
      Fun.protect
        ~finally:(fun () ->
          (try
             let ic, oc = Server.connect ~retry_for:5. addr in
             ignore (Server.request ic oc Wire.Drain : Wire.response);
             close_out_noerr oc;
             ignore (ic : in_channel)
           with _ -> ());
          Thread.join server)
        (fun () -> drive_transcript addr trace.Trace.calls)
    in
    (st, transcript)
  in
  let st1, t1 = go () in
  let st2, t2 = go () in
  Alcotest.(check string)
    "identical accept/block/ERR transcript across fresh daemons" t1 t2;
  let s1 = State.stats st1 and s2 = State.stats st2 in
  Alcotest.(check bool) "the storm dropped in-flight calls" true
    (s1.Wire.dropped > 0);
  Alcotest.(check bool) "and forced failovers" true (s1.Wire.failovers > 0);
  Alcotest.(check int) "drops reproduce" s1.Wire.dropped s2.Wire.dropped;
  Alcotest.(check int) "failovers reproduce" s1.Wire.failovers
    s2.Wire.failovers;
  (* each dropped call surfaces as exactly one ERR unknown-call when its
     teardown arrives *)
  let count_err t =
    List.length
      (List.filter
         (fun line ->
           match Wire.parse_response line with
           | Ok (Wire.Err { code = "unknown-call"; _ }) -> true
           | _ -> false)
         (String.split_on_char '\n' t))
  in
  Alcotest.(check int) "ERR per dropped call" s1.Wire.dropped (count_err t1);
  List.iter
    (fun st ->
      Alcotest.(check (list int)) "all cuts repaired" []
        (State.failed_links st);
      Alcotest.(check bool) "clean drain" true (State.drained st))
    [ st1; st2 ]

let test_socket_line_cap () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let addr = Server.Unix_sock (socket_path ()) in
  let st = State.create ~matrix g in
  let server = Thread.create (fun () -> Server.serve ~state:st addr) () in
  Fun.protect
    ~finally:(fun () ->
      (try
         let ic, oc = Server.connect ~retry_for:5. addr in
         ignore (Server.request ic oc Wire.Drain : Wire.response);
         close_out_noerr oc;
         ignore (ic : in_channel)
       with _ -> ());
      Thread.join server)
    (fun () ->
      let oversized = String.make (Server.max_line_bytes + 1) 'a' in
      let expect_toolong_and_close ~terminated ic oc =
        output_string oc oversized;
        if terminated then output_char oc '\n';
        flush oc;
        let reply = input_line ic in
        Alcotest.(check bool)
          (Printf.sprintf "ERR toolong reply (terminated=%b)" terminated)
          true
          (match Wire.parse_response reply with
          | Ok (Wire.Err { code = "toolong"; _ }) -> true
          | _ -> false);
        Alcotest.check_raises
          (Printf.sprintf "connection closed (terminated=%b)" terminated)
          End_of_file
          (fun () -> ignore (input_line ic : string));
        close_out_noerr oc
      in
      (* an oversized complete line *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      expect_toolong_and_close ~terminated:true ic oc;
      (* a newline-free flood must not buffer without bound either *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      expect_toolong_and_close ~terminated:false ic oc;
      (* only the offending connections died: the daemon still answers *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      (match Server.request ic oc Wire.Stats with
      | Wire.Stats_reply _ -> ()
      | r -> Alcotest.failf "unexpected reply %s" (Wire.print_response r));
      close_out_noerr oc;
      ignore (ic : in_channel))

(* ------------------------------------------------------------------ *)
(* the telemetry plane: live scrapes over a second listener *)

module J = Arnet_obs.Jsonu

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" what needle hay

(* a one-shot HTTP/1.0 exchange; [raw] sends the bytes verbatim so
   malformed request lines can be exercised *)
let http_get ?(raw = false) addr target =
  let ic, oc = Server.connect ~retry_for:5. addr in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      ignore (ic : in_channel))
    (fun () ->
      output_string oc
        (if raw then target
         else Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target);
      flush oc;
      In_channel.input_all ic)

let http_body resp =
  let marker = "\r\n\r\n" in
  let rec find i =
    if i + 4 > String.length resp then
      Alcotest.failf "no header/body split in %S" resp
    else if String.sub resp i 4 = marker then
      String.sub resp (i + 4) (String.length resp - i - 4)
    else find (i + 1)
  in
  find 0

let drain_and_join addr server =
  (try
     let ic, oc = Server.connect ~retry_for:5. addr in
     ignore (Server.request ic oc Wire.Drain : Wire.response);
     close_out_noerr oc;
     ignore (ic : in_channel)
   with _ -> ());
  Thread.join server

let test_telemetry_endpoints () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let addr = Server.Unix_sock (socket_path ()) in
  let tel = Server.Unix_sock (socket_path ()) in
  (* threshold 0: every command lands in the slow log *)
  let metrics = Service_metrics.create ~slow_threshold:0. () in
  let st =
    State.create ~matrix ~observer:(Service_metrics.observer metrics) g
  in
  let server =
    Thread.create
      (fun () -> Server.serve ~metrics ~telemetry:tel ~state:st addr)
      ()
  in
  Fun.protect
    ~finally:(fun () -> drain_and_join addr server)
    (fun () ->
      (* drive some traffic so every series has a value; each call is
         torn down at once so the daemon can drain even if an
         assertion below fails *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      for _ = 1 to 50 do
        match
          Server.request ic oc (Wire.Setup { src = 0; dst = 2; time = None })
        with
        | Wire.Admitted { id; _ } ->
          (match Server.request ic oc (Wire.Teardown { id }) with
          | Wire.Done -> ()
          | r -> Alcotest.failf "teardown: %s" (Wire.print_response r))
        | Wire.Blocked -> ()
        | r -> Alcotest.failf "unexpected reply %s" (Wire.print_response r)
      done;
      close_out_noerr oc;
      ignore (ic : in_channel);
      let resp = http_get tel "/metrics" in
      check_contains "status line" resp "HTTP/1.0 200 OK";
      check_contains "exposition content type" resp
        "Content-Type: text/plain; version=0.0.4; charset=utf-8";
      check_contains "connection close" resp "Connection: close";
      check_contains "type lines" resp "# TYPE";
      check_contains "latency histogram" resp
        "arn_command_latency_seconds_bucket";
      check_contains "latency verb label" resp {|verb="setup"|};
      check_contains "command counters" resp "arn_service_commands_total";
      check_contains "occupancy series" resp "arnet_link_occupancy";
      check_contains "capacity series" resp "arnet_link_capacity";
      check_contains "reserve series" resp "arnet_link_reserve";
      check_contains "pair counters" resp "arnet_pair_accepted_total";
      check_contains "uptime" resp "arn_process_uptime_seconds";
      check_contains "gc series" resp "arn_process_gc_minor_words";
      check_contains "live heap" resp "arn_process_live_words";
      (* health + stats endpoints *)
      let resp = http_get tel "/healthz" in
      check_contains "healthz" resp "HTTP/1.0 200 OK";
      Alcotest.(check string) "healthz body" "ok\n" (http_body resp);
      let resp = http_get tel "/statz" in
      check_contains "statz" resp "HTTP/1.0 200 OK";
      check_contains "statz is json" resp "Content-Type: application/json";
      let doc = J.parse (http_body resp) in
      Alcotest.(check int) "statz accepted+blocked" 50
        (J.as_int (J.member_exn "accepted" doc)
        + J.as_int (J.member_exn "blocked" doc));
      Alcotest.(check bool) "slow log populated" true
        (J.as_list (J.member_exn "slow_commands" doc) <> []);
      (* unknown path and wrong method *)
      check_contains "404" (http_get tel "/nope") "HTTP/1.0 404";
      check_contains "405"
        (http_get ~raw:true tel "POST /metrics HTTP/1.0\r\n\r\n")
        "HTTP/1.0 405";
      (* a malformed request line answers 400 and must not take the
         select loop down with it *)
      check_contains "400" (http_get ~raw:true tel "gibberish\r\n")
        "HTTP/1.0 400";
      check_contains "400 on binary garbage"
        (http_get ~raw:true tel "\x16\x03\x01\x02\x00\r\n")
        "HTTP/1.0 400";
      check_contains "scrapes survive bad requests" (http_get tel "/healthz")
        "HTTP/1.0 200 OK";
      let ic, oc = Server.connect ~retry_for:5. addr in
      (match Server.request ic oc Wire.Stats with
      | Wire.Stats_reply s ->
        Alcotest.(check int) "commands survive bad requests" 50
          (s.Wire.accepted + s.Wire.blocked)
      | r -> Alcotest.failf "unexpected reply %s" (Wire.print_response r));
      close_out_noerr oc;
      ignore (ic : in_channel))

let test_telemetry_scrape_determinism () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let go ~scrape () =
    let addr = Server.Unix_sock (socket_path ()) in
    let tel = Server.Unix_sock (socket_path ()) in
    let metrics = Service_metrics.create () in
    let st =
      State.create ~matrix ~observer:(Service_metrics.observer metrics) g
    in
    let server =
      Thread.create
        (fun () -> Server.serve ~metrics ~telemetry:tel ~state:st addr)
        ()
    in
    let stop = Atomic.make false in
    let scrapes = ref 0 in
    let scraper =
      if not scrape then None
      else
        Some
          (Thread.create
             (fun () ->
               while not (Atomic.get stop) do
                 (try
                    let resp = http_get tel "/metrics" in
                    if contains resp "HTTP/1.0 200 OK" then incr scrapes
                  with _ -> ());
                 Thread.yield ()
               done)
             ())
    in
    let result =
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Option.iter Thread.join scraper;
          drain_and_join addr server)
        (fun () ->
          Loadgen.run ~retry_for:5. ~seed:7 ~calls:800 ~matrix ~addr ())
    in
    (!scrapes, result)
  in
  let _, plain = go ~scrape:false () in
  let scrapes, scraped = go ~scrape:true () in
  Alcotest.(check bool) "the scraper actually ran" true (scrapes > 0);
  Alcotest.(check int) "accepted unchanged by live scraping"
    plain.Loadgen.accepted scraped.Loadgen.accepted;
  Alcotest.(check int) "blocked unchanged by live scraping"
    plain.Loadgen.blocked scraped.Loadgen.blocked;
  Alcotest.(check int) "no wire errors" 0 scraped.Loadgen.errors

(* ------------------------------------------------------------------ *)
(* the sharded daemon and the binary framing *)

(* [--domains 1] must be the pre-sharding daemon byte-for-byte: this
   session was recorded against the tree before the sharding refactor
   and frozen as service_transcript_d1.golden.  The drive below is the
   recorder, verbatim — raw lines (including the malformed ones) so
   whitespace tolerance and error text are pinned too. *)
let transcript_fixed_lines =
  [ "SETUP 0 1"; "SETUP 0 1 0.25"; "setup 0 1 0.5"; "  SETUP  0   1  0.75  ";
    "SETUP 0 1 1.0"; "SETUP 0 1 1.25"; "SETUP 0 1 1.5"; "SETUP 1 3 1.75";
    "SETUP 2 0 2.0"; "SETUP 0 9"; "SETUP x 1"; "SETUP 0 1 -1";
    "SETUP 0 1 0x2"; "TEARDOWN 1"; "TEARDOWN 1"; "TEARDOWN zz"; "STATS";
    "FAIL 0"; "SETUP 0 1 2.5"; "REPAIR 0"; "RELOAD"; "LINK DEL 0 1";
    "LINK ADD 0 1 3"; "LINK ADD 0 1 3"; "LINK DEL 9 9"; "FAIL 99";
    "HELLOBAD"; ""; "STATS" ]

let test_golden_transcript_d1 () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:3 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let st = State.create ~matrix g in
  let addr = Server.Unix_sock (socket_path ()) in
  let server =
    Thread.create (fun () -> Server.serve ~domains:1 ~state:st addr) ()
  in
  let transcript =
    Fun.protect
      ~finally:(fun () -> drain_and_join addr server)
      (fun () ->
        let ic, oc = Server.connect ~retry_for:5. addr in
        Fun.protect
          ~finally:(fun () ->
            close_out_noerr oc;
            ignore (ic : in_channel))
          (fun () ->
            let log = Buffer.create 4096 in
            let live = ref [] in
            let exchange line =
              Buffer.add_string log ("> " ^ line ^ "\n");
              output_string oc (line ^ "\n");
              flush oc;
              let reply = input_line ic in
              Buffer.add_string log ("< " ^ reply ^ "\n");
              (* track live calls: admitted ids in, OK-teardown ids out
                 (a call dropped by FAIL stays tracked — its teardown
                 answers ERR unknown-call, and the golden pins that) *)
              match Wire.parse_response reply with
              | Ok (Wire.Admitted { id; _ }) -> live := id :: !live
              | Ok Wire.Done -> (
                match Wire.parse_command line with
                | Ok (Wire.Teardown { id }) ->
                  live := List.filter (fun i -> i <> id) !live
                | _ -> ())
              | _ -> ()
            in
            List.iter exchange transcript_fixed_lines;
            exchange "DRAIN";
            exchange "SETUP 0 1 9.9";
            List.iter
              (fun id -> exchange (Printf.sprintf "TEARDOWN %d" id))
              (List.sort compare !live);
            Buffer.contents log))
  in
  let golden =
    (* cwd is test/ under dune runtest, the project root under
       dune exec *)
    let name = "service_transcript_d1.golden" in
    let path =
      if Sys.file_exists name then name else Filename.concat "test" name
    in
    In_channel.with_open_bin path In_channel.input_all
  in
  Alcotest.(check string) "pre-sharding transcript, byte for byte" golden
    transcript;
  Alcotest.(check bool) "drained" true (State.drained st)

(* the sharded daemon's one ordering guarantee: decisions are a total
   order.  Whatever interleaving the workers produce, replaying the
   tap-recorded merged order through a fresh state must reproduce
   every response — ids, paths, errors — and the aggregate counters. *)
let test_sharded_merged_order () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let st = State.create ~matrix g in
  let addr = Server.Unix_sock (socket_path ()) in
  let taped = ref [] in
  let tap cmd resp = taped := (cmd, resp) :: !taped in
  let server =
    Thread.create
      (fun () -> Server.serve ~domains:3 ~tap ~state:st addr)
      ()
  in
  let anomalies = Atomic.make 0 in
  Fun.protect
    ~finally:(fun () -> drain_and_join addr server)
    (fun () ->
      let worker k =
        Thread.create
          (fun () ->
            let ic, oc = Server.connect ~retry_for:5. addr in
            Fun.protect
              ~finally:(fun () ->
                close_out_noerr oc;
                ignore (ic : in_channel))
              (fun () ->
                for i = 0 to 59 do
                  let src = (k + i) mod 4 in
                  let dst = (src + 1 + (i mod 3)) mod 4 in
                  match
                    Server.request ic oc (Wire.Setup { src; dst; time = None })
                  with
                  | Wire.Admitted { id; _ } -> (
                    match Server.request ic oc (Wire.Teardown { id }) with
                    | Wire.Done -> ()
                    | _ -> Atomic.incr anomalies)
                  | Wire.Blocked -> ()
                  | _ -> Atomic.incr anomalies
                done;
                (* sprinkle control traffic into the merged order *)
                match Server.request ic oc Wire.Stats with
                | Wire.Stats_reply _ -> ()
                | _ -> Atomic.incr anomalies))
          ()
      in
      List.iter Thread.join (List.init 6 worker));
  Alcotest.(check int) "no anomalous replies" 0 (Atomic.get anomalies);
  Alcotest.(check bool) "drained" true (State.drained st);
  let order = List.rev !taped in
  Alcotest.(check bool) "tap saw the run" true (List.length order > 360);
  let st2 = State.create ~matrix (quadrangle ()) in
  List.iteri
    (fun i (cmd, resp) ->
      let replayed = Session.handle st2 cmd in
      if not (Wire.equal_response resp replayed) then
        Alcotest.failf "decision %d: daemon said %s, replay says %s" i
          (Wire.print_response resp)
          (Wire.print_response replayed))
    order;
  let s = State.stats st and s2 = State.stats st2 in
  Alcotest.(check int) "accepted reproduce" s.Wire.accepted s2.Wire.accepted;
  Alcotest.(check int) "blocked reproduce" s.Wire.blocked s2.Wire.blocked;
  Alcotest.(check int) "torn down reproduce" s.Wire.torn_down
    s2.Wire.torn_down

(* HELLO negotiation and hand-rolled frames over a live socket *)
let read_frame ic =
  let head = really_input_string ic 4 in
  let n = Int32.to_int (String.get_int32_be head 0) in
  let payload = really_input_string ic n in
  match Bwire.decode (head ^ payload) with
  | Ok (frame, _) -> frame
  | Error e -> Alcotest.failf "reply frame: %s" (Bwire.error_to_string e)

let expect_eof what ic =
  Alcotest.check_raises what End_of_file (fun () ->
      ignore (input_char ic : char))

let test_binary_upgrade () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let st = State.create ~matrix g in
  let addr = Server.Unix_sock (socket_path ()) in
  let server = Thread.create (fun () -> Server.serve ~state:st addr) () in
  Fun.protect
    ~finally:(fun () -> drain_and_join addr server)
    (fun () ->
      (* HELLO line is a no-op; an unknown mode is a typed ERR and the
         connection stays in line framing *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      (match Server.request ic oc (Wire.Hello { mode = "line" }) with
      | Wire.Done -> ()
      | r -> Alcotest.failf "HELLO line: %s" (Wire.print_response r));
      (match Server.request ic oc (Wire.Hello { mode = "morse" }) with
      | Wire.Err { code = "bad-argument"; _ } -> ()
      | r -> Alcotest.failf "HELLO morse: %s" (Wire.print_response r));
      (match Server.request ic oc Wire.Stats with
      | Wire.Stats_reply _ -> ()
      | r -> Alcotest.failf "still line framed: %s" (Wire.print_response r));
      close_out_noerr oc;
      (* upgrade, then one frame of mixed commands: one reply frame
         back, verdicts in order *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      (match Server.request ic oc (Wire.Hello { mode = "binary" }) with
      | Wire.Done -> ()
      | r -> Alcotest.failf "HELLO binary: %s" (Wire.print_response r));
      output_string oc
        (Bwire.encode_commands
           [ Wire.Setup { src = 0; dst = 1; time = None };
             Wire.Setup { src = 0; dst = 2; time = None };
             Wire.Teardown { id = 999_999 };
             Wire.Stats ]);
      flush oc;
      let ids =
        match read_frame ic with
        | Bwire.Replies
            [ Wire.Admitted { id = a; _ };
              Wire.Admitted { id = b; _ };
              Wire.Err { code = "unknown-call"; _ };
              Wire.Stats_reply s ] ->
          Alcotest.(check int) "stats through the frame" 2 s.Wire.accepted;
          [ a; b ]
        | Bwire.Replies rs ->
          Alcotest.failf "unexpected verdicts: %s"
            (String.concat "; " (List.map Wire.print_response rs))
        | Bwire.Commands _ -> Alcotest.fail "commands frame from the server"
      in
      (* a QUIT inside a batch: the frame is answered whole, then the
         connection closes *)
      output_string oc
        (Bwire.encode_commands
           (List.map (fun id -> Wire.Teardown { id }) ids @ [ Wire.Quit ]));
      flush oc;
      (match read_frame ic with
      | Bwire.Replies [ Wire.Done; Wire.Done; Wire.Done ] -> ()
      | _ -> Alcotest.fail "teardown+quit batch");
      expect_eof "closed after QUIT" ic;
      close_out_noerr oc;
      (* a reply frame from a client is connection-fatal: one ERR
         bad-frame reply frame, then close *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      ignore
        (Server.request ic oc (Wire.Hello { mode = "binary" })
          : Wire.response);
      output_string oc (Bwire.encode_replies [ Wire.Blocked ]);
      flush oc;
      (match read_frame ic with
      | Bwire.Replies [ Wire.Err { code = "bad-frame"; _ } ] -> ()
      | _ -> Alcotest.fail "reply frame should be refused");
      expect_eof "closed after bad frame" ic;
      close_out_noerr oc;
      (* an oversized length word likewise *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      ignore
        (Server.request ic oc (Wire.Hello { mode = "binary" })
          : Wire.response);
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 (Int32.of_int (Bwire.max_frame_payload + 1));
      output_string oc (Bytes.to_string b);
      flush oc;
      (match read_frame ic with
      | Bwire.Replies [ Wire.Err { code = "bad-frame"; _ } ] -> ()
      | _ -> Alcotest.fail "oversized frame should be refused");
      expect_eof "closed after oversized frame" ic;
      close_out_noerr oc;
      (* only the offending connections died *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      (match Server.request ic oc Wire.Stats with
      | Wire.Stats_reply _ -> ()
      | r -> Alcotest.failf "daemon gone: %s" (Wire.print_response r));
      close_out_noerr oc;
      ignore (ic : in_channel))

let test_binary_batch_loadgen () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let addr = Server.Unix_sock (socket_path ()) in
  let st = State.create ~matrix g in
  let server =
    Thread.create (fun () -> Server.serve ~domains:2 ~state:st addr) ()
  in
  let result =
    Fun.protect
      ~finally:(fun () -> drain_and_join addr server)
      (fun () ->
        Loadgen.run ~connections:2 ~retry_for:5. ~seed:11 ~calls:600 ~matrix
          ~addr ~binary:true ~batch:16 ())
  in
  Alcotest.(check int) "all calls sent" 600 result.Loadgen.calls;
  Alcotest.(check int) "accept + block = calls" 600
    (result.Loadgen.accepted + result.Loadgen.blocked);
  Alcotest.(check int) "no wire errors" 0 result.Loadgen.errors;
  Alcotest.(check bool) "a full batch was in flight" true
    (result.Loadgen.in_flight_max >= 16);
  Alcotest.(check bool) "never more than both pipelines" true
    (result.Loadgen.in_flight_max <= 32);
  Alcotest.(check bool) "drained" true (State.drained st)

let test_batch_metrics_scrape () =
  let g = quadrangle () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:15. in
  let addr = Server.Unix_sock (socket_path ()) in
  let tel = Server.Unix_sock (socket_path ()) in
  let metrics = Service_metrics.create () in
  let st =
    State.create ~matrix ~observer:(Service_metrics.observer metrics) g
  in
  let server =
    Thread.create
      (fun () ->
        Server.serve ~domains:2 ~metrics ~telemetry:tel ~state:st addr)
      ()
  in
  Fun.protect
    ~finally:(fun () -> drain_and_join addr server)
    (fun () ->
      ignore
        (Loadgen.run ~connections:2 ~retry_for:5. ~seed:3 ~calls:400 ~matrix
           ~addr ~binary:true ~batch:8 ()
          : Loadgen.result);
      (* a control command bumps the epoch the scrape reports *)
      let ic, oc = Server.connect ~retry_for:5. addr in
      (match Server.request ic oc Wire.Reload with
      | Wire.Reloaded _ -> ()
      | r -> Alcotest.failf "reload: %s" (Wire.print_response r));
      close_out_noerr oc;
      ignore (ic : in_channel);
      let resp = http_get tel "/metrics" in
      check_contains "scrape alive" resp "HTTP/1.0 200 OK";
      check_contains "batch histogram" resp "arnet_batch_size_bucket";
      check_contains "full batches observed" resp
        {|arnet_batch_size_bucket{le="8.0"}|};
      check_contains "per-domain counters" resp
        {|arnet_domain_requests_total{domain="1"}|};
      check_contains "both workers saw traffic" resp
        {|arnet_domain_requests_total{domain="2"}|};
      check_contains "epoch gauge" resp "arnet_service_epoch 1.0")

(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "service"
    [ ( "wire",
        [ qcheck prop_command_roundtrip;
          qcheck prop_response_roundtrip;
          qcheck prop_scanner_matches_general;
          Alcotest.test_case "malformed commands" `Quick
            test_malformed_commands;
          Alcotest.test_case "malformed responses" `Quick
            test_malformed_responses ] );
      ( "bwire",
        [ qcheck prop_bwire_commands_roundtrip;
          qcheck prop_bwire_replies_roundtrip;
          Alcotest.test_case "malformed frames" `Quick test_bwire_malformed ] );
      ( "protocol",
        [ Alcotest.test_case "session errors" `Quick test_session_errors ] );
      ( "decisions",
        [ Alcotest.test_case "matches the batch simulator" `Quick
            test_matches_batch_simulator;
          Alcotest.test_case "failure rerouting" `Quick
            test_failure_rerouting;
          Alcotest.test_case "all paths dead blocks" `Quick
            test_all_paths_dead_blocks;
          Alcotest.test_case "fail/repair edge cases" `Quick
            test_fail_repair_edge_cases;
          Alcotest.test_case "link add/del patches routes" `Quick
            test_link_patch;
          Alcotest.test_case "failure script follows the clock" `Quick
            test_failure_script_follows_clock ] );
      ( "reload",
        [ Alcotest.test_case "tracks a load step" `Quick
            test_reload_tracks_load_step;
          Alcotest.test_case "reload-every cadence" `Quick
            test_reload_every_cadence ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "parse error" `Quick test_snapshot_parse_error ] );
      ( "socket",
        [ Alcotest.test_case "determinism across fresh daemons" `Slow
            test_socket_determinism;
          Alcotest.test_case "drain writes the snapshot" `Slow
            test_socket_drain_snapshot;
          Alcotest.test_case "sharded connections" `Slow
            test_socket_sharded_connections;
          Alcotest.test_case "failure storm is deterministic" `Slow
            test_socket_failure_storm;
          Alcotest.test_case "oversized lines are rejected" `Quick
            test_socket_line_cap ] );
      ( "telemetry",
        [ Alcotest.test_case "live endpoints" `Quick test_telemetry_endpoints;
          Alcotest.test_case "scraping does not perturb admission" `Slow
            test_telemetry_scrape_determinism ] );
      ( "sharded",
        [ Alcotest.test_case "--domains 1 is the pre-sharding daemon" `Slow
            test_golden_transcript_d1;
          Alcotest.test_case "merged order replays decision for decision"
            `Slow test_sharded_merged_order;
          Alcotest.test_case "HELLO binary upgrade and raw frames" `Slow
            test_binary_upgrade;
          Alcotest.test_case "batched binary load conserves counts" `Slow
            test_binary_batch_loadgen;
          Alcotest.test_case "batch and domain series scrape" `Slow
            test_batch_metrics_scrape ] ) ]
