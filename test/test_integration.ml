(* End-to-end checks of the paper's headline claims, at reduced scale:
   the qualitative results must already be visible with a few seeds. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

(* domains from ARNET_DOMAINS so CI's parallel job drives the end-to-end
   checks through the Domain pool; results are bit-identical either way *)
let config =
  { Arnet_experiments.Config.seeds = [ 1; 2; 3 ];
    duration = 60.;
    warmup = 10.;
    domains = Arnet_sim.Pool.of_env () }

let run_schemes ~graph ~routes ~matrix ~with_ott =
  let policies =
    [ Scheme.single_path routes;
      Scheme.uncontrolled routes;
      Scheme.controlled_auto ~matrix routes ]
    @ (if with_ott then [ Scheme.ott_krishnan ~matrix routes ] else [])
  in
  let { Arnet_experiments.Config.seeds; duration; warmup; domains } =
    config
  in
  Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix ~policies
    ()
  |> List.map (fun (name, runs) -> (name, Stats.blocking_summary runs))

let mean results name = (List.assoc name results).Stats.mean

(* ------------------------------------------------------------------ *)

let test_quadrangle_headline () =
  let graph = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Route_table.build graph in
  (* moderate load: alternate routing must beat single-path *)
  let moderate = Matrix.uniform ~nodes:4 ~demand:80. in
  let r80 = run_schemes ~graph ~routes ~matrix:moderate ~with_ott:false in
  Alcotest.(check bool) "80E: uncontrolled beats single-path" true
    (mean r80 "uncontrolled" < mean r80 "single-path");
  Alcotest.(check bool) "80E: controlled beats single-path" true
    (mean r80 "controlled" < mean r80 "single-path");
  (* overload: uncontrolled collapses, controlled must not *)
  let overload = Matrix.uniform ~nodes:4 ~demand:100. in
  let r100 = run_schemes ~graph ~routes ~matrix:overload ~with_ott:false in
  Alcotest.(check bool) "100E: uncontrolled collapses past single-path" true
    (mean r100 "uncontrolled" > mean r100 "single-path");
  Alcotest.(check bool) "100E: controlled within noise of single-path" true
    (mean r100 "controlled" <= mean r100 "single-path" +. 0.01)

let test_quadrangle_guarantee_across_loads () =
  let graph = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Route_table.build graph in
  List.iter
    (fun load ->
      let matrix = Matrix.uniform ~nodes:4 ~demand:load in
      let r = run_schemes ~graph ~routes ~matrix ~with_ott:false in
      Alcotest.(check bool)
        (Printf.sprintf "guarantee at %g Erlangs" load)
        true
        (mean r "controlled" <= mean r "single-path" +. 0.012))
    [ 60.; 80.; 90.; 100.; 110. ]

let test_nsfnet_headline () =
  let routes, nominal = Arnet_experiments.Internet.nominal () in
  let graph = Route_table.graph routes in
  (* moderate load *)
  let moderate = Matrix.scale nominal 0.8 in
  let r = run_schemes ~graph ~routes ~matrix:moderate ~with_ott:false in
  Alcotest.(check bool) "0.8x: alternate routing beats single-path" true
    (mean r "uncontrolled" < mean r "single-path"
    && mean r "controlled" < mean r "single-path");
  (* overload *)
  let overload = Matrix.scale nominal 1.4 in
  let r' = run_schemes ~graph ~routes ~matrix:overload ~with_ott:true in
  Alcotest.(check bool) "1.4x: controlled never worse than single-path" true
    (mean r' "controlled" <= mean r' "single-path" +. 0.012);
  Alcotest.(check bool) "1.4x: ott-krishnan poor on the sparse mesh" true
    (mean r' "ott-krishnan" > mean r' "controlled");
  (* everything above the Erlang bound *)
  let bound = Arnet_bound.Erlang_bound.compute graph overload in
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s above erlang bound" name)
        true
        (s.Stats.mean +. 0.01 >= bound))
    r'

let test_nsfnet_link_failure_keeps_ordering () =
  let _, nominal = Arnet_experiments.Internet.nominal () in
  let graph =
    Graph.without_links (Nsfnet.graph ()) [ (2, 3); (3, 2) ]
  in
  let routes = Route_table.build graph in
  let matrix = Matrix.scale nominal 1.3 in
  let r = run_schemes ~graph ~routes ~matrix ~with_ott:false in
  Alcotest.(check bool) "controlled still never worse" true
    (mean r "controlled" <= mean r "single-path" +. 0.012)

let test_controlled_behaves_like_uncontrolled_at_low_load () =
  (* at low load protection thresholds are rarely hit: the two schemes
     should make nearly identical decisions *)
  let graph = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Route_table.build graph in
  let matrix = Matrix.uniform ~nodes:4 ~demand:60. in
  let r = run_schemes ~graph ~routes ~matrix ~with_ott:false in
  Alcotest.(check bool) "both near zero blocking" true
    (mean r "uncontrolled" < 0.005 && mean r "controlled" < 0.005)

let test_alternate_usage_shrinks_under_control () =
  (* at overload the controlled scheme routes fewer calls on alternates
     than the uncontrolled one — protection at work *)
  let graph = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Route_table.build graph in
  let matrix = Matrix.uniform ~nodes:4 ~demand:100. in
  let { Arnet_experiments.Config.seeds; duration; warmup; domains } =
    config
  in
  let results =
    Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix
      ~policies:
        [ Scheme.uncontrolled routes; Scheme.controlled_auto ~matrix routes ]
      ()
  in
  let alt name =
    (Stats.summarize
       (List.map Stats.alternate_fraction (List.assoc name results)))
      .Stats.mean
  in
  Alcotest.(check bool) "controlled uses fewer alternates" true
    (alt "controlled" < alt "uncontrolled")

let test_single_link_matches_erlang_b () =
  (* the fundamental calibration: an isolated M/M/C/C link simulated by
     the engine must reproduce the Erlang-B formula *)
  let capacity = 20 and offered = 16. in
  let graph =
    Graph.create ~nodes:2 [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity ]
  in
  let routes = Route_table.build graph in
  let matrix =
    Matrix.make ~nodes:2 (fun i _ -> if i = 0 then offered else 0.)
  in
  let results =
    Engine.replicate ~warmup:10. ~seeds:(List.init 10 (fun i -> 100 + i))
      ~duration:210. ~graph ~matrix
      ~policies:[ Scheme.single_path routes ]
      ()
  in
  let s = Stats.blocking_summary (List.assoc "single-path" results) in
  let lo, hi = Stats.confidence_95 s in
  let analytic = Arnet_erlang.Erlang_b.blocking ~offered ~capacity in
  Alcotest.(check bool)
    (Printf.sprintf "Erlang B %.4f inside 95%% CI [%.4f, %.4f]" analytic lo hi)
    true
    (* allow a slightly widened interval: warm-up bias is small but real *)
    (analytic >= lo -. 0.005 && analytic <= hi +. 0.005)

let test_confidence_interval_basics () =
  let s = Stats.summarize [ 1.; 2.; 3. ] in
  let lo, hi = Stats.confidence_95 s in
  (* df = 2, t = 4.303, stderr = 1/sqrt 3 *)
  Alcotest.(check (float 1e-3)) "lower" (2. -. (4.303 /. sqrt 3.)) lo;
  Alcotest.(check (float 1e-3)) "upper" (2. +. (4.303 /. sqrt 3.)) hi;
  let single = Stats.summarize [ 5. ] in
  Alcotest.(check (pair (float 0.) (float 0.))) "degenerate" (5., 5.)
    (Stats.confidence_95 single)

let test_cli_building_blocks_consistent () =
  (* protection level from the paper load equals the level from the
     fitted matrix (end-to-end Table 1 pipeline) *)
  let routes, fit = Fit.nsfnet_nominal () in
  let levels = Protection.levels routes fit.Fit.matrix ~h:11 in
  let g = Route_table.graph routes in
  List.iter
    (fun ((src, dst), (_, r11)) ->
      let id = (Graph.find_link_exn g ~src ~dst).Link.id in
      Alcotest.(check int)
        (Printf.sprintf "pipeline level %d->%d" src dst)
        r11 levels.(id))
    Nsfnet.table1_protection

let () =
  Alcotest.run "integration"
    [ ( "quadrangle",
        [ Alcotest.test_case "headline shapes" `Slow test_quadrangle_headline;
          Alcotest.test_case "guarantee across loads" `Slow
            test_quadrangle_guarantee_across_loads;
          Alcotest.test_case "low-load equivalence" `Slow
            test_controlled_behaves_like_uncontrolled_at_low_load;
          Alcotest.test_case "alternate usage shrinks" `Slow
            test_alternate_usage_shrinks_under_control ] );
      ( "nsfnet",
        [ Alcotest.test_case "headline shapes" `Slow test_nsfnet_headline;
          Alcotest.test_case "link failure ordering" `Slow
            test_nsfnet_link_failure_keeps_ordering;
          Alcotest.test_case "table-1 pipeline" `Quick
            test_cli_building_blocks_consistent ] );
      ( "calibration",
        [ Alcotest.test_case "single link = Erlang B" `Slow
            test_single_link_matches_erlang_b;
          Alcotest.test_case "confidence intervals" `Quick
            test_confidence_interval_basics ] ) ]
