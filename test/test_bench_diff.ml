(* The bench regression comparator: identical documents are clean,
   injected regressions are flagged per direction, totals are only
   compared over identical section sets, and malformed documents fail
   loudly rather than reporting a hollow pass. *)

module BD = Arnet_experiments.Bench_diff
module J = Arnet_obs.Jsonu

let doc ?(total = None) ?(service = None) sections =
  let section (name, fields) =
    J.Obj (("name", J.String name) :: fields)
  in
  J.Obj
    (("sections", J.List (List.map section sections))
     :: (match total with
        | Some t -> [ ("total_calls_per_s", J.Float t) ]
        | None -> [])
    @ match service with
      | Some r -> [ ("service", J.Obj [ ("requests_per_s", J.Float r) ]) ]
      | None -> [])

let fig3 ~calls_per_s ~words =
  ("fig3",
   [ ("calls_per_s", J.Float calls_per_s);
     ("minor_words_per_call", J.Float words) ])

let find report ~section ~metric =
  match
    List.find_opt
      (fun r -> r.BD.section = section && r.BD.metric = metric)
      report.BD.rows
  with
  | Some r -> r
  | None -> Alcotest.failf "no row for %s/%s" section metric

let test_identical () =
  let d =
    doc ~total:(Some 5000.) ~service:(Some 12000.)
      [ fig3 ~calls_per_s:4000. ~words:0.3;
        ("serve", [ ("calls_per_s", J.Float 1000. ) ]) ]
  in
  let report = BD.compare ~old_doc:d ~new_doc:d () in
  Alcotest.(check int) "all comparisons present" 5 (List.length report.BD.rows);
  Alcotest.(check (list string)) "nothing missing" [] report.BD.missing_in_new;
  Alcotest.(check int) "no regressions" 0 (List.length (BD.regressions report));
  List.iter
    (fun r -> Alcotest.(check (float 0.)) "zero delta" 0. r.BD.delta_pct)
    report.BD.rows

let test_throughput_regression () =
  let old_doc = doc ~total:(Some 4000.) [ fig3 ~calls_per_s:4000. ~words:0.3 ]
  and new_doc = doc ~total:(Some 3000.) [ fig3 ~calls_per_s:3000. ~words:0.3 ] in
  let report = BD.compare ~tolerance:10. ~old_doc ~new_doc () in
  let r = find report ~section:"fig3" ~metric:"calls_per_s" in
  Alcotest.(check bool) "25% drop regresses" true r.BD.regressed;
  Alcotest.(check (float 0.01)) "signed delta" (-25.) r.BD.delta_pct;
  let t = find report ~section:"total" ~metric:"calls_per_s" in
  Alcotest.(check bool) "totals regress too" true t.BD.regressed;
  (* a wide tolerance swallows the same drop *)
  let lax = BD.compare ~tolerance:30. ~old_doc ~new_doc () in
  Alcotest.(check int) "30% tolerance passes" 0
    (List.length (BD.regressions lax));
  (* improvements never regress, whatever the size *)
  let report = BD.compare ~tolerance:10. ~old_doc:new_doc ~new_doc:old_doc () in
  Alcotest.(check int) "speedup is clean" 0 (List.length (BD.regressions report))

let test_allocation_floor () =
  (* 0.02 -> 0.9 words/call is under the 1-word absolute floor at 100%
     of... no: floor is max(|old|,1)*tol/100 = 0.1 words at 10%.  So a
     +0.08 wobble passes and a +0.2 climb fails *)
  let with_words w = doc [ fig3 ~calls_per_s:4000. ~words:w ] in
  let report =
    BD.compare ~tolerance:10. ~old_doc:(with_words 0.02)
      ~new_doc:(with_words 0.1) ()
  in
  Alcotest.(check bool) "sub-floor wobble is noise" false
    (find report ~section:"fig3" ~metric:"minor_words_per_call").BD.regressed;
  let report =
    BD.compare ~tolerance:10. ~old_doc:(with_words 0.02)
      ~new_doc:(with_words 0.25) ()
  in
  Alcotest.(check bool) "past the floor regresses" true
    (find report ~section:"fig3" ~metric:"minor_words_per_call").BD.regressed;
  (* on an allocating section the floor is relative again *)
  let with_words w = doc [ fig3 ~calls_per_s:4000. ~words:w ] in
  let report =
    BD.compare ~tolerance:10. ~old_doc:(with_words 50.)
      ~new_doc:(with_words 60.) ()
  in
  Alcotest.(check bool) "+20% allocation regresses" true
    (find report ~section:"fig3" ~metric:"minor_words_per_call").BD.regressed

let test_section_sets () =
  let old_doc =
    doc ~total:(Some 5000.)
      [ fig3 ~calls_per_s:4000. ~words:0.3;
        ("serve", [ ("calls_per_s", J.Float 1000.) ]) ]
  and new_doc =
    doc ~total:(Some 4200.)
      [ fig3 ~calls_per_s:4100. ~words:0.3;
        ("pool", [ ("calls_per_s", J.Float 100.) ]) ]
  in
  let report = BD.compare ~old_doc ~new_doc () in
  Alcotest.(check (list string)) "missing" [ "serve" ] report.BD.missing_in_new;
  Alcotest.(check (list string)) "extra" [ "pool" ] report.BD.extra_in_new;
  Alcotest.(check bool) "totals not compared over different sets" true
    (List.for_all (fun r -> r.BD.section <> "total") report.BD.rows)

let test_service_row () =
  let mk r = doc ~service:(Some r) [ fig3 ~calls_per_s:4000. ~words:0.3 ] in
  let report = BD.compare ~tolerance:10. ~old_doc:(mk 10000.) ~new_doc:(mk 8000.) () in
  let r = find report ~section:"service" ~metric:"requests_per_s" in
  Alcotest.(check bool) "service throughput gated" true r.BD.regressed

let test_malformed () =
  let check_shape name d =
    match BD.compare ~old_doc:d ~new_doc:d () with
    | _ -> Alcotest.failf "%s: accepted a malformed document" name
    | exception J.Parse_error _ -> ()
  in
  check_shape "no sections" (J.Obj [ ("totals", J.Int 3) ]);
  check_shape "sections not a list" (J.Obj [ ("sections", J.Int 3) ]);
  check_shape "unnamed section"
    (J.Obj [ ("sections", J.List [ J.Obj [ ("calls", J.Int 1) ] ]) ]);
  let d = doc [ fig3 ~calls_per_s:1. ~words:0. ] in
  match BD.compare ~tolerance:(-1.) ~old_doc:d ~new_doc:d () with
  | _ -> Alcotest.fail "negative tolerance accepted"
  | exception Invalid_argument _ -> ()

let test_compile_rows () =
  (* the compile sweep gates the machine-relative speedups, matched by
     mesh size, and contributes nothing when either document lacks it *)
  let compile_doc ~memoized ~patch =
    let row =
      J.Obj
        [ ("nodes", J.Int 1000);
          ("reference_s", J.Float 184.);
          ("memoized_speedup", J.Float memoized);
          ("patch_speedup", J.Float patch) ]
    in
    match doc [ fig3 ~calls_per_s:4000. ~words:0.3 ] with
    | J.Obj fields -> J.Obj (fields @ [ ("compile", J.List [ row ]) ])
    | _ -> assert false
  in
  let old_doc = compile_doc ~memoized:14. ~patch:21.
  and new_doc = compile_doc ~memoized:9. ~patch:22. in
  let report = BD.compare ~tolerance:10. ~old_doc ~new_doc () in
  let r = find report ~section:"compile:n1000" ~metric:"memoized_speedup" in
  Alcotest.(check bool) "memoized slowdown regresses" true r.BD.regressed;
  let p = find report ~section:"compile:n1000" ~metric:"patch_speedup" in
  Alcotest.(check bool) "patch speedup gain is clean" false p.BD.regressed;
  (* speedup rows are ratios of two timed runs, gated at 2x tolerance:
     a -14% drop regresses a single-measurement metric at 10% but not a
     ratio row *)
  let report =
    BD.compare ~tolerance:10. ~old_doc
      ~new_doc:(compile_doc ~memoized:12. ~patch:21.) ()
  in
  let r = find report ~section:"compile:n1000" ~metric:"memoized_speedup" in
  Alcotest.(check bool) "ratio wobble inside 2x tolerance is noise" false
    r.BD.regressed;
  let plain = doc [ fig3 ~calls_per_s:4000. ~words:0.3 ] in
  let report = BD.compare ~old_doc:plain ~new_doc ~tolerance:10. () in
  Alcotest.(check bool) "absent sweep contributes no rows" true
    (List.for_all
       (fun r -> not (String.length r.BD.section >= 8
                      && String.sub r.BD.section 0 8 = "compile:"))
       report.BD.rows)

let test_json_shape () =
  let old_doc = doc [ fig3 ~calls_per_s:4000. ~words:0.3 ]
  and new_doc = doc [ fig3 ~calls_per_s:3000. ~words:0.3 ] in
  let report = BD.compare ~tolerance:10. ~old_doc ~new_doc () in
  let j = BD.to_json report in
  let rows = J.as_list (J.member_exn "rows" j) in
  Alcotest.(check int) "rows serialised" (List.length report.BD.rows)
    (List.length rows);
  let first = List.hd rows in
  Alcotest.(check string) "section" "fig3"
    (J.as_string (J.member_exn "section" first));
  Alcotest.(check bool) "regressed flag" true
    (J.as_bool
       (J.member_exn "regressed"
          (List.find
             (fun r -> J.as_string (J.member_exn "metric" r) = "calls_per_s")
             rows)));
  (* the report prints and ends with a verdict line *)
  let text = Format.asprintf "%a" BD.print report in
  Alcotest.(check bool) "verdict line present" true
    (let needle = "regressed beyond" in
     let nl = String.length needle and hl = String.length text in
     let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "bench_diff"
    [ ( "compare",
        [ Alcotest.test_case "identical runs are clean" `Quick test_identical;
          Alcotest.test_case "throughput regression" `Quick
            test_throughput_regression;
          Alcotest.test_case "allocation floor" `Quick test_allocation_floor;
          Alcotest.test_case "differing section sets" `Quick test_section_sets;
          Alcotest.test_case "service row" `Quick test_service_row;
          Alcotest.test_case "malformed documents" `Quick test_malformed;
          Alcotest.test_case "compile sweep rows" `Quick test_compile_rows;
          Alcotest.test_case "json report" `Quick test_json_shape ] ) ]
