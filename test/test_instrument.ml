open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let mk_call time src dst holding = { Trace.time; src; dst; holding; u = 0. }

let setup () =
  let g = Graph.of_edges ~nodes:2 ~capacity:2 [ (0, 1) ] in
  let routes = Route_table.build g in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  (g, Arnet_core.Scheme.single_path routes, matrix)

let test_identical_decisions () =
  let g, policy, matrix = setup () in
  let rng = Rng.create ~seed:3 in
  let trace = Trace.generate ~rng ~duration:40. matrix in
  let plain = Engine.run ~warmup:5. ~graph:g ~policy trace in
  let recorder = Instrument.create g in
  let wrapped = Instrument.wrap recorder policy in
  let instrumented = Engine.run ~warmup:5. ~graph:g ~policy:wrapped trace in
  Alcotest.(check int) "same blocked" plain.Stats.blocked
    instrumented.Stats.blocked;
  Alcotest.(check int) "same offered" plain.Stats.offered
    instrumented.Stats.offered;
  Alcotest.(check int) "every decision observed" (Trace.call_count trace)
    (Instrument.samples recorder)

let test_occupancy_statistics () =
  let g, policy, matrix = setup () in
  let recorder = Instrument.create g in
  let wrapped = Instrument.wrap recorder policy in
  (* one long call occupies the link when the later calls arrive; the
     third arrives before the second departs *)
  let trace =
    Trace.of_calls ~matrix ~duration:20.
      [ mk_call 1. 0 1 15.; mk_call 2. 0 1 1.; mk_call 2.5 0 1 1. ]
  in
  let _ = Engine.run ~warmup:0. ~graph:g ~policy:wrapped trace in
  let id = (Graph.find_link_exn g ~src:0 ~dst:1).Link.id in
  (* occupancies seen at the 3 arrivals: 0, 1, 2 -> mean 1 *)
  Alcotest.(check (float 1e-9)) "mean occupancy" 1.
    (Instrument.mean_occupancy recorder).(id);
  Alcotest.(check (float 1e-9)) "mean utilization" 0.5
    (Instrument.mean_utilization recorder).(id);
  Alcotest.(check int) "peak" 2 (Instrument.peak_occupancy recorder).(id)

let test_hop_histogram_and_log () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:1 in
  let routes = Route_table.build g in
  let matrix = Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 1 then 1. else 0.) in
  let policy = Arnet_core.Scheme.uncontrolled routes in
  let recorder = Instrument.create ~log_limit:2 g in
  let wrapped = Instrument.wrap recorder policy in
  (* first call direct (1 hop), second detours (2 hops), third lost *)
  let trace =
    Trace.of_calls ~matrix ~duration:20.
      [ mk_call 1. 0 1 10.; mk_call 2. 0 1 10.; mk_call 3. 0 1 10. ]
  in
  let _ = Engine.run ~warmup:0. ~graph:g ~policy:wrapped trace in
  let h = Instrument.hop_histogram recorder in
  Alcotest.(check int) "lost" 1 h.(0);
  Alcotest.(check int) "direct" 1 h.(1);
  Alcotest.(check int) "two-hop" 1 h.(2);
  (* the bounded log kept the first two decisions *)
  match Instrument.log recorder with
  | [ a; b ] ->
    Alcotest.(check (option int)) "first routed direct" (Some 1)
      a.Instrument.routed_hops;
    Alcotest.(check (option int)) "second routed detour" (Some 2)
      b.Instrument.routed_hops;
    Alcotest.(check bool) "chronological" true
      (a.Instrument.time < b.Instrument.time)
  | l -> Alcotest.failf "expected 2 log entries, got %d" (List.length l)

let test_log_keep_newest () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:1 in
  let routes = Route_table.build g in
  let matrix =
    Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 1 then 1. else 0.)
  in
  let policy = Arnet_core.Scheme.uncontrolled routes in
  let recorder = Instrument.create ~log_limit:2 ~keep:`Newest g in
  let wrapped = Instrument.wrap recorder policy in
  (* same workload as the histogram test: routed, detoured, lost — a
     rolling window keeps the LAST two decisions *)
  let trace =
    Trace.of_calls ~matrix ~duration:20.
      [ mk_call 1. 0 1 10.; mk_call 2. 0 1 10.; mk_call 3. 0 1 10. ]
  in
  let _ = Engine.run ~warmup:0. ~graph:g ~policy:wrapped trace in
  match Instrument.log recorder with
  | [ a; b ] ->
    Alcotest.(check (option int)) "oldest kept is the detour" (Some 2)
      a.Instrument.routed_hops;
    Alcotest.(check (option int)) "newest is the loss" None
      b.Instrument.routed_hops;
    Alcotest.(check bool) "chronological" true
      (a.Instrument.time < b.Instrument.time)
  | l -> Alcotest.failf "expected 2 log entries, got %d" (List.length l)

let test_counters_accessor () =
  let g, policy, matrix = setup () in
  let recorder = Instrument.create g in
  let wrapped = Instrument.wrap recorder policy in
  let rng = Rng.create ~seed:5 in
  let trace = Trace.generate ~rng ~duration:30. matrix in
  let stats = Engine.run ~warmup:0. ~graph:g ~policy:wrapped trace in
  match Arnet_obs.Counters.runs (Instrument.counters recorder) with
  | [ run ] ->
    Alcotest.(check int) "offered via counter sink" stats.Stats.offered
      run.Arnet_obs.Counters.offered;
    Alcotest.(check int) "blocked via counter sink" stats.Stats.blocked
      run.Arnet_obs.Counters.blocked
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

let test_validation () =
  let g, _, _ = setup () in
  check_invalid "negative log limit" (fun () ->
      ignore (Instrument.create ~log_limit:(-1) g))

let () =
  Alcotest.run "instrument"
    [ ( "instrument",
        [ Alcotest.test_case "identical decisions" `Quick
            test_identical_decisions;
          Alcotest.test_case "occupancy statistics" `Quick
            test_occupancy_statistics;
          Alcotest.test_case "hop histogram and log" `Quick
            test_hop_histogram_and_log;
          Alcotest.test_case "log keep newest" `Quick test_log_keep_newest;
          Alcotest.test_case "counters accessor" `Quick
            test_counters_accessor;
          Alcotest.test_case "validation" `Quick test_validation ] ) ]
