(* The observability subsystem: JSON encoding, event round-trips, the
   sinks (ring, JSONL, counters, metrics), spans — and the load-bearing
   property that a counter sink fed by an observed run reproduces the
   run's Stats exactly. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
module Obs = Arnet_obs
module E = Obs.Event
module J = Obs.Jsonu

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let event = Alcotest.testable E.pp E.equal

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" what needle hay

(* one event of every kind *)
let specimen_events =
  [ E.Run_start
      { policy = "controlled"; warmup = 5.; duration = 50.; nodes = 4;
        links = 12 };
    E.Arrival { time = 6.25; src = 0; dst = 3; holding = 1.5 };
    E.Primary_attempt { time = 6.25; src = 0; dst = 3; hops = 1;
                        admitted = false };
    E.Alternate_rejected
      { time = 6.25; src = 0; dst = 3; hops = 2; link = 7; occupancy = 19;
        threshold = 18 };
    E.Admit { time = 6.25; src = 0; dst = 3; hops = 2; primary = false;
              links = [| 4; 7 |] };
    E.Block { time = 7.5; src = 1; dst = 2 };
    E.Departure { time = 7.75; links = [| 4; 7 |] };
    E.Run_end { time = 50.; calls = 123 } ]

(* ------------------------------------------------------------------ *)
(* Jsonu *)

let test_jsonu_round_trip () =
  let v =
    J.Obj
      [ ("s", J.String "a\"b\\c\nd\tz");
        ("i", J.Int (-42));
        ("f", J.Float 0.1);
        ("big", J.Float 1.2345678901234567e300);
        ("null", J.Null);
        ("flags", J.List [ J.Bool true; J.Bool false ]);
        ("nested", J.Obj [ ("empty_list", J.List []); ("empty", J.Obj []) ]) ]
  in
  let reparsed = J.parse (J.to_string v) in
  Alcotest.(check string) "stable under reparse" (J.to_string v)
    (J.to_string reparsed);
  (match J.member_exn "f" reparsed with
  | J.Float f -> Alcotest.(check (float 0.)) "float exact" 0.1 f
  | _ -> Alcotest.fail "f not a float");
  Alcotest.(check int) "int exact" (-42) (J.as_int (J.member_exn "i" reparsed));
  Alcotest.(check string) "string with escapes" "a\"b\\c\nd\tz"
    (J.as_string (J.member_exn "s" reparsed))

let test_jsonu_errors () =
  let raises s =
    match J.parse s with
    | exception J.Parse_error _ -> ()
    | _ -> Alcotest.failf "parse %S should have failed" s
  in
  raises "{";
  raises "[1,]";
  raises "{\"a\":1,}";
  raises "nul";
  raises "\"unterminated";
  raises "1 2"

(* ------------------------------------------------------------------ *)
(* Event *)

let test_event_round_trip () =
  List.iter
    (fun ev ->
      Alcotest.check event (E.kind ev) ev
        (E.of_json_string (E.to_json_string ev)))
    specimen_events;
  Alcotest.(check (list string)) "every kind exercised" (List.sort compare E.kinds)
    (List.sort_uniq compare (List.map E.kind specimen_events));
  match E.of_json_string {|{"ev":"martian","t":0}|} with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown kind should not decode"

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_wraparound () =
  let r = Obs.Ring.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Obs.Ring.length r);
  let ev t = E.Block { time = t; src = 0; dst = 1 } in
  List.iter (fun t -> Obs.Ring.push r (ev t)) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "length capped" 3 (Obs.Ring.length r);
  Alcotest.(check int) "seen all" 5 (Obs.Ring.seen r);
  Alcotest.(check int) "dropped oldest" 2 (Obs.Ring.dropped r);
  Alcotest.(check (list event)) "kept the newest, oldest first"
    [ ev 3.; ev 4.; ev 5. ] (Obs.Ring.contents r);
  Obs.Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Obs.Ring.length r);
  Alcotest.(check int) "capacity unchanged" 3 (Obs.Ring.capacity r);
  check_invalid "zero capacity" (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Sink combinators *)

let test_sink_tee_filter () =
  let a = Obs.Ring.create ~capacity:10 and b = Obs.Ring.create ~capacity:10 in
  let only_blocks =
    Obs.Sink.filter (fun ev -> E.kind ev = "block") (Obs.Ring.sink b)
  in
  let sink = Obs.Sink.tee [ Obs.Ring.sink a; only_blocks ] in
  List.iter (Obs.Sink.emit sink) specimen_events;
  Alcotest.(check int) "tee broadcast" (List.length specimen_events)
    (Obs.Ring.length a);
  Alcotest.(check (list event)) "filter kept only blocks"
    [ E.Block { time = 7.5; src = 1; dst = 2 } ]
    (Obs.Ring.contents b)

(* ------------------------------------------------------------------ *)
(* Jsonl *)

let temp_file () = Filename.temp_file "arnet_obs_test" ".jsonl"

let test_jsonl_round_trip () =
  let path = temp_file () in
  let sink = Obs.Jsonl.sink_of_file path in
  List.iter (Obs.Sink.emit sink) specimen_events;
  Obs.Sink.close sink;
  Alcotest.(check (list event)) "file round-trips the stream"
    specimen_events (Obs.Jsonl.read_file path);
  let n =
    Obs.Jsonl.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1)
  in
  Alcotest.(check int) "fold sees every line" (List.length specimen_events) n;
  Sys.remove path

let test_jsonl_malformed () =
  let path = temp_file () in
  let oc = open_out path in
  output_string oc (E.to_json_string (List.hd specimen_events));
  output_string oc "\n\nnot json\n";
  close_out oc;
  (match Obs.Jsonl.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1) with
  | exception J.Parse_error msg ->
    (* the error names the file and the (blank-line-counting) line *)
    check_contains "error location" msg (path ^ ":3")
  | _ -> Alcotest.fail "malformed line should raise");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counters_framing () =
  let c = Obs.Counters.create () in
  let emit = Obs.Counters.emit c in
  emit (E.Run_start
          { policy = "a"; warmup = 5.; duration = 50.; nodes = 3; links = 6 });
  (* warm-up arrival: counted as an arrival but not offered *)
  emit (E.Arrival { time = 1.; src = 0; dst = 1; holding = 1. });
  emit (E.Block { time = 1.; src = 0; dst = 1 });
  emit (E.Arrival { time = 6.; src = 0; dst = 1; holding = 1. });
  emit (E.Admit { time = 6.; src = 0; dst = 1; hops = 1; primary = true;
                  links = [| 0 |] });
  emit (E.Arrival { time = 7.; src = 0; dst = 2; holding = 1. });
  emit (E.Admit { time = 7.; src = 0; dst = 2; hops = 2; primary = false;
                  links = [| 0; 1 |] });
  emit (E.Run_end { time = 50.; calls = 3 });
  emit (E.Run_start
          { policy = "b"; warmup = 5.; duration = 50.; nodes = 3; links = 6 });
  emit (E.Arrival { time = 8.; src = 0; dst = 1; holding = 1. });
  emit (E.Block { time = 8.; src = 0; dst = 1 });
  (match Obs.Counters.runs c with
  | [ ra; rb ] ->
    Alcotest.(check string) "first policy" "a" ra.Obs.Counters.policy;
    Alcotest.(check int) "arrivals include warm-up" 3 ra.Obs.Counters.arrivals;
    Alcotest.(check int) "offered excludes warm-up" 2 ra.Obs.Counters.offered;
    Alcotest.(check int) "warm-up block not counted" 0 ra.Obs.Counters.blocked;
    Alcotest.(check int) "primary carried" 1 ra.Obs.Counters.carried_primary;
    Alcotest.(check int) "alternate carried" 1
      ra.Obs.Counters.carried_alternate;
    Alcotest.(check (option int)) "calls from run_end" (Some 3)
      ra.Obs.Counters.calls;
    Alcotest.(check (float 1e-12)) "run a blocking" 0.
      (Obs.Counters.blocking ra);
    Alcotest.(check (float 1e-12)) "run a alternate fraction" 0.5
      (Obs.Counters.alternate_fraction ra);
    Alcotest.(check (array int)) "hop histogram" [| 0; 1; 1 |]
      (Obs.Counters.hop_histogram ra);
    Alcotest.(check string) "second policy" "b" rb.Obs.Counters.policy;
    Alcotest.(check (float 1e-12)) "run b blocking" 1.
      (Obs.Counters.blocking rb)
  | runs -> Alcotest.failf "expected 2 runs, got %d" (List.length runs));
  Alcotest.(check (list string)) "grouped by policy" [ "a"; "b" ]
    (List.map fst (Obs.Counters.by_policy c))

let test_counters_implicit_run_warmup () =
  let c = Obs.Counters.create ~warmup:5. () in
  let emit = Obs.Counters.emit c in
  emit (E.Arrival { time = 1.; src = 0; dst = 1; holding = 1. });
  emit (E.Arrival { time = 6.; src = 0; dst = 1; holding = 1. });
  emit (E.Alternate_rejected
          { time = 6.; src = 0; dst = 1; hops = 2; link = 3; occupancy = 9;
            threshold = 8 });
  emit (E.Alternate_rejected
          { time = 6.5; src = 0; dst = 1; hops = 3; link = 3; occupancy = 9;
            threshold = 8 });
  emit (E.Block { time = 6.5; src = 0; dst = 1 });
  match Obs.Counters.runs c with
  | [ r ] ->
    Alcotest.(check string) "implicit run has no policy" ""
      r.Obs.Counters.policy;
    Alcotest.(check int) "offered" 1 r.Obs.Counters.offered;
    Alcotest.(check int) "rejections" 2 r.Obs.Counters.alternate_rejections;
    Alcotest.(check (list (pair int int))) "per-link rejections" [ (3, 2) ]
      (Obs.Counters.rejections_by_link r)
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

(* ------------------------------------------------------------------ *)
(* observed engine runs: the stream reproduces Stats *)

let quadrangle_setup ~demand =
  let g = Builders.full_mesh ~nodes:4 ~capacity:10 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand in
  (g, routes, matrix)

let check_run_matches_stats run (stats : Stats.t) =
  Alcotest.(check int) "offered" stats.Stats.offered run.Obs.Counters.offered;
  Alcotest.(check int) "blocked" stats.Stats.blocked run.Obs.Counters.blocked;
  Alcotest.(check int) "carried primary" stats.Stats.carried_primary
    run.Obs.Counters.carried_primary;
  Alcotest.(check int) "carried alternate" stats.Stats.carried_alternate
    run.Obs.Counters.carried_alternate;
  Alcotest.(check int) "alternate hops" stats.Stats.alternate_hops
    run.Obs.Counters.alternate_hops;
  Alcotest.(check (float 1e-12)) "blocking" (Stats.blocking stats)
    (Obs.Counters.blocking run);
  Alcotest.(check (float 1e-12)) "alternate fraction"
    (Stats.alternate_fraction stats)
    (Obs.Counters.alternate_fraction run)

let test_counter_sink_matches_run_stats () =
  let g, routes, matrix = quadrangle_setup ~demand:9. in
  let counters = Obs.Counters.create () in
  let observer = Obs.Counters.emit counters in
  let policy =
    Arnet_core.Scheme.controlled ~observer
      ~reserves:(Array.make (Graph.link_count g) 2)
      routes
  in
  let rng = Rng.create ~seed:17 in
  let trace = Trace.generate ~rng ~duration:30. matrix in
  let stats = Engine.run ~warmup:5. ~observer ~graph:g ~policy trace in
  match Obs.Counters.runs counters with
  | [ run ] ->
    Alcotest.(check string) "policy name" "controlled"
      run.Obs.Counters.policy;
    Alcotest.(check (option int)) "run_end call count"
      (Some (Trace.call_count trace))
      run.Obs.Counters.calls;
    check_run_matches_stats run stats;
    Alcotest.(check bool) "stream carries decision detail" true
      (run.Obs.Counters.primary_attempts > 0);
    (* every measured call that was offered attempted its primary *)
    Alcotest.(check int) "one primary attempt per offered call"
      run.Obs.Counters.offered run.Obs.Counters.primary_attempts;
    (* in-window departures were streamed too *)
    Alcotest.(check bool) "departures observed" true
      (run.Obs.Counters.departures > 0)
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

let test_replicate_observed_matches_stats () =
  let g, routes, matrix = quadrangle_setup ~demand:9. in
  let counters = Obs.Counters.create () in
  let emit = Obs.Counters.emit counters in
  let policies =
    [ Arnet_core.Scheme.single_path ~observer:emit routes;
      Arnet_core.Scheme.uncontrolled ~observer:emit routes ]
  in
  let results =
    Engine.replicate ~warmup:5. ~observe:(fun ~seed:_ ~policy:_ -> Some emit)
      ~seeds:[ 41; 42 ] ~duration:25. ~graph:g ~matrix ~policies ()
  in
  let groups = Obs.Counters.by_policy counters in
  Alcotest.(check (list string)) "policy grouping mirrors replicate"
    (List.map fst results) (List.map fst groups);
  List.iter2
    (fun (_, stats_list) (_, runs) ->
      Alcotest.(check int) "one frame per seed" (List.length stats_list)
        (List.length runs);
      List.iter2 check_run_matches_stats runs stats_list)
    results groups

let test_unobserved_runs_emit_nothing () =
  (* the zero-cost default: no observer, no events — and identical
     decisions whether or not a run is observed *)
  let g, routes, matrix = quadrangle_setup ~demand:9. in
  let counters = Obs.Counters.create () in
  let observer = Obs.Counters.emit counters in
  let rng = Rng.create ~seed:23 in
  let trace = Trace.generate ~rng ~duration:20. matrix in
  let plain =
    Engine.run ~warmup:5. ~graph:g
      ~policy:(Arnet_core.Scheme.uncontrolled routes) trace
  in
  Alcotest.(check int) "no events without an observer" 0
    (Obs.Counters.total_events counters);
  let observed =
    Engine.run ~warmup:5. ~observer ~graph:g
      ~policy:(Arnet_core.Scheme.uncontrolled ~observer routes)
      trace
  in
  Alcotest.(check int) "same blocked either way" plain.Stats.blocked
    observed.Stats.blocked;
  Alcotest.(check bool) "observed run streamed" true
    (Obs.Counters.total_events counters > 0)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_registry () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~help:"calls in" "calls_total" in
  Obs.Metrics.inc c;
  Obs.Metrics.inc_by c 2.;
  Alcotest.(check (float 0.)) "counter value" 3. (Obs.Metrics.counter_value c);
  check_invalid "negative increment" (fun () -> Obs.Metrics.inc_by c (-1.));
  let c' = Obs.Metrics.counter reg "calls_total" in
  Obs.Metrics.inc c';
  Alcotest.(check (float 0.)) "same (name,labels) shares the series" 4.
    (Obs.Metrics.counter_value c);
  let g0 = Obs.Metrics.gauge reg ~labels:[ ("link", "0") ] "occupancy" in
  let g1 = Obs.Metrics.gauge reg ~labels:[ ("link", "1") ] "occupancy" in
  Obs.Metrics.set g0 5.;
  Obs.Metrics.add g0 (-2.);
  Obs.Metrics.set g1 7.;
  Alcotest.(check (float 0.)) "gauge set/add" 3. (Obs.Metrics.gauge_value g0);
  Alcotest.(check (float 0.)) "labels separate series" 7.
    (Obs.Metrics.gauge_value g1);
  check_invalid "kind mismatch on a taken name" (fun () ->
      ignore (Obs.Metrics.gauge reg "calls_total"));
  check_invalid "invalid metric name" (fun () ->
      ignore (Obs.Metrics.counter reg "0bad"));
  check_invalid "invalid label name" (fun () ->
      ignore (Obs.Metrics.counter reg ~labels:[ ("0bad", "1") ] "ok_name"))

let test_metrics_histogram () =
  let reg = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram reg ~buckets:[| 1.; 2.; 4. |] "holding_time"
  in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.5; 3.; 8. ];
  Alcotest.(check int) "count" 4 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 1e-12)) "sum" 13. (Obs.Metrics.histogram_sum h);
  (match Obs.Metrics.histogram_buckets h with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, cinf) ] ->
    Alcotest.(check (float 0.)) "bound 1" 1. b1;
    Alcotest.(check int) "le 1" 1 c1;
    Alcotest.(check (float 0.)) "bound 2" 2. b2;
    Alcotest.(check int) "le 2 cumulative" 2 c2;
    Alcotest.(check (float 0.)) "bound 4" 4. b3;
    Alcotest.(check int) "le 4 cumulative" 3 c3;
    Alcotest.(check bool) "+Inf bound" true (binf = infinity);
    Alcotest.(check int) "+Inf holds all" 4 cinf
  | l -> Alcotest.failf "expected 4 buckets, got %d" (List.length l));
  check_invalid "non-increasing buckets" (fun () ->
      ignore (Obs.Metrics.histogram reg ~buckets:[| 2.; 1. |] "bad"));
  check_invalid "re-register with different buckets" (fun () ->
      ignore (Obs.Metrics.histogram reg ~buckets:[| 1. |] "holding_time"));
  let lb = Obs.Metrics.log_buckets ~lo:0.01 ~hi:100. ~per_decade:1 in
  Alcotest.(check int) "one bound per decade" 5 (Array.length lb);
  Array.iteri
    (fun i b ->
      Alcotest.(check (float 1e-9)) "log spacing" (0.01 *. (10. ** float_of_int i)) b)
    lb

let test_metrics_rendering () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~help:"total simulation events" "events_total" in
  Obs.Metrics.inc_by c 7.;
  let g =
    Obs.Metrics.gauge reg ~labels:[ ("link", "a\\b\n") ] "occupancy"
  in
  Obs.Metrics.set g 2.;
  let h = Obs.Metrics.histogram reg ~buckets:[| 1. |] "latency" in
  Obs.Metrics.observe h 0.5;
  let text = Obs.Metrics.to_prometheus reg in
  check_contains "help line" text "# HELP events_total total simulation events";
  check_contains "type line" text "# TYPE events_total counter";
  check_contains "counter sample" text "events_total 7.0";
  check_contains "escaped label value" text
    {|occupancy{link="a\\b\n"} 2.0|};
  check_contains "histogram bucket" text {|latency_bucket{le="1.0"} 1|};
  check_contains "inf bucket" text {|latency_bucket{le="+Inf"} 1|};
  check_contains "histogram sum" text "latency_sum 0.5";
  check_contains "histogram count" text "latency_count 1";
  (* JSON rendering parses and carries the same figures *)
  let json = J.parse (Obs.Metrics.to_json_string reg) in
  let counter_family = J.member_exn "events_total" json in
  Alcotest.(check string) "json kind" "counter"
    (J.as_string (J.member_exn "type" counter_family));
  (match J.as_list (J.member_exn "series" counter_family) with
  | [ s ] ->
    Alcotest.(check (float 0.)) "json value" 7.
      (J.as_float (J.member_exn "value" s))
  | l -> Alcotest.failf "expected 1 series, got %d" (List.length l))

let test_metrics_sink () =
  let m = Obs.Metrics_sink.create (Obs.Metrics.create ()) in
  let emit = Obs.Metrics_sink.emit m in
  emit (E.Run_start
          { policy = "p"; warmup = 0.; duration = 10.; nodes = 2; links = 2 });
  emit (E.Arrival { time = 1.; src = 0; dst = 1; holding = 2. });
  emit (E.Admit { time = 1.; src = 0; dst = 1; hops = 1; primary = true;
                  links = [| 0 |] });
  emit (E.Arrival { time = 2.; src = 0; dst = 1; holding = 2. });
  emit (E.Alternate_rejected
          { time = 2.; src = 0; dst = 1; hops = 2; link = 1; occupancy = 5;
            threshold = 4 });
  emit (E.Block { time = 2.; src = 0; dst = 1 });
  emit (E.Departure { time = 3.; links = [| 0 |] });
  emit (E.Run_end { time = 10.; calls = 2 });
  Alcotest.(check int) "events seen" 8 (Obs.Metrics_sink.events m);
  let reg = Obs.Metrics_sink.registry m in
  let value name labels =
    Obs.Metrics.counter_value (Obs.Metrics.counter reg ~labels name)
  in
  Alcotest.(check (float 0.)) "offered" 2. (value "arnet_calls_offered_total" []);
  Alcotest.(check (float 0.)) "blocked" 1. (value "arnet_calls_blocked_total" []);
  Alcotest.(check (float 0.)) "admitted primary" 1.
    (value "arnet_calls_admitted_total" [ ("route", "primary") ]);
  Alcotest.(check (float 0.)) "per-link rejections" 1.
    (value "arnet_alt_rejected_total" [ ("link", "1") ]);
  Alcotest.(check (float 0.)) "arrival events counted" 2.
    (value "arnet_events_total" [ ("kind", "arrival") ]);
  let occupancy =
    Obs.Metrics.gauge_value
      (Obs.Metrics.gauge reg ~labels:[ ("link", "0") ] "arnet_link_occupancy")
  in
  Alcotest.(check (float 0.)) "occupancy back to zero after departure" 0.
    occupancy;
  Obs.Sink.close (Obs.Metrics_sink.sink m);
  let text = Obs.Metrics.to_prometheus reg in
  check_contains "throughput gauge rendered" text "arnet_events_per_second"

(* ------------------------------------------------------------------ *)
(* Instrument rides the counter sink *)

let test_instrument_counters_equivalence () =
  let g, routes, matrix = quadrangle_setup ~demand:9. in
  let policy =
    Arnet_core.Scheme.controlled
      ~reserves:(Array.make (Graph.link_count g) 2)
      routes
  in
  let recorder = Instrument.create g in
  let rng = Rng.create ~seed:31 in
  let trace = Trace.generate ~rng ~duration:25. matrix in
  (* warm-up 0 on both sides: the recorder counts everything it sees *)
  let stats =
    Engine.run ~warmup:0. ~graph:g ~policy:(Instrument.wrap recorder policy)
      trace
  in
  match Obs.Counters.runs (Instrument.counters recorder) with
  | [ run ] -> check_run_matches_stats run stats
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

(* ------------------------------------------------------------------ *)
(* Span *)

let test_span () =
  let s = Obs.Span.start "phase" in
  Alcotest.(check bool) "running" false (Obs.Span.finished s);
  let d = Obs.Span.stop s in
  Alcotest.(check bool) "finished" true (Obs.Span.finished s);
  Alcotest.(check bool) "non-negative" true (d >= 0.);
  Alcotest.(check (float 0.)) "stop is idempotent" d (Obs.Span.stop s);
  Alcotest.(check (float 0.)) "elapsed frozen" d (Obs.Span.elapsed s);
  Obs.Span.set_meta s "calls" (J.Int 1);
  Obs.Span.set_meta s "calls" (J.Int 2);
  let json = Obs.Span.to_json s in
  Alcotest.(check string) "name serialized" "phase"
    (J.as_string (J.member_exn "name" json));
  Alcotest.(check bool) "wall clock serialized" true
    (J.as_float (J.member_exn "wall_s" json) >= 0.);
  Alcotest.(check int) "meta replaced, not duplicated" 2
    (J.as_int (J.member_exn "calls" json))

let test_span_recorder () =
  let r = Obs.Span.recorder () in
  let x = Obs.Span.record r "first" (fun () -> 41 + 1) in
  Alcotest.(check int) "record returns the result" 42 x;
  (match Obs.Span.record r "second" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception should propagate");
  match Obs.Span.spans r with
  | [ a; b ] ->
    Alcotest.(check string) "order kept" "first" (Obs.Span.name a);
    Alcotest.(check string) "raising phase still recorded" "second"
      (Obs.Span.name b);
    Alcotest.(check bool) "both finished" true
      (Obs.Span.finished a && Obs.Span.finished b)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* exposition escaping *)

let test_escaping_goldens () =
  Alcotest.(check string) "label escaping" {|a\\b\"c\nd|}
    (Obs.Metrics.escape_label_value "a\\b\"c\nd");
  Alcotest.(check string) "unknown escapes pass through" {|\x|}
    (Obs.Metrics.unescape_label_value {|\x|});
  Alcotest.(check string) "trailing backslash passes through" {|a\|}
    (Obs.Metrics.unescape_label_value {|a\|});
  Alcotest.(check string) "help escaping" {|multi\nline \\ slash "quoted"|}
    (Obs.Metrics.escape_help "multi\nline \\ slash \"quoted\"");
  (* a help text with specials renders escaped, on one line *)
  let reg = Obs.Metrics.create () in
  ignore
    (Obs.Metrics.counter reg ~help:"line one\nline two \\ done" "weird_total");
  let text = Obs.Metrics.to_prometheus reg in
  check_contains "escaped help line" text
    {|# HELP weird_total line one\nline two \\ done|};
  List.iter
    (fun line ->
      if contains line "# HELP" then
        check_contains "help stays on its line" line "weird_total")
    (String.split_on_char '\n' text)

let test_escape_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000 ~name:"unescape (escape s) = s"
       QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.char)
       (fun s ->
         Obs.Metrics.unescape_label_value (Obs.Metrics.escape_label_value s)
         = s))

(* ------------------------------------------------------------------ *)
(* the HTTP exporter's pure half *)

let test_http_parse () =
  (match Obs.Http_exporter.parse_request_line "GET /metrics HTTP/1.0" with
  | Ok (meth, target) ->
    Alcotest.(check string) "method" "GET" meth;
    Alcotest.(check string) "target" "/metrics" target
  | Error e -> Alcotest.failf "parse failed: %s" e);
  let bad line =
    match Obs.Http_exporter.parse_request_line line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error _ -> ()
  in
  bad "";
  bad "GET /metrics";
  bad "GET  /metrics  HTTP/1.0";
  bad "\x16\x03\x01\x02\x00";
  bad "SETUP 0 1";
  Alcotest.(check string) "query stripped" "/metrics"
    (Obs.Http_exporter.path_of_target "/metrics?seconds=5");
  Alcotest.(check string) "fragment stripped" "/statz"
    (Obs.Http_exporter.path_of_target "/statz#top")

let test_http_handle () =
  let hits = ref 0 in
  let routes =
    [ ("/metrics",
       fun () ->
         incr hits;
         (Obs.Http_exporter.prometheus_content_type, "# TYPE x counter\n"))
    ]
  in
  let handle = Obs.Http_exporter.handle ~routes in
  let r = handle "GET /metrics HTTP/1.1" in
  Alcotest.(check int) "200" 200 r.Obs.Http_exporter.status;
  Alcotest.(check string) "exposition content type"
    "text/plain; version=0.0.4; charset=utf-8"
    r.Obs.Http_exporter.content_type;
  Alcotest.(check int) "producer ran once" 1 !hits;
  let r = handle "GET /metrics?x=1 HTTP/1.0" in
  Alcotest.(check int) "query ignored" 200 r.Obs.Http_exporter.status;
  let r = handle "HEAD /metrics HTTP/1.0" in
  Alcotest.(check int) "HEAD allowed" 200 r.Obs.Http_exporter.status;
  Alcotest.(check string) "HEAD has no body" "" r.Obs.Http_exporter.body;
  Alcotest.(check int) "404" 404
    (handle "GET /nope HTTP/1.0").Obs.Http_exporter.status;
  Alcotest.(check int) "405" 405
    (handle "POST /metrics HTTP/1.0").Obs.Http_exporter.status;
  Alcotest.(check int) "400" 400
    (handle "gibberish" ).Obs.Http_exporter.status;
  (* a 404/400 never runs a producer *)
  Alcotest.(check int) "producers untouched by errors" 3 !hits

let test_http_render () =
  let r = Obs.Http_exporter.ok ~content_type:"text/plain; charset=utf-8" "ok\n" in
  Alcotest.(check string) "wire bytes"
    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
     Content-Length: 3\r\nConnection: close\r\n\r\nok\n"
    (Obs.Http_exporter.render r)

(* ------------------------------------------------------------------ *)
(* logger *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let with_log_file f =
  let path = Filename.temp_file "arnet-log" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc);
      read_file path)

let test_logger_text () =
  let out =
    with_log_file (fun oc ->
        let l = Obs.Logger.create ~clock:(fun () -> 0.) oc in
        Alcotest.(check bool) "info enabled" true (Obs.Logger.enabled l Obs.Logger.Info);
        Alcotest.(check bool) "debug filtered" false
          (Obs.Logger.enabled l Obs.Logger.Debug);
        Obs.Logger.debug l "dropped";
        Obs.Logger.info l "listening"
          ~fields:[ ("addr", J.String "unix:/tmp/s"); ("n", J.Int 4) ];
        Obs.Logger.warn l "slow")
  in
  Alcotest.(check string) "text lines"
    "1970-01-01T00:00:00.000Z INFO listening addr=unix:/tmp/s n=4\n\
     1970-01-01T00:00:00.000Z WARN slow\n"
    out;
  (* the null logger swallows everything without a channel *)
  Obs.Logger.error Obs.Logger.null "nobody hears this"

let test_logger_jsonl () =
  let out =
    with_log_file (fun oc ->
        let l =
          Obs.Logger.create ~level:Obs.Logger.Debug ~format:Obs.Logger.Jsonl
            ~clock:(fun () -> 86400.) oc
        in
        Obs.Logger.debug l "probe" ~fields:[ ("seconds", J.Float 0.25) ])
  in
  let doc = J.parse (String.trim out) in
  Alcotest.(check string) "ts" "1970-01-02T00:00:00.000Z"
    (J.as_string (J.member_exn "ts" doc));
  Alcotest.(check string) "level" "debug"
    (J.as_string (J.member_exn "level" doc));
  Alcotest.(check string) "msg" "probe" (J.as_string (J.member_exn "msg" doc));
  Alcotest.(check (float 0.)) "field" 0.25
    (J.as_float (J.member_exn "seconds" doc));
  Alcotest.(check (option string)) "level parsing" (Some "warn")
    (Option.map Obs.Logger.level_to_string (Obs.Logger.level_of_string "warning"))

(* ------------------------------------------------------------------ *)
(* network time series (per-pair counters, capacity/reserve gauges) *)

let test_network_series () =
  let m = Obs.Metrics_sink.create (Obs.Metrics.create ()) in
  let emit = Obs.Metrics_sink.emit m in
  emit (E.Admit { time = 1.; src = 0; dst = 1; hops = 1; primary = true;
                  links = [| 0 |] });
  emit (E.Admit { time = 2.; src = 0; dst = 1; hops = 1; primary = true;
                  links = [| 0 |] });
  emit (E.Block { time = 3.; src = 2; dst = 0 });
  Obs.Metrics_sink.set_network m ~capacities:[| 20; 20 |] ~reserves:[| 3; 0 |];
  let reg = Obs.Metrics_sink.registry m in
  let counter labels name =
    Obs.Metrics.counter_value (Obs.Metrics.counter reg ~labels name)
  in
  let gauge labels name =
    Obs.Metrics.gauge_value (Obs.Metrics.gauge reg ~labels name)
  in
  Alcotest.(check (float 0.)) "pair accepted" 2.
    (counter [ ("src", "0"); ("dst", "1") ] "arnet_pair_accepted_total");
  Alcotest.(check (float 0.)) "pair blocked" 1.
    (counter [ ("src", "2"); ("dst", "0") ] "arnet_pair_blocked_total");
  Alcotest.(check (float 0.)) "capacity gauge" 20.
    (gauge [ ("link", "1") ] "arnet_link_capacity");
  Alcotest.(check (float 0.)) "reserve gauge" 3.
    (gauge [ ("link", "0") ] "arnet_link_reserve");
  (* re-publishing updates in place, no duplicate series *)
  Obs.Metrics_sink.set_network m ~capacities:[| 20; 20 |] ~reserves:[| 4; 0 |];
  Alcotest.(check (float 0.)) "reserve gauge updated" 4.
    (gauge [ ("link", "0") ] "arnet_link_reserve");
  let text = Obs.Metrics.to_prometheus reg in
  check_contains "pair series rendered" text
    {|arnet_pair_accepted_total{dst="1",src="0"} 2.0|};
  check_contains "reserve rendered" text {|arnet_link_reserve{link="0"} 4.0|}

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "jsonu round trip" `Quick test_jsonu_round_trip;
          Alcotest.test_case "jsonu errors" `Quick test_jsonu_errors;
          Alcotest.test_case "event round trip" `Quick test_event_round_trip ] );
      ( "sinks",
        [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "tee and filter" `Quick test_sink_tee_filter;
          Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "jsonl malformed line" `Quick
            test_jsonl_malformed ] );
      ( "counters",
        [ Alcotest.test_case "run framing" `Quick test_counters_framing;
          Alcotest.test_case "implicit run warm-up" `Quick
            test_counters_implicit_run_warmup;
          Alcotest.test_case "counter sink matches run stats" `Quick
            test_counter_sink_matches_run_stats;
          Alcotest.test_case "replicate observed matches stats" `Quick
            test_replicate_observed_matches_stats;
          Alcotest.test_case "unobserved runs emit nothing" `Quick
            test_unobserved_runs_emit_nothing;
          Alcotest.test_case "instrument rides the counter sink" `Quick
            test_instrument_counters_equivalence ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "rendering" `Quick test_metrics_rendering;
          Alcotest.test_case "engine bridge" `Quick test_metrics_sink;
          Alcotest.test_case "escaping goldens" `Quick test_escaping_goldens;
          test_escape_round_trip;
          Alcotest.test_case "network series" `Quick test_network_series ] );
      ( "http",
        [ Alcotest.test_case "request line parsing" `Quick test_http_parse;
          Alcotest.test_case "routing" `Quick test_http_handle;
          Alcotest.test_case "wire rendering" `Quick test_http_render ] );
      ( "logger",
        [ Alcotest.test_case "text format" `Quick test_logger_text;
          Alcotest.test_case "jsonl format" `Quick test_logger_jsonl ] );
      ( "spans",
        [ Alcotest.test_case "span lifecycle" `Quick test_span;
          Alcotest.test_case "recorder" `Quick test_span_recorder ] ) ]
