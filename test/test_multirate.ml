open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_multirate

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Call_class *)

let test_call_class () =
  let c = Call_class.make ~name:"video" ~mean_holding:2. ~bandwidth:4 () in
  Alcotest.(check string) "name" "video" c.Call_class.name;
  Alcotest.(check int) "bandwidth" 4 c.Call_class.bandwidth;
  Alcotest.(check int) "narrowband" 1 Call_class.narrowband.Call_class.bandwidth;
  Alcotest.(check int) "wideband" 6 Call_class.wideband.Call_class.bandwidth;
  check_invalid "bad bandwidth" (fun () ->
      ignore (Call_class.make ~bandwidth:0 ()));
  check_invalid "bad holding" (fun () ->
      ignore (Call_class.make ~mean_holding:0. ~bandwidth:1 ()))

(* ------------------------------------------------------------------ *)
(* Kaufman_roberts *)

let test_kr_reduces_to_erlang () =
  (* one class of bandwidth 1: KR is the Erlang distribution *)
  let capacity = 40 and offered = 30. in
  let blocking =
    Kaufman_roberts.class_blocking ~capacity
      [ { Kaufman_roberts.offered; bandwidth = 1 } ]
  in
  feq_at 1e-12 "matches Erlang B"
    (Arnet_erlang.Erlang_b.blocking ~offered ~capacity)
    (List.hd blocking)

let test_kr_distribution_properties () =
  let classes =
    [ { Kaufman_roberts.offered = 10.; bandwidth = 1 };
      { Kaufman_roberts.offered = 2.; bandwidth = 5 } ]
  in
  let q = Kaufman_roberts.distribution ~capacity:30 classes in
  feq_at 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. q);
  Array.iter (fun p -> Alcotest.(check bool) "nonnegative" true (p >= 0.)) q;
  (* wider class blocks more *)
  match Kaufman_roberts.class_blocking ~capacity:30 classes with
  | [ b1; b5 ] -> Alcotest.(check bool) "wideband blocks more" true (b5 > b1)
  | _ -> Alcotest.fail "two classes expected"

let test_kr_two_class_hand_computed () =
  (* C=2, classes: a=1 b=1 and a=0.5 b=2.
     Unnormalized: q0=1; q1 = (1*1*q0)/1 = 1; q2 = (1*q1 + 0.5*2*q0)/2 = 1.
     Normalized: each 1/3.  B_1 = q2 = 1/3; B_2 = q1+q2 = 2/3. *)
  let classes =
    [ { Kaufman_roberts.offered = 1.; bandwidth = 1 };
      { Kaufman_roberts.offered = 0.5; bandwidth = 2 } ]
  in
  let q = Kaufman_roberts.distribution ~capacity:2 classes in
  feq_at 1e-12 "q0" (1. /. 3.) q.(0);
  feq_at 1e-12 "q1" (1. /. 3.) q.(1);
  feq_at 1e-12 "q2" (1. /. 3.) q.(2);
  (match Kaufman_roberts.class_blocking ~capacity:2 classes with
  | [ b1; b2 ] ->
    feq_at 1e-12 "B1" (1. /. 3.) b1;
    feq_at 1e-12 "B2" (2. /. 3.) b2
  | _ -> Alcotest.fail "two classes");
  feq_at 1e-12 "mean occupied" 1.
    (Kaufman_roberts.mean_occupied ~capacity:2 classes)

let test_kr_reservation () =
  let classes = [ { Kaufman_roberts.offered = 8.; bandwidth = 1 } ] in
  let reserved =
    Kaufman_roberts.reservation_blocking ~capacity:12 ~reserve:4 classes
  in
  feq_at 1e-12 "reservation = truncated capacity"
    (Arnet_erlang.Erlang_b.blocking ~offered:8. ~capacity:8)
    (List.hd reserved);
  check_invalid "reserve too large" (fun () ->
      ignore
        (Kaufman_roberts.reservation_blocking ~capacity:5 ~reserve:5 classes))

let test_kr_validation () =
  check_invalid "no classes" (fun () ->
      ignore (Kaufman_roberts.distribution ~capacity:5 []));
  check_invalid "bandwidth too large" (fun () ->
      ignore
        (Kaufman_roberts.distribution ~capacity:5
           [ { Kaufman_roberts.offered = 1.; bandwidth = 6 } ]));
  check_invalid "bad load" (fun () ->
      ignore
        (Kaufman_roberts.distribution ~capacity:5
           [ { Kaufman_roberts.offered = 0.; bandwidth = 1 } ]))

(* ------------------------------------------------------------------ *)
(* Mr_trace *)

let test_workload_and_trace () =
  let narrow = Matrix.uniform ~nodes:3 ~demand:5. in
  let wide = Matrix.uniform ~nodes:3 ~demand:1. in
  let w =
    Mr_trace.workload
      [ (Call_class.narrowband, narrow); (Call_class.wideband, wide) ]
  in
  Alcotest.(check int) "nodes" 3 (Mr_trace.nodes w);
  feq_at 1e-9 "offered bandwidth" ((5. *. 6.) +. (6. *. 6.))
    (Mr_trace.offered_bandwidth w);
  let rng = Rng.create ~seed:2 in
  let trace = Mr_trace.generate ~rng ~duration:20. w in
  let calls = trace.Mr_trace.calls in
  Alcotest.(check bool) "calls generated" true (Array.length calls > 400);
  Alcotest.(check bool) "columns match records" true
    (Array.for_all2
       (fun c t -> c.Mr_trace.time = t)
       calls trace.Mr_trace.times
    && Array.for_all2
         (fun (c : Mr_trace.call) e -> c.Mr_trace.time +. c.Mr_trace.holding = e)
         calls trace.Mr_trace.ends);
  let sorted = ref true and prev = ref 0. in
  let narrow_count = ref 0 and wide_count = ref 0 in
  Array.iter
    (fun c ->
      if c.Mr_trace.time < !prev then sorted := false;
      prev := c.Mr_trace.time;
      if c.Mr_trace.class_index = 0 then incr narrow_count else incr wide_count)
    calls;
  Alcotest.(check bool) "sorted" true !sorted;
  (* narrowband arrives ~5x as often *)
  let ratio = float_of_int !narrow_count /. float_of_int !wide_count in
  Alcotest.(check bool) "class mix plausible" true (ratio > 3.5 && ratio < 7.);
  check_invalid "empty workload" (fun () -> ignore (Mr_trace.workload []));
  check_invalid "size mismatch" (fun () ->
      ignore
        (Mr_trace.workload
           [ (Call_class.narrowband, narrow);
             (Call_class.wideband, Matrix.uniform ~nodes:4 ~demand:1.) ]))

(* ------------------------------------------------------------------ *)
(* Mr_engine + Mr_scheme *)

let mk_call time src dst holding class_index =
  { Mr_trace.time; src; dst; holding; class_index; u = 0. }

let one_link_setup capacity =
  let g = Graph.create ~nodes:2 [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity ] in
  let routes = Route_table.build g in
  let demand = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  let w =
    Mr_trace.workload
      [ (Call_class.narrowband, demand); (Call_class.wideband, demand) ]
  in
  (g, routes, w)

let test_mr_engine_bandwidth_accounting () =
  let g, routes, w = one_link_setup 10 in
  let policy = Mr_scheme.single_path routes w in
  (* a wideband call (6 units) then another wideband (blocked: 12 > 10)
     then a narrowband (fits: 7 <= 10) *)
  let calls =
    [| mk_call 1. 0 1 10. 1; mk_call 2. 0 1 10. 1; mk_call 3. 0 1 10. 0 |]
  in
  let s = Mr_engine.run ~warmup:0. ~graph:g ~workload:w ~policy ~duration:20.
      (Mr_trace.of_calls calls) in
  Alcotest.(check int) "wideband offered" 2 s.Mr_engine.offered.(1);
  Alcotest.(check int) "wideband blocked" 1 s.Mr_engine.blocked.(1);
  Alcotest.(check int) "narrowband carried" 0 s.Mr_engine.blocked.(0);
  feq_at 1e-12 "bandwidth blocking" (6. /. 13.)
    (Mr_engine.bandwidth_blocking s);
  feq_at 1e-12 "call blocking" (1. /. 3.) (Mr_engine.call_blocking s)

let test_mr_engine_departure () =
  let g, routes, w = one_link_setup 6 in
  let policy = Mr_scheme.single_path routes w in
  let calls = [| mk_call 1. 0 1 2. 1; mk_call 4. 0 1 2. 1 |] in
  let s = Mr_engine.run ~warmup:0. ~graph:g ~workload:w ~policy ~duration:20.
      (Mr_trace.of_calls calls) in
  Alcotest.(check int) "capacity recycled" 0 s.Mr_engine.blocked.(1)

let test_mr_controlled_protects () =
  (* triangle, C=6, reserve 3: a wideband alternate (6 units) can never
     use a protected link (6 > 6-3), a narrowband alternate only below
     occupancy 3 *)
  let g = Builders.full_mesh ~nodes:3 ~capacity:6 in
  let routes = Route_table.build g in
  let demand = Matrix.uniform ~nodes:3 ~demand:1. in
  let w =
    Mr_trace.workload
      [ (Call_class.narrowband, demand); (Call_class.wideband, demand) ]
  in
  let reserves = Array.make (Graph.link_count g) 3 in
  let controlled = Mr_scheme.controlled ~reserves routes w in
  let uncontrolled = Mr_scheme.uncontrolled routes w in
  (* saturate direct 0->1 with a wideband call, then try another *)
  let calls =
    Mr_trace.of_calls [| mk_call 1. 0 1 10. 1; mk_call 2. 0 1 10. 1 |]
  in
  let s_ctl =
    Mr_engine.run ~warmup:0. ~graph:g ~workload:w ~policy:controlled
      ~duration:20. calls
  in
  Alcotest.(check int) "controlled refuses the wideband alternate" 1
    s_ctl.Mr_engine.blocked.(1);
  let s_unc =
    Mr_engine.run ~warmup:0. ~graph:g ~workload:w ~policy:uncontrolled
      ~duration:20. calls
  in
  Alcotest.(check int) "uncontrolled detours it" 0 s_unc.Mr_engine.blocked.(1);
  Alcotest.(check int) "detour counted as alternate" 1
    s_unc.Mr_engine.carried_alternate

let test_mr_protection_levels () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Route_table.build g in
  let demand = Matrix.uniform ~nodes:4 ~demand:40. in
  let w =
    Mr_trace.workload
      [ (Call_class.narrowband, demand);
        (Call_class.wideband, Matrix.scale demand (1. /. 12.)) ]
  in
  let loads = Mr_scheme.bandwidth_loads routes w in
  (* direct link: 40 narrowband + 40/12 wideband * 6 = 60 units *)
  feq_at 1e-9 "bandwidth load" 60. loads.(0);
  let levels = Mr_scheme.protection_levels routes w ~h:3 in
  Alcotest.(check int) "matches single-rate formula on bandwidth load"
    (Arnet_core.Protection.level ~offered:60. ~capacity:100 ~h:3)
    levels.(0);
  check_invalid "reserves length" (fun () ->
      ignore (Mr_scheme.controlled ~reserves:[| 1 |] routes w))

let test_mr_replicate_shares_traces () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:20 in
  let routes = Route_table.build g in
  let demand = Matrix.uniform ~nodes:3 ~demand:8. in
  let w = Mr_trace.workload [ (Call_class.narrowband, demand) ] in
  let results =
    Mr_engine.replicate ~warmup:5. ~seeds:[ 1; 2 ] ~duration:40. ~graph:g
      ~workload:w
      ~policies:
        [ Mr_scheme.single_path routes w; Mr_scheme.uncontrolled routes w ]
      ()
  in
  match results with
  | [ (_, [ a1; a2 ]); (_, [ b1; b2 ]) ] ->
    Alcotest.(check int) "seed 1 same offered"
      (Array.fold_left ( + ) 0 a1.Mr_engine.offered)
      (Array.fold_left ( + ) 0 b1.Mr_engine.offered);
    Alcotest.(check int) "seed 2 same offered"
      (Array.fold_left ( + ) 0 a2.Mr_engine.offered)
      (Array.fold_left ( + ) 0 b2.Mr_engine.offered)
  | _ -> Alcotest.fail "unexpected shape"

let test_mr_degenerates_to_single_rate_engine () =
  (* one class of bandwidth 1: the multi-rate engine must make exactly
     the decisions of the single-rate engine on the same call sequence *)
  let g = Builders.full_mesh ~nodes:4 ~capacity:10 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:9. in
  let w = Mr_trace.workload [ (Call_class.narrowband, matrix) ] in
  let rng = Rng.substream (Rng.create ~seed:21) "trace" in
  let trace = Trace.generate ~rng ~duration:50. matrix in
  let mr_trace =
    Mr_trace.of_calls
      (Array.map
         (fun (c : Trace.call) ->
           { Mr_trace.time = c.Trace.time;
             src = c.Trace.src;
             dst = c.Trace.dst;
             holding = c.Trace.holding;
             class_index = 0;
             u = c.Trace.u })
         trace.Trace.calls)
  in
  List.iter
    (fun (sr_policy, mr_policy) ->
      let sr = Engine.run ~warmup:10. ~graph:g ~policy:sr_policy trace in
      let mr =
        Mr_engine.run ~warmup:10. ~graph:g ~workload:w ~policy:mr_policy
          ~duration:50. mr_trace
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: same offered" sr_policy.Engine.name)
        sr.Stats.offered
        (Array.fold_left ( + ) 0 mr.Mr_engine.offered);
      Alcotest.(check int)
        (Printf.sprintf "%s: same blocked" sr_policy.Engine.name)
        sr.Stats.blocked
        (Array.fold_left ( + ) 0 mr.Mr_engine.blocked))
    [ (Arnet_core.Scheme.single_path routes, Mr_scheme.single_path routes w);
      (Arnet_core.Scheme.uncontrolled routes, Mr_scheme.uncontrolled routes w);
      ( Arnet_core.Scheme.controlled
          ~reserves:(Array.make (Graph.link_count g) 2)
          routes,
        Mr_scheme.controlled
          ~reserves:(Array.make (Graph.link_count g) 2)
          routes w ) ]

let test_mr_kr_agreement_end_to_end () =
  (* single link simulated blocking ~ Kaufman-Roberts *)
  let pairs = Arnet_experiments.Multirate_exp.kaufman_roberts_check ~seeds:[ 1; 2; 3 ] () in
  List.iteri
    (fun ci (analytic, simulated) ->
      Alcotest.(check bool)
        (Printf.sprintf "class %d within 25%% of analytic" ci)
        true
        (Float.abs (simulated -. analytic) < 0.25 *. Float.max analytic 0.02))
    pairs

let () =
  Alcotest.run "multirate"
    [ ("call-class", [ Alcotest.test_case "make" `Quick test_call_class ]);
      ( "kaufman-roberts",
        [ Alcotest.test_case "reduces to Erlang" `Quick
            test_kr_reduces_to_erlang;
          Alcotest.test_case "distribution properties" `Quick
            test_kr_distribution_properties;
          Alcotest.test_case "hand-computed" `Quick
            test_kr_two_class_hand_computed;
          Alcotest.test_case "reservation" `Quick test_kr_reservation;
          Alcotest.test_case "validation" `Quick test_kr_validation ] );
      ( "trace",
        [ Alcotest.test_case "workload and trace" `Quick
            test_workload_and_trace ] );
      ( "engine",
        [ Alcotest.test_case "bandwidth accounting" `Quick
            test_mr_engine_bandwidth_accounting;
          Alcotest.test_case "departure" `Quick test_mr_engine_departure;
          Alcotest.test_case "controlled protects" `Quick
            test_mr_controlled_protects;
          Alcotest.test_case "protection levels" `Quick
            test_mr_protection_levels;
          Alcotest.test_case "replicate shares traces" `Quick
            test_mr_replicate_shares_traces;
          Alcotest.test_case "degenerates to single-rate engine" `Quick
            test_mr_degenerates_to_single_rate_engine;
          Alcotest.test_case "KR agreement end-to-end" `Slow
            test_mr_kr_agreement_end_to_end ] ) ]
