open Arnet_erlang

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq = Alcotest.(check (float 1e-9))
let feq_at tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Erlang_b *)

let test_blocking_known_values () =
  (* classic textbook values *)
  feq_at 1e-4 "B(100,100)" 0.0757 (Erlang_b.blocking ~offered:100. ~capacity:100);
  feq_at 1e-5 "B(20,30)" 0.00846 (Erlang_b.blocking ~offered:20. ~capacity:30);
  feq "B(1,1) = 1/2" 0.5 (Erlang_b.blocking ~offered:1. ~capacity:1);
  feq "B(a,0) = 1" 1. (Erlang_b.blocking ~offered:5. ~capacity:0);
  (* B(a,1) = a/(1+a) *)
  feq "B(2,1)" (2. /. 3.) (Erlang_b.blocking ~offered:2. ~capacity:1)

let test_blocking_validation () =
  check_invalid "zero load" (fun () ->
      ignore (Erlang_b.blocking ~offered:0. ~capacity:5));
  check_invalid "negative load" (fun () ->
      ignore (Erlang_b.blocking ~offered:(-1.) ~capacity:5));
  check_invalid "nan load" (fun () ->
      ignore (Erlang_b.blocking ~offered:Float.nan ~capacity:5));
  check_invalid "negative capacity" (fun () ->
      ignore (Erlang_b.blocking ~offered:1. ~capacity:(-1)))

let test_blocking_table_consistent () =
  let table = Erlang_b.blocking_table ~offered:37.5 ~capacity:60 in
  Alcotest.(check int) "length" 61 (Array.length table);
  feq "table start" 1. table.(0);
  feq "table end = blocking" (Erlang_b.blocking ~offered:37.5 ~capacity:60)
    table.(60);
  (* the defining recursion B_x = a B / (x + a B) holds at every step *)
  for x = 1 to 60 do
    let expect = 37.5 *. table.(x - 1) /. (float_of_int x +. (37.5 *. table.(x - 1))) in
    feq (Printf.sprintf "recursion at %d" x) expect table.(x)
  done

let test_log_inverse_matches_direct () =
  List.iter
    (fun (a, c) ->
      let direct = Erlang_b.blocking ~offered:a ~capacity:c in
      let ly = Erlang_b.log_inverse_table ~offered:a ~capacity:c in
      feq_at 1e-9
        (Printf.sprintf "exp(-ly) = B at a=%g c=%d" a c)
        direct
        (exp (-.ly.(c))))
    [ (1., 10); (10., 10); (50., 100); (100., 100); (167., 100); (0.5, 3) ]

let test_log_inverse_extreme_no_overflow () =
  (* y_2000 at load 1 is astronomically large; the log table must stay
     finite while the direct inverse would overflow *)
  let ly = Erlang_b.log_inverse_table ~offered:1. ~capacity:2000 in
  Alcotest.(check bool) "finite" true (Float.is_finite ly.(2000));
  Alcotest.(check bool) "monotone" true (ly.(2000) > ly.(1999))

let test_blocking_ratio () =
  feq "r=0 ratio is 1" 1.
    (Erlang_b.blocking_ratio ~offered:50. ~capacity:100 ~reserve:0);
  feq "r=C ratio is B" (Erlang_b.blocking ~offered:50. ~capacity:100)
    (Erlang_b.blocking_ratio ~offered:50. ~capacity:100 ~reserve:100);
  (* matches the definition directly *)
  let direct =
    Erlang_b.blocking ~offered:80. ~capacity:100
    /. Erlang_b.blocking ~offered:80. ~capacity:90
  in
  feq_at 1e-9 "matches definition" direct
    (Erlang_b.blocking_ratio ~offered:80. ~capacity:100 ~reserve:10);
  (* decreasing in r *)
  let prev = ref 1.1 in
  for r = 0 to 100 do
    let v = Erlang_b.blocking_ratio ~offered:70. ~capacity:100 ~reserve:r in
    Alcotest.(check bool) "nonincreasing in r" true (v <= !prev +. 1e-12);
    prev := v
  done;
  check_invalid "reserve too big" (fun () ->
      ignore (Erlang_b.blocking_ratio ~offered:1. ~capacity:5 ~reserve:6))

let test_carried_and_loss () =
  let offered = 80. and capacity = 100 in
  let b = Erlang_b.blocking ~offered ~capacity in
  feq "carried" (offered *. (1. -. b)) (Erlang_b.mean_carried ~offered ~capacity);
  feq "loss rate" (offered *. b) (Erlang_b.loss_rate ~offered ~capacity);
  Alcotest.(check bool) "carried below capacity" true
    (Erlang_b.mean_carried ~offered ~capacity < 100.)

let test_loss_rate_derivative_matches_finite_difference () =
  List.iter
    (fun (a, c) ->
      let h = 1e-5 *. a in
      let fd =
        (Erlang_b.loss_rate ~offered:(a +. h) ~capacity:c
        -. Erlang_b.loss_rate ~offered:(a -. h) ~capacity:c)
        /. (2. *. h)
      in
      let exact = Erlang_b.loss_rate_derivative ~offered:a ~capacity:c in
      feq_at 1e-4 (Printf.sprintf "derivative at a=%g c=%d" a c) fd exact)
    [ (10., 10); (50., 60); (90., 100); (120., 100); (5., 50) ]

(* ------------------------------------------------------------------ *)
(* Birth_death *)

let test_birth_death_validation () =
  check_invalid "empty" (fun () ->
      ignore (Birth_death.make ~births:[||] ~deaths:[||]));
  check_invalid "length mismatch" (fun () ->
      ignore (Birth_death.make ~births:[| 1. |] ~deaths:[| 1.; 2. |]));
  check_invalid "nonpositive rate" (fun () ->
      ignore (Birth_death.make ~births:[| 0. |] ~deaths:[| 1. |]))

let test_erlang_chain_matches_erlang_b () =
  (* with constant birth rate nu the chain is exactly M/M/C/C *)
  let nu = 42. and c = 64 in
  let chain = Birth_death.erlang ~births:(Array.make c nu) in
  feq_at 1e-12 "time congestion = Erlang B"
    (Erlang_b.blocking ~offered:nu ~capacity:c)
    (Birth_death.time_congestion chain);
  feq_at 1e-9 "mean occupancy = carried"
    (Erlang_b.mean_carried ~offered:nu ~capacity:c)
    (Birth_death.mean_occupancy chain);
  (* PASTA: with state-independent arrivals call = time congestion *)
  feq_at 1e-12 "call congestion (PASTA)"
    (Birth_death.time_congestion chain)
    (Birth_death.call_congestion chain ~arrival_at_full:nu)

let test_stationary_sums_to_one () =
  let chain =
    Birth_death.make ~births:[| 3.; 2.; 1.; 0.5 |] ~deaths:[| 1.; 2.; 3.; 4. |]
  in
  let pi = Birth_death.stationary chain in
  Alcotest.(check int) "states" 5 (Array.length pi);
  feq_at 1e-12 "sums to 1" 1. (Array.fold_left ( +. ) 0. pi);
  Array.iter (fun p -> Alcotest.(check bool) "positive" true (p > 0.)) pi

let test_stationary_closed_form () =
  (* two-state chain: pi_1/pi_0 = b/d *)
  let chain = Birth_death.make ~births:[| 3. |] ~deaths:[| 5. |] in
  let pi = Birth_death.stationary chain in
  feq_at 1e-12 "pi0" (5. /. 8.) pi.(0);
  feq_at 1e-12 "pi1" (3. /. 8.) pi.(1)

let test_passage_time_erlang_identity () =
  (* E[tau_{s->s+1}] = y_s / nu where y is the inverse blocking table *)
  let nu = 17. and c = 30 in
  let chain = Birth_death.erlang ~births:(Array.make c nu) in
  let ly = Erlang_b.log_inverse_table ~offered:nu ~capacity:c in
  for s = 0 to c - 1 do
    feq_at 1e-9
      (Printf.sprintf "passage time from %d" s)
      (exp ly.(s) /. nu)
      (Birth_death.expected_passage_time chain s)
  done

let test_accepted_until_up_recursion () =
  let chain =
    Birth_death.make ~births:[| 2.; 2.; 2. |] ~deaths:[| 1.; 2.; 3. |]
  in
  feq "X_0 = 1" 1. (Birth_death.expected_accepted_until_up chain 0);
  (* X_1 = 1 + (d_1/b_1) X_0 = 1 + 1/2 *)
  feq "X_1" 1.5 (Birth_death.expected_accepted_until_up chain 1);
  (* X_2 = 1 + (2/2) * 1.5 *)
  feq "X_2" 2.5 (Birth_death.expected_accepted_until_up chain 2);
  check_invalid "state out of range" (fun () ->
      ignore (Birth_death.expected_accepted_until_up chain 3))

let test_protected_link_structure () =
  let overflow s = float_of_int (10 - s) in
  let chain =
    Birth_death.protected_link ~primary:5. ~overflow ~capacity:10 ~reserve:3
  in
  Alcotest.(check int) "capacity" 10 (Birth_death.capacity chain);
  (* compare against an explicitly-built chain *)
  let births =
    Array.init 10 (fun s -> if s < 7 then 5. +. overflow s else 5.)
  in
  let expect = Birth_death.erlang ~births in
  feq_at 1e-12 "same congestion"
    (Birth_death.time_congestion expect)
    (Birth_death.time_congestion chain);
  check_invalid "negative overflow" (fun () ->
      ignore
        (Birth_death.protected_link ~primary:1.
           ~overflow:(fun _ -> -1.)
           ~capacity:5 ~reserve:1));
  check_invalid "reserve out of range" (fun () ->
      ignore
        (Birth_death.protected_link ~primary:1.
           ~overflow:(fun _ -> 0.)
           ~capacity:5 ~reserve:6))

(* ------------------------------------------------------------------ *)
(* Shadow_price *)

let test_shadow_price_values () =
  let nu = 20. and c = 25 in
  let t = Shadow_price.make ~offered:nu ~capacity:c in
  Alcotest.(check int) "capacity" c (Shadow_price.capacity t);
  feq_at 1e-12 "offered" nu (Shadow_price.offered t);
  (* p(0) = B(nu, C) *)
  feq_at 1e-12 "price at empty" (Erlang_b.blocking ~offered:nu ~capacity:c)
    (Shadow_price.price t 0);
  (* increasing in occupancy, below 1, infinite at full *)
  for s = 1 to c - 1 do
    Alcotest.(check bool) "increasing" true
      (Shadow_price.price t s > Shadow_price.price t (s - 1));
    Alcotest.(check bool) "below 1" true (Shadow_price.price t s < 1.)
  done;
  Alcotest.(check bool) "infinite at full" true
    (Shadow_price.price t c = infinity);
  check_invalid "negative state" (fun () -> ignore (Shadow_price.price t (-1)))

let test_shadow_path_price () =
  let t0 = Shadow_price.make ~offered:10. ~capacity:12 in
  let t1 = Shadow_price.make ~offered:5. ~capacity:12 in
  let tables = [| t0; t1 |] in
  let occ = [| 3; 7 |] in
  feq_at 1e-12 "sum of prices"
    (Shadow_price.price t0 3 +. Shadow_price.price t1 7)
    (Shadow_price.path_price tables ~link_ids:[| 0; 1 |]
       ~occupancy:(fun k -> occ.(k)));
  Alcotest.(check bool) "full link makes path infinite" true
    (Shadow_price.path_price tables ~link_ids:[| 0; 1 |]
       ~occupancy:(fun k -> if k = 0 then 12 else 0)
    = infinity)

(* ------------------------------------------------------------------ *)
(* Reduced_load *)

let test_reduced_load_single_link () =
  let blocking =
    Reduced_load.solve ~capacities:[| 10 |]
      [ { Reduced_load.offered = 8.; links = [ 0 ] } ]
  in
  feq_at 1e-8 "single link fixed point = Erlang"
    (Erlang_b.blocking ~offered:8. ~capacity:10)
    blocking.(0)

let test_reduced_load_thinning () =
  (* a 2-link tandem: each link sees traffic thinned by the other *)
  let routes = [ { Reduced_load.offered = 9.; links = [ 0; 1 ] } ] in
  let blocking = Reduced_load.solve ~capacities:[| 10; 10 |] routes in
  let unreduced = Erlang_b.blocking ~offered:9. ~capacity:10 in
  Alcotest.(check bool) "thinned below unreduced" true
    (blocking.(0) < unreduced);
  feq_at 1e-8 "symmetric links equal" blocking.(0) blocking.(1);
  (* the fixed point equation holds *)
  let thinned = 9. *. (1. -. blocking.(1)) in
  feq_at 1e-6 "self-consistent" blocking.(0)
    (Erlang_b.blocking ~offered:thinned ~capacity:10);
  (* end-to-end route blocking *)
  feq_at 1e-9 "route blocking"
    (1. -. ((1. -. blocking.(0)) *. (1. -. blocking.(1))))
    (Reduced_load.route_blocking ~blocking (List.hd routes))

let test_reduced_load_validation () =
  check_invalid "unknown link" (fun () ->
      ignore
        (Reduced_load.solve ~capacities:[| 5 |]
           [ { Reduced_load.offered = 1.; links = [ 1 ] } ]));
  check_invalid "empty route" (fun () ->
      ignore
        (Reduced_load.solve ~capacities:[| 5 |]
           [ { Reduced_load.offered = 1.; links = [] } ]));
  check_invalid "nonpositive load" (fun () ->
      ignore
        (Reduced_load.solve ~capacities:[| 5 |]
           [ { Reduced_load.offered = 0.; links = [ 0 ] } ]))

(* ------------------------------------------------------------------ *)
(* properties *)

let load_cap_gen =
  QCheck2.Gen.(
    let* c = int_range 1 120 in
    let* a = float_range 0.5 150. in
    return (a, c))

let prop_blocking_in_unit_interval =
  QCheck2.Test.make ~count:200 ~name:"B in (0,1]" load_cap_gen (fun (a, c) ->
      let b = Erlang_b.blocking ~offered:a ~capacity:c in
      b > 0. && b <= 1.)

let prop_blocking_monotone_in_capacity =
  QCheck2.Test.make ~count:200 ~name:"B decreasing in capacity" load_cap_gen
    (fun (a, c) ->
      Erlang_b.blocking ~offered:a ~capacity:(c + 1)
      < Erlang_b.blocking ~offered:a ~capacity:c)

let prop_blocking_monotone_in_load =
  QCheck2.Test.make ~count:200 ~name:"B increasing in load" load_cap_gen
    (fun (a, c) ->
      Erlang_b.blocking ~offered:(a *. 1.1) ~capacity:c
      > Erlang_b.blocking ~offered:a ~capacity:c)

let prop_loss_rate_convex =
  (* Krishnan [23]: a * B(a, C) is convex in a *)
  QCheck2.Test.make ~count:200 ~name:"loss rate convex in load" load_cap_gen
    (fun (a, c) ->
      let f x = Erlang_b.loss_rate ~offered:x ~capacity:c in
      let mid = f a in
      let avg = (f (a *. 0.8) +. f (a *. 1.2)) /. 2. in
      mid <= avg +. 1e-9)

let prop_log_inverse_consistent =
  QCheck2.Test.make ~count:200 ~name:"log-space inverse matches direct"
    load_cap_gen (fun (a, c) ->
      let ly = Erlang_b.log_inverse_table ~offered:a ~capacity:c in
      let b = Erlang_b.blocking ~offered:a ~capacity:c in
      Float.abs (exp (-.ly.(c)) -. b) < 1e-9)

let prop_accepted_until_up_bounded =
  (* Equation 9 of the paper: X_{s,s+1} <= 1/B(lambda, s+1) for the
     chain's own rate vector — checked via the chain with the same
     births but an extra truncation *)
  QCheck2.Test.make ~count:100
    ~name:"X bounded by inverse blocking (Theorem 1 machinery)"
    QCheck2.Gen.(
      let* nu = float_range 1. 30. in
      let* c = int_range 2 40 in
      let* o = float_range 0. 20. in
      return (nu, c, o))
    (fun (nu, c, o) ->
      let overflow s = o /. (1. +. float_of_int s) in
      let chain =
        Birth_death.protected_link ~primary:nu ~overflow ~capacity:c
          ~reserve:0
      in
      (* bound from the same birth rates truncated at s+1 states *)
      List.for_all
        (fun s ->
          let x = Birth_death.expected_accepted_until_up chain s in
          let truncated =
            Birth_death.erlang
              ~births:(Array.init (s + 1) (fun j -> nu +. overflow j))
          in
          x <= (1. /. Birth_death.time_congestion truncated) +. 1e-6)
        (List.init c (fun s -> s)))

let () =
  Alcotest.run "erlang"
    [ ( "erlang-b",
        [ Alcotest.test_case "known values" `Quick test_blocking_known_values;
          Alcotest.test_case "validation" `Quick test_blocking_validation;
          Alcotest.test_case "table consistency" `Quick
            test_blocking_table_consistent;
          Alcotest.test_case "log inverse matches" `Quick
            test_log_inverse_matches_direct;
          Alcotest.test_case "log inverse extreme" `Quick
            test_log_inverse_extreme_no_overflow;
          Alcotest.test_case "blocking ratio" `Quick test_blocking_ratio;
          Alcotest.test_case "carried/loss" `Quick test_carried_and_loss;
          Alcotest.test_case "loss derivative" `Quick
            test_loss_rate_derivative_matches_finite_difference ] );
      ( "birth-death",
        [ Alcotest.test_case "validation" `Quick test_birth_death_validation;
          Alcotest.test_case "erlang chain = Erlang B" `Quick
            test_erlang_chain_matches_erlang_b;
          Alcotest.test_case "stationary sums to 1" `Quick
            test_stationary_sums_to_one;
          Alcotest.test_case "two-state closed form" `Quick
            test_stationary_closed_form;
          Alcotest.test_case "passage time identity" `Quick
            test_passage_time_erlang_identity;
          Alcotest.test_case "X recursion" `Quick
            test_accepted_until_up_recursion;
          Alcotest.test_case "protected link" `Quick
            test_protected_link_structure ] );
      ( "shadow-price",
        [ Alcotest.test_case "values" `Quick test_shadow_price_values;
          Alcotest.test_case "path price" `Quick test_shadow_path_price ] );
      ( "reduced-load",
        [ Alcotest.test_case "single link" `Quick test_reduced_load_single_link;
          Alcotest.test_case "thinning" `Quick test_reduced_load_thinning;
          Alcotest.test_case "validation" `Quick test_reduced_load_validation ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_blocking_in_unit_interval;
            prop_blocking_monotone_in_capacity;
            prop_blocking_monotone_in_load;
            prop_loss_rate_convex;
            prop_log_inverse_consistent;
            prop_accepted_until_up_bounded ] ) ]
