open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Protection *)

let test_protection_table1 () =
  (* Table 1 regression: from the paper's (rounded) loads, H=11 levels
     reproduce exactly and H=6 levels within 2 (rounding of Lambda). *)
  List.iter
    (fun ((src, dst), (r6, r11)) ->
      let offered = Nsfnet.load_of ~src ~dst in
      let got6 = Protection.level ~offered ~capacity:100 ~h:6 in
      let got11 = Protection.level ~offered ~capacity:100 ~h:11 in
      Alcotest.(check bool)
        (Printf.sprintf "H=6 %d->%d (paper %d, got %d)" src dst r6 got6)
        true
        (abs (got6 - r6) <= 2);
      Alcotest.(check bool)
        (Printf.sprintf "H=11 %d->%d (paper %d, got %d)" src dst r11 got11)
        true
        (abs (got11 - r11) <= 2))
    Nsfnet.table1_protection;
  (* and the exact-match rate is high *)
  let exact6 =
    List.length
      (List.filter
         (fun ((src, dst), (r6, _)) ->
           Protection.level ~offered:(Nsfnet.load_of ~src ~dst) ~capacity:100
             ~h:6
           = r6)
         Nsfnet.table1_protection)
  in
  Alcotest.(check bool) "at least 26/30 exact at H=6" true (exact6 >= 26)

let test_protection_properties_small () =
  (* h = 1: an alternate call is as good as a primary, no protection *)
  Alcotest.(check int) "h=1 gives r=0" 0
    (Protection.level ~offered:50. ~capacity:100 ~h:1);
  (* huge overload: every state protected *)
  Alcotest.(check int) "overload clamps to C" 100
    (Protection.level ~offered:500. ~capacity:100 ~h:6);
  (* the chosen level meets the target, the one below does not *)
  let offered = 74. and capacity = 100 and h = 6 in
  let r = Protection.level ~offered ~capacity ~h in
  Alcotest.(check bool) "meets target" true
    (Protection.bound ~offered ~capacity ~reserve:r <= 1. /. 6.);
  Alcotest.(check bool) "minimal" true
    (Protection.bound ~offered ~capacity ~reserve:(r - 1) > 1. /. 6.);
  check_invalid "h < 1" (fun () ->
      ignore (Protection.level ~offered:1. ~capacity:10 ~h:0));
  check_invalid "bad capacity" (fun () ->
      ignore (Protection.level ~offered:1. ~capacity:0 ~h:2))

let test_protection_levels_of_loads () =
  let levels =
    Protection.levels_of_loads ~capacities:[| 100; 100; 10 |]
      ~loads:[| 74.; 0.; 8. |] ~h:6
  in
  Alcotest.(check int) "loaded link" 7 levels.(0);
  Alcotest.(check int) "idle link unprotected" 0 levels.(1);
  Alcotest.(check bool) "small link protected" true (levels.(2) > 0);
  check_invalid "length mismatch" (fun () ->
      ignore (Protection.levels_of_loads ~capacities:[| 1 |] ~loads:[||] ~h:2))

let test_protection_levels_from_matrix () =
  let g = Nsfnet.graph () in
  let routes = Route_table.build g in
  let _, fit = Fit.nsfnet_nominal () in
  let levels = Protection.levels routes fit.Fit.matrix ~h:11 in
  Alcotest.(check int) "one level per link" 30 (Array.length levels);
  (* spot-check against Table 1 H=11 column *)
  let id = (Graph.find_link_exn g ~src:6 ~dst:5).Link.id in
  Alcotest.(check int) "6->5 level" 26 levels.(id)

let test_protection_sweep_monotone () =
  let sweep =
    Protection.sweep ~capacity:100 ~h:6
      ~loads:(List.init 100 (fun i -> float_of_int (i + 1)))
  in
  let rec check_monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "r nondecreasing in load" true (b >= a);
      check_monotone rest
    | _ -> ()
  in
  check_monotone sweep

let test_path_guarantee () =
  let g = Nsfnet.graph () in
  let routes = Route_table.build ~h:6 g in
  let _, fit = Fit.nsfnet_nominal () in
  (* recompute Equation-1 loads under the H=6 table's primaries *)
  let loads = Loads.primary_link_loads routes fit.Fit.matrix in
  let capacities =
    Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g)
  in
  let reserves = Protection.levels_of_loads ~capacities ~loads ~h:6 in
  (* the scheme's invariant: every alternate path the scheme can ever
     admit displaces at most one primary call in expectation.  Paths
     through a fully-protected link (r = C, the overloaded links where
     no level meets 1/H) are never admitted, so they are exempt. *)
  let admissible p =
    List.for_all (fun k -> reserves.(k) < capacities.(k)) (Path.link_ids p)
  in
  let checked = ref 0 in
  for src = 0 to 11 do
    for dst = 0 to 11 do
      if src <> dst then
        List.iter
          (fun p ->
            if admissible p then begin
              incr checked;
              let guarantee =
                Protection.path_guarantee ~capacities ~loads ~reserves
                  ~link_ids:(Path.link_ids p)
              in
              Alcotest.(check bool)
                (Printf.sprintf "guarantee on %s" (Path.to_string p))
                true
                (guarantee <= 1. +. 1e-9)
            end)
          (Route_table.alternates routes ~src ~dst)
    done
  done;
  Alcotest.(check bool) "checked a substantial path set" true (!checked > 100)

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admission_rules () =
  let a = Admission.make ~capacities:[| 10; 10 |] ~reserves:[| 0; 3 |] in
  let occ = [| 9; 6 |] in
  Alcotest.(check bool) "primary below capacity" true
    (Admission.link_admits_primary a ~occupancy:occ 0);
  Alcotest.(check bool) "alternate same as primary at r=0" true
    (Admission.link_admits_alternate a ~occupancy:occ 0);
  (* link 1: threshold 10-3=7; occupancy 6 admits, 7 refuses *)
  Alcotest.(check bool) "alternate below threshold" true
    (Admission.link_admits_alternate a ~occupancy:occ 1);
  Alcotest.(check bool) "alternate at threshold refused" false
    (Admission.link_admits_alternate a ~occupancy:[| 0; 7 |] 1);
  Alcotest.(check bool) "primary still fine at threshold" true
    (Admission.link_admits_primary a ~occupancy:[| 0; 7 |] 1);
  Alcotest.(check bool) "primary refused at capacity" false
    (Admission.link_admits_primary a ~occupancy:[| 10; 0 |] 0)

let test_admission_paths () =
  let g = Builders.line ~nodes:3 ~capacity:5 in
  let a =
    Admission.make
      ~capacities:(Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g))
      ~reserves:(Array.make (Graph.link_count g) 2)
  in
  let p = Path.make g [ 0; 1; 2 ] in
  let occ = Array.make (Graph.link_count g) 0 in
  Alcotest.(check bool) "empty admits both" true
    (Admission.path_admits_primary a ~occupancy:occ p
    && Admission.path_admits_alternate a ~occupancy:occ p);
  Alcotest.(check int) "free circuits" 5
    (Admission.free_circuits a ~occupancy:occ p);
  (* saturate one link for alternates but not primaries *)
  let ids = Path.link_ids p in
  occ.(List.hd ids) <- 3;
  Alcotest.(check bool) "alternate refused" false
    (Admission.path_admits_alternate a ~occupancy:occ p);
  Alcotest.(check bool) "primary admitted" true
    (Admission.path_admits_primary a ~occupancy:occ p);
  Alcotest.(check int) "free circuits updated" 2
    (Admission.free_circuits a ~occupancy:occ p)

let test_admission_validation () =
  check_invalid "reserve above capacity" (fun () ->
      ignore (Admission.make ~capacities:[| 5 |] ~reserves:[| 6 |]));
  check_invalid "negative reserve" (fun () ->
      ignore (Admission.make ~capacities:[| 5 |] ~reserves:[| -1 |]));
  check_invalid "length mismatch" (fun () ->
      ignore (Admission.make ~capacities:[| 5 |] ~reserves:[| 1; 2 |]));
  let u = Admission.unprotected ~capacities:[| 3; 4 |] in
  Alcotest.(check (list int)) "unprotected reserves" [ 0; 0 ]
    (Array.to_list (Admission.reserves u));
  Alcotest.(check (list int)) "capacities copied" [ 3; 4 ]
    (Array.to_list (Admission.capacities u))

(* ------------------------------------------------------------------ *)
(* Controller *)

let mk_call ?(u = 0.) time src dst holding = { Trace.time; src; dst; holding; u }

let test_controller_primary_for () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:4 in
  let routes = Route_table.build g in
  let call = mk_call 0. 0 1 1. in
  (match Controller.primary_for routes Controller.Table call with
  | Some p -> Alcotest.(check (list int)) "table primary" [ 0; 1 ] (Path.nodes p)
  | None -> Alcotest.fail "primary expected");
  let sampled =
    Controller.Sampled
      (fun ~src ~dst ~u:_ -> Some (Path.make g [ src; 2; dst ]))
  in
  (match Controller.primary_for routes sampled call with
  | Some p -> Alcotest.(check (list int)) "sampled primary" [ 0; 2; 1 ] (Path.nodes p)
  | None -> Alcotest.fail "primary expected");
  let never = Controller.Sampled (fun ~src:_ ~dst:_ ~u:_ -> None) in
  Alcotest.(check bool) "unroutable" true
    (Controller.primary_for routes never call = None)

let test_controller_decide () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:2 in
  let routes = Route_table.build g in
  let capacities =
    Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g)
  in
  let admission = Admission.unprotected ~capacities in
  let occ = Array.make (Graph.link_count g) 0 in
  let call = mk_call 0. 0 1 1. in
  let decide occ allow =
    Controller.decide ~routes ~admission ~choice:Controller.Table
      ~allow_alternates:allow ~occupancy:occ call
  in
  (match decide occ true with
  | Engine.Routed p -> Alcotest.(check int) "primary when free" 1 (Path.hops p)
  | Engine.Lost -> Alcotest.fail "should route");
  (* saturate the direct link *)
  let direct = (Graph.find_link_exn g ~src:0 ~dst:1).Link.id in
  occ.(direct) <- 2;
  (match decide occ true with
  | Engine.Routed p ->
    Alcotest.(check (list int)) "shortest alternate" [ 0; 2; 1 ] (Path.nodes p)
  | Engine.Lost -> Alcotest.fail "alternate expected");
  (match decide occ false with
  | Engine.Lost -> ()
  | Engine.Routed _ -> Alcotest.fail "single-path must lose");
  (* saturate everything out of node 0 *)
  let out02 = (Graph.find_link_exn g ~src:0 ~dst:2).Link.id in
  occ.(out02) <- 2;
  match decide occ true with
  | Engine.Lost -> ()
  | Engine.Routed _ -> Alcotest.fail "no capacity left"

(* ------------------------------------------------------------------ *)
(* Scheme *)

let run_scheme g matrix policy calls =
  let trace = Trace.of_calls ~matrix ~duration:100. calls in
  Engine.run ~warmup:0. ~graph:g ~policy trace

let test_scheme_single_path () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:1 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  let stats =
    run_scheme g matrix
      (Scheme.single_path routes)
      [ mk_call 1. 0 1 10.; mk_call 2. 0 1 1. ]
  in
  Alcotest.(check int) "second call lost" 1 stats.Stats.blocked;
  Alcotest.(check int) "no alternates ever" 0 stats.Stats.carried_alternate

let test_scheme_uncontrolled_vs_controlled () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:2 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  let calls = [ mk_call 1. 0 1 10.; mk_call 2. 0 1 10.; mk_call 3. 0 1 10. ] in
  (* uncontrolled: third call detours via 2 *)
  let unc = run_scheme g matrix (Scheme.uncontrolled routes) calls in
  Alcotest.(check int) "uncontrolled carries all" 0 unc.Stats.blocked;
  Alcotest.(check int) "one alternate" 1 unc.Stats.carried_alternate;
  (* full protection (r = C on every link): alternates never admitted *)
  let reserves = Array.make (Graph.link_count g) 2 in
  let ctl = run_scheme g matrix (Scheme.controlled ~reserves routes) calls in
  Alcotest.(check int) "fully protected blocks the third" 1 ctl.Stats.blocked;
  Alcotest.(check int) "no alternates" 0 ctl.Stats.carried_alternate

let test_scheme_controlled_threshold () =
  (* C=2, r=1: a link takes an alternate call only when empty *)
  let g = Builders.full_mesh ~nodes:3 ~capacity:2 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  let reserves = Array.make (Graph.link_count g) 1 in
  let policy = Scheme.controlled ~reserves routes in
  (* occupy 0->2 with a primary, then saturate 0->1: the alternate
     0->2->1 must be refused because 0->2 is at occupancy 1 = C - r *)
  let calls =
    [ mk_call 1. 0 2 10.;  (* primary on 0->2 *)
      mk_call 2. 0 1 10.;
      mk_call 3. 0 1 10.;
      mk_call 4. 0 1 1.  (* primary full; alternate via 2 refused *) ]
  in
  let stats = run_scheme g matrix policy calls in
  Alcotest.(check int) "alternate refused by protection" 1 stats.Stats.blocked;
  (* same story without the first call: alternate admitted *)
  let calls' = [ mk_call 2. 0 1 10.; mk_call 3. 0 1 10.; mk_call 4. 0 1 1. ] in
  let stats' = run_scheme g matrix policy calls' in
  Alcotest.(check int) "alternate admitted when links empty" 0
    stats'.Stats.blocked

let test_scheme_controlled_auto_matches_manual () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:25. in
  let auto = Scheme.controlled_auto ~matrix routes in
  let manual =
    Scheme.controlled
      ~reserves:(Protection.levels routes matrix ~h:(Route_table.h routes))
      routes
  in
  let rng = Rng.create ~seed:33 in
  let trace = Trace.generate ~rng ~duration:50. matrix in
  let s1 = Engine.run ~warmup:5. ~graph:g ~policy:auto trace in
  let s2 = Engine.run ~warmup:5. ~graph:g ~policy:manual trace in
  Alcotest.(check int) "identical decisions" s1.Stats.blocked s2.Stats.blocked

(* the sharded Controller.compile precompute must be path-for-path
   identical to the sequential one: every decision, not just the
   aggregate counts, since the trace replay is deterministic *)
let test_scheme_compile_domains_identical () =
  let g = Nsfnet.graph () in
  let routes = Route_table.build ~h:5 g in
  let matrix = Matrix.uniform ~nodes:(Graph.node_count g) ~demand:6. in
  let trace =
    Trace.generate ~rng:(Rng.create ~seed:21) ~duration:40. matrix
  in
  let stats domains =
    Engine.run ~warmup:5. ~graph:g
      ~policy:(Scheme.controlled_auto ~domains ~matrix routes)
      trace
  in
  let s1 = stats 1 in
  List.iter
    (fun domains ->
      let s = stats domains in
      Alcotest.(check int) "offered" s1.Stats.offered s.Stats.offered;
      Alcotest.(check int) "blocked" s1.Stats.blocked s.Stats.blocked;
      Alcotest.(check int) "carried_primary" s1.Stats.carried_primary
        s.Stats.carried_primary;
      Alcotest.(check int) "carried_alternate" s1.Stats.carried_alternate
        s.Stats.carried_alternate)
    [ 2; 5 ]

let test_scheme_ott_krishnan_basic () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:5 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:3. in
  let policy = Scheme.ott_krishnan ~matrix routes in
  (* an empty network must route the (cheap) primary *)
  let stats = run_scheme g matrix policy [ mk_call 1. 0 1 1. ] in
  Alcotest.(check int) "carried" 0 stats.Stats.blocked;
  Alcotest.(check int) "on primary" 1 stats.Stats.carried_primary

let test_scheme_ott_krishnan_blocks_on_price () =
  (* tiny capacities and heavy load make shadow prices ~1 per link; a
     2-hop alternate then costs more than the call's revenue, so O-K
     blocks even though capacity exists *)
  let g = Builders.full_mesh ~nodes:3 ~capacity:1 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:50. in
  let policy = Scheme.ott_krishnan ~matrix routes in
  let calls = [ mk_call 1. 0 1 10.; mk_call 2. 0 1 1. ] in
  let stats = run_scheme g matrix policy calls in
  (* direct link full; alternate 0->2->1 costs ~ 2 * B(50,1)/B(50,0) ~ 2 *)
  Alcotest.(check int) "blocked by price despite capacity" 1 stats.Stats.blocked;
  (* with a generous revenue the same call is admitted *)
  let generous = Scheme.ott_krishnan ~revenue:10. ~matrix routes in
  let stats' = run_scheme g matrix generous calls in
  Alcotest.(check int) "admitted at high revenue" 0 stats'.Stats.blocked

let test_scheme_ott_krishnan_reduced () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:5 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:4. in
  let policy = Scheme.ott_krishnan ~reduced_load:true ~matrix routes in
  Alcotest.(check string) "name marks variant" "ott-krishnan-reduced"
    (Scheme.name_of policy);
  let stats = run_scheme g matrix policy [ mk_call 1. 0 1 1. ] in
  Alcotest.(check int) "works" 0 stats.Stats.blocked

let test_scheme_length_aware () =
  (* K4, C=4: thresholds are laxer for 2-hop than for 3-hop alternates *)
  let g = Builders.full_mesh ~nodes:4 ~capacity:4 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:3.5 in
  let policy = Scheme.controlled_length_aware ~matrix routes in
  Alcotest.(check string) "name" "controlled-length-aware"
    (Scheme.name_of policy);
  (* empty network: primary rules unchanged *)
  let stats = run_scheme g matrix policy [ mk_call 1. 0 1 1. ] in
  Alcotest.(check int) "primary carried" 1 stats.Stats.carried_primary;
  (* and the per-length thresholds are ordered correctly *)
  let r2 = Protection.level ~offered:3.5 ~capacity:4 ~h:2 in
  let r3 = Protection.level ~offered:3.5 ~capacity:4 ~h:3 in
  Alcotest.(check bool) "longer paths face tighter thresholds" true (r3 >= r2);
  (* guarantee argument: every l-hop alternate's summed bound <= 1 *)
  let loads = Loads.primary_link_loads routes matrix in
  let capacities =
    Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g)
  in
  for src = 0 to 3 do
    for dst = 0 to 3 do
      if src <> dst then
        List.iter
          (fun p ->
            let l = Path.hops p in
            let reserves =
              Array.mapi
                (fun k c ->
                  if loads.(k) <= 0. then 0
                  else Protection.level ~offered:loads.(k) ~capacity:c ~h:l)
                capacities
            in
            Alcotest.(check bool)
              (Printf.sprintf "guarantee on %s" (Path.to_string p))
              true
              (Protection.path_guarantee ~capacities ~loads ~reserves
                 ~link_ids:(Path.link_ids p)
              <= 1. +. 1e-9))
          (Route_table.alternates routes ~src ~dst)
    done
  done

let test_scheme_least_busy () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:4 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:1. in
  let policy = Scheme.least_busy routes in
  (* fill 0->1; make detour via 2 busier than via 3 *)
  let calls =
    [ mk_call 1. 0 1 20.; mk_call 1.5 0 1 20.; mk_call 2. 0 1 20.;
      mk_call 2.5 0 1 20.;  (* 0->1 now full *)
      mk_call 3. 0 2 20.; mk_call 3.5 0 2 20.;  (* 0->2 at 2/4 *)
      mk_call 4. 0 1 1.  (* should detour via 3, the less busy *) ]
  in
  let trace = Trace.of_calls ~matrix ~duration:100. calls in
  (* instrument by wrapping decide *)
  let chosen = ref [] in
  let spy =
    { policy with
      Engine.decide =
        (fun ~occupancy ~call ->
          let d = policy.Engine.decide ~occupancy ~call in
          (match d with
          | Engine.Routed p -> chosen := Path.nodes p :: !chosen
          | Engine.Lost -> ());
          d) }
  in
  let _ = Engine.run ~warmup:0. ~graph:g ~policy:spy trace in
  match !chosen with
  | last :: _ ->
    Alcotest.(check (list int)) "least busy detour via 3" [ 0; 3; 1 ] last
  | [] -> Alcotest.fail "no decisions recorded"

(* ------------------------------------------------------------------ *)
(* Theorem 1 *)

let test_theorem_holds_across_grid () =
  List.iter
    (fun (primary, capacity, reserve) ->
      List.iter
        (fun overflow ->
          Alcotest.(check bool)
            (Printf.sprintf "nu=%g C=%d r=%d" primary capacity reserve)
            true
            (Theorem.verify ~primary ~overflow ~capacity ~reserve))
        [ (fun _ -> 0.);
          (fun _ -> 5.);
          (fun s -> float_of_int s);
          (fun s -> 20. /. (1. +. float_of_int s)) ])
    [ (5., 10, 2); (7., 10, 3); (50., 60, 5); (80., 100, 10); (120., 100, 30) ]

let test_theorem_exact_loss_positive_and_bounded () =
  let primary = 7. and capacity = 10 and reserve = 3 in
  let overflow _ = 2. in
  let bound = Theorem.bound ~primary ~capacity ~reserve in
  for s = 0 to capacity - reserve - 1 do
    let l = Theorem.extra_loss_exact ~primary ~overflow ~capacity ~reserve ~state:s in
    Alcotest.(check bool) "positive" true (l > 0.);
    Alcotest.(check bool) "below bound" true (l <= bound +. 1e-9)
  done;
  check_invalid "state in protected region" (fun () ->
      ignore
        (Theorem.extra_loss_exact ~primary ~overflow ~capacity ~reserve
           ~state:(capacity - reserve)))

let test_theorem_loss_increases_with_state () =
  (* seizing a circuit on a fuller link displaces more future primaries *)
  let primary = 7. and capacity = 10 and reserve = 3 in
  let overflow _ = 1. in
  let prev = ref 0. in
  for s = 0 to capacity - reserve - 1 do
    let l = Theorem.extra_loss_exact ~primary ~overflow ~capacity ~reserve ~state:s in
    Alcotest.(check bool) "monotone in state" true (l >= !prev);
    prev := l
  done

let test_theorem_bound_independent_of_overflow () =
  let b1 = Theorem.bound ~primary:10. ~capacity:20 ~reserve:4 in
  feq_at 1e-12 "bound is the blocking ratio"
    (Arnet_erlang.Erlang_b.blocking_ratio ~offered:10. ~capacity:20 ~reserve:4)
    b1

(* ------------------------------------------------------------------ *)
(* Approximation (fixed point of the controlled scheme) *)

let test_approx_single_link_is_erlang () =
  (* one isolated link: the fixed point is plain Erlang B *)
  let g = Graph.create ~nodes:2 [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity:20 ] in
  let routes = Route_table.build g in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 15. else 0.) in
  let t = Approximation.solve ~routes ~reserves:[| 0 |] matrix in
  Alcotest.(check bool) "converged" true t.Approximation.converged;
  feq_at 1e-6 "Erlang B recovered"
    (Arnet_erlang.Erlang_b.blocking ~offered:15. ~capacity:20)
    t.Approximation.network_blocking

let test_approx_full_reserve_is_single_path () =
  (* reserves = capacity: alternates never admitted, so the fixed point
     must match the primaries-only reduced-load model *)
  let g = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:28. in
  let capacities =
    Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g)
  in
  let t = Approximation.solve ~routes ~reserves:capacities matrix in
  (* primaries in K4 are single links: expected loss = B(28, 30) per pair *)
  feq_at 1e-4 "single-path fixed point"
    (Arnet_erlang.Erlang_b.blocking ~offered:28. ~capacity:30)
    t.Approximation.network_blocking

let test_approx_matches_simulation () =
  let routes, nominal = Arnet_experiments.Internet.nominal () in
  let g = Route_table.graph routes in
  let reserves = Protection.levels routes nominal ~h:(Route_table.h routes) in
  let approx = Approximation.solve ~routes ~reserves nominal in
  Alcotest.(check bool) "converged" true approx.Approximation.converged;
  let results =
    Engine.replicate ~warmup:10. ~seeds:[ 1; 2; 3 ] ~duration:60. ~graph:g
      ~matrix:nominal
      ~policies:[ Scheme.controlled ~reserves routes ]
      ()
  in
  let sim =
    (Stats.blocking_summary (List.assoc "controlled" results)).Stats.mean
  in
  Alcotest.(check bool)
    (Printf.sprintf "approx %.4f within 2pp of sim %.4f"
       approx.Approximation.network_blocking sim)
    true
    (Float.abs (approx.Approximation.network_blocking -. sim) < 0.02)

let test_approx_pair_blocking_consistent () =
  let routes, nominal = Arnet_experiments.Internet.nominal () in
  let reserves = Protection.levels routes nominal ~h:11 in
  let t = Approximation.solve ~routes ~reserves nominal in
  (* demand-weighted pair blocking re-aggregates to the network figure *)
  let lost = ref 0. and total = ref 0. in
  Matrix.iter_demands nominal (fun src dst d ->
      total := !total +. d;
      lost := !lost +. (d *. Approximation.pair_blocking t ~routes ~src ~dst));
  feq_at 1e-9 "aggregation consistent" t.Approximation.network_blocking
    (!lost /. !total);
  (* unrouted pairs are fully blocked *)
  let g2 = Graph.of_edges ~nodes:3 ~capacity:5 [ (0, 1) ] in
  let r2 = Route_table.build g2 in
  let m2 = Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 1 then 1. else 0.) in
  let t2 = Approximation.solve ~routes:r2 ~reserves:[| 0; 0 |] m2 in
  feq_at 1e-12 "unrouted pair" 1.
    (Approximation.pair_blocking t2 ~routes:r2 ~src:0 ~dst:2)

let test_approx_validation () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:5 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  check_invalid "reserves length" (fun () ->
      ignore (Approximation.solve ~routes ~reserves:[| 0 |] matrix));
  check_invalid "bad damping" (fun () ->
      ignore
        (Approximation.solve ~damping:0.
           ~routes
           ~reserves:(Array.make (Graph.link_count g) 0)
           matrix));
  check_invalid "matrix size" (fun () ->
      ignore
        (Approximation.solve ~routes
           ~reserves:(Array.make (Graph.link_count g) 0)
           (Matrix.uniform ~nodes:4 ~demand:1.)))

(* ------------------------------------------------------------------ *)
(* Bistability (mean-field avalanche model) *)

let test_bistability_band () =
  (* inside the band: cold and hot starts settle on different regimes *)
  let cold = Bistability.fixed_point_from ~offered:75. ~capacity:100 ~reserve:0 `Cold in
  let hot = Bistability.fixed_point_from ~offered:75. ~capacity:100 ~reserve:0 `Hot in
  Alcotest.(check bool) "cold regime is low" true
    (cold.Bistability.network_blocking < 0.01);
  Alcotest.(check bool) "hot regime is high" true
    (hot.Bistability.network_blocking > 0.10);
  Alcotest.(check bool) "bistable at 75" true
    (Bistability.is_bistable ~offered:75. ~capacity:100 ~reserve:0 ());
  (* outside the band on both sides: unique fixed point *)
  Alcotest.(check bool) "monostable at 60" false
    (Bistability.is_bistable ~offered:60. ~capacity:100 ~reserve:0 ());
  Alcotest.(check bool) "monostable at 100 (high)" false
    (Bistability.is_bistable ~offered:100. ~capacity:100 ~reserve:0 ())

let test_bistability_protection_removes_it () =
  List.iter
    (fun offered ->
      Alcotest.(check bool)
        (Printf.sprintf "r=5 monostable at %g" offered)
        false
        (Bistability.is_bistable ~offered ~capacity:100 ~reserve:5 ()))
    [ 70.; 75.; 80.; 85. ];
  (* and the protected overload blocking is far below the free hot state *)
  let free = Bistability.fixed_point_from ~offered:100. ~capacity:100 ~reserve:0 `Hot in
  let prot = Bistability.fixed_point_from ~offered:100. ~capacity:100 ~reserve:5 `Hot in
  Alcotest.(check bool) "protection tames the overload regime" true
    (prot.Bistability.network_blocking
    < 0.5 *. free.Bistability.network_blocking)

let test_bistability_critical_load () =
  (match Bistability.critical_load ~capacity:100 ~reserve:0 () with
  | Some a -> Alcotest.(check bool) "onset in [60, 75]" true (a > 60. && a < 75.)
  | None -> Alcotest.fail "free model must be bistable somewhere");
  Alcotest.(check bool) "protected model never bistable" true
    (Bistability.critical_load ~capacity:100 ~reserve:10 () = None)

let test_bistability_validation () =
  check_invalid "bad load" (fun () ->
      ignore
        (Bistability.fixed_point_from ~offered:0. ~capacity:10 ~reserve:0 `Cold));
  check_invalid "reserve = capacity" (fun () ->
      ignore
        (Bistability.fixed_point_from ~offered:1. ~capacity:10 ~reserve:10
           `Cold));
  check_invalid "attempts < 1" (fun () ->
      ignore
        (Bistability.fixed_point_from ~attempts:0 ~offered:1. ~capacity:10
           ~reserve:0 `Cold))

let prop_bistability_cold_below_hot =
  QCheck2.Test.make ~count:40 ~name:"cold fixed point never above hot"
    QCheck2.Gen.(
      let* offered = float_range 10. 120. in
      let* reserve = int_range 0 10 in
      let* attempts = int_range 1 12 in
      return (offered, reserve, attempts))
    (fun (offered, reserve, attempts) ->
      let fp start =
        Bistability.fixed_point_from ~attempts ~offered ~capacity:100
          ~reserve start
      in
      let cold = fp `Cold and hot = fp `Hot in
      cold.Bistability.network_blocking
      <= hot.Bistability.network_blocking +. 1e-6
      && cold.Bistability.network_blocking >= 0.
      && hot.Bistability.network_blocking <= 1.)

let prop_theorem_random_overflow =
  QCheck2.Test.make ~count:60 ~name:"Theorem 1 under random overflow patterns"
    QCheck2.Gen.(
      let* nu = float_range 1. 60. in
      let* c = int_range 3 60 in
      let* r = int_range 0 3 in
      let* o = float_range 0. 50. in
      let* decay = float_range 0.1 2. in
      return (nu, c, min r (c - 1), o, decay))
    (fun (nu, c, r, o, decay) ->
      let overflow s = o *. exp (-.decay *. float_of_int s) in
      Theorem.verify ~primary:nu ~overflow ~capacity:c ~reserve:r)

let () =
  Alcotest.run "core"
    [ ( "protection",
        [ Alcotest.test_case "table 1 regression" `Quick test_protection_table1;
          Alcotest.test_case "small properties" `Quick
            test_protection_properties_small;
          Alcotest.test_case "levels of loads" `Quick
            test_protection_levels_of_loads;
          Alcotest.test_case "levels from matrix" `Quick
            test_protection_levels_from_matrix;
          Alcotest.test_case "sweep monotone" `Quick
            test_protection_sweep_monotone;
          Alcotest.test_case "path guarantee <= 1" `Quick test_path_guarantee ] );
      ( "admission",
        [ Alcotest.test_case "link rules" `Quick test_admission_rules;
          Alcotest.test_case "path rules" `Quick test_admission_paths;
          Alcotest.test_case "validation" `Quick test_admission_validation ] );
      ( "controller",
        [ Alcotest.test_case "primary_for" `Quick test_controller_primary_for;
          Alcotest.test_case "decide" `Quick test_controller_decide ] );
      ( "scheme",
        [ Alcotest.test_case "single-path" `Quick test_scheme_single_path;
          Alcotest.test_case "uncontrolled vs controlled" `Quick
            test_scheme_uncontrolled_vs_controlled;
          Alcotest.test_case "protection threshold" `Quick
            test_scheme_controlled_threshold;
          Alcotest.test_case "controlled_auto" `Quick
            test_scheme_controlled_auto_matches_manual;
          Alcotest.test_case "compiled plans identical across domains"
            `Quick test_scheme_compile_domains_identical;
          Alcotest.test_case "ott-krishnan basic" `Quick
            test_scheme_ott_krishnan_basic;
          Alcotest.test_case "ott-krishnan price blocking" `Quick
            test_scheme_ott_krishnan_blocks_on_price;
          Alcotest.test_case "ott-krishnan reduced" `Quick
            test_scheme_ott_krishnan_reduced;
          Alcotest.test_case "least-busy" `Quick test_scheme_least_busy;
          Alcotest.test_case "length-aware" `Quick test_scheme_length_aware ] );
      ( "approximation",
        [ Alcotest.test_case "single link = Erlang" `Quick
            test_approx_single_link_is_erlang;
          Alcotest.test_case "full reserve = single-path" `Quick
            test_approx_full_reserve_is_single_path;
          Alcotest.test_case "matches simulation" `Slow
            test_approx_matches_simulation;
          Alcotest.test_case "pair blocking consistent" `Quick
            test_approx_pair_blocking_consistent;
          Alcotest.test_case "validation" `Quick test_approx_validation ] );
      ( "bistability",
        [ Alcotest.test_case "bistable band" `Quick test_bistability_band;
          Alcotest.test_case "protection removes it" `Quick
            test_bistability_protection_removes_it;
          Alcotest.test_case "critical load" `Quick
            test_bistability_critical_load;
          Alcotest.test_case "validation" `Quick test_bistability_validation;
          QCheck_alcotest.to_alcotest prop_bistability_cold_below_hot ] );
      ( "theorem",
        [ Alcotest.test_case "grid" `Quick test_theorem_holds_across_grid;
          Alcotest.test_case "exact loss bounded" `Quick
            test_theorem_exact_loss_positive_and_bounded;
          Alcotest.test_case "loss monotone in state" `Quick
            test_theorem_loss_increases_with_state;
          Alcotest.test_case "bound formula" `Quick
            test_theorem_bound_independent_of_overflow;
          QCheck_alcotest.to_alcotest prop_theorem_random_overflow ] ) ]
