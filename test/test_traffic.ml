open Arnet_topology
open Arnet_paths
open Arnet_traffic

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq = Alcotest.(check (float 1e-9))
let feq_at tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Matrix *)

let test_matrix_make () =
  let m = Matrix.make ~nodes:3 (fun i j -> float_of_int ((10 * i) + j)) in
  feq "entry" 12. (Matrix.get m 1 2);
  feq "diagonal forced to zero" 0. (Matrix.get m 1 1);
  Alcotest.(check int) "nodes" 3 (Matrix.nodes m);
  check_invalid "negative demand" (fun () ->
      ignore (Matrix.make ~nodes:2 (fun _ _ -> -1.)));
  check_invalid "nan demand" (fun () ->
      ignore (Matrix.make ~nodes:2 (fun _ _ -> Float.nan)));
  check_invalid "too few nodes" (fun () ->
      ignore (Matrix.make ~nodes:1 (fun _ _ -> 1.)))

let test_matrix_uniform_total () =
  let m = Matrix.uniform ~nodes:4 ~demand:2.5 in
  feq "total = n(n-1)d" 30. (Matrix.total m);
  feq "zero matrix" 0. (Matrix.total (Matrix.zero ~nodes:4))

let test_matrix_of_array () =
  let m = Matrix.of_array [| [| 0.; 1. |]; [| 2.; 0. |] |] in
  feq "entry" 2. (Matrix.get m 1 0);
  check_invalid "not square" (fun () ->
      ignore (Matrix.of_array [| [| 0.; 1. |] |]));
  check_invalid "nonzero diagonal" (fun () ->
      ignore (Matrix.of_array [| [| 1.; 1. |]; [| 2.; 0. |] |]))

let test_matrix_scale_add_map () =
  let m = Matrix.uniform ~nodes:3 ~demand:2. in
  feq "scale" 24. (Matrix.total (Matrix.scale m 2.));
  feq "add" 24. (Matrix.total (Matrix.add m m));
  let doubled = Matrix.map m (fun _ _ d -> 2. *. d) in
  feq "map" 0. (Matrix.max_abs_diff doubled (Matrix.scale m 2.));
  check_invalid "negative scale" (fun () -> ignore (Matrix.scale m (-1.)));
  check_invalid "add size mismatch" (fun () ->
      ignore (Matrix.add m (Matrix.uniform ~nodes:4 ~demand:1.)))

let test_matrix_iteration () =
  let m =
    Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 1 then 5. else 0.)
  in
  Alcotest.(check int) "demand_count" 1 (Matrix.demand_count m);
  let visited = ref [] in
  Matrix.iter_demands m (fun i j d -> visited := (i, j, d) :: !visited);
  Alcotest.(check int) "only positive visited" 1 (List.length !visited);
  let pairs = Matrix.fold m ~init:0 ~f:(fun acc _ _ _ -> acc + 1) in
  Alcotest.(check int) "fold visits all ordered pairs" 6 pairs;
  check_invalid "get out of range" (fun () -> ignore (Matrix.get m 0 3))

(* ------------------------------------------------------------------ *)
(* Gravity *)

let test_gravity_proportionality () =
  let weights = [| 1.; 2.; 3. |] in
  let m = Gravity.with_weights ~weights ~total:60. in
  feq_at 1e-9 "total preserved" 60. (Matrix.total m);
  (* T(1,2)/T(0,1) = (2*3)/(1*2) = 3 *)
  feq_at 1e-9 "proportionality" 3. (Matrix.get m 1 2 /. Matrix.get m 0 1);
  check_invalid "zero weight" (fun () ->
      ignore (Gravity.with_weights ~weights:[| 0.; 1. |] ~total:1.));
  check_invalid "bad total" (fun () ->
      ignore (Gravity.with_weights ~weights:[| 1.; 1. |] ~total:0.))

let test_gravity_uniform_and_degree () =
  let u = Gravity.uniform_total ~nodes:4 ~total:12. in
  feq "uniform entries equal" 1. (Matrix.get u 0 1);
  feq "matches Matrix.uniform" 0.
    (Matrix.max_abs_diff u (Matrix.uniform ~nodes:4 ~demand:1.));
  let star = Builders.star ~nodes:4 ~capacity:1 in
  let dm = Gravity.degree_weighted star ~total:10. in
  feq_at 1e-9 "total" 10. (Matrix.total dm);
  Alcotest.(check bool) "hub attracts more" true
    (Matrix.get dm 0 1 > Matrix.get dm 2 1)

(* ------------------------------------------------------------------ *)
(* Loads *)

let test_loads_line_graph () =
  (* line 0-1-2: primary 0->2 and 1->2 both cross link 1->2 *)
  let g = Builders.line ~nodes:3 ~capacity:10 in
  let routes = Route_table.build g in
  let m =
    Matrix.make ~nodes:3 (fun i j ->
        match (i, j) with 0, 2 -> 4. | 1, 2 -> 2. | _ -> 0.)
  in
  let loads = Loads.primary_link_loads routes m in
  let id12 = (Graph.find_link_exn g ~src:1 ~dst:2).Link.id in
  let id01 = (Graph.find_link_exn g ~src:0 ~dst:1).Link.id in
  let id21 = (Graph.find_link_exn g ~src:2 ~dst:1).Link.id in
  feq "shared link load" 6. loads.(id12);
  feq "first hop load" 4. loads.(id01);
  feq "unused direction zero" 0. loads.(id21)

let test_loads_conservation () =
  (* sum over links of Lambda = sum over pairs of demand * primary hops *)
  let g = Nsfnet.graph () in
  let routes = Route_table.build g in
  let m = Gravity.degree_weighted g ~total:500. in
  let loads = Loads.primary_link_loads routes m in
  let total_load = Array.fold_left ( +. ) 0. loads in
  let expected =
    Matrix.fold m ~init:0. ~f:(fun acc i j d ->
        if d > 0. then
          acc +. (d *. float_of_int (Path.hops (Route_table.primary routes ~src:i ~dst:j)))
        else acc)
  in
  feq_at 1e-6 "conservation" expected total_load

let test_link_load_error () =
  feq "zero error" 0. (Loads.link_load_error ~target:[| 5.; 10. |] [| 5.; 10. |]);
  feq "relative to target" 0.1
    (Loads.link_load_error ~target:[| 10.; 100. |] [| 11.; 100. |]);
  (* small targets measured against 1, not the tiny target *)
  feq "small target guarded" 0.5
    (Loads.link_load_error ~target:[| 0.1 |] [| 0.6 |]);
  check_invalid "length mismatch" (fun () ->
      ignore (Loads.link_load_error ~target:[| 1. |] [| 1.; 2. |]))

let test_offered_to_pair_paths () =
  let g = Builders.line ~nodes:3 ~capacity:10 in
  let routes = Route_table.build g in
  let m =
    Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 2 then 3. else 0.)
  in
  match Loads.offered_to_pair_paths routes m with
  | [ r ] ->
    feq "offered" 3. r.Arnet_erlang.Reduced_load.offered;
    Alcotest.(check int) "two links" 2
      (List.length r.Arnet_erlang.Reduced_load.links)
  | l -> Alcotest.failf "expected one route, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Fit *)

let test_fit_recovers_consistent_loads () =
  (* loads induced by a known matrix are recoverable essentially exactly *)
  let g = Nsfnet.graph () in
  let routes = Route_table.build g in
  let secret = Gravity.degree_weighted g ~total:800. in
  let target = Loads.primary_link_loads routes secret in
  let fit = Fit.to_link_loads routes ~target in
  Alcotest.(check bool) "tight fit" true (fit.Fit.max_relative_error < 1e-5);
  Alcotest.(check bool) "converged before cap" true (fit.Fit.iterations < 5_000);
  (* achieved loads match the report *)
  let again = Loads.primary_link_loads routes fit.Fit.matrix in
  feq_at 1e-9 "achieved loads consistent" 0.
    (Array.fold_left Float.max 0.
       (Array.mapi (fun i a -> Float.abs (a -. again.(i))) fit.Fit.achieved))

let test_fit_nsfnet_nominal () =
  let _, fit = Fit.nsfnet_nominal () in
  Alcotest.(check bool) "table-1 loads reproduced" true
    (fit.Fit.max_relative_error < 1e-5);
  let total = Matrix.total fit.Fit.matrix in
  Alcotest.(check bool) "plausible total demand" true
    (total > 500. && total < 2000.);
  (* all demands nonnegative by construction; spot check positivity *)
  Alcotest.(check bool) "positive demands exist" true
    (Matrix.demand_count fit.Fit.matrix > 100)

let test_fit_validation () =
  let g = Builders.line ~nodes:3 ~capacity:10 in
  let routes = Route_table.build g in
  check_invalid "target length" (fun () ->
      ignore (Fit.to_link_loads routes ~target:[| 1. |]));
  check_invalid "negative target" (fun () ->
      ignore
        (Fit.to_link_loads routes
           ~target:(Array.make (Graph.link_count g) (-1.))));
  check_invalid "seed size mismatch" (fun () ->
      ignore
        (Fit.to_link_loads routes
           ~seed:(Matrix.uniform ~nodes:4 ~demand:1.)
           ~target:(Array.make (Graph.link_count g) 1.)))

(* ------------------------------------------------------------------ *)
(* properties *)

let prop_scale_linear =
  QCheck2.Test.make ~count:100 ~name:"link loads scale linearly with demand"
    QCheck2.Gen.(float_range 0.1 5.)
    (fun factor ->
      let g = Builders.ring ~nodes:5 ~capacity:10 in
      let routes = Route_table.build g in
      let m = Matrix.uniform ~nodes:5 ~demand:2. in
      let base = Loads.primary_link_loads routes m in
      let scaled = Loads.primary_link_loads routes (Matrix.scale m factor) in
      Array.for_all
        (fun ok -> ok)
        (Array.mapi
           (fun k l -> Float.abs (l -. (factor *. base.(k))) < 1e-9)
           scaled))

let prop_fit_random_consistent_targets =
  QCheck2.Test.make ~count:15 ~name:"fit recovers loads of random matrices"
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let g = Builders.full_mesh ~nodes:5 ~capacity:10 in
      let routes = Route_table.build g in
      let st = Random.State.make [| seed |] in
      let m =
        Matrix.make ~nodes:5 (fun _ _ -> 0.5 +. Random.State.float st 10.)
      in
      let target = Loads.primary_link_loads routes m in
      let fit = Fit.to_link_loads routes ~target in
      fit.Fit.max_relative_error < 1e-4)

let () =
  Alcotest.run "traffic"
    [ ( "matrix",
        [ Alcotest.test_case "make" `Quick test_matrix_make;
          Alcotest.test_case "uniform/total" `Quick test_matrix_uniform_total;
          Alcotest.test_case "of_array" `Quick test_matrix_of_array;
          Alcotest.test_case "scale/add/map" `Quick test_matrix_scale_add_map;
          Alcotest.test_case "iteration" `Quick test_matrix_iteration ] );
      ( "gravity",
        [ Alcotest.test_case "proportionality" `Quick
            test_gravity_proportionality;
          Alcotest.test_case "uniform/degree" `Quick
            test_gravity_uniform_and_degree ] );
      ( "loads",
        [ Alcotest.test_case "line graph" `Quick test_loads_line_graph;
          Alcotest.test_case "conservation" `Quick test_loads_conservation;
          Alcotest.test_case "load error" `Quick test_link_load_error;
          Alcotest.test_case "pair paths" `Quick test_offered_to_pair_paths ] );
      ( "fit",
        [ Alcotest.test_case "recovers consistent loads" `Quick
            test_fit_recovers_consistent_loads;
          Alcotest.test_case "nsfnet nominal" `Quick test_fit_nsfnet_nominal;
          Alcotest.test_case "validation" `Quick test_fit_validation ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_scale_linear; prop_fit_random_consistent_targets ] ) ]
