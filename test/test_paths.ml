open Arnet_topology
open Arnet_paths

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let triangle () = Graph.of_edges ~nodes:3 ~capacity:5 [ (0, 1); (1, 2); (0, 2) ]
let k4 () = Builders.full_mesh ~nodes:4 ~capacity:10

(* a diamond where 0->3 has two 2-hop routes: via 1 and via 2 *)
let diamond () =
  Graph.of_edges ~nodes:4 ~capacity:5 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_make () =
  let g = triangle () in
  let p = Path.make g [ 0; 1; 2 ] in
  Alcotest.(check int) "hops" 2 (Path.hops p);
  Alcotest.(check int) "src" 0 (Path.src p);
  Alcotest.(check int) "dst" 2 (Path.dst p);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2 ] (Path.nodes p);
  let ids = Path.link_ids p in
  Alcotest.(check int) "two links" 2 (List.length ids);
  let links = Path.links g p in
  Alcotest.(check (list (pair int int))) "link endpoints" [ (0, 1); (1, 2) ]
    (List.map (fun (l : Link.t) -> (l.Link.src, l.Link.dst)) links)

let test_path_validation () =
  let g = triangle () in
  check_invalid "repeated node" (fun () -> ignore (Path.make g [ 0; 1; 0 ]));
  check_invalid "single node" (fun () -> ignore (Path.make g [ 0 ]));
  check_invalid "missing link" (fun () ->
      ignore
        (Path.make (Graph.of_edges ~nodes:3 ~capacity:1 [ (0, 1) ]) [ 0; 2 ]))

let test_path_mem () =
  let g = triangle () in
  let p = Path.make g [ 0; 1; 2 ] in
  Alcotest.(check bool) "mem node" true (Path.mem_node p 1);
  Alcotest.(check bool) "not mem node" false (Path.mem_node p 3);
  let id01 = (Graph.find_link_exn g ~src:0 ~dst:1).Link.id in
  let id20 = (Graph.find_link_exn g ~src:2 ~dst:0).Link.id in
  Alcotest.(check bool) "mem link" true (Path.mem_link p id01);
  Alcotest.(check bool) "not mem link" false (Path.mem_link p id20)

let test_path_ordering () =
  let g = k4 () in
  let short = Path.make g [ 0; 1 ] in
  let long = Path.make g [ 0; 2; 1 ] in
  let long' = Path.make g [ 0; 3; 1 ] in
  Alcotest.(check bool) "shorter first" true
    (Path.compare_by_length short long < 0);
  Alcotest.(check bool) "lexicographic among equals" true
    (Path.compare_by_length long long' < 0);
  Alcotest.(check bool) "equal" true (Path.equal short (Path.make g [ 0; 1 ]));
  Alcotest.(check string) "to_string" "[0-2-1]" (Path.to_string long)

(* ------------------------------------------------------------------ *)
(* Bfs *)

let test_bfs_distances () =
  let g = Builders.line ~nodes:5 ~capacity:1 in
  let d = Bfs.distances g ~src:0 in
  Alcotest.(check (list int)) "line distances" [ 0; 1; 2; 3; 4 ]
    (Array.to_list d);
  let d' = Bfs.distances_to g ~dst:0 in
  Alcotest.(check (list int)) "to-distances equal on symmetric graph"
    (Array.to_list d) (Array.to_list d')

let test_bfs_unreachable () =
  let g = Graph.of_edges ~nodes:3 ~capacity:1 [ (0, 1) ] in
  let d = Bfs.distances g ~src:0 in
  Alcotest.(check bool) "node 2 unreachable" true (d.(2) = max_int);
  Alcotest.(check bool) "no path" true (Bfs.min_hop_path g ~src:0 ~dst:2 = None)

let test_bfs_deterministic_tie_break () =
  let g = diamond () in
  match Bfs.min_hop_path g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "path expected"
  | Some p ->
    Alcotest.(check (list int)) "lexicographically smallest shortest"
      [ 0; 1; 3 ] (Path.nodes p)

let test_bfs_min_hop_correct () =
  let g = Builders.ring ~nodes:6 ~capacity:1 in
  (match Bfs.min_hop_path g ~src:0 ~dst:2 with
  | Some p -> Alcotest.(check int) "2 hops around ring" 2 (Path.hops p)
  | None -> Alcotest.fail "expected path");
  check_invalid "src = dst" (fun () ->
      ignore (Bfs.min_hop_path g ~src:1 ~dst:1))

let test_eccentricity_diameter () =
  let ring = Builders.ring ~nodes:6 ~capacity:1 in
  Alcotest.(check int) "ring eccentricity" 3 (Bfs.eccentricity ring 0);
  Alcotest.(check int) "ring diameter" 3 (Bfs.diameter ring);
  let line = Builders.line ~nodes:5 ~capacity:1 in
  Alcotest.(check int) "line diameter" 4 (Bfs.diameter line);
  Alcotest.(check int) "nsfnet diameter" 5 (Bfs.diameter (Nsfnet.graph ()))

(* ------------------------------------------------------------------ *)
(* Dijkstra *)

let test_dijkstra_unit_weights_match_bfs () =
  let g = Nsfnet.graph () in
  for src = 0 to 11 do
    for dst = 0 to 11 do
      if src <> dst then begin
        let bfs = Option.get (Bfs.min_hop_path g ~src ~dst) in
        let dij =
          Option.get (Dijkstra.shortest_path g ~weight:(fun _ -> 1.) ~src ~dst)
        in
        Alcotest.(check int)
          (Printf.sprintf "same length %d->%d" src dst)
          (Path.hops bfs) (Path.hops dij)
      end
    done
  done

let test_dijkstra_routes_around_expensive_link () =
  let g = triangle () in
  let direct = (Graph.find_link_exn g ~src:0 ~dst:2).Link.id in
  let weight (l : Link.t) = if l.Link.id = direct then 10. else 1. in
  match Dijkstra.shortest_path g ~weight ~src:0 ~dst:2 with
  | Some p -> Alcotest.(check (list int)) "detour" [ 0; 1; 2 ] (Path.nodes p)
  | None -> Alcotest.fail "path expected"

let test_dijkstra_validation () =
  let g = triangle () in
  check_invalid "negative weight" (fun () ->
      ignore (Dijkstra.shortest_path g ~weight:(fun _ -> -1.) ~src:0 ~dst:2));
  check_invalid "src = dst" (fun () ->
      ignore (Dijkstra.shortest_path g ~weight:(fun _ -> 1.) ~src:0 ~dst:0));
  let d = Dijkstra.distances g ~weight:(fun _ -> 2.) ~src:0 in
  Alcotest.(check (float 1e-9)) "distance scaled" 2. d.(1)

(* ------------------------------------------------------------------ *)
(* Enumerate *)

let test_enumerate_k4 () =
  let g = k4 () in
  let paths = Enumerate.simple_paths g ~src:0 ~dst:1 in
  (* 1 direct + 2 two-hop + 2 three-hop *)
  Alcotest.(check int) "five simple paths in K4" 5 (List.length paths);
  Alcotest.(check (list int)) "sorted by length" [ 1; 2; 2; 3; 3 ]
    (List.map Path.hops paths);
  Alcotest.(check int) "count agrees" 5
    (Enumerate.count_simple_paths g ~src:0 ~dst:1);
  let capped = Enumerate.simple_paths ~max_hops:2 g ~src:0 ~dst:1 in
  Alcotest.(check int) "cap at 2 hops" 3 (List.length capped)

let test_enumerate_validation () =
  let g = k4 () in
  check_invalid "src = dst" (fun () ->
      ignore (Enumerate.simple_paths g ~src:1 ~dst:1));
  check_invalid "bad max_hops" (fun () ->
      ignore (Enumerate.simple_paths ~max_hops:0 g ~src:0 ~dst:1))

let test_enumerate_census_nsfnet () =
  let g = Nsfnet.graph () in
  let census = Enumerate.path_census g in
  Alcotest.(check int) "132 ordered pairs" 132 (List.length census);
  let counts = List.map (fun (_, _, c) -> c) census in
  let mn = List.fold_left min max_int counts in
  let mx = List.fold_left max 0 counts in
  (* paper: ~9 alternates avg, min 5, max 15 -> total paths 6..16 *)
  Alcotest.(check int) "min total paths" 6 mn;
  Alcotest.(check int) "max total paths" 16 mx

(* ------------------------------------------------------------------ *)
(* Yen *)

let test_yen_equals_enumeration_on_hop_metric () =
  let g = Nsfnet.graph () in
  let pairs = [ (0, 6); (3, 10); (11, 2) ] in
  List.iter
    (fun (src, dst) ->
      let all = Enumerate.simple_paths g ~src ~dst in
      let k = min 7 (List.length all) in
      let yen = Yen.k_shortest g ~src ~dst ~k in
      let expect = List.filteri (fun i _ -> i < k) all |> List.map Path.nodes in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "yen = first-k of enumeration %d->%d" src dst)
        expect (List.map Path.nodes yen))
    pairs

let test_yen_weighted () =
  let g = triangle () in
  let direct = (Graph.find_link_exn g ~src:0 ~dst:2).Link.id in
  let weight (l : Link.t) = if l.Link.id = direct then 10. else 1. in
  let paths = Yen.k_shortest ~weight g ~src:0 ~dst:2 ~k:2 in
  Alcotest.(check (list (list int))) "cheap detour first"
    [ [ 0; 1; 2 ]; [ 0; 2 ] ]
    (List.map Path.nodes paths)

let test_yen_validation_and_k () =
  let g = triangle () in
  check_invalid "k < 1" (fun () -> ignore (Yen.k_shortest g ~src:0 ~dst:1 ~k:0));
  check_invalid "src = dst" (fun () ->
      ignore (Yen.k_shortest g ~src:0 ~dst:0 ~k:1));
  Alcotest.(check int) "k larger than path count" 2
    (List.length (Yen.k_shortest g ~src:0 ~dst:1 ~k:10));
  let disconnected = Graph.of_edges ~nodes:3 ~capacity:1 [ (0, 1) ] in
  Alcotest.(check int) "no paths" 0
    (List.length (Yen.k_shortest disconnected ~src:0 ~dst:2 ~k:3))

(* ------------------------------------------------------------------ *)
(* Suurballe *)

let test_suurballe_diamond () =
  let g = diamond () in
  match Suurballe.disjoint_pair g ~src:0 ~dst:3 with
  | Some (a, b) ->
    Alcotest.(check bool) "disjoint" true (Suurballe.is_link_disjoint a b);
    Alcotest.(check int) "total hops" 4 (Path.hops a + Path.hops b);
    Alcotest.(check bool) "shorter first" true (Path.hops a <= Path.hops b)
  | None -> Alcotest.fail "pair expected"

let test_suurballe_trap () =
  (* classic trap: both 2-hop-ish shortest routes share link 0->1; the
     optimum pair must avoid the greedy choice *)
  let g =
    Graph.of_edges ~nodes:6 ~capacity:1
      [ (0, 1); (1, 5); (0, 2); (2, 3); (3, 5); (1, 3) ]
  in
  match Suurballe.disjoint_pair g ~src:0 ~dst:5 with
  | Some (a, b) ->
    Alcotest.(check bool) "disjoint" true (Suurballe.is_link_disjoint a b);
    Alcotest.(check int) "optimal total" 5 (Path.hops a + Path.hops b)
  | None -> Alcotest.fail "pair expected"

let test_suurballe_no_pair () =
  let line = Builders.line ~nodes:3 ~capacity:1 in
  Alcotest.(check bool) "bridge graph has no pair" true
    (Suurballe.disjoint_pair line ~src:0 ~dst:2 = None);
  check_invalid "src = dst" (fun () ->
      ignore (Suurballe.disjoint_pair line ~src:1 ~dst:1));
  check_invalid "negative weight" (fun () ->
      ignore
        (Suurballe.disjoint_pair ~weight:(fun _ -> -1.) (k4 ()) ~src:0 ~dst:1))

let test_suurballe_nsfnet () =
  Alcotest.(check bool) "backbone survives single-link failures" true
    (Suurballe.edge_connectivity_at_least_two (Nsfnet.graph ()))

(* brute-force optimum over all link-disjoint path pairs *)
let brute_force_pair g ~src ~dst =
  let all = Enumerate.simple_paths g ~src ~dst in
  let best = ref None in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Suurballe.is_link_disjoint a b then begin
            let total = Path.hops a + Path.hops b in
            match !best with
            | Some t when t <= total -> ()
            | _ -> best := Some total
          end)
        all)
    all;
  !best

let graph_gen_small =
  QCheck2.Gen.(
    let* n = int_range 3 6 in
    let all =
      List.concat_map
        (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
        (List.init n (fun i -> i))
    in
    let spanning = List.init (n - 1) (fun i -> (i, i + 1)) in
    let* extra = list_size (int_range 0 5) (oneofl all) in
    return (n, List.sort_uniq compare (spanning @ extra)))

let prop_suurballe_optimal =
  QCheck2.Test.make ~count:60
    ~name:"suurballe matches brute-force optimal disjoint total"
    graph_gen_small
    (fun (n, edges) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let brute = brute_force_pair g ~src:0 ~dst:(n - 1) in
      match Suurballe.disjoint_pair g ~src:0 ~dst:(n - 1) with
      | None -> brute = None
      | Some (a, b) -> (
        Suurballe.is_link_disjoint a b
        && Path.src a = 0
        && Path.dst b = n - 1
        &&
        match brute with
        | Some t -> Path.hops a + Path.hops b = t
        | None -> false))

(* the weighted variant: pseudo-random small-integer link weights (so
   float sums stay exact) on graphs up to 7 nodes, brute-forced over
   weighted totals rather than hops *)
let graph_gen_weighted =
  QCheck2.Gen.(
    let* n = int_range 3 7 in
    let all =
      List.concat_map
        (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
        (List.init n (fun i -> i))
    in
    let spanning = List.init (n - 1) (fun i -> (i, i + 1)) in
    let* extra = list_size (int_range 0 6) (oneofl all) in
    let* wseed = int_range 0 999 in
    return (n, List.sort_uniq compare (spanning @ extra), wseed))

let weight_of ~wseed (l : Link.t) =
  float_of_int (1 + (((l.Link.src * 7) + (l.Link.dst * 13) + wseed) mod 9))

let path_cost g ~wseed p =
  let links = Graph.links g in
  List.fold_left
    (fun acc id -> acc +. weight_of ~wseed links.(id))
    0. (Path.link_ids p)

let brute_force_weighted g ~wseed ~src ~dst =
  let all = Enumerate.simple_paths g ~src ~dst in
  let best = ref None in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Suurballe.is_link_disjoint a b then begin
            let total = path_cost g ~wseed a +. path_cost g ~wseed b in
            match !best with
            | Some t when t <= total -> ()
            | _ -> best := Some total
          end)
        all)
    all;
  !best

let prop_suurballe_weighted_optimal =
  QCheck2.Test.make ~count:60
    ~name:"suurballe (weighted) matches brute-force optimal disjoint total"
    graph_gen_weighted
    (fun (n, edges, wseed) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let weight = weight_of ~wseed in
      let brute = brute_force_weighted g ~wseed ~src:0 ~dst:(n - 1) in
      match Suurballe.disjoint_pair ~weight g ~src:0 ~dst:(n - 1) with
      | None -> brute = None
      | Some (a, b) -> (
        Suurballe.is_link_disjoint a b
        && Path.src a = 0
        && Path.dst b = n - 1
        &&
        match brute with
        | Some t -> path_cost g ~wseed a +. path_cost g ~wseed b = t
        | None -> false))

(* ------------------------------------------------------------------ *)
(* Route_table *)

let test_route_table_basics () =
  let g = k4 () in
  let t = Route_table.build g in
  Alcotest.(check int) "default h" 3 (Route_table.h t);
  let p = Route_table.primary t ~src:0 ~dst:3 in
  Alcotest.(check int) "primary is direct" 1 (Path.hops p);
  let alts = Route_table.alternates t ~src:0 ~dst:3 in
  Alcotest.(check int) "four alternates" 4 (List.length alts);
  Alcotest.(check bool) "primary excluded" true
    (not (List.exists (Path.equal p) alts));
  Alcotest.(check (list int)) "attempt order by length" [ 2; 2; 3; 3 ]
    (List.map Path.hops alts);
  Alcotest.(check bool) "has_route" true (Route_table.has_route t ~src:1 ~dst:2)

let test_route_table_h_cap () =
  let g = k4 () in
  let t = Route_table.build ~h:2 g in
  Alcotest.(check (list int)) "3-hop alternates dropped" [ 2; 2 ]
    (List.map Path.hops (Route_table.alternates t ~src:0 ~dst:3));
  Alcotest.(check int) "max_alternate_hops" 2 (Route_table.max_alternate_hops t);
  check_invalid "h < 1" (fun () -> ignore (Route_table.build ~h:0 g))

let test_route_table_primary_longer_than_h () =
  (* ring of 6 with h=1: far pairs have a primary but no alternates *)
  let g = Builders.ring ~nodes:6 ~capacity:1 in
  let t = Route_table.build ~h:1 g in
  let p = Route_table.primary t ~src:0 ~dst:3 in
  Alcotest.(check int) "primary 3 hops" 3 (Path.hops p);
  Alcotest.(check int) "no alternates at h=1" 0
    (List.length (Route_table.alternates t ~src:0 ~dst:3));
  Alcotest.(check bool) "all_paths includes primary" true
    (List.exists (Path.equal p) (Route_table.all_paths t ~src:0 ~dst:3))

let test_route_table_custom_primary () =
  let g = k4 () in
  let detour ~src ~dst =
    (* deliberately 2-hop primaries via the smallest third node *)
    let via = List.find (fun v -> v <> src && v <> dst) [ 0; 1; 2; 3 ] in
    Some (Path.make g [ src; via; dst ])
  in
  let t = Route_table.build ~primary:detour g in
  let p = Route_table.primary t ~src:2 ~dst:3 in
  Alcotest.(check int) "custom primary 2 hops" 2 (Path.hops p);
  let alts = Route_table.alternates t ~src:2 ~dst:3 in
  Alcotest.(check bool) "direct path among alternates now" true
    (List.exists (fun q -> Path.hops q = 1) alts);
  Alcotest.(check bool) "custom primary excluded" true
    (not (List.exists (Path.equal p) alts))

let test_route_table_disconnected () =
  let g = Graph.of_edges ~nodes:3 ~capacity:1 [ (0, 1) ] in
  let t = Route_table.build g in
  Alcotest.(check bool) "no route" false (Route_table.has_route t ~src:0 ~dst:2);
  check_invalid "primary of unrouted pair" (fun () ->
      ignore (Route_table.primary t ~src:0 ~dst:2));
  Alcotest.(check int) "no alternates" 0
    (List.length (Route_table.alternates t ~src:0 ~dst:2))

let test_route_table_stats () =
  let g = Nsfnet.graph () in
  let t = Route_table.build g in
  let mn = ref 0 and mx = ref 0 in
  let avg = Route_table.alternate_count_stats t ~min:mn ~max:mx in
  Alcotest.(check int) "min 5 (paper)" 5 !mn;
  Alcotest.(check int) "max 15 (paper)" 15 !mx;
  Alcotest.(check bool) "avg near paper's ~9" true (avg > 7.5 && avg < 9.5)

let test_route_table_protected () =
  let g = k4 () in
  let t = Route_table.protected g in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            let p = Route_table.primary t ~src ~dst in
            let alts = Route_table.alternate_array t ~src ~dst in
            Alcotest.(check int) "one protection alternate" 1
              (Array.length alts);
            Alcotest.(check bool) "mate is link-disjoint" true
              (Suurballe.is_link_disjoint p alts.(0));
            Alcotest.(check bool) "primary no longer than mate" true
              (Path.hops p <= Path.hops alts.(0))
          end)
        [ 0; 1; 2; 3 ])
    [ 0; 1; 2; 3 ];
  (* a bridge graph still routes, just without protection *)
  let line = Builders.line ~nodes:3 ~capacity:1 in
  let t = Route_table.protected line in
  Alcotest.(check bool) "bridge pair still routed" true
    (Route_table.has_route t ~src:0 ~dst:2);
  Alcotest.(check int) "but has no protection mate" 0
    (Array.length (Route_table.alternate_array t ~src:0 ~dst:2))

let prop_protected_table =
  QCheck2.Test.make ~count:60
    ~name:"protected table: one link-disjoint mate exactly when one exists"
    graph_gen_small
    (fun (n, edges) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let t = Route_table.protected g in
      let nodes = List.init n (fun i -> i) in
      List.for_all
        (fun src ->
          List.for_all
            (fun dst ->
              src = dst
              || (not (Route_table.has_route t ~src ~dst))
              ||
              let p = Route_table.primary t ~src ~dst in
              let alts = Route_table.alternate_array t ~src ~dst in
              match Suurballe.disjoint_pair g ~src ~dst with
              | Some (a, b) ->
                Array.length alts = 1
                && Path.equal p a
                && Path.equal alts.(0) b
              | None -> Array.length alts = 0)
            nodes)
        nodes)

(* ------------------------------------------------------------------ *)
(* properties *)

let graph_gen =
  QCheck2.Gen.(
    let* n = int_range 3 6 in
    let all =
      List.concat_map
        (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
        (List.init n (fun i -> i))
    in
    let spanning = List.init (n - 1) (fun i -> (i, i + 1)) in
    let* extra = list_size (int_range 0 5) (oneofl all) in
    return (n, List.sort_uniq compare (spanning @ extra)))

let prop_enumerated_paths_valid =
  QCheck2.Test.make ~count:80 ~name:"enumerated paths are valid and distinct"
    graph_gen (fun (n, edges) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let paths = Enumerate.simple_paths g ~src:0 ~dst:(n - 1) in
      let all_valid =
        List.for_all
          (fun p ->
            Path.src p = 0
            && Path.dst p = n - 1
            && List.length (List.sort_uniq compare (Path.nodes p))
               = List.length (Path.nodes p))
          paths
      in
      let distinct =
        List.length (List.sort_uniq compare (List.map Path.nodes paths))
        = List.length paths
      in
      all_valid && distinct)

let prop_yen_prefix_of_enumeration =
  QCheck2.Test.make ~count:60
    ~name:"yen (hop metric) = shortest prefix of full enumeration" graph_gen
    (fun (n, edges) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let all = Enumerate.simple_paths g ~src:0 ~dst:(n - 1) in
      let k = min 5 (List.length all) in
      if k = 0 then true
      else
        let yen = Yen.k_shortest g ~src:0 ~dst:(n - 1) ~k in
        List.map Path.nodes yen
        = List.map Path.nodes (List.filteri (fun i _ -> i < k) all))

(* the precomputed alternate arrays must match the List.filter semantics
   they replaced: candidates minus the table primary, in attempt order *)
let prop_alternate_array_equiv =
  QCheck2.Test.make ~count:60
    ~name:"alternate_array = primary-excluded all_paths (filter semantics)"
    QCheck2.Gen.(pair graph_gen (int_range 1 4))
    (fun ((n, edges), h) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let t = Route_table.build ~h g in
      let nodes = List.init n (fun i -> i) in
      List.for_all
        (fun src ->
          List.for_all
            (fun dst ->
              src = dst
              || (not (Route_table.has_route t ~src ~dst))
              ||
              let p = Route_table.primary t ~src ~dst in
              let arr =
                Array.to_list (Route_table.alternate_array t ~src ~dst)
              in
              let reference =
                List.filter
                  (fun q -> not (Path.equal q p))
                  (Route_table.all_paths t ~src ~dst)
              in
              List.map Path.nodes arr = List.map Path.nodes reference
              && List.map Path.nodes
                   (Route_table.alternates_excluding t ~src ~dst p)
                 = List.map Path.nodes reference
              &&
              (* attempt order is by increasing hop count *)
              let hs = List.map Path.hops arr in
              List.sort compare hs = hs)
            nodes)
        nodes)

let test_alternate_attempt_order_golden () =
  let g = k4 () in
  let t = Route_table.build g in
  Alcotest.(check (list (list int)))
    "K4 0->3: two 2-hop alternates then two 3-hop, lexicographic within"
    [ [ 0; 1; 3 ]; [ 0; 2; 3 ]; [ 0; 1; 2; 3 ]; [ 0; 2; 1; 3 ] ]
    (List.map Path.nodes
       (Array.to_list (Route_table.alternate_array t ~src:0 ~dst:3)));
  Alcotest.(check (list (list int)))
    "alternates_excluding the primary agrees with the array"
    (List.map Path.nodes
       (Array.to_list (Route_table.alternate_array t ~src:0 ~dst:3)))
    (List.map Path.nodes
       (Route_table.alternates_excluding t ~src:0 ~dst:3
          (Route_table.primary t ~src:0 ~dst:3)))

(* ------------------------------------------------------------------ *)
(* memoized/parallel build and incremental patch *)

let prop_paths_from_row =
  QCheck2.Test.make ~count:80
    ~name:"paths_from row = per-pair simple_paths"
    QCheck2.Gen.(pair graph_gen (int_range 1 5))
    (fun ((n, edges), h) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let row = Enumerate.paths_from ~max_hops:h g ~src:0 in
      List.for_all
        (fun dst ->
          let expect =
            if dst = 0 then []
            else Enumerate.simple_paths ~max_hops:h g ~src:0 ~dst
          in
          List.map Path.nodes row.(dst) = List.map Path.nodes expect
          && List.map Path.link_ids row.(dst) = List.map Path.link_ids expect)
        (List.init n (fun i -> i)))

let prop_build_matches_reference =
  QCheck2.Test.make ~count:60
    ~name:"memoized build = per-pair reference build (and under domains)"
    QCheck2.Gen.(pair graph_gen (int_range 1 5))
    (fun ((n, edges), h) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let reference = Route_table.build_reference ~h g in
      Route_table.equal reference (Route_table.build ~h g)
      && Route_table.equal reference (Route_table.build ~domains:3 ~h g))

(* random meshes up to 8 nodes, as the issue asks: spanning path plus
   random chords, so removals can disconnect pairs *)
let mesh_gen_8 =
  QCheck2.Gen.(
    let* n = int_range 4 8 in
    let all =
      List.concat_map
        (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
        (List.init n (fun i -> i))
    in
    let spanning = List.init (n - 1) (fun i -> (i, i + 1)) in
    let* extra = list_size (int_range 0 8) (oneofl all) in
    let* h = int_range 1 5 in
    let* ops = list_size (int_range 1 3) (int_bound 9999) in
    return (n, List.sort_uniq compare (spanning @ extra), h, ops))

(* derive a concrete change from an op seed against the *current* graph,
   so sequences stay applicable as the graph evolves *)
let change_of_seed g seed =
  let m = Graph.link_count g in
  let n = Graph.node_count g in
  match seed mod 3 with
  | 0 when m > 0 ->
    let l = Graph.link g (seed / 3 mod m) in
    Some (Route_table.Remove_link { src = l.Link.src; dst = l.Link.dst })
  | 1 ->
    let missing = ref [] in
    for src = n - 1 downto 0 do
      for dst = n - 1 downto 0 do
        if src <> dst && Graph.find_link g ~src ~dst = None then
          missing := (src, dst) :: !missing
      done
    done;
    (match !missing with
    | [] -> None
    | l ->
      let src, dst = List.nth l (seed / 3 mod List.length l) in
      Some (Route_table.Add_link { src; dst; capacity = 1 + (seed mod 7) }))
  | _ when m > 0 ->
    let l = Graph.link g (seed / 3 mod m) in
    Some
      (Route_table.Set_capacity
         { src = l.Link.src; dst = l.Link.dst; capacity = seed mod 5 })
  | _ -> None

let prop_patch_equals_rebuild =
  QCheck2.Test.make ~count:80
    ~name:"incremental patch = from-scratch rebuild (random <=8-node meshes)"
    mesh_gen_8
    (fun (n, edges, h, ops) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let t = ref (Route_table.build ~h g) in
      let ok = ref true in
      List.iter
        (fun seed ->
          match change_of_seed (Route_table.graph !t) seed with
          | None -> ()
          | Some change ->
            let patched, recomputed = Route_table.patch !t [ change ] in
            let rebuilt = Route_table.build ~h (Route_table.graph patched) in
            if not (Route_table.equal patched rebuilt) then ok := false;
            if recomputed < 0 || recomputed > n * (n - 1) then ok := false;
            (match change with
            | Route_table.Set_capacity _ when recomputed <> 0 -> ok := false
            | _ -> ());
            t := patched)
        ops;
      !ok)

let test_patch_nsfnet_golden () =
  (* one link failure on NSFNet at the paper's H: the canonical
     incremental-recompile scenario the failure layer feeds *)
  let g = Nsfnet.graph () in
  let t = Route_table.build g in
  let l = Graph.link g 0 in
  let patched, recomputed =
    Route_table.patch t
      [ Route_table.Remove_link { src = l.Link.src; dst = l.Link.dst } ]
  in
  let g' = Graph.without_links g [ (l.Link.src, l.Link.dst) ] in
  Alcotest.(check bool) "patched table equals rebuild" true
    (Route_table.equal patched (Route_table.build g'));
  (* at the unrestricted H = 11, 85 of the 132 ordered pairs hold some
     candidate through link 0 — the rest carry over untouched *)
  Alcotest.(check int) "pairs recomputed (of 132)" 85 recomputed;
  (* repairing the link restores the original table *)
  let restored, _ =
    Route_table.patch patched
      [ Route_table.Add_link
          { src = l.Link.src; dst = l.Link.dst; capacity = l.Link.capacity } ]
  in
  Alcotest.(check bool) "add-back restores the original" true
    (Route_table.equal restored t)

let test_patch_validation () =
  let g = k4 () in
  let t = Route_table.build g in
  check_invalid "remove absent link" (fun () ->
      ignore (Route_table.patch t [ Route_table.Remove_link { src = 0; dst = 0 } ]));
  check_invalid "add existing link" (fun () ->
      ignore
        (Route_table.patch t
           [ Route_table.Add_link { src = 0; dst = 1; capacity = 1 } ]));
  check_invalid "custom-primary tables are not patchable" (fun () ->
      let custom =
        Route_table.build ~primary:(fun ~src ~dst -> Bfs.min_hop_path g ~src ~dst) g
      in
      ignore
        (Route_table.patch custom
           [ Route_table.Remove_link { src = 0; dst = 1 } ]));
  check_invalid "protected tables are not patchable" (fun () ->
      ignore
        (Route_table.patch (Route_table.protected g)
           [ Route_table.Remove_link { src = 0; dst = 1 } ]))

let prop_bfs_is_shortest =
  QCheck2.Test.make ~count:80 ~name:"bfs path length equals distance"
    graph_gen (fun (n, edges) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let d = Bfs.distances g ~src:0 in
      List.for_all
        (fun dst ->
          dst = 0
          ||
          match Bfs.min_hop_path g ~src:0 ~dst with
          | Some p -> Path.hops p = d.(dst)
          | None -> d.(dst) = max_int)
        (List.init n (fun i -> i)))

let () =
  Alcotest.run "paths"
    [ ( "path",
        [ Alcotest.test_case "make" `Quick test_path_make;
          Alcotest.test_case "validation" `Quick test_path_validation;
          Alcotest.test_case "membership" `Quick test_path_mem;
          Alcotest.test_case "ordering" `Quick test_path_ordering ] );
      ( "bfs",
        [ Alcotest.test_case "distances" `Quick test_bfs_distances;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "tie-break" `Quick test_bfs_deterministic_tie_break;
          Alcotest.test_case "min-hop" `Quick test_bfs_min_hop_correct;
          Alcotest.test_case "eccentricity/diameter" `Quick
            test_eccentricity_diameter ] );
      ( "dijkstra",
        [ Alcotest.test_case "unit weights = bfs" `Quick
            test_dijkstra_unit_weights_match_bfs;
          Alcotest.test_case "weighted detour" `Quick
            test_dijkstra_routes_around_expensive_link;
          Alcotest.test_case "validation" `Quick test_dijkstra_validation ] );
      ( "enumerate",
        [ Alcotest.test_case "K4" `Quick test_enumerate_k4;
          Alcotest.test_case "validation" `Quick test_enumerate_validation;
          Alcotest.test_case "nsfnet census" `Quick
            test_enumerate_census_nsfnet ] );
      ( "yen",
        [ Alcotest.test_case "equals enumeration prefix" `Quick
            test_yen_equals_enumeration_on_hop_metric;
          Alcotest.test_case "weighted" `Quick test_yen_weighted;
          Alcotest.test_case "validation and k" `Quick
            test_yen_validation_and_k ] );
      ( "suurballe",
        [ Alcotest.test_case "diamond" `Quick test_suurballe_diamond;
          Alcotest.test_case "trap graph" `Quick test_suurballe_trap;
          Alcotest.test_case "no pair / validation" `Quick
            test_suurballe_no_pair;
          Alcotest.test_case "nsfnet 2-edge-connected" `Quick
            test_suurballe_nsfnet;
          QCheck_alcotest.to_alcotest prop_suurballe_optimal;
          QCheck_alcotest.to_alcotest prop_suurballe_weighted_optimal ] );
      ( "route-table",
        [ Alcotest.test_case "basics" `Quick test_route_table_basics;
          Alcotest.test_case "h cap" `Quick test_route_table_h_cap;
          Alcotest.test_case "primary longer than h" `Quick
            test_route_table_primary_longer_than_h;
          Alcotest.test_case "custom primary" `Quick
            test_route_table_custom_primary;
          Alcotest.test_case "disconnected" `Quick test_route_table_disconnected;
          Alcotest.test_case "nsfnet stats" `Quick test_route_table_stats;
          Alcotest.test_case "alternate attempt order golden" `Quick
            test_alternate_attempt_order_golden;
          Alcotest.test_case "protected (Suurballe) table" `Quick
            test_route_table_protected;
          QCheck_alcotest.to_alcotest prop_protected_table ] );
      ( "patch",
        [ Alcotest.test_case "nsfnet one-link-failure golden" `Quick
            test_patch_nsfnet_golden;
          Alcotest.test_case "validation" `Quick test_patch_validation;
          QCheck_alcotest.to_alcotest prop_paths_from_row;
          QCheck_alcotest.to_alcotest prop_build_matches_reference;
          QCheck_alcotest.to_alcotest prop_patch_equals_rebuild ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_enumerated_paths_valid;
            prop_yen_prefix_of_enumeration;
            prop_alternate_array_equiv;
            prop_bfs_is_shortest ] ) ]
