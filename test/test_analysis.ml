(* Static-analysis pass: diagnostics, the check registry, and the
   Section-3.1 minimality property of Protection.level. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_core
open Arnet_analysis

let quadrangle_config () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:80. in
  let routes = Route_table.build g in
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  Check.config ~routes ~matrix ~reserves g

let nsfnet_config () =
  let g = Nsfnet.graph () in
  let _, matrix = Arnet_experiments.Internet.nominal () in
  let routes = Route_table.build g in
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  Check.config ~routes ~matrix ~reserves g

(* ------------------------------------------------------------------ *)
(* clean seed configurations *)

let test_quadrangle_clean () =
  let ds = Lint.run (quadrangle_config ()) in
  Alcotest.(check int)
    (String.concat "; " (List.map Diagnostic.to_string ds))
    0 (List.length ds);
  Alcotest.(check int) "exit code" 0 (Lint.exit_code ds);
  Alcotest.(check string) "summary" "clean" (Lint.summary ds)

let test_nsfnet_clean () =
  let ds = Lint.run (nsfnet_config ()) in
  (* Table 1 has six links whose primary demand exceeds C = 100 (e.g.
     10->11 at 167 Erlangs); those surface as advisory warnings, never
     as errors, and leave the exit code at 0. *)
  Alcotest.(check bool) "no errors" false (Lint.has_errors ds);
  Alcotest.(check int) "exit code" 0 (Lint.exit_code ds);
  let overloads =
    List.filter (fun d -> d.Diagnostic.code = "traffic-overload") ds
  in
  Alcotest.(check int) "all findings are overload warnings"
    (List.length ds) (List.length overloads);
  Alcotest.(check int) "six overloaded links" 6 (List.length overloads);
  (* strict mode refuses to pass a warning-carrying configuration *)
  Alcotest.(check int) "strict exit code" 1 (Lint.exit_code ~strict:true ds)

(* ------------------------------------------------------------------ *)
(* corrupted configurations *)

let test_zero_capacity () =
  let g =
    Graph.with_capacities
      (Builders.full_mesh ~nodes:4 ~capacity:100)
      [ (0, 1, 0) ]
  in
  let ds = Lint.run ~only:[ "topology" ] (Check.config g) in
  Alcotest.(check bool) "has errors" true (Lint.has_errors ds);
  Alcotest.(check bool) "topo-capacity reported" true
    (List.exists (fun d -> d.Diagnostic.code = "topo-capacity") ds);
  (* the zero-capacity link also breaks capacity symmetry with its twin *)
  Alcotest.(check bool) "topo-asymmetric reported" true
    (List.exists (fun d -> d.Diagnostic.code = "topo-asymmetric") ds);
  Alcotest.(check int) "exit code" 1 (Lint.exit_code ds)

let test_asymmetric_and_disconnected () =
  let g = Builders.line ~nodes:3 ~capacity:10 in
  (* drop one direction of the first edge: symmetry broken, and node 1
     is no longer reachable from node 0 *)
  let g = Graph.without_links g [ (0, 1) ] in
  let ds = Topology_check.run (Check.config g) in
  Alcotest.(check bool) "topo-asymmetric" true
    (List.exists (fun d -> d.Diagnostic.code = "topo-asymmetric") ds);
  Alcotest.(check bool) "topo-disconnected" true
    (List.exists (fun d -> d.Diagnostic.code = "topo-disconnected") ds)

let test_corrupted_reserves () =
  let config = quadrangle_config () in
  let reserves =
    match config.Check.reserves with
    | Some r -> Array.copy r
    | None -> assert false
  in
  let minimal = reserves.(0) in
  Alcotest.(check bool) "quadrangle link 0 carries protection" true
    (minimal > 0);
  (* too large: safe but not minimal — the scheme over-refuses *)
  reserves.(0) <- minimal + 3;
  let ds = Lint.run { config with Check.reserves = Some reserves } in
  Alcotest.(check bool) "not-minimal is an error" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = "prot-not-minimal" && Diagnostic.is_error d)
       ds);
  Alcotest.(check int) "exit code" 1 (Lint.exit_code ds);
  (* too small: Theorem 1 no longer bounds the damage *)
  reserves.(0) <- minimal - 1;
  let ds = Lint.run { config with Check.reserves = Some reserves } in
  Alcotest.(check bool) "unsafe is an error" true
    (List.exists
       (fun d -> d.Diagnostic.code = "prot-unsafe" && Diagnostic.is_error d)
       ds);
  (* out of range beats both *)
  reserves.(0) <- -1;
  let ds = Lint.run { config with Check.reserves = Some reserves } in
  Alcotest.(check bool) "range is an error" true
    (List.exists (fun d -> d.Diagnostic.code = "prot-range") ds)

let test_malformed_routes () =
  (* routes computed on the full quadrangle, linted against a degraded
     topology: paths over the vanished link must be flagged *)
  let full = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Route_table.build full in
  let degraded = Graph.without_links full [ (0, 1); (1, 0) ] in
  let ds =
    Route_check.run (Check.config ~routes degraded)
  in
  Alcotest.(check bool) "malformed paths reported" true
    (List.exists (fun d -> d.Diagnostic.code = "route-malformed-path") ds);
  Alcotest.(check bool) "messages reuse Path.resolve wording" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = "route-malformed-path"
         && String.length d.Diagnostic.message > 0
         &&
         let msg = d.Diagnostic.message in
         let needle = "Path.resolve: no link" in
         let rec contains i =
           if i + String.length needle > String.length msg then false
           else String.sub msg i (String.length needle) = needle || contains (i + 1)
         in
         contains 0)
       ds)

let test_load_mismatch () =
  let config = quadrangle_config () in
  let m = Graph.link_count config.Check.graph in
  (* declare stale loads: half the Equation-1 truth *)
  let declared = Array.make m 40. in
  let ds =
    Traffic_check.run { config with Check.loads = Some declared }
  in
  Alcotest.(check bool) "traffic-load-mismatch" true
    (List.exists (fun d -> d.Diagnostic.code = "traffic-load-mismatch") ds)

(* ------------------------------------------------------------------ *)
(* diagnostics: ordering, rendering, JSON round-trip *)

let test_ordering () =
  let d1 = Diagnostic.info ~code:"zz" Diagnostic.Network "late" in
  let d2 =
    Diagnostic.error ~code:"aa" (Diagnostic.Node 3) "first by severity"
  in
  let d3 = Diagnostic.warning ~code:"mm" (Diagnostic.Pair { src = 1; dst = 2 }) "middle" in
  let sorted = List.sort Diagnostic.compare [ d1; d3; d2 ] in
  Alcotest.(check (list string))
    "errors first" [ "aa"; "mm"; "zz" ]
    (List.map (fun d -> d.Diagnostic.code) sorted)

let test_json_roundtrip () =
  let samples =
    [
      Diagnostic.error ~code:"topo-capacity"
        (Diagnostic.Link { id = 3; src = 0; dst = 1 })
        "zero capacity: quoted \"reason\" with\nnewline and \\ backslash";
      Diagnostic.warning ~code:"traffic-overload"
        (Diagnostic.Pair { src = 10; dst = 11 })
        "primary demand 167 Erlangs";
      Diagnostic.info ~code:"route-primary-detour" (Diagnostic.Node 7) "";
      Diagnostic.error ~code:"prot-length" Diagnostic.Network "tab\there";
    ]
  in
  let round = Diagnostic.list_of_json (Diagnostic.json_of_list samples) in
  Alcotest.(check int) "same length" (List.length samples) (List.length round);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) (Diagnostic.to_string a) true (a = b))
    samples round;
  Alcotest.(check (list pass)) "empty list round-trips" []
    (Diagnostic.list_of_json (Diagnostic.json_of_list []));
  (* lint output of a real run round-trips too *)
  let ds = Lint.run (nsfnet_config ()) in
  let round = Diagnostic.list_of_json (Lint.to_json ds) in
  Alcotest.(check bool) "nsfnet findings round-trip" true (ds = round)

let test_registry () =
  Alcotest.(check (list string))
    "built-in checks registered"
    [ "topology"; "import"; "routes"; "protection"; "traffic" ]
    (List.map (fun c -> c.Check.name) (Check.registered ()));
  Alcotest.check_raises "unknown check name"
    (Invalid_argument "Check.run: unknown check nonsense") (fun () ->
      ignore (Check.run ~only:[ "nonsense" ] (quadrangle_config ())))

(* ------------------------------------------------------------------ *)
(* import checks: silent without importer metadata, escalating with it *)

let import_of ?(coords = None) ?(merged = 0) ?(loops = 0) g =
  let coords =
    match coords with
    | Some c -> c
    | None -> Array.make (Graph.node_count g) None
  in
  { Check.coords; merged_parallel = merged; dropped_self_loops = loops }

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let test_import_silent_without_metadata () =
  (* programmatically built graphs carry no import block: the check
     must contribute nothing, whatever the graph looks like *)
  let ds = Lint.run ~only:[ "import" ] (quadrangle_config ()) in
  Alcotest.(check int) "silent" 0 (List.length ds)

let test_import_counters_and_coords () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let all_placed = Array.make 4 (Some (1., 2.)) in
  let clean =
    Check.config ~import:(import_of ~coords:(Some all_placed) g) g
  in
  Alcotest.(check (list string)) "clean import" []
    (codes (Lint.run ~only:[ "import" ] clean));
  let messy =
    Check.config
      ~import:(import_of ~coords:(Some all_placed) ~merged:3 ~loops:1 g)
      g
  in
  let ds = Lint.run ~only:[ "import" ] messy in
  Alcotest.(check (list string)) "cleanup counters surface as warnings"
    [ "import-parallel-edge"; "import-self-loop" ]
    (codes ds);
  Alcotest.(check bool) "warnings only" false (Lint.has_errors ds)

let test_import_coords_escalate_with_regional () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let partial = [| Some (1., 2.); None; Some (3., 4.); None |] in
  let relaxed =
    Check.config ~import:(import_of ~coords:(Some partial) g) g
  in
  let ds = Lint.run ~only:[ "import" ] relaxed in
  Alcotest.(check (list string)) "one info per unplaced node"
    [ "import-no-coords"; "import-no-coords" ]
    (codes ds);
  Alcotest.(check bool) "informational without --regional" false
    (Lint.has_errors ds);
  let regional =
    Check.config ~import:(import_of ~coords:(Some partial) g) ~regional:true
      g
  in
  let ds = Lint.run ~only:[ "import" ] regional in
  Alcotest.(check bool) "regional deployments need coordinates" true
    (Lint.has_errors ds);
  Alcotest.(check int) "exit code" 1 (Lint.exit_code ds)

let test_import_isolated_node () =
  (* node 3 exists but no edge touches it *)
  let g =
    Graph.of_edges ~nodes:4 ~capacity:10 [ (0, 1); (1, 2); (2, 0) ]
  in
  let ds = Lint.run ~only:[ "import" ] (Check.config ~import:(import_of g) g) in
  Alcotest.(check bool) "isolation reported" true
    (List.mem "import-isolated-node" (codes ds));
  (match
     List.find_opt (fun d -> d.Diagnostic.code = "import-isolated-node") ds
   with
  | Some d ->
    Alcotest.(check bool) "names the node" true
      (d.Diagnostic.location = Diagnostic.Node 3)
  | None -> Alcotest.fail "missing diagnostic");
  match Check.config ~import:(import_of (Builders.ring ~nodes:3 ~capacity:1)) g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "coords length mismatch accepted"

(* ------------------------------------------------------------------ *)
(* Protection.level minimality property (Theorem 1, Section 3.1) *)

let prop_protection_minimal =
  QCheck2.Test.make ~count:300
    ~name:"Protection.level returns the minimal r meeting the 1/h target"
    QCheck2.Gen.(
      triple (float_range 0.5 250.) (int_range 1 180) (int_range 1 12))
    (fun (offered, capacity, h) ->
      let r = Protection.level ~offered ~capacity ~h in
      let target = 1. /. float_of_int h in
      let ok_range = 0 <= r && r <= capacity in
      (* at r: the Theorem-1 ratio meets the target (unless no r can,
         in which case level clamps to capacity) *)
      let ok_at_r =
        r = capacity
        || Protection.bound ~offered ~capacity ~reserve:r <= target
      in
      (* at r-1: the target is missed — r is minimal *)
      let ok_minimal =
        r = 0
        || Protection.bound ~offered ~capacity ~reserve:(r - 1) > target
      in
      ok_range && ok_at_r && ok_minimal)

let prop_lint_clean_on_computed_levels =
  (* any full mesh with Protection.levels-computed reserves lints clean
     of protection errors: the pass agrees with the constructor *)
  QCheck2.Test.make ~count:25
    ~name:"Protection.levels output always passes the protection check"
    QCheck2.Gen.(
      triple (int_range 3 6) (int_range 20 120) (float_range 1. 100.))
    (fun (nodes, capacity, demand) ->
      let g = Builders.full_mesh ~nodes ~capacity in
      let matrix = Matrix.uniform ~nodes ~demand in
      let routes = Route_table.build g in
      let reserves =
        Protection.levels routes matrix ~h:(Route_table.h routes)
      in
      let ds =
        Protection_check.run (Check.config ~routes ~matrix ~reserves g)
      in
      not (Lint.has_errors ds))

let () =
  Alcotest.run "analysis"
    [
      ( "seed configurations",
        [
          Alcotest.test_case "quadrangle lints clean" `Quick
            test_quadrangle_clean;
          Alcotest.test_case "nsfnet lints clean" `Quick test_nsfnet_clean;
        ] );
      ( "corrupted configurations",
        [
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
          Alcotest.test_case "asymmetric and disconnected" `Quick
            test_asymmetric_and_disconnected;
          Alcotest.test_case "corrupted reserves" `Quick
            test_corrupted_reserves;
          Alcotest.test_case "malformed routes" `Quick test_malformed_routes;
          Alcotest.test_case "stale declared loads" `Quick test_load_mismatch;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "import",
        [
          Alcotest.test_case "silent without metadata" `Quick
            test_import_silent_without_metadata;
          Alcotest.test_case "counters and coords" `Quick
            test_import_counters_and_coords;
          Alcotest.test_case "regional escalation" `Quick
            test_import_coords_escalate_with_regional;
          Alcotest.test_case "isolated node" `Quick
            test_import_isolated_node;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_protection_minimal;
          QCheck_alcotest.to_alcotest prop_lint_clean_on_computed_levels;
        ] );
    ]
