(* The failure layer: the script codec and its algebra, stochastic
   failure models compiled down to scripts, and the failure-aware
   replay engine with its drop/failover accounting — including the
   frozen K4 golden run and sequential/pooled equivalence. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core
open Arnet_failure

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let k4 ?(capacity = 100) () = Builders.full_mesh ~nodes:4 ~capacity

let ev time link action = { Script.time; link; action }

(* ------------------------------------------------------------------ *)
(* scripts *)

let test_script_basics () =
  Alcotest.(check bool) "empty is empty" true (Script.is_empty Script.empty);
  Alcotest.(check int) "empty length" 0 (Script.length Script.empty);
  Alcotest.(check int) "empty max_link" (-1) (Script.max_link Script.empty);
  let s =
    Script.of_events [ ev 5. 1 Script.Repair; ev 2. 3 Script.Fail ]
  in
  Alcotest.(check int) "length" 2 (Script.length s);
  Alcotest.(check int) "max_link" 3 (Script.max_link s);
  (match Script.events s with
  | [ a; b ] ->
    Alcotest.(check bool) "sorted by time" true
      (a.Script.time <= b.Script.time);
    Alcotest.(check int) "first is the t=2 fail" 3 a.Script.link
  | _ -> Alcotest.fail "two events expected");
  (* ties keep the given order: FAIL then REPAIR at one instant means
     exactly that *)
  let tie =
    Script.of_events [ ev 1. 0 Script.Fail; ev 1. 0 Script.Repair ]
  in
  (match Script.events tie with
  | [ { Script.action = Script.Fail; _ };
      { Script.action = Script.Repair; _ } ] -> ()
  | _ -> Alcotest.fail "tie order lost");
  let m = Script.merge s tie in
  Alcotest.(check int) "merged length" 4 (Script.length m);
  Alcotest.(check bool) "merge result is sorted" true
    (let ts = List.map (fun e -> e.Script.time) (Script.events m) in
     List.sort compare ts = ts);
  check_invalid "negative time" (fun () ->
      ignore (Script.of_events [ ev (-1.) 0 Script.Fail ]));
  check_invalid "nan time" (fun () ->
      ignore (Script.of_events [ ev Float.nan 0 Script.Fail ]));
  check_invalid "negative link" (fun () ->
      ignore (Script.of_events [ ev 1. (-2) Script.Fail ]))

let test_script_text () =
  let text =
    "# storm\n\n5 FAIL 0\n5 FAIL 1\n20.25 REPAIR 0\n\t20.5\tREPAIR\t1\n"
  in
  (match Script.of_string text with
  | Ok s ->
    Alcotest.(check int) "comments and blanks skipped" 4 (Script.length s);
    (match Script.of_string (Script.to_string s) with
    | Ok s' ->
      Alcotest.(check bool) "parse (print s) = s" true (Script.equal s s')
    | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  let expect_error_line n text =
    match Script.of_string text with
    | Ok _ -> Alcotest.failf "%S should not parse" text
    | Error msg ->
      let needle = Printf.sprintf "line %d" n in
      if not (contains msg needle) then
        Alcotest.failf "error for %S should name %s, got %S" text needle msg
  in
  expect_error_line 1 "5 EXPLODE 3";
  expect_error_line 2 "1 FAIL 0\nx FAIL 1";
  expect_error_line 1 "-1 FAIL 0";
  expect_error_line 1 "1 FAIL -2";
  expect_error_line 3 "# ok\n2 FAIL 1\n2 FAIL"

let test_script_file () =
  let s =
    Script.of_events
      [ ev 1. 0 Script.Fail;
        ev (1. /. 3.) 4 Script.Fail;
        ev 2.125 0 Script.Repair ]
  in
  let path = Filename.temp_file "arnet-script" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Script.to_file path s;
      match Script.of_file path with
      | Ok s' ->
        Alcotest.(check bool) "file round-trip (incl. 1/3)" true
          (Script.equal s s')
      | Error e -> Alcotest.fail e);
  match Script.of_file "/nonexistent/arnet-script" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file should be an Error"

let prop_script_text_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (let* n = int_bound 10_000 in
         let* link = int_bound 40 in
         let* fail = bool in
         return
           (ev
              (float_of_int n /. 8.)
              link
              (if fail then Script.Fail else Script.Repair))))
  in
  QCheck2.Test.make ~count:200 ~name:"script: parse (print s) = s" gen
    (fun events ->
      let s = Script.of_events events in
      match Script.of_string (Script.to_string s) with
      | Ok s' -> Script.equal s s'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* models *)

(* every link's stream must alternate FAIL/REPAIR starting from up *)
let check_alternation g s =
  let alive = Array.make (Graph.link_count g) true in
  List.iter
    (fun e ->
      (match e.Script.action with
      | Script.Fail ->
        Alcotest.(check bool) "fail only while alive" true
          alive.(e.Script.link)
      | Script.Repair ->
        Alcotest.(check bool) "repair only while failed" true
          (not alive.(e.Script.link)));
      alive.(e.Script.link) <- e.Script.action = Script.Repair)
    (Script.events s)

let check_window ~duration s =
  List.iter
    (fun e ->
      Alcotest.(check bool) "time inside the window" true
        (e.Script.time >= 0. && e.Script.time < duration))
    (Script.events s)

let test_model_independent () =
  let g = k4 () in
  let rng () = Rng.substream (Rng.create ~seed:9) "failure" in
  let gen () =
    Model.independent ~rng:(rng ()) ~duration:50. ~mtbf:10. ~mttr:2. g
  in
  let s = gen () in
  Alcotest.(check bool) "deterministic per seed" true
    (Script.equal s (gen ()));
  Alcotest.(check bool) "nonempty at this rate" true
    (not (Script.is_empty s));
  Alcotest.(check bool) "within the graph" true
    (Script.max_link s < Graph.link_count g);
  check_window ~duration:50. s;
  check_alternation g s;
  check_invalid "duration <= 0" (fun () ->
      ignore (Model.independent ~rng:(rng ()) ~duration:0. ~mtbf:1. ~mttr:1. g));
  check_invalid "mtbf <= 0" (fun () ->
      ignore
        (Model.independent ~rng:(rng ()) ~duration:1. ~mtbf:(-1.) ~mttr:1. g));
  check_invalid "mttr not finite" (fun () ->
      ignore
        (Model.independent ~rng:(rng ()) ~duration:1. ~mtbf:1.
           ~mttr:Float.infinity g))

let test_model_srlg () =
  let g = k4 () in
  let groups = Model.edge_groups g in
  Alcotest.(check int) "K4 has 6 undirected fibers" 6 (List.length groups);
  List.iter
    (fun grp ->
      Alcotest.(check int) "both directions grouped" 2 (List.length grp))
    groups;
  let rng () = Rng.substream (Rng.create ~seed:3) "failure" in
  let s =
    Model.srlg ~rng:(rng ()) ~duration:80. ~mtbf:20. ~mttr:4. ~groups g
  in
  Alcotest.(check bool) "deterministic per seed" true
    (Script.equal s
       (Model.srlg ~rng:(rng ()) ~duration:80. ~mtbf:20. ~mttr:4. ~groups g));
  Alcotest.(check bool) "nonempty at this rate" true (not (Script.is_empty s));
  check_window ~duration:80. s;
  check_alternation g s;
  (* group members share every event instant *)
  let times link action =
    List.filter_map
      (fun e ->
        if e.Script.link = link && e.Script.action = action then
          Some e.Script.time
        else None)
      (Script.events s)
  in
  List.iter
    (fun grp ->
      match grp with
      | first :: rest ->
        List.iter
          (fun other ->
            Alcotest.(check (list (float 0.))) "fail together"
              (times first Script.Fail) (times other Script.Fail);
            Alcotest.(check (list (float 0.))) "repair together"
              (times first Script.Repair) (times other Script.Repair))
          rest
      | [] -> ())
    groups;
  check_invalid "empty group" (fun () ->
      ignore
        (Model.srlg ~rng:(rng ()) ~duration:1. ~mtbf:1. ~mttr:1.
           ~groups:[ [] ] g));
  check_invalid "out-of-range link" (fun () ->
      ignore
        (Model.srlg ~rng:(rng ()) ~duration:1. ~mtbf:1. ~mttr:1.
           ~groups:[ [ Graph.link_count g ] ] g));
  check_invalid "overlapping groups" (fun () ->
      ignore
        (Model.srlg ~rng:(rng ()) ~duration:1. ~mtbf:1. ~mttr:1.
           ~groups:[ [ 0; 1 ]; [ 1; 2 ] ] g))

let test_model_regional () =
  let g = k4 () in
  let rng () = Rng.substream (Rng.create ~seed:5) "failure" in
  (* every node at the center and a generous radius: each outage is a
     total blackout, so FAIL bursts come in multiples of the link count *)
  let coords = Array.make (Graph.node_count g) (0.5, 0.5) in
  let gen () =
    Model.regional ~coords ~rng:(rng ()) ~duration:200. ~rate:0.05 ~mttr:2.
      ~radius:1. g
  in
  let s = gen () in
  Alcotest.(check bool) "deterministic per seed" true
    (Script.equal s (gen ()));
  Alcotest.(check bool) "nonempty at this rate" true (not (Script.is_empty s));
  check_window ~duration:200. s;
  let fails =
    List.length
      (List.filter
         (fun e -> e.Script.action = Script.Fail)
         (Script.events s))
  in
  Alcotest.(check int) "blackouts hit every link" 0
    (fails mod Graph.link_count g);
  (* default coordinates are a deterministic function of the rng *)
  let c1 = Model.unit_square_coords ~rng:(rng ()) ~nodes:7 in
  let c2 = Model.unit_square_coords ~rng:(rng ()) ~nodes:7 in
  Alcotest.(check bool) "coords deterministic" true (c1 = c2);
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "coords on the unit square" true
        (x >= 0. && x < 1. && y >= 0. && y < 1.))
    c1;
  check_invalid "coords length mismatch" (fun () ->
      ignore
        (Model.regional
           ~coords:[| (0.5, 0.5) |]
           ~rng:(rng ()) ~duration:1. ~rate:1. ~mttr:1. ~radius:1. g));
  check_invalid "radius <= 0" (fun () ->
      ignore
        (Model.regional ~rng:(rng ()) ~duration:1. ~rate:1. ~mttr:1.
           ~radius:0. g))

(* ------------------------------------------------------------------ *)
(* the failure engine: accounting on a hand-built workload *)

let call time src dst holding = { Trace.time; src; dst; holding; u = 0. }

let test_engine_accounting () =
  let g = k4 ~capacity:5 () in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:1. in
  let cut = (Graph.find_link_exn g ~src:0 ~dst:1).Link.id in
  (* A is in flight over the cut at t=2 (dropped); B arrives during the
     outage (failover to an alternate); C arrives after the repair
     (primary, no failover) *)
  let trace =
    Trace.of_calls ~matrix ~duration:12.
      [ call 1. 0 1 10.; call 3. 0 1 1.; call 6. 0 1 1. ]
  in
  let script =
    Script.of_events [ ev 2. cut Script.Fail; ev 5. cut Script.Repair ]
  in
  let policy = Fault_scheme.uncontrolled routes in
  let r = Failure_engine.run ~warmup:0. ~script ~graph:g ~policy trace in
  Alcotest.(check int) "offered" 3 r.Failure_engine.core.Stats.offered;
  Alcotest.(check int) "none blocked" 0 r.Failure_engine.core.Stats.blocked;
  Alcotest.(check int) "A dropped by the cut" 1 r.Failure_engine.dropped;
  Alcotest.(check int) "B failed over" 1 r.Failure_engine.failovers;
  Alcotest.(check int) "B was an alternate carry" 1
    r.Failure_engine.core.Stats.carried_alternate;
  (* the same run with warmup beyond every event measures nothing *)
  let r' = Failure_engine.run ~warmup:11. ~script ~graph:g ~policy trace in
  Alcotest.(check int) "warmup gates offered" 0
    r'.Failure_engine.core.Stats.offered;
  Alcotest.(check int) "warmup gates drops" 0 r'.Failure_engine.dropped;
  Alcotest.(check int) "warmup gates failovers" 0 r'.Failure_engine.failovers;
  (* a departure tying a FAIL at one instant completes, not drops *)
  let tie_trace =
    Trace.of_calls ~matrix ~duration:10. [ call 1. 0 1 1. ]
  in
  let tie_script = Script.of_events [ ev 2. cut Script.Fail ] in
  let rt =
    Failure_engine.run ~warmup:0. ~script:tie_script ~graph:g ~policy
      tie_trace
  in
  Alcotest.(check int) "departure wins the tie" 0 rt.Failure_engine.dropped;
  (* single-path blocks outright while its primary is down *)
  let sp =
    Failure_engine.run ~warmup:0. ~script ~graph:g
      ~policy:(Fault_scheme.single_path routes)
      trace
  in
  Alcotest.(check int) "single-path blocks B" 1
    sp.Failure_engine.core.Stats.blocked;
  Alcotest.(check int) "single-path never fails over" 0
    sp.Failure_engine.failovers;
  (* scripts mentioning links outside the graph are refused *)
  check_invalid "script outside the graph" (fun () ->
      ignore
        (Failure_engine.run
           ~script:
             (Script.of_events [ ev 1. (Graph.link_count g) Script.Fail ])
           ~graph:g ~policy trace))

(* with an empty script the failure engine is the plain engine: same
   decisions call for call, plus all-zero drop/failover counters *)
let test_engine_matches_plain_engine () =
  let g = k4 () in
  let matrix = Matrix.uniform ~nodes:4 ~demand:80. in
  let routes = Route_table.build g in
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  let seeds = [ 1; 2; 3 ] in
  let plain =
    Engine.replicate_fresh ~warmup:5. ~seeds ~duration:30. ~graph:g ~matrix
      ~policies:(fun () ->
        [ Scheme.controlled ~reserves routes; Scheme.uncontrolled routes ])
      ()
  in
  let withf =
    Failure_engine.replicate_fresh ~warmup:5. ~seeds ~duration:30. ~graph:g
      ~matrix
      ~script:(fun ~seed:_ -> Script.empty)
      ~policies:(fun () ->
        [ Fault_scheme.controlled ~reserves routes;
          Fault_scheme.uncontrolled routes ])
      ()
  in
  List.iter2
    (fun (name, stats) (name', fstats) ->
      Alcotest.(check string) "same policy order" name name';
      List.iter2
        (fun (s : Stats.t) (f : Failure_engine.stats) ->
          Alcotest.(check int) "offered" s.Stats.offered
            f.Failure_engine.core.Stats.offered;
          Alcotest.(check int) "blocked" s.Stats.blocked
            f.Failure_engine.core.Stats.blocked;
          Alcotest.(check int) "carried primary" s.Stats.carried_primary
            f.Failure_engine.core.Stats.carried_primary;
          Alcotest.(check int) "carried alternate" s.Stats.carried_alternate
            f.Failure_engine.core.Stats.carried_alternate;
          Alcotest.(check int) "no drops" 0 f.Failure_engine.dropped;
          Alcotest.(check int) "no failovers" 0 f.Failure_engine.failovers)
        stats fstats)
    plain withf

(* ------------------------------------------------------------------ *)
(* determinism: frozen golden numbers, sequential = pooled *)

let golden_graph () = k4 ()
let golden_matrix () = Matrix.uniform ~nodes:4 ~demand:80.

let golden_script ~seed ~duration g =
  Model.independent
    ~rng:(Rng.substream (Rng.create ~seed) "failure")
    ~duration ~mtbf:30. ~mttr:4. g

let test_engine_golden () =
  let g = golden_graph () in
  let matrix = golden_matrix () in
  let routes = Route_table.build g in
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  let duration = 40. in
  (* replicated through the pool so the ARNET_DOMAINS=4 rerun exercises
     the parallel path against the same frozen numbers *)
  let r =
    match
      Failure_engine.replicate_fresh ~warmup:5. ~domains:(Pool.of_env ())
        ~seeds:[ 1 ] ~duration ~graph:g ~matrix
        ~script:(fun ~seed -> golden_script ~seed ~duration g)
        ~policies:(fun () -> [ Fault_scheme.controlled ~reserves routes ])
        ()
    with
    | [ (_, [ r ]) ] -> r
    | _ -> Alcotest.fail "one policy, one seed expected"
  in
  (* frozen numbers: any drift in trace generation, script generation or
     replay semantics shows up here, under ARNET_DOMAINS=1 and =4 alike *)
  Alcotest.(check int) "offered" 33758 r.Failure_engine.core.Stats.offered;
  Alcotest.(check int) "blocked" 3650 r.Failure_engine.core.Stats.blocked;
  Alcotest.(check int) "dropped" 1423 r.Failure_engine.dropped;
  Alcotest.(check int) "failovers" 1136 r.Failure_engine.failovers;
  let od src dst =
    match Stats.od_blocking r.Failure_engine.core ~src ~dst with
    | Some b -> b
    | None -> Alcotest.failf "pair %d->%d offered nothing" src dst
  in
  Alcotest.(check (float 1e-12)) "per-pair blocking 0->1"
    0.013333333333333334 (od 0 1);
  Alcotest.(check (float 1e-12)) "per-pair blocking 2->3"
    0.12681031437654539 (od 2 3)

let test_replicate_sequential_equals_pooled () =
  let g = golden_graph () in
  let matrix = golden_matrix () in
  let routes = Route_table.build g in
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  let duration = 25. in
  let run ~domains =
    Failure_engine.replicate_fresh ~warmup:5. ~domains ~seeds:[ 1; 2; 3; 4 ]
      ~duration ~graph:g ~matrix
      ~script:(fun ~seed -> golden_script ~seed ~duration g)
      ~policies:(fun () ->
        [ Fault_scheme.controlled ~reserves routes;
          Fault_scheme.uncontrolled routes;
          Fault_scheme.protected ~reserves:
              (Protection.levels
                 (Route_table.protected g)
                 matrix
                 ~h:(Route_table.h (Route_table.protected g)))
            (Route_table.protected g) ])
      ()
  in
  let fingerprint by_policy =
    List.map
      (fun (name, runs) ->
        ( name,
          List.map
            (fun r ->
              ( r.Failure_engine.core.Stats.offered,
                r.Failure_engine.core.Stats.blocked,
                r.Failure_engine.dropped,
                r.Failure_engine.failovers ))
            runs ))
      by_policy
  in
  let seq = fingerprint (run ~domains:1) in
  let pooled = fingerprint (run ~domains:4) in
  Alcotest.(check bool) "pooled replication is bit-identical" true
    (seq = pooled);
  (* and the storm actually bit: some run dropped or failed over *)
  Alcotest.(check bool) "the scripts actually cut links" true
    (List.exists
       (fun (_, runs) -> List.exists (fun (_, _, d, f) -> d > 0 || f > 0) runs)
       seq)

(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "failure"
    [ ( "script",
        [ Alcotest.test_case "basics and validation" `Quick test_script_basics;
          Alcotest.test_case "text format" `Quick test_script_text;
          Alcotest.test_case "file round-trip" `Quick test_script_file;
          qcheck prop_script_text_roundtrip ] );
      ( "model",
        [ Alcotest.test_case "independent" `Quick test_model_independent;
          Alcotest.test_case "srlg" `Quick test_model_srlg;
          Alcotest.test_case "regional" `Quick test_model_regional ] );
      ( "engine",
        [ Alcotest.test_case "drop/failover accounting" `Quick
            test_engine_accounting;
          Alcotest.test_case "empty script = plain engine" `Slow
            test_engine_matches_plain_engine;
          Alcotest.test_case "frozen K4 golden" `Quick test_engine_golden;
          Alcotest.test_case "sequential = pooled" `Slow
            test_replicate_sequential_equals_pooled ] ) ]
