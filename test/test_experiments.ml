open Arnet_experiments

let env_domains = Arnet_sim.Pool.of_env ()

let tiny =
  (* even faster than Config.quick: enough to smoke the machinery;
     domains from ARNET_DOMAINS so the CI parallel job reruns every
     sweep through the Domain pool (results are bit-identical) *)
  { Config.seeds = [ 1; 2 ]; duration = 30.; warmup = 5.;
    domains = env_domains }

let feq_at tol = Alcotest.(check (float tol))

let test_config () =
  Alcotest.(check int) "paper seeds" 10 (List.length Config.paper.Config.seeds);
  Alcotest.(check int) "quick seeds" 3 (List.length Config.quick.Config.seeds);
  Alcotest.(check bool) "describe mentions seeds" true
    (String.length (Config.describe Config.paper) > 0);
  Unix.putenv "ARNET_QUICK" "1";
  Alcotest.(check int) "env quick" 3
    (List.length (Config.of_env ()).Config.seeds);
  Unix.putenv "ARNET_SEEDS" "5";
  Alcotest.(check int) "env seed override" 5
    (List.length (Config.of_env ()).Config.seeds);
  let saved_domains = Sys.getenv_opt "ARNET_DOMAINS" in
  Unix.putenv "ARNET_DOMAINS" "4";
  Alcotest.(check int) "env domains" 4 (Config.of_env ()).Config.domains;
  Unix.putenv "ARNET_DOMAINS" "";
  Alcotest.(check int) "domains default to 1" 1
    (Config.of_env ()).Config.domains;
  Alcotest.(check int) "paper config is sequential" 1
    Config.paper.Config.domains;
  (* leave the environment as we found it for later tests *)
  Unix.putenv "ARNET_DOMAINS" (Option.value ~default:"" saved_domains);
  Unix.putenv "ARNET_QUICK" "";
  Unix.putenv "ARNET_SEEDS" ""

let test_fig1 () =
  let r = Fig1.run () in
  feq_at 1e-9 "stationary sums to 1" 1.
    (Array.fold_left ( +. ) 0. r.Fig1.stationary);
  Alcotest.(check bool) "theorem holds on the figure's chain" true
    (r.Fig1.worst_extra_loss <= r.Fig1.theorem_bound +. 1e-9);
  Alcotest.(check int) "states" 11 (Array.length r.Fig1.stationary)

let test_fig2 () =
  let curves = Fig2.run () in
  Alcotest.(check (list int)) "three H curves" [ 2; 6; 120 ]
    (List.map fst curves);
  List.iter
    (fun (h, pts) ->
      Alcotest.(check int) (Printf.sprintf "H=%d: 100 points" h) 100
        (List.length pts);
      (* r grows with load *)
      let first = snd (List.hd pts) and last = snd (List.nth pts 99) in
      Alcotest.(check bool) "r grows with load" true (last >= first))
    curves;
  (* r grows with H at fixed load *)
  let r_at h load = List.assoc load (List.assoc h curves) in
  Alcotest.(check bool) "r grows with H" true
    (r_at 2 80. <= r_at 6 80. && r_at 6 80. <= r_at 120 80.)

let test_table1_quality () =
  let rows = Internet.table1 () in
  Alcotest.(check int) "30 rows" 30 (List.length rows);
  let exact11 =
    List.length
      (List.filter (fun r -> r.Internet.our_r11 = r.Internet.paper_r11) rows)
  in
  let close6 =
    List.length
      (List.filter
         (fun r -> abs (r.Internet.our_r6 - r.Internet.paper_r6) <= 2)
         rows)
  in
  Alcotest.(check int) "H=11 exact on all rows" 30 exact11;
  Alcotest.(check int) "H=6 within 2 on all rows" 30 close6;
  List.iter
    (fun r ->
      Alcotest.(check bool) "fitted load matches paper" true
        (Float.abs (r.Internet.fitted_load -. r.Internet.paper_load) < 0.5))
    rows

let test_quadrangle_sweep () =
  let points = Quadrangle.run ~loads:[ 70.; 95. ] ~config:tiny () in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check int) "three schemes" 3 (List.length p.Sweep.schemes);
      Alcotest.(check bool) "bound sane" true (p.Sweep.bound >= 0.);
      List.iter
        (fun (_, s) ->
          Alcotest.(check bool) "blocking in [0,1]" true
            (s.Arnet_sim.Stats.mean >= 0. && s.Arnet_sim.Stats.mean <= 1.))
        p.Sweep.schemes)
    points;
  (* scheme_mean works and unknown scheme raises *)
  let p = List.hd points in
  ignore (Sweep.scheme_mean p "controlled");
  Alcotest.check_raises "unknown scheme" Not_found (fun () ->
      ignore (Sweep.scheme_mean p "nonesuch"))

let test_quadrangle_golden () =
  (* Frozen ARNET_QUICK-config blocking means for the fig3/fig4 sweep
     (fig4 is the same data on log axes).  These pin the whole
     simulator stack — RNG, trace generation, engine, schemes,
     protection levels: a refactor that silently changes any of them
     fails tier-1 here instead of drifting EXPERIMENTS.md.  The sweep
     runs under the environment's domain count, so the CI parallel job
     also re-proves parallel == sequential against numbers frozen from
     a sequential run. *)
  let config = { Config.quick with Config.domains = env_domains } in
  let points = Quadrangle.run ~loads:[ 80.; 90.; 95. ] ~config () in
  let expected =
    [ ( 80.,
        [ ("single-path", 0.0035970687657719772);
          ("uncontrolled", 6.1275743528842823e-05);
          ("controlled", 0.00018421195274935021) ] );
      ( 90.,
        [ ("single-path", 0.027233159266010543);
          ("uncontrolled", 0.077561753680641332);
          ("controlled", 0.022825224504288543) ] );
      ( 95.,
        [ ("single-path", 0.049777383949227538);
          ("uncontrolled", 0.15722272030961867);
          ("controlled", 0.048939295052836028) ] ) ]
  in
  List.iter2
    (fun p (x, golden) ->
      feq_at 1e-15 "sweep coordinate" x p.Sweep.x;
      Alcotest.(check (list string))
        (Printf.sprintf "scheme order at %g E" x)
        (List.map fst golden)
        (List.map fst p.Sweep.schemes);
      List.iter2
        (fun (name, mean) (_, s) ->
          feq_at 1e-12
            (Printf.sprintf "golden blocking for %s at %g E" name x)
            mean s.Arnet_sim.Stats.mean)
        golden p.Sweep.schemes)
    points expected

let test_internet_sweep_smoke () =
  let points =
    Internet.run ~scales:[ 1.0 ] ~with_ott_krishnan:false ~config:tiny ()
  in
  match points with
  | [ p ] ->
    Alcotest.(check int) "three schemes" 3 (List.length p.Sweep.schemes);
    Alcotest.(check bool) "nominal bound near 10%" true
      (p.Sweep.bound > 0.05 && p.Sweep.bound < 0.15)
  | _ -> Alcotest.fail "one point expected"

let test_internet_failures_smoke () =
  let points =
    Internet.run
      ~failed_links:[ (2, 3); (3, 2) ]
      ~scales:[ 1.0 ] ~config:tiny ()
  in
  match points with
  | [ p ] ->
    (* with less capacity the bound cannot drop *)
    let intact =
      List.hd
        (Internet.run ~scales:[ 1.0 ] ~with_ott_krishnan:false ~config:tiny ())
    in
    Alcotest.(check bool) "failure does not lower the bound" true
      (p.Sweep.bound >= intact.Sweep.bound -. 1e-9)
  | _ -> Alcotest.fail "one point expected"

let test_fairness_smoke () =
  let rows = Internet.fairness ~config:tiny () in
  Alcotest.(check int) "three schemes" 3 (List.length rows);
  let cv name =
    (List.find (fun r -> r.Internet.scheme = name) rows).Internet.skew
      .Arnet_sim.Stats.coefficient_of_variation
  in
  (* the paper's fairness ordering: single-path most skewed *)
  Alcotest.(check bool) "single-path more skewed than uncontrolled" true
    (cv "single-path" > cv "uncontrolled")

let test_cellular_smoke () =
  let points = Cellular_exp.run ~offered:[ 40. ] ~config:tiny () in
  match points with
  | [ p ] ->
    Alcotest.(check bool) "controlled <= no borrowing (within noise)" true
      (p.Cellular_exp.controlled.Arnet_sim.Stats.mean
      <= p.Cellular_exp.no_borrowing.Arnet_sim.Stats.mean +. 0.02)
  | _ -> Alcotest.fail "one point expected"

let test_robustness_smoke () =
  let points, single = Robustness.misestimation ~factors:[ 0.7; 1.3 ] ~config:tiny () in
  Alcotest.(check int) "two factors" 2 (List.length points);
  List.iter
    (fun p ->
      (* misestimated protection must stay in the single-path guarantee *)
      Alcotest.(check bool) "still never much worse than single-path" true
        (p.Robustness.blocking.Arnet_sim.Stats.mean
        <= single.Arnet_sim.Stats.mean +. 0.02))
    points

let test_ablation_h_sweep_smoke () =
  let rows = Ablation.h_sweep ~scales:[ 1.0 ] ~hs:[ 2; 11 ] ~config:tiny () in
  Alcotest.(check (list int)) "rows per H" [ 2; 11 ] (List.map fst rows);
  List.iter
    (fun (_, pts) ->
      List.iter
        (fun (_, s) ->
          Alcotest.(check bool) "blocking sane" true
            (s.Arnet_sim.Stats.mean >= 0. && s.Arnet_sim.Stats.mean <= 1.))
        pts)
    rows

let test_overload_smoke () =
  (* one seed at full duration so the 10-unit windows nest cleanly
     inside the surge interval *)
  let config =
    { Config.seeds = [ 1 ]; duration = 110.; warmup = 10.; domains = 1 }
  in
  let r = Overload_exp.run ~window:10. ~config () in
  Alcotest.(check int) "three schemes" 3 (List.length r.Overload_exp.series);
  Alcotest.(check bool) "surge inside the run" true
    (r.Overload_exp.surge_start > 0.
    && r.Overload_exp.surge_stop > r.Overload_exp.surge_start);
  (* blocking during the surge must exceed the pre-surge level *)
  List.iter
    (fun s ->
      let before =
        List.filter
          (fun (t, _) -> t >= 10. && t < r.Overload_exp.surge_start)
          s.Overload_exp.points
      in
      let during =
        List.filter
          (fun (t, _) ->
            t >= r.Overload_exp.surge_start && t < r.Overload_exp.surge_stop)
          s.Overload_exp.points
      in
      let avg l =
        match l with
        | [] -> 0.
        | _ ->
          List.fold_left (fun a (_, b) -> a +. b) 0. l
          /. float_of_int (List.length l)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: surge raises blocking" s.Overload_exp.scheme)
        true
        (avg during > avg before))
    r.Overload_exp.series

let test_multirate_smoke () =
  let points = Multirate_exp.run ~loads:[ 80. ] ~config:tiny () in
  match points with
  | [ p ] ->
    let bw name = List.assoc name p.Multirate_exp.schemes in
    Alcotest.(check bool) "controlled <= single-path" true
      (bw "mr-controlled" <= bw "mr-single-path" +. 0.02);
    Alcotest.(check bool) "wideband suffers more than narrowband" true
      (p.Multirate_exp.wideband_controlled
      >= p.Multirate_exp.narrowband_controlled)
  | _ -> Alcotest.fail "one point expected"

let test_random_mesh_smoke () =
  let rows =
    Random_mesh.run ~topology_seeds:[ 7; 8 ] ~nodes:8 ~config:tiny ()
  in
  Alcotest.(check int) "two topologies" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "guarantee holds" true r.Random_mesh.guarantee_ok;
      Alcotest.(check bool) "diameter sane" true
        (r.Random_mesh.diameter >= 1 && r.Random_mesh.diameter < 8))
    rows

let test_signalling_smoke () =
  let points =
    Signalling_exp.run ~latencies:[ 0.; 0.02 ] ~config:tiny ()
  in
  Alcotest.(check int) "2 latencies x 2 schemes" 4 (List.length points);
  let find lat scheme =
    List.find
      (fun p ->
        p.Signalling_exp.hop_latency = lat && p.Signalling_exp.scheme = scheme)
      points
  in
  Alcotest.(check (float 1e-12)) "no glare at zero latency" 0.
    (find 0. "controlled").Signalling_exp.glare_per_carried;
  Alcotest.(check bool) "glare appears with latency" true
    ((find 0.02 "uncontrolled").Signalling_exp.glare_per_carried > 0.)

let test_bistability_smoke () =
  let r =
    Bistability_exp.run ~loads:[ 75.; 95. ] ~sim_load:85.
      ~config:
        { Config.seeds = [ 1 ]; duration = 60.; warmup = 10.; domains = 1 }
      ()
  in
  Alcotest.(check int) "two analytic rows" 2 (List.length r.Bistability_exp.rows);
  let row75 = List.hd r.Bistability_exp.rows in
  Alcotest.(check bool) "band is visible at 75" true
    (row75.Bistability_exp.hot_free
    -. row75.Bistability_exp.cold_free
    > 0.05);
  Alcotest.(check bool) "protected band closed" true
    (Float.abs
       (row75.Bistability_exp.hot_protected
       -. row75.Bistability_exp.cold_protected)
    < 1e-6);
  Alcotest.(check int) "three sim series" 3
    (List.length r.Bistability_exp.sim_series)

let test_dimension_primitive () =
  (* inverse Erlang: minimal capacity meeting the target *)
  let c = Arnet_erlang.Erlang_b.dimension ~offered:80. ~target_blocking:0.01 in
  Alcotest.(check bool) "meets the target" true
    (Arnet_erlang.Erlang_b.blocking ~offered:80. ~capacity:c <= 0.01);
  Alcotest.(check bool) "minimal" true
    (Arnet_erlang.Erlang_b.blocking ~offered:80. ~capacity:(c - 1) > 0.01);
  Alcotest.(check bool) "sane headroom" true (c > 80 && c < 120);
  Alcotest.check_raises "bad target" (Invalid_argument "x") (fun () ->
      try
        ignore (Arnet_erlang.Erlang_b.dimension ~offered:1. ~target_blocking:0.)
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let test_dimensioning_smoke () =
  let r = Dimensioning.run ~config:tiny () in
  Alcotest.(check bool) "controlled needs less capacity" true
    (r.Dimensioning.controlled_capacity < r.Dimensioning.single_path_capacity);
  Alcotest.(check bool) "positive savings" true
    (r.Dimensioning.savings > 0. && r.Dimensioning.savings < 1.);
  Alcotest.(check bool) "single-path endpoint validated" true
    (r.Dimensioning.single_path_simulated <= r.Dimensioning.target *. 1.5);
  Alcotest.(check bool) "controlled endpoint validated" true
    (r.Dimensioning.controlled_simulated <= r.Dimensioning.target *. 1.5)

let test_report_format () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Report.section ppf ~id:"x" ~title:"y";
  Report.series_header ppf ~columns:[ "a"; "b" ];
  Report.series_row ppf ~x:1.5 [ 0.25 ];
  Report.paper_vs_measured ppf ~what:"w" ~paper:"p" ~measured:"m";
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "section banner present" true (contains "=== x: y ===");
  Alcotest.(check string) "pct formatting" "12.5%" (Report.pct 0.125);
  Alcotest.(check string) "pct small" "0.50%" (Report.pct 0.005)

let () =
  Alcotest.run "experiments"
    [ ( "config",
        [ Alcotest.test_case "defaults and env" `Quick test_config ] );
      ( "figures",
        [ Alcotest.test_case "fig1" `Quick test_fig1;
          Alcotest.test_case "fig2" `Quick test_fig2;
          Alcotest.test_case "table1 quality" `Quick test_table1_quality ] );
      ( "golden",
        [ Alcotest.test_case "quadrangle fig3/fig4 numbers" `Slow
            test_quadrangle_golden ] );
      ( "sweeps",
        [ Alcotest.test_case "quadrangle" `Slow test_quadrangle_sweep;
          Alcotest.test_case "internet" `Slow test_internet_sweep_smoke;
          Alcotest.test_case "failures" `Slow test_internet_failures_smoke;
          Alcotest.test_case "fairness" `Slow test_fairness_smoke;
          Alcotest.test_case "cellular" `Slow test_cellular_smoke;
          Alcotest.test_case "robustness" `Slow test_robustness_smoke;
          Alcotest.test_case "ablation h sweep" `Slow
            test_ablation_h_sweep_smoke;
          Alcotest.test_case "overload" `Slow test_overload_smoke;
          Alcotest.test_case "multirate" `Slow test_multirate_smoke;
          Alcotest.test_case "random mesh" `Slow test_random_mesh_smoke;
          Alcotest.test_case "signalling" `Slow test_signalling_smoke;
          Alcotest.test_case "bistability" `Slow test_bistability_smoke;
          Alcotest.test_case "dimension primitive" `Quick
            test_dimension_primitive;
          Alcotest.test_case "dimensioning" `Slow test_dimensioning_smoke ] );
      ("report", [ Alcotest.test_case "format" `Quick test_report_format ]) ]
