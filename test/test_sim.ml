open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let seq r = List.init 20 (fun _ -> Rng.uniform r) in
  Alcotest.(check (list (float 0.))) "same seed same stream" (seq a) (seq b);
  let c = Rng.create ~seed:8 in
  Alcotest.(check bool) "different seed differs" true (seq a <> seq c)

let test_rng_substreams () =
  let master = Rng.create ~seed:3 in
  let s1 = Rng.substream master "trace" in
  let s2 = Rng.substream master "trace" in
  let s3 = Rng.substream master "routing" in
  let seq r = List.init 10 (fun _ -> Rng.uniform r) in
  Alcotest.(check (list (float 0.))) "same name same stream" (seq s1) (seq s2);
  Alcotest.(check bool) "different name differs" true (seq s1 <> seq s3)

let test_rng_exponential () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential r ~rate:4. in
    Alcotest.(check bool) "positive" true (x > 0.);
    total := !total +. x
  done;
  feq_at 0.01 "mean 1/rate" 0.25 (!total /. float_of_int n);
  check_invalid "bad rate" (fun () -> ignore (Rng.exponential r ~rate:0.))

let test_rng_poisson () =
  let r = Rng.create ~seed:12 in
  let n = 5_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.poisson r ~mean:3.
  done;
  feq_at 0.15 "poisson mean" 3. (float_of_int !total /. float_of_int n);
  check_invalid "mean too large" (fun () -> ignore (Rng.poisson r ~mean:1000.))

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let test_event_queue_ordering () =
  let q = Event_queue.create () in
  List.iter
    (fun t -> Event_queue.push q ~time:t (int_of_float (10. *. t)))
    [ 3.; 1.; 2.; 0.5; 2.5 ];
  Alcotest.(check int) "length" 5 (Event_queue.length q);
  Alcotest.(check (option (float 0.))) "peek" (Some 0.5)
    (Event_queue.peek_time q);
  let popped = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (t, _) ->
      popped := t :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.))) "sorted"
    [ 0.5; 1.; 2.; 2.5; 3. ]
    (List.rev !popped);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_event_queue_pop_until () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t ()) [ 1.; 2.; 3.; 4. ];
  let count = ref 0 in
  Event_queue.pop_until q ~time:2.5 ~f:(fun _ () -> incr count);
  Alcotest.(check int) "popped two" 2 !count;
  Alcotest.(check int) "two remain" 2 (Event_queue.length q);
  Event_queue.clear q;
  Alcotest.(check int) "cleared" 0 (Event_queue.length q);
  check_invalid "non-finite time" (fun () ->
      Event_queue.push q ~time:Float.nan ())

let prop_event_queue_sorts =
  QCheck2.Test.make ~count:100 ~name:"event queue pops in sorted order"
    QCheck2.Gen.(list_size (int_range 0 50) (float_range 0. 100.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t t) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare times)

(* interleaved push/pop against a multiset model.  Times are drawn from
   a 10-value range so duplicate timestamps are common; ties carry no
   ordering guarantee between payloads, so the model only demands that
   each pop returns the minimum outstanding time and a payload that was
   pushed with exactly that time and not yet popped. *)
let prop_event_queue_model =
  QCheck2.Test.make ~count:300
    ~name:"interleaved push/pop agrees with sorted-multiset model"
    QCheck2.Gen.(
      list_size (int_range 0 80)
        (oneof
           [ map (fun t -> Some (float_of_int t)) (int_range 0 9);
             pure None ]))
    (fun ops ->
      let q = Event_queue.create () in
      let outstanding = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      let remove_first pair l =
        let rec go acc = function
          | [] -> ok := false; List.rev acc
          | x :: rest ->
            if x = pair then List.rev_append acc rest else go (x :: acc) rest
        in
        go [] l
      in
      let take () =
        match Event_queue.pop q with
        | None -> if !outstanding <> [] then ok := false
        | Some (t, i) ->
          let min_t =
            List.fold_left (fun m (u, _) -> Float.min m u) infinity !outstanding
          in
          if t <> min_t then ok := false;
          outstanding := remove_first (t, i) !outstanding
      in
      List.iter
        (function
          | Some t ->
            let i = !next_id in
            incr next_id;
            Event_queue.push q ~time:t i;
            outstanding := (t, i) :: !outstanding
          | None -> take ())
        ops;
      while not (Event_queue.is_empty q) do
        take ()
      done;
      !ok && !outstanding = [])

let test_event_queue_pop_until_boundary () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t t) [ 1.; 2.; 2.; 3. ];
  let popped = ref [] in
  Event_queue.pop_until q ~time:2. ~f:(fun t _ -> popped := t :: !popped);
  (* [pop_until ~time] is inclusive: both events at exactly t = time go *)
  Alcotest.(check (list (float 0.)))
    "events at exactly t = time are popped" [ 1.; 2.; 2. ]
    (List.rev !popped);
  Alcotest.(check int) "later event remains" 1 (Event_queue.length q);
  Alcotest.(check (option (float 0.))) "head is the later event" (Some 3.)
    (Event_queue.peek_time q)

let test_event_queue_indexed_api () =
  let q = Event_queue.create () in
  let times = [| 3.; 1.; 2. |] in
  Event_queue.push_at q ~times 0 "c";
  Event_queue.push_at q ~times 1 "a";
  Event_queue.push_at q ~times 2 "b";
  Alcotest.(check (option (float 0.))) "peek" (Some 1.)
    (Event_queue.peek_time q);
  let deadlines = [| 0.5; 1.; 2.5 |] in
  Alcotest.(check bool) "not due before head" false
    (Event_queue.next_due q ~deadlines 0);
  Alcotest.(check bool) "due at exactly the deadline" true
    (Event_queue.next_due q ~deadlines 1);
  Alcotest.(check string) "payloads pop in time order" "a"
    (Event_queue.pop_payload q);
  Alcotest.(check bool) "due below deadline" true
    (Event_queue.next_due q ~deadlines 2);
  Alcotest.(check string) "second payload" "b" (Event_queue.pop_payload q);
  Alcotest.(check bool) "head beyond deadline" false
    (Event_queue.next_due q ~deadlines 2);
  Alcotest.(check string) "last payload" "c" (Event_queue.pop_payload q);
  Alcotest.(check bool) "empty queue never due" false
    (Event_queue.next_due q ~deadlines 2);
  check_invalid "pop_payload on empty" (fun () ->
      ignore (Event_queue.pop_payload q : string));
  check_invalid "push_at non-finite" (fun () ->
      Event_queue.push_at q ~times:[| Float.nan |] 0 "x")

(* the space-leak fix: popped and cleared payloads must become
   unreachable.  Observed through a weak array; the pops happen inside a
   never-inlined helper so no stack slot keeps the payload alive. *)
let[@inline never] pop_and_discard q =
  match Event_queue.pop q with Some _ -> () | None -> ()

let test_event_queue_payload_release () =
  let q = Event_queue.create () in
  let weak = Weak.create 3 in
  let push i time =
    let payload = Array.make 4 i in
    Weak.set weak i (Some payload);
    Event_queue.push q ~time payload
  in
  push 0 1.;
  push 1 2.;
  push 2 3.;
  pop_and_discard q;
  Gc.full_major ();
  Alcotest.(check bool) "popped payload released" true
    (Weak.get weak 0 = None);
  Alcotest.(check bool) "queued payload retained" true
    (Weak.get weak 1 <> None);
  Alcotest.(check bool) "queued payload retained (tail slot)" true
    (Weak.get weak 2 <> None);
  Event_queue.clear q;
  Gc.full_major ();
  Alcotest.(check bool) "cleared payloads released" true
    (Weak.get weak 1 = None && Weak.get weak 2 = None)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_generation () =
  let rng = Rng.create ~seed:5 in
  let matrix = Matrix.uniform ~nodes:4 ~demand:10. in
  (* total rate 120; over 50 time units expect ~6000 calls *)
  let trace = Trace.generate ~rng ~duration:50. matrix in
  Alcotest.(check bool) "sorted" true (Trace.check_sorted trace);
  let n = Trace.call_count trace in
  Alcotest.(check bool) "call volume plausible" true (n > 5400 && n < 6600);
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within duration" true
        (c.Trace.time >= 0. && c.Trace.time < 50.);
      Alcotest.(check bool) "endpoints distinct" true (c.Trace.src <> c.Trace.dst);
      Alcotest.(check bool) "holding positive" true (c.Trace.holding > 0.);
      Alcotest.(check bool) "u in range" true (c.Trace.u >= 0. && c.Trace.u < 1.))
    trace.Trace.calls

let test_trace_pair_frequencies () =
  let rng = Rng.create ~seed:6 in
  let matrix =
    Matrix.make ~nodes:3 (fun i j ->
        match (i, j) with 0, 1 -> 30. | 1, 2 -> 10. | _ -> 0.)
  in
  let trace = Trace.generate ~rng ~duration:100. matrix in
  let count01 = ref 0 and count12 = ref 0 in
  Array.iter
    (fun c ->
      match (c.Trace.src, c.Trace.dst) with
      | 0, 1 -> incr count01
      | 1, 2 -> incr count12
      | _ -> Alcotest.fail "unexpected pair")
    trace.Trace.calls;
  feq_at 0.3 "3:1 split" 3.
    (float_of_int !count01 /. float_of_int !count12)

let test_trace_holding_mean () =
  let rng = Rng.create ~seed:7 in
  let matrix = Matrix.uniform ~nodes:3 ~demand:20. in
  let trace = Trace.generate ~mean_holding:2. ~rng ~duration:100. matrix in
  let total =
    Array.fold_left (fun acc c -> acc +. c.Trace.holding) 0. trace.Trace.calls
  in
  feq_at 0.1 "mean holding" 2.
    (total /. float_of_int (Trace.call_count trace))

let test_trace_validation () =
  let rng = Rng.create ~seed:1 in
  check_invalid "empty matrix" (fun () ->
      ignore (Trace.generate ~rng ~duration:10. (Matrix.zero ~nodes:3)));
  check_invalid "bad duration" (fun () ->
      ignore
        (Trace.generate ~rng ~duration:0. (Matrix.uniform ~nodes:3 ~demand:1.)))

let mk_call time src dst holding =
  { Trace.time; src; dst; holding; u = 0. }

let test_trace_of_calls () =
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  let trace =
    Trace.of_calls ~matrix ~duration:10.
      [ mk_call 1. 0 1 2.; mk_call 2. 1 2 1. ]
  in
  Alcotest.(check int) "count" 2 (Trace.call_count trace);
  Alcotest.(check int) "offered in window" 1 (Trace.offered_between trace 1.5 10.);
  check_invalid "unsorted" (fun () ->
      ignore
        (Trace.of_calls ~matrix ~duration:10.
           [ mk_call 2. 0 1 1.; mk_call 1. 1 2 1. ]));
  check_invalid "outside duration" (fun () ->
      ignore (Trace.of_calls ~matrix ~duration:10. [ mk_call 11. 0 1 1. ]));
  check_invalid "self call" (fun () ->
      ignore (Trace.of_calls ~matrix ~duration:10. [ mk_call 1. 1 1 1. ]))

let test_trace_shift_merge () =
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  let a =
    Trace.of_calls ~matrix ~duration:10. [ mk_call 1. 0 1 1.; mk_call 5. 1 2 1. ]
  in
  let b = Trace.of_calls ~matrix ~duration:4. [ mk_call 2. 2 0 1. ] in
  let shifted = Trace.shift b 3. in
  Alcotest.(check (float 1e-12)) "shifted call time" 5.
    shifted.Trace.calls.(0).Trace.time;
  Alcotest.(check (float 1e-12)) "shifted duration" 7. shifted.Trace.duration;
  let merged = Trace.merge a shifted in
  Alcotest.(check int) "merged count" 3 (Trace.call_count merged);
  Alcotest.(check bool) "merged sorted" true (Trace.check_sorted merged);
  Alcotest.(check (float 1e-12)) "merged duration" 10. merged.Trace.duration;
  Alcotest.(check (float 1e-12)) "matrices summed" 12.
    (Matrix.total merged.Trace.matrix);
  check_invalid "negative shift" (fun () -> ignore (Trace.shift a (-1.)));
  check_invalid "merge size mismatch" (fun () ->
      ignore
        (Trace.merge a
           (Trace.of_calls
              ~matrix:(Matrix.uniform ~nodes:4 ~demand:1.)
              ~duration:5. [])))

let test_trace_shift_merge_edges () =
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  let a =
    Trace.of_calls ~matrix ~duration:10.
      [ mk_call 1. 0 1 1.; mk_call 5. 1 2 1. ]
  in
  (* zero shift is the identity *)
  let z = Trace.shift a 0. in
  Alcotest.(check (float 1e-12)) "zero shift keeps times" 1.
    z.Trace.calls.(0).Trace.time;
  Alcotest.(check (float 1e-12)) "zero shift keeps duration" 10.
    z.Trace.duration;
  Alcotest.(check int) "zero shift keeps count" (Trace.call_count a)
    (Trace.call_count z);
  (* disjoint windows: every call of the shifted component lands after
     every call of the base, and the merge stays sorted *)
  let b = Trace.of_calls ~matrix ~duration:4. [ mk_call 2. 2 0 1. ] in
  let far = Trace.shift b 100. in
  let merged = Trace.merge a far in
  Alcotest.(check int) "disjoint merge count" 3 (Trace.call_count merged);
  Alcotest.(check bool) "disjoint merge sorted" true
    (Trace.check_sorted merged);
  Alcotest.(check (float 1e-12)) "disjoint merge duration" 104.
    merged.Trace.duration;
  Alcotest.(check (float 1e-12)) "last call is the shifted one" 102.
    merged.Trace.calls.(2).Trace.time;
  (* merging in either order superposes the same summed matrix *)
  let m1 = Trace.merge a far and m2 = Trace.merge far a in
  Alcotest.(check (float 1e-12)) "summed matrix"
    (Matrix.total a.Trace.matrix +. Matrix.total b.Trace.matrix)
    (Matrix.total m1.Trace.matrix);
  Alcotest.(check (float 1e-12)) "merge commutes on the matrix"
    (Matrix.total m1.Trace.matrix) (Matrix.total m2.Trace.matrix);
  Alcotest.(check int) "merge commutes on the calls"
    (Trace.call_count m1) (Trace.call_count m2);
  (* merging with an empty trace is the identity on calls *)
  let empty = Trace.of_calls ~matrix ~duration:2. [] in
  let with_empty = Trace.merge a empty in
  Alcotest.(check int) "empty merge keeps calls" (Trace.call_count a)
    (Trace.call_count with_empty);
  Alcotest.(check (float 1e-12)) "empty merge keeps duration" 10.
    with_empty.Trace.duration

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_counters () =
  let s = Stats.empty ~nodes:3 in
  Stats.record_offered s ~src:0 ~dst:1;
  Stats.record_offered s ~src:0 ~dst:1;
  Stats.record_offered s ~src:1 ~dst:2;
  Stats.record_blocked s ~src:0 ~dst:1;
  Stats.record_primary s;
  Stats.record_alternate s ~hops:3;
  feq_at 1e-12 "network blocking" (1. /. 3.) (Stats.blocking s);
  (match Stats.od_blocking s ~src:0 ~dst:1 with
  | Some b -> feq_at 1e-12 "od blocking" 0.5 b
  | None -> Alcotest.fail "expected blocking");
  Alcotest.(check (option (float 0.))) "no traffic pair" None
    (Stats.od_blocking s ~src:2 ~dst:0);
  feq_at 1e-12 "alternate fraction" 0.5 (Stats.alternate_fraction s);
  Alcotest.(check int) "alternate hops" 3 s.Stats.alternate_hops

let test_stats_merge () =
  let a = Stats.empty ~nodes:2 and b = Stats.empty ~nodes:2 in
  Stats.record_offered a ~src:0 ~dst:1;
  Stats.record_blocked a ~src:0 ~dst:1;
  Stats.record_offered b ~src:0 ~dst:1;
  let m = Stats.merge a b in
  Alcotest.(check int) "offered pooled" 2 m.Stats.offered;
  feq_at 1e-12 "blocking pooled" 0.5 (Stats.blocking m);
  check_invalid "size mismatch" (fun () ->
      ignore (Stats.merge a (Stats.empty ~nodes:3)))

let test_stats_summarize () =
  let s = Stats.summarize [ 1.; 2.; 3. ] in
  feq_at 1e-12 "mean" 2. s.Stats.mean;
  (* sample std dev 1, stderr 1/sqrt(3) *)
  feq_at 1e-9 "stderr" (1. /. sqrt 3.) s.Stats.std_error;
  Alcotest.(check int) "replications" 3 s.Stats.replications;
  let single = Stats.summarize [ 5. ] in
  feq_at 1e-12 "single mean" 5. single.Stats.mean;
  feq_at 1e-12 "single stderr 0" 0. single.Stats.std_error;
  check_invalid "empty" (fun () -> ignore (Stats.summarize []))

let test_stats_skew () =
  let s = Stats.empty ~nodes:2 in
  (* pair 0->1 blocks 50%, pair 1->0 blocks 0% *)
  Stats.record_offered s ~src:0 ~dst:1;
  Stats.record_offered s ~src:0 ~dst:1;
  Stats.record_blocked s ~src:0 ~dst:1;
  Stats.record_offered s ~src:1 ~dst:0;
  let skew = Stats.od_skew s in
  feq_at 1e-12 "min" 0. skew.Stats.min_blocking;
  feq_at 1e-12 "max" 0.5 skew.Stats.max_blocking;
  feq_at 1e-12 "mean" 0.25 skew.Stats.mean_blocking;
  feq_at 1e-9 "cv" 1. skew.Stats.coefficient_of_variation;
  check_invalid "no traffic" (fun () ->
      ignore (Stats.od_skew (Stats.empty ~nodes:2)))

(* ------------------------------------------------------------------ *)
(* Engine: deterministic micro-scenarios *)

let one_link_graph capacity =
  Graph.of_edges ~nodes:2 ~capacity [ (0, 1) ]

let direct_policy g =
  let routes = Route_table.build g in
  { Engine.name = "direct";
    decide =
      (fun ~occupancy ~call ->
        let p = Route_table.primary routes ~src:call.Trace.src ~dst:call.Trace.dst in
        let free =
          Array.for_all
            (fun id -> occupancy.(id) < (Graph.link g id).Link.capacity)
            p.Path.link_ids
        in
        if free then Engine.Routed p else Engine.Lost);
    is_primary = (fun ~call:_ _ -> true) }

let test_time_series () =
  let g = one_link_graph 1 in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  let recorder = Time_series.create ~window:5. ~duration:20. in
  let policy = Time_series.wrap recorder (direct_policy g) in
  (* window 0: one carried; window 1: one carried, one blocked;
     window 3: one carried *)
  let trace =
    Trace.of_calls ~matrix ~duration:20.
      [ mk_call 1. 0 1 6.; mk_call 6. 0 1 0.5; mk_call 8. 0 1 1.;
        mk_call 16. 0 1 1. ]
  in
  let (_ : Stats.t) = Engine.run ~warmup:0. ~graph:g ~policy trace in
  (match Time_series.windows recorder with
  | [ w0; w1; w2; w3 ] ->
    Alcotest.(check (pair int int)) "w0" (1, 0) (w0.Time_series.offered, w0.Time_series.blocked);
    Alcotest.(check (pair int int)) "w1" (2, 1) (w1.Time_series.offered, w1.Time_series.blocked);
    Alcotest.(check (pair int int)) "w2 empty" (0, 0) (w2.Time_series.offered, w2.Time_series.blocked);
    Alcotest.(check (pair int int)) "w3" (1, 0) (w3.Time_series.offered, w3.Time_series.blocked)
  | l -> Alcotest.failf "expected 4 windows, got %d" (List.length l));
  Alcotest.(check (float 1e-12)) "peak" 0.5 (Time_series.peak_blocking recorder);
  check_invalid "bad window" (fun () ->
      ignore (Time_series.create ~window:0. ~duration:10.))

let test_engine_blocking_on_full_link () =
  let g = one_link_graph 1 in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  (* two overlapping calls then a third after the first departs *)
  let trace =
    Trace.of_calls ~matrix ~duration:10.
      [ mk_call 1. 0 1 3.;  (* holds [1,4) *)
        mk_call 2. 0 1 1.;  (* blocked: link full *)
        mk_call 5. 0 1 1.  (* free again *) ]
  in
  let stats = Engine.run ~warmup:0. ~graph:g ~policy:(direct_policy g) trace in
  Alcotest.(check int) "offered" 3 stats.Stats.offered;
  Alcotest.(check int) "blocked" 1 stats.Stats.blocked;
  feq_at 1e-12 "blocking third" (1. /. 3.) (Stats.blocking stats)

let test_engine_departure_frees_capacity () =
  let g = one_link_graph 1 in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  let trace =
    Trace.of_calls ~matrix ~duration:10.
      [ mk_call 1. 0 1 1.; mk_call 2.5 0 1 1. ]
  in
  let stats = Engine.run ~warmup:0. ~graph:g ~policy:(direct_policy g) trace in
  Alcotest.(check int) "none blocked" 0 stats.Stats.blocked

let test_engine_warmup_exclusion () =
  let g = one_link_graph 1 in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  (* the warm-up call occupies the link but is not counted; the second
     call is measured and blocked by it *)
  let trace =
    Trace.of_calls ~matrix ~duration:20.
      [ mk_call 1. 0 1 100.; mk_call 11. 0 1 1. ]
  in
  let stats = Engine.run ~warmup:10. ~graph:g ~policy:(direct_policy g) trace in
  Alcotest.(check int) "only measured call offered" 1 stats.Stats.offered;
  Alcotest.(check int) "it was blocked" 1 stats.Stats.blocked

let test_engine_rejects_bad_policy () =
  let g = one_link_graph 1 in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  let routes = Route_table.build g in
  let p = Route_table.primary routes ~src:0 ~dst:1 in
  let always_route =
    { Engine.name = "bad";
      decide = (fun ~occupancy:_ ~call:_ -> Engine.Routed p);
      is_primary = (fun ~call:_ _ -> true) }
  in
  let trace =
    Trace.of_calls ~matrix ~duration:10.
      [ mk_call 1. 0 1 5.; mk_call 2. 0 1 5. ]
  in
  check_invalid "routing over full link detected" (fun () ->
      ignore (Engine.run ~warmup:0. ~graph:g ~policy:always_route trace))

let test_engine_alternate_accounting () =
  (* triangle: direct 0->1 full, detour 0->2->1 counted as alternate *)
  let g = Graph.of_edges ~nodes:3 ~capacity:1 [ (0, 1); (1, 2); (0, 2) ] in
  let routes = Route_table.build g in
  let admission =
    Arnet_core.Admission.unprotected
      ~capacities:(Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g))
  in
  let policy =
    { Engine.name = "two-tier";
      decide =
        (fun ~occupancy ~call ->
          Arnet_core.Controller.decide ~routes ~admission
            ~choice:Arnet_core.Controller.Table ~allow_alternates:true
            ~occupancy call);
      is_primary =
        (fun ~call p ->
          Path.equal p
            (Route_table.primary routes ~src:call.Trace.src ~dst:call.Trace.dst))
    }
  in
  let matrix = Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 1 then 1. else 0.) in
  let trace =
    Trace.of_calls ~matrix ~duration:10.
      [ mk_call 1. 0 1 5.; mk_call 2. 0 1 5. ]
  in
  let stats = Engine.run ~warmup:0. ~graph:g ~policy trace in
  Alcotest.(check int) "primary carried" 1 stats.Stats.carried_primary;
  Alcotest.(check int) "alternate carried" 1 stats.Stats.carried_alternate;
  Alcotest.(check int) "alternate hops" 2 stats.Stats.alternate_hops;
  Alcotest.(check int) "none blocked" 0 stats.Stats.blocked

let test_engine_determinism_and_replication () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:5 in
  let matrix = Matrix.uniform ~nodes:3 ~demand:4. in
  let routes = Route_table.build g in
  let policy = Arnet_core.Scheme.uncontrolled routes in
  let rng () = Rng.substream (Rng.create ~seed:9) "trace" in
  let trace = Trace.generate ~rng:(rng ()) ~duration:30. matrix in
  let s1 = Engine.run ~warmup:5. ~graph:g ~policy trace in
  let s2 = Engine.run ~warmup:5. ~graph:g ~policy trace in
  Alcotest.(check int) "identical reruns: offered" s1.Stats.offered s2.Stats.offered;
  Alcotest.(check int) "identical reruns: blocked" s1.Stats.blocked s2.Stats.blocked;
  (* replicate shares the trace across policies: same offered count *)
  let results =
    Engine.replicate ~warmup:5. ~seeds:[ 1; 2 ] ~duration:30. ~graph:g ~matrix
      ~policies:
        [ Arnet_core.Scheme.uncontrolled routes;
          Arnet_core.Scheme.single_path routes ]
      ()
  in
  (match results with
  | [ (_, [ u1; u2 ]); (_, [ s1; s2 ]) ] ->
    Alcotest.(check int) "seed1 same offered" u1.Stats.offered s1.Stats.offered;
    Alcotest.(check int) "seed2 same offered" u2.Stats.offered s2.Stats.offered;
    Alcotest.(check bool) "different seeds different traces" true
      (u1.Stats.offered <> u2.Stats.offered)
  | _ -> Alcotest.fail "unexpected result shape");
  check_invalid "no seeds" (fun () ->
      ignore
        (Engine.replicate ~seeds:[] ~duration:30. ~graph:g ~matrix ~policies:[]
           ()))

let test_engine_validation () =
  let g = one_link_graph 1 in
  let matrix = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.) in
  let trace = Trace.of_calls ~matrix ~duration:10. [ mk_call 1. 0 1 1. ] in
  check_invalid "warmup >= duration" (fun () ->
      ignore (Engine.run ~warmup:10. ~graph:g ~policy:(direct_policy g) trace));
  let bigger = Builders.full_mesh ~nodes:3 ~capacity:1 in
  check_invalid "graph size mismatch" (fun () ->
      ignore
        (Engine.run ~warmup:0. ~graph:bigger ~policy:(direct_policy bigger)
           trace))

let () =
  Alcotest.run "sim"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "substreams" `Quick test_rng_substreams;
          Alcotest.test_case "exponential" `Quick test_rng_exponential;
          Alcotest.test_case "poisson" `Quick test_rng_poisson ] );
      ( "event-queue",
        [ Alcotest.test_case "ordering" `Quick test_event_queue_ordering;
          Alcotest.test_case "pop_until" `Quick test_event_queue_pop_until;
          Alcotest.test_case "pop_until boundary" `Quick
            test_event_queue_pop_until_boundary;
          Alcotest.test_case "indexed api" `Quick test_event_queue_indexed_api;
          Alcotest.test_case "payload release" `Quick
            test_event_queue_payload_release;
          QCheck_alcotest.to_alcotest prop_event_queue_sorts;
          QCheck_alcotest.to_alcotest prop_event_queue_model ] );
      ( "trace",
        [ Alcotest.test_case "generation" `Quick test_trace_generation;
          Alcotest.test_case "pair frequencies" `Quick
            test_trace_pair_frequencies;
          Alcotest.test_case "holding mean" `Quick test_trace_holding_mean;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "of_calls" `Quick test_trace_of_calls;
          Alcotest.test_case "shift/merge" `Quick test_trace_shift_merge;
          Alcotest.test_case "shift/merge edge cases" `Quick
            test_trace_shift_merge_edges ] );
      ( "stats",
        [ Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
          Alcotest.test_case "skew" `Quick test_stats_skew ] );
      ( "engine",
        [ Alcotest.test_case "blocking on full link" `Quick
            test_engine_blocking_on_full_link;
          Alcotest.test_case "departure frees capacity" `Quick
            test_engine_departure_frees_capacity;
          Alcotest.test_case "warmup exclusion" `Quick
            test_engine_warmup_exclusion;
          Alcotest.test_case "bad policy rejected" `Quick
            test_engine_rejects_bad_policy;
          Alcotest.test_case "alternate accounting" `Quick
            test_engine_alternate_accounting;
          Alcotest.test_case "determinism/replication" `Quick
            test_engine_determinism_and_replication;
          Alcotest.test_case "validation" `Quick test_engine_validation ] );
      ( "time-series",
        [ Alcotest.test_case "windows" `Quick test_time_series ] ) ]
