(* the source-level domain-safety linter: classification goldens over
   small in-memory units, the reachability set, allowlist round-trips,
   and diagnostics over the checked-in broken fixture *)

module A = Arnet_analysis
module S = A.Src_check

let scan ?(filename = "lib/fake/unit.ml") source =
  S.scan_string ~filename source

let site_pp ppf (s : S.site) =
  Format.fprintf ppf "%s:%d %s %s" s.S.file s.S.line s.S.ident
    (match s.S.guard with
    | S.Unguarded -> "unguarded"
    | S.Atomic -> "atomic"
    | S.Mutex_protected -> "mutex"
    | S.Domain_local -> "dls")

let site = Alcotest.testable site_pp ( = )

let sites source = (scan source).S.u_sites

let check_sites name expected source =
  Alcotest.(check (list site)) name expected (sites source)

let mk ?(file = "lib/fake/unit.ml") ?(modname = "Unit") ~line ~ident kind
    guard =
  { S.file; line; modname; ident; kind; guard }

(* ------------------------------------------------------------------ *)
(* classification goldens *)

let test_unsafe_ref () =
  check_sites "top-level ref"
    [ mk ~line:1 ~ident:"hits" S.Ref_cell S.Unguarded ]
    "let hits = ref 0\nlet bump () = incr hits\n"

let test_atomic_counter () =
  check_sites "atomic counter"
    [ mk ~line:1 ~ident:"calls" S.Ref_cell S.Atomic ]
    "let calls = Atomic.make 0\nlet bump () = Atomic.incr calls\n"

let test_dls_slot () =
  check_sites "DLS slot"
    [ mk ~line:1 ~ident:"rng" S.Dls_slot S.Domain_local ]
    "let rng = Domain.DLS.new_key (fun () -> 7)\n"

let test_mutable_field_behind_mutex () =
  (* a record type with its own Mutex.t field: the allocation is
     classified Mutex-guarded, not unguarded *)
  check_sites "record with a lock"
    [ mk ~line:2 ~ident:"shared" (S.Mutable_record "guarded")
        S.Mutex_protected ]
    "type guarded = { lock : Mutex.t; mutable n : int }\n\
     let shared = { lock = Mutex.create (); n = 0 }\n"

let test_mutable_field_without_mutex () =
  check_sites "bare mutable record"
    [ mk ~line:2 ~ident:"shared" (S.Mutable_record "cell") S.Unguarded ]
    "type cell = { mutable n : int }\nlet shared = { n = 0 }\n"

let test_mutex_usage_upgrade () =
  (* every use of the table sits under Mutex.protect: upgraded *)
  check_sites "Mutex.protect usage"
    [ mk ~line:2 ~ident:"table" (S.Container "Hashtbl") S.Mutex_protected ]
    "let m = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let add k v = Mutex.protect m (fun () -> Hashtbl.replace table k v)\n\
     let find k = Mutex.protect m (fun () -> Hashtbl.find_opt table k)\n"

let test_mutex_upgrade_needs_all_uses () =
  (* one bare use outside the lock keeps the site unguarded *)
  check_sites "bare use defeats the upgrade"
    [ mk ~line:2 ~ident:"table" (S.Container "Hashtbl") S.Unguarded ]
    "let m = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let add k v = Mutex.protect m (fun () -> Hashtbl.replace table k v)\n\
     let size () = Hashtbl.length table\n"

let test_closure_hidden_state () =
  (* allocation under [fun] is per-call, but state captured from
     outside the [fun] is not: the walk stops at function boundaries
     yet still sees through [let ... in fun] *)
  check_sites "hidden counter behind a closure"
    [ mk ~line:1 ~ident:"fresh" S.Ref_cell S.Unguarded ]
    "let fresh = let n = ref 0 in fun () -> incr n; !n\n";
  check_sites "per-call allocation is local"
    []
    "let f () = let n = ref 0 in incr n; !n\n"

let test_ambient_and_containers () =
  check_sites "ambient + containers"
    [ mk ~line:1 ~ident:"Random.self_init" (S.Ambient "Random.self_init")
        S.Unguarded;
      mk ~line:2 ~ident:"log" (S.Container "Buffer") S.Unguarded;
      mk ~line:3 ~ident:"table" S.Array_value S.Unguarded;
      mk ~line:4 ~ident:"boot" S.Lazy_block S.Unguarded ]
    "let () = Random.self_init ()\n\
     let log = Buffer.create 80\n\
     let table = [| 1; 2 |]\n\
     let boot = lazy (print_string \"up\")\n"

let test_empty_array_and_constants () =
  check_sites "nothing to report" []
    "let empty = [||]\nlet pi = 4.0 *. atan 1.0\nlet name = \"arn\"\n"

let test_parse_error () =
  let u = scan "let let let\n" in
  Alcotest.(check bool) "parse error recorded" true (u.S.u_error <> None)

(* ------------------------------------------------------------------ *)
(* reachability over in-memory units *)

let test_reachability () =
  let units =
    [ S.scan_string ~filename:"lib/fake/mypool.ml"
        "let run f = Domain.join (Domain.spawn f)\n";
      S.scan_string ~filename:"lib/fake/worker.ml" "let hits = ref 0\n";
      S.scan_string ~filename:"lib/fake/main.ml"
        "let () = Mypool.run (fun () -> incr Worker.hits)\n";
      S.scan_string ~filename:"lib/fake/offline.ml"
        "let cache = Hashtbl.create 8\n" ]
  in
  Alcotest.(check (list string))
    "closure covers pool, caller and its deps"
    [ "Main"; "Mypool"; "Worker" ]
    (S.domain_reachable units);
  let severities code =
    List.filter_map
      (fun (d : A.Diagnostic.t) ->
        if d.A.Diagnostic.code = code then
          Some (A.Diagnostic.severity_label d.A.Diagnostic.severity)
        else None)
      (S.report units)
  in
  (* reachable ref is an error; unreachable container only warns *)
  Alcotest.(check (list string)) "SRC001 severity" [ "error" ]
    (severities "SRC001");
  Alcotest.(check (list string)) "SRC003 severity" [ "warning" ]
    (severities "SRC003")

(* ------------------------------------------------------------------ *)
(* allowlist *)

let test_allowlist_roundtrip () =
  let text =
    "; comment\n\
     ((file lib/a.ml) (ident x) (code SRC001)\n\
    \ (reason \"both domains; quoted \\\"text\\\"\"))\n"
  in
  let entries = A.Allowlist.of_string text in
  Alcotest.(check int) "one entry" 1 (List.length entries);
  let e = List.hd entries in
  Alcotest.(check string) "file" "lib/a.ml" e.A.Allowlist.file;
  Alcotest.(check string) "reason" "both domains; quoted \"text\""
    e.A.Allowlist.reason;
  let reparsed = A.Allowlist.of_string (A.Allowlist.to_string entries) in
  Alcotest.(check bool) "round-trips up to line numbers" true
    (List.for_all2
       (fun (a : A.Allowlist.entry) (b : A.Allowlist.entry) ->
         a.A.Allowlist.file = b.A.Allowlist.file
         && a.A.Allowlist.ident = b.A.Allowlist.ident
         && a.A.Allowlist.code = b.A.Allowlist.code
         && a.A.Allowlist.reason = b.A.Allowlist.reason)
       entries reparsed)

let test_allowlist_errors () =
  List.iter
    (fun (text, expect_line) ->
      match A.Allowlist.of_string text with
      | _ -> Alcotest.failf "expected Parse_error on %S" text
      | exception A.Allowlist.Parse_error (line, _) ->
        Alcotest.(check int) (Printf.sprintf "line of %S" text) expect_line
          line)
    [ ("stray\n", 1);
      ("((file a))\n", 1);
      ("\n((file a) (ident b) (code c)\n", 2);
      ("((file a) (ident b) (code c) (reason \"unterminated\n", 1) ]

let test_allowlist_suppression_and_staleness () =
  let units = [ S.scan_string ~filename:"lib/fake/w.ml" "let n = ref 0\n" ] in
  let entry ~file ~ident ~code =
    { A.Allowlist.file; ident; code; reason = "r"; line = 3 }
  in
  let allow =
    [ entry ~file:"lib/fake/w.ml" ~ident:"n" ~code:"SRC001";
      entry ~file:"lib/gone.ml" ~ident:"zz" ~code:"SRC001" ]
  in
  let report = S.report ~allow ~allow_file:"allow.sexp" units in
  let codes = List.map (fun (d : A.Diagnostic.t) -> d.A.Diagnostic.code) report in
  Alcotest.(check (list string)) "match suppressed, stale reported"
    [ "SRC008" ] codes;
  match report with
  | [ { A.Diagnostic.location = A.Diagnostic.Src { file; line }; _ } ] ->
    Alcotest.(check string) "stale points at the allowlist" "allow.sexp" file;
    Alcotest.(check int) "at the entry's own line" 3 line
  | _ -> Alcotest.fail "expected exactly one Src-located diagnostic"

(* ------------------------------------------------------------------ *)
(* the checked-in broken fixture used by CI *)

let test_broken_fixture () =
  (* dune runtest runs this binary from _build/default/test with the
     fixture tree staged one level up (the (deps) in test/dune); a bare
     `dune exec` runs it from the repo root *)
  let dir =
    if Sys.file_exists "lint/fixtures" then "lint/fixtures"
    else "../lint/fixtures"
  in
  let report = S.run ~dirs:[ dir ] () in
  let errors = List.filter A.Diagnostic.is_error report in
  Alcotest.(check int) "exactly one error" 1 (List.length errors);
  (match errors with
  | [ { A.Diagnostic.code = "SRC001";
        location = A.Diagnostic.Src { file; _ };
        _ } ]
    when Filename.basename file = "counter.ml" ->
    ()
  | _ -> Alcotest.fail "expected SRC001 at counter.ml");
  Alcotest.(check int) "nonzero exit" 1 (A.Lint.exit_code report);
  (* and the finding survives the JSON round-trip *)
  Alcotest.(check bool) "JSON round-trips" true
    (A.Diagnostic.list_of_json (A.Lint.to_json report) = report)

(* ------------------------------------------------------------------ *)
(* property: classification is stable under alpha-renaming *)

let ident_gen =
  let open QCheck in
  let letter = Gen.oneof [ Gen.char_range 'a' 'z'; Gen.return '_' ] in
  let body =
    Gen.oneof
      [ Gen.char_range 'a' 'z'; Gen.char_range '0' '9'; Gen.return '_' ]
  in
  make
    ~print:Fun.id
    Gen.(
      map2
        (fun c s -> String.make 1 c ^ s)
        letter
        (string_size ~gen:body (int_range 0 12)))

let shapes =
  (* each shape is a function from the bound name to a unit source *)
  [ Printf.sprintf "let %s = ref 0\n";
    Printf.sprintf "let %s = Atomic.make 0\n";
    Printf.sprintf "let %s = Hashtbl.create 8\n";
    Printf.sprintf "let %s = Domain.DLS.new_key (fun () -> 0)\n";
    Printf.sprintf "let %s = lazy 3\n";
    Printf.sprintf "let %s = let n = ref 0 in fun () -> incr n\n";
    Printf.sprintf "let %s () = ref 0\n" ]

let strip (s : S.site) = (s.S.line, s.S.kind, s.S.guard)

let prop_alpha_renaming =
  QCheck.Test.make ~count:200 ~name:"classification ignores the spelling"
    QCheck.(pair ident_gen (int_bound (List.length shapes - 1)))
    (fun (name, i) ->
      let shape = List.nth shapes i in
      let renamed_unit = scan (shape name) in
      (* a generated name can collide with an OCaml keyword; those
         sources do not parse and say nothing about stability *)
      QCheck.assume (renamed_unit.S.u_error = None);
      let canonical = (scan (shape "canonical_name")).S.u_sites in
      let renamed = renamed_unit.S.u_sites in
      List.map strip canonical = List.map strip renamed
      && List.for_all
           (fun (s : S.site) -> s.S.ident = name)
           (List.filter (fun (s : S.site) -> s.S.ident <> "_") renamed))

(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "src_check"
    [ ( "classify",
        [ Alcotest.test_case "unsafe ref" `Quick test_unsafe_ref;
          Alcotest.test_case "atomic counter" `Quick test_atomic_counter;
          Alcotest.test_case "DLS slot" `Quick test_dls_slot;
          Alcotest.test_case "mutable field behind a mutex" `Quick
            test_mutable_field_behind_mutex;
          Alcotest.test_case "mutable field without a mutex" `Quick
            test_mutable_field_without_mutex;
          Alcotest.test_case "Mutex.protect usage upgrade" `Quick
            test_mutex_usage_upgrade;
          Alcotest.test_case "bare use defeats the upgrade" `Quick
            test_mutex_upgrade_needs_all_uses;
          Alcotest.test_case "closure-hidden state" `Quick
            test_closure_hidden_state;
          Alcotest.test_case "ambient and containers" `Quick
            test_ambient_and_containers;
          Alcotest.test_case "constants are silent" `Quick
            test_empty_array_and_constants;
          Alcotest.test_case "parse errors surface" `Quick test_parse_error;
          qcheck prop_alpha_renaming ] );
      ( "reachability",
        [ Alcotest.test_case "closure and severities" `Quick
            test_reachability ] );
      ( "allowlist",
        [ Alcotest.test_case "roundtrip" `Quick test_allowlist_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_allowlist_errors;
          Alcotest.test_case "suppression and staleness" `Quick
            test_allowlist_suppression_and_staleness ] );
      ( "fixtures",
        [ Alcotest.test_case "broken fixture fails" `Quick
            test_broken_fixture ] ) ]
