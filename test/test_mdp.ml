open Arnet_mdp

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

let single_link ~capacity ~offered =
  Loss_mdp.make ~capacities:[| capacity |] ~arrivals:[| offered |]
    ~routes:[ (0, [ 0 ]) ]

let triangle ~capacity ~load =
  Loss_mdp.make
    ~capacities:(Array.make 3 capacity)
    ~arrivals:(Array.make 3 load)
    ~routes:[ (0, [ 0 ]); (1, [ 1 ]); (2, [ 2 ]); (2, [ 0; 1 ]) ]

(* ------------------------------------------------------------------ *)

let test_single_link_erlang () =
  let m = single_link ~capacity:5 ~offered:4. in
  Alcotest.(check int) "C+1 states" 6 (Loss_mdp.state_count m);
  Alcotest.(check int) "one route" 1 (Loss_mdp.route_count m);
  let analytic = Arnet_erlang.Erlang_b.blocking ~offered:4. ~capacity:5 in
  feq_at 1e-7 "policy evaluation = Erlang B" analytic
    (Loss_mdp.policy_blocking m (Loss_mdp.single_path_policy m));
  (* on a single link no policy beats accepting everything *)
  feq_at 1e-7 "optimal = Erlang B" analytic (Loss_mdp.optimal_blocking m)

let test_two_independent_links () =
  (* two links, two streams, no interaction: blocking is the
     arrival-weighted mean of the Erlang blockings *)
  let m =
    Loss_mdp.make ~capacities:[| 3; 6 |] ~arrivals:[| 2.; 5. |]
      ~routes:[ (0, [ 0 ]); (1, [ 1 ]) ]
  in
  Alcotest.(check int) "product state space" (4 * 7) (Loss_mdp.state_count m);
  let b0 = Arnet_erlang.Erlang_b.blocking ~offered:2. ~capacity:3 in
  let b1 = Arnet_erlang.Erlang_b.blocking ~offered:5. ~capacity:6 in
  feq_at 1e-7 "weighted Erlang"
    (((2. *. b0) +. (5. *. b1)) /. 7.)
    (Loss_mdp.policy_blocking m (Loss_mdp.uncontrolled_policy m))

let test_triangle_orderings () =
  let low = triangle ~capacity:8 ~load:5. in
  let high = triangle ~capacity:8 ~load:9. in
  let eval m p = Loss_mdp.policy_blocking m p in
  let opt_low = Loss_mdp.optimal_blocking low in
  let sp_low = eval low (Loss_mdp.single_path_policy low) in
  let unc_low = eval low (Loss_mdp.uncontrolled_policy low) in
  (* at low load alternates help and the optimum beats single-path *)
  Alcotest.(check bool) "low load: uncontrolled beats single-path" true
    (unc_low < sp_low);
  Alcotest.(check bool) "optimal lower bound (low)" true
    (opt_low <= unc_low +. 1e-9 && opt_low <= sp_low +. 1e-9);
  (* at high load uncontrolled overtakes single-path — the avalanche in
     exact form — and single-path is near-optimal *)
  let opt_high = Loss_mdp.optimal_blocking high in
  let sp_high = eval high (Loss_mdp.single_path_policy high) in
  let unc_high = eval high (Loss_mdp.uncontrolled_policy high) in
  Alcotest.(check bool) "high load: uncontrolled worse than single-path" true
    (unc_high > sp_high);
  Alcotest.(check bool) "single-path near-optimal at high load" true
    (sp_high -. opt_high < 0.001)

let test_triangle_controlled_guarantee_exact () =
  (* the guarantee as an exact statement, across loads *)
  List.iter
    (fun load ->
      let m = triangle ~capacity:8 ~load in
      let r = Arnet_core.Protection.level ~offered:load ~capacity:8 ~h:2 in
      let ctl =
        Loss_mdp.policy_blocking m
          (Loss_mdp.controlled_policy m ~reserves:[| r; r; r |])
      in
      let sp = Loss_mdp.policy_blocking m (Loss_mdp.single_path_policy m) in
      let opt = Loss_mdp.optimal_blocking m in
      Alcotest.(check bool)
        (Printf.sprintf "controlled <= single-path at %g (exact)" load)
        true (ctl <= sp +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "controlled within 1pp of optimal at %g" load)
        true
        (ctl -. opt < 0.01))
    [ 4.; 6.; 8.; 10. ]

let test_full_reservation_equals_single_path () =
  let m = triangle ~capacity:6 ~load:5. in
  feq_at 1e-9 "r = C shuts alternates off"
    (Loss_mdp.policy_blocking m (Loss_mdp.single_path_policy m))
    (Loss_mdp.policy_blocking m
       (Loss_mdp.controlled_policy m ~reserves:[| 6; 6; 6 |]))

let test_optimal_decisions_and_threshold () =
  (* free alternate legs: the optimum always detours -> threshold 0 *)
  let free =
    Loss_mdp.make ~capacities:[| 2; 10; 10 |] ~arrivals:[| 3. |]
      ~routes:[ (0, [ 0 ]); (0, [ 1; 2 ]) ]
  in
  Alcotest.(check (option int)) "free legs accept always" (Some 0)
    (Loss_mdp.alternate_acceptance_threshold free ~od:0);
  (* decisions cover every (state, stream) pair and chosen routes are
     feasible *)
  let decisions = Loss_mdp.optimal_decisions free in
  Alcotest.(check int) "one record per state-stream pair"
    (Loss_mdp.state_count free)
    (List.length decisions);
  (* loaded network: the optimum stops being a pure occupancy threshold
     (composition matters), which is the expected network effect *)
  let loaded =
    Loss_mdp.make ~capacities:[| 2; 6; 6 |] ~arrivals:[| 3.; 5.; 5. |]
      ~routes:[ (0, [ 0 ]); (0, [ 1; 2 ]); (1, [ 1 ]); (2, [ 2 ]) ]
  in
  Alcotest.(check (option int)) "loaded legs: not occupancy-threshold" None
    (Loss_mdp.alternate_acceptance_threshold loaded ~od:0);
  check_invalid "needs exactly two routes" (fun () ->
      ignore (Loss_mdp.alternate_acceptance_threshold loaded ~od:1))

let test_validation () =
  check_invalid "bad od" (fun () ->
      ignore
        (Loss_mdp.make ~capacities:[| 2 |] ~arrivals:[| 1. |]
           ~routes:[ (1, [ 0 ]) ]));
  check_invalid "empty route" (fun () ->
      ignore
        (Loss_mdp.make ~capacities:[| 2 |] ~arrivals:[| 1. |]
           ~routes:[ (0, []) ]));
  check_invalid "bad link" (fun () ->
      ignore
        (Loss_mdp.make ~capacities:[| 2 |] ~arrivals:[| 1. |]
           ~routes:[ (0, [ 1 ]) ]));
  check_invalid "stream without routes" (fun () ->
      ignore
        (Loss_mdp.make ~capacities:[| 2 |] ~arrivals:[| 1.; 1. |]
           ~routes:[ (0, [ 0 ]) ]));
  check_invalid "nonpositive arrival" (fun () ->
      ignore
        (Loss_mdp.make ~capacities:[| 2 |] ~arrivals:[| 0. |]
           ~routes:[ (0, [ 0 ]) ]));
  let m = single_link ~capacity:2 ~offered:1. in
  check_invalid "policy picks infeasible route" (fun () ->
      ignore (Loss_mdp.policy_blocking m (fun ~occupancy:_ ~od:_ -> Some 0)));
  check_invalid "reserves mismatch" (fun () ->
      ignore
        (Loss_mdp.policy_blocking m
           (Loss_mdp.controlled_policy m ~reserves:[| 1; 1 |])))

let test_simulation_cross_check () =
  (* the exact controlled evaluation must sit inside the simulator's
     confidence interval on the same model *)
  let rows =
    Arnet_experiments.Optimality_exp.run ~loads:[ 7. ]
      ~config:
        { Arnet_experiments.Config.seeds = [ 1; 2; 3; 4; 5 ];
          duration = 110.;
          warmup = 10.;
          domains = Arnet_sim.Pool.of_env () }
      ()
  in
  match rows with
  | [ r ] ->
    Alcotest.(check bool)
      (Printf.sprintf "sim %.4f within 1pp of exact %.4f"
         r.Arnet_experiments.Optimality_exp.controlled_simulated
         r.Arnet_experiments.Optimality_exp.controlled)
      true
      (Float.abs
         (r.Arnet_experiments.Optimality_exp.controlled_simulated
         -. r.Arnet_experiments.Optimality_exp.controlled)
      < 0.01)
  | _ -> Alcotest.fail "one row expected"

let () =
  Alcotest.run "mdp"
    [ ( "loss-mdp",
        [ Alcotest.test_case "single link = Erlang" `Quick
            test_single_link_erlang;
          Alcotest.test_case "independent links" `Quick
            test_two_independent_links;
          Alcotest.test_case "triangle orderings" `Quick
            test_triangle_orderings;
          Alcotest.test_case "controlled guarantee, exact" `Slow
            test_triangle_controlled_guarantee_exact;
          Alcotest.test_case "full reservation = single-path" `Quick
            test_full_reservation_equals_single_path;
          Alcotest.test_case "optimal decisions / threshold" `Quick
            test_optimal_decisions_and_threshold;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "simulation cross-check" `Slow
            test_simulation_cross_check ] ) ]
