open Arnet_topology

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "")
    (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Link *)

let test_link_make () =
  let l = Link.make ~id:3 ~src:1 ~dst:2 ~capacity:7 in
  Alcotest.(check int) "id" 3 l.Link.id;
  Alcotest.(check int) "src" 1 l.Link.src;
  Alcotest.(check int) "dst" 2 l.Link.dst;
  Alcotest.(check int) "capacity" 7 l.Link.capacity

let test_link_validation () =
  check_invalid "negative capacity" (fun () ->
      ignore (Link.make ~id:0 ~src:0 ~dst:1 ~capacity:(-1)));
  check_invalid "self loop" (fun () ->
      ignore (Link.make ~id:0 ~src:2 ~dst:2 ~capacity:1));
  check_invalid "negative id" (fun () ->
      ignore (Link.make ~id:(-1) ~src:0 ~dst:1 ~capacity:1));
  check_invalid "negative node" (fun () ->
      ignore (Link.make ~id:0 ~src:(-2) ~dst:1 ~capacity:1))

let test_link_reversed () =
  let l = Link.make ~id:0 ~src:1 ~dst:2 ~capacity:9 in
  let r = Link.reversed l ~id:5 in
  Alcotest.(check int) "src swapped" 2 r.Link.src;
  Alcotest.(check int) "dst swapped" 1 r.Link.dst;
  Alcotest.(check int) "fresh id" 5 r.Link.id;
  Alcotest.(check int) "capacity kept" 9 r.Link.capacity

let test_link_equal_compare () =
  let a = Link.make ~id:0 ~src:0 ~dst:1 ~capacity:5 in
  let b = Link.make ~id:0 ~src:0 ~dst:1 ~capacity:5 in
  let c = Link.make ~id:1 ~src:0 ~dst:2 ~capacity:5 in
  Alcotest.(check bool) "equal" true (Link.equal a b);
  Alcotest.(check bool) "not equal" false (Link.equal a c);
  Alcotest.(check bool) "ordered by dst" true (Link.compare a c < 0);
  Alcotest.(check bool) "to_string mentions endpoints" true
    (String.length (Link.to_string a) > 0)

(* ------------------------------------------------------------------ *)
(* Graph *)

let triangle () = Graph.of_edges ~nodes:3 ~capacity:10 [ (0, 1); (1, 2); (0, 2) ]

let test_graph_create_valid () =
  let links =
    [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity:4;
      Link.make ~id:1 ~src:1 ~dst:0 ~capacity:4 ]
  in
  let g = Graph.create ~nodes:2 links in
  Alcotest.(check int) "nodes" 2 (Graph.node_count g);
  Alcotest.(check int) "links" 2 (Graph.link_count g);
  Alcotest.(check int) "capacity" 8 (Graph.total_capacity g)

let test_graph_create_validation () =
  let l01 = Link.make ~id:0 ~src:0 ~dst:1 ~capacity:1 in
  check_invalid "duplicate id" (fun () ->
      ignore
        (Graph.create ~nodes:2
           [ l01; Link.make ~id:0 ~src:1 ~dst:0 ~capacity:1 ]));
  check_invalid "duplicate pair" (fun () ->
      ignore
        (Graph.create ~nodes:3
           [ l01; Link.make ~id:1 ~src:0 ~dst:1 ~capacity:2 ]));
  check_invalid "endpoint out of range" (fun () ->
      ignore (Graph.create ~nodes:1 [ l01 ]));
  check_invalid "label length" (fun () ->
      ignore (Graph.create ~labels:[| "a" |] ~nodes:2 [ l01 ]));
  check_invalid "id out of range" (fun () ->
      ignore (Graph.create ~nodes:2 [ Link.make ~id:1 ~src:0 ~dst:1 ~capacity:1 ]))

let test_of_edges () =
  let g = triangle () in
  Alcotest.(check int) "6 directed links" 6 (Graph.link_count g);
  (* ids assigned pairwise in order *)
  let l = Graph.link g 0 in
  Alcotest.(check (pair int int)) "link 0 is 0->1" (0, 1) (l.Link.src, l.Link.dst);
  let l = Graph.link g 1 in
  Alcotest.(check (pair int int)) "link 1 is 1->0" (1, 0) (l.Link.src, l.Link.dst);
  check_invalid "duplicate edge either order" (fun () ->
      ignore (Graph.of_edges ~nodes:3 ~capacity:1 [ (0, 1); (1, 0) ]));
  check_invalid "self loop edge" (fun () ->
      ignore (Graph.of_edges ~nodes:3 ~capacity:1 [ (1, 1) ]))

let test_find_link () =
  let g = triangle () in
  (match Graph.find_link g ~src:2 ~dst:0 with
  | Some l -> Alcotest.(check int) "capacity" 10 l.Link.capacity
  | None -> Alcotest.fail "2->0 should exist");
  Alcotest.(check bool) "missing pair" true
    (Graph.find_link g ~src:0 ~dst:0 = None);
  Alcotest.check_raises "find_link_exn missing" Not_found (fun () ->
      ignore (Graph.find_link_exn g ~src:0 ~dst:0))

let test_adjacency () =
  let g = triangle () in
  Alcotest.(check (list int)) "successors ascending" [ 1; 2 ]
    (Graph.successors g 0);
  Alcotest.(check int) "out degree" 2 (Graph.degree_out g 1);
  Alcotest.(check int) "in degree" 2 (Graph.degree_in g 1);
  let out = Graph.out_links g 2 in
  Alcotest.(check (list int)) "out links sorted by dst" [ 0; 1 ]
    (List.map (fun (l : Link.t) -> l.Link.dst) out);
  let into = Graph.in_links g 2 in
  Alcotest.(check (list int)) "in links sorted by src" [ 0; 1 ]
    (List.map (fun (l : Link.t) -> l.Link.src) into)

let test_without_links () =
  let g = triangle () in
  let g' = Graph.without_links g [ (0, 1) ] in
  Alcotest.(check int) "one fewer link" 5 (Graph.link_count g');
  Alcotest.(check bool) "0->1 gone" true (Graph.find_link g' ~src:0 ~dst:1 = None);
  Alcotest.(check bool) "1->0 kept" true (Graph.find_link g' ~src:1 ~dst:0 <> None);
  (* ids renumbered densely *)
  let ids = Array.to_list (Array.map (fun (l : Link.t) -> l.Link.id) (Graph.links g')) in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2; 3; 4 ] (List.sort compare ids);
  check_invalid "unknown pair" (fun () ->
      ignore (Graph.without_links g [ (0, 0) ]))

let test_with_capacities () =
  let g = triangle () in
  let g' = Graph.with_capacities g [ (0, 1, 3); (1, 0, 4) ] in
  Alcotest.(check int) "updated fwd" 3
    (Graph.find_link_exn g' ~src:0 ~dst:1).Link.capacity;
  Alcotest.(check int) "updated bwd" 4
    (Graph.find_link_exn g' ~src:1 ~dst:0).Link.capacity;
  Alcotest.(check int) "others kept" 10
    (Graph.find_link_exn g' ~src:1 ~dst:2).Link.capacity;
  Alcotest.(check bool) "asymmetric now" false (Graph.is_symmetric g');
  check_invalid "unknown link" (fun () ->
      ignore (Graph.with_capacities g [ (2, 2, 1) ]));
  check_invalid "negative capacity" (fun () ->
      ignore (Graph.with_capacities g [ (0, 1, -1) ]))

let test_symmetry_connectivity () =
  let g = triangle () in
  Alcotest.(check bool) "symmetric" true (Graph.is_symmetric g);
  Alcotest.(check bool) "strongly connected" true (Graph.is_strongly_connected g);
  let g' = Graph.without_links g [ (0, 1) ] in
  Alcotest.(check bool) "asymmetric after removal" false (Graph.is_symmetric g');
  Alcotest.(check bool) "still strongly connected via 2" true
    (Graph.is_strongly_connected g');
  let g'' = Graph.without_links g' [ (0, 2); (2, 0) ] in
  (* node 0 now unreachable-from / cannot-reach parts *)
  Alcotest.(check bool) "broken connectivity" false
    (Graph.is_strongly_connected g'')

let test_labels_and_dot () =
  let g =
    Graph.of_edges ~labels:[| "a"; "b"; "c" |] ~nodes:3 ~capacity:5
      [ (0, 1); (1, 2) ]
  in
  Alcotest.(check string) "label" "b" (Graph.label g 1);
  let dot = Graph.to_dot g in
  Alcotest.(check bool) "dot has digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* symmetric pairs collapse: 2 edges, not 4 arrows *)
  let count_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub s i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two dir=both edges" 2 (count_sub dot "dir=both")

let test_fold_iter () =
  let g = triangle () in
  let sum = Graph.fold_links (fun l acc -> acc + l.Link.capacity) g 0 in
  Alcotest.(check int) "fold capacities" 60 sum;
  let count = ref 0 in
  Graph.iter_links (fun _ -> incr count) g;
  Alcotest.(check int) "iter visits all" 6 !count;
  Alcotest.(check int) "total_capacity" 60 (Graph.total_capacity g)

(* ------------------------------------------------------------------ *)
(* Builders *)

let test_full_mesh () =
  let g = Builders.full_mesh ~nodes:5 ~capacity:2 in
  Alcotest.(check int) "n(n-1) links" 20 (Graph.link_count g);
  Alcotest.(check bool) "symmetric" true (Graph.is_symmetric g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g);
  check_invalid "too small" (fun () ->
      ignore (Builders.full_mesh ~nodes:1 ~capacity:1))

let test_ring_line_star () =
  let ring = Builders.ring ~nodes:6 ~capacity:1 in
  Alcotest.(check int) "ring links" 12 (Graph.link_count ring);
  Alcotest.(check int) "ring degree" 2 (Graph.degree_out ring 3);
  let line = Builders.line ~nodes:4 ~capacity:1 in
  Alcotest.(check int) "line links" 6 (Graph.link_count line);
  Alcotest.(check int) "line end degree" 1 (Graph.degree_out line 0);
  let star = Builders.star ~nodes:5 ~capacity:1 in
  Alcotest.(check int) "star center degree" 4 (Graph.degree_out star 0);
  Alcotest.(check int) "star leaf degree" 1 (Graph.degree_out star 3);
  check_invalid "ring too small" (fun () ->
      ignore (Builders.ring ~nodes:2 ~capacity:1))

let test_waxman () =
  let g = Builders.waxman ~seed:42 ~nodes:12 ~capacity:10 () in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  Alcotest.(check bool) "connected (spanning tree forced)" true
    (Graph.is_strongly_connected g);
  Alcotest.(check bool) "symmetric" true (Graph.is_symmetric g);
  (* deterministic in the seed *)
  let g' = Builders.waxman ~seed:42 ~nodes:12 ~capacity:10 () in
  Alcotest.(check int) "same seed same size" (Graph.link_count g)
    (Graph.link_count g');
  let other = Builders.waxman ~seed:43 ~nodes:12 ~capacity:10 () in
  Alcotest.(check bool) "different seed usually differs" true
    (Graph.link_count other <> Graph.link_count g
    || Graph.to_dot other <> Graph.to_dot g);
  (* a denser parameterization yields more links *)
  let dense = Builders.waxman ~alpha:1.0 ~beta:2.0 ~seed:42 ~nodes:12 ~capacity:10 () in
  Alcotest.(check bool) "alpha/beta control density" true
    (Graph.link_count dense > Graph.link_count g);
  check_invalid "bad alpha" (fun () ->
      ignore (Builders.waxman ~alpha:1.5 ~seed:1 ~nodes:5 ~capacity:1 ()));
  check_invalid "too few nodes" (fun () ->
      ignore (Builders.waxman ~seed:1 ~nodes:1 ~capacity:1 ()))

let test_grid () =
  let g = Builders.grid ~rows:3 ~cols:4 ~capacity:1 in
  (* edges: 3*(4-1) horizontal + (3-1)*4 vertical = 17 -> 34 links *)
  Alcotest.(check int) "grid links" 34 (Graph.link_count g);
  Alcotest.(check int) "corner degree" 2 (Graph.degree_out g 0);
  Alcotest.(check int) "center degree" 4 (Graph.degree_out g 5);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

(* ------------------------------------------------------------------ *)
(* NSFNet data *)

let test_nsfnet_shape () =
  let g = Nsfnet.graph () in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  Alcotest.(check int) "links" 30 (Graph.link_count g);
  Alcotest.(check bool) "symmetric" true (Graph.is_symmetric g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g);
  Alcotest.(check int) "capacity everywhere" (30 * 100) (Graph.total_capacity g)

let test_nsfnet_tables () =
  let g = Nsfnet.graph () in
  Alcotest.(check int) "30 load entries" 30 (List.length Nsfnet.table1_loads);
  Alcotest.(check int) "30 protection entries" 30
    (List.length Nsfnet.table1_protection);
  List.iter
    (fun ((src, dst), lam) ->
      Alcotest.(check bool)
        (Printf.sprintf "link %d->%d exists" src dst)
        true
        (Graph.find_link g ~src ~dst <> None);
      Alcotest.(check bool) "positive load" true (lam > 0.))
    Nsfnet.table1_loads;
  Alcotest.(check (float 0.01)) "load_of lookup" 167. (Nsfnet.load_of ~src:10 ~dst:11);
  (* every directed link has a load entry *)
  Graph.iter_links
    (fun l ->
      Alcotest.(check bool) "load known" true
        (List.mem_assoc (l.Link.src, l.Link.dst) Nsfnet.table1_loads))
    g

(* ------------------------------------------------------------------ *)
(* properties *)

let edge_list_gen =
  (* connected-ish random undirected edge sets over up to 7 nodes *)
  QCheck2.Gen.(
    let* n = int_range 3 7 in
    let all =
      List.concat_map
        (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
        (List.init n (fun i -> i))
    in
    let spanning = List.init (n - 1) (fun i -> (i, i + 1)) in
    let* extra = QCheck2.Gen.(list_size (int_range 0 6) (oneofl all)) in
    let dedup =
      List.sort_uniq compare (spanning @ extra)
    in
    return (n, dedup))

let prop_of_edges_symmetric =
  QCheck2.Test.make ~count:100 ~name:"of_edges graphs are symmetric"
    edge_list_gen (fun (n, edges) ->
      let g = Graph.of_edges ~nodes:n ~capacity:3 edges in
      Graph.is_symmetric g
      && Graph.link_count g = 2 * List.length edges
      && Graph.total_capacity g = 6 * List.length edges)

let prop_without_twin_links_symmetric =
  QCheck2.Test.make ~count:100
    ~name:"removing both directions keeps symmetry" edge_list_gen
    (fun (n, edges) ->
      let g = Graph.of_edges ~nodes:n ~capacity:3 edges in
      match edges with
      | [] -> true
      | (a, b) :: _ ->
        let g' = Graph.without_links g [ (a, b); (b, a) ] in
        Graph.is_symmetric g' && Graph.link_count g' = Graph.link_count g - 2)

let () =
  Alcotest.run "topology"
    [ ( "link",
        [ Alcotest.test_case "make" `Quick test_link_make;
          Alcotest.test_case "validation" `Quick test_link_validation;
          Alcotest.test_case "reversed" `Quick test_link_reversed;
          Alcotest.test_case "equal/compare" `Quick test_link_equal_compare ] );
      ( "graph",
        [ Alcotest.test_case "create" `Quick test_graph_create_valid;
          Alcotest.test_case "create validation" `Quick
            test_graph_create_validation;
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "find_link" `Quick test_find_link;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "without_links" `Quick test_without_links;
          Alcotest.test_case "with_capacities" `Quick test_with_capacities;
          Alcotest.test_case "symmetry/connectivity" `Quick
            test_symmetry_connectivity;
          Alcotest.test_case "labels and dot" `Quick test_labels_and_dot;
          Alcotest.test_case "fold/iter" `Quick test_fold_iter ] );
      ( "builders",
        [ Alcotest.test_case "full mesh" `Quick test_full_mesh;
          Alcotest.test_case "ring/line/star" `Quick test_ring_line_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "waxman" `Quick test_waxman ] );
      ( "nsfnet",
        [ Alcotest.test_case "shape" `Quick test_nsfnet_shape;
          Alcotest.test_case "tables" `Quick test_nsfnet_tables ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_of_edges_symmetric; prop_without_twin_links_symmetric ] ) ]
