type t = {
  capacities : int array;
  arrivals : float array;
  route_links : int array array;  (* per global route *)
  od_routes : int array array;  (* per od, global route ids in preference order *)
  states : int array array;  (* state id -> per-route call counts *)
  occupancy : int array array;  (* state id -> per-link occupancy *)
  total_calls : int array;
  succ_up : int array array;  (* state id -> per route: state id after +1, or -1 *)
  succ_down : int array array;  (* state id -> per route: state id after -1, or -1 *)
}

let state_limit = 5_000_000

let make ~capacities ~arrivals ~routes =
  let n_links = Array.length capacities in
  let n_ods = Array.length arrivals in
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Loss_mdp.make: negative capacity")
    capacities;
  Array.iter
    (fun a ->
      if a <= 0. || not (Float.is_finite a) then
        invalid_arg "Loss_mdp.make: arrival rates must be positive")
    arrivals;
  if routes = [] then invalid_arg "Loss_mdp.make: no routes";
  List.iter
    (fun (od, links) ->
      if od < 0 || od >= n_ods then invalid_arg "Loss_mdp.make: bad od";
      if links = [] then invalid_arg "Loss_mdp.make: empty route";
      List.iter
        (fun k ->
          if k < 0 || k >= n_links then
            invalid_arg "Loss_mdp.make: bad link index")
        links)
    routes;
  let route_links =
    Array.of_list (List.map (fun (_, links) -> Array.of_list links) routes)
  in
  let route_od = Array.of_list (List.map fst routes) in
  let od_routes =
    Array.init n_ods (fun od ->
        Array.of_list
          (List.filter
             (fun i -> route_od.(i) = od)
             (List.init (Array.length route_od) (fun i -> i))))
  in
  Array.iteri
    (fun od rs ->
      if Array.length rs = 0 then
        invalid_arg
          (Printf.sprintf "Loss_mdp.make: stream %d has no routes" od))
    od_routes;
  let nr = Array.length route_links in
  (* enumerate feasible states by DFS over route counts *)
  let states = ref [] and count = ref 0 in
  let occ = Array.make n_links 0 in
  let vec = Array.make nr 0 in
  let rec enumerate r =
    if r = nr then begin
      incr count;
      if !count > state_limit then
        invalid_arg "Loss_mdp.make: state space too large";
      states := Array.copy vec :: !states
    end
    else begin
      (* n_r from 0 while capacity allows *)
      let rec fill n =
        let fits =
          Array.for_all (fun k -> occ.(k) + 1 <= capacities.(k))
            route_links.(r)
        in
        vec.(r) <- n;
        enumerate (r + 1);
        if fits then begin
          Array.iter (fun k -> occ.(k) <- occ.(k) + 1) route_links.(r);
          fill (n + 1)
        end
        else ()
      in
      let before = Array.copy occ in
      fill 0;
      Array.blit before 0 occ 0 n_links;
      vec.(r) <- 0
    end
  in
  enumerate 0;
  let states = Array.of_list (List.rev !states) in
  let ns = Array.length states in
  let index = Hashtbl.create (2 * ns) in
  Array.iteri (fun i s -> Hashtbl.replace index s i) states;
  let occupancy =
    Array.map
      (fun s ->
        let o = Array.make n_links 0 in
        Array.iteri
          (fun r n ->
            if n > 0 then
              Array.iter (fun k -> o.(k) <- o.(k) + n) route_links.(r))
          s;
        o)
      states
  in
  let total_calls = Array.map (fun s -> Array.fold_left ( + ) 0 s) states in
  let succ_up =
    Array.mapi
      (fun i s ->
        Array.init nr (fun r ->
            let fits =
              Array.for_all
                (fun k -> occupancy.(i).(k) + 1 <= capacities.(k))
                route_links.(r)
            in
            if not fits then -1
            else begin
              let s' = Array.copy s in
              s'.(r) <- s'.(r) + 1;
              match Hashtbl.find_opt index s' with
              | Some j -> j
              | None -> -1
            end))
      states
  in
  let succ_down =
    Array.mapi
      (fun _ s ->
        Array.init nr (fun r ->
            if s.(r) = 0 then -1
            else begin
              let s' = Array.copy s in
              s'.(r) <- s'.(r) - 1;
              match Hashtbl.find_opt index s' with
              | Some j -> j
              | None -> -1
            end))
      states
  in
  { capacities;
    arrivals;
    route_links;
    od_routes;
    states;
    occupancy;
    total_calls;
    succ_up;
    succ_down }

let state_count t = Array.length t.states
let route_count t = Array.length t.route_links

type policy = occupancy:int array -> od:int -> int option

(* relative value iteration; [choose] returns, per state and od, the
   value contribution of the arrival decision.  Returns the gain and the
   converged relative value function. *)
let relative_vi_h ?(tolerance = 1e-9) ?(max_iterations = 200_000) t ~choose =
  let ns = Array.length t.states in
  let n_ods = Array.length t.arrivals in
  let total_arrivals = Array.fold_left ( +. ) 0. t.arrivals in
  let max_calls = Array.fold_left Stdlib.max 0 t.total_calls in
  let uniform = total_arrivals +. float_of_int max_calls in
  let h = Array.make ns 0. and th = Array.make ns 0. in
  let rec iterate n =
    if n > max_iterations then
      invalid_arg "Loss_mdp.relative_vi: value iteration did not converge";
    for s = 0 to ns - 1 do
      let acc = ref 0. in
      for od = 0 to n_ods - 1 do
        acc := !acc +. (t.arrivals.(od) *. choose h s od)
      done;
      let vec = t.states.(s) in
      Array.iteri
        (fun r nr_calls ->
          if nr_calls > 0 then
            acc := !acc +. (float_of_int nr_calls *. h.(t.succ_down.(s).(r))))
        vec;
      let stay =
        uniform -. total_arrivals -. float_of_int t.total_calls.(s)
      in
      acc := !acc +. (stay *. h.(s));
      th.(s) <- !acc /. uniform
    done;
    (* span of the difference *)
    let mn = ref infinity and mx = ref neg_infinity in
    for s = 0 to ns - 1 do
      let d = th.(s) -. h.(s) in
      if d < !mn then mn := d;
      if d > !mx then mx := d
    done;
    if !mx -. !mn < tolerance then uniform *. ((!mx +. !mn) /. 2.)
    else begin
      let offset = th.(0) in
      for s = 0 to ns - 1 do
        h.(s) <- th.(s) -. offset
      done;
      iterate (n + 1)
    end
  in
  let gain = iterate 1 in
  (1. -. (gain /. total_arrivals), h)

let relative_vi ?tolerance ?max_iterations t ~choose =
  fst (relative_vi_h ?tolerance ?max_iterations t ~choose)

let optimal_blocking ?tolerance ?max_iterations t =
  let choose h s od =
    let best = ref h.(s) in
    Array.iter
      (fun r ->
        let up = t.succ_up.(s).(r) in
        if up >= 0 then begin
          let v = 1. +. h.(up) in
          if v > !best then best := v
        end)
      t.od_routes.(od);
    !best
  in
  relative_vi ?tolerance ?max_iterations t ~choose

let policy_blocking ?tolerance ?max_iterations t policy =
  let choose h s od =
    match policy ~occupancy:t.occupancy.(s) ~od with
    | None -> h.(s)
    | Some pref_idx ->
      if pref_idx < 0 || pref_idx >= Array.length t.od_routes.(od) then
        invalid_arg "Loss_mdp.policy_blocking: policy chose an unknown route";
      let r = t.od_routes.(od).(pref_idx) in
      let up = t.succ_up.(s).(r) in
      if up < 0 then invalid_arg "Loss_mdp.policy_blocking: policy chose an infeasible route";
      1. +. h.(up)
  in
  relative_vi ?tolerance ?max_iterations t ~choose

type decision_record = {
  occupancy : int array;
  od : int;
  action : int option;
}

let optimal_choose t h s od =
  let best = ref h.(s) in
  Array.iter
    (fun r ->
      let up = t.succ_up.(s).(r) in
      if up >= 0 then begin
        let v = 1. +. h.(up) in
        if v > !best then best := v
      end)
    t.od_routes.(od);
  !best

let optimal_decisions ?tolerance ?max_iterations t =
  let _, h =
    relative_vi_h ?tolerance ?max_iterations t ~choose:(fun h s od ->
        optimal_choose t h s od)
  in
  let ns = Array.length t.states in
  let n_ods = Array.length t.arrivals in
  let acc = ref [] in
  for s = ns - 1 downto 0 do
    for od = n_ods - 1 downto 0 do
      let reject = h.(s) in
      let best = ref None and best_v = ref reject in
      Array.iteri
        (fun pref r ->
          let up = t.succ_up.(s).(r) in
          if up >= 0 then begin
            let v = 1. +. h.(up) in
            if v > !best_v +. 1e-9 then begin
              best_v := v;
              best := Some pref
            end
          end)
        t.od_routes.(od);
      acc :=
        { occupancy = Array.copy t.occupancy.(s); od; action = !best }
        :: !acc
    done
  done;
  !acc

let alternate_acceptance_threshold ?tolerance ?max_iterations t ~od =
  if Array.length t.od_routes.(od) <> 2 then
    invalid_arg
      "Loss_mdp.alternate_acceptance_threshold: stream needs exactly two \
       routes";
  let primary = t.od_routes.(od).(0) and alt = t.od_routes.(od).(1) in
  let decisions = optimal_decisions ?tolerance ?max_iterations t in
  let alt_slack occupancy =
    Array.fold_left
      (fun acc k -> Stdlib.min acc (t.capacities.(k) - occupancy.(k)))
      max_int t.route_links.(alt)
  in
  let primary_full occupancy =
    Array.exists
      (fun k -> occupancy.(k) >= t.capacities.(k))
      t.route_links.(primary)
  in
  (* collect slacks at which the optimum accepts / rejects the alternate
     when the primary is full and the alternate is feasible *)
  let max_rejected = ref (-1) and min_accepted = ref max_int in
  List.iter
    (fun d ->
      if d.od = od && primary_full d.occupancy && alt_slack d.occupancy > 0
      then begin
        match d.action with
        | Some 1 ->
          if alt_slack d.occupancy < !min_accepted then
            min_accepted := alt_slack d.occupancy
        | None | Some _ ->
          if alt_slack d.occupancy > !max_rejected then
            max_rejected := alt_slack d.occupancy
      end)
    decisions;
  if !min_accepted = max_int then
    (* never accepts: full reservation *)
    Some (Array.fold_left Stdlib.min max_int t.capacities)
  else if !max_rejected < !min_accepted then Some (Stdlib.max 0 !max_rejected)
  else None

let route_fits t ~occupancy ~headroom r =
  Array.for_all
    (fun k -> occupancy.(k) + 1 <= t.capacities.(k) - headroom.(k))
    t.route_links.(r)

let single_path_policy t ~occupancy ~od =
  let zero = Array.make (Array.length t.capacities) 0 in
  let r = t.od_routes.(od).(0) in
  if route_fits t ~occupancy ~headroom:zero r then Some 0 else None

let uncontrolled_policy t ~occupancy ~od =
  let zero = Array.make (Array.length t.capacities) 0 in
  let routes = t.od_routes.(od) in
  let rec find i =
    if i >= Array.length routes then None
    else if route_fits t ~occupancy ~headroom:zero routes.(i) then Some i
    else find (i + 1)
  in
  find 0

let controlled_policy t ~reserves ~occupancy ~od =
  if Array.length reserves <> Array.length t.capacities then
    invalid_arg "Loss_mdp.controlled_policy: reserves length mismatch";
  let zero = Array.make (Array.length t.capacities) 0 in
  let routes = t.od_routes.(od) in
  if route_fits t ~occupancy ~headroom:zero routes.(0) then Some 0
  else begin
    let rec find i =
      if i >= Array.length routes then None
      else if route_fits t ~occupancy ~headroom:reserves routes.(i) then
        Some i
      else find (i + 1)
    in
    find 1
  end
