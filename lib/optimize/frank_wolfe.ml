open Arnet_topology
open Arnet_paths
open Arnet_erlang
open Arnet_traffic

type result = {
  flow : Flow.t;
  objective : float;
  iterations : int;
  relative_gap : float;
}

(* below this load a link's marginal loss is numerically zero *)
let load_floor = 1e-9

let objective_of_loads ~capacities ~loads =
  if Array.length capacities <> Array.length loads then
    invalid_arg "Frank_wolfe.objective_of_loads: length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun k c ->
      if loads.(k) > load_floor then
        acc := !acc +. Erlang_b.loss_rate ~offered:loads.(k) ~capacity:c)
    capacities;
  !acc

let marginal ~capacity load =
  if load <= load_floor then
    (* lim_{a->0} d/da [a B(a,c)] = 0 for c >= 1, = 1 for c = 0 *)
    if capacity = 0 then 1. else 0.
  else Erlang_b.loss_rate_derivative ~offered:load ~capacity

type pair = {
  src : int;
  dst : int;
  demand : float;
  candidates : Path.t array;
  fractions : float array;  (* mutable in place; sums to 1 *)
}

let pair_loads ~m pairs fractions_of =
  let loads = Array.make m 0. in
  List.iter
    (fun pr ->
      let fr = fractions_of pr in
      Array.iteri
        (fun idx p ->
          let f = fr.(idx) in
          if f > 0. then
            Array.iter
              (fun k -> loads.(k) <- loads.(k) +. (pr.demand *. f))
              p.Path.link_ids)
        pr.candidates)
    pairs;
  loads

let minimize_link_loss ?(candidates_per_pair = 8) ?(max_iterations = 200)
    ?(tolerance = 1e-4) ~graph ~matrix () =
  if candidates_per_pair < 1 then
    invalid_arg "Frank_wolfe.minimize_link_loss: candidates_per_pair < 1";
  let m = Graph.link_count graph in
  let capacities =
    Array.map (fun (l : Link.t) -> l.capacity) (Graph.links graph)
  in
  let pairs = ref [] in
  Matrix.iter_demands matrix (fun src dst demand ->
      let candidates =
        Array.of_list (Yen.k_shortest graph ~src ~dst ~k:candidates_per_pair)
      in
      if Array.length candidates = 0 then
        invalid_arg "Frank_wolfe.minimize_link_loss: demand between disconnected nodes";
      let fractions = Array.make (Array.length candidates) 0. in
      fractions.(0) <- 1.;  (* start from shortest-path all-or-nothing *)
      pairs := { src; dst; demand; candidates; fractions } :: !pairs);
  let pairs = List.rev !pairs in
  let current_loads () = pair_loads ~m pairs (fun pr -> pr.fractions) in
  let rec iterate n =
    let loads = current_loads () in
    let objective = objective_of_loads ~capacities ~loads in
    let w = Array.mapi (fun k c -> marginal ~capacity:c loads.(k)) capacities in
    let path_cost p =
      Array.fold_left (fun acc k -> acc +. w.(k)) 0. p.Path.link_ids
    in
    (* all-or-nothing target + duality gap *)
    let gap = ref 0. in
    let targets =
      List.map
        (fun pr ->
          let costs = Array.map path_cost pr.candidates in
          let best = ref 0 in
          Array.iteri (fun i c -> if c < costs.(!best) then best := i) costs;
          let avg =
            ref 0.
          in
          Array.iteri (fun i f -> avg := !avg +. (f *. costs.(i))) pr.fractions;
          gap := !gap +. (pr.demand *. (!avg -. costs.(!best)));
          !best)
        pairs
    in
    let relative_gap = !gap /. Float.max objective 1e-12 in
    if relative_gap <= tolerance || n >= max_iterations then begin
      let assignments =
        List.map
          (fun pr ->
            let entries =
              Array.to_list
                (Array.mapi (fun i p -> (p, pr.fractions.(i))) pr.candidates)
              |> List.filter (fun (_, f) -> f > 1e-9)
            in
            let total = List.fold_left (fun a (_, f) -> a +. f) 0. entries in
            ( (pr.src, pr.dst),
              List.map (fun (p, f) -> (p, f /. total)) entries ))
          pairs
      in
      { flow = Flow.make graph assignments;
        objective;
        iterations = n;
        relative_gap }
    end
    else begin
      let target_loads =
        pair_loads ~m pairs
          (let tbl = Hashtbl.create 16 in
           List.iter2
             (fun pr best ->
               let fr = Array.make (Array.length pr.fractions) 0. in
               fr.(best) <- 1.;
               Hashtbl.add tbl (pr.src, pr.dst) fr)
             pairs targets;
           fun pr -> Hashtbl.find tbl (pr.src, pr.dst))
      in
      (* loads are linear in gamma, so the line search is cheap *)
      let blended gamma =
        let l =
          Array.init m (fun k ->
              ((1. -. gamma) *. loads.(k)) +. (gamma *. target_loads.(k)))
        in
        objective_of_loads ~capacities ~loads:l
      in
      let gamma = Line_search.golden_section ~f:blended ~lo:0. ~hi:1. () in
      List.iter2
        (fun pr best ->
          Array.iteri
            (fun i f ->
              let t = if i = best then 1. else 0. in
              pr.fractions.(i) <- ((1. -. gamma) *. f) +. (gamma *. t))
            pr.fractions)
        pairs targets;
      iterate (n + 1)
    end
  in
  iterate 0
