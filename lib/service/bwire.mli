(** The daemon's binary batch framing, negotiated from the line
    protocol by [HELLO binary] ({!Wire.Hello}).

    One frame carries a whole batch: up to {!max_batch} commands from
    the client, answered by one reply frame holding exactly one verdict
    per command, in order — so a batch costs one [read]/[write]
    syscall pair on each side instead of one per decision.  The codec
    is pure and total: encoding any representable batch then decoding
    it yields the original values (the qcheck round-trip in
    [test/test_service.ml]), and malformed bytes decode to a typed
    {!error}, never an exception.

    Frame layout (all integers big-endian):

    {v
    u32  payload length (bytes after this word; <= max_frame_payload)
    u8   kind            1 = commands, 2 = replies
    u16  count           items in the batch (<= max_batch)
    ...  count items
    v}

    Command items ([BSETUP]/[BTEARDOWN], tag first):

    {v
    1  u16 src  u16 dst                  SETUP (untimed)
    2  u16 src  u16 dst  f64 time       SETUP at a virtual instant
    3  u32 id                            TEARDOWN
    4  u16 len  bytes                    any other command, as its
                                         line-protocol text
    v}

    Reply items ([BRESULT], tag first):

    {v
    1  u32 id  u8 nodes  nodes x u16     ADMITTED with its node path
    2                                    BLOCKED
    3                                    OK
    4  u8 n  code  u16 m  detail         ERR
    5  u16 len  bytes                    any other response, as its
                                         line-protocol text
    v}

    Endpoints and path nodes are u16 (the route compiler's 1000+-node
    meshes fit with room to spare); call ids are u32. *)

type frame =
  | Commands of Wire.command list
  | Replies of Wire.response list

type error =
  | Truncated of { have : int; need : int }
      (** Not enough bytes yet: [need] is the byte count known to be
          required so far (4 until the length word is complete, then
          the full frame size).  A streaming reader treats this as
          "wait for more"; at end-of-stream it is a protocol error. *)
  | Oversized of { declared : int; limit : int }
      (** The length word claims more than {!max_frame_payload} —
          connection-fatal, since trusting it would let one client
          make the daemon buffer without bound. *)
  | Corrupt of string
      (** Structurally invalid payload: unknown kind or tag, an item
          running past the frame end, trailing bytes, a non-finite
          setup time, an unparseable escaped line. *)

val error_to_string : error -> string

val max_frame_payload : int
(** 1 MiB: far above any real batch (a timed SETUP item is 13 bytes),
    a hard ceiling on per-connection buffering. *)

val max_batch : int
(** 4096 commands per frame. *)

val encode_commands : Wire.command list -> string
(** One commands frame, header included.
    @raise Invalid_argument when a value does not fit the layout:
    endpoint or path node outside u16, id outside u32, non-finite or
    negative time, batch beyond {!max_batch}, escaped line beyond
    65535 bytes. *)

val encode_replies : Wire.response list -> string
(** One replies frame; same exceptions for unrepresentable values. *)

val decode : ?off:int -> string -> (frame * int, error) result
(** Decode the frame starting at [off] (default 0).  [Ok (frame, n)]
    consumed [n] bytes including the length word; the next frame, if
    any, starts at [off + n].
    @raise Invalid_argument when [off] is outside the string. *)
