(** The daemon's mutable network state — the online form of the paper's
    two-tier admission controller.

    One value of {!t} is a live network: per-link occupancy, the
    precomputed route table (tier 1), per-link protection levels [r^k]
    enforced through {!Arnet_core.Admission} (tier 2), per-link
    {!Arnet_core.Estimator}s fed by the primary set-ups that fly past
    each link, and the call registry mapping admitted call ids to the
    circuits they hold.

    Each [SETUP] runs exactly the decision of
    {!Arnet_core.Controller.decide} — primary under the primary rule,
    then stored alternates in length order under the trunk-reservation
    rule — restricted to paths whose links are all alive, so link
    failures reroute traffic around dead links without rebuilding the
    table.  [RELOAD] re-evaluates the Theorem-1 rule at the current
    demand estimates, the online reconfiguration the batch simulator
    cannot do.

    The state is single-threaded by design: the server serializes
    commands from all connections into one stream (the wire order *is*
    the decision order, which is what makes serving deterministic). *)

open Arnet_topology
open Arnet_traffic

type t

val create :
  ?h:int ->
  ?matrix:Matrix.t ->
  ?window:float ->
  ?smoothing:float ->
  ?reload_every:int ->
  ?failure_script:Arnet_failure.Script.t ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  Graph.t ->
  t
(** [create g] — a fresh daemon state over network [g], all links idle.

    [h] caps alternate hop length (default: unrestricted, as
    {!Arnet_paths.Route_table.build}).  [matrix] is the planning
    traffic matrix: when present, initial protection levels come from
    {!Arnet_core.Protection.levels} and the estimators are seeded with
    the matrix's primary link loads; without it links start
    unprotected (all [r^k = 0]) and converge as estimates accumulate.
    [window]/[smoothing] tune the estimators.  [reload_every = n]
    recomputes [r^k] automatically after every [n] admission decisions
    (the [--reload-every] cadence); [RELOAD] works either way.
    [failure_script] replays scripted FAIL/REPAIRs against the daemon:
    each event fires once the virtual clock (advanced by SETUP
    timestamps) passes its time, applied before the setup's own
    decision — so behaviour stays a pure function of the command
    stream, and a timestamped load replay is as deterministic with a
    storm as without one.  [observer] receives the server-side event
    stream ([Run_start] on creation, then [Arrival]/[Primary_attempt]/
    [Alternate_rejected]/[Admit]/[Block]/[Departure] per command).

    @raise Invalid_argument for [reload_every < 1], a script event on a
    link outside the graph, or estimator/route parameter violations. *)

(** {1 Commands} *)

val setup : t -> src:int -> dst:int -> time:float option -> Wire.response
(** Admit or refuse one call.  [time] advances the virtual clock
    (monotonically: a stale timestamp is clamped to the current clock,
    never an error); [None] leaves the clock still.  Returns
    [Admitted {id; path}], [Blocked], or [Err] for invalid endpoints
    or a draining daemon. *)

val teardown : t -> id:int -> Wire.response
(** Release an admitted call's circuits.  [Err unknown-call] when the
    id is not active (double teardown included). *)

val fail : t -> link:int -> Wire.response
(** Mark a link dead.  Calls holding a circuit on it are dropped (their
    other circuits released, counted in [stats.dropped]); subsequent
    setups route around it.  Idempotent. *)

val repair : t -> link:int -> Wire.response
(** Bring a failed link back into service (empty).  Idempotent. *)

val link_add : t -> src:int -> dst:int -> capacity:int -> Wire.response
(** Add a directed link [src -> dst] and incrementally patch the route
    table ({!Arnet_routes.Route_table.patch} semantics: only the pairs
    whose route sets change are recompiled).  The new link gets the
    next free id; existing ids are untouched, and its fresh estimator
    inherits the daemon's window/smoothing settings.  Returns [Patched]
    with the recompiled-pair count, or [Err] for bad endpoints, a
    duplicate link ([link-exists]), or when a failure script is loaded
    ([script-active] — scripts address links by id, and patches shift
    ids). *)

val link_del : t -> src:int -> dst:int -> Wire.response
(** Remove the directed link [src -> dst].  Calls holding a circuit on
    it are dropped (counted in [stats.dropped]), link ids above it
    shift down with all per-link state (occupancy, reserves, failure
    flags, estimators) remapped, and only the affected pairs are
    recompiled.  Returns [Patched], or [Err no-such-link] /
    [script-active] as for {!link_add}. *)

val reload : t -> Wire.response
(** Recompute every [r^k] by the Theorem-1 rule at the estimators'
    current demand estimates; returns [Reloaded] with the number of
    links whose level changed. *)

val drain : t -> Wire.response
(** Stop admitting ([setup] answers [Err draining] thereafter);
    teardowns still apply, so occupancy empties. *)

val stats : t -> Wire.stats

(** {1 Inspection} *)

val graph : t -> Graph.t
val routes : t -> Arnet_paths.Route_table.t
val clock : t -> float
val active_calls : t -> int
val draining : t -> bool

val drained : t -> bool
(** Draining and no active calls — the server's exit condition. *)

val occupancy : t -> int array
(** Per-link occupancy, by link id (fresh copy). *)

val reserves : t -> int array
(** Current protection levels [r^k] (fresh copy). *)

val estimated_loads : t -> float array
(** Per-link demand estimates at the current clock (fresh copy). *)

val failed_links : t -> int list
(** Currently failed link ids, ascending. *)

val finish : t -> unit
(** Emit the closing [Run_end] frame through the observer (idempotent;
    called by the server once drained). *)

val snapshot : t -> Arnet_serial.Snapshot.t
(** The drain-time state record written through [lib/serial]. *)
