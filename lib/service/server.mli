(** The socket front end of the daemon.

    With [domains = 1] (the default when [ARNET_DOMAINS] is unset): a
    single-threaded [Unix.select] loop multiplexing any number of
    client connections over a Unix-domain or TCP listening socket.
    Commands are applied to the shared {!State.t} in the order the
    loop reads them — that serialization is the daemon's concurrency
    model (admission decisions are a total order, as in the paper's
    call-by-call semantics), so no locking exists anywhere on the
    decision path.  This is the pre-sharding daemon, byte-for-byte.

    With [domains = D > 1] the service plane shards: the calling
    domain becomes a dispatcher that accepts and deals connections
    round-robin to [D] spawned worker domains (and serves telemetry),
    while each worker runs its own select loop doing reads, parsing,
    framing and writes in parallel.  Only the decision itself —
    {!Session.handle} plus metrics/tap accounting — is serialized,
    under one mutex, a line or a whole binary batch at a time, so
    admissions remain a total order while the syscall and codec work
    scales out.  Control-plane commands (FAIL/REPAIR/RELOAD/LINK
    PATCH/DRAIN) bump an epoch counter inside that lock — an
    epoch-fenced broadcast: every decision after the bump sees the new
    configuration, none before it does — published to telemetry as
    [arnet_service_epoch].

    Any connection may upgrade from the line protocol to the {!Bwire}
    binary batch framing by sending [HELLO binary]: the [OK] comes
    back as the last line-framed response, and everything after is
    frames — one commands frame in, one replies frame out, one
    read/write syscall pair per batch.

    The loop runs until the state reports {!State.drained}: a [DRAIN]
    followed by the teardown of every active call ends the serve,
    after the final state is (optionally) snapshotted through
    {!Arnet_serial.Snapshot}. *)

type addr =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** [unix:PATH], [tcp:HOST:PORT], [HOST:PORT], or a bare port number
    (loopback). *)

val addr_to_string : addr -> string
(** Round-trips through {!addr_of_string}. *)

val max_line_bytes : int
(** The longest command line {!serve} accepts (8192 bytes).  A client
    whose line — terminated or not — exceeds it is sent
    [ERR toolong] and disconnected, so one connection can never make
    the daemon buffer unbounded input. *)

val serve :
  ?domains:int ->
  ?metrics:Service_metrics.t ->
  ?telemetry:addr ->
  ?logger:Arnet_obs.Logger.t ->
  ?snapshot:string ->
  ?on_listen:(addr -> unit) ->
  ?tap:(Wire.command -> Wire.response -> unit) ->
  state:State.t ->
  addr ->
  unit
(** Bind, listen, serve until drained.  [snapshot] is the path the
    drain-time {!State.snapshot} is written to.  [on_listen] fires
    once the socket is accepting (the bench and tests use it to
    release the client).  A pre-existing Unix-socket path is replaced.

    [domains] (default {!Arnet_pool.of_env}, i.e. [ARNET_DOMAINS] or
    1) selects the single-domain loop or the sharded one — see the
    module header.  [tap] observes every decided (command, response)
    pair in decision order, called inside the serialization discipline
    — the merged-order equivalence test records through it.
    @raise Invalid_argument when [domains < 1].

    [telemetry] opens a second listening socket in the same select
    loop speaking one-shot HTTP/1.0: [GET /metrics] renders the
    {!Service_metrics} registry live ({!Service_metrics.scrape}),
    [GET /healthz] answers [ok], [GET /statz] the
    {!Service_metrics.statz} JSON.  A malformed request line is
    answered [400] and the connection closed; the command loop never
    notices.  When [telemetry] is given without [metrics], a private
    {!Service_metrics.t} is created so the endpoint always serves.

    With [metrics] present every command is timed on a monotonized
    clock into [arn_command_latency_seconds{verb,verdict}], and
    commands crossing the slow threshold enter the slow log and are
    warned through [logger] (default: silent).  Without [metrics] the
    command path is exactly the pre-telemetry one — no clock reads.
    @raise Unix.Unix_error when an address cannot be bound. *)

val connect : ?retry_for:float -> addr -> in_channel * out_channel
(** Client side: connect to a serving daemon, retrying refused
    connections for [retry_for] seconds (default 0: one attempt) to
    absorb server start-up.  The channels are buffered; callers flush
    after each command line.
    @raise Unix.Unix_error when the connection cannot be made. *)

val request : in_channel -> out_channel -> Wire.command -> Wire.response
(** Send one command and read its response line.
    @raise End_of_file when the server closes early, [Failure] on an
    unparseable response. *)
