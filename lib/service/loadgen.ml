open Arnet_traffic
open Arnet_sim
module J = Arnet_obs.Jsonu

type result = {
  calls : int;
  accepted : int;
  blocked : int;
  errors : int;
  teardowns : int;
  requests : int;
  wall_s : float;
  in_flight_max : int;
  latency_buckets : (float * int) list;
  latency_sum : float;
  latency_count : int;
}

let latency_bounds =
  Arnet_obs.Metrics.log_buckets ~lo:1e-6 ~hi:1.0 ~per_decade:3

(* enough virtual time to cover [calls] arrivals at the matrix's
   aggregate rate; regenerated (same seed, fresh stream) with a doubled
   window in the rare case the Poisson draw came up short *)
let generate_calls ~seed ~calls matrix =
  let total = Matrix.total matrix in
  if total <= 0. then invalid_arg "Loadgen.run: matrix offers no traffic";
  let rec attempt duration =
    let rng = Rng.create ~seed in
    let trace = Trace.generate ~rng ~duration matrix in
    if Trace.call_count trace >= calls then
      Array.sub trace.Trace.calls 0 calls
    else attempt (2. *. duration)
  in
  attempt ((float_of_int calls /. total *. 1.2) +. 1.)

type per_conn = {
  mutable c_accepted : int;
  mutable c_blocked : int;
  mutable c_errors : int;
  mutable c_teardowns : int;
  histogram : Arnet_obs.Metrics.histogram;
}

(* requests written but not yet answered, summed over every connection;
   [peak] is the high-water mark the result reports *)
type inflight = { cur : int Atomic.t; peak : int Atomic.t }

let inflight_enter fl k =
  let now = k + Atomic.fetch_and_add fl.cur k in
  let rec bump () =
    let old = Atomic.get fl.peak in
    if now > old && not (Atomic.compare_and_set fl.peak old now) then bump ()
  in
  bump ()

let inflight_exit fl k = ignore (Atomic.fetch_and_add fl.cur (-k) : int)

let drive ~timestamps ~retry_for ~inflight ~addr (calls : Trace.call array) =
  let registry = Arnet_obs.Metrics.create () in
  let acc =
    { c_accepted = 0;
      c_blocked = 0;
      c_errors = 0;
      c_teardowns = 0;
      histogram =
        Arnet_obs.Metrics.histogram registry ~buckets:latency_bounds
          "arn_load_request_latency_seconds" }
  in
  let ic, oc = Server.connect ~retry_for addr in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Server.request ic oc Wire.Quit : Wire.response)
       with End_of_file | Failure _ | Sys_error _ -> ());
      try close_in ic with Sys_error _ -> ())
    (fun () ->
      let departures = Event_queue.create () in
      let timed_request cmd =
        inflight_enter inflight 1;
        let t0 = Unix.gettimeofday () in
        let response = Server.request ic oc cmd in
        Arnet_obs.Metrics.observe acc.histogram (Unix.gettimeofday () -. t0);
        inflight_exit inflight 1;
        response
      in
      let teardown id =
        (match timed_request (Wire.Teardown { id }) with
        | Wire.Done -> ()
        | _ -> acc.c_errors <- acc.c_errors + 1);
        acc.c_teardowns <- acc.c_teardowns + 1
      in
      let setup (call : Trace.call) =
        let time = if timestamps then Some call.Trace.time else None in
        match
          timed_request
            (Wire.Setup { src = call.Trace.src; dst = call.Trace.dst; time })
        with
        | Wire.Admitted { id; _ } ->
          acc.c_accepted <- acc.c_accepted + 1;
          Event_queue.push departures
            ~time:(call.Trace.time +. call.Trace.holding)
            id
        | Wire.Blocked -> acc.c_blocked <- acc.c_blocked + 1
        | _ -> acc.c_errors <- acc.c_errors + 1
      in
      Array.iter
        (fun (call : Trace.call) ->
          (* engine order: departures at or before the arrival instant
             release their circuits first *)
          Event_queue.pop_until departures ~time:call.Trace.time
            ~f:(fun _ id -> teardown id);
          setup call)
        calls;
      let rec flush_departures () =
        match Event_queue.pop departures with
        | Some (_, id) ->
          teardown id;
          flush_departures ()
        | None -> ()
      in
      flush_departures ());
  acc

(* one reply frame off the (buffered) channel: length word, payload,
   decode.  Channel buffering means one [read] syscall typically covers
   the whole frame — the client-side half of the batch amortization *)
let read_reply_frame ic =
  let hdr = Bytes.create 4 in
  really_input ic hdr 0 4;
  let n = Int32.to_int (Bytes.get_int32_be hdr 0) land 0xFFFFFFFF in
  if n > Bwire.max_frame_payload then
    failwith
      (Printf.sprintf "Loadgen: reply frame declares %d bytes (limit %d)" n
         Bwire.max_frame_payload);
  let payload = Bytes.create n in
  really_input ic payload 0 n;
  match Bwire.decode (Bytes.to_string hdr ^ Bytes.to_string payload) with
  | Ok (Bwire.Replies replies, _) -> replies
  | Ok (Bwire.Commands _, _) -> failwith "Loadgen: command frame from daemon"
  | Error e ->
    failwith ("Loadgen: bad reply frame: " ^ Bwire.error_to_string e)

(* the same event walk as [drive], pipelined: commands accumulate into
   a batch of up to [batch], shipped as one Bwire frame and answered by
   one reply frame — one write/read round per batch instead of per
   request.  Departures can only be scheduled once their SETUP's
   verdict is read, so a teardown never rides in the same frame as (or
   an earlier frame than) its own setup; each request's recorded
   latency is its batch's round-trip time *)
let drive_binary ~timestamps ~retry_for ~batch ~inflight ~addr
    (calls : Trace.call array) =
  let registry = Arnet_obs.Metrics.create () in
  let acc =
    { c_accepted = 0;
      c_blocked = 0;
      c_errors = 0;
      c_teardowns = 0;
      histogram =
        Arnet_obs.Metrics.histogram registry ~buckets:latency_bounds
          "arn_load_request_latency_seconds" }
  in
  let ic, oc = Server.connect ~retry_for addr in
  Fun.protect
    (* no QUIT in binary mode: closing the socket is the goodbye *)
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () ->
      (match Server.request ic oc (Wire.Hello { mode = "binary" }) with
      | Wire.Done -> ()
      | resp ->
        failwith
          ("Loadgen: HELLO binary refused: " ^ Wire.print_response resp));
      let departures = Event_queue.create () in
      (* pending batch, newest first, with the metadata the verdict
         needs: the originating call for a SETUP, nothing for a
         TEARDOWN *)
      let pending = ref [] in
      let pending_n = ref 0 in
      let flush_batch () =
        if !pending_n > 0 then begin
          let items = List.rev !pending in
          let k = !pending_n in
          pending := [];
          pending_n := 0;
          inflight_enter inflight k;
          let t0 = Unix.gettimeofday () in
          output_string oc (Bwire.encode_commands (List.map fst items));
          flush oc;
          let replies = read_reply_frame ic in
          let rtt = Unix.gettimeofday () -. t0 in
          inflight_exit inflight k;
          if List.length replies <> k then
            failwith
              (Printf.sprintf "Loadgen: %d commands answered by %d verdicts"
                 k (List.length replies));
          List.iter2
            (fun (_, meta) resp ->
              Arnet_obs.Metrics.observe acc.histogram rtt;
              match (meta, resp) with
              | Some (call : Trace.call), Wire.Admitted { id; _ } ->
                acc.c_accepted <- acc.c_accepted + 1;
                Event_queue.push departures
                  ~time:(call.Trace.time +. call.Trace.holding)
                  id
              | Some _, Wire.Blocked -> acc.c_blocked <- acc.c_blocked + 1
              | Some _, _ -> acc.c_errors <- acc.c_errors + 1
              | None, Wire.Done -> acc.c_teardowns <- acc.c_teardowns + 1
              | None, _ ->
                acc.c_errors <- acc.c_errors + 1;
                acc.c_teardowns <- acc.c_teardowns + 1)
            items replies
        end
      in
      let push_cmd cmd meta =
        pending := (cmd, meta) :: !pending;
        incr pending_n;
        if !pending_n >= batch then flush_batch ()
      in
      (* departures due by [time]: a flush inside the loop may admit
         setups whose departures are also due, so drain to fixpoint *)
      let rec release time =
        let due = ref [] in
        Event_queue.pop_until departures ~time ~f:(fun _ id ->
            due := id :: !due);
        match List.rev !due with
        | [] -> ()
        | ids ->
          List.iter (fun id -> push_cmd (Wire.Teardown { id }) None) ids;
          release time
      in
      Array.iter
        (fun (call : Trace.call) ->
          release call.Trace.time;
          let time = if timestamps then Some call.Trace.time else None in
          push_cmd
            (Wire.Setup { src = call.Trace.src; dst = call.Trace.dst; time })
            (Some call))
        calls;
      flush_batch ();
      let rec drain () =
        match Event_queue.pop departures with
        | Some (_, id) ->
          push_cmd (Wire.Teardown { id }) None;
          drain ()
        | None -> ()
      in
      drain ();
      flush_batch ());
  acc

let run ?(connections = 1) ?(timestamps = true) ?(retry_for = 5.)
    ?(binary = false) ?(batch = 1) ~seed ~calls ~matrix ~addr () =
  if calls < 1 then invalid_arg "Loadgen.run: calls < 1";
  if connections < 1 then invalid_arg "Loadgen.run: connections < 1";
  if batch < 1 || batch > Bwire.max_batch then
    invalid_arg
      (Printf.sprintf "Loadgen.run: batch outside 1..%d" Bwire.max_batch);
  if batch > 1 && not binary then
    invalid_arg "Loadgen.run: batch > 1 needs binary:true";
  let workload = generate_calls ~seed ~calls matrix in
  let inflight = { cur = Atomic.make 0; peak = Atomic.make 0 } in
  let drive_one shard =
    if binary then
      drive_binary ~timestamps ~retry_for ~batch ~inflight ~addr shard
    else drive ~timestamps ~retry_for ~inflight ~addr shard
  in
  let shards =
    if connections = 1 then [ workload ]
    else
      List.init connections (fun c ->
          Array.of_seq
            (Seq.filter_map
               (fun i -> if i mod connections = c then Some workload.(i) else None)
               (Seq.init calls Fun.id)))
      |> List.filter (fun shard -> Array.length shard > 0)
  in
  let t0 = Unix.gettimeofday () in
  let results =
    match shards with
    | [ only ] -> [ drive_one only ]
    | shards ->
      (* threads cannot return values: collect per-connection results
         (or the first failure) through slots *)
      let slots = Array.make (List.length shards) None in
      let threads =
        List.mapi
          (fun i shard ->
            Thread.create
              (fun () ->
                slots.(i) <-
                  Some (try Ok (drive_one shard) with e -> Error e))
              ())
          shards
      in
      List.iter Thread.join threads;
      Array.to_list slots
      |> List.map (function
           | Some (Ok r) -> r
           | Some (Error e) -> raise e
           | None -> failwith "Loadgen.run: connection thread died silently")
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let accepted = sum (fun r -> r.c_accepted)
  and blocked = sum (fun r -> r.c_blocked)
  and errors = sum (fun r -> r.c_errors)
  and teardowns = sum (fun r -> r.c_teardowns) in
  (* bucket bounds are shared, so cumulative counts merge by addition *)
  let merged_buckets =
    List.fold_left
      (fun acc r ->
        let buckets = Arnet_obs.Metrics.histogram_buckets r.histogram in
        match acc with
        | [] -> buckets
        | acc ->
          List.map2
            (fun (bound, n) (_, n') -> (bound, n + n'))
            acc buckets)
      [] results
  in
  let latency_sum =
    List.fold_left
      (fun a r -> a +. Arnet_obs.Metrics.histogram_sum r.histogram)
      0. results
  in
  let latency_count =
    List.fold_left
      (fun a r -> a + Arnet_obs.Metrics.histogram_count r.histogram)
      0 results
  in
  { calls;
    accepted;
    blocked;
    errors;
    teardowns;
    requests = calls + teardowns;
    wall_s;
    in_flight_max = Atomic.get inflight.peak;
    latency_buckets = merged_buckets;
    latency_sum;
    latency_count }

let requests_per_second r =
  if r.wall_s > 0. then float_of_int r.requests /. r.wall_s else 0.

let mean_latency r =
  if r.latency_count = 0 then 0.
  else r.latency_sum /. float_of_int r.latency_count

let quantile r q =
  if q <= 0. || q > 1. then invalid_arg "Loadgen.quantile: q outside (0, 1]";
  match r.latency_buckets with
  | [] -> 0.
  | buckets ->
    let total =
      match List.rev buckets with (_, n) :: _ -> n | [] -> 0
    in
    if total = 0 then 0.
    else begin
      let target =
        int_of_float (ceil (q *. float_of_int total))
      in
      let rec find last_finite = function
        | [] -> last_finite
        | (bound, n) :: rest ->
          if n >= target then
            if Float.is_finite bound then bound else last_finite
          else
            find (if Float.is_finite bound then bound else last_finite) rest
      in
      find 0. buckets
    end

let to_json r =
  J.Obj
    [ ("calls", J.Int r.calls);
      ("accepted", J.Int r.accepted);
      ("blocked", J.Int r.blocked);
      ("errors", J.Int r.errors);
      ("teardowns", J.Int r.teardowns);
      ("requests", J.Int r.requests);
      ("wall_s", J.Float r.wall_s);
      ("requests_per_s", J.Float (requests_per_second r));
      ("requests_in_flight", J.Int r.in_flight_max);
      ("blocking",
       J.Float
         (if r.calls > 0 then float_of_int r.blocked /. float_of_int r.calls
          else 0.));
      ("latency_mean_s", J.Float (mean_latency r));
      ("latency_p50_s", J.Float (quantile r 0.5));
      ("latency_p95_s", J.Float (quantile r 0.95));
      ("latency_p99_s", J.Float (quantile r 0.99));
      ("latency_max_s", J.Float (quantile r 1.0)) ]

let print ppf r =
  Format.fprintf ppf "calls      %d (accepted %d, blocked %d, errors %d)@."
    r.calls r.accepted r.blocked r.errors;
  Format.fprintf ppf "blocking   %.4f@."
    (if r.calls > 0 then float_of_int r.blocked /. float_of_int r.calls
     else 0.);
  Format.fprintf ppf "requests   %d in %.2fs  (%.0f req/s, %d in flight max)@."
    r.requests r.wall_s (requests_per_second r) r.in_flight_max;
  Format.fprintf ppf
    "latency    mean %.1f us   p50 %.1f us   p95 %.1f us   p99 %.1f us   \
     max %.1f us@."
    (1e6 *. mean_latency r)
    (1e6 *. quantile r 0.5)
    (1e6 *. quantile r 0.95)
    (1e6 *. quantile r 0.99)
    (1e6 *. quantile r 1.0)
