(** The daemon's line-oriented wire protocol.

    One command per line from the client, one response line back — the
    shape of the classic text control protocols (SMTP, redis inline)
    so a session is drivable from [nc].  The codec is pure: printing
    then parsing any command or response yields the original value
    (the qcheck round-trip property in [test/test_service.ml]), and
    malformed input parses to a typed error, never an exception.

    Grammar (one space between tokens, LF-terminated):

    {v
    SETUP <src> <dst> [<time>]      admit a call src -> dst (virtual time)
    TEARDOWN <id>                   release an admitted call
    FAIL <link>                     fail a link by id (drops calls on it)
    REPAIR <link>                   bring a failed link back
    RELOAD                          recompute protection levels r^k now
    LINK ADD <src> <dst> <cap>      add a link and patch the routes
    LINK DEL <src> <dst>            remove a link and patch the routes
    STATS                           one-line state summary
    DRAIN                           stop admitting; exit when empty
    QUIT                            close this connection
    HELLO <mode>                    negotiate the framing (line | binary)

    ADMITTED <id> <n0-n1-...-nk>    call admitted on that node path
    BLOCKED                         call refused (no admissible path)
    OK                              generic success
    RELOADED <changed>              r^k recomputed; links that changed
    PATCHED <recomputed>            routes patched; pairs recomputed
    STATS accepted=..blocked=..     the summary (see {!stats})
    ERR <code> <detail>             typed error, code is one token
    v} *)

type command =
  | Setup of { src : int; dst : int; time : float option }
      (** [time] is the call's virtual arrival instant; omitted means
          "now" (the daemon's clock does not advance). *)
  | Teardown of { id : int }
  | Fail of { link : int }
  | Repair of { link : int }
  | Reload
  | Link_add of { src : int; dst : int; capacity : int }
      (** Add one directed link and incrementally patch the route
          table ({!Arnet_routes.Route_table.patch}); the new link gets
          the next free id. *)
  | Link_del of { src : int; dst : int }
      (** Remove the directed link [src -> dst]: active calls holding
          it are dropped, link ids above it shift down, and only the
          affected pairs are recompiled. *)
  | Stats
  | Drain
  | Quit
  | Hello of { mode : string }
      (** Framing negotiation, handled by the transport (the server
          loop), never by {!Session}: [HELLO binary] answers [OK] and
          switches the connection to the {!Bwire} batch framing;
          [HELLO line] answers [OK] and is a no-op.  [mode] is one
          verbatim token (matched case-insensitively by the server). *)

type stats = {
  accepted : int;  (** calls admitted since start *)
  blocked : int;  (** calls refused *)
  torn_down : int;  (** calls released by TEARDOWN *)
  dropped : int;  (** calls killed by link failures *)
  failovers : int;  (** calls admitted around a failed primary path *)
  active : int;  (** calls currently holding circuits *)
  reloads : int;  (** protection-level recomputations *)
  failed : int list;  (** currently failed link ids, ascending *)
  draining : bool;
}

type response =
  | Admitted of { id : int; path : int list }
      (** [path] is the node sequence, at least two nodes. *)
  | Blocked
  | Done
  | Reloaded of { changed : int }
  | Patched of { recomputed : int }
      (** Route table patched in place; [recomputed] counts the
          src/dst pairs whose route sets were rebuilt. *)
  | Stats_reply of stats
  | Err of { code : string; detail : string }
      (** [code] is a single lowercase token ([bad-command],
          [bad-argument], [unknown-call], [no-such-link], [link-exists],
          [script-active], [draining]); [detail] is free text without
          newlines. *)

val print_command : command -> string
(** Without the trailing newline.
    @raise Invalid_argument on a non-finite or negative [Setup] time,
    or a {!Hello} mode that is empty or not a single token. *)

val parse_command : string -> (command, string * string) result
(** [Error (code, detail)] mirrors the payload of {!Err}.

    Internally a non-allocating scanner handles well-formed [SETUP]
    and [TEARDOWN] lines (the load path) and defers everything else —
    other verbs, exotic integer forms, embedded tabs — to
    {!parse_command_general}; the two agree on every input. *)

val parse_command_general : string -> (command, string * string) result
(** The token-splitting reference parser {!parse_command} is checked
    against (the equivalence qcheck in [test/test_service.ml]). *)

val print_response : response -> string
(** @raise Invalid_argument on an {!Admitted} path shorter than two
    nodes, an {!Err} code containing spaces, or a detail containing a
    newline. *)

val parse_response : string -> (response, string) result

val equal_command : command -> command -> bool
val equal_response : response -> response -> bool

val pp_command : Format.formatter -> command -> unit
val pp_response : Format.formatter -> response -> unit
