type command =
  | Setup of { src : int; dst : int; time : float option }
  | Teardown of { id : int }
  | Fail of { link : int }
  | Repair of { link : int }
  | Reload
  | Link_add of { src : int; dst : int; capacity : int }
  | Link_del of { src : int; dst : int }
  | Stats
  | Drain
  | Quit
  | Hello of { mode : string }

type stats = {
  accepted : int;
  blocked : int;
  torn_down : int;
  dropped : int;
  failovers : int;
  active : int;
  reloads : int;
  failed : int list;
  draining : bool;
}

type response =
  | Admitted of { id : int; path : int list }
  | Blocked
  | Done
  | Reloaded of { changed : int }
  | Patched of { recomputed : int }
  | Stats_reply of stats
  | Err of { code : string; detail : string }

(* ------------------------------------------------------------------ *)
(* printing *)

(* shortest decimal that parses back to the same float (17 significant
   digits always suffice for a binary64) *)
let float_to_wire f =
  if not (Float.is_finite f) then
    invalid_arg "Wire.float_to_wire: non-finite time";
  let shortest = Printf.sprintf "%.12g" f in
  if float_of_string shortest = f then shortest else Printf.sprintf "%.17g" f

let print_command = function
  | Setup { src; dst; time = None } -> Printf.sprintf "SETUP %d %d" src dst
  | Setup { src; dst; time = Some t } ->
    if not (Float.is_finite t) || t < 0. then
      invalid_arg "Wire.print_command: SETUP time must be finite and >= 0";
    Printf.sprintf "SETUP %d %d %s" src dst (float_to_wire t)
  | Teardown { id } -> Printf.sprintf "TEARDOWN %d" id
  | Fail { link } -> Printf.sprintf "FAIL %d" link
  | Repair { link } -> Printf.sprintf "REPAIR %d" link
  | Reload -> "RELOAD"
  | Link_add { src; dst; capacity } ->
    Printf.sprintf "LINK ADD %d %d %d" src dst capacity
  | Link_del { src; dst } -> Printf.sprintf "LINK DEL %d %d" src dst
  | Stats -> "STATS"
  | Drain -> "DRAIN"
  | Quit -> "QUIT"
  | Hello { mode } ->
    if mode = "" || String.exists (fun c -> c = ' ' || c = '\t') mode then
      invalid_arg "Wire.print_command: HELLO mode must be one nonempty token";
    "HELLO " ^ mode

let print_path path =
  if List.length path < 2 then
    invalid_arg "Wire.print_response: ADMITTED path needs >= 2 nodes";
  String.concat "-" (List.map string_of_int path)

let print_stats s =
  Printf.sprintf
    "STATS accepted=%d blocked=%d torn_down=%d dropped=%d failovers=%d \
     active=%d reloads=%d draining=%d failed=%s"
    s.accepted s.blocked s.torn_down s.dropped s.failovers s.active s.reloads
    (if s.draining then 1 else 0)
    (String.concat "," (List.map string_of_int s.failed))

let print_response = function
  | Admitted { id; path } -> Printf.sprintf "ADMITTED %d %s" id (print_path path)
  | Blocked -> "BLOCKED"
  | Done -> "OK"
  | Reloaded { changed } -> Printf.sprintf "RELOADED %d" changed
  | Patched { recomputed } -> Printf.sprintf "PATCHED %d" recomputed
  | Stats_reply s -> print_stats s
  | Err { code; detail } ->
    if code = "" || String.contains code ' ' then
      invalid_arg "Wire.print_response: ERR code must be one nonempty token";
    if String.contains detail '\n' || String.contains detail '\r' then
      invalid_arg "Wire.print_response: ERR detail must be one line";
    Printf.sprintf "ERR %s %s" code detail

(* ------------------------------------------------------------------ *)
(* parsing *)

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun t -> t <> "")

let int_arg name s k =
  match int_of_string_opt s with
  | Some n -> k n
  | None -> Error ("bad-argument", Printf.sprintf "%s must be an integer" name)

let time_arg s k =
  match float_of_string_opt s with
  | Some t when Float.is_finite t && t >= 0. -> k t
  | Some _ | None ->
    Error ("bad-argument", "time must be a finite nonnegative number")

let parse_command_general line =
  match tokens line with
  | [] -> Error ("bad-command", "empty command line")
  | verb :: args -> (
    match (String.uppercase_ascii verb, args) with
    | "SETUP", [ a; b ] ->
      int_arg "src" a (fun src ->
          int_arg "dst" b (fun dst -> Ok (Setup { src; dst; time = None })))
    | "SETUP", [ a; b; t ] ->
      int_arg "src" a (fun src ->
          int_arg "dst" b (fun dst ->
              time_arg t (fun time -> Ok (Setup { src; dst; time = Some time }))))
    | "SETUP", _ -> Error ("bad-argument", "usage: SETUP <src> <dst> [<time>]")
    | "TEARDOWN", [ a ] -> int_arg "id" a (fun id -> Ok (Teardown { id }))
    | "TEARDOWN", _ -> Error ("bad-argument", "usage: TEARDOWN <id>")
    | "FAIL", [ a ] -> int_arg "link" a (fun link -> Ok (Fail { link }))
    | "FAIL", _ -> Error ("bad-argument", "usage: FAIL <link>")
    | "REPAIR", [ a ] -> int_arg "link" a (fun link -> Ok (Repair { link }))
    | "REPAIR", _ -> Error ("bad-argument", "usage: REPAIR <link>")
    | "RELOAD", [] -> Ok Reload
    | "RELOAD", _ -> Error ("bad-argument", "RELOAD takes no argument")
    | "LINK", sub :: rest -> (
      match (String.uppercase_ascii sub, rest) with
      | "ADD", [ a; b; c ] ->
        int_arg "src" a (fun src ->
            int_arg "dst" b (fun dst ->
                int_arg "capacity" c (fun capacity ->
                    Ok (Link_add { src; dst; capacity }))))
      | "ADD", _ ->
        Error ("bad-argument", "usage: LINK ADD <src> <dst> <capacity>")
      | "DEL", [ a; b ] ->
        int_arg "src" a (fun src ->
            int_arg "dst" b (fun dst -> Ok (Link_del { src; dst })))
      | "DEL", _ -> Error ("bad-argument", "usage: LINK DEL <src> <dst>")
      | _ -> Error ("bad-argument", "usage: LINK ADD|DEL ..."))
    | "LINK", [] -> Error ("bad-argument", "usage: LINK ADD|DEL ...")
    | "STATS", [] -> Ok Stats
    | "STATS", _ -> Error ("bad-argument", "STATS takes no argument")
    | "DRAIN", [] -> Ok Drain
    | "DRAIN", _ -> Error ("bad-argument", "DRAIN takes no argument")
    | "QUIT", [] -> Ok Quit
    | "QUIT", _ -> Error ("bad-argument", "QUIT takes no argument")
    | "HELLO", [ mode ] -> Ok (Hello { mode })
    | "HELLO", _ -> Error ("bad-argument", "usage: HELLO <mode>")
    | _ -> Error ("bad-command", Printf.sprintf "unknown command %S" verb))

(* Fast path for the two verbs the load path is made of.  The general
   parser above allocates a token list per line; this scanner walks the
   string with integer indices only, so a well-formed SETUP/TEARDOWN
   costs no tokenization garbage (a timed SETUP keeps one substring for
   the float conversion).  Any deviation from the strict shape —
   unexpected verb, sign/hex/underscore integer forms, tabs, trailing
   tokens, > 18 digits — falls back to the general parser, which keeps
   the two byte-for-byte equivalent (the qcheck property in
   test/test_service.ml). *)
exception Slow

let parse_command line =
  let n = String.length line in
  let is_digit c = c >= '0' && c <= '9' in
  let rec skip_sp i = if i < n && line.[i] = ' ' then skip_sp (i + 1) else i in
  let rec int_end j = if j < n && is_digit line.[j] then int_end (j + 1) else j in
  let rec int_value acc i j =
    if i = j then acc
    else int_value ((acc * 10) + (Char.code line.[i] - 48)) (i + 1) j
  in
  (* a decimal run of 1..18 digits ending at a space or end of line:
     short enough to never overflow a 63-bit int *)
  let int_token i =
    let j = int_end i in
    if j = i || j - i > 18 || (j < n && line.[j] <> ' ') then raise Slow;
    j
  in
  let verb_is kw i =
    let k = String.length kw in
    i + k < n
    && line.[i + k] = ' '
    &&
    let rec eq j =
      j = k || (Char.uppercase_ascii line.[i + j] = kw.[j] && eq (j + 1))
    in
    eq 0
  in
  match
    let i = skip_sp 0 in
    if verb_is "SETUP" i then begin
      let a0 = skip_sp (i + 5) in
      let a1 = int_token a0 in
      let b0 = skip_sp a1 in
      let b1 = int_token b0 in
      let src = int_value 0 a0 a1 and dst = int_value 0 b0 b1 in
      let t0 = skip_sp b1 in
      if t0 = n then Ok (Setup { src; dst; time = None })
      else begin
        let rec tok_end j =
          if j < n && line.[j] <> ' ' then tok_end (j + 1) else j
        in
        let t1 = tok_end t0 in
        if skip_sp t1 <> n then raise Slow;
        (* the general parser trims tabs/CR/LF at the ends before
           tokenizing; a time "token" holding one is really trailing
           whitespace, so defer rather than mis-parse it *)
        for j = t0 to t1 - 1 do
          match line.[j] with
          | '\t' | '\r' | '\n' | '\012' -> raise Slow
          | _ -> ()
        done;
        time_arg
          (String.sub line t0 (t1 - t0))
          (fun time -> Ok (Setup { src; dst; time = Some time }))
      end
    end
    else if verb_is "TEARDOWN" i then begin
      let a0 = skip_sp (i + 8) in
      let a1 = int_token a0 in
      if skip_sp a1 <> n then raise Slow;
      Ok (Teardown { id = int_value 0 a0 a1 })
    end
    else raise Slow
  with
  | result -> result
  | exception Slow -> parse_command_general line

let parse_path s =
  let parts = String.split_on_char '-' s in
  let rec ints acc = function
    | [] -> Some (List.rev acc)
    | p :: rest -> (
      match int_of_string_opt p with
      | Some n -> ints (n :: acc) rest
      | None -> None)
  in
  match ints [] parts with
  | Some (_ :: _ :: _ as nodes) -> Some nodes
  | Some _ | None -> None

let parse_stats fields =
  let lookup key =
    List.assoc_opt key
      (List.filter_map
         (fun f ->
           match String.index_opt f '=' with
           | Some i ->
             Some
               ( String.sub f 0 i,
                 String.sub f (i + 1) (String.length f - i - 1) )
           | None -> None)
         fields)
  in
  let int_field key k =
    match Option.bind (lookup key) int_of_string_opt with
    | Some n -> k n
    | None -> Error (Printf.sprintf "STATS is missing integer field %s" key)
  in
  int_field "accepted" (fun accepted ->
      int_field "blocked" (fun blocked ->
          int_field "torn_down" (fun torn_down ->
              int_field "dropped" (fun dropped ->
                  int_field "failovers" (fun failovers ->
                      int_field "active" (fun active ->
                          int_field "reloads" (fun reloads ->
                              int_field "draining" (fun draining ->
                                  match lookup "failed" with
                                  | None ->
                                    Error "STATS is missing field failed"
                                  | Some "" ->
                                    Ok
                                      (Stats_reply
                                         { accepted; blocked; torn_down;
                                           dropped; failovers; active;
                                           reloads; failed = [];
                                           draining = draining <> 0 })
                                  | Some s -> (
                                    let parts = String.split_on_char ',' s in
                                    match
                                      List.fold_right
                                        (fun p acc ->
                                          match (acc, int_of_string_opt p)
                                          with
                                          | Some acc, Some n -> Some (n :: acc)
                                          | _ -> None)
                                        parts (Some [])
                                    with
                                    | Some failed ->
                                      Ok
                                        (Stats_reply
                                           { accepted; blocked; torn_down;
                                             dropped; failovers; active;
                                             reloads; failed;
                                             draining = draining <> 0 })
                                    | None ->
                                      Error "STATS failed= must be link ids")))))))))

let parse_response line =
  let line = String.trim line in
  match tokens line with
  | [] -> Error "empty response line"
  | verb :: args -> (
    match (verb, args) with
    | "ADMITTED", [ id; path ] -> (
      match (int_of_string_opt id, parse_path path) with
      | Some id, Some path -> Ok (Admitted { id; path })
      | None, _ -> Error "ADMITTED id must be an integer"
      | _, None -> Error "ADMITTED path must be >= 2 dash-separated nodes")
    | "ADMITTED", _ -> Error "usage: ADMITTED <id> <path>"
    | "BLOCKED", [] -> Ok Blocked
    | "OK", [] -> Ok Done
    | "RELOADED", [ n ] -> (
      match int_of_string_opt n with
      | Some changed -> Ok (Reloaded { changed })
      | None -> Error "RELOADED count must be an integer")
    | "PATCHED", [ n ] -> (
      match int_of_string_opt n with
      | Some recomputed -> Ok (Patched { recomputed })
      | None -> Error "PATCHED count must be an integer")
    | "STATS", fields -> parse_stats fields
    | "ERR", code :: _ ->
      (* detail = everything after the first space following the code
         token, verbatim (inner spacing preserved) *)
      let detail =
        let n = String.length line in
        let skip_spaces i =
          let i = ref i in
          while !i < n && line.[!i] = ' ' do incr i done;
          !i
        in
        let skip_token i =
          let i = ref i in
          while !i < n && line.[!i] <> ' ' do incr i done;
          !i
        in
        let after_code = skip_token (skip_spaces (skip_token 0)) in
        if after_code >= n then "" else String.sub line (after_code + 1) (n - after_code - 1)
      in
      Ok (Err { code; detail })
    | "ERR", [] -> Error "ERR needs a code"
    | _ -> Error (Printf.sprintf "unknown response %S" verb))

(* ------------------------------------------------------------------ *)

let equal_command a b =
  match (a, b) with
  | Setup a, Setup b ->
    a.src = b.src && a.dst = b.dst
    && (match (a.time, b.time) with
       | None, None -> true
       | Some x, Some y -> Float.equal x y
       | _ -> false)
  | Teardown a, Teardown b -> a.id = b.id
  | Fail a, Fail b -> a.link = b.link
  | Repair a, Repair b -> a.link = b.link
  | Reload, Reload | Stats, Stats | Drain, Drain | Quit, Quit -> true
  | Hello a, Hello b -> a.mode = b.mode
  | Link_add a, Link_add b ->
    a.src = b.src && a.dst = b.dst && a.capacity = b.capacity
  | Link_del a, Link_del b -> a.src = b.src && a.dst = b.dst
  | _ -> false

let equal_response a b =
  match (a, b) with
  | Admitted a, Admitted b -> a.id = b.id && a.path = b.path
  | Blocked, Blocked | Done, Done -> true
  | Reloaded a, Reloaded b -> a.changed = b.changed
  | Patched a, Patched b -> a.recomputed = b.recomputed
  | Stats_reply a, Stats_reply b -> a = b
  | Err a, Err b -> a.code = b.code && a.detail = b.detail
  | _ -> false

let pp_command ppf c = Format.pp_print_string ppf (print_command c)
let pp_response ppf r = Format.pp_print_string ppf (print_response r)
