type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let invalid = Printf.sprintf "invalid address %S (unix:PATH, tcp:HOST:PORT, HOST:PORT or PORT)" s in
  match String.index_opt s ':' with
  | None -> (
    match int_of_string_opt s with
    | Some port when port > 0 && port < 65536 -> Ok (Tcp ("127.0.0.1", port))
    | _ -> Error invalid)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then Error invalid else Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error invalid
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
        | _ -> Error invalid))
    | host -> (
      match int_of_string_opt rest with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ -> Error invalid))

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))

let sockaddr_of = function
  | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port))

(* ------------------------------------------------------------------ *)
(* client side *)

let connect ?(retry_for = 0.) addr =
  let domain, sockaddr = sockaddr_of addr in
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      ignore (Unix.select [] [] [] 0.05);
      attempt ()
    | exception e ->
      Unix.close fd;
      raise e
  in
  let fd = attempt () in
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let request ic oc cmd =
  output_string oc (Wire.print_command cmd);
  output_char oc '\n';
  flush oc;
  let line = input_line ic in
  match Wire.parse_response line with
  | Ok r -> r
  | Error msg -> failwith (Printf.sprintf "bad response %S: %s" line msg)

(* ------------------------------------------------------------------ *)
(* server side *)

type proto =
  | Command  (** the SETUP/TEARDOWN line protocol *)
  | Http  (** a telemetry connection: one GET, one response, close *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read but not yet framed into a line *)
  proto : proto;
}

(* the longest legal command line; generous next to real commands
   (SETUP is ~40 bytes) but a hard ceiling on what one connection can
   make the daemon buffer *)
let max_line_bytes = 8192

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* complete lines accumulated in [buf]; the tail stays buffered *)
let drain_lines buf =
  let data = Buffer.contents buf in
  Buffer.clear buf;
  let rec split acc start =
    match String.index_from_opt data start '\n' with
    | Some i ->
      let line = String.sub data start (i - start) in
      let line =
        (* tolerate CRLF clients (telnet, nc -C) *)
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      split (line :: acc) (i + 1)
    | None ->
      Buffer.add_substring buf data start (String.length data - start);
      List.rev acc
  in
  split [] 0

(* bind-and-listen with the unix-path replace semantics; [cleanup]
   closes and unlinks, safe to call twice *)
let bind_listener addr =
  let domain, sockaddr = sockaddr_of addr in
  (match addr with
  | Unix_sock path when Sys.file_exists path -> Unix.unlink path
  | _ -> ());
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    match addr with
    | Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ()
  in
  (try
     (match addr with
     | Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind listener sockaddr;
     Unix.listen listener 64
   with e ->
     cleanup ();
     raise e);
  (listener, cleanup)

(* a complete HTTP request head: headers (if any) ended by a blank line *)
let head_complete data =
  let n = String.length data in
  let rec scan i =
    if i + 1 >= n then false
    else if data.[i] = '\n' && data.[i + 1] = '\n' then true
    else if
      i + 3 < n
      && data.[i] = '\r' && data.[i + 1] = '\n'
      && data.[i + 2] = '\r' && data.[i + 3] = '\n'
    then true
    else scan (i + 1)
  in
  scan 0

let chomp_cr line =
  if line <> "" && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

let serve ?metrics ?telemetry ?(logger = Arnet_obs.Logger.null) ?snapshot
    ?on_listen ~state addr =
  let module Log = Arnet_obs.Logger in
  let module Http = Arnet_obs.Http_exporter in
  (* a client that disconnects mid-response must cost a dropped
     connection, not the whole daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* a telemetry endpoint without a caller-shared registry still needs
     one to serve from *)
  let metrics =
    match (metrics, telemetry) with
    | None, Some _ -> Some (Service_metrics.create ())
    | m, _ -> m
  in
  let listener, cleanup_listener = bind_listener addr in
  let telemetry_listener =
    match telemetry with
    | None -> None
    | Some taddr -> (
      match bind_listener taddr with
      | l -> Some l
      | exception e ->
        cleanup_listener ();
        raise e)
  in
  let cleanup_listeners () =
    cleanup_listener ();
    match telemetry_listener with Some (_, c) -> c () | None -> ()
  in
  (match on_listen with Some f -> f addr | None -> ());
  Log.info logger "listening"
    ~fields:[ ("addr", Arnet_obs.Jsonu.String (addr_to_string addr)) ];
  Option.iter
    (fun taddr ->
      Log.info logger "telemetry listening"
        ~fields:[ ("addr", Arnet_obs.Jsonu.String (addr_to_string taddr)) ])
    telemetry;
  let clock = Arnet_obs.Span.monotonic () in
  let routes =
    match metrics with
    | None -> []
    | Some m ->
      [ ("/metrics",
         fun () ->
           (Http.prometheus_content_type, Service_metrics.scrape m state));
        ("/healthz", fun () -> (Http.text_content_type, "ok\n"));
        ("/statz",
         fun () ->
           ( Http.json_content_type,
             Arnet_obs.Jsonu.to_string (Service_metrics.statz m state) ^ "\n"
           )) ]
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let handle_command c line =
    (* timed only when someone records the result: the metrics-free
       daemon (the bench baseline) keeps its exact pre-telemetry path *)
    let t0 = match metrics with Some _ -> clock () | None -> 0. in
    let cmd_result = Wire.parse_command line in
    let cmd, response =
      match cmd_result with
      | Error (code, detail) -> (None, Wire.Err { code; detail })
      | Ok cmd -> (Some cmd, Session.handle state cmd)
    in
    (match metrics with
    | Some m ->
      let verb =
        match cmd with
        | Some cmd ->
          Service_metrics.record m state cmd response;
          Service_metrics.verb cmd
        | None ->
          Service_metrics.record_malformed m;
          "malformed"
      in
      let verdict = Service_metrics.verdict response in
      let seconds = clock () -. t0 in
      if Service_metrics.record_latency m ~verb ~verdict seconds then
        Arnet_obs.Logger.warn logger "slow command"
          ~fields:
            [ ("verb", Arnet_obs.Jsonu.String verb);
              ("verdict", Arnet_obs.Jsonu.String verdict);
              ("seconds", Arnet_obs.Jsonu.Float seconds) ]
    | None -> ());
    (try write_all c.fd (Wire.print_response response ^ "\n")
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
       close_conn c);
    match cmd with Some Wire.Quit -> close_conn c | _ -> ()
  in
  let chunk = Bytes.create 4096 in
  let reject_too_long c =
    (match metrics with
    | Some m -> Service_metrics.record_malformed m
    | None -> ());
    (try
       write_all c.fd
         (Wire.print_response
            (Wire.Err
               {
                 code = "toolong";
                 detail =
                   Printf.sprintf "line exceeds %d bytes" max_line_bytes;
               })
         ^ "\n")
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
    close_conn c
  in
  let http_respond c (resp : Http.response) =
    if resp.Http.status <> 200 then
      Log.warn logger "telemetry request refused"
        ~fields:
          [ ("status", Arnet_obs.Jsonu.Int resp.Http.status);
            ("reason", Arnet_obs.Jsonu.String resp.Http.reason) ];
    (try write_all c.fd (Http.render resp)
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
    close_conn c
  in
  (* answer as soon as the request head is complete ([eof] stands in
     for the blank line when the client half-closes instead); a first
     line that is already malformed is refused without waiting.  Every
     outcome — 200, 400, 404, 405 — is one response then close, and
     none of them touches the command loop *)
  let handle_http ?(eof = false) c =
    let data = Buffer.contents c.buf in
    match String.index_opt data '\n' with
    | None ->
      if Buffer.length c.buf > max_line_bytes then
        http_respond c (Http.bad_request "request line too long")
      else if eof then close_conn c
    | Some i -> (
      let first = chomp_cr (String.sub data 0 i) in
      match Http.parse_request_line first with
      | Error detail -> http_respond c (Http.bad_request detail)
      | Ok _ ->
        if head_complete data || eof then
          http_respond c (Http.handle ~routes first)
        else if Buffer.length c.buf > max_line_bytes then
          http_respond c (Http.bad_request "request head too long"))
  in
  let handle_readable c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> (
      match c.proto with
      | Http -> handle_http ~eof:true c
      | Command -> close_conn c)
    | n -> (
      Buffer.add_subbytes c.buf chunk 0 n;
      match c.proto with
      | Http -> handle_http c
      | Command ->
        List.iter
          (fun line ->
            if Hashtbl.mem conns c.fd then
              if String.length line > max_line_bytes then reject_too_long c
              else handle_command c line)
          (drain_lines c.buf);
        (* an unterminated line can also outgrow the ceiling: without
           this, a client sending no newline at all grows [buf] without
           bound *)
        if Hashtbl.mem conns c.fd && Buffer.length c.buf > max_line_bytes
        then reject_too_long c)
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn c
  in
  let accept_from listener proto =
    let conn_fd, _ = Unix.accept listener in
    Hashtbl.replace conns conn_fd
      { fd = conn_fd; buf = Buffer.create 256; proto }
  in
  let rec loop () =
    if State.drained state then ()
    else begin
      let fds = listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let telemetry_fd = Option.map fst telemetry_listener in
      let fds =
        match telemetry_fd with Some tl -> tl :: fds | None -> fds
      in
      match Unix.select fds [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listener then accept_from listener Command
            else if telemetry_fd = Some fd then accept_from fd Http
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> handle_readable c
              | None -> ())
          readable;
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
      cleanup_listeners ())
    (fun () ->
      loop ();
      State.finish state;
      match snapshot with
      | Some path -> Arnet_serial.Snapshot.to_file path (State.snapshot state)
      | None -> ())
