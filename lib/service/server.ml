type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let invalid = Printf.sprintf "invalid address %S (unix:PATH, tcp:HOST:PORT, HOST:PORT or PORT)" s in
  match String.index_opt s ':' with
  | None -> (
    match int_of_string_opt s with
    | Some port when port > 0 && port < 65536 -> Ok (Tcp ("127.0.0.1", port))
    | _ -> Error invalid)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then Error invalid else Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error invalid
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
        | _ -> Error invalid))
    | host -> (
      match int_of_string_opt rest with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ -> Error invalid))

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))

let sockaddr_of = function
  | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port))

(* ------------------------------------------------------------------ *)
(* client side *)

let connect ?(retry_for = 0.) addr =
  let domain, sockaddr = sockaddr_of addr in
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      ignore (Unix.select [] [] [] 0.05);
      attempt ()
    | exception e ->
      Unix.close fd;
      raise e
  in
  let fd = attempt () in
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let request ic oc cmd =
  output_string oc (Wire.print_command cmd);
  output_char oc '\n';
  flush oc;
  let line = input_line ic in
  match Wire.parse_response line with
  | Ok r -> r
  | Error msg -> failwith (Printf.sprintf "bad response %S: %s" line msg)

(* ------------------------------------------------------------------ *)
(* server side *)

type proto =
  | Command  (** the SETUP/TEARDOWN line protocol *)
  | Binary  (** the Bwire batch framing, after a HELLO binary upgrade *)
  | Http  (** a telemetry connection: one GET, one response, close *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read but not yet framed into a line *)
  mutable proto : proto;
}

(* the longest legal command line; generous next to real commands
   (SETUP is ~40 bytes) but a hard ceiling on what one connection can
   make the daemon buffer *)
let max_line_bytes = 8192

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let chomp_cr line =
  if line <> "" && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

(* one complete line out of [buf] (CRLF-tolerant: telnet, nc -C); the
   tail stays buffered.  One line at a time rather than all at once so
   a HELLO binary upgrade leaves the bytes behind it — already binary
   frames — untouched for the frame decoder *)
let take_line buf =
  let data = Buffer.contents buf in
  match String.index_opt data '\n' with
  | None -> None
  | Some i ->
    Buffer.clear buf;
    Buffer.add_substring buf data (i + 1) (String.length data - i - 1);
    Some (chomp_cr (String.sub data 0 i))

(* bind-and-listen with the unix-path replace semantics; [cleanup]
   closes and unlinks, safe to call twice *)
let bind_listener addr =
  let domain, sockaddr = sockaddr_of addr in
  (match addr with
  | Unix_sock path when Sys.file_exists path -> Unix.unlink path
  | _ -> ());
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    match addr with
    | Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ()
  in
  (try
     (match addr with
     | Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind listener sockaddr;
     Unix.listen listener 64
   with e ->
     cleanup ();
     raise e);
  (listener, cleanup)

(* a complete HTTP request head: headers (if any) ended by a blank line *)
let head_complete data =
  let n = String.length data in
  let rec scan i =
    if i + 1 >= n then false
    else if data.[i] = '\n' && data.[i + 1] = '\n' then true
    else if
      i + 3 < n
      && data.[i] = '\r' && data.[i + 1] = '\n'
      && data.[i + 2] = '\r' && data.[i + 3] = '\n'
    then true
    else scan (i + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* protocol machinery, shared by the single-domain loop and the
   sharded per-worker loops.  Each maker closes over one loop's
   connection table and serialization discipline. *)

(* commands that reconfigure shared decision inputs; each bumps the
   control-plane epoch so a reload/patch is a fenced, observable event
   rather than a silent mid-stream mutation *)
let is_control = function
  | Wire.Fail _ | Wire.Repair _ | Wire.Reload | Wire.Link_add _
  | Wire.Link_del _ | Wire.Drain ->
    true
  | Wire.Setup _ | Wire.Teardown _ | Wire.Stats | Wire.Quit | Wire.Hello _ ->
    false

type source = Line of string | Parsed of Wire.command

(* serialization discipline as a first-class (polymorphic) section:
   the identity for the single-domain loop, the decision mutex for the
   sharded ones *)
type sync = { sync : 'a. (unit -> 'a) -> 'a }

(* The decision core for one loop: [handle_line]/[handle_batch] parse
   (lines), decide through {!Session}, account metrics and the tap, and
   write the reply.  [sync] owns serialization — the identity
   single-domain, the decision mutex sharded; [after] runs inside
   [sync] after each line or batch (the sharded loop's drained
   check). *)
let command_handler ~metrics ~logger ~clock ~state ~tap ~epoch ~domain ~sync
    ~after ~close_conn =
  let module Log = Arnet_obs.Logger in
  let decide_core cmd =
    let response = Session.handle state cmd in
    if is_control cmd then Atomic.incr epoch;
    response
  in
  (* timed only when someone records the result: the metrics-free
     daemon (the bench baseline) keeps its exact pre-telemetry path *)
  let apply ~decide source =
    let t0 = match metrics with Some _ -> clock () | None -> 0. in
    let cmd_result =
      match source with
      | Line line -> Wire.parse_command line
      | Parsed cmd -> Ok cmd
    in
    let cmd, response =
      match cmd_result with
      | Error (code, detail) -> (None, Wire.Err { code; detail })
      | Ok cmd -> (Some cmd, decide cmd)
    in
    (match metrics with
    | Some m ->
      let verb =
        match cmd with
        | Some cmd ->
          Service_metrics.record m state cmd response;
          Service_metrics.verb cmd
        | None ->
          Service_metrics.record_malformed m;
          "malformed"
      in
      Service_metrics.record_domain m domain;
      let verdict = Service_metrics.verdict response in
      let seconds = clock () -. t0 in
      if Service_metrics.record_latency m ~verb ~verdict seconds then
        Log.warn logger "slow command"
          ~fields:
            [ ("verb", Arnet_obs.Jsonu.String verb);
              ("verdict", Arnet_obs.Jsonu.String verdict);
              ("seconds", Arnet_obs.Jsonu.Float seconds) ]
    | None -> ());
    (match (tap, cmd) with Some f, Some cmd -> f cmd response | _ -> ());
    (cmd, response)
  in
  (* HELLO is transport negotiation, never a State command: the mode
     switch happens here, after the OK is committed to the line
     framing, so the client reads one last text response and everything
     after it is frames *)
  let decide_line c cmd =
    match cmd with
    | Wire.Hello { mode } -> (
      match String.lowercase_ascii mode with
      | "binary" ->
        c.proto <- Binary;
        Wire.Done
      | "line" -> Wire.Done
      | _ ->
        Wire.Err
          { code = "bad-argument";
            detail =
              Printf.sprintf "unknown framing mode %S (line | binary)" mode })
    | cmd -> decide_core cmd
  in
  let handle_line c line =
    let cmd, response =
      sync.sync (fun () ->
          let r = apply ~decide:(decide_line c) (Line line) in
          after ();
          r)
    in
    (try write_all c.fd (Wire.print_response response ^ "\n")
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
       close_conn c);
    match cmd with Some Wire.Quit -> close_conn c | _ -> ()
  in
  (* one lock round and one reply write for the whole frame — the
     syscall amortization the binary framing exists for *)
  let handle_batch c cmds =
    let responses =
      sync.sync (fun () ->
          (match metrics with
          | Some m -> Service_metrics.record_batch m (List.length cmds)
          | None -> ());
          let rs =
            List.map
              (fun cmd -> snd (apply ~decide:decide_core (Parsed cmd)))
              cmds
          in
          after ();
          rs)
    in
    (try write_all c.fd (Bwire.encode_replies responses)
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
       close_conn c);
    if List.exists (function Wire.Quit -> true | _ -> false) cmds then
      close_conn c
  in
  let reject_too_long c =
    (match metrics with
    | Some m -> sync.sync (fun () -> Service_metrics.record_malformed m)
    | None -> ());
    (try
       write_all c.fd
         (Wire.print_response
            (Wire.Err
               {
                 code = "toolong";
                 detail =
                   Printf.sprintf "line exceeds %d bytes" max_line_bytes;
               })
         ^ "\n")
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
    close_conn c
  in
  (* a structurally bad frame is connection-fatal: answer one ERR
     reply frame (the client may be mid-read on a batch) and drop *)
  let binary_fatal c err =
    (match metrics with
    | Some m -> sync.sync (fun () -> Service_metrics.record_malformed m)
    | None -> ());
    (try
       write_all c.fd
         (Bwire.encode_replies
            [ Wire.Err
                { code = "bad-frame"; detail = Bwire.error_to_string err } ])
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
    close_conn c
  in
  (handle_line, handle_batch, reject_too_long, binary_fatal)

let http_handler ~logger ~routes ~close_conn =
  let module Log = Arnet_obs.Logger in
  let module Http = Arnet_obs.Http_exporter in
  let http_respond c (resp : Http.response) =
    if resp.Http.status <> 200 then
      Log.warn logger "telemetry request refused"
        ~fields:
          [ ("status", Arnet_obs.Jsonu.Int resp.Http.status);
            ("reason", Arnet_obs.Jsonu.String resp.Http.reason) ];
    (try write_all c.fd (Http.render resp)
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
    close_conn c
  in
  (* answer as soon as the request head is complete ([eof] stands in
     for the blank line when the client half-closes instead); a first
     line that is already malformed is refused without waiting.  Every
     outcome — 200, 400, 404, 405 — is one response then close, and
     none of them touches the command loop *)
  fun ?(eof = false) c ->
    let data = Buffer.contents c.buf in
    match String.index_opt data '\n' with
    | None ->
      if Buffer.length c.buf > max_line_bytes then
        http_respond c (Http.bad_request "request line too long")
      else if eof then close_conn c
    | Some i -> (
      let first = chomp_cr (String.sub data 0 i) in
      match Http.parse_request_line first with
      | Error detail -> http_respond c (Http.bad_request detail)
      | Ok _ ->
        if head_complete data || eof then
          http_respond c (Http.handle ~routes first)
        else if Buffer.length c.buf > max_line_bytes then
          http_respond c (Http.bad_request "request head too long"))

(* read-side pump for one loop's connections: bytes into lines, frames
   or an HTTP head depending on the connection's (switchable) proto *)
let conn_pump ~conns ~(handle_http : ?eof:bool -> conn -> unit) ~handle_line
    ~handle_batch ~reject_too_long ~binary_fatal ~close_conn ~chunk =
  let alive c = Hashtbl.mem conns c.fd in
  let pump_binary c =
    let data = Buffer.contents c.buf in
    Buffer.clear c.buf;
    let n = String.length data in
    let rec go off =
      if not (alive c) then ()
      else if off >= n then ()
      else
        match Bwire.decode ~off data with
        | Ok (Bwire.Commands cmds, used) ->
          handle_batch c cmds;
          go (off + used)
        | Ok (Bwire.Replies _, _) ->
          binary_fatal c (Bwire.Corrupt "reply frame from a client")
        | Error (Bwire.Truncated _) ->
          (* an incomplete frame waits for more bytes; Bwire's
             oversize check bounds how much one connection can make us
             hold *)
          Buffer.add_substring c.buf data off (n - off)
        | Error err -> binary_fatal c err
    in
    go 0
  in
  let rec pump c =
    if alive c then
      match c.proto with
      | Http -> handle_http c
      | Binary -> pump_binary c
      | Command -> (
        match take_line c.buf with
        | Some line ->
          if String.length line > max_line_bytes then reject_too_long c
          else begin
            handle_line c line;
            (* the line may have been HELLO binary: pump again so the
               rest of the buffer is framed under the new proto *)
            pump c
          end
        | None ->
          (* an unterminated line can also outgrow the ceiling: without
             this, a client sending no newline at all grows [buf]
             without bound *)
          if Buffer.length c.buf > max_line_bytes then reject_too_long c)
  in
  fun c ->
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> (
      match c.proto with
      | Http -> handle_http ~eof:true c
      | Command | Binary -> close_conn c)
    | n ->
      Buffer.add_subbytes c.buf chunk 0 n;
      pump c
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn c

(* shared front matter: sigpipe, the default registry behind a
   telemetry endpoint, both listeners, the listen log lines *)
let serve_setup ~metrics ~telemetry ~logger ~on_listen addr =
  let module Log = Arnet_obs.Logger in
  (* a client that disconnects mid-response must cost a dropped
     connection, not the whole daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* a telemetry endpoint without a caller-shared registry still needs
     one to serve from *)
  let metrics =
    match (metrics, telemetry) with
    | None, Some _ -> Some (Service_metrics.create ())
    | m, _ -> m
  in
  let listener, cleanup_listener = bind_listener addr in
  let telemetry_listener =
    match telemetry with
    | None -> None
    | Some taddr -> (
      match bind_listener taddr with
      | l -> Some l
      | exception e ->
        cleanup_listener ();
        raise e)
  in
  let cleanup_listeners () =
    cleanup_listener ();
    match telemetry_listener with Some (_, c) -> c () | None -> ()
  in
  (match on_listen with Some f -> f addr | None -> ());
  Log.info logger "listening"
    ~fields:[ ("addr", Arnet_obs.Jsonu.String (addr_to_string addr)) ];
  Option.iter
    (fun taddr ->
      Log.info logger "telemetry listening"
        ~fields:[ ("addr", Arnet_obs.Jsonu.String (addr_to_string taddr)) ])
    telemetry;
  (metrics, listener, telemetry_listener, cleanup_listeners)

let telemetry_routes ~metrics ~state ~epoch ~sync =
  let module Http = Arnet_obs.Http_exporter in
  match metrics with
  | None -> []
  | Some m ->
    [ ("/metrics",
       fun () ->
         sync.sync (fun () ->
             Service_metrics.set_epoch m (Atomic.get epoch);
             (Http.prometheus_content_type, Service_metrics.scrape m state)));
      ("/healthz", fun () -> (Http.text_content_type, "ok\n"));
      ("/statz",
       fun () ->
         sync.sync (fun () ->
             ( Http.json_content_type,
               Arnet_obs.Jsonu.to_string (Service_metrics.statz m state)
               ^ "\n" ))) ]

(* ------------------------------------------------------------------ *)
(* the single-domain loop: one select over the listeners and every
   connection, decisions applied inline in wire-read order — the
   pre-sharding daemon, kept as its own loop so [--domains 1] is the
   same code path (and the same decision stream) it always was *)

let serve_single ~metrics ~telemetry ~logger ~snapshot ~on_listen ~tap ~state
    addr =
  let metrics, listener, telemetry_listener, cleanup_listeners =
    serve_setup ~metrics ~telemetry ~logger ~on_listen addr
  in
  let clock = Arnet_obs.Span.monotonic () in
  let epoch = Atomic.make 0 in
  let sync = { sync = (fun f -> f ()) } in
  let routes = telemetry_routes ~metrics ~state ~epoch ~sync in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let handle_line, handle_batch, reject_too_long, binary_fatal =
    command_handler ~metrics ~logger ~clock ~state ~tap ~epoch ~domain:0 ~sync
      ~after:(fun () -> ())
      ~close_conn
  in
  let handle_http = http_handler ~logger ~routes ~close_conn in
  let chunk = Bytes.create 4096 in
  let handle_readable =
    conn_pump ~conns ~handle_http ~handle_line ~handle_batch ~reject_too_long
      ~binary_fatal ~close_conn ~chunk
  in
  let accept_from listener proto =
    let conn_fd, _ = Unix.accept listener in
    Hashtbl.replace conns conn_fd
      { fd = conn_fd; buf = Buffer.create 256; proto }
  in
  let rec loop () =
    if State.drained state then ()
    else begin
      let fds = listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let telemetry_fd = Option.map fst telemetry_listener in
      let fds =
        match telemetry_fd with Some tl -> tl :: fds | None -> fds
      in
      match Unix.select fds [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listener then accept_from listener Command
            else if telemetry_fd = Some fd then accept_from fd Http
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> handle_readable c
              | None -> ())
          readable;
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
      cleanup_listeners ())
    (fun () ->
      loop ();
      State.finish state;
      match snapshot with
      | Some path -> Arnet_serial.Snapshot.to_file path (State.snapshot state)
      | None -> ())

(* ------------------------------------------------------------------ *)
(* the sharded loops: domain 0 (the calling domain) is the dispatcher —
   it accepts, deals connections round-robin to D spawned worker
   domains, and serves telemetry — while each worker runs its own
   select loop over its own connections, doing all reads, parsing,
   framing and writes in parallel.  Only the decision itself is
   serialized, under one mutex, batch-at-a-time: admissions stay a
   total order (the paper's call-by-call semantics, and what makes the
   merged-order replay test meaningful) while the syscall work — the
   measured bottleneck — shards.  Unix-domain listeners get nothing
   from SO_REUSEPORT, so one dispatcher covers both address families. *)

type worker_slot = {
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;  (** self-pipe: new conns, or stop *)
  queue : Unix.file_descr list ref;  (** conns dealt, not yet adopted *)
  queue_mu : Mutex.t;
}

let serve_sharded ~domains ~metrics ~telemetry ~logger ~snapshot ~on_listen
    ~tap ~state addr =
  let metrics, listener, telemetry_listener, cleanup_listeners =
    serve_setup ~metrics ~telemetry ~logger ~on_listen addr
  in
  let lock = Mutex.create () in
  let epoch = Atomic.make 0 in
  let stop = Atomic.make false in
  let clock = Arnet_obs.Span.monotonic () in
  let slots =
    Array.init domains (fun _ ->
        let wake_r, wake_w = Unix.pipe () in
        { wake_r; wake_w; queue = ref []; queue_mu = Mutex.create () })
  in
  let stop_r, stop_w = Unix.pipe () in
  let wake fd =
    try ignore (Unix.write fd (Bytes.of_string "!") 0 1 : int)
    with Unix.Unix_error _ -> ()
  in
  let drain_pipe fd =
    let b = Bytes.create 64 in
    try ignore (Unix.read fd b 0 64 : int) with Unix.Unix_error _ -> ()
  in
  (* first drained observation wins; every loop is poked exactly once *)
  let announce_stop () =
    if not (Atomic.exchange stop true) then begin
      Array.iter (fun s -> wake s.wake_w) slots;
      wake stop_w
    end
  in
  let sync =
    { sync =
        (fun f ->
          Mutex.lock lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock lock) f) }
  in
  let after () = if State.drained state then announce_stop () in
  let worker index slot () =
    let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
    let close_conn c =
      Hashtbl.remove conns c.fd;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    in
    let handle_line, handle_batch, reject_too_long, binary_fatal =
      command_handler ~metrics ~logger ~clock ~state ~tap ~epoch
        ~domain:(index + 1) ~sync ~after ~close_conn
    in
    (* workers never serve HTTP; a route-less handler keeps the pump
       total if a conn record were ever mislabeled *)
    let handle_http = http_handler ~logger ~routes:[] ~close_conn in
    let chunk = Bytes.create 4096 in
    let handle_readable =
      conn_pump ~conns ~handle_http ~handle_line ~handle_batch
        ~reject_too_long ~binary_fatal ~close_conn ~chunk
    in
    let adopt () =
      Mutex.lock slot.queue_mu;
      let fresh = !(slot.queue) in
      slot.queue := [];
      Mutex.unlock slot.queue_mu;
      List.iter
        (fun fd ->
          Hashtbl.replace conns fd
            { fd; buf = Buffer.create 256; proto = Command })
        fresh
    in
    let rec loop () =
      if Atomic.get stop then ()
      else begin
        adopt ();
        let fds =
          slot.wake_r :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
        in
        match Unix.select fds [] [] (-1.) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = slot.wake_r then drain_pipe slot.wake_r
              else
                match Hashtbl.find_opt conns fd with
                | Some c -> handle_readable c
                | None -> ())
            readable;
          loop ()
      end
    in
    Fun.protect
      ~finally:(fun () ->
        Hashtbl.iter
          (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          conns)
      loop
  in
  let spawned = Array.mapi (fun i slot -> Domain.spawn (worker i slot)) slots in
  (* a domain may be joined only once; stop-and-join runs in the normal
     path and again from [finally] on an exceptional exit *)
  let joined = ref false in
  let stop_and_join () =
    if not !joined then begin
      joined := true;
      announce_stop ();
      Array.iter Domain.join spawned
    end
  in
  (* dispatcher: accept-and-deal plus telemetry, no decisions *)
  let routes = telemetry_routes ~metrics ~state ~epoch ~sync in
  let http_conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let close_http c =
    Hashtbl.remove http_conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let handle_http = http_handler ~logger ~routes ~close_conn:close_http in
  let chunk = Bytes.create 4096 in
  let next = ref 0 in
  let deal fd =
    let slot = slots.(!next mod domains) in
    incr next;
    Mutex.lock slot.queue_mu;
    slot.queue := fd :: !(slot.queue);
    Mutex.unlock slot.queue_mu;
    wake slot.wake_w
  in
  let rec loop () =
    if Atomic.get stop then ()
    else begin
      let fds =
        listener :: stop_r
        :: Hashtbl.fold (fun fd _ acc -> fd :: acc) http_conns []
      in
      let telemetry_fd = Option.map fst telemetry_listener in
      let fds = match telemetry_fd with Some tl -> tl :: fds | None -> fds in
      match Unix.select fds [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = stop_r then drain_pipe stop_r
            else if fd = listener then begin
              let conn_fd, _ = Unix.accept listener in
              deal conn_fd
            end
            else if telemetry_fd = Some fd then begin
              let conn_fd, _ = Unix.accept fd in
              Hashtbl.replace http_conns conn_fd
                { fd = conn_fd; buf = Buffer.create 256; proto = Http }
            end
            else
              match Hashtbl.find_opt http_conns fd with
              | Some c -> (
                match Unix.read c.fd chunk 0 (Bytes.length chunk) with
                | 0 -> handle_http ~eof:true c
                | n ->
                  Buffer.add_subbytes c.buf chunk 0 n;
                  handle_http c
                | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  close_http c)
              | None -> ())
          readable;
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      stop_and_join ();
      Hashtbl.iter
        (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        http_conns;
      Array.iter
        (fun s ->
          (try Unix.close s.wake_r with Unix.Unix_error _ -> ());
          try Unix.close s.wake_w with Unix.Unix_error _ -> ())
        slots;
      (try Unix.close stop_r with Unix.Unix_error _ -> ());
      (try Unix.close stop_w with Unix.Unix_error _ -> ());
      cleanup_listeners ())
    (fun () ->
      loop ();
      stop_and_join ();
      State.finish state;
      match snapshot with
      | Some path -> Arnet_serial.Snapshot.to_file path (State.snapshot state)
      | None -> ())

let serve ?domains ?metrics ?telemetry ?(logger = Arnet_obs.Logger.null)
    ?snapshot ?on_listen ?tap ~state addr =
  let domains =
    match domains with Some d -> d | None -> Arnet_pool.of_env ()
  in
  if domains < 1 then invalid_arg "Server.serve: domains must be >= 1";
  if domains = 1 then
    serve_single ~metrics ~telemetry ~logger ~snapshot ~on_listen ~tap ~state
      addr
  else
    serve_sharded ~domains ~metrics ~telemetry ~logger ~snapshot ~on_listen
      ~tap ~state addr
