type frame = Commands of Wire.command list | Replies of Wire.response list

type error =
  | Truncated of { have : int; need : int }
  | Oversized of { declared : int; limit : int }
  | Corrupt of string

let error_to_string = function
  | Truncated { have; need } ->
    Printf.sprintf "truncated frame: have %d bytes, need %d" have need
  | Oversized { declared; limit } ->
    Printf.sprintf "oversized frame: %d bytes declared, limit %d" declared
      limit
  | Corrupt detail -> "corrupt frame: " ^ detail

let max_frame_payload = 1 lsl 20
let max_batch = 4096

(* item tags inside a command frame *)
let tag_setup = 1
let tag_setup_timed = 2
let tag_teardown = 3
let tag_cmd_line = 4

(* item tags inside a reply frame *)
let tag_admitted = 1
let tag_blocked = 2
let tag_ok = 3
let tag_err = 4
let tag_resp_line = 5

let kind_commands = 1
let kind_replies = 2

(* ------------------------------------------------------------------ *)
(* encoding *)

let check_u16 what v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Bwire: %s %d outside u16" what v)

let check_u32 what v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Bwire: %s %d outside u32" what v)

let add_line buf what line =
  let n = String.length line in
  if n > 0xFFFF then
    invalid_arg (Printf.sprintf "Bwire: %s line exceeds %d bytes" what 0xFFFF);
  Buffer.add_uint16_be buf n;
  Buffer.add_string buf line

let add_command buf = function
  | Wire.Setup { src; dst; time } -> (
    check_u16 "setup src" src;
    check_u16 "setup dst" dst;
    match time with
    | None ->
      Buffer.add_uint8 buf tag_setup;
      Buffer.add_uint16_be buf src;
      Buffer.add_uint16_be buf dst
    | Some t ->
      if not (Float.is_finite t) || t < 0. then
        invalid_arg "Bwire: setup time must be finite and >= 0";
      Buffer.add_uint8 buf tag_setup_timed;
      Buffer.add_uint16_be buf src;
      Buffer.add_uint16_be buf dst;
      Buffer.add_int64_be buf (Int64.bits_of_float t))
  | Wire.Teardown { id } ->
    check_u32 "teardown id" id;
    Buffer.add_uint8 buf tag_teardown;
    Buffer.add_int32_be buf (Int32.of_int id)
  | cmd ->
    Buffer.add_uint8 buf tag_cmd_line;
    add_line buf "command" (Wire.print_command cmd)

let add_response buf = function
  | Wire.Admitted { id; path } ->
    check_u32 "admitted id" id;
    let nodes = List.length path in
    if nodes < 2 || nodes > 0xFF then
      invalid_arg "Bwire: admitted path needs 2..255 nodes";
    List.iter (check_u16 "path node") path;
    Buffer.add_uint8 buf tag_admitted;
    Buffer.add_int32_be buf (Int32.of_int id);
    Buffer.add_uint8 buf nodes;
    List.iter (fun node -> Buffer.add_uint16_be buf node) path
  | Wire.Blocked -> Buffer.add_uint8 buf tag_blocked
  | Wire.Done -> Buffer.add_uint8 buf tag_ok
  | Wire.Err { code; detail } ->
    let cn = String.length code and dn = String.length detail in
    if cn < 1 || cn > 0xFF then
      invalid_arg "Bwire: err code must be 1..255 bytes";
    if dn > 0xFFFF then invalid_arg "Bwire: err detail exceeds 65535 bytes";
    Buffer.add_uint8 buf tag_err;
    Buffer.add_uint8 buf cn;
    Buffer.add_string buf code;
    Buffer.add_uint16_be buf dn;
    Buffer.add_string buf detail
  | (Wire.Reloaded _ | Wire.Patched _ | Wire.Stats_reply _) as resp ->
    Buffer.add_uint8 buf tag_resp_line;
    add_line buf "response" (Wire.print_response resp)

let encode kind add items =
  let count = List.length items in
  if count > max_batch then
    invalid_arg
      (Printf.sprintf "Bwire: batch of %d exceeds max_batch %d" count
         max_batch);
  let payload = Buffer.create 256 in
  Buffer.add_uint8 payload kind;
  Buffer.add_uint16_be payload count;
  List.iter (add payload) items;
  let n = Buffer.length payload in
  if n > max_frame_payload then
    invalid_arg
      (Printf.sprintf "Bwire: frame payload of %d exceeds %d" n
         max_frame_payload);
  let frame = Buffer.create (n + 4) in
  Buffer.add_int32_be frame (Int32.of_int n);
  Buffer.add_buffer frame payload;
  Buffer.contents frame

let encode_commands cmds = encode kind_commands add_command cmds
let encode_replies resps = encode kind_replies add_response resps

(* ------------------------------------------------------------------ *)
(* decoding *)

exception Bad of error

let decode ?(off = 0) data =
  let len = String.length data in
  if off < 0 || off > len then invalid_arg "Bwire.decode: offset out of range";
  let have = len - off in
  try
    if have < 4 then raise (Bad (Truncated { have; need = 4 }));
    let payload_len =
      Int32.to_int (String.get_int32_be data off) land 0xFFFFFFFF
    in
    if payload_len > max_frame_payload then
      raise (Bad (Oversized { declared = payload_len; limit = max_frame_payload }));
    let need = 4 + payload_len in
    if have < need then raise (Bad (Truncated { have; need }));
    if payload_len < 3 then
      raise (Bad (Corrupt "payload shorter than its kind and count"));
    (* cursor bounded by the declared payload, not by the buffer: an
       item running past the frame end is corruption even when more
       bytes (the next frame) are already buffered *)
    let limit = off + need in
    let pos = ref (off + 4) in
    let u8 () =
      if !pos + 1 > limit then raise (Bad (Corrupt "item past frame end"));
      let v = String.get_uint8 data !pos in
      pos := !pos + 1;
      v
    in
    let u16 () =
      if !pos + 2 > limit then raise (Bad (Corrupt "item past frame end"));
      let v = String.get_uint16_be data !pos in
      pos := !pos + 2;
      v
    in
    let u32 () =
      if !pos + 4 > limit then raise (Bad (Corrupt "item past frame end"));
      let v = Int32.to_int (String.get_int32_be data !pos) land 0xFFFFFFFF in
      pos := !pos + 4;
      v
    in
    let f64 () =
      if !pos + 8 > limit then raise (Bad (Corrupt "item past frame end"));
      let v = Int64.float_of_bits (String.get_int64_be data !pos) in
      pos := !pos + 8;
      v
    in
    let str n =
      if !pos + n > limit then raise (Bad (Corrupt "item past frame end"));
      let s = String.sub data !pos n in
      pos := !pos + n;
      s
    in
    let kind = u8 () in
    let count = u16 () in
    (* List.init's evaluation order is unspecified; the cursor demands
       left to right *)
    let read_list n f =
      let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
      go n []
    in
    if count > max_batch then
      raise
        (Bad (Corrupt (Printf.sprintf "batch count %d exceeds %d" count max_batch)));
    let command () =
      match u8 () with
      | t when t = tag_setup ->
        let src = u16 () in
        let dst = u16 () in
        Wire.Setup { src; dst; time = None }
      | t when t = tag_setup_timed ->
        let src = u16 () in
        let dst = u16 () in
        let time = f64 () in
        if not (Float.is_finite time) || time < 0. then
          raise (Bad (Corrupt "setup time must be finite and >= 0"));
        Wire.Setup { src; dst; time = Some time }
      | t when t = tag_teardown -> Wire.Teardown { id = u32 () }
      | t when t = tag_cmd_line -> (
        let line = str (u16 ()) in
        match Wire.parse_command line with
        | Ok cmd -> cmd
        | Error (code, detail) ->
          raise
            (Bad (Corrupt (Printf.sprintf "escaped line: %s %s" code detail))))
      | t -> raise (Bad (Corrupt (Printf.sprintf "unknown command tag %d" t)))
    in
    let response () =
      match u8 () with
      | t when t = tag_admitted ->
        let id = u32 () in
        let nodes = u8 () in
        if nodes < 2 then
          raise (Bad (Corrupt "admitted path needs >= 2 nodes"));
        let path = read_list nodes u16 in
        Wire.Admitted { id; path }
      | t when t = tag_blocked -> Wire.Blocked
      | t when t = tag_ok -> Wire.Done
      | t when t = tag_err ->
        let code = str (u8 ()) in
        if code = "" then raise (Bad (Corrupt "err code must be nonempty"));
        let detail = str (u16 ()) in
        Wire.Err { code; detail }
      | t when t = tag_resp_line -> (
        let line = str (u16 ()) in
        match Wire.parse_response line with
        | Ok resp -> resp
        | Error msg -> raise (Bad (Corrupt ("escaped line: " ^ msg))))
      | t -> raise (Bad (Corrupt (Printf.sprintf "unknown response tag %d" t)))
    in
    let frame =
      if kind = kind_commands then Commands (read_list count command)
      else if kind = kind_replies then Replies (read_list count response)
      else raise (Bad (Corrupt (Printf.sprintf "unknown frame kind %d" kind)))
    in
    if !pos <> limit then
      raise (Bad (Corrupt "frame payload longer than its items"));
    Ok (frame, need)
  with Bad e -> Error e
