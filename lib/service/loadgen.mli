(** Seeded open-loop load generator — the client half of [arn serve].

    Draws the same Poisson workload the simulator replays
    ({!Arnet_sim.Trace.generate} from a master seed over a traffic
    matrix) and drives a daemon with it over the wire: one [SETUP] per
    arrival (carrying the virtual arrival instant), one [TEARDOWN] per
    accepted call at its virtual departure instant, interleaved in
    virtual-time order with departures first on ties — exactly the
    engine's event order, so a FAIL-free daemon under this load makes
    the same decision sequence as {!Arnet_sim.Engine.run} on the same
    trace.  The generator is open-loop in virtual time but closed-loop
    on the wire (it waits for each response), so admission order is
    deterministic for a single connection: same seed, same daemon
    seed, same accept/block counts, every run.

    [connections > 1] shards calls round-robin across that many
    sockets driven from one thread each — a throughput measurement
    mode; wire-order determinism is then up to the scheduler. *)

open Arnet_traffic

type result = {
  calls : int;  (** SETUPs sent *)
  accepted : int;
  blocked : int;
  errors : int;  (** ERR responses (should be 0 against a live daemon) *)
  teardowns : int;
  requests : int;  (** total wire round-trips, setups + teardowns *)
  wall_s : float;
  in_flight_max : int;
      (** high-water mark of requests written but not yet answered,
          summed over every connection: [connections] in line mode
          (one outstanding each), up to [connections * batch] when
          batching *)
  latency_buckets : (float * int) list;
      (** request-latency histogram in seconds: [(upper bound,
          cumulative count)], log-scale bounds ending at [infinity] —
          the {!Arnet_obs.Metrics} bucket convention. *)
  latency_sum : float;
  latency_count : int;
}

val run :
  ?connections:int ->
  ?timestamps:bool ->
  ?retry_for:float ->
  ?binary:bool ->
  ?batch:int ->
  seed:int ->
  calls:int ->
  matrix:Matrix.t ->
  addr:Server.addr ->
  unit ->
  result
(** Generate [calls] arrivals from [seed] over [matrix] and replay
    them against the daemon at [addr].  [timestamps] (default true)
    sends virtual arrival instants on [SETUP], driving the daemon's
    clock and hence its estimators; disable to exercise the untimed
    protocol path.  [connections] defaults to 1; [retry_for] (default
    5 s) tolerates a daemon still binding its socket.

    [binary] (default false) upgrades each connection with
    [HELLO binary] and drives the {!Bwire} batch framing: up to
    [batch] (default 1) commands per frame, one write/read round per
    batch.  The event walk is the same — a teardown is only scheduled
    once its setup's verdict has been read, so it never precedes its
    own setup on the wire — and each request's recorded latency is its
    batch's round-trip time, observed once per request.
    @raise Invalid_argument for [calls < 1], [connections < 1],
    [batch] outside [1 .. Bwire.max_batch], or [batch > 1] without
    [binary]; socket errors propagate as [Unix.Unix_error]. *)

val requests_per_second : result -> float

val mean_latency : result -> float
(** Seconds; 0 when nothing was measured. *)

val quantile : result -> float -> float
(** Latency quantile in seconds estimated from the histogram (upper
    bound of the bucket containing the quantile; the top bucket
    reports the largest finite bound).
    @raise Invalid_argument outside (0, 1]. *)

val to_json : result -> Arnet_obs.Jsonu.t
(** Counts, [requests_per_s], blocking, and the latency summary
    ([latency_mean_s], [_p50_s], [_p95_s], [_p99_s], [_max_s]) — the
    machine-readable form the bench's [serve] section embeds. *)

val print : Format.formatter -> result -> unit
(** The human summary [arn load] prints: counts, blocking, req/s, and
    mean/p50/p95/p99/max latency. *)
