open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_core
module Obs = Arnet_obs

type call = {
  links : int array;  (** link ids holding one circuit for this call *)
}

type t = {
  mutable graph : Graph.t;
  mutable routes : Route_table.t;
  h : int;  (** protection-rule H: the route table's alternate cap *)
  mutable capacities : int array;
  mutable reserves : int array;
  mutable admission : Admission.t;
  mutable occupancy : int array;
  mutable failed : bool array;
  mutable estimators : Estimator.t array;
  active : (int, call) Hashtbl.t;
  mutable next_id : int;
  mutable clock : float;
  mutable accepted : int;
  mutable blocked : int;
  mutable torn_down : int;
  mutable dropped : int;
  mutable failovers : int;
  mutable reloads : int;
  mutable draining : bool;
  mutable finished : bool;
  reload_every : int option;
  mutable decisions : int;  (** setups that reached a verdict *)
  script : Arnet_failure.Script.event array;
      (** scripted FAIL/REPAIRs, applied as the virtual clock passes them *)
  mutable script_pos : int;
  est_window : float option;  (** remembered so LINK ADD can mint a
                                  consistent estimator for the new link *)
  est_smoothing : float option;
  observer : (Obs.Event.t -> unit) option;
}

let create ?h ?matrix ?window ?smoothing ?reload_every ?failure_script
    ?observer g =
  (match reload_every with
  | Some n when n < 1 -> invalid_arg "State.create: reload_every < 1"
  | _ -> ());
  let script =
    match failure_script with
    | None -> [||]
    | Some s ->
      if Arnet_failure.Script.max_link s >= Graph.link_count g then
        invalid_arg "State.create: failure script mentions a link outside \
                     the graph";
      Arnet_failure.Script.to_array s
  in
  let routes = Route_table.build ?h g in
  let h = Route_table.h routes in
  let capacities =
    Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g)
  in
  let m = Array.length capacities in
  let reserves =
    match matrix with
    | Some matrix -> Protection.levels routes matrix ~h
    | None -> Array.make m 0
  in
  let initial_loads =
    match matrix with
    | Some matrix -> Loads.primary_link_loads routes matrix
    | None -> Array.make m 0.
  in
  let estimators =
    Array.init m (fun k ->
        Estimator.create ?window ?smoothing ~initial:initial_loads.(k) ())
  in
  (match observer with
  | Some f ->
    f
      (Obs.Event.Run_start
         { policy = "arnet-service";
           warmup = 0.;
           duration = 0.;
           nodes = Graph.node_count g;
           links = m })
  | None -> ());
  { graph = g;
    routes;
    h;
    capacities;
    reserves;
    admission = Admission.make ~capacities ~reserves;
    occupancy = Array.make m 0;
    failed = Array.make m false;
    estimators;
    active = Hashtbl.create 1024;
    next_id = 1;
    clock = 0.;
    accepted = 0;
    blocked = 0;
    torn_down = 0;
    dropped = 0;
    failovers = 0;
    reloads = 0;
    draining = false;
    finished = false;
    reload_every;
    decisions = 0;
    script;
    script_pos = 0;
    est_window = window;
    est_smoothing = smoothing;
    observer }

let emit t ev = match t.observer with Some f -> f ev | None -> ()

let graph t = t.graph
let routes t = t.routes
let clock t = t.clock
let active_calls t = Hashtbl.length t.active
let draining t = t.draining
let drained t = t.draining && Hashtbl.length t.active = 0
let occupancy t = Array.copy t.occupancy
let reserves t = Array.copy t.reserves

let estimated_loads t =
  Array.map (fun e -> Estimator.estimate e ~now:t.clock) t.estimators

let failed_links t =
  let acc = ref [] in
  for k = Array.length t.failed - 1 downto 0 do
    if t.failed.(k) then acc := k :: !acc
  done;
  !acc

let err code detail = Wire.Err { code; detail }

(* ------------------------------------------------------------------ *)
(* RELOAD: the Theorem-1 rule at the current demand estimates *)

let do_reload t =
  let changed = ref 0 in
  Array.iteri
    (fun k e ->
      let offered = Estimator.estimate e ~now:t.clock in
      let level =
        if offered <= 0. then 0
        else Protection.level ~offered ~capacity:t.capacities.(k) ~h:t.h
      in
      if level <> t.reserves.(k) then begin
        incr changed;
        t.reserves.(k) <- level
      end)
    t.estimators;
  t.admission <- Admission.make ~capacities:t.capacities ~reserves:t.reserves;
  t.reloads <- t.reloads + 1;
  Wire.Reloaded { changed = !changed }

let reload t = do_reload t

(* ------------------------------------------------------------------ *)
(* FAIL/REPAIR internals: shared by the wire commands and the scripted
   failure replay *)

let release t (c : call) =
  Array.iter
    (fun k ->
      assert (t.occupancy.(k) > 0);
      t.occupancy.(k) <- t.occupancy.(k) - 1)
    c.links

(* calls holding a circuit on [link] are released, counted as dropped,
   and reported as departures -- shared by FAIL and LINK DEL *)
let drop_calls_on t ~link =
  let victims =
    Hashtbl.fold
      (fun id c acc ->
        if Array.exists (fun k -> k = link) c.links then (id, c) :: acc
        else acc)
      t.active []
  in
  List.iter
    (fun (id, c) ->
      release t c;
      Hashtbl.remove t.active id;
      t.dropped <- t.dropped + 1;
      emit t (Obs.Event.Departure { time = t.clock; links = c.links }))
    (List.sort compare victims)

let apply_fail t ~link =
  if not t.failed.(link) then begin
    t.failed.(link) <- true;
    (* calls holding a circuit on the dead link are lost with it *)
    drop_calls_on t ~link
  end

let apply_repair t ~link = t.failed.(link) <- false

(* scripted events fire as the virtual clock passes their times, so the
   daemon's behaviour stays a pure function of the command stream: a
   SETUP timestamp advances the clock, due FAIL/REPAIRs apply, then the
   decision runs against the updated liveness *)
let run_script t =
  while
    t.script_pos < Array.length t.script
    && t.script.(t.script_pos).Arnet_failure.Script.time <= t.clock
  do
    let e = t.script.(t.script_pos) in
    t.script_pos <- t.script_pos + 1;
    match e.Arnet_failure.Script.action with
    | Arnet_failure.Script.Fail ->
      apply_fail t ~link:e.Arnet_failure.Script.link
    | Arnet_failure.Script.Repair ->
      apply_repair t ~link:e.Arnet_failure.Script.link
  done

(* ------------------------------------------------------------------ *)
(* SETUP: Controller.decide restricted to all-alive paths *)

let path_alive t (p : Path.t) =
  Array.for_all (fun k -> not t.failed.(k)) p.Path.link_ids

let admit t ~now ~src ~dst ~primary (p : Path.t) =
  let links = Array.copy p.Path.link_ids in
  Array.iter (fun k -> t.occupancy.(k) <- t.occupancy.(k) + 1) links;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.active id { links };
  t.accepted <- t.accepted + 1;
  emit t
    (Obs.Event.Admit
       { time = now; src; dst; hops = Path.hops p; primary; links });
  Wire.Admitted { id; path = Path.nodes p }

let block t ~now ~src ~dst =
  t.blocked <- t.blocked + 1;
  emit t (Obs.Event.Block { time = now; src; dst });
  Wire.Blocked

let after_decision t response =
  t.decisions <- t.decisions + 1;
  (match t.reload_every with
  | Some n when t.decisions mod n = 0 -> ignore (do_reload t : Wire.response)
  | _ -> ());
  response

let setup t ~src ~dst ~time =
  if t.draining then err "draining" "daemon is draining, not admitting"
  else begin
    let n = Graph.node_count t.graph in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      err "bad-argument" (Printf.sprintf "node out of range [0, %d)" n)
    else if src = dst then err "bad-argument" "src = dst"
    else begin
      (* the clock only moves forward: stale client timestamps clamp *)
      (match time with Some u -> t.clock <- Float.max t.clock u | None -> ());
      run_script t;
      let now = t.clock in
      emit t (Obs.Event.Arrival { time = now; src; dst; holding = 0. });
      if not (Route_table.has_route t.routes ~src ~dst) then
        after_decision t (block t ~now ~src ~dst)
      else begin
        let primary = Route_table.primary t.routes ~src ~dst in
        let primary_alive = path_alive t primary in
        (* every link of an intact primary path sees the set-up packet,
           admitted or not — the estimator feed of Section 1 *)
        if primary_alive then
          Array.iter
            (fun k -> Estimator.observe t.estimators.(k) ~now)
            primary.Path.link_ids;
        let primary_ok =
          primary_alive
          && Admission.path_admits_primary t.admission
               ~occupancy:t.occupancy primary
        in
        emit t
          (Obs.Event.Primary_attempt
             { time = now;
               src;
               dst;
               hops = Path.hops primary;
               admitted = primary_ok });
        if primary_ok then
          after_decision t (admit t ~now ~src ~dst ~primary:true primary)
        else begin
          let alternates =
            Route_table.alternates_excluding t.routes ~src ~dst primary
          in
          let rec attempt = function
            | [] -> block t ~now ~src ~dst
            | p :: rest ->
              if not (path_alive t p) then attempt rest
              else begin
                match
                  Admission.alternate_refusal t.admission
                    ~occupancy:t.occupancy p
                with
                | None ->
                  (* rerouting around a *dead* primary is a failover;
                     around a busy one, ordinary overflow *)
                  if not primary_alive then t.failovers <- t.failovers + 1;
                  admit t ~now ~src ~dst ~primary:false p
                | Some (link, occ, threshold) ->
                  emit t
                    (Obs.Event.Alternate_rejected
                       { time = now;
                         src;
                         dst;
                         hops = Path.hops p;
                         link;
                         occupancy = occ;
                         threshold });
                  attempt rest
              end
          in
          after_decision t (attempt alternates)
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)

let teardown t ~id =
  match Hashtbl.find_opt t.active id with
  | None -> err "unknown-call" (Printf.sprintf "no active call %d" id)
  | Some c ->
    release t c;
    Hashtbl.remove t.active id;
    t.torn_down <- t.torn_down + 1;
    emit t (Obs.Event.Departure { time = t.clock; links = c.links });
    Wire.Done

let check_link t link =
  if link < 0 || link >= Array.length t.failed then
    Some
      (err "no-such-link"
         (Printf.sprintf "link id out of range [0, %d)"
            (Array.length t.failed)))
  else None

let fail t ~link =
  match check_link t link with
  | Some e -> e
  | None ->
    apply_fail t ~link;
    Wire.Done

let repair t ~link =
  match check_link t link with
  | Some e -> e
  | None ->
    apply_repair t ~link;
    Wire.Done

(* ------------------------------------------------------------------ *)
(* LINK ADD / LINK DEL: incremental topology patches.  The route table
   is patched in place via {!Route_table.patch} -- only the ordered
   pairs whose route sets touch the edited arc are recompiled -- and
   every per-link array is remapped to the patched graph's link ids. *)

(* scripted failure events address links by id; once the topology can
   shift ids under them the replay would silently corrupt, so patches
   are refused while a script is loaded *)
let script_guard t =
  if Array.length t.script > 0 then
    Some
      (err "script-active"
         "topology patches are refused while a failure script is loaded")
  else None

let install t routes =
  t.routes <- routes;
  t.graph <- Route_table.graph routes;
  t.capacities <-
    Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links t.graph);
  t.admission <- Admission.make ~capacities:t.capacities ~reserves:t.reserves

let link_add t ~src ~dst ~capacity =
  match script_guard t with
  | Some e -> e
  | None ->
    let n = Graph.node_count t.graph in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      err "bad-argument" (Printf.sprintf "node out of range [0, %d)" n)
    else if src = dst then err "bad-argument" "src = dst"
    else if capacity < 0 then err "bad-argument" "negative capacity"
    else if Graph.find_link t.graph ~src ~dst <> None then
      err "link-exists" (Printf.sprintf "link %d -> %d already exists" src dst)
    else begin
      let routes, recomputed =
        Route_table.patch t.routes
          [ Route_table.Add_link { src; dst; capacity } ]
      in
      (* the new link's id is the old link count: every existing id is
         stable, so the per-link state just grows by one slot *)
      let append a x = Array.append a [| x |] in
      t.reserves <- append t.reserves 0;
      t.occupancy <- append t.occupancy 0;
      t.failed <- append t.failed false;
      t.estimators <-
        append t.estimators
          (Estimator.create ?window:t.est_window ?smoothing:t.est_smoothing
             ());
      install t routes;
      Wire.Patched { recomputed }
    end

let link_del t ~src ~dst =
  match script_guard t with
  | Some e -> e
  | None ->
    (match Graph.find_link t.graph ~src ~dst with
    | None ->
      err "no-such-link" (Printf.sprintf "no link %d -> %d" src dst)
    | Some dead ->
      let old_id = dead.Link.id in
      (* calls holding a circuit on the removed link go with it *)
      drop_calls_on t ~link:old_id;
      let routes, recomputed =
        Route_table.patch t.routes [ Route_table.Remove_link { src; dst } ]
      in
      let g' = Route_table.graph routes in
      (* removal renumbers ids: re-locate every surviving link by its
         endpoints and remap all per-link state through the table *)
      let m = Array.length t.capacities in
      let id_map = Array.make m (-1) in
      Graph.iter_links
        (fun l ->
          if l.Link.id <> old_id then
            id_map.(l.Link.id) <-
              (Graph.find_link_exn g' ~src:l.Link.src ~dst:l.Link.dst).Link.id)
        t.graph;
      let remap old default =
        let fresh = Array.make (m - 1) default in
        Array.iteri
          (fun k v -> if k <> old_id then fresh.(id_map.(k)) <- v)
          old;
        fresh
      in
      t.reserves <- remap t.reserves 0;
      t.occupancy <- remap t.occupancy 0;
      t.failed <- remap t.failed false;
      t.estimators <- remap t.estimators (Estimator.create ());
      Hashtbl.iter
        (fun _ c ->
          Array.iteri (fun i k -> c.links.(i) <- id_map.(k)) c.links)
        t.active;
      install t routes;
      Wire.Patched { recomputed })

let drain t =
  t.draining <- true;
  Wire.Done

let stats t =
  { Wire.accepted = t.accepted;
    blocked = t.blocked;
    torn_down = t.torn_down;
    dropped = t.dropped;
    failovers = t.failovers;
    active = Hashtbl.length t.active;
    reloads = t.reloads;
    failed = failed_links t;
    draining = t.draining }

let finish t =
  if not t.finished then begin
    t.finished <- true;
    emit t
      (Obs.Event.Run_end
         { time = t.clock; calls = t.accepted + t.blocked })
  end

let snapshot t =
  Arnet_serial.Snapshot.make ~reserves:(Array.copy t.reserves)
    ~occupancy:(Array.copy t.occupancy) ~failed:(failed_links t)
    ~clock:t.clock
    ~counters:
      [ ("accepted", t.accepted);
        ("blocked", t.blocked);
        ("torn_down", t.torn_down);
        ("dropped", t.dropped);
        ("failovers", t.failovers);
        ("reloads", t.reloads) ]
    t.graph
