module M = Arnet_obs.Metrics

type t = {
  registry : M.t;
  commands : (string, M.counter) Hashtbl.t;
  admitted : M.counter;
  blocked : M.counter;
  errors : M.counter;
  torn_down : M.counter;
  reloads : M.counter;
  active : M.gauge;
  occupancy : M.gauge;
  failed : M.gauge;
  hops : M.histogram;
}

let create () =
  let registry = M.create () in
  { registry;
    commands = Hashtbl.create 8;
    admitted =
      M.counter registry ~help:"Calls admitted" "arn_service_admitted_total";
    blocked =
      M.counter registry ~help:"Calls refused" "arn_service_blocked_total";
    errors =
      M.counter registry ~help:"Commands answered with ERR"
        "arn_service_errors_total";
    torn_down =
      M.counter registry ~help:"Calls released by TEARDOWN"
        "arn_service_teardown_total";
    reloads =
      M.counter registry ~help:"Protection-level recomputations"
        "arn_service_reloads_total";
    active =
      M.gauge registry ~help:"Calls currently holding circuits"
        "arn_service_active_calls";
    occupancy =
      M.gauge registry ~help:"Circuits held over all links"
        "arn_service_occupancy_circuits";
    failed =
      M.gauge registry ~help:"Links currently failed"
        "arn_service_failed_links";
    hops =
      M.histogram registry ~help:"Admitted path length (hops)"
        ~buckets:[| 1.; 2.; 3.; 4.; 6.; 8.; 12. |]
        "arn_service_admitted_hops" }

let registry t = t.registry

let verb = function
  | Wire.Setup _ -> "setup"
  | Wire.Teardown _ -> "teardown"
  | Wire.Fail _ -> "fail"
  | Wire.Repair _ -> "repair"
  | Wire.Reload -> "reload"
  | Wire.Stats -> "stats"
  | Wire.Drain -> "drain"
  | Wire.Quit -> "quit"

let command_counter t v =
  match Hashtbl.find_opt t.commands v with
  | Some c -> c
  | None ->
    let c =
      M.counter t.registry ~labels:[ ("verb", v) ]
        ~help:"Wire commands handled" "arn_service_commands_total"
    in
    Hashtbl.add t.commands v c;
    c

let record t st cmd resp =
  M.inc (command_counter t (verb cmd));
  (match resp with
  | Wire.Admitted { path; _ } ->
    M.inc t.admitted;
    M.observe t.hops (float_of_int (List.length path - 1))
  | Wire.Blocked -> M.inc t.blocked
  | Wire.Err _ -> M.inc t.errors
  | Wire.Reloaded _ -> ()
  | Wire.Done -> (
    match cmd with Wire.Teardown _ -> M.inc t.torn_down | _ -> ())
  | Wire.Stats_reply _ -> ());
  (* sync rather than inc: [--reload-every] cadence reloads happen inside
     State without a RELOAD command on the wire *)
  M.inc_by t.reloads
    (float_of_int (State.stats st).Wire.reloads -. M.counter_value t.reloads);
  M.set t.active (float_of_int (State.active_calls st));
  M.set t.occupancy
    (float_of_int (Array.fold_left ( + ) 0 (State.occupancy st)));
  M.set t.failed (float_of_int (List.length (State.failed_links st)))

let record_malformed t = M.inc t.errors

let to_prometheus t = M.to_prometheus t.registry
