module M = Arnet_obs.Metrics
module J = Arnet_obs.Jsonu

type slow_entry = {
  at : float;
  verb : string;
  verdict : string;
  seconds : float;
}

type t = {
  registry : M.t;
  net : Arnet_obs.Metrics_sink.t;
  started_at : float;
  commands : (string, M.counter) Hashtbl.t;
  latency : (string * string, M.histogram) Hashtbl.t;
  domains : (int, M.counter) Hashtbl.t;
  batch_size : M.histogram;
  epoch : M.gauge;
  admitted : M.counter;
  blocked : M.counter;
  errors : M.counter;
  torn_down : M.counter;
  reloads : M.counter;
  active : M.gauge;
  occupancy : M.gauge;
  failed : M.gauge;
  hops : M.histogram;
  scrapes : M.counter;
  uptime : M.gauge;
  gc_minor_words : M.gauge;
  gc_major_words : M.gauge;
  gc_major_collections : M.gauge;
  live_words : M.gauge;
  slow_threshold : float;
  (* keep-newest ring of threshold-crossing commands: [slow_next] is the
     write cursor, [slow_len] the fill level *)
  slow_buf : slow_entry option array;
  mutable slow_next : int;
  mutable slow_len : int;
}

let create ?(slow_threshold = 0.010) ?(slow_keep = 32) () =
  if slow_keep < 1 then invalid_arg "Service_metrics.create: slow_keep < 1";
  let registry = M.create () in
  { registry;
    net = Arnet_obs.Metrics_sink.create registry;
    started_at = Unix.gettimeofday ();
    commands = Hashtbl.create 8;
    latency = Hashtbl.create 16;
    domains = Hashtbl.create 8;
    batch_size =
      M.histogram registry ~help:"Commands per binary frame"
        ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.;
                    2048.; 4096. |]
        "arnet_batch_size";
    epoch =
      M.gauge registry
        ~help:"Control-plane epoch: bumped by FAIL/REPAIR/RELOAD/LINK/DRAIN"
        "arnet_service_epoch";
    admitted =
      M.counter registry ~help:"Calls admitted" "arn_service_admitted_total";
    blocked =
      M.counter registry ~help:"Calls refused" "arn_service_blocked_total";
    errors =
      M.counter registry ~help:"Commands answered with ERR"
        "arn_service_errors_total";
    torn_down =
      M.counter registry ~help:"Calls released by TEARDOWN"
        "arn_service_teardown_total";
    reloads =
      M.counter registry ~help:"Protection-level recomputations"
        "arn_service_reloads_total";
    active =
      M.gauge registry ~help:"Calls currently holding circuits"
        "arn_service_active_calls";
    occupancy =
      M.gauge registry ~help:"Circuits held over all links"
        "arn_service_occupancy_circuits";
    failed =
      M.gauge registry ~help:"Links currently failed"
        "arn_service_failed_links";
    hops =
      M.histogram registry ~help:"Admitted path length (hops)"
        ~buckets:[| 1.; 2.; 3.; 4.; 6.; 8.; 12. |]
        "arn_service_admitted_hops";
    scrapes =
      M.counter registry ~help:"Telemetry scrapes served"
        "arn_process_scrapes_total";
    uptime =
      M.gauge registry ~help:"Seconds since the daemon started"
        "arn_process_uptime_seconds";
    gc_minor_words =
      M.gauge registry ~help:"Words allocated in the minor heap (lifetime)"
        "arn_process_gc_minor_words";
    gc_major_words =
      M.gauge registry ~help:"Words allocated in the major heap (lifetime)"
        "arn_process_gc_major_words";
    gc_major_collections =
      M.gauge registry ~help:"Completed major collection cycles"
        "arn_process_gc_major_collections";
    live_words =
      M.gauge registry ~help:"Live words on the heap at last scrape"
        "arn_process_live_words";
    slow_threshold;
    slow_buf = Array.make slow_keep None;
    slow_next = 0;
    slow_len = 0 }

let registry t = t.registry
let observer t ev = Arnet_obs.Metrics_sink.emit t.net ev
let slow_threshold t = t.slow_threshold

let verb = function
  | Wire.Setup _ -> "setup"
  | Wire.Teardown _ -> "teardown"
  | Wire.Fail _ -> "fail"
  | Wire.Repair _ -> "repair"
  | Wire.Reload -> "reload"
  | Wire.Link_add _ -> "link-add"
  | Wire.Link_del _ -> "link-del"
  | Wire.Stats -> "stats"
  | Wire.Drain -> "drain"
  | Wire.Quit -> "quit"
  | Wire.Hello _ -> "hello"

let verdict = function
  | Wire.Admitted _ -> "admitted"
  | Wire.Blocked -> "blocked"
  | Wire.Err _ -> "error"
  | Wire.Done | Wire.Reloaded _ | Wire.Patched _ | Wire.Stats_reply _ -> "ok"

let command_counter t v =
  match Hashtbl.find_opt t.commands v with
  | Some c -> c
  | None ->
    let c =
      M.counter t.registry ~labels:[ ("verb", v) ]
        ~help:"Wire commands handled" "arn_service_commands_total"
    in
    Hashtbl.add t.commands v c;
    c

let latency_buckets = M.log_buckets ~lo:1e-6 ~hi:10.0 ~per_decade:3

let latency_histogram t key =
  match Hashtbl.find_opt t.latency key with
  | Some h -> h
  | None ->
    let v, d = key in
    let h =
      M.histogram t.registry
        ~labels:[ ("verb", v); ("verdict", d) ]
        ~help:"Wire command handling latency, wall seconds"
        ~buckets:latency_buckets "arn_command_latency_seconds"
    in
    Hashtbl.add t.latency key h;
    h

let push_slow t e =
  let cap = Array.length t.slow_buf in
  t.slow_buf.(t.slow_next) <- Some e;
  t.slow_next <- (t.slow_next + 1) mod cap;
  if t.slow_len < cap then t.slow_len <- t.slow_len + 1

let record_latency t ~verb ~verdict seconds =
  M.observe (latency_histogram t (verb, verdict)) seconds;
  if seconds >= t.slow_threshold then begin
    push_slow t { at = Unix.gettimeofday (); verb; verdict; seconds };
    true
  end
  else false

let slow_log t =
  let cap = Array.length t.slow_buf in
  List.init t.slow_len (fun i ->
      match t.slow_buf.(((t.slow_next - 1 - i) mod cap + cap) mod cap) with
      | Some e -> e
      | None -> assert false (* within [slow_len] of the cursor *))

let record t st cmd resp =
  M.inc (command_counter t (verb cmd));
  (match resp with
  | Wire.Admitted { path; _ } ->
    M.inc t.admitted;
    M.observe t.hops (float_of_int (List.length path - 1))
  | Wire.Blocked -> M.inc t.blocked
  | Wire.Err _ -> M.inc t.errors
  | Wire.Reloaded _ | Wire.Patched _ -> ()
  | Wire.Done -> (
    match cmd with Wire.Teardown _ -> M.inc t.torn_down | _ -> ())
  | Wire.Stats_reply _ -> ());
  (* sync rather than inc: [--reload-every] cadence reloads happen inside
     State without a RELOAD command on the wire (likewise failovers,
     which only State's decision loop can classify) *)
  M.inc_by t.reloads
    (float_of_int (State.stats st).Wire.reloads -. M.counter_value t.reloads);
  Arnet_obs.Metrics_sink.sync_failovers t.net
    (State.stats st).Wire.failovers;
  M.set t.active (float_of_int (State.active_calls st));
  M.set t.occupancy
    (float_of_int (Array.fold_left ( + ) 0 (State.occupancy st)));
  M.set t.failed (float_of_int (List.length (State.failed_links st)))

let record_malformed t = M.inc t.errors

let record_batch t size = M.observe t.batch_size (float_of_int size)

let domain_counter t d =
  match Hashtbl.find_opt t.domains d with
  | Some c -> c
  | None ->
    let c =
      M.counter t.registry
        ~labels:[ ("domain", string_of_int d) ]
        ~help:"Wire requests served, by owning domain"
        "arnet_domain_requests_total"
    in
    Hashtbl.add t.domains d c;
    c

let record_domain t d = M.inc (domain_counter t d)
let set_epoch t n = M.set t.epoch (float_of_int n)

let refresh t st =
  M.set t.uptime (Unix.gettimeofday () -. t.started_at);
  (* the monotone counters come from quick_stat, read before the heap
     walk below so the forced major it triggers is not charged to the
     scrape that observed it *)
  let gc = Gc.quick_stat () in
  M.set t.gc_minor_words gc.Gc.minor_words;
  M.set t.gc_major_words gc.Gc.major_words;
  M.set t.gc_major_collections (float_of_int gc.Gc.major_collections);
  (* quick_stat reports live_words as 0; the full walk is scrape-time
     only, never on the command path *)
  M.set t.live_words (float_of_int (Gc.stat ()).Gc.live_words);
  let g = State.graph st in
  let capacities =
    Array.map (fun l -> l.Arnet_topology.Link.capacity) (Arnet_topology.Graph.links g)
  in
  Arnet_obs.Metrics_sink.set_network t.net ~capacities
    ~reserves:(State.reserves st);
  Arnet_obs.Metrics_sink.set_failed_links t.net
    ~link_count:(Array.length capacities) (State.failed_links st);
  Arnet_obs.Metrics_sink.sync_failovers t.net
    (State.stats st).Wire.failovers

let scrape t st =
  M.inc t.scrapes;
  refresh t st;
  M.to_prometheus t.registry

let slow_entry_json e =
  J.Obj
    [ ("at", J.Float e.at);
      ("verb", J.String e.verb);
      ("verdict", J.String e.verdict);
      ("seconds", J.Float e.seconds) ]

let statz t st =
  let s = State.stats st in
  J.Obj
    [ ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
      ("clock", J.Float (State.clock st));
      ("accepted", J.Int s.Wire.accepted);
      ("blocked", J.Int s.Wire.blocked);
      ("torn_down", J.Int s.Wire.torn_down);
      ("dropped", J.Int s.Wire.dropped);
      ("failovers", J.Int s.Wire.failovers);
      ("active", J.Int s.Wire.active);
      ("reloads", J.Int s.Wire.reloads);
      ("draining", J.Bool s.Wire.draining);
      ("failed_links", J.List (List.map (fun k -> J.Int k) s.Wire.failed));
      ("occupancy_circuits",
       J.Int (Array.fold_left ( + ) 0 (State.occupancy st)));
      ("slow_threshold_s", J.Float t.slow_threshold);
      ("slow_commands", J.List (List.map slow_entry_json (slow_log t))) ]

let to_prometheus t = M.to_prometheus t.registry
