let handle st = function
  | Wire.Setup { src; dst; time } -> State.setup st ~src ~dst ~time
  | Wire.Teardown { id } -> State.teardown st ~id
  | Wire.Fail { link } -> State.fail st ~link
  | Wire.Repair { link } -> State.repair st ~link
  | Wire.Reload -> State.reload st
  | Wire.Link_add { src; dst; capacity } ->
    State.link_add st ~src ~dst ~capacity
  | Wire.Link_del { src; dst } -> State.link_del st ~src ~dst
  | Wire.Stats -> Wire.Stats_reply (State.stats st)
  | Wire.Drain -> State.drain st
  | Wire.Quit -> Wire.Done
  (* framing negotiation belongs to the transport; a HELLO that reaches
     the decision layer (direct Session use, or a mode the server did
     not recognize) is refused rather than silently accepted *)
  | Wire.Hello { mode } ->
    Wire.Err
      { code = "bad-argument";
        detail = Printf.sprintf "unknown framing mode %S (line | binary)" mode }

let handle_line st line =
  match Wire.parse_command line with
  | Error (code, detail) -> (Wire.Err { code; detail }, `Continue)
  | Ok Wire.Quit -> (handle st Wire.Quit, `Quit)
  | Ok cmd -> (handle st cmd, `Continue)
