(** Server-side metrics, on the {!Arnet_obs.Metrics} registry.

    One record per daemon, holding every family the telemetry endpoint
    exposes:

    - [arn_service_*] — command/verdict counters, active-call,
      total-occupancy and failed-link gauges, admitted-hops histogram;
    - [arn_command_latency_seconds{verb,verdict}] — log-bucket
      per-command handling latency, fed by the server's monotonic
      timer, with a keep-newest ring of threshold-crossing commands
      behind it (the slow log);
    - [arn_process_*] — uptime, GC counters and live-heap words,
      refreshed on {!scrape};
    - the [arnet_*] network series of {!Arnet_obs.Metrics_sink}
      (per-link occupancy/capacity/reserve, per-pair accept/block,
      per-link alternate refusals), registered on the same registry so
      [arn serve --telemetry] and [arn sim --metrics] expose one
      registry shape.  Feed the sink by passing {!observer} to
      {!State.create}. *)

type t

type slow_entry = {
  at : float;  (** wall-clock time the command completed *)
  verb : string;
  verdict : string;
  seconds : float;  (** handling latency *)
}

val create : ?slow_threshold:float -> ?slow_keep:int -> unit -> t
(** [slow_threshold] (seconds, default 10 ms) gates the slow-command
    ring; [slow_keep] (default 32) is its capacity — older entries are
    overwritten, newest kept.
    @raise Invalid_argument when [slow_keep < 1]. *)

val registry : t -> Arnet_obs.Metrics.t

val observer : t -> Arnet_obs.Event.t -> unit
(** The engine-event hook maintaining the [arnet_*] network series;
    pass as [?observer] to {!State.create}. *)

val verb : Wire.command -> string
(** Lower-case wire verb (["setup"], ["teardown"], ...). *)

val verdict : Wire.response -> string
(** Latency-label verdict: ["admitted"], ["blocked"], ["error"], or
    ["ok"]. *)

val record : t -> State.t -> Wire.command -> Wire.response -> unit
(** Account one handled command and refresh the state gauges. *)

val record_malformed : t -> unit
(** Account an input line that failed to parse (answered [ERR]). *)

val record_batch : t -> int -> unit
(** Observe one binary frame's command count into [arnet_batch_size]. *)

val record_domain : t -> int -> unit
(** Count one wire request against
    [arnet_domain_requests_total{domain}] — the sharding-balance
    series (domain 0 is the single-domain loop / the dispatcher). *)

val set_epoch : t -> int -> unit
(** Publish the control-plane epoch ([arnet_service_epoch]): the
    server bumps its epoch on every FAIL/REPAIR/RELOAD/LINK
    PATCH/DRAIN and pushes it here at scrape time. *)

val record_latency :
  t -> verb:string -> verdict:string -> float -> bool
(** Observe one command's handling latency (seconds).  Returns [true]
    when it crossed the slow threshold (and so entered the slow log) —
    the caller's cue to emit a warning. *)

val slow_threshold : t -> float
val slow_log : t -> slow_entry list
(** Newest first, at most [slow_keep] entries. *)

val refresh : t -> State.t -> unit
(** Bring the scrape-time series current: uptime, GC counters
    ([Gc.quick_stat]), live-heap words, and the per-link
    capacity/reserve gauges from the daemon state. *)

val scrape : t -> State.t -> string
(** [refresh], count the scrape, and render the registry — the
    [/metrics] body. *)

val statz : t -> State.t -> Arnet_obs.Jsonu.t
(** The [/statz] JSON document: daemon counters, clock, failure set,
    occupancy, and the slow-command log. *)

val to_prometheus : t -> string
