(** Server-side metrics, on the {!Arnet_obs.Metrics} registry.

    One record per daemon: command/verdict counters, an active-call and
    total-occupancy gauge pair, and log-scale histograms of admitted
    path lengths — the Prometheus snapshot [arn serve --metrics] writes
    at drain time. *)

type t

val create : unit -> t
val registry : t -> Arnet_obs.Metrics.t

val record : t -> State.t -> Wire.command -> Wire.response -> unit
(** Account one handled command and refresh the state gauges. *)

val record_malformed : t -> unit
(** Account an input line that failed to parse (answered [ERR]). *)

val to_prometheus : t -> string
