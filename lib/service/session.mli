(** One protocol step: a wire command applied to the daemon state.

    The session layer is the pure bridge between {!Wire} and {!State}
    — no sockets — so the whole protocol is exercisable in-process by
    tests, and the server loop reduces to line framing plus
    {!handle_line}. *)

val handle : State.t -> Wire.command -> Wire.response
(** Dispatch one parsed command.  [Quit] answers [Done]; closing the
    connection is the transport's job. *)

val handle_line : State.t -> string -> Wire.response * [ `Continue | `Quit ]
(** Parse then dispatch one raw input line; malformed input yields the
    typed [Err] of {!Wire.parse_command}.  [`Quit] tells the transport
    to close this connection after writing the response. *)
