type class_load = { offered : float; bandwidth : int }

let validate ~capacity classes =
  if capacity < 1 then invalid_arg "Kaufman_roberts.validate: capacity < 1";
  if classes = [] then invalid_arg "Kaufman_roberts.validate: no classes";
  List.iter
    (fun { offered; bandwidth } ->
      if offered <= 0. || not (Float.is_finite offered) then
        invalid_arg "Kaufman_roberts.validate: bad offered load";
      if bandwidth < 1 || bandwidth > capacity then
        invalid_arg "Kaufman_roberts.validate: bandwidth out of range")
    classes

let distribution ~capacity classes =
  validate ~capacity classes;
  (* unnormalized recursion with running renormalization for stability *)
  let q = Array.make (capacity + 1) 0. in
  q.(0) <- 1.;
  for j = 1 to capacity do
    let acc = ref 0. in
    List.iter
      (fun { offered; bandwidth } ->
        if j >= bandwidth then
          acc := !acc +. (offered *. float_of_int bandwidth *. q.(j - bandwidth)))
      classes;
    q.(j) <- !acc /. float_of_int j;
    if q.(j) > 1e250 then begin
      (* rescale everything to avoid overflow at large loads *)
      let scale = 1. /. q.(j) in
      for i = 0 to j do
        q.(i) <- q.(i) *. scale
      done
    end
  done;
  let z = Array.fold_left ( +. ) 0. q in
  Array.map (fun x -> x /. z) q

let class_blocking ~capacity classes =
  let q = distribution ~capacity classes in
  List.map
    (fun { bandwidth; _ } ->
      let acc = ref 0. in
      for j = capacity - bandwidth + 1 to capacity do
        acc := !acc +. q.(j)
      done;
      !acc)
    classes

let mean_occupied ~capacity classes =
  let q = distribution ~capacity classes in
  let acc = ref 0. in
  Array.iteri (fun j p -> acc := !acc +. (float_of_int j *. p)) q;
  !acc

let total_carried_load ~capacity classes =
  let blocking = class_blocking ~capacity classes in
  List.fold_left2
    (fun acc { offered; bandwidth } b ->
      acc +. (offered *. float_of_int bandwidth *. (1. -. b)))
    0. classes blocking

let reservation_blocking ~capacity ~reserve classes =
  if reserve < 0 || reserve >= capacity then
    invalid_arg "Kaufman_roberts.reservation_blocking: reserve out of range";
  class_blocking ~capacity:(capacity - reserve) classes
