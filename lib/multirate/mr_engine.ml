open Arnet_topology
open Arnet_paths
open Arnet_sim

type outcome = Routed of Path.t | Lost

type policy = {
  name : string;
  decide : occupancy:int array -> call:Mr_trace.call -> outcome;
}

type stats = {
  offered : int array;
  blocked : int array;
  carried_alternate : int;
  total_offered_bandwidth : int;
  total_blocked_bandwidth : int;
}

(* the same structure-of-arrays treatment as Engine.run: departure
   payloads are call indices (an immediate int), the seized link ids are
   remembered by aliasing the routed path's own immutable link_ids (no
   per-admit copy), deadlines are read from the trace's packed
   [ends]/[times] columns, and the primary-hop lookup keys a dense
   [n*n] int table instead of a tuple-keyed hashtable — so the per-call
   steady-state path allocates no minor-heap words *)
let run ?(warmup = 10.) ~graph ~workload ~policy ~duration
    (trace : Mr_trace.t) =
  if warmup < 0. || warmup >= duration then
    invalid_arg "Mr_engine.run: warmup must be in [0, duration)";
  if Mr_trace.nodes workload <> Graph.node_count graph then
    invalid_arg "Mr_engine.run: workload/graph size mismatch";
  let calls = trace.Mr_trace.calls in
  let times = trace.Mr_trace.times and ends = trace.Mr_trace.ends in
  let classes = workload.Mr_trace.classes in
  let nc = Array.length classes in
  let n = Graph.node_count graph in
  let m = Graph.link_count graph in
  let capacity = Array.make m 0 in
  Graph.iter_links (fun l -> capacity.(l.Link.id) <- l.Link.capacity) graph;
  let class_bw =
    Array.map (fun (c : Call_class.t) -> c.Call_class.bandwidth) classes
  in
  let occupancy = Array.make m 0 in
  let departures : int Event_queue.t = Event_queue.create () in
  let admitted = Array.make (max 1 (Array.length calls)) [||] in
  let offered = Array.make nc 0 and blocked = Array.make nc 0 in
  let carried_alternate = ref 0 in
  let offered_bw = ref 0 and blocked_bw = ref 0 in
  (* min_int = not computed yet; -1 = unroutable pair *)
  let hops_table = Array.make (n * n) min_int in
  let primary_hops src dst =
    let key = (src * n) + dst in
    let h = Array.unsafe_get hops_table key in
    if h <> min_int then h
    else begin
      let h =
        match Bfs.min_hop_path graph ~src ~dst with
        | Some p -> Path.hops p
        | None -> -1
      in
      hops_table.(key) <- h;
      h
    end
  in
  let rec release_ids ids bandwidth i =
    if i < Array.length ids then begin
      let id = Array.unsafe_get ids i in
      occupancy.(id) <- occupancy.(id) - bandwidth;
      assert (occupancy.(id) >= 0);
      release_ids ids bandwidth (i + 1)
    end
  in
  let release j =
    let ids = admitted.(j) in
    let bandwidth = class_bw.((Array.unsafe_get calls j).Mr_trace.class_index) in
    release_ids ids bandwidth 0;
    admitted.(j) <- [||]  (* drop the alias once the call departs *)
  in
  let rec occupy ids bandwidth i =
    if i < Array.length ids then begin
      let id = Array.unsafe_get ids i in
      if id < 0 || id >= m then
        invalid_arg "Mr_engine.run: policy routed over unknown link";
      if occupancy.(id) + bandwidth > capacity.(id) then
        invalid_arg "Mr_engine.run: policy oversubscribed a link";
      occupancy.(id) <- occupancy.(id) + bandwidth;
      occupy ids bandwidth (i + 1)
    end
  in
  let handle i (call : Mr_trace.call) =
    while Event_queue.next_due departures ~deadlines:times i do
      release (Event_queue.pop_payload departures)
    done;
    let ci = call.Mr_trace.class_index in
    let bandwidth = Array.unsafe_get class_bw ci in
    let measured = call.Mr_trace.time >= warmup in
    if measured then begin
      offered.(ci) <- offered.(ci) + 1;
      offered_bw := !offered_bw + bandwidth
    end;
    match policy.decide ~occupancy ~call with
    | Lost ->
      if measured then begin
        blocked.(ci) <- blocked.(ci) + 1;
        blocked_bw := !blocked_bw + bandwidth
      end
    | Routed p ->
      if Path.src p <> call.Mr_trace.src || Path.dst p <> call.Mr_trace.dst
      then invalid_arg "Mr_engine.run: wrong endpoints";
      occupy p.Path.link_ids bandwidth 0;
      admitted.(i) <- p.Path.link_ids;
      Event_queue.push_at departures ~times:ends i i;
      if
        measured
        && Path.hops p > primary_hops call.Mr_trace.src call.Mr_trace.dst
      then incr carried_alternate
  in
  Array.iteri handle calls;
  { offered;
    blocked;
    carried_alternate = !carried_alternate;
    total_offered_bandwidth = !offered_bw;
    total_blocked_bandwidth = !blocked_bw }

let class_blocking s ci =
  if s.offered.(ci) = 0 then 0.
  else float_of_int s.blocked.(ci) /. float_of_int s.offered.(ci)

let call_blocking s =
  let o = Array.fold_left ( + ) 0 s.offered in
  if o = 0 then 0.
  else float_of_int (Array.fold_left ( + ) 0 s.blocked) /. float_of_int o

let bandwidth_blocking s =
  if s.total_offered_bandwidth = 0 then 0.
  else
    float_of_int s.total_blocked_bandwidth
    /. float_of_int s.total_offered_bandwidth

let replicate ?warmup ?(domains = 1) ~seeds ~duration ~graph ~workload
    ~policies () =
  if seeds = [] then invalid_arg "Mr_engine.replicate: no seeds";
  if domains < 1 then
    invalid_arg "Mr_engine.replicate: domains must be >= 1";
  let trace_for seed =
    let rng = Rng.substream (Rng.create ~seed) "mr-trace" in
    Mr_trace.generate ~rng ~duration workload
  in
  if domains = 1 then begin
    let results = List.map (fun p -> (p.name, ref [])) policies in
    let one_seed seed =
      let trace = trace_for seed in
      List.iter2
        (fun policy (_, acc) ->
          acc := run ?warmup ~graph ~workload ~policy ~duration trace :: !acc)
        policies results
    in
    List.iter one_seed seeds;
    List.map (fun (name, acc) -> (name, List.rev !acc)) results
  end
  else begin
    (* same sharding as Engine.replicate: independent (seed x policy)
       runs, each regenerating its workload inside the worker *)
    let seed_arr = Array.of_list seeds in
    let policy_arr = Array.of_list policies in
    let np = Array.length policy_arr in
    let jobs =
      List.concat_map
        (fun si -> List.init np (fun pi -> (si, pi)))
        (List.init (Array.length seed_arr) Fun.id)
    in
    let one (si, pi) =
      let trace = trace_for seed_arr.(si) in
      run ?warmup ~graph ~workload ~policy:policy_arr.(pi) ~duration trace
    in
    let stats =
      try Pool.map ~domains one jobs
      with Pool.Worker { index; exn } ->
        raise
          (Engine.Replication_failure
             { seed = seed_arr.(index / np);
               policy = policy_arr.(index mod np).name;
               exn })
    in
    let flat = Array.of_list stats in
    List.mapi
      (fun pi p ->
        ( p.name,
          List.init (Array.length seed_arr) (fun si ->
              flat.((si * np) + pi)) ))
      policies
  end
