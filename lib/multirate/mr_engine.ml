open Arnet_topology
open Arnet_paths
open Arnet_sim

type outcome = Routed of Path.t | Lost

type policy = {
  name : string;
  decide : occupancy:int array -> call:Mr_trace.call -> outcome;
}

type stats = {
  offered : int array;
  blocked : int array;
  carried_alternate : int;
  total_offered_bandwidth : int;
  total_blocked_bandwidth : int;
}

let run ?(warmup = 10.) ~graph ~workload ~policy ~duration calls =
  if warmup < 0. || warmup >= duration then
    invalid_arg "Mr_engine.run: warmup must be in [0, duration)";
  if Mr_trace.nodes workload <> Graph.node_count graph then
    invalid_arg "Mr_engine.run: workload/graph size mismatch";
  let classes = workload.Mr_trace.classes in
  let nc = Array.length classes in
  let m = Graph.link_count graph in
  let capacity = Array.make m 0 in
  Graph.iter_links (fun l -> capacity.(l.Link.id) <- l.Link.capacity) graph;
  let occupancy = Array.make m 0 in
  let departures : (int array * int) Event_queue.t = Event_queue.create () in
  let offered = Array.make nc 0 and blocked = Array.make nc 0 in
  let carried_alternate = ref 0 in
  let offered_bw = ref 0 and blocked_bw = ref 0 in
  let routes_primary_hops = Hashtbl.create 64 in
  let primary_hops src dst =
    match Hashtbl.find_opt routes_primary_hops (src, dst) with
    | Some h -> h
    | None ->
      let h =
        match Bfs.min_hop_path graph ~src ~dst with
        | Some p -> Path.hops p
        | None -> -1
      in
      Hashtbl.add routes_primary_hops (src, dst) h;
      h
  in
  let release _time (link_ids, bandwidth) =
    Array.iter
      (fun id ->
        occupancy.(id) <- occupancy.(id) - bandwidth;
        assert (occupancy.(id) >= 0))
      link_ids
  in
  let admit (call : Mr_trace.call) (p : Path.t) bandwidth =
    Array.iter
      (fun id ->
        if occupancy.(id) + bandwidth > capacity.(id) then
          invalid_arg "Mr_engine.run: policy oversubscribed a link";
        occupancy.(id) <- occupancy.(id) + bandwidth)
      p.Path.link_ids;
    Event_queue.push departures
      ~time:(call.Mr_trace.time +. call.Mr_trace.holding)
      (Array.copy p.Path.link_ids, bandwidth)
  in
  let handle (call : Mr_trace.call) =
    Event_queue.pop_until departures ~time:call.Mr_trace.time ~f:release;
    let ci = call.Mr_trace.class_index in
    let bandwidth = classes.(ci).Call_class.bandwidth in
    let measured = call.Mr_trace.time >= warmup in
    if measured then begin
      offered.(ci) <- offered.(ci) + 1;
      offered_bw := !offered_bw + bandwidth
    end;
    match policy.decide ~occupancy ~call with
    | Lost ->
      if measured then begin
        blocked.(ci) <- blocked.(ci) + 1;
        blocked_bw := !blocked_bw + bandwidth
      end
    | Routed p ->
      if Path.src p <> call.Mr_trace.src || Path.dst p <> call.Mr_trace.dst
      then invalid_arg "Mr_engine.run: wrong endpoints";
      admit call p bandwidth;
      if
        measured
        && Path.hops p > primary_hops call.Mr_trace.src call.Mr_trace.dst
      then incr carried_alternate
  in
  Array.iter handle calls;
  { offered;
    blocked;
    carried_alternate = !carried_alternate;
    total_offered_bandwidth = !offered_bw;
    total_blocked_bandwidth = !blocked_bw }

let class_blocking s ci =
  if s.offered.(ci) = 0 then 0.
  else float_of_int s.blocked.(ci) /. float_of_int s.offered.(ci)

let call_blocking s =
  let o = Array.fold_left ( + ) 0 s.offered in
  if o = 0 then 0.
  else float_of_int (Array.fold_left ( + ) 0 s.blocked) /. float_of_int o

let bandwidth_blocking s =
  if s.total_offered_bandwidth = 0 then 0.
  else
    float_of_int s.total_blocked_bandwidth
    /. float_of_int s.total_offered_bandwidth

let replicate ?warmup ?(domains = 1) ~seeds ~duration ~graph ~workload
    ~policies () =
  if seeds = [] then invalid_arg "Mr_engine.replicate: no seeds";
  if domains < 1 then
    invalid_arg "Mr_engine.replicate: domains must be >= 1";
  let calls_for seed =
    let rng = Rng.substream (Rng.create ~seed) "mr-trace" in
    Mr_trace.generate ~rng ~duration workload
  in
  if domains = 1 then begin
    let results = List.map (fun p -> (p.name, ref [])) policies in
    let one_seed seed =
      let calls = calls_for seed in
      List.iter2
        (fun policy (_, acc) ->
          acc := run ?warmup ~graph ~workload ~policy ~duration calls :: !acc)
        policies results
    in
    List.iter one_seed seeds;
    List.map (fun (name, acc) -> (name, List.rev !acc)) results
  end
  else begin
    (* same sharding as Engine.replicate: independent (seed x policy)
       runs, each regenerating its workload inside the worker *)
    let seed_arr = Array.of_list seeds in
    let policy_arr = Array.of_list policies in
    let np = Array.length policy_arr in
    let jobs =
      List.concat_map
        (fun si -> List.init np (fun pi -> (si, pi)))
        (List.init (Array.length seed_arr) Fun.id)
    in
    let one (si, pi) =
      let calls = calls_for seed_arr.(si) in
      run ?warmup ~graph ~workload ~policy:policy_arr.(pi) ~duration calls
    in
    let stats =
      try Pool.map ~domains one jobs
      with Pool.Worker { index; exn } ->
        raise
          (Engine.Replication_failure
             { seed = seed_arr.(index / np);
               policy = policy_arr.(index mod np).name;
               exn })
    in
    let flat = Array.of_list stats in
    List.mapi
      (fun pi p ->
        ( p.name,
          List.init (Array.length seed_arr) (fun si ->
              flat.((si * np) + pi)) ))
      policies
  end
