(** Multi-class replayable workloads. *)

open Arnet_traffic

type workload = private {
  classes : Call_class.t array;
  demands : Matrix.t array;  (** per class, demand in *calls* (Erlangs) *)
}

val workload : (Call_class.t * Matrix.t) list -> workload
(** @raise Invalid_argument on empty input or mismatched matrix sizes. *)

val nodes : workload -> int

val offered_bandwidth : workload -> float
(** Total offered bandwidth load: [sum_c bandwidth_c * total demand_c]. *)

type call = {
  time : float;
  src : int;
  dst : int;
  holding : float;
  class_index : int;
  u : float;
}

type t = private {
  calls : call array;
  times : float array;  (** [times.(i) = calls.(i).time] *)
  ends : float array;  (** [ends.(i) = calls.(i).time + calls.(i).holding] *)
}
(** A replayable trace: the call records plus packed arrival/departure
    columns, the same structure-of-arrays split as
    {!Arnet_sim.Trace.t} — the engine's drain loop and departure pushes
    read the float columns directly, so the per-call hot path never
    boxes a time. *)

val of_calls : call array -> t
(** Wrap a hand-built call array (must be sorted by [time]), deriving
    the packed columns.
    @raise Invalid_argument when out of order. *)

val generate : rng:Arnet_sim.Rng.t -> duration:float -> workload -> t
(** Superposed Poisson arrivals over classes and pairs, holding times
    exponential with each class's mean; sorted by time.
    @raise Invalid_argument when total demand is zero. *)
