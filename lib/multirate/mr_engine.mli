(** Discrete-event engine for multi-rate calls.

    Like {!Arnet_sim.Engine} but occupancy is counted in bandwidth
    units: a class-[c] call seizes [bandwidth_c] units on every link of
    its path for its holding time. *)

open Arnet_topology
open Arnet_paths

type outcome = Routed of Path.t | Lost

type policy = {
  name : string;
  decide : occupancy:int array -> call:Mr_trace.call -> outcome;
}

type stats = {
  offered : int array;  (** per class *)
  blocked : int array;  (** per class *)
  carried_alternate : int;
  total_offered_bandwidth : int;  (** units requested in the window *)
  total_blocked_bandwidth : int;  (** units refused in the window *)
}

val run :
  ?warmup:float ->
  graph:Graph.t -> workload:Mr_trace.workload -> policy:policy ->
  duration:float -> Mr_trace.t -> stats
(** Replays a trace.  Structured like {!Arnet_sim.Engine.run}: the
    steady-state per-call path (admit, departure drain, class counters)
    allocates no minor-heap words — departure payloads are call
    indices, seized links alias the routed path's own [link_ids], and
    event times come from the trace's packed columns.
    @raise Invalid_argument if the policy oversubscribes a link or on
    size mismatches. *)

val class_blocking : stats -> int -> float
(** Blocking of one class; 0 when it offered nothing. *)

val call_blocking : stats -> float
(** All classes pooled, per call. *)

val bandwidth_blocking : stats -> float
(** Blocked bandwidth over offered bandwidth — weights wideband calls by
    their size. *)

val replicate :
  ?warmup:float ->
  ?domains:int ->
  seeds:int list ->
  duration:float ->
  graph:Graph.t ->
  workload:Mr_trace.workload ->
  policies:policy list ->
  unit ->
  (string * stats list) list
(** Shared traces across policies, fresh trace per seed — the same
    methodology as the single-rate engine.  [domains] (default 1)
    shards the independent (seed, policy) runs across OCaml domains
    exactly like {!Arnet_sim.Engine.replicate}: results are
    bit-identical to the sequential run, policies must be safe for
    concurrent use, and a failing run cancels the pool and re-raises as
    {!Arnet_sim.Engine.Replication_failure}. *)
