open Arnet_traffic
open Arnet_sim

type workload = { classes : Call_class.t array; demands : Matrix.t array }

let workload bindings =
  if bindings = [] then invalid_arg "Mr_trace.workload: no classes";
  let classes = Array.of_list (List.map fst bindings) in
  let demands = Array.of_list (List.map snd bindings) in
  let n = Matrix.nodes demands.(0) in
  Array.iter
    (fun m ->
      if Matrix.nodes m <> n then
        invalid_arg "Mr_trace.workload: matrix size mismatch")
    demands;
  { classes; demands }

let nodes w = Matrix.nodes w.demands.(0)

let offered_bandwidth w =
  let acc = ref 0. in
  Array.iteri
    (fun i (c : Call_class.t) ->
      acc := !acc +. (float_of_int c.Call_class.bandwidth *. Matrix.total w.demands.(i)))
    w.classes;
  !acc

type call = {
  time : float;
  src : int;
  dst : int;
  holding : float;
  class_index : int;
  u : float;
}

type t = {
  calls : call array;
  times : float array;
  ends : float array;
}

let of_calls calls =
  let n = Array.length calls in
  let times = Array.make n 0. and ends = Array.make n 0. in
  let prev = ref neg_infinity in
  Array.iteri
    (fun i c ->
      if c.time < !prev then
        invalid_arg "Mr_trace.of_calls: calls not sorted by time";
      prev := c.time;
      times.(i) <- c.time;
      ends.(i) <- c.time +. c.holding)
    calls;
  { calls; times; ends }

let generate ~rng ~duration w =
  if duration <= 0. then invalid_arg "Mr_trace.generate: bad duration";
  (* flatten (class, pair) streams into one inverse-cdf table *)
  let entries = ref [] in
  Array.iteri
    (fun ci m ->
      Matrix.iter_demands m (fun src dst d -> entries := (ci, src, dst, d) :: !entries))
    w.demands;
  let entries = Array.of_list (List.rev !entries) in
  let ne = Array.length entries in
  if ne = 0 then invalid_arg "Mr_trace.generate: no demand";
  let cumulative = Array.make ne 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i (_, _, _, d) ->
      acc := !acc +. d;
      cumulative.(i) <- !acc)
    entries;
  let total = !acc in
  let pick x =
    let lo = ref 0 and hi = ref (ne - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > x then hi := mid else lo := mid + 1
    done;
    entries.(!lo)
  in
  let out = ref [] in
  let t = ref (Rng.exponential rng ~rate:total) in
  while !t < duration do
    let ci, src, dst, _ = pick (Rng.float rng total) in
    let mean = w.classes.(ci).Call_class.mean_holding in
    let holding = Rng.exponential rng ~rate:(1. /. mean) in
    let u = Rng.uniform rng in
    out := { time = !t; src; dst; holding; class_index = ci; u } :: !out;
    t := !t +. Rng.exponential rng ~rate:total
  done;
  of_calls (Array.of_list (List.rev !out))
