open Arnet_topology
open Arnet_paths
open Arnet_sim
open Arnet_core

type stats = {
  offered : int;
  blocked : int;
  carried_primary : int;
  carried_alternate : int;
  glare_events : int;
  setup_attempts : int;
  total_setup_latency : float;
}

let blocking s =
  if s.offered = 0 then 0. else float_of_int s.blocked /. float_of_int s.offered

let mean_setup_latency s =
  let carried = s.carried_primary + s.carried_alternate in
  if carried = 0 then 0. else s.total_setup_latency /. float_of_int carried

(* one in-flight call set-up *)
type setup = {
  arrival_time : float;
  holding : float;
  measured : bool;
  mutable remaining : (Path.t * bool) list;  (* candidates, is_primary *)
  mutable path : Path.t;
  mutable is_primary : bool;
  mutable booked : int list;  (* links booked so far on the backward pass *)
}

type event =
  | Arrival of Trace.call
  | Forward of setup * int  (* about to check link [i] of the path *)
  | Backward of setup * int  (* about to book link [i]; books run from
                                the last link down to 0 *)
  | Established of setup
  | Departure of int array

let run ?(warmup = 10.) ?(hop_latency = 0.01) ~graph ~routes ~reserves
    ~allow_alternates trace =
  let { Trace.calls; duration; matrix; _ } = trace in
  if hop_latency < 0. || not (Float.is_finite hop_latency) then
    invalid_arg "Setup_sim.run: bad hop latency";
  if warmup < 0. || warmup >= duration then
    invalid_arg "Setup_sim.run: warmup must be in [0, duration)";
  if Arnet_traffic.Matrix.nodes matrix <> Graph.node_count graph then
    invalid_arg "Setup_sim.run: trace/graph size mismatch";
  let capacities =
    Array.map (fun (l : Link.t) -> l.capacity) (Graph.links graph)
  in
  let admission = Admission.make ~capacities ~reserves in
  let occupancy = Array.make (Graph.link_count graph) 0 in
  let queue : event Event_queue.t = Event_queue.create () in
  let offered = ref 0 and blocked = ref 0 in
  let carried_primary = ref 0 and carried_alternate = ref 0 in
  let glare_events = ref 0 and setup_attempts = ref 0 in
  let total_setup_latency = ref 0. in
  Array.iter (fun c -> Event_queue.push queue ~time:c.Trace.time (Arrival c)) calls;
  let link_admits s k =
    if s.is_primary then Admission.link_admits_primary admission ~occupancy k
    else Admission.link_admits_alternate admission ~occupancy k
  in
  (* start the next candidate path (or lose the call) at [time] *)
  let rec next_attempt s ~time =
    match s.remaining with
    | [] -> if s.measured then incr blocked
    | (path, is_primary) :: rest ->
      s.remaining <- rest;
      s.path <- path;
      s.is_primary <- is_primary;
      s.booked <- [];
      if s.measured then incr setup_attempts;
      Event_queue.push queue ~time (Forward (s, 0))
  and handle time = function
    | Arrival c ->
      let measured = c.Trace.time >= warmup in
      if measured then incr offered;
      let src = c.Trace.src and dst = c.Trace.dst in
      if not (Route_table.has_route routes ~src ~dst) then begin
        if measured then incr blocked
      end
      else begin
        let primary = Route_table.primary routes ~src ~dst in
        let candidates =
          (primary, true)
          ::
          (if allow_alternates then
             List.map
               (fun p -> (p, false))
               (Route_table.alternates_excluding routes ~src ~dst primary)
           else [])
        in
        let s =
          { arrival_time = c.Trace.time;
            holding = c.Trace.holding;
            measured;
            remaining = candidates;
            path = primary;
            is_primary = true;
            booked = [] }
        in
        next_attempt s ~time
      end
    | Forward (s, i) ->
      let ids = s.path.Path.link_ids in
      if not (link_admits s ids.(i)) then
        (* crankback: the packet returns over the i links it crossed *)
        next_attempt s ~time:(time +. (float_of_int i *. hop_latency))
      else if i + 1 < Array.length ids then
        Event_queue.push queue
          ~time:(time +. hop_latency)
          (Forward (s, i + 1))
      else
        (* reached the destination; turn around and book backwards *)
        Event_queue.push queue
          ~time:(time +. hop_latency)
          (Backward (s, Array.length ids - 1))
    | Backward (s, i) ->
      let ids = s.path.Path.link_ids in
      let k = ids.(i) in
      if link_admits s k then begin
        occupancy.(k) <- occupancy.(k) + 1;
        s.booked <- k :: s.booked;
        if i = 0 then
          Event_queue.push queue ~time:(time +. hop_latency) (Established s)
        else
          Event_queue.push queue ~time:(time +. hop_latency)
            (Backward (s, i - 1))
      end
      else begin
        (* glare: the capacity vanished between check and booking *)
        if s.measured then incr glare_events;
        List.iter (fun k -> occupancy.(k) <- occupancy.(k) - 1) s.booked;
        s.booked <- [];
        next_attempt s ~time:(time +. (float_of_int i *. hop_latency))
      end
    | Established s ->
      if s.measured then begin
        if s.is_primary then incr carried_primary else incr carried_alternate;
        total_setup_latency := !total_setup_latency +. (time -. s.arrival_time)
      end;
      Event_queue.push queue ~time:(time +. s.holding)
        (Departure (Array.of_list s.booked))
    | Departure ids ->
      Array.iter
        (fun k ->
          occupancy.(k) <- occupancy.(k) - 1;
          assert (occupancy.(k) >= 0))
        ids
  in
  let rec drain () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, ev) ->
      handle time ev;
      drain ()
  in
  drain ();
  { offered = !offered;
    blocked = !blocked;
    carried_primary = !carried_primary;
    carried_alternate = !carried_alternate;
    glare_events = !glare_events;
    setup_attempts = !setup_attempts;
    total_setup_latency = !total_setup_latency }

let compare_with_atomic ?(warmup = 10.) ~graph ~routes ~reserves trace =
  let signalled =
    run ~warmup ~hop_latency:0. ~graph ~routes ~reserves
      ~allow_alternates:true trace
  in
  let atomic =
    Engine.run ~warmup ~graph
      ~policy:(Scheme.controlled ~reserves routes)
      trace
  in
  signalled.blocked = atomic.Stats.blocked
  && signalled.carried_primary = atomic.Stats.carried_primary
  && signalled.carried_alternate = atomic.Stats.carried_alternate
  && signalled.glare_events = 0
