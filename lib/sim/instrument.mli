(** Observability for simulation runs.

    Wraps a policy so that every routing decision is recorded: per-link
    occupancy statistics (sampled at call arrivals — unbiased time
    averages by PASTA, since arrivals are Poisson), the distribution of
    carried path lengths, and an optional bounded decision log for
    replay/debugging.  The wrapped policy makes byte-identical decisions
    to the original.

    The call-count bookkeeping is carried by an embedded
    {!Arnet_obs.Counters} sink: each observed decision is replayed into
    it as synthetic [Arrival] + [Admit]/[Block] events (with warm-up 0,
    so everything counts), and {!hop_histogram} reads back out of it.
    {!counters} exposes the sink, so a recorder interoperates with any
    consumer of the event-stream aggregates. *)

open Arnet_topology

type t

type record = {
  time : float;
  src : int;
  dst : int;
  routed_hops : int option;  (** [None] = the call was lost *)
}

type keep = [ `Earliest | `Newest ]

val create : ?log_limit:int -> ?keep:keep -> Graph.t -> t
(** [log_limit] caps the decision log (default 0: no log kept).

    [keep] selects which side of a too-long run survives (default
    [`Earliest], the historical semantics): [`Earliest] stops logging
    after the first [log_limit] decisions — reproducible prefixes for
    regression comparison; [`Newest] keeps a ring of the last
    [log_limit] decisions — what you want when debugging live (the
    interesting decisions are the ones just before the anomaly). *)

val wrap : t -> Engine.policy -> Engine.policy
(** The instrumented policy.  One recorder should wrap one policy for
    one run; create a fresh recorder per run. *)

val samples : t -> int
(** Number of decisions observed. *)

val mean_occupancy : t -> float array
(** Per link id: time-average calls in progress. *)

val mean_utilization : t -> float array
(** Per link id: mean occupancy over capacity (0 for zero-capacity
    links). *)

val peak_occupancy : t -> int array

val hop_histogram : t -> int array
(** Index [h] counts calls carried on [h]-hop paths; index 0 counts
    lost calls.  Length = node count; longer paths (impossible for
    simple paths) are not counted. *)

val counters : t -> Arnet_obs.Counters.t
(** The embedded counter sink (a single implicit run): offered/blocked/
    carried splits equal to the run's {!Stats} when the run is measured
    from warm-up 0. *)

val log : t -> record list
(** Oldest first; at most [log_limit] entries — the earliest ones under
    [`Earliest] (default), the latest under [`Newest]. *)
