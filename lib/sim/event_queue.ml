(* Structure-of-arrays binary heap: a parallel unboxed [float array] of
   times and an [Obj.t array] of payloads.  Compared to a heap of boxed
   [(float * 'a)] tuples this eliminates two minor-heap allocations per
   push and keeps sift comparisons reading a flat float array (better
   cache locality, no pointer chase per comparison).

   The payload array is untyped ([Obj.t]) for one reason only: vacated
   slots must be overwritten with a dummy so a popped payload is not
   kept reachable by the queue (the [()] immediate serves as the null).
   The [Obj] use is confined to this module; the interface stays a
   plain ['a t].

   Hot-path discipline (no flambda): a [float] argument crosses a
   function boundary boxed, so the allocation-free entry points
   ([push_at], [next_due]) take a [float array] and an index and read
   the time inside the callee.  Tie-breaking and sift order are
   bit-identical to the previous tuple heap. *)

type 'a t = {
  mutable times : float array;
  mutable data : Obj.t array;  (* parallel to [times]; >= size slots are nil *)
  mutable size : int;
}

let nil = Obj.repr ()

let create () = { times = [||]; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let clear h =
  Array.fill h.data 0 h.size nil;
  h.size <- 0

let swap h i j =
  let t = h.times.(i) in
  h.times.(i) <- h.times.(j);
  h.times.(j) <- t;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.times.(i) < h.times.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && h.times.(l) < h.times.(i) then l else i in
  let smallest =
    if r < h.size && h.times.(r) < h.times.(smallest) then r else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let ensure_capacity h =
  if h.size = Array.length h.times then begin
    let cap = Stdlib.max 16 (2 * h.size) in
    let times = Array.make cap 0. in
    let data = Array.make cap nil in
    Array.blit h.times 0 times 0 h.size;
    Array.blit h.data 0 data 0 h.size;
    h.times <- times;
    h.data <- data
  end

let push h ~time x =
  if not (Float.is_finite time) then invalid_arg "Event_queue.push: bad time";
  ensure_capacity h;
  let i = h.size in
  h.times.(i) <- time;
  h.data.(i) <- Obj.repr x;
  h.size <- i + 1;
  sift_up h i

let push_at h ~times i x =
  let time = times.(i) in
  (* [x -. x = 0.] iff x is finite; an inline check so the float is
     never passed (boxed) to a predicate *)
  if not (time -. time = 0.) then invalid_arg "Event_queue.push_at: bad time";
  ensure_capacity h;
  let j = h.size in
  h.times.(j) <- time;
  h.data.(j) <- Obj.repr x;
  h.size <- j + 1;
  sift_up h j

let peek_time h = if h.size = 0 then None else Some h.times.(0)

let next_due h ~deadlines i = h.size > 0 && h.times.(0) <= deadlines.(i)

let pop_payload h =
  if h.size = 0 then invalid_arg "Event_queue.pop_payload: empty queue";
  let x = h.data.(0) in
  let n = h.size - 1 in
  h.size <- n;
  if n > 0 then begin
    h.times.(0) <- h.times.(n);
    h.data.(0) <- h.data.(n);
    h.data.(n) <- nil;
    sift_down h 0
  end
  else h.data.(0) <- nil;
  Obj.obj x

let pop h =
  if h.size = 0 then None
  else begin
    let t = h.times.(0) in
    let x = pop_payload h in
    Some (t, x)
  end

let pop_until h ~time ~f =
  let continue = ref true in
  while !continue do
    if h.size > 0 && h.times.(0) <= time then begin
      let t = h.times.(0) in
      let x = pop_payload h in
      f t x
    end
    else continue := false
  done
