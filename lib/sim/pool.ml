(* The pool now lives in the dependency-free [arnet_pool] library so
   that route compilation (arnet_paths) can shard over domains without a
   cycle through arnet_sim; this module keeps the historical
   [Arnet_sim.Pool] address working for simulator callers. *)
include Arnet_pool
