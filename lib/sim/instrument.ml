open Arnet_topology

type record = {
  time : float;
  src : int;
  dst : int;
  routed_hops : int option;
}

type keep = [ `Earliest | `Newest ]

type t = {
  capacities : int array;
  nodes : int;
  mutable samples : int;
  occupancy_sum : float array;
  peak : int array;
  counters : Arnet_obs.Counters.t;
  log_limit : int;
  keep : keep;
  log_q : record Queue.t;
}

let create ?(log_limit = 0) ?(keep = `Earliest) g =
  if log_limit < 0 then invalid_arg "Instrument.create: negative log limit";
  let m = Graph.link_count g in
  let capacities = Array.make m 0 in
  Graph.iter_links (fun l -> capacities.(l.Link.id) <- l.Link.capacity) g;
  { capacities;
    nodes = Graph.node_count g;
    samples = 0;
    occupancy_sum = Array.make m 0.;
    peak = Array.make m 0;
    (* warm-up 0: the recorder counts every decision it sees *)
    counters = Arnet_obs.Counters.create ~warmup:0. ();
    log_limit;
    keep;
    log_q = Queue.create () }

let log_record t r =
  if t.log_limit > 0 then
    match t.keep with
    | `Earliest ->
      if Queue.length t.log_q < t.log_limit then Queue.add r t.log_q
    | `Newest ->
      Queue.add r t.log_q;
      if Queue.length t.log_q > t.log_limit then ignore (Queue.pop t.log_q)

let observe t ~occupancy ~(call : Trace.call) ~primary outcome =
  t.samples <- t.samples + 1;
  Array.iteri
    (fun k occ ->
      t.occupancy_sum.(k) <- t.occupancy_sum.(k) +. float_of_int occ;
      if occ > t.peak.(k) then t.peak.(k) <- occ)
    occupancy;
  let time = call.Trace.time
  and src = call.Trace.src
  and dst = call.Trace.dst in
  Arnet_obs.Counters.emit t.counters
    (Arnet_obs.Event.Arrival { time; src; dst; holding = call.Trace.holding });
  let routed_hops =
    match outcome with
    | Engine.Lost ->
      Arnet_obs.Counters.emit t.counters
        (Arnet_obs.Event.Block { time; src; dst });
      None
    | Engine.Routed p ->
      let h = Arnet_paths.Path.hops p in
      Arnet_obs.Counters.emit t.counters
        (Arnet_obs.Event.Admit
           { time;
             src;
             dst;
             hops = h;
             primary;
             links = p.Arnet_paths.Path.link_ids });
      Some h
  in
  log_record t { time; src; dst; routed_hops }

let wrap t (policy : Engine.policy) =
  { policy with
    Engine.decide =
      (fun ~occupancy ~call ->
        let outcome = policy.Engine.decide ~occupancy ~call in
        let primary =
          match outcome with
          | Engine.Routed p -> policy.Engine.is_primary ~call p
          | Engine.Lost -> false
        in
        observe t ~occupancy ~call ~primary outcome;
        outcome) }

let samples t = t.samples

let mean_occupancy t =
  let n = float_of_int (Stdlib.max 1 t.samples) in
  Array.map (fun s -> s /. n) t.occupancy_sum

let mean_utilization t =
  let mean = mean_occupancy t in
  Array.mapi
    (fun k m ->
      if t.capacities.(k) = 0 then 0. else m /. float_of_int t.capacities.(k))
    mean

let peak_occupancy t = Array.copy t.peak

let hop_histogram t =
  let out = Array.make t.nodes 0 in
  (match Arnet_obs.Counters.runs t.counters with
  | [] -> ()
  | run :: _ ->
    Array.iteri
      (fun h c -> if h < t.nodes then out.(h) <- c)
      (Arnet_obs.Counters.hop_histogram run));
  out

let counters t = t.counters

let log t = List.of_seq (Queue.to_seq t.log_q)
