open Arnet_topology
open Arnet_paths

type outcome = Routed of Path.t | Lost

type policy = {
  name : string;
  decide : occupancy:int array -> call:Trace.call -> outcome;
  is_primary : call:Trace.call -> Path.t -> bool;
}

(* process-wide odometer: one Array.length per run, so the per-call hot
   path pays nothing.  Atomic because replications may run on several
   domains at once; benchmarks read the delta to report calls/sec. *)
let simulated_calls = Atomic.make 0

let calls_simulated () = Atomic.get simulated_calls

exception
  Replication_failure of { seed : int; policy : string; exn : exn }

let () =
  Printexc.register_printer (function
    | Replication_failure { seed; policy; exn } ->
      Some
        (Printf.sprintf
           "Arnet_sim.Engine.Replication_failure(seed=%d, policy=%S): %s"
           seed policy (Printexc.to_string exn))
    | _ -> None)

(* closure-free per-link walks: defined once per run (they close over
   the run's occupancy/capacity arrays) and recurse with int arguments
   only, so the admit/release hot path allocates nothing *)
let run ?(warmup = 10.) ?observer ~graph ~policy trace =
  let { Trace.calls; times; ends; duration; matrix; _ } = trace in
  if warmup < 0. || warmup >= duration then
    invalid_arg "Engine.run: warmup must be in [0, duration)";
  if Arnet_traffic.Matrix.nodes matrix <> Graph.node_count graph then
    invalid_arg "Engine.run: trace/graph size mismatch";
  let m = Graph.link_count graph in
  let capacity = Array.make m 0 in
  Graph.iter_links
    (fun l -> capacity.(l.Link.id) <- l.Link.capacity)
    graph;
  ignore (Atomic.fetch_and_add simulated_calls (Array.length calls) : int);
  let occupancy = Array.make m 0 in
  let departures : int array Event_queue.t = Event_queue.create () in
  let stats = Stats.empty ~nodes:(Graph.node_count graph) in
  (match observer with
  | Some f ->
    f
      (Arnet_obs.Event.Run_start
         { policy = policy.name;
           warmup;
           duration;
           nodes = Graph.node_count graph;
           links = m })
  | None -> ());
  let rec release_ids link_ids i =
    if i < Array.length link_ids then begin
      let id = Array.unsafe_get link_ids i in
      occupancy.(id) <- occupancy.(id) - 1;
      assert (occupancy.(id) >= 0);
      release_ids link_ids (i + 1)
    end
  in
  let release time link_ids =
    release_ids link_ids 0;
    match observer with
    | Some f -> f (Arnet_obs.Event.Departure { time; links = link_ids })
    | None -> ()
  in
  let rec occupy ids i =
    if i < Array.length ids then begin
      let id = Array.unsafe_get ids i in
      if id < 0 || id >= m then
        invalid_arg "Engine.run: policy routed over unknown link";
      if occupancy.(id) >= capacity.(id) then
        invalid_arg "Engine.run: policy routed over a full link";
      occupancy.(id) <- occupancy.(id) + 1;
      occupy ids (i + 1)
    end
  in
  (* the departure payload aliases the path's own immutable link_ids
     (see Path.t) — no per-admit copy; the deadline is read from the
     trace's packed [ends] column so no float is boxed *)
  let admit i (p : Path.t) =
    occupy p.Path.link_ids 0;
    Event_queue.push_at departures ~times:ends i p.Path.link_ids
  in
  let handle i (call : Trace.call) =
    (match observer with
    | None ->
      while Event_queue.next_due departures ~deadlines:times i do
        release_ids (Event_queue.pop_payload departures) 0
      done
    | Some _ ->
      Event_queue.pop_until departures ~time:call.Trace.time ~f:release);
    let measured = call.Trace.time >= warmup in
    (match observer with
    | Some f ->
      f
        (Arnet_obs.Event.Arrival
           { time = call.Trace.time;
             src = call.Trace.src;
             dst = call.Trace.dst;
             holding = call.Trace.holding })
    | None -> ());
    if measured then
      Stats.record_offered stats ~src:call.Trace.src ~dst:call.Trace.dst;
    match policy.decide ~occupancy ~call with
    | Lost ->
      (match observer with
      | Some f ->
        f
          (Arnet_obs.Event.Block
             { time = call.Trace.time;
               src = call.Trace.src;
               dst = call.Trace.dst })
      | None -> ());
      if measured then
        Stats.record_blocked stats ~src:call.Trace.src ~dst:call.Trace.dst
    | Routed p ->
      if Path.src p <> call.Trace.src || Path.dst p <> call.Trace.dst then
        invalid_arg "Engine.run: policy routed to wrong endpoints";
      admit i p;
      if measured || Option.is_some observer then begin
        let primary = policy.is_primary ~call p in
        (match observer with
        | Some f ->
          f
            (Arnet_obs.Event.Admit
               { time = call.Trace.time;
                 src = call.Trace.src;
                 dst = call.Trace.dst;
                 hops = Path.hops p;
                 primary;
                 links = p.Path.link_ids })
        | None -> ());
        if measured then
          if primary then Stats.record_primary stats
          else Stats.record_alternate stats ~hops:(Path.hops p)
      end
  in
  for i = 0 to Array.length calls - 1 do
    handle i (Array.unsafe_get calls i)
  done;
  (match observer with
  | Some f ->
    (* drain departures that fall inside the run so the trace balances *)
    Event_queue.pop_until departures ~time:duration ~f:release;
    f (Arnet_obs.Event.Run_end { time = duration; calls = Array.length calls })
  | None -> ());
  stats

let replicate_fresh ?warmup ?mean_holding ?observe ?(domains = 1) ~seeds
    ~duration ~graph ~matrix ~policies () =
  if seeds = [] then invalid_arg "Engine.replicate: no seeds";
  if domains < 1 then invalid_arg "Engine.replicate: domains must be >= 1";
  let names = List.map (fun p -> p.name) (policies ()) in
  (* a shared observer sink must see whole Run_start..Run_end frames in
     seed-major sequence, so observed replications stay on one domain *)
  let domains = if Option.is_some observe then 1 else domains in
  let trace_for seed =
    let rng = Rng.substream (Rng.create ~seed) "trace" in
    Trace.generate ?mean_holding ~rng ~duration matrix
  in
  let fresh_policies () =
    let fresh = policies () in
    if List.map (fun p -> p.name) fresh <> names then
      invalid_arg "Engine.replicate_fresh: factory changed policy names";
    fresh
  in
  if domains = 1 then begin
    let results = List.map (fun name -> (name, ref [])) names in
    let one_seed seed =
      let trace = trace_for seed in
      List.iter2
        (fun policy (_, acc) ->
          let observer =
            match observe with
            | None -> None
            | Some choose -> choose ~seed ~policy:policy.name
          in
          acc := run ?warmup ?observer ~graph ~policy trace :: !acc)
        (fresh_policies ()) results
    in
    List.iter one_seed seeds;
    List.map (fun (name, acc) -> (name, List.rev !acc)) results
  end
  else begin
    (* shard at (seed x policy) granularity; every job rebuilds its own
       trace and policy from the seed, so no mutable state crosses
       domains and each run is bit-identical to its sequential twin *)
    let seed_arr = Array.of_list seeds in
    let name_arr = Array.of_list names in
    let np = Array.length name_arr in
    let jobs =
      List.concat_map
        (fun si -> List.init np (fun pi -> (si, pi)))
        (List.init (Array.length seed_arr) Fun.id)
    in
    let one (si, pi) =
      let trace = trace_for seed_arr.(si) in
      run ?warmup ~graph ~policy:(List.nth (fresh_policies ()) pi) trace
    in
    let stats =
      try Pool.map ~domains one jobs
      with Pool.Worker { index; exn } ->
        raise
          (Replication_failure
             { seed = seed_arr.(index / np);
               policy = name_arr.(index mod np);
               exn })
    in
    let flat = Array.of_list stats in
    List.mapi
      (fun pi name ->
        ( name,
          List.init (Array.length seed_arr) (fun si ->
              flat.((si * np) + pi)) ))
      names
  end

let replicate ?warmup ?mean_holding ?observe ?domains ~seeds ~duration ~graph
    ~matrix ~policies () =
  replicate_fresh ?warmup ?mean_holding ?observe ?domains ~seeds ~duration
    ~graph ~matrix
    ~policies:(fun () -> policies)
    ()
