(** The call-by-call discrete-event simulator.

    Reproduces the paper's experimental methodology (Section 4): a run
    replays a pre-generated {!Trace} through a routing policy over a
    network, with an idle-start warm-up period excluded from statistics;
    replications re-generate the trace under fresh seeds and replay the
    *same* trace through every policy being compared. *)

open Arnet_topology
open Arnet_paths

type outcome =
  | Routed of Path.t  (** call admitted on this path *)
  | Lost  (** call blocked *)

type policy = {
  name : string;
  decide : occupancy:int array -> call:Trace.call -> outcome;
      (** Given current per-link occupancy (indexed by link id; read
          only), choose a path or block.  The engine verifies that a
          returned path has spare capacity on every link and connects the
          call's endpoints. *)
  is_primary : call:Trace.call -> Path.t -> bool;
      (** Classifies a routed path for the primary/alternate counters. *)
}

val run :
  ?warmup:float ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  graph:Graph.t ->
  policy:policy ->
  Trace.t ->
  Stats.t
(** [run ~graph ~policy trace] simulates the whole trace and returns
    statistics over the window [\[warmup, duration)] (default warm-up
    10 time units, the paper's choice; must be [< duration]).

    When [observer] is given, every step of the run streams through it
    as typed events: a [Run_start] frame, then per call an [Arrival],
    any in-between [Departure]s, and the [Admit]/[Block] verdict, and
    finally the remaining in-window [Departure]s and a [Run_end].
    Decision detail ([Primary_attempt], [Alternate_rejected]) is emitted
    by observer-aware policies (see [Arnet_core.Scheme]), not the
    engine.  Without an observer the hot path is untouched: no events
    are constructed and the only cost is a branch per step.

    @raise Invalid_argument if the policy routes over a full or
    nonexistent link (a policy bug), or on size mismatches. *)

val calls_simulated : unit -> int
(** Process-wide total of trace calls replayed by {!run} — a free-running
    odometer for benchmark harnesses (calls/sec over a wall-clock span).
    Monotonic and never reset; the counter is atomic, so runs executing
    concurrently on several domains (see [?domains] below) lose no
    counts. *)

exception
  Replication_failure of { seed : int; policy : string; exn : exn }
(** A parallel replication run raised [exn].  The failing run is
    identified by its trace [seed] and [policy] name; the remaining
    queued runs were cancelled.  (Sequential replications, [domains =
    1], re-raise the original exception unwrapped, exactly as before.)
    A registered printer renders the payload. *)

val replicate :
  ?warmup:float ->
  ?mean_holding:float ->
  ?observe:(seed:int -> policy:string -> (Arnet_obs.Event.t -> unit) option) ->
  ?domains:int ->
  seeds:int list ->
  duration:float ->
  graph:Graph.t ->
  matrix:Arnet_traffic.Matrix.t ->
  policies:policy list ->
  unit ->
  (string * Stats.t list) list
(** For each seed: generate one trace and replay it through every policy.
    Returns, per policy (in the given order), the per-seed statistics.
    This is the paper's "run for each of 10 different seeds ... each
    algorithm was run with identical call arrivals and call holding
    times".

    [domains] (default 1) shards the independent (seed, policy) runs
    across that many OCaml domains via {!Pool.map}.  Each run
    regenerates its trace from its seed inside the worker, so no
    mutable state crosses domains and the returned statistics are
    bit-identical to a sequential run, reassembled in the same
    seed-major order.  With [domains > 1] the policies themselves are
    shared across domains, so their [decide] functions must be safe for
    concurrent use — true of every {!Arnet_core.Scheme} constructor
    except the adaptive one (whose closures mutate estimators).  A run
    that raises cancels the pool and re-raises as
    {!Replication_failure}.

    [observe] selects an event observer per (seed, policy) run — return
    [None] to leave that run unobserved.  Runs execute seed-major in
    policy order, so a single shared sink sees well-formed
    [Run_start]/[Run_end] frames in sequence.  Because that ordering is
    part of the observer contract, supplying [observe] forces
    [domains = 1]: an observed replication always runs sequentially.

    Policies are reused across seeds, so they must be stateless between
    runs — true of every {!Arnet_core.Scheme} constructor except the
    adaptive one.  For policies with internal state use
    {!replicate_fresh}. *)

val replicate_fresh :
  ?warmup:float ->
  ?mean_holding:float ->
  ?observe:(seed:int -> policy:string -> (Arnet_obs.Event.t -> unit) option) ->
  ?domains:int ->
  seeds:int list ->
  duration:float ->
  graph:Graph.t ->
  matrix:Arnet_traffic.Matrix.t ->
  policies:(unit -> policy list) ->
  unit ->
  (string * Stats.t list) list
(** Like {!replicate} but rebuilds the policy list for every seed, so
    policies that learn during a run (estimators, adaptive thresholds)
    start each replication clean.  The factory must produce the same
    policy names in the same order each time.

    With [domains > 1] the factory is invoked once per (seed, policy)
    run, inside the worker domain, and only the run's own policy is
    taken from the returned list; each policy still starts every
    replication clean, and factories therefore must be safe to call
    concurrently.  Statistics are bit-identical to the sequential
    run. *)
