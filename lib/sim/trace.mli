(** Replayable call traces.

    The paper runs every routing algorithm against *identical call
    arrivals and call holding times* (Section 4).  We realize that by
    generating the workload once per seed — arrival instants from an
    aggregated Poisson process over the traffic matrix, exponential
    holding times, and one pre-drawn uniform variate per call for any
    randomized routing decision (e.g. bifurcated primaries) — and
    replaying the same trace through each scheme. *)

open Arnet_traffic

type call = {
  time : float;  (** arrival instant *)
  src : int;
  dst : int;
  holding : float;  (** exponential holding time *)
  u : float;  (** uniform variate in [0,1) reserved for routing choices *)
}

type t = private {
  calls : call array;  (** sorted by arrival time *)
  times : float array;  (** packed column of [calls.(i).time] *)
  srcs : int array;  (** packed column of [calls.(i).src] *)
  dsts : int array;  (** packed column of [calls.(i).dst] *)
  holdings : float array;  (** packed column of [calls.(i).holding] *)
  us : float array;  (** packed column of [calls.(i).u] *)
  ends : float array;  (** departure deadlines [time +. holding] *)
  duration : float;
  matrix : Matrix.t;  (** the demands that generated it *)
}
(** A trace carries the workload twice: [calls] is the record (AoS)
    view every policy consumes, and the packed columns are the
    structure-of-arrays view the simulation hot path reads.  The float
    columns are unboxed, so the engine's inner loop compares times and
    queues departures ({!Event_queue.push_at} on [ends]) without boxing
    a single float.  Both views are built once at construction and are
    always consistent; treat the arrays as read-only. *)

val generate :
  ?mean_holding:float -> rng:Rng.t -> duration:float -> Matrix.t -> t
(** [generate ~rng ~duration matrix] draws the Poisson workload for
    [duration] time units.  Pairs arrive with rate [T(i,j)]
    (unit-mean holding times by default, so demand in Erlangs equals
    arrival rate).
    @raise Invalid_argument when the matrix has no positive demand,
    [duration <= 0], or [mean_holding <= 0]. *)

val of_calls : matrix:Matrix.t -> duration:float -> call list -> t
(** Build a trace from explicit calls — deterministic workloads for
    tests and replaying externally captured arrival logs.  Calls must be
    sorted by time, lie in [\[0, duration)], have positive holding times,
    [u] in [\[0, 1)] and valid distinct endpoints for the matrix's node
    count.
    @raise Invalid_argument otherwise. *)

val shift : t -> float -> t
(** [shift t dt] delays every call by [dt >= 0] and extends the duration
    accordingly — for building staged workloads (e.g. a surge that
    starts mid-run).
    @raise Invalid_argument when [dt < 0]. *)

val merge : t -> t -> t
(** Superpose two traces (merge by arrival time).  The result's duration
    is the later of the two and its matrix the sum — the superposition
    of independent Poisson processes is Poisson at the summed rate, so a
    merged trace is statistically a workload of the summed matrix
    wherever both components are active.  Node counts must agree. *)

val call_count : t -> int

val offered_between : t -> float -> float -> int
(** Calls arriving in the half-open window [\[lo, hi)]. *)

val check_sorted : t -> bool
(** Invariant check used by tests. *)
