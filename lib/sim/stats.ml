type t = {
  nodes : int;
  mutable offered : int;
  mutable blocked : int;
  mutable carried_primary : int;
  mutable carried_alternate : int;
  mutable alternate_hops : int;
  offered_od : int array;
  blocked_od : int array;
}

let empty ~nodes =
  if nodes < 2 then invalid_arg "Stats.empty: need >= 2 nodes";
  { nodes;
    offered = 0;
    blocked = 0;
    carried_primary = 0;
    carried_alternate = 0;
    alternate_hops = 0;
    offered_od = Array.make (nodes * nodes) 0;
    blocked_od = Array.make (nodes * nodes) 0 }

let idx t src dst =
  if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes then
    invalid_arg "Stats.idx: bad node index";
  (src * t.nodes) + dst

let record_offered t ~src ~dst =
  t.offered <- t.offered + 1;
  let i = idx t src dst in
  t.offered_od.(i) <- t.offered_od.(i) + 1

let record_blocked t ~src ~dst =
  t.blocked <- t.blocked + 1;
  let i = idx t src dst in
  t.blocked_od.(i) <- t.blocked_od.(i) + 1

let record_primary t = t.carried_primary <- t.carried_primary + 1

let record_alternate t ~hops =
  t.carried_alternate <- t.carried_alternate + 1;
  t.alternate_hops <- t.alternate_hops + hops

let blocking t =
  if t.offered = 0 then 0.
  else float_of_int t.blocked /. float_of_int t.offered

let od_blocking t ~src ~dst =
  let i = idx t src dst in
  if t.offered_od.(i) = 0 then None
  else Some (float_of_int t.blocked_od.(i) /. float_of_int t.offered_od.(i))

let alternate_fraction t =
  let carried = t.carried_primary + t.carried_alternate in
  if carried = 0 then 0.
  else float_of_int t.carried_alternate /. float_of_int carried

let merge a b =
  if a.nodes <> b.nodes then invalid_arg "Stats.merge: node count mismatch";
  { nodes = a.nodes;
    offered = a.offered + b.offered;
    blocked = a.blocked + b.blocked;
    carried_primary = a.carried_primary + b.carried_primary;
    carried_alternate = a.carried_alternate + b.carried_alternate;
    alternate_hops = a.alternate_hops + b.alternate_hops;
    offered_od =
      Array.init (Array.length a.offered_od) (fun i ->
          a.offered_od.(i) + b.offered_od.(i));
    blocked_od =
      Array.init (Array.length a.blocked_od) (fun i ->
          a.blocked_od.(i) + b.blocked_od.(i)) }

type summary = { mean : float; std_error : float; replications : int }

let summarize values =
  let n = List.length values in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let fn = float_of_int n in
  let mean = List.fold_left ( +. ) 0. values /. fn in
  if n = 1 then { mean; std_error = 0.; replications = 1 }
  else begin
    let ss =
      List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values
    in
    let variance = ss /. (fn -. 1.) in
    { mean; std_error = sqrt (variance /. fn); replications = n }
  end

(* two-sided 95% Student-t quantiles for df = 1..30; beyond that the
   normal 1.96 is accurate to within half a percent *)
let t_quantile_95 =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let confidence_95 s =
  if s.replications <= 1 then (s.mean, s.mean)
  else begin
    let df = s.replications - 1 in
    let t =
      if df <= Array.length t_quantile_95 then t_quantile_95.(df - 1)
      else 1.96
    in
    (s.mean -. (t *. s.std_error), s.mean +. (t *. s.std_error))
  end

let blocking_summary runs = summarize (List.map blocking runs)

type skew = {
  min_blocking : float;
  max_blocking : float;
  mean_blocking : float;
  coefficient_of_variation : float;
}

let od_skew t =
  let values = ref [] in
  for src = 0 to t.nodes - 1 do
    for dst = 0 to t.nodes - 1 do
      if src <> dst then
        match od_blocking t ~src ~dst with
        | Some b -> values := b :: !values
        | None -> ()
    done
  done;
  match !values with
  | [] -> invalid_arg "Stats.od_skew: no traffic"
  | vs ->
    let { mean; _ } = summarize vs in
    let mn = List.fold_left Float.min infinity vs in
    let mx = List.fold_left Float.max neg_infinity vs in
    let n = float_of_int (List.length vs) in
    let var = List.fold_left (fun a v -> a +. ((v -. mean) ** 2.)) 0. vs /. n in
    let cv = if mean > 0. then sqrt var /. mean else 0. in
    { min_blocking = mn;
      max_blocking = mx;
      mean_blocking = mean;
      coefficient_of_variation = cv }
