(** Binary-heap priority queue keyed by simulated time.

    The discrete-event core: departures are queued here, arrivals come
    pre-sorted from the {!Trace}.  Pops are in nondecreasing time order;
    ties pop in unspecified (but deterministic) order.

    Internally a structure-of-arrays heap: an unboxed [float array] of
    times parallel to a payload array, so pushes allocate nothing and
    sift comparisons scan a flat float array.  A popped (or cleared)
    slot is nulled out — the queue never keeps a departed payload
    reachable.

    The [*_at]/[next_due] entry points exist because, without flambda,
    a [float] argument crosses a function boundary boxed: they take a
    [float array] plus an index and read the time inside the callee, so
    an allocation-free caller stays allocation-free. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument when [time] is not finite. *)

val push_at : 'a t -> times:float array -> int -> 'a -> unit
(** [push_at q ~times i x] is [push q ~time:times.(i) x] without boxing
    the time — the hot-path form for callers whose event times already
    live in a float array (e.g. {!Trace} departure deadlines).
    @raise Invalid_argument when [times.(i)] is not finite. *)

val peek_time : 'a t -> float option
(** Earliest queued time without removing it.  Allocates; hot loops
    should use {!next_due}. *)

val next_due : 'a t -> deadlines:float array -> int -> bool
(** [next_due q ~deadlines i] is true when the queue is nonempty and its
    earliest time is [<= deadlines.(i)] — the allocation-free guard for
    a drain loop ([while next_due ... do ... pop_payload ... done]). *)

val pop : 'a t -> (float * 'a) option

val pop_payload : 'a t -> 'a
(** Pops the earliest event, returning only its payload (no tuple, no
    boxed time).  Pair with {!next_due} to know one is due.
    @raise Invalid_argument when the queue is empty. *)

val pop_until : 'a t -> time:float -> f:(float -> 'a -> unit) -> unit
(** Pops and applies [f] to every event with time [<= time], in order. *)

val clear : 'a t -> unit
(** Empties the queue, releasing every queued payload. *)
