open Arnet_traffic

type call = {
  time : float;
  src : int;
  dst : int;
  holding : float;
  u : float;
}

type t = {
  calls : call array;
  times : float array;
  srcs : int array;
  dsts : int array;
  holdings : float array;
  us : float array;
  ends : float array;
  duration : float;
  matrix : Matrix.t;
}

(* every constructor funnels through [pack]: the packed columns are
   filled from the record view in one pass, with the departure deadline
   [time + holding] computed straight into its float array (never boxed) *)
let pack ~duration ~matrix calls =
  let n = Array.length calls in
  let times = Array.make n 0. in
  let holdings = Array.make n 0. in
  let us = Array.make n 0. in
  let ends = Array.make n 0. in
  let srcs = Array.make n 0 in
  let dsts = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = calls.(i) in
    times.(i) <- c.time;
    srcs.(i) <- c.src;
    dsts.(i) <- c.dst;
    holdings.(i) <- c.holding;
    us.(i) <- c.u;
    ends.(i) <- c.time +. c.holding
  done;
  { calls; times; srcs; dsts; holdings; us; ends; duration; matrix }

let generate ?(mean_holding = 1.) ~rng ~duration matrix =
  if duration <= 0. then invalid_arg "Trace.generate: duration <= 0";
  if mean_holding <= 0. then invalid_arg "Trace.generate: mean_holding <= 0";
  let total = Matrix.total matrix in
  if total <= 0. then invalid_arg "Trace.generate: empty traffic matrix";
  (* cumulative demand over positive pairs, for inverse-cdf pair choice *)
  let pairs = ref [] in
  Matrix.iter_demands matrix (fun i j d -> pairs := (i, j, d) :: !pairs);
  let pairs = Array.of_list (List.rev !pairs) in
  let np = Array.length pairs in
  let cumulative = Array.make np 0. in
  let acc = ref 0. in
  Array.iteri
    (fun idx (_, _, d) ->
      acc := !acc +. d;
      cumulative.(idx) <- !acc)
    pairs;
  let pick_pair x =
    (* smallest idx with cumulative.(idx) > x *)
    let lo = ref 0 and hi = ref (np - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > x then hi := mid else lo := mid + 1
    done;
    pairs.(!lo)
  in
  let holding_rate = 1. /. mean_holding in
  (* generate straight into the SoA columns (amortised doubling); the
     record view is derived once at the end.  The current time lives in
     a one-element float array so the accumulator stays unboxed. *)
  let cap = ref 1024 in
  let times = ref (Array.make !cap 0.) in
  let holdings = ref (Array.make !cap 0.) in
  let us = ref (Array.make !cap 0.) in
  let srcs = ref (Array.make !cap 0) in
  let dsts = ref (Array.make !cap 0) in
  let n = ref 0 in
  let grow () =
    let cap' = 2 * !cap in
    let extend mk a = let b = mk cap' in Array.blit a 0 b 0 !cap; b in
    times := extend (fun c -> Array.make c 0.) !times;
    holdings := extend (fun c -> Array.make c 0.) !holdings;
    us := extend (fun c -> Array.make c 0.) !us;
    srcs := extend (fun c -> Array.make c 0) !srcs;
    dsts := extend (fun c -> Array.make c 0) !dsts;
    cap := cap'
  in
  let t = Array.make 1 (Rng.exponential rng ~rate:total) in
  while t.(0) < duration do
    let src, dst, _ = pick_pair (Rng.float rng !acc) in
    let holding = Rng.exponential rng ~rate:holding_rate in
    let u = Rng.uniform rng in
    if !n = !cap then grow ();
    let i = !n in
    !times.(i) <- t.(0);
    !holdings.(i) <- holding;
    !us.(i) <- u;
    !srcs.(i) <- src;
    !dsts.(i) <- dst;
    n := i + 1;
    t.(0) <- t.(0) +. Rng.exponential rng ~rate:total
  done;
  let n = !n in
  let times = Array.sub !times 0 n in
  let holdings = Array.sub !holdings 0 n in
  let us = Array.sub !us 0 n in
  let srcs = Array.sub !srcs 0 n in
  let dsts = Array.sub !dsts 0 n in
  let ends = Array.make n 0. in
  for i = 0 to n - 1 do
    ends.(i) <- times.(i) +. holdings.(i)
  done;
  let calls =
    Array.init n (fun i ->
        { time = times.(i);
          src = srcs.(i);
          dst = dsts.(i);
          holding = holdings.(i);
          u = us.(i) })
  in
  { calls; times; srcs; dsts; holdings; us; ends; duration; matrix }

let of_calls ~matrix ~duration calls =
  if duration <= 0. then invalid_arg "Trace.of_calls: duration <= 0";
  let n = Matrix.nodes matrix in
  let check prev c =
    if c.time < prev then invalid_arg "Trace.of_calls: calls not sorted";
    if c.time < 0. || c.time >= duration then
      invalid_arg "Trace.of_calls: call outside [0, duration)";
    if c.holding <= 0. || not (Float.is_finite c.holding) then
      invalid_arg "Trace.of_calls: bad holding time";
    if c.u < 0. || c.u >= 1. then invalid_arg "Trace.of_calls: u outside [0,1)";
    if c.src < 0 || c.src >= n || c.dst < 0 || c.dst >= n || c.src = c.dst
    then invalid_arg "Trace.of_calls: bad endpoints";
    c.time
  in
  let (_ : float) = List.fold_left check 0. calls in
  pack ~duration ~matrix (Array.of_list calls)

let shift t dt =
  if dt < 0. || not (Float.is_finite dt) then
    invalid_arg "Trace.shift: negative shift";
  pack ~duration:(t.duration +. dt) ~matrix:t.matrix
    (Array.map (fun c -> { c with time = c.time +. dt }) t.calls)

let merge a b =
  if Matrix.nodes a.matrix <> Matrix.nodes b.matrix then
    invalid_arg "Trace.merge: node count mismatch";
  let na = Array.length a.calls and nb = Array.length b.calls in
  let out = Array.make (na + nb) { time = 0.; src = 0; dst = 1; holding = 1.; u = 0. } in
  let i = ref 0 and j = ref 0 in
  for k = 0 to na + nb - 1 do
    let take_a =
      !j >= nb || (!i < na && a.calls.(!i).time <= b.calls.(!j).time)
    in
    if take_a then begin
      out.(k) <- a.calls.(!i);
      incr i
    end
    else begin
      out.(k) <- b.calls.(!j);
      incr j
    end
  done;
  pack
    ~duration:(Float.max a.duration b.duration)
    ~matrix:(Matrix.add a.matrix b.matrix)
    out

let call_count t = Array.length t.calls

let offered_between t lo hi =
  Array.fold_left
    (fun acc c -> if c.time >= lo && c.time < hi then acc + 1 else acc)
    0 t.calls

let check_sorted t =
  let ok = ref true in
  for i = 1 to Array.length t.calls - 1 do
    if t.calls.(i).time < t.calls.(i - 1).time then ok := false
  done;
  !ok
