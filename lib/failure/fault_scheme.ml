open Arnet_topology
open Arnet_paths
open Arnet_sim
open Arnet_core

let capacities_of routes =
  let g = Route_table.graph routes in
  let capacities = Array.make (Graph.link_count g) 0 in
  Graph.iter_links (fun l -> capacities.(l.Link.id) <- l.Link.capacity) g;
  capacities

let two_tier ~name ~admission ~allow_alternates routes =
  let decide ~occupancy ~alive ~(call : Trace.call) =
    let src = call.Trace.src and dst = call.Trace.dst in
    if not (Route_table.has_route routes ~src ~dst) then Engine.Lost
    else begin
      let primary = Route_table.primary routes ~src ~dst in
      if
        Failure_engine.path_alive alive primary
        && Admission.path_admits_primary admission ~occupancy primary
      then Engine.Routed primary
      else if not allow_alternates then Engine.Lost
      else begin
        let alternates = Route_table.alternate_array routes ~src ~dst in
        let rec scan i =
          if i >= Array.length alternates then Engine.Lost
          else
            let p = Array.unsafe_get alternates i in
            if
              Failure_engine.path_alive alive p
              && Admission.path_admits_alternate admission ~occupancy p
            then Engine.Routed p
            else scan (i + 1)
        in
        scan 0
      end
    end
  in
  let is_primary ~(call : Trace.call) p =
    Route_table.has_route routes ~src:call.Trace.src ~dst:call.Trace.dst
    && Path.equal p
         (Route_table.primary routes ~src:call.Trace.src ~dst:call.Trace.dst)
  in
  let primary_of ~(call : Trace.call) =
    if Route_table.has_route routes ~src:call.Trace.src ~dst:call.Trace.dst
    then
      Some (Route_table.primary routes ~src:call.Trace.src ~dst:call.Trace.dst)
    else None
  in
  { Failure_engine.name; decide; is_primary; primary_of }

let single_path routes =
  let admission = Admission.unprotected ~capacities:(capacities_of routes) in
  two_tier ~name:"single-path" ~admission ~allow_alternates:false routes

let uncontrolled routes =
  let admission = Admission.unprotected ~capacities:(capacities_of routes) in
  two_tier ~name:"uncontrolled" ~admission ~allow_alternates:true routes

let controlled ~reserves routes =
  let admission =
    Admission.make ~capacities:(capacities_of routes) ~reserves
  in
  two_tier ~name:"controlled" ~admission ~allow_alternates:true routes

let protected ~reserves routes =
  let admission =
    Admission.make ~capacities:(capacities_of routes) ~reserves
  in
  two_tier ~name:"protected" ~admission ~allow_alternates:true routes
