(** Seeded stochastic failure models, compiled to {!Script}s.

    Each generator draws from named {!Arnet_sim.Rng} substreams, so a
    scenario is a pure function of the master seed and its parameters:
    the same seed always yields the same script, and the script — not
    the process — is what the engine and the daemon replay.  That makes
    every failure experiment bit-reproducible and lets a surprising run
    be saved ({!Script.to_file}) and replayed against the live daemon.

    Up- and down-times are exponential: a link (or group) stays up for
    [Exp(1/mtbf)], fails, stays down for [Exp(1/mttr)], repairs, and so
    on until the horizon.  An outage still open at the horizon emits no
    repair — by then the simulated workload has ended.

    Repairs are literal script events and the replay engines apply them
    unconditionally, so when two correlated outages overlap on a link
    the earlier repair ends both — a deliberate simplification that
    keeps replay stateless and deterministic. *)

open Arnet_topology
open Arnet_sim

val independent :
  rng:Rng.t -> duration:float -> mtbf:float -> mttr:float -> Graph.t ->
  Script.t
(** Independent alternating up/down renewal process per directed link.
    Note that builders derived from undirected edges represent one fiber
    as two directed links; use [srlg ~groups:(edge_groups g)] when a cut
    should take both directions down together.
    @raise Invalid_argument when [duration], [mtbf] or [mttr] is not
    positive and finite. *)

val srlg :
  rng:Rng.t -> duration:float -> mtbf:float -> mttr:float ->
  groups:int list list -> Graph.t -> Script.t
(** Shared-risk link groups: one renewal process per group; every link
    in a group fails and repairs together.  Links outside any group
    never fail.
    @raise Invalid_argument on bad rates, an empty group, an
    out-of-range link id, or a link id in two groups. *)

val edge_groups : Graph.t -> int list list
(** Links grouped by undirected endpoint pair — for graphs built from
    undirected edges this pairs the two directions of each fiber, the
    natural [srlg] grouping for physical cuts.  Deterministic order. *)

val regional :
  ?coords:(float * float) array ->
  rng:Rng.t -> duration:float -> rate:float -> mttr:float -> radius:float ->
  Graph.t -> Script.t
(** Regional outages: epicenters arrive Poisson at [rate], uniform on
    the unit square; every link with an endpoint within [radius] of the
    epicenter fails, and the whole region repairs together after
    [Exp(1/mttr)].  [coords] places nodes on the unit square; when
    omitted they are drawn deterministically from [rng] (the topology
    layer keeps no coordinates — see {!unit_square_coords}).
    @raise Invalid_argument on non-positive [duration]/[rate]/[mttr]/
    [radius], a [coords] length mismatch, or non-finite coordinates. *)

val unit_square_coords : rng:Rng.t -> nodes:int -> (float * float) array
(** Deterministic node placement on the unit square (substream
    ["coords"]) — the default geometry behind {!regional}.
    @raise Invalid_argument when [nodes < 0]. *)
