open Arnet_topology
open Arnet_sim

let check_positive name value what =
  if not (Float.is_finite value) || value <= 0. then
    invalid_arg (Printf.sprintf "%s: %s must be positive and finite" name what)

(* one alternating up/down renewal process emitting FAIL/REPAIR for
   every link in [links]; an outage open at the horizon stays open *)
let renewal ~rng ~duration ~mtbf ~mttr links acc =
  let rec go t acc =
    let fail_at = t +. Rng.exponential rng ~rate:(1. /. mtbf) in
    if fail_at >= duration then acc
    else begin
      let repair_at = fail_at +. Rng.exponential rng ~rate:(1. /. mttr) in
      let acc =
        List.fold_left
          (fun acc link ->
            { Script.time = fail_at; link; action = Script.Fail } :: acc)
          acc links
      in
      if repair_at >= duration then acc
      else
        let acc =
          List.fold_left
            (fun acc link ->
              { Script.time = repair_at; link; action = Script.Repair }
              :: acc)
            acc links
        in
        go repair_at acc
    end
  in
  go 0. acc

let independent ~rng ~duration ~mtbf ~mttr g =
  check_positive "Model.independent" duration "duration";
  check_positive "Model.independent" mtbf "mtbf";
  check_positive "Model.independent" mttr "mttr";
  let acc = ref [] in
  for link = 0 to Graph.link_count g - 1 do
    let s = Rng.substream rng (Printf.sprintf "link-%d" link) in
    acc := renewal ~rng:s ~duration ~mtbf ~mttr [ link ] !acc
  done;
  Script.of_events (List.rev !acc)

let srlg ~rng ~duration ~mtbf ~mttr ~groups g =
  check_positive "Model.srlg" duration "duration";
  check_positive "Model.srlg" mtbf "mtbf";
  check_positive "Model.srlg" mttr "mttr";
  let m = Graph.link_count g in
  let seen = Array.make m false in
  List.iter
    (fun group ->
      if group = [] then invalid_arg "Model.srlg: empty group";
      List.iter
        (fun link ->
          if link < 0 || link >= m then
            invalid_arg "Model.srlg: link id outside the graph";
          if seen.(link) then
            invalid_arg "Model.srlg: link id appears in two groups";
          seen.(link) <- true)
        group)
    groups;
  let acc = ref [] in
  List.iteri
    (fun i group ->
      let s = Rng.substream rng (Printf.sprintf "srlg-%d" i) in
      acc := renewal ~rng:s ~duration ~mtbf ~mttr group !acc)
    groups;
  Script.of_events (List.rev !acc)

let edge_groups g =
  let tbl = Hashtbl.create 64 in
  Graph.iter_links
    (fun l ->
      let key = (min l.Link.src l.Link.dst, max l.Link.src l.Link.dst) in
      let ids = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (l.Link.id :: ids))
    g;
  Hashtbl.fold (fun key ids acc -> (key, List.sort compare ids) :: acc) tbl []
  |> List.sort compare
  |> List.map snd

let unit_square_coords ~rng ~nodes =
  if nodes < 0 then invalid_arg "Model.unit_square_coords: nodes < 0";
  let s = Rng.substream rng "coords" in
  let coords = Array.make nodes (0., 0.) in
  for i = 0 to nodes - 1 do
    let x = Rng.uniform s in
    let y = Rng.uniform s in
    coords.(i) <- (x, y)
  done;
  coords

let regional ?coords ~rng ~duration ~rate ~mttr ~radius g =
  check_positive "Model.regional" duration "duration";
  check_positive "Model.regional" rate "rate";
  check_positive "Model.regional" mttr "mttr";
  check_positive "Model.regional" radius "radius";
  let n = Graph.node_count g in
  let coords =
    match coords with
    | None -> unit_square_coords ~rng ~nodes:n
    | Some c ->
      if Array.length c <> n then
        invalid_arg "Model.regional: coords length <> node count";
      Array.iter
        (fun (x, y) ->
          if not (Float.is_finite x && Float.is_finite y) then
            invalid_arg "Model.regional: non-finite coordinate")
        c;
      c
  in
  let within epicenter node =
    let ex, ey = epicenter and x, y = coords.(node) in
    let dx = x -. ex and dy = y -. ey in
    (dx *. dx) +. (dy *. dy) <= radius *. radius
  in
  let s = Rng.substream rng "regional" in
  let rec go t acc =
    let t = t +. Rng.exponential s ~rate in
    if t >= duration then acc
    else begin
      let ex = Rng.uniform s in
      let ey = Rng.uniform s in
      let down = Rng.exponential s ~rate:(1. /. mttr) in
      let hit = ref [] in
      Graph.iter_links
        (fun l ->
          if within (ex, ey) l.Link.src || within (ex, ey) l.Link.dst then
            hit := l.Link.id :: !hit)
        g;
      let hit = List.rev !hit in
      let acc =
        List.fold_left
          (fun acc link ->
            { Script.time = t; link; action = Script.Fail } :: acc)
          acc hit
      in
      let acc =
        if t +. down >= duration then acc
        else
          List.fold_left
            (fun acc link ->
              { Script.time = t +. down; link; action = Script.Repair }
              :: acc)
            acc hit
      in
      go t acc
    end
  in
  Script.of_events (List.rev (go 0. []))
