type action = Fail | Repair

type event = { time : float; link : int; action : action }

(* invariant: sorted by time, stable w.r.t. the order given *)
type t = event array

let validate_event e =
  if not (Float.is_finite e.time) || e.time < 0. then
    invalid_arg "Script.of_events: time must be finite and >= 0";
  if e.link < 0 then invalid_arg "Script.of_events: negative link id"

let of_events evs =
  List.iter validate_event evs;
  let a = Array.of_list evs in
  Array.stable_sort (fun a b -> Float.compare a.time b.time) a;
  a

let empty = [||]
let events t = Array.to_list t
let to_array t = Array.copy t
let length t = Array.length t
let is_empty t = Array.length t = 0
let max_link t = Array.fold_left (fun m e -> max m e.link) (-1) t
let merge a b = of_events (Array.to_list a @ Array.to_list b)

(* structural equality is exact here: times are validated finite, so no
   NaN ever defeats (=) *)
let equal (a : t) (b : t) = a = b

(* shortest decimal that round-trips, same policy as the wire codec *)
let float_to_text f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let action_to_string = function Fail -> "FAIL" | Repair -> "REPAIR"

let action_of_string = function
  | "FAIL" -> Some Fail
  | "REPAIR" -> Some Repair
  | _ -> None

let pp ppf t =
  Array.iter
    (fun e ->
      Format.fprintf ppf "%s %s %d@." (float_to_text e.time)
        (action_to_string e.action) e.link)
    t

let to_string t =
  let b = Buffer.create 256 in
  Array.iter
    (fun e ->
      Buffer.add_string b (float_to_text e.time);
      Buffer.add_char b ' ';
      Buffer.add_string b (action_to_string e.action);
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int e.link);
      Buffer.add_char b '\n')
    t;
  Buffer.contents b

let parse_line line =
  let fields =
    String.split_on_char ' '
      (String.map (function '\t' -> ' ' | c -> c) line)
    |> List.filter (fun f -> f <> "")
  in
  match fields with
  | [ time; verb; link ] -> (
    match
      (float_of_string_opt time, action_of_string verb,
       int_of_string_opt link)
    with
    | Some time, Some action, Some link
      when Float.is_finite time && time >= 0. && link >= 0 ->
      Some { time; link; action }
    | _ -> None)
  | _ -> None

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go n acc = function
    | [] -> Ok (of_events (List.rev acc))
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (n + 1) acc rest
      else (
        match parse_line trimmed with
        | Some e -> go (n + 1) (e :: acc) rest
        | None ->
          Error
            (Printf.sprintf
               "line %d: expected \"<time> FAIL|REPAIR <link>\", got %S" n
               trimmed))
  in
  go 1 [] lines

let to_file path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string t))

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
    match of_string contents with
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
