(** The discrete-event simulator with live link failures.

    Mirrors {!Arnet_sim.Engine} but threads a {!Script} through the run:
    [FAIL] kills a link (and drops every call in flight across it, the
    way a fiber cut does), [REPAIR] brings it back, and policies decide
    with the current liveness map in hand — the batch twin of the
    daemon's [FAIL]/[REPAIR] commands, replaying the same script files.

    Script events and departures merge in time order before each
    arrival; at equal instants the departure wins (a call ending the
    moment its link dies is complete, not dropped), then script events
    apply in script order, then the arrival is decided.  Replays are a
    pure function of (trace, script, policy): bit-identical per seed,
    sequential or pooled. *)

open Arnet_topology
open Arnet_paths
open Arnet_sim

type policy = {
  name : string;
  decide :
    occupancy:int array -> alive:bool array -> call:Trace.call ->
    Engine.outcome;
      (** Like {!Arnet_sim.Engine.policy}[.decide] plus the liveness map
          ([alive.(link)] is false while the link is failed; read only).
          The engine verifies a returned path is alive, has spare
          capacity, and connects the endpoints. *)
  is_primary : call:Trace.call -> Path.t -> bool;
  primary_of : call:Trace.call -> Path.t option;
      (** The path the policy would have preferred absent any failure —
          lets the engine classify an alternate admission as a
          *failover* (primary dead) rather than overflow (primary
          busy). *)
}

type stats = {
  core : Stats.t;  (** offered/blocked/carried, as in the plain engine *)
  dropped : int;
      (** in-flight calls killed by a [FAIL] inside the measurement
          window *)
  failovers : int;
      (** admissions routed around a *failed* (not merely busy) primary
          inside the window *)
}

val path_alive : bool array -> Path.t -> bool
(** Every link of the path is up — the filter policies apply before
    occupancy checks. *)

val run :
  ?warmup:float ->
  ?script:Script.t ->
  graph:Graph.t ->
  policy:policy ->
  Trace.t ->
  stats
(** [run ~graph ~policy trace] replays the trace under the script
    (default {!Script.empty}, which makes this the plain engine plus a
    liveness map of all-true).  Statistics cover [\[warmup, duration)];
    drops and failovers outside the window are not counted, but the
    failure state itself is applied from time 0 so the window starts in
    the scenario's true state.
    @raise Invalid_argument on the plain engine's policy-bug conditions,
    on a policy routing over a failed link, or when the script mentions
    a link outside the graph. *)

val replicate_fresh :
  ?warmup:float ->
  ?mean_holding:float ->
  ?domains:int ->
  seeds:int list ->
  duration:float ->
  graph:Graph.t ->
  matrix:Arnet_traffic.Matrix.t ->
  script:(seed:int -> Script.t) ->
  policies:(unit -> policy list) ->
  unit ->
  (string * stats list) list
(** Per seed: generate the trace (same substream as
    {!Arnet_sim.Engine.replicate}, so workloads match the plain
    engine's), build the seed's script, and replay it through every
    policy — identical arrivals *and* identical failures across the
    policies being compared.  [domains] shards (seed × policy) runs via
    {!Arnet_sim.Pool.map} exactly like the plain engine, bit-identical
    to sequential; failures re-raise as
    {!Arnet_sim.Engine.Replication_failure}. *)
