open Arnet_topology
open Arnet_paths
open Arnet_sim

type policy = {
  name : string;
  decide :
    occupancy:int array -> alive:bool array -> call:Trace.call ->
    Engine.outcome;
  is_primary : call:Trace.call -> Path.t -> bool;
  primary_of : call:Trace.call -> Path.t option;
}

type stats = { core : Stats.t; dropped : int; failovers : int }

let path_alive alive (p : Path.t) =
  let ids = p.Path.link_ids in
  let rec ok i =
    i >= Array.length ids || (alive.(Array.unsafe_get ids i) && ok (i + 1))
  in
  ok 0

let run ?(warmup = 10.) ?(script = Script.empty) ~graph ~policy trace =
  let { Trace.calls; ends; duration; matrix; _ } = trace in
  if warmup < 0. || warmup >= duration then
    invalid_arg "Failure_engine.run: warmup must be in [0, duration)";
  if Arnet_traffic.Matrix.nodes matrix <> Graph.node_count graph then
    invalid_arg "Failure_engine.run: trace/graph size mismatch";
  let m = Graph.link_count graph in
  if Script.max_link script >= m then
    invalid_arg "Failure_engine.run: script mentions a link outside the graph";
  let capacity = Array.make m 0 in
  Graph.iter_links (fun l -> capacity.(l.Link.id) <- l.Link.capacity) graph;
  let occupancy = Array.make m 0 in
  let alive = Array.make m true in
  (* departures carry the call index; the path is looked up in [active],
     which a FAIL may already have emptied (lazy deletion) *)
  let departures : int Event_queue.t = Event_queue.create () in
  let active : (int, Path.t) Hashtbl.t = Hashtbl.create 1024 in
  let stats = Stats.empty ~nodes:(Graph.node_count graph) in
  let dropped = ref 0 and failovers = ref 0 in
  let events = Script.to_array script in
  let n_events = Array.length events in
  let cursor = ref 0 in
  let release_path (p : Path.t) =
    let ids = p.Path.link_ids in
    for i = 0 to Array.length ids - 1 do
      let id = Array.unsafe_get ids i in
      occupancy.(id) <- occupancy.(id) - 1;
      assert (occupancy.(id) >= 0)
    done
  in
  let depart idx =
    match Hashtbl.find_opt active idx with
    | None -> () (* dropped by an earlier failure *)
    | Some p ->
      Hashtbl.remove active idx;
      release_path p
  in
  let apply_event (e : Script.event) =
    match e.Script.action with
    | Script.Repair -> alive.(e.Script.link) <- true
    | Script.Fail ->
      let k = e.Script.link in
      if alive.(k) then begin
        alive.(k) <- false;
        let victims =
          Hashtbl.fold
            (fun idx p acc ->
              if Path.mem_link p k then (idx, p) :: acc else acc)
            active []
          |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        in
        List.iter
          (fun (idx, p) ->
            Hashtbl.remove active idx;
            release_path p;
            if e.Script.time >= warmup then incr dropped)
          victims
      end
  in
  (* departures and script events due at or before [t] merge in time
     order; at equal instants the departure goes first (a call ending
     the instant its link dies is complete, not dropped) *)
  let rec advance t =
    let dep =
      match Event_queue.peek_time departures with
      | Some u when u <= t -> u
      | _ -> Float.infinity
    in
    let scr =
      if !cursor < n_events && events.(!cursor).Script.time <= t then
        events.(!cursor).Script.time
      else Float.infinity
    in
    if dep = Float.infinity && scr = Float.infinity then ()
    else if dep <= scr then begin
      (match Event_queue.pop departures with
      | Some (_, idx) -> depart idx
      | None -> ());
      advance t
    end
    else begin
      apply_event events.(!cursor);
      incr cursor;
      advance t
    end
  in
  let handle i (call : Trace.call) =
    advance call.Trace.time;
    let measured = call.Trace.time >= warmup in
    if measured then
      Stats.record_offered stats ~src:call.Trace.src ~dst:call.Trace.dst;
    match policy.decide ~occupancy ~alive ~call with
    | Engine.Lost ->
      if measured then
        Stats.record_blocked stats ~src:call.Trace.src ~dst:call.Trace.dst
    | Engine.Routed p ->
      if Path.src p <> call.Trace.src || Path.dst p <> call.Trace.dst then
        invalid_arg "Failure_engine.run: policy routed to wrong endpoints";
      let ids = p.Path.link_ids in
      for j = 0 to Array.length ids - 1 do
        let id = ids.(j) in
        if id < 0 || id >= m then
          invalid_arg "Failure_engine.run: policy routed over unknown link";
        if not alive.(id) then
          invalid_arg "Failure_engine.run: policy routed over a failed link";
        if occupancy.(id) >= capacity.(id) then
          invalid_arg "Failure_engine.run: policy routed over a full link"
      done;
      for j = 0 to Array.length ids - 1 do
        let id = ids.(j) in
        occupancy.(id) <- occupancy.(id) + 1
      done;
      Hashtbl.replace active i p;
      Event_queue.push_at departures ~times:ends i i;
      if measured then
        if policy.is_primary ~call p then Stats.record_primary stats
        else begin
          Stats.record_alternate stats ~hops:(Path.hops p);
          match policy.primary_of ~call with
          | Some prim when not (path_alive alive prim) -> incr failovers
          | _ -> ()
        end
  in
  for i = 0 to Array.length calls - 1 do
    handle i (Array.unsafe_get calls i)
  done;
  { core = stats; dropped = !dropped; failovers = !failovers }

let replicate_fresh ?warmup ?mean_holding ?(domains = 1) ~seeds ~duration
    ~graph ~matrix ~script ~policies () =
  if seeds = [] then invalid_arg "Failure_engine.replicate: no seeds";
  if domains < 1 then
    invalid_arg "Failure_engine.replicate: domains must be >= 1";
  let names = List.map (fun p -> p.name) (policies ()) in
  (* same substream as Engine.replicate so the workloads line up with
     the plain engine's runs for the same seeds *)
  let trace_for seed =
    let rng = Rng.substream (Rng.create ~seed) "trace" in
    Trace.generate ?mean_holding ~rng ~duration matrix
  in
  let fresh_policies () =
    let fresh = policies () in
    if List.map (fun p -> p.name) fresh <> names then
      invalid_arg "Failure_engine.replicate_fresh: factory changed policy names";
    fresh
  in
  if domains = 1 then begin
    let results = List.map (fun name -> (name, ref [])) names in
    let one_seed seed =
      let trace = trace_for seed in
      let sc = script ~seed in
      List.iter2
        (fun policy (_, acc) ->
          acc := run ?warmup ~script:sc ~graph ~policy trace :: !acc)
        (fresh_policies ()) results
    in
    List.iter one_seed seeds;
    List.map (fun (name, acc) -> (name, List.rev !acc)) results
  end
  else begin
    (* (seed x policy) sharding, bit-identical to sequential: every job
       rebuilds its trace, script and policy from the seed inside the
       worker, so nothing mutable crosses domains *)
    let seed_arr = Array.of_list seeds in
    let name_arr = Array.of_list names in
    let np = Array.length name_arr in
    let jobs =
      List.concat_map
        (fun si -> List.init np (fun pi -> (si, pi)))
        (List.init (Array.length seed_arr) Fun.id)
    in
    let one (si, pi) =
      let seed = seed_arr.(si) in
      let trace = trace_for seed in
      let sc = script ~seed in
      run ?warmup ~script:sc ~graph
        ~policy:(List.nth (fresh_policies ()) pi)
        trace
    in
    let stats =
      try Pool.map ~domains one jobs
      with Pool.Worker { index; exn } ->
        raise
          (Engine.Replication_failure
             { seed = seed_arr.(index / np);
               policy = name_arr.(index mod np);
               exn })
    in
    let flat = Array.of_list stats in
    List.mapi
      (fun pi name ->
        ( name,
          List.init (Array.length seed_arr) (fun si ->
              flat.((si * np) + pi)) ))
      names
  end
