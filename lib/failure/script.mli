(** Timed failure scripts.

    A script is the ground truth of a failure scenario: a time-sorted
    sequence of [FAIL]/[REPAIR] events over link ids.  Generators
    ({!Model}) compile stochastic failure processes down to scripts, the
    batch engine ({!Failure_engine}) replays them against a simulation
    run, and [arn serve --failure-script] replays the same file against
    the live daemon — one artifact, three consumers, so a scenario
    observed in a benchmark can be re-run bit-identically in a test.

    The text format is one event per line,

    {v
    # capacity maintenance window
    5 FAIL 0
    5 FAIL 1
    20 REPAIR 0
    20 REPAIR 1
    v}

    i.e. [<time> FAIL|REPAIR <link-id>] separated by blanks; [#] starts
    a comment line and empty lines are ignored.  Times are simulated
    (virtual) time, not wall clock.  [parse ∘ print = id]. *)

type action = Fail | Repair

type event = { time : float; link : int; action : action }

type t
(** A validated script: events sorted by time, ties kept in the order
    given (so [FAIL] then [REPAIR] of one link at the same instant means
    exactly that). *)

val empty : t

val of_events : event list -> t
(** Sorts by time (stable).
    @raise Invalid_argument when a time is negative or not finite, or a
    link id is negative. *)

val events : t -> event list

val to_array : t -> event array
(** Fresh copy, time-sorted — the replay-cursor view. *)

val length : t -> int
val is_empty : t -> bool

val max_link : t -> int
(** Largest link id mentioned; [-1] for the empty script.  Consumers
    check it against their graph's link count before replaying. *)

val merge : t -> t -> t
(** Superpose two scripts; ties order the first script's events first. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses the text format above; the error names the offending line. *)

val to_file : string -> t -> unit

val of_file : string -> (t, string) result
(** [Error] covers both unreadable files and malformed contents. *)
