(** Failure-aware routing policies over a {!Arnet_paths.Route_table}.

    The liveness-filtered twins of the {!Arnet_core.Scheme} two-tier
    constructors, and the batch twins of the daemon's SETUP logic: try
    the table primary if every link of it is up, otherwise walk the
    alternates in attempt order, skipping dead paths, under the usual
    per-link admission rule.  Over a {!Arnet_paths.Route_table.build}
    table this is Theorem-1 reservation under churn; over a
    {!Arnet_paths.Route_table.protected} table the single alternate is
    the Suurballe link-disjoint mate, i.e. protection-path routing. *)

open Arnet_paths
open Arnet_core

val two_tier :
  name:string -> admission:Admission.t -> allow_alternates:bool ->
  Route_table.t -> Failure_engine.policy
(** The generic constructor the wrappers below specialize.
    [primary_of] reports the table primary whenever the pair has a
    route, so the engine can tell failovers from overflow. *)

val single_path : Route_table.t -> Failure_engine.policy
(** Primary or nothing (named ["single-path"]): a failed primary blocks
    the pair outright — the baseline protection routing is measured
    against. *)

val uncontrolled : Route_table.t -> Failure_engine.policy
(** All alternates, no reservation (named ["uncontrolled"]). *)

val controlled : reserves:int array -> Route_table.t -> Failure_engine.policy
(** Theorem-1 trunk reservation (named ["controlled"]): alternates
    admitted only below [capacity - reserve] per link.
    @raise Invalid_argument on a reserve outside [0 .. capacity]. *)

val protected : reserves:int array -> Route_table.t -> Failure_engine.policy
(** Same admission rule, named ["protected"] — pass a
    {!Arnet_paths.Route_table.protected} table so the alternate tier is
    the precomputed link-disjoint mate. *)
