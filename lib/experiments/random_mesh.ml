open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

type row = {
  seed : int;
  nodes : int;
  links : int;
  diameter : int;
  peak_utilization : float;
  single_path : float;
  uncontrolled : float;
  controlled : float;
  guarantee_ok : bool;
}

let run ?(topology_seeds = [ 11; 22; 33; 44; 55; 66 ]) ?(nodes = 10)
    ?(capacity = 50) ?(target_utilization = 1.6) ~config () =
  if target_utilization <= 0. then
    invalid_arg "Random_mesh.run: bad target utilization";
  let { Config.seeds; duration; warmup; domains } = config in
  let one seed =
    let graph = Builders.waxman ~seed ~nodes ~capacity () in
    let routes = Route_table.build graph in
    let base = Gravity.degree_weighted graph ~total:100. in
    let loads = Loads.primary_link_loads routes base in
    let peak = Array.fold_left Float.max 0. loads in
    let scale = target_utilization *. float_of_int capacity /. peak in
    let matrix = Matrix.scale base scale in
    let results =
      Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix
        ~policies:
          [ Scheme.single_path routes;
            Scheme.uncontrolled routes;
            Scheme.controlled_auto ~matrix routes ]
        ()
    in
    let mean name =
      (Stats.blocking_summary (List.assoc name results)).Stats.mean
    in
    let stderr name =
      (Stats.blocking_summary (List.assoc name results)).Stats.std_error
    in
    let single_path = mean "single-path"
    and controlled = mean "controlled" in
    { seed;
      nodes = Graph.node_count graph;
      links = Graph.link_count graph;
      diameter = Bfs.diameter graph;
      peak_utilization = target_utilization;
      single_path;
      uncontrolled = mean "uncontrolled";
      controlled;
      guarantee_ok =
        controlled
        <= single_path
           +. (3. *. (stderr "controlled" +. stderr "single-path"))
           +. 0.005 }
  in
  List.map one topology_seeds

let print ppf rows =
  Format.fprintf ppf "  %6s %5s %5s %8s %12s %13s %11s %10s@." "seed" "nodes"
    "links" "diameter" "single-path" "uncontrolled" "controlled" "guarantee";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %6d %5d %5d %8d %12.4f %13.4f %11.4f %10s@."
        r.seed r.nodes r.links r.diameter r.single_path r.uncontrolled
        r.controlled
        (if r.guarantee_ok then "holds" else "VIOLATED"))
    rows
