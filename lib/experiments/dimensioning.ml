open Arnet_topology
open Arnet_paths
open Arnet_sim
open Arnet_core

type result = {
  target : float;
  single_path_scale : float;
  controlled_scale : float;
  single_path_capacity : int;
  controlled_capacity : int;
  savings : float;
  single_path_simulated : float;
  controlled_simulated : float;
}

let scaled_graph scale =
  let capacity = int_of_float (ceil (float_of_int Nsfnet.capacity *. scale)) in
  Graph.of_edges ~labels:Nsfnet.labels ~nodes:Nsfnet.node_count ~capacity
    Nsfnet.edges

let run ?(target = 0.01) ?(lo = 0.8) ?(hi = 2.0) ~config () =
  if target <= 0. || target >= 1. then
    invalid_arg "Dimensioning.run: bad target";
  if lo <= 0. || lo >= hi then invalid_arg "Dimensioning.run: bad range";
  let _, nominal = Internet.nominal () in
  (* analytic blocking at a capacity scale, for each discipline *)
  let blocking ~controlled scale =
    let g = scaled_graph scale in
    let routes = Route_table.build g in
    let capacities =
      Array.map (fun (l : Link.t) -> l.capacity) (Graph.links g)
    in
    let reserves =
      if controlled then
        Protection.levels routes nominal ~h:(Route_table.h routes)
      else capacities  (* full reservation = single-path *)
    in
    (Approximation.solve ~routes ~reserves nominal)
      .Approximation.network_blocking
  in
  let find ~controlled =
    if blocking ~controlled hi > target then
      invalid_arg "Dimensioning.run: target unreachable at hi";
    let lo = ref lo and hi = ref hi in
    (* bisect to the capacity-unit resolution (1/nominal capacity) *)
    let resolution = 0.5 /. float_of_int Nsfnet.capacity in
    while !hi -. !lo > resolution do
      let mid = (!lo +. !hi) /. 2. in
      if blocking ~controlled mid <= target then hi := mid else lo := mid
    done;
    !hi
  in
  (* validate (and where needed refine) endpoints by simulation *)
  let simulate ~controlled scale =
    let g = scaled_graph scale in
    let routes = Route_table.build g in
    let { Config.seeds; duration; warmup; domains } = config in
    let policy =
      if controlled then Scheme.controlled_auto ~matrix:nominal routes
      else Scheme.single_path routes
    in
    let results =
      Engine.replicate ~warmup ~domains ~seeds ~duration ~graph:g ~matrix:nominal
        ~policies:[ policy ] ()
    in
    (Stats.blocking_summary (snd (List.hd results))).Stats.mean
  in
  (* the independence approximation can be optimistic near the knee:
     nudge the scale up until the simulated blocking meets the target
     (10% slack for seed noise) *)
  let refine ~controlled scale =
    let rec go scale b =
      if b <= target *. 1.1 || scale >= hi then (scale, b)
      else
        let scale = scale +. 0.02 in
        go scale (simulate ~controlled scale)
    in
    go scale (simulate ~controlled scale)
  in
  let single_path_scale, single_path_simulated =
    refine ~controlled:false (find ~controlled:false)
  in
  let controlled_scale, controlled_simulated =
    refine ~controlled:true (find ~controlled:true)
  in
  let total scale = Graph.total_capacity (scaled_graph scale) in
  let single_path_capacity = total single_path_scale in
  let controlled_capacity = total controlled_scale in
  { target;
    single_path_scale;
    controlled_scale;
    single_path_capacity;
    controlled_capacity;
    savings =
      1.
      -. float_of_int controlled_capacity
         /. float_of_int single_path_capacity;
    single_path_simulated;
    controlled_simulated }

let print ppf r =
  Report.note ppf
    (Printf.sprintf
       "grade-of-service target: %.1f%% network blocking at nominal load"
       (100. *. r.target));
  Report.note ppf
    (Printf.sprintf
       "single-path needs capacity scale %.3f (%d units); simulated \
        blocking there: %.4f"
       r.single_path_scale r.single_path_capacity r.single_path_simulated);
  Report.note ppf
    (Printf.sprintf
       "controlled   needs capacity scale %.3f (%d units); simulated \
        blocking there: %.4f"
       r.controlled_scale r.controlled_capacity r.controlled_simulated);
  Report.note ppf
    (Printf.sprintf
       "controlled alternate routing saves %.1f%% of transmission capacity"
       (100. *. r.savings))
