open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_multirate

let two_class_workload ~nodes ~narrow_demand =
  let narrow = Matrix.uniform ~nodes ~demand:narrow_demand in
  let wide = Matrix.uniform ~nodes ~demand:(narrow_demand /. 12.) in
  Mr_trace.workload [ (Call_class.narrowband, narrow); (Call_class.wideband, wide) ]

let kaufman_roberts_check ?(capacity = 50) ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  let g =
    Graph.create ~nodes:2 [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity ]
  in
  let routes = Route_table.build g in
  let narrow_load = 0.6 *. float_of_int capacity in
  let narrow = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then narrow_load else 0.) in
  let wide = Matrix.make ~nodes:2 (fun i _ -> if i = 0 then narrow_load /. 12. else 0.) in
  let workload =
    Mr_trace.workload
      [ (Call_class.narrowband, narrow); (Call_class.wideband, wide) ]
  in
  let analytic =
    Kaufman_roberts.class_blocking ~capacity
      [ { Kaufman_roberts.offered = narrow_load; bandwidth = 1 };
        { Kaufman_roberts.offered = narrow_load /. 12.; bandwidth = 6 } ]
  in
  let results =
    Mr_engine.replicate ~warmup:10. ~seeds ~duration:210. ~graph:g ~workload
      ~policies:[ Mr_scheme.single_path routes workload ]
      ()
  in
  let runs = List.assoc "mr-single-path" results in
  let simulated ci =
    let values = List.map (fun s -> Mr_engine.class_blocking s ci) runs in
    (Stats.summarize values).Stats.mean
  in
  List.mapi (fun ci a -> (a, simulated ci)) analytic

type point = {
  load : float;
  schemes : (string * float) list;
  narrowband_controlled : float;
  wideband_controlled : float;
}

let run ?(loads = [ 50.; 65.; 80.; 90. ]) ~config () =
  let graph = Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Route_table.build graph in
  let { Config.seeds; duration; warmup; domains } = config in
  let one load =
    let workload = two_class_workload ~nodes:4 ~narrow_demand:load in
    let policies =
      [ Mr_scheme.single_path routes workload;
        Mr_scheme.uncontrolled routes workload;
        Mr_scheme.controlled_auto routes workload ]
    in
    let results =
      Mr_engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~workload ~policies
        ()
    in
    let mean_of f runs =
      (Stats.summarize (List.map f runs)).Stats.mean
    in
    let ctl_runs = List.assoc "mr-controlled" results in
    { load;
      schemes =
        List.map
          (fun (name, runs) -> (name, mean_of Mr_engine.bandwidth_blocking runs))
          results;
      narrowband_controlled = mean_of (fun s -> Mr_engine.class_blocking s 0) ctl_runs;
      wideband_controlled = mean_of (fun s -> Mr_engine.class_blocking s 1) ctl_runs }
  in
  List.map one loads

let print ppf (kr, points) =
  Report.note ppf
    "Kaufman-Roberts validation on an isolated link (analytic vs simulated):";
  List.iteri
    (fun ci (a, s) ->
      Report.note ppf
        (Printf.sprintf "  class %d: analytic %.4f  simulated %.4f" ci a s))
    kr;
  Report.note ppf
    "quadrangle, narrowband (1 unit) + wideband (6 units), bandwidth blocking:";
  (match points with
  | [] -> ()
  | p :: _ ->
    Report.series_header ppf
      ~columns:
        ("nb-erlangs"
        :: (List.map fst p.schemes @ [ "ctl-narrow"; "ctl-wide" ])));
  List.iter
    (fun p ->
      Report.series_row ppf ~x:p.load
        (List.map snd p.schemes
        @ [ p.narrowband_controlled; p.wideband_controlled ]))
    points
