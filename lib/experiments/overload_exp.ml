open Arnet_traffic
open Arnet_sim
open Arnet_core

type series = { scheme : string; points : (float * float) list }

type result = {
  surge_start : float;
  surge_stop : float;
  hot_node : int;
  series : series list;
  peak : (string * float) list;
  during_surge : (string * float) list;
}

let run ?(hot_node = 10) ?(surge_factor = 4.) ?(window = 10.) ~config () =
  let { Config.seeds; duration; warmup; _ } = config in
  let routes, nominal = Internet.nominal () in
  let graph = Arnet_paths.Route_table.graph routes in
  let measured = duration -. warmup in
  let surge_start = warmup +. (measured /. 3.) in
  let surge_stop = warmup +. (2. *. measured /. 3.) in
  let surge_extra =
    Matrix.map nominal (fun i j d ->
        if i = hot_node || j = hot_node then d *. (surge_factor -. 1.) else 0.)
  in
  (* protection engineered for the nominal load: the surge is unforeseen *)
  let policies () =
    [ Scheme.single_path routes;
      Scheme.uncontrolled routes;
      Scheme.controlled_auto ~matrix:nominal routes ]
  in
  let names = List.map (fun p -> p.Engine.name) (policies ()) in
  let bins = int_of_float (ceil (duration /. window)) in
  let sums = List.map (fun n -> (n, Array.make bins 0.)) names in
  let surge_offered = List.map (fun n -> (n, ref 0)) names in
  let surge_blocked = List.map (fun n -> (n, ref 0)) names in
  let peaks = List.map (fun n -> (n, ref 0.)) names in
  let one_seed seed =
    let rng = Rng.create ~seed in
    let background =
      Trace.generate ~rng:(Rng.substream rng "background") ~duration nominal
    in
    let surge =
      Trace.generate
        ~rng:(Rng.substream rng "surge")
        ~duration:(surge_stop -. surge_start)
        surge_extra
    in
    let trace = Trace.merge background (Trace.shift surge surge_start) in
    List.iter
      (fun policy ->
        let recorder = Time_series.create ~window ~duration in
        let wrapped = Time_series.wrap recorder policy in
        let (_ : Stats.t) = Engine.run ~warmup ~graph ~policy:wrapped trace in
        let name = policy.Engine.name in
        List.iteri
          (fun i (_, b) ->
            let acc = List.assoc name sums in
            acc.(i) <- acc.(i) +. b)
          (Time_series.blocking_series recorder);
        let p = List.assoc name peaks in
        p := Float.max !p (Time_series.peak_blocking recorder);
        List.iter
          (fun w ->
            if
              w.Time_series.start >= surge_start
              && w.Time_series.start < surge_stop
            then begin
              let o = List.assoc name surge_offered in
              let bl = List.assoc name surge_blocked in
              o := !o + w.Time_series.offered;
              bl := !bl + w.Time_series.blocked
            end)
          (Time_series.windows recorder))
      (policies ())
  in
  List.iter one_seed seeds;
  let n_seeds = float_of_int (List.length seeds) in
  let series =
    List.map
      (fun name ->
        let acc = List.assoc name sums in
        { scheme = name;
          points =
            List.init bins (fun i ->
                (float_of_int i *. window, acc.(i) /. n_seeds)) })
      names
  in
  { surge_start;
    surge_stop;
    hot_node;
    series;
    peak = List.map (fun (n, p) -> (n, !p)) peaks;
    during_surge =
      List.map
        (fun name ->
          let o = !(List.assoc name surge_offered) in
          let b = !(List.assoc name surge_blocked) in
          (name, if o = 0 then 0. else float_of_int b /. float_of_int o))
        names }

let print ppf r =
  Report.note ppf
    (Printf.sprintf
       "surge: all traffic to/from node %d multiplied during [%g, %g)"
       r.hot_node r.surge_start r.surge_stop);
  Report.series_header ppf
    ~columns:("window" :: List.map (fun s -> s.scheme) r.series);
  (match r.series with
  | [] -> ()
  | first :: _ ->
    List.iteri
      (fun i (start, _) ->
        Report.series_row ppf ~x:start
          (List.map (fun s -> snd (List.nth s.points i)) r.series))
      first.points);
  Report.note ppf "blocking pooled over the surge windows:";
  List.iter
    (fun (name, b) -> Report.note ppf (Printf.sprintf "  %-14s %.4f" name b))
    r.during_surge
