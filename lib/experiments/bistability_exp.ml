open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

type analytic_row = {
  load : float;
  cold_free : float;
  hot_free : float;
  cold_protected : float;
  hot_protected : float;
}

type t = {
  protective_reserve : int;
  rows : analytic_row list;
  critical_free : float option;
  critical_protected : float option;
  sim_load : float;
  sim_series : (string * (float * float) list) list;
}

let default_loads = [ 60.; 65.; 70.; 75.; 80.; 85.; 90.; 95.; 100. ]

let run ?(capacity = 100) ?(loads = default_loads) ?(sim_load = 85.) ~config
    () =
  (* a representative protection level for the mid-band load, H = 2
     (two-link alternates, the symmetric model's geometry) *)
  let protective_reserve =
    Protection.level ~offered:(0.85 *. float_of_int capacity) ~capacity ~h:2
  in
  let fp reserve start load =
    (Bistability.fixed_point_from ~offered:load ~capacity ~reserve start)
      .Bistability.network_blocking
  in
  let rows =
    List.map
      (fun load ->
        { load;
          cold_free = fp 0 `Cold load;
          hot_free = fp 0 `Hot load;
          cold_protected = fp protective_reserve `Cold load;
          hot_protected = fp protective_reserve `Hot load })
      loads
  in
  let critical_free = Bistability.critical_load ~capacity ~reserve:0 () in
  let critical_protected =
    Bistability.critical_load ~capacity ~reserve:protective_reserve ()
  in
  (* ignition run: K6 at a load inside the free band *)
  let nodes = 6 in
  let graph = Builders.full_mesh ~nodes ~capacity in
  let routes = Route_table.build graph in
  let matrix = Matrix.uniform ~nodes ~demand:sim_load in
  let { Config.seeds; duration; warmup; _ } = config in
  let window = 10. in
  let policies () =
    [ Scheme.single_path routes;
      Scheme.uncontrolled routes;
      Scheme.controlled_auto ~matrix routes ]
  in
  let names = List.map (fun p -> p.Engine.name) (policies ()) in
  let bins = int_of_float (ceil (duration /. window)) in
  let sums = List.map (fun n -> (n, Array.make bins 0.)) names in
  List.iter
    (fun seed ->
      let rng = Rng.substream (Rng.create ~seed) "trace" in
      let trace = Trace.generate ~rng ~duration matrix in
      List.iter
        (fun policy ->
          let recorder = Time_series.create ~window ~duration in
          let wrapped = Time_series.wrap recorder policy in
          let (_ : Stats.t) = Engine.run ~warmup ~graph ~policy:wrapped trace in
          let acc = List.assoc policy.Engine.name sums in
          List.iteri
            (fun i (_, b) -> acc.(i) <- acc.(i) +. b)
            (Time_series.blocking_series recorder))
        (policies ()))
    seeds;
  let n_seeds = float_of_int (List.length seeds) in
  let sim_series =
    List.map
      (fun name ->
        let acc = List.assoc name sums in
        ( name,
          List.init bins (fun i ->
              (float_of_int i *. window, acc.(i) /. n_seeds)) ))
      names
  in
  { protective_reserve;
    rows;
    critical_free;
    critical_protected;
    sim_load;
    sim_series }

let print ppf t =
  Report.note ppf
    (Printf.sprintf
       "mean-field fixed points (C=100, 10 alternate tries); protected \
        case uses r=%d (the H=2 level)"
       t.protective_reserve);
  Report.series_header ppf
    ~columns:
      [ "erlangs"; "free-cold"; "free-hot"; "prot-cold"; "prot-hot" ];
  List.iter
    (fun r ->
      Report.series_row ppf ~x:r.load
        [ r.cold_free; r.hot_free; r.cold_protected; r.hot_protected ])
    t.rows;
  let show = function
    | Some a -> Printf.sprintf "%.1f Erlangs" a
    | None -> "none on the scanned range"
  in
  Report.note ppf
    (Printf.sprintf "onset of bistability: free %s; protected %s"
       (show t.critical_free) (show t.critical_protected));
  Report.note ppf
    (Printf.sprintf
       "ignition run: K6 at %.0f Erlangs/pair, blocking per 10-unit window"
       t.sim_load);
  Report.series_header ppf
    ~columns:("window" :: List.map fst t.sim_series);
  (match t.sim_series with
  | [] -> ()
  | (_, first) :: _ ->
    List.iteri
      (fun i (start, _) ->
        Report.series_row ppf ~x:start
          (List.map (fun (_, pts) -> snd (List.nth pts i)) t.sim_series))
      first)
