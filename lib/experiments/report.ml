let section ppf ~id ~title =
  Format.fprintf ppf "@.=== %s: %s ===@." id title

let note ppf s = Format.fprintf ppf "  %s@." s

let series_header ppf ~columns =
  (match columns with
  | [] -> ()
  | first :: rest ->
    Format.fprintf ppf "  %10s" first;
    List.iter (fun c -> Format.fprintf ppf " %14s" c) rest);
  Format.fprintf ppf "@."

let series_row_s ppf ~x ys =
  Format.fprintf ppf "  %10s" x;
  List.iter (fun y -> Format.fprintf ppf " %14.6f" y) ys;
  Format.fprintf ppf "@."

let series_row ppf ~x ys = series_row_s ppf ~x:(Printf.sprintf "%.2f" x) ys

let paper_vs_measured ppf ~what ~paper ~measured =
  Format.fprintf ppf "  %-46s paper: %-18s measured: %s@." what paper measured

let pct b =
  if b >= 0.10 then Printf.sprintf "%.1f%%" (100. *. b)
  else if b >= 0.001 then Printf.sprintf "%.2f%%" (100. *. b)
  else Printf.sprintf "%.4f%%" (100. *. b)

let timed ?domains recorder name f =
  let before = Arnet_sim.Engine.calls_simulated () in
  let gc_before = Gc.quick_stat () in
  let span = Arnet_obs.Span.start name in
  Fun.protect
    ~finally:(fun () ->
      let wall = Arnet_obs.Span.stop span in
      let gc_after = Gc.quick_stat () in
      let calls = Arnet_sim.Engine.calls_simulated () - before in
      let minor_words = gc_after.Gc.minor_words -. gc_before.Gc.minor_words in
      let major_words = gc_after.Gc.major_words -. gc_before.Gc.major_words in
      Arnet_obs.Span.set_meta span "calls" (Arnet_obs.Jsonu.Int calls);
      (match domains with
      | Some d -> Arnet_obs.Span.set_meta span "domains" (Arnet_obs.Jsonu.Int d)
      | None -> ());
      if calls > 0 && wall > 0. then
        Arnet_obs.Span.set_meta span "calls_per_s"
          (Arnet_obs.Jsonu.Float (float_of_int calls /. wall));
      Arnet_obs.Span.set_meta span "minor_words"
        (Arnet_obs.Jsonu.Float minor_words);
      Arnet_obs.Span.set_meta span "major_words"
        (Arnet_obs.Jsonu.Float major_words);
      if calls > 0 then
        Arnet_obs.Span.set_meta span "minor_words_per_call"
          (Arnet_obs.Jsonu.Float (minor_words /. float_of_int calls));
      Arnet_obs.Span.note recorder span)
    f
