(** The failure sweep: per-link failure rate x reservation level x
    {Theorem-1 alternates, Suurballe protection}.

    On the quadrangle at a load where congestion losses are negligible,
    every policy replays identical arrivals *and* identical independent
    link up/down processes ({!Arnet_failure.Model.independent},
    exponential repair) per seed.  Compared, per failure rate:
    Theorem-1 trunk reservation over the full alternate tier
    ([controlled]), no reservation ([uncontrolled]), and the
    protection-path table whose single alternate is the link-disjoint
    Suurballe mate, with ([protected]) and without ([protected-r0])
    reservation — blocking, in-flight calls dropped by cuts, and
    failover admissions.  Deterministic per seed, sequential or pooled
    ([config.domains]). *)

open Arnet_sim

type cell = {
  scheme : string;
  blocking : Stats.summary;
  dropped : float;  (** mean in-flight calls killed per run *)
  failovers : float;  (** mean admissions around a dead primary per run *)
}

type point = { rate : float; cells : cell list }

type result = point list

val run :
  ?rates:float list -> ?mttr:float -> config:Config.t -> unit -> result
(** [rates] are per-link failure intensities (default
    [0; 0.005; 0.02; 0.05] per time unit; [0] means no script at all);
    [mttr] the mean repair time (default 5).
    @raise Invalid_argument on a negative or non-finite rate or
    [mttr <= 0]. *)

val print : Format.formatter -> result -> unit
