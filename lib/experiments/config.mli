(** Shared run configuration for the reproduction experiments.

    The paper's settings: 100 time units of measurement after a 10-unit
    warm-up from an idle network, 10 seeds per point.  [quick] trades
    seeds for turnaround when iterating. *)

type t = {
  seeds : int list;
  duration : float;  (** total simulated time including warm-up *)
  warmup : float;
  domains : int;
      (** OCaml domains used to shard independent replication runs
          (see {!Arnet_sim.Engine.replicate}); 1 = sequential.  Results
          are bit-identical whatever the value. *)
}

val paper : t
(** 10 seeds, warm-up 10, measurement 100 (duration 110), 1 domain. *)

val quick : t
(** 3 seeds, warm-up 5, measurement 45 (duration 50), 1 domain. *)

val of_env : unit -> t
(** [paper] unless the environment variable [ARNET_QUICK] is set to a
    nonempty value other than ["0"]; [ARNET_SEEDS=n] further overrides
    the seed count (first [n] seeds) and [ARNET_DOMAINS=n] the domain
    count (default 1). *)

val describe : t -> string
