open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

type misestimation_point = {
  factor : float;
  blocking : Stats.summary;
}

let misestimation ?(scale = 1.2) ?(factors = [ 0.5; 0.7; 1.0; 1.3; 1.7; 2.0 ])
    ~config () =
  let routes, nominal = Internet.nominal () in
  let graph = Route_table.graph routes in
  let matrix = Matrix.scale nominal scale in
  let capacities =
    Array.map (fun (l : Link.t) -> l.capacity) (Graph.links graph)
  in
  let true_loads = Loads.primary_link_loads routes matrix in
  let h = Route_table.h routes in
  let policy_for factor =
    let loads = Array.map (fun l -> l *. factor) true_loads in
    let reserves = Protection.levels_of_loads ~capacities ~loads ~h in
    { (Scheme.controlled ~reserves routes) with
      Engine.name = Printf.sprintf "controlled@%.1fx" factor }
  in
  let policies =
    Scheme.single_path routes :: List.map policy_for factors
  in
  let { Config.seeds; duration; warmup; domains } = config in
  let results =
    Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix ~policies ()
  in
  let summary name = Stats.blocking_summary (List.assoc name results) in
  let points =
    List.map
      (fun factor ->
        { factor;
          blocking = summary (Printf.sprintf "controlled@%.1fx" factor) })
      factors
  in
  (points, summary "single-path")

let print_misestimation ppf (points, single) =
  Report.series_header ppf ~columns:[ "est-factor"; "blocking"; "stderr" ];
  List.iter
    (fun p ->
      Report.series_row ppf ~x:p.factor
        [ p.blocking.Stats.mean; p.blocking.Stats.std_error ])
    points;
  Report.note ppf
    (Printf.sprintf "single-path reference on the same traces: %.4f"
       single.Stats.mean)

type adaptive_result = { schemes : (string * Stats.summary) list }

let adaptive ?(scale = 1.0) ~config () =
  let routes, nominal = Internet.nominal () in
  let graph = Route_table.graph routes in
  let matrix = Matrix.scale nominal scale in
  let make_policies () =
    [ Scheme.single_path routes;
      Scheme.controlled_auto ~matrix routes;
      Scheme.controlled_adaptive routes ]
  in
  let { Config.seeds; duration; warmup; domains } = config in
  let results =
    Engine.replicate_fresh ~warmup ~domains ~seeds ~duration ~graph ~matrix
      ~policies:make_policies ()
  in
  { schemes =
      List.map
        (fun (name, runs) -> (name, Stats.blocking_summary runs))
        results }

let print_adaptive ppf r =
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "  %-22s blocking %.4f +/- %.4f@." name
        s.Stats.mean s.Stats.std_error)
    r.schemes
