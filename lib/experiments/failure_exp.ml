open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core
open Arnet_failure

type cell = {
  scheme : string;
  blocking : Stats.summary;
  dropped : float;
  failovers : float;
}

type point = { rate : float; cells : cell list }

type result = point list

let default_rates = [ 0.; 0.005; 0.02; 0.05 ]

(* K4 at a load where Erlang losses are small, so what the sweep
   measures is the failure response, not congestion *)
let capacity = 100
let demand = 80.

let run ?(rates = default_rates) ?(mttr = 5.) ~config () =
  List.iter
    (fun r ->
      if not (Float.is_finite r) || r < 0. then
        invalid_arg "Failure_exp.run: rates must be finite and >= 0")
    rates;
  if mttr <= 0. then invalid_arg "Failure_exp.run: mttr <= 0";
  let { Config.seeds; duration; warmup; domains } = config in
  let graph = Builders.full_mesh ~nodes:4 ~capacity in
  let matrix = Matrix.uniform ~nodes:4 ~demand in
  let routes = Route_table.build graph in
  let prot_routes = Route_table.protected graph in
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  let prot_reserves =
    Protection.levels prot_routes matrix ~h:(Route_table.h prot_routes)
  in
  (* reservation level x alternate tier: Theorem-1 reserves vs r = 0,
     over length-ordered alternates vs the Suurballe disjoint mate *)
  let policies () =
    [ Fault_scheme.controlled ~reserves routes;
      Fault_scheme.uncontrolled routes;
      Fault_scheme.protected ~reserves:prot_reserves prot_routes;
      Fault_scheme.two_tier ~name:"protected-r0"
        ~admission:
          (Admission.unprotected
             ~capacities:(Array.map (fun (l : Link.t) -> l.capacity)
                            (Graph.links graph)))
        ~allow_alternates:true prot_routes ]
  in
  let point rate =
    let script ~seed =
      if rate = 0. then Script.empty
      else
        Model.independent
          ~rng:(Rng.substream (Rng.create ~seed) "failure")
          ~duration ~mtbf:(1. /. rate) ~mttr graph
    in
    let by_policy =
      Failure_engine.replicate_fresh ~warmup ~domains ~seeds ~duration ~graph
        ~matrix ~script ~policies ()
    in
    let n = float_of_int (List.length seeds) in
    let cells =
      List.map
        (fun (scheme, runs) ->
          { scheme;
            blocking =
              Stats.blocking_summary
                (List.map (fun r -> r.Failure_engine.core) runs);
            dropped =
              float_of_int
                (List.fold_left
                   (fun a r -> a + r.Failure_engine.dropped)
                   0 runs)
              /. n;
            failovers =
              float_of_int
                (List.fold_left
                   (fun a r -> a + r.Failure_engine.failovers)
                   0 runs)
              /. n })
        by_policy
    in
    { rate; cells }
  in
  List.map point rates

let print ppf (r : result) =
  Report.note ppf
    (Printf.sprintf
       "K4, capacity %d, %g erlangs/pair: per-link failure rate sweep \
        (exponential repair)"
       capacity demand);
  match r with
  | [] -> ()
  | first :: _ ->
    let names = List.map (fun c -> c.scheme) first.cells in
    Report.note ppf "mean blocking:";
    Report.series_header ppf ~columns:("fail rate" :: names);
    List.iter
      (fun p ->
        Report.series_row ppf ~x:p.rate
          (List.map (fun c -> c.blocking.Stats.mean) p.cells))
      r;
    Report.note ppf "mean in-flight calls dropped per run:";
    Report.series_header ppf ~columns:("fail rate" :: names);
    List.iter
      (fun p ->
        Report.series_row ppf ~x:p.rate (List.map (fun c -> c.dropped) p.cells))
      r;
    Report.note ppf "mean failover admissions per run:";
    Report.series_header ppf ~columns:("fail rate" :: names);
    List.iter
      (fun p ->
        Report.series_row ppf ~x:p.rate
          (List.map (fun c -> c.failovers) p.cells))
      r
