module J = Arnet_obs.Jsonu

type direction = Higher | Lower

type row = {
  section : string;
  metric : string;
  old_value : float;
  new_value : float;
  delta_pct : float;
  direction : direction;
  regressed : bool;
}

type report = {
  tolerance : float;
  rows : row list;
  missing_in_new : string list;
  extra_in_new : string list;
}

(* metrics gated per section, in render order.  Latency quantiles are
   deliberately absent: across container generations they move by
   integer factors without any code change, so they would only teach
   people to bump the tolerance *)
let section_metrics =
  [ ("calls_per_s", Higher); ("minor_words_per_call", Lower) ]

let delta_pct ~old_value ~new_value =
  if old_value = 0. then if new_value = 0. then 0. else infinity
  else (new_value -. old_value) /. Float.abs old_value *. 100.

(* Higher-is-better regresses on a relative drop.  Lower-is-better
   (allocation rates) regresses on a relative rise measured against
   max(old, 1): an 0.02 -> 0.03 words/call wobble on an allocation-free
   path is noise, a 10 -> 14 climb is not *)
let regressed ~tolerance ~direction ~old_value ~new_value =
  match direction with
  | Higher -> new_value < old_value *. (1. -. (tolerance /. 100.))
  | Lower ->
    new_value -. old_value > Float.max (Float.abs old_value) 1. *. (tolerance /. 100.)

let row ~tolerance ~section ~metric ~direction ~old_value ~new_value =
  { section;
    metric;
    old_value;
    new_value;
    delta_pct = delta_pct ~old_value ~new_value;
    direction;
    regressed = regressed ~tolerance ~direction ~old_value ~new_value }

let shape msg = raise (J.Parse_error ("bench document: " ^ msg))

let sections doc =
  match J.member "sections" doc with
  | None -> shape "no \"sections\" array"
  | Some (J.List sections) ->
    List.map
      (fun s ->
        match J.member "name" s with
        | Some (J.String name) -> (name, s)
        | _ -> shape "section without a \"name\"")
      sections
  | Some _ -> shape "\"sections\" is not an array"

let float_member name doc =
  match J.member name doc with
  | Some (J.Int _ | J.Float _) as v -> Some (J.as_float (Option.get v))
  | _ -> None

let compare ?(tolerance = 10.) ~old_doc ~new_doc () =
  if tolerance < 0. then invalid_arg "Bench_diff.compare: tolerance < 0";
  let old_sections = sections old_doc and new_sections = sections new_doc in
  let missing_in_new =
    List.filter_map
      (fun (n, _) ->
        if List.mem_assoc n new_sections then None else Some n)
      old_sections
  and extra_in_new =
    List.filter_map
      (fun (n, _) ->
        if List.mem_assoc n old_sections then None else Some n)
      new_sections
  in
  let section_rows =
    List.concat_map
      (fun (name, old_s) ->
        match List.assoc_opt name new_sections with
        | None -> []
        | Some new_s ->
          List.filter_map
            (fun (metric, direction) ->
              match
                (float_member metric old_s, float_member metric new_s)
              with
              | Some old_value, Some new_value ->
                Some
                  (row ~tolerance ~section:name ~metric ~direction
                     ~old_value ~new_value)
              | _ -> None)
            section_metrics)
      old_sections
  in
  (* the compile sweep: rows matched by mesh size; the gated quantities
     are the speedups of the memoized and incremental builders over the
     sequential per-pair rebuild, which are machine-relative and so
     comparable across containers where raw seconds are not.  A speedup
     divides two independently timed runs, so its relative noise is the
     two timings' noise combined — such ratio rows are gated at double
     the tolerance of single-measurement metrics *)
  let ratio_tolerance = 2. *. tolerance in
  let compile_rows =
    let rows_of doc =
      match J.member "compile" doc with
      | Some (J.List rows) ->
        List.filter_map
          (fun r ->
            match J.member "nodes" r with
            | Some (J.Int n) -> Some (n, r)
            | _ -> None)
          rows
      | _ -> []
    in
    let old_rows = rows_of old_doc and new_rows = rows_of new_doc in
    List.concat_map
      (fun (nodes, old_r) ->
        match List.assoc_opt nodes new_rows with
        | None -> []
        | Some new_r ->
          List.filter_map
            (fun metric ->
              match
                (float_member metric old_r, float_member metric new_r)
              with
              | Some old_value, Some new_value ->
                Some
                  (row ~tolerance:ratio_tolerance
                     ~section:(Printf.sprintf "compile:n%d" nodes)
                     ~metric ~direction:Higher ~old_value ~new_value)
              | _ -> None)
            [ "memoized_speedup"; "patch_speedup" ])
      old_rows
  in
  let service_rows =
    match (J.member "service" old_doc, J.member "service" new_doc) with
    | Some old_s, Some new_s -> (
      match
        (float_member "requests_per_s" old_s, float_member "requests_per_s" new_s)
      with
      | Some old_value, Some new_value ->
        [ row ~tolerance ~section:"service" ~metric:"requests_per_s"
            ~direction:Higher ~old_value ~new_value ]
      | _ -> [])
    | _ -> []
  in
  (* the service scaling record: the gated quantity is the batch-32
     binary speedup over the line protocol — a ratio of two measured
     rates like the compile speedups, so gated at the same widened
     tolerance *)
  let serve_scaling_rows =
    match
      (J.member "serve_scaling" old_doc, J.member "serve_scaling" new_doc)
    with
    | Some old_s, Some new_s -> (
      match
        ( float_member "binary_speedup" old_s,
          float_member "binary_speedup" new_s )
      with
      | Some old_value, Some new_value ->
        [ row ~tolerance:ratio_tolerance ~section:"serve_scaling"
            ~metric:"binary_speedup" ~direction:Higher ~old_value ~new_value ]
      | _ -> [])
    | _ -> []
  in
  (* totals sum over whatever sections a run recorded: only comparable
     when the two runs recorded the same set *)
  let total_rows =
    if missing_in_new = [] && extra_in_new = [] then
      match
        ( float_member "total_calls_per_s" old_doc,
          float_member "total_calls_per_s" new_doc )
      with
      | Some old_value, Some new_value ->
        [ row ~tolerance ~section:"total" ~metric:"calls_per_s"
            ~direction:Higher ~old_value ~new_value ]
      | _ -> []
    else []
  in
  { tolerance;
    rows =
      section_rows @ compile_rows @ service_rows @ serve_scaling_rows
      @ total_rows;
    missing_in_new;
    extra_in_new }

let regressions report = List.filter (fun r -> r.regressed) report.rows

let value_str v =
  if Float.abs v >= 1000. then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

let print ppf report =
  Format.fprintf ppf "%-14s %-22s %12s %12s %9s@." "section" "metric" "old"
    "new" "delta";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %-22s %12s %12s %+8.1f%%%s@." r.section
        r.metric (value_str r.old_value) (value_str r.new_value) r.delta_pct
        (if r.regressed then "  REGRESSED" else ""))
    report.rows;
  List.iter
    (fun n -> Format.fprintf ppf "%-14s (only in the old run)@." n)
    report.missing_in_new;
  List.iter
    (fun n -> Format.fprintf ppf "%-14s (only in the new run)@." n)
    report.extra_in_new;
  match regressions report with
  | [] ->
    Format.fprintf ppf "no regression beyond %.0f%% across %d comparisons@."
      report.tolerance
      (List.length report.rows)
  | rs ->
    Format.fprintf ppf "%d of %d comparisons regressed beyond %.0f%%@."
      (List.length rs) (List.length report.rows) report.tolerance

let to_json report =
  let row_json r =
    J.Obj
      [ ("section", J.String r.section);
        ("metric", J.String r.metric);
        ("old", J.Float r.old_value);
        ("new", J.Float r.new_value);
        ("delta_pct", J.Float r.delta_pct);
        ("direction",
         J.String (match r.direction with Higher -> "higher" | Lower -> "lower"));
        ("regressed", J.Bool r.regressed) ]
  in
  J.Obj
    [ ("tolerance_pct", J.Float report.tolerance);
      ("rows", J.List (List.map row_json report.rows));
      ("missing_in_new",
       J.List (List.map (fun s -> J.String s) report.missing_in_new));
      ("extra_in_new",
       J.List (List.map (fun s -> J.String s) report.extra_in_new));
      ("regressed", J.Bool (regressions report <> [])) ]
