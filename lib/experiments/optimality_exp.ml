open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core
open Arnet_mdp

type row = {
  load : float;
  optimal : float;
  single_path : float;
  uncontrolled : float;
  controlled : float;
  controlled_simulated : float;
  reserve : int;
}

(* the directed triangle: links 0->1, 1->2, 0->2; streams (0,1), (1,2)
   and (0,2), the last with alternate 0->1->2 *)
let triangle_graph capacity =
  Graph.create ~nodes:3
    [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity;
      Link.make ~id:1 ~src:1 ~dst:2 ~capacity;
      Link.make ~id:2 ~src:0 ~dst:2 ~capacity ]

let run ?(capacity = 8) ?(loads = [ 4.; 5.; 6.; 7.; 8.; 9.; 10. ]) ~config
    () =
  let graph = triangle_graph capacity in
  let routes = Route_table.build graph in
  let { Config.seeds; duration; warmup; domains } = config in
  let one load =
    let model =
      Loss_mdp.make
        ~capacities:(Array.make 3 capacity)
        ~arrivals:(Array.make 3 load)
        ~routes:[ (0, [ 0 ]); (1, [ 1 ]); (2, [ 2 ]); (2, [ 0; 1 ]) ]
    in
    let reserve = Protection.level ~offered:load ~capacity ~h:2 in
    let reserves = [| reserve; reserve; reserve |] in
    let matrix =
      Matrix.make ~nodes:3 (fun i j ->
          match (i, j) with 0, 1 | 1, 2 | 0, 2 -> load | _ -> 0.)
    in
    let sim =
      let results =
        Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix
          ~policies:[ Scheme.controlled ~reserves routes ]
          ()
      in
      (Stats.blocking_summary (List.assoc "controlled" results)).Stats.mean
    in
    { load;
      optimal = Loss_mdp.optimal_blocking model;
      single_path =
        Loss_mdp.policy_blocking model (Loss_mdp.single_path_policy model);
      uncontrolled =
        Loss_mdp.policy_blocking model (Loss_mdp.uncontrolled_policy model);
      controlled =
        Loss_mdp.policy_blocking model
          (Loss_mdp.controlled_policy model ~reserves);
      controlled_simulated = sim;
      reserve }
  in
  List.map one loads

let print ppf rows =
  Report.series_header ppf
    ~columns:
      [ "erlangs"; "optimal"; "single-path"; "uncontrolled"; "controlled";
        "ctl-simulated"; "r" ];
  List.iter
    (fun r ->
      Report.series_row ppf ~x:r.load
        [ r.optimal; r.single_path; r.uncontrolled; r.controlled;
          r.controlled_simulated; float_of_int r.reserve ])
    rows
