(** The bench regression comparator behind [arn bench diff]: two
    [BENCH_*.json] documents in, a per-section delta table out, with a
    regression verdict against a percentage tolerance.

    Compared quantities, when both documents carry them:
    - per section (matched by name): [calls_per_s] (higher is better)
      and [minor_words_per_call] (lower is better — measured against
      [max(old, 1)] word/call so allocation-free sections cannot
      regress on noise);
    - per compile-sweep row (matched by mesh size):
      [memoized_speedup] and [patch_speedup] over the sequential
      per-pair rebuild (higher is better — speedups are
      machine-relative, so they compare across containers where raw
      seconds would not);
    - [service.requests_per_s] (higher is better);
    - [serve_scaling.binary_speedup] — the batch-32 binary-framing
      throughput over the line protocol (higher is better;
      machine-relative like the compile speedups);

    Speedup rows divide two independently measured timings, so their
    relative noise combines both measurements' noise; they are gated at
    twice [tolerance] where single-measurement metrics use it as-is.
    - [total_calls_per_s], only when the two runs recorded exactly the
      same section set (totals over different sections are not
      comparable).

    Latency quantiles are recorded in the documents but deliberately
    not gated: they shift by integer factors across container
    generations without any code change. *)

type direction = Higher | Lower

type row = {
  section : string;
  metric : string;
  old_value : float;
  new_value : float;
  delta_pct : float;  (** signed, relative to the old value *)
  direction : direction;
  regressed : bool;
}

type report = {
  tolerance : float;
  rows : row list;  (** sections in old-document order, then service/total *)
  missing_in_new : string list;  (** section names only the old run has *)
  extra_in_new : string list;
}

val compare :
  ?tolerance:float ->
  old_doc:Arnet_obs.Jsonu.t ->
  new_doc:Arnet_obs.Jsonu.t ->
  unit ->
  report
(** [tolerance] is a percentage (default 10).
    @raise Invalid_argument on a negative tolerance.
    @raise Arnet_obs.Jsonu.Parse_error when a document does not have
    the BENCH shape (a [sections] array of named objects). *)

val regressions : report -> row list
(** The rows past tolerance; empty means exit 0. *)

val print : Format.formatter -> report -> unit
(** The human delta table plus a one-line verdict. *)

val to_json : report -> Arnet_obs.Jsonu.t
