open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

let h_sweep ?(scales = [ 0.8; 1.0; 1.2 ]) ?(hs = [ 2; 4; 6; 8; 11 ])
    ~config () =
  let _, nominal = Internet.nominal () in
  let graph = Arnet_topology.Nsfnet.graph () in
  let { Config.seeds; duration; warmup; domains } = config in
  let one_h h =
    let routes = Route_table.build ~h graph in
    let per_scale scale =
      let matrix = Matrix.scale nominal scale in
      let results =
        Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix
          ~policies:[ Scheme.controlled_auto ~matrix routes ]
          ()
      in
      (scale, Stats.blocking_summary (List.assoc "controlled" results))
    in
    (h, List.map per_scale scales)
  in
  List.map one_h hs

let print_h_sweep ppf rows =
  let scales = match rows with [] -> [] | (_, pts) :: _ -> List.map fst pts in
  Report.series_header ppf
    ~columns:("H" :: List.map (Printf.sprintf "load %.1fx") scales);
  List.iter
    (fun (h, pts) ->
      Report.series_row_s ppf ~x:(string_of_int h)
        (List.map (fun (_, s) -> s.Stats.mean) pts))
    rows

let variants ?(scales = [ 0.8; 1.0; 1.2; 1.4 ]) ~config () =
  let routes, nominal = Internet.nominal () in
  let graph = Route_table.graph routes in
  let matrix_of scale = Matrix.scale nominal scale in
  let policies_of matrix =
    let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
    [ Scheme.controlled ~reserves routes;
      Scheme.controlled_per_link_h ~matrix routes;
      { (Scheme.least_busy ~reserves routes) with
        Engine.name = "least-busy-protected" };
      Scheme.controlled_length_aware ~matrix routes;
      Scheme.uncontrolled routes;
      { (Scheme.least_busy routes) with Engine.name = "least-busy-free" };
      Scheme.ott_krishnan ~matrix routes;
      Scheme.ott_krishnan ~reduced_load:true ~matrix routes ]
  in
  Sweep.run ~config ~graph ~matrix_of ~policies_of ~xs:scales

let print_variants ppf points = Sweep.print ~x_label:"load-scale" ppf points
