open Arnet_sim
open Arnet_cellular

type point = {
  offered : float;
  no_borrowing : Stats.summary;
  uncontrolled : Stats.summary;
  controlled : Stats.summary;
}

let default_offered = [ 30.; 35.; 40.; 45.; 50.; 55. ]

let run ?(rows = 4) ?(cols = 5) ?(capacity = 50) ?(offered = default_offered)
    ?(hot_spot = 1.5) ~config () =
  let grid = Cell_grid.reuse3_grid ~rows ~cols ~capacity in
  let { Config.seeds; duration; warmup; _ } = config in
  let one per_cell =
    let offered_per_cell =
      Array.init grid.Cell_grid.cells (fun c ->
          if c = 0 then per_cell *. hot_spot else per_cell)
    in
    let levels = Borrowing.protection_levels grid ~offered_per_cell in
    let variants =
      [ Borrowing.No_borrowing;
        Borrowing.Uncontrolled;
        Borrowing.Controlled levels ]
    in
    let results =
      Cell_sim.compare_variants ~warmup ~seeds ~duration ~grid
        ~offered_per_cell ~variants ()
    in
    let summary name = Stats.summarize (List.assoc name results) in
    { offered = per_cell;
      no_borrowing = summary "no-borrowing";
      uncontrolled = summary "uncontrolled-borrowing";
      controlled = summary "controlled-borrowing" }
  in
  List.map one offered

let print ppf points =
  Report.series_header ppf
    ~columns:
      [ "erlang/cell"; "no-borrowing"; "uncontrolled"; "controlled" ];
  List.iter
    (fun p ->
      Report.series_row ppf ~x:p.offered
        [ p.no_borrowing.Stats.mean;
          p.uncontrolled.Stats.mean;
          p.controlled.Stats.mean ])
    points
