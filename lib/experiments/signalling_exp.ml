open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core
open Arnet_signalling

type point = {
  hop_latency : float;
  scheme : string;
  blocking : float;
  glare_per_carried : float;
  mean_setup_latency : float;
}

let run ?(latencies = [ 0.; 0.001; 0.01; 0.05 ]) ?(scale = 1.0) ~config () =
  let routes, nominal = Internet.nominal () in
  let graph = Route_table.graph routes in
  let matrix = Matrix.scale nominal scale in
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  let zero = Array.make (Array.length reserves) 0 in
  let { Config.seeds; duration; warmup; _ } = config in
  let schemes = [ ("controlled", reserves); ("uncontrolled", zero) ] in
  let acc = ref [] in
  List.iter
    (fun hop_latency ->
      List.iter
        (fun (name, reserves) ->
          let totals = ref (0., 0., 0.) in
          List.iter
            (fun seed ->
              let rng = Rng.substream (Rng.create ~seed) "trace" in
              let trace = Trace.generate ~rng ~duration matrix in
              let s =
                Setup_sim.run ~warmup ~hop_latency ~graph ~routes ~reserves
                  ~allow_alternates:true trace
              in
              let carried =
                Stdlib.max 1
                  (s.Setup_sim.carried_primary + s.Setup_sim.carried_alternate)
              in
              let b, g, l = !totals in
              totals :=
                ( b +. Setup_sim.blocking s,
                  g
                  +. (float_of_int s.Setup_sim.glare_events
                     /. float_of_int carried),
                  l +. Setup_sim.mean_setup_latency s ))
            seeds;
          let n = float_of_int (List.length seeds) in
          let b, g, l = !totals in
          acc :=
            { hop_latency;
              scheme = name;
              blocking = b /. n;
              glare_per_carried = g /. n;
              mean_setup_latency = l /. n }
            :: !acc)
        schemes)
    latencies;
  List.rev !acc

let print ppf points =
  Format.fprintf ppf "  %10s %-14s %10s %14s %14s@." "hop-delay" "scheme"
    "blocking" "glare/carried" "setup-latency";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %10.3f %-14s %10.4f %14.4f %14.4f@."
        p.hop_latency p.scheme p.blocking p.glare_per_carried
        p.mean_setup_latency)
    points
