open Arnet_sim

type point = {
  x : float;
  bound : float;
  schemes : (string * Stats.summary) list;
}

let run ~config ~graph ~matrix_of ~policies_of ~xs =
  let { Config.seeds; duration; warmup; domains } = config in
  let one x =
    let matrix = matrix_of x in
    let policies = policies_of matrix in
    let results =
      Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix ~policies ()
    in
    let schemes =
      List.map (fun (name, runs) -> (name, Stats.blocking_summary runs)) results
    in
    { x; bound = Arnet_bound.Erlang_bound.compute graph matrix; schemes }
  in
  List.map one xs

let columns points =
  match points with
  | [] -> []
  | p :: _ -> List.map fst p.schemes

let print ?(x_label = "load") ppf points =
  Report.series_header ppf ~columns:(x_label :: "erlang-bound" :: columns points);
  List.iter
    (fun p ->
      Report.series_row ppf ~x:p.x
        (p.bound :: List.map (fun (_, s) -> s.Stats.mean) p.schemes))
    points

let print_with_errors ppf points =
  Report.series_header ppf
    ~columns:("load" :: "erlang-bound" :: columns points);
  List.iter
    (fun p ->
      Report.series_row ppf ~x:p.x
        (p.bound :: List.map (fun (_, s) -> s.Stats.mean) p.schemes);
      Report.series_row_s ppf ~x:"+/-"
        (0. :: List.map (fun (_, s) -> s.Stats.std_error) p.schemes))
    points

let scheme_mean point name =
  match List.assoc_opt name point.schemes with
  | Some s -> s.Stats.mean
  | None -> raise Not_found

let to_csv ?(x_label = "load") points =
  let buf = Buffer.create 256 in
  let cols = columns points in
  Buffer.add_string buf x_label;
  Buffer.add_string buf ",erlang_bound";
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf ",%s,%s_stderr" c c))
    cols;
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "%.6g,%.8g" p.x p.bound);
      List.iter
        (fun (_, s) ->
          Buffer.add_string buf
            (Printf.sprintf ",%.8g,%.8g" s.Stats.mean s.Stats.std_error))
        p.schemes;
      Buffer.add_char buf '\n')
    points;
  Buffer.contents buf
