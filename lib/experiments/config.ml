type t = {
  seeds : int list;
  duration : float;
  warmup : float;
  domains : int;
}

let seeds_upto n = List.init n (fun i -> 1000 + i)

let paper =
  { seeds = seeds_upto 10; duration = 110.; warmup = 10.; domains = 1 }

let quick =
  { seeds = seeds_upto 3; duration = 50.; warmup = 5.; domains = 1 }

let of_env () =
  let truthy = function None | Some "" | Some "0" -> false | Some _ -> true in
  let base = if truthy (Sys.getenv_opt "ARNET_QUICK") then quick else paper in
  let base = { base with domains = Arnet_sim.Pool.of_env () } in
  match Sys.getenv_opt "ARNET_SEEDS" with
  | None -> base
  | Some s ->
    (match int_of_string_opt s with
    | Some n when n >= 1 -> { base with seeds = seeds_upto n }
    | _ -> base)

let describe t =
  Printf.sprintf "%d seeds, warm-up %g, measurement window %g, %d domain%s"
    (List.length t.seeds) t.warmup
    (t.duration -. t.warmup)
    t.domains
    (if t.domains = 1 then "" else "s")
