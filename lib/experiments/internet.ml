open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

let nominal () =
  let routes, fit = Fit.nsfnet_nominal () in
  (routes, fit.Fit.matrix)

let paper_load_of_scale scale = 10. *. scale

let default_scales = [ 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0; 1.1; 1.2; 1.3; 1.4 ]

let run ?(h = 11) ?(scales = default_scales) ?(failed_links = [])
    ?with_ott_krishnan ~config () =
  let with_ott_krishnan =
    match with_ott_krishnan with
    | Some b -> b
    | None -> failed_links = []
  in
  let _, matrix0 = nominal () in
  let graph =
    let g = Nsfnet.graph () in
    if failed_links = [] then g else Graph.without_links g failed_links
  in
  let routes = Route_table.build ~h graph in
  let matrix_of scale = Matrix.scale matrix0 scale in
  let policies_of matrix =
    let base =
      [ Scheme.single_path routes;
        Scheme.uncontrolled routes;
        Scheme.controlled_auto ~matrix routes ]
    in
    if with_ott_krishnan then base @ [ Scheme.ott_krishnan ~matrix routes ]
    else base
  in
  Sweep.run ~config ~graph ~matrix_of ~policies_of ~xs:scales

let print ppf points = Sweep.print ~x_label:"load-scale" ppf points

type table1_row = {
  src : int;
  dst : int;
  capacity : int;
  paper_load : float;
  fitted_load : float;
  paper_r6 : int;
  our_r6 : int;
  paper_r11 : int;
  our_r11 : int;
}

let table1 () =
  let routes, fit = Fit.nsfnet_nominal () in
  let g = Route_table.graph routes in
  let loads = fit.Fit.achieved in
  let row ((src, dst), paper_load) =
    let link = Graph.find_link_exn g ~src ~dst in
    let fitted_load = loads.(link.Link.id) in
    let paper_r6, paper_r11 =
      List.assoc (src, dst) Nsfnet.table1_protection
    in
    let our r_h = Protection.level ~offered:fitted_load ~capacity:link.Link.capacity ~h:r_h in
    { src;
      dst;
      capacity = link.Link.capacity;
      paper_load;
      fitted_load;
      paper_r6;
      our_r6 = our 6;
      paper_r11;
      our_r11 = our 11 }
  in
  List.map row Nsfnet.table1_loads

let print_table1 ppf rows =
  Format.fprintf ppf "  %-8s %5s %11s %10s %8s %6s %8s %6s@." "link" "C"
    "lambda(pap)" "lambda(fit)" "r6(pap)" "r6" "r11(pap)" "r11";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %2d->%-4d %5d %11.0f %10.1f %8d %6d %8d %6d@."
        r.src r.dst r.capacity r.paper_load r.fitted_load r.paper_r6 r.our_r6
        r.paper_r11 r.our_r11)
    rows;
  let exact pick =
    List.length (List.filter (fun r -> fst (pick r) = snd (pick r)) rows)
  in
  let close pick =
    List.length
      (List.filter (fun r -> abs (fst (pick r) - snd (pick r)) <= 2) rows)
  in
  Format.fprintf ppf
    "  r(H=6):  %d/%d exact, %d/%d within 2;  r(H=11): %d/%d exact, %d/%d \
     within 2@."
    (exact (fun r -> (r.paper_r6, r.our_r6)))
    (List.length rows)
    (close (fun r -> (r.paper_r6, r.our_r6)))
    (List.length rows)
    (exact (fun r -> (r.paper_r11, r.our_r11)))
    (List.length rows)
    (close (fun r -> (r.paper_r11, r.our_r11)))
    (List.length rows)

type skew_row = { scheme : string; skew : Stats.skew }

let fairness ?(h = 6) ~config () =
  let { Config.seeds; duration; warmup; domains } = config in
  let _, matrix = nominal () in
  let graph = Nsfnet.graph () in
  let routes = Route_table.build ~h graph in
  let policies =
    [ Scheme.single_path routes;
      Scheme.uncontrolled routes;
      Scheme.controlled_auto ~matrix routes ]
  in
  let results =
    Engine.replicate ~warmup ~domains ~seeds ~duration ~graph ~matrix ~policies ()
  in
  List.map
    (fun (scheme, runs) ->
      let pooled =
        match runs with
        | [] -> invalid_arg "Internet.fairness: no runs"
        | first :: rest -> List.fold_left Stats.merge first rest
      in
      { scheme; skew = Stats.od_skew pooled })
    results

let print_fairness ppf rows =
  Format.fprintf ppf "  %-14s %10s %10s %10s %14s@." "scheme" "min-block"
    "mean-block" "max-block" "skew (cv)";
  List.iter
    (fun { scheme; skew } ->
      Format.fprintf ppf "  %-14s %10.4f %10.4f %10.4f %14.3f@." scheme
        skew.Stats.min_blocking skew.Stats.mean_blocking
        skew.Stats.max_blocking skew.Stats.coefficient_of_variation)
    rows
