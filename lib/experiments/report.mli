(** Plain-text reporting helpers shared by the bench harness, the CLI
    and the examples.  Everything prints to a formatter so tests can
    capture output. *)

val section : Format.formatter -> id:string -> title:string -> unit
(** A banner like [=== fig3: Blocking for a fully-connected quadrangle ===]. *)

val note : Format.formatter -> string -> unit

val series_header : Format.formatter -> columns:string list -> unit
(** Fixed-width header row. *)

val series_row : Format.formatter -> x:float -> float list -> unit
(** One sweep point: an x value followed by y values, all to 4 decimal
    places in scientific-friendly fixed width. *)

val series_row_s : Format.formatter -> x:string -> float list -> unit

val paper_vs_measured :
  Format.formatter -> what:string -> paper:string -> measured:string -> unit

val pct : float -> string
(** Blocking probability as a percentage with sensible precision. *)

val timed :
  ?domains:int -> Arnet_obs.Span.recorder -> string -> (unit -> 'a) -> 'a
(** Run a harness section under a wall-clock span, tagging it with the
    number of simulated calls replayed while it ran ([calls], from
    [Engine.calls_simulated]) and the implied [calls_per_s]; when
    [domains] is given it is recorded as a [domains] meta field, so
    bench records distinguish parallel from sequential sweeps.  Each
    span also carries the GC dimension: [minor_words] and
    [major_words] ([Gc.quick_stat] deltas over the section, in words)
    and, when any calls were simulated, the derived
    [minor_words_per_call] — so allocation regressions in the hot path
    show up in the bench trajectory, not just wall-clock.  Note the
    deltas cover the whole section (trace generation, table builds and
    reporting included), not the engine loop alone.  The span is
    recorded (and the odometer read) even when the section raises. *)
