open Arnet_topology

type t = {
  graph : Graph.t;
  reserves : int array;
  occupancy : int array;
  failed : int list;
  clock : float;
  counters : (string * int) list;
}

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let snapshot_directives = [ "clock"; "reserve"; "occupancy"; "failed"; "counter" ]

let make ?reserves ?occupancy ?failed ?clock ?counters graph =
  let m = Graph.link_count graph in
  let reserves = Option.value ~default:(Array.make m 0) reserves in
  let occupancy = Option.value ~default:(Array.make m 0) occupancy in
  let failed = Option.value ~default:[] failed in
  let clock = Option.value ~default:0. clock in
  let counters = Option.value ~default:[] counters in
  if Array.length reserves <> m then
    invalid_arg "Snapshot.make: reserves length <> link count";
  if Array.length occupancy <> m then
    invalid_arg "Snapshot.make: occupancy length <> link count";
  if Array.exists (fun r -> r < 0) reserves then
    invalid_arg "Snapshot.make: negative reserve";
  if Array.exists (fun o -> o < 0) occupancy then
    invalid_arg "Snapshot.make: negative occupancy";
  if List.exists (fun k -> k < 0 || k >= m) failed then
    invalid_arg "Snapshot.make: failed link id out of range";
  if not (Float.is_finite clock) || clock < 0. then
    invalid_arg "Snapshot.make: clock must be finite and >= 0";
  List.iter
    (fun (name, _) ->
      if name = "" || String.contains name ' ' || String.contains name '\t'
      then invalid_arg "Snapshot.make: counter name must be one token")
    counters;
  { graph;
    reserves;
    occupancy;
    failed = List.sort_uniq compare failed;
    clock;
    counters }

let float_to_text f =
  let shortest = Printf.sprintf "%.12g" f in
  if float_of_string shortest = f then shortest else Printf.sprintf "%.17g" f

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Spec.to_string t.graph);
  Buffer.add_string buf (Printf.sprintf "clock %s\n" (float_to_text t.clock));
  let per_link keyword values =
    Graph.iter_links
      (fun (l : Link.t) ->
        if values.(l.Link.id) <> 0 then
          Buffer.add_string buf
            (Printf.sprintf "%s %d %d %d\n" keyword l.Link.src l.Link.dst
               values.(l.Link.id)))
      t.graph
  in
  per_link "reserve" t.reserves;
  per_link "occupancy" t.occupancy;
  List.iter
    (fun k ->
      let l = Graph.link t.graph k in
      Buffer.add_string buf
        (Printf.sprintf "failed %d %d\n" l.Link.src l.Link.dst))
    t.failed;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "counter %s %d\n" name v))
    t.counters;
  Buffer.contents buf

(* the spec body is the prefix before the first snapshot directive (the
   order [to_string] writes), so [Spec.of_string]'s line numbers align *)
let split_sections text =
  let lines = String.split_on_char '\n' text in
  let is_snapshot_line line =
    let stripped =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match
      String.split_on_char ' ' (String.trim stripped)
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun w -> w <> "")
    with
    | keyword :: _ -> List.mem keyword snapshot_directives
    | [] -> false
  in
  let rec split i prefix = function
    | [] -> (List.rev prefix, [], i)
    | line :: rest when is_snapshot_line line ->
      (List.rev prefix, line :: rest, i)
    | line :: rest -> split (i + 1) (line :: prefix) rest
  in
  split 1 [] lines

let parse_int line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected an integer %s, got %S" what s)

let of_string text =
  let spec_lines, snap_lines, first_snap_line = split_sections text in
  let graph =
    match Spec.of_string (String.concat "\n" spec_lines) with
    | { Spec.graph; matrix = None } -> graph
    | { Spec.matrix = Some _; _ } ->
      fail first_snap_line "snapshots carry no demand lines"
    | exception Spec.Parse_error (line, msg) -> fail line msg
  in
  let m = Graph.link_count graph in
  let reserves = Array.make m 0 in
  let occupancy = Array.make m 0 in
  let reserve_seen = Array.make m false in
  let occupancy_seen = Array.make m false in
  let failed = ref [] in
  let clock = ref None in
  let counters = ref [] in
  let resolve_link lineno src dst =
    match Graph.find_link graph ~src ~dst with
    | Some l -> l.Link.id
    | None -> fail lineno (Printf.sprintf "no link %d->%d" src dst)
  in
  let handle lineno raw =
    let stripped =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let words =
      String.split_on_char ' ' (String.trim stripped)
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> ()
    | [ "clock"; v ] -> (
      if !clock <> None then fail lineno "duplicate 'clock'";
      match float_of_string_opt v with
      | Some c when Float.is_finite c && c >= 0. -> clock := Some c
      | Some _ | None -> fail lineno "clock must be finite and >= 0")
    | "clock" :: _ -> fail lineno "usage: clock TIME"
    | [ "reserve"; src; dst; r ] ->
      let k =
        resolve_link lineno
          (parse_int lineno "src" src)
          (parse_int lineno "dst" dst)
      in
      if reserve_seen.(k) then fail lineno "duplicate reserve for this link";
      reserve_seen.(k) <- true;
      let r = parse_int lineno "reserve" r in
      if r < 0 then fail lineno "negative reserve";
      reserves.(k) <- r
    | "reserve" :: _ -> fail lineno "usage: reserve SRC DST LEVEL"
    | [ "occupancy"; src; dst; o ] ->
      let k =
        resolve_link lineno
          (parse_int lineno "src" src)
          (parse_int lineno "dst" dst)
      in
      if occupancy_seen.(k) then
        fail lineno "duplicate occupancy for this link";
      occupancy_seen.(k) <- true;
      let o = parse_int lineno "occupancy" o in
      if o < 0 then fail lineno "negative occupancy";
      occupancy.(k) <- o
    | "occupancy" :: _ -> fail lineno "usage: occupancy SRC DST CIRCUITS"
    | [ "failed"; src; dst ] ->
      let k =
        resolve_link lineno
          (parse_int lineno "src" src)
          (parse_int lineno "dst" dst)
      in
      if List.mem k !failed then fail lineno "duplicate failed link";
      failed := k :: !failed
    | "failed" :: _ -> fail lineno "usage: failed SRC DST"
    | [ "counter"; name; v ] ->
      if List.mem_assoc name !counters then
        fail lineno (Printf.sprintf "duplicate counter %S" name)
      else counters := (name, parse_int lineno "counter value" v) :: !counters
    | "counter" :: _ -> fail lineno "usage: counter NAME VALUE"
    | word :: _ -> fail lineno (Printf.sprintf "unknown directive %S" word)
  in
  List.iteri (fun i line -> handle (first_snap_line + i) line) snap_lines;
  { graph;
    reserves;
    occupancy;
    failed = List.sort_uniq compare !failed;
    clock = Option.value ~default:0. !clock;
    counters = List.rev !counters }

let to_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(* per-link data compared through endpoint lookup: parsing may renumber
   link ids, so raw array equality would compare the wrong links *)
let equal a b =
  Graph.node_count a.graph = Graph.node_count b.graph
  && Graph.link_count a.graph = Graph.link_count b.graph
  && List.for_all
       (fun v -> Graph.label a.graph v = Graph.label b.graph v)
       (List.init (Graph.node_count a.graph) (fun i -> i))
  && Float.equal a.clock b.clock
  && a.counters = b.counters
  && Graph.fold_links
       (fun (l : Link.t) ok ->
         ok
         &&
         match Graph.find_link b.graph ~src:l.Link.src ~dst:l.Link.dst with
         | None -> false
         | Some r ->
           r.Link.capacity = l.Link.capacity
           && a.reserves.(l.Link.id) = b.reserves.(r.Link.id)
           && a.occupancy.(l.Link.id) = b.occupancy.(r.Link.id)
           && List.mem l.Link.id a.failed = List.mem r.Link.id b.failed)
       a.graph true

let roundtrip_ok t = equal t (of_string (to_string t))
