(** Plain-text daemon state snapshots.

    The durable record an admission-control daemon writes when it
    drains: the network it was serving (embedded {!Spec} directives)
    plus the dynamic state layered on top — protection levels,
    occupancy, failed links, the virtual clock and its counters.

    The format extends the {!Spec} grammar with directives that appear
    after every spec line:

    {v
    nodes 4
    edge 0 1 100          # ... the Spec body (graph only) ...
    clock 1250.5          # virtual time at snapshot
    reserve 0 1 5         # r^k for link 0->1 (unlisted links: 0)
    occupancy 0 1 37      # circuits held on link 0->1 (unlisted: 0)
    failed 2 3            # link 2->3 was out of service
    counter accepted 902  # free-form integer counters, order kept
    v}

    Per-link directives name links by their endpoints, because parsing
    a spec may renumber link ids; {!of_string} re-resolves them against
    the parsed graph.  Rendering then parsing yields an {!equal}
    snapshot. *)

open Arnet_topology

type t = {
  graph : Graph.t;
  reserves : int array;  (** per link id *)
  occupancy : int array;  (** per link id *)
  failed : int list;  (** failed link ids, ascending *)
  clock : float;
  counters : (string * int) list;  (** order preserved *)
}

exception Parse_error of int * string
(** Line number (1-based) and message — the {!Spec.Parse_error}
    convention. *)

val make :
  ?reserves:int array ->
  ?occupancy:int array ->
  ?failed:int list ->
  ?clock:float ->
  ?counters:(string * int) list ->
  Graph.t ->
  t
(** Defaults: all-zero arrays, no failures, clock 0, no counters.
    @raise Invalid_argument on wrong array lengths, negative entries,
    out-of-range failed ids, a negative or non-finite clock, or a
    counter name that is not one nonempty space-free token. *)

val to_string : t -> string
val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val to_file : string -> t -> unit
val of_file : string -> t
(** @raise Sys_error when unreadable, [Parse_error] when malformed. *)

val equal : t -> t -> bool
(** Structural equality (graph compared as in {!Spec.roundtrip_ok}:
    same nodes, labels, links and capacities). *)

val roundtrip_ok : t -> bool
(** [equal s (of_string (to_string s))] — used by tests. *)
