(** Link-level admission rules.

    The distributed decision of Section 1: each link accepts a *primary*
    call whenever it has a free circuit, and an *alternate-routed* call
    only while its occupancy is below [capacity - reserve] (equivalently,
    it refuses alternates in its last [reserve + 1] states
    [C - r .. C]).  A path admits a call iff every link on it does. *)

open Arnet_paths

type t

val make : capacities:int array -> reserves:int array -> t
(** @raise Invalid_argument if lengths differ or any reserve is outside
    [0 .. capacity]. *)

val unprotected : capacities:int array -> t
(** All reserves zero — uncontrolled alternate routing. *)

val capacities : t -> int array
val reserves : t -> int array

val link_admits_primary : t -> occupancy:int array -> int -> bool
val link_admits_alternate : t -> occupancy:int array -> int -> bool

val path_admits_primary : t -> occupancy:int array -> Path.t -> bool
val path_admits_alternate : t -> occupancy:int array -> Path.t -> bool

val alternate_refusal :
  t -> occupancy:int array -> Path.t -> (int * int * int) option
(** The first link (in path order) that refuses an alternate-routed
    call, as [(link id, occupancy, threshold)] where
    [threshold = capacity - reserve] and the refusal is
    [occupancy >= threshold]; [None] iff {!path_admits_alternate}.
    This is the explain-side of the admission rule, feeding
    [Alternate_rejected] trace events. *)

val free_circuits : t -> occupancy:int array -> Path.t -> int
(** Minimum spare capacity over the path's links (the "least busy"
    metric of LBA-style schemes). *)
