(** Ready-made routing policies for the simulator — the four algorithms
    compared throughout Section 4, plus a least-busy-alternative ablation.

    All constructors share a {!Arnet_paths.Route_table.t} so that every
    scheme sees the same primary paths and the same candidate alternates,
    exactly as in the paper's experiments.

    Constructors built on {!Controller.decide} accept an [?observer]:
    decision-level trace events ([Primary_attempt], [Alternate_rejected]
    with the refusing link, occupancy and trunk-reservation threshold)
    are emitted through it during simulation.  Omit it (the default) and
    the decision path is byte-identical to the unobserved scheme.  The
    custom-decide schemes ({!ott_krishnan}, {!least_busy}) have no
    trunk-reservation scan to narrate and take no observer. *)

open Arnet_paths
open Arnet_traffic
open Arnet_sim

val single_path :
  ?choice:Controller.primary_choice ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  ?domains:int ->
  Route_table.t -> Engine.policy
(** Tier 1 only: a call completes on its primary path or is lost.
    [?domains] (here and on the other compiled constructors) shards
    {!Controller.compile}'s per-source plan rows across OCaml domains —
    it changes compilation wall-clock at 1000+ nodes, never the compiled
    decisions — and is ignored on the observed/bifurcated generic
    path. *)

val uncontrolled :
  ?choice:Controller.primary_choice ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  ?domains:int ->
  Route_table.t -> Engine.policy
(** Alternate routing with no protection: any alternate with a free
    circuit on every link is taken. *)

val controlled :
  ?choice:Controller.primary_choice ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  ?domains:int ->
  reserves:int array -> Route_table.t -> Engine.policy
(** The paper's scheme: alternates admitted per-link only below
    [capacity - reserve].  [reserves] is indexed by link id — usually
    {!Protection.levels}. *)

val protected :
  ?choice:Controller.primary_choice ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  ?domains:int ->
  reserves:int array -> Route_table.t -> Engine.policy
(** Protection-path routing (named ["protected"]): same two-tier
    decision rule as {!controlled}, intended for a
    {!Arnet_paths.Route_table.protected} table, where the single
    alternate per pair is the Suurballe link-disjoint mate of the
    primary — so overflow (and, in the live daemon, failover) always
    lands on a path sharing no link with the primary. *)

val controlled_auto :
  ?choice:Controller.primary_choice ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  ?domains:int ->
  ?h:int -> matrix:Matrix.t -> Route_table.t -> Engine.policy
(** Convenience: computes reserves from the matrix via
    {!Protection.levels} with [h] defaulting to the route table's own
    alternate-length cap. *)

val controlled_per_link_h :
  ?choice:Controller.primary_choice ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  matrix:Matrix.t -> Route_table.t -> Engine.policy
(** Footnote-5 ablation: protection levels from {!Protection.per_link_h}
    — each link protects only against the longest alternate that
    actually crosses it. *)

val controlled_length_aware :
  ?choice:Controller.primary_choice ->
  matrix:Matrix.t -> Route_table.t -> Engine.policy
(** The length-prioritized variant Section 3.2 discusses: a link judges
    each alternate call against the protection level for *that call's
    own path length* — an l-hop alternate is admitted below
    [C - level (Lambda, C, l)] — so shorter (cheaper) alternates face
    laxer thresholds.  The guarantee survives: an l-hop path's summed
    bound is at most [l * (1/l) = 1].  The paper expects the gains to be
    overwhelmed in practice; the ablation bench checks that. *)

val controlled_adaptive :
  ?choice:Controller.primary_choice ->
  ?observer:(Arnet_obs.Event.t -> unit) ->
  ?h:int ->
  ?window:float ->
  ?smoothing:float ->
  ?refresh:float ->
  ?initial_loads:float array ->
  Route_table.t -> Engine.policy
(** The fully distributed variant: no traffic matrix.  Every link
    estimates its own primary demand from the call set-ups that fly past
    it ({!Estimator}) and recomputes its protection level every
    [refresh] time units (default 10).  [initial_loads] seeds the
    estimators (planning values); without it links start unprotected and
    converge within a few windows. *)

val ott_krishnan :
  ?revenue:float ->
  ?reduced_load:bool ->
  matrix:Matrix.t -> Route_table.t -> Engine.policy
(** The separable shadow-price comparator [34]: a call is admitted on
    the candidate path (primary or alternate, any stored length)
    minimizing the sum of per-link implied costs
    [B(nu_k, C_k) / B(nu_k, s_k)] at the current occupancies, unless
    that minimum exceeds [revenue] (default 1, the paper's single-rate
    calls), in which case the call is blocked.  [nu_k] is the primary
    load; the paper uses the *unreduced* intensities (default); set
    [reduced_load] for the Erlang-fixed-point variant. *)

val least_busy :
  ?reserves:int array -> Route_table.t -> Engine.policy
(** Ablation: primary first; among admissible alternates of the
    *shortest admissible length*, picks the one with most free circuits
    (aggregated-least-busy-alternative in the style of [28, 29]), with
    optional protection. *)

val name_of : Engine.policy -> string
