open Arnet_topology
open Arnet_paths
open Arnet_sim

type primary_choice =
  | Table
  | Sampled of (src:int -> dst:int -> u:float -> Path.t option)

let primary_for routes choice (call : Trace.call) =
  let src = call.Trace.src and dst = call.Trace.dst in
  match choice with
  | Table ->
    if Route_table.has_route routes ~src ~dst then
      Some (Route_table.primary routes ~src ~dst)
    else None
  | Sampled f -> f ~src ~dst ~u:call.Trace.u

(* ------------------------------------------------------------------ *)
(* compiled decision tables: the allocation-free fast path for the
   table-primary, unobserved case (every paper scheme in its benchmark
   configuration).  All decision material — the primary, its [Routed]
   outcome, the primary-excluded alternates and *their* [Routed]
   outcomes — is built once per ordered O-D pair, so deciding a call is
   array indexing plus per-link occupancy compares: no list filter, no
   closure, no option, no variant allocation. *)

type plan = {
  plan_primary : Path.t option;  (* prebuilt; never allocated per call *)
  routed_primary : Engine.outcome;  (* Routed primary, or Lost if none *)
  alt_paths : Path.t array;  (* attempt order, table primary excluded *)
  alt_outcomes : Engine.outcome array;  (* Routed alt_paths.(i) *)
}

let unroutable =
  { plan_primary = None;
    routed_primary = Engine.Lost;
    alt_paths = [||];
    alt_outcomes = [||] }

let rec scan_alternates admission occupancy paths outcomes i =
  if i >= Array.length paths then Engine.Lost
  else if
    Admission.path_admits_alternate admission ~occupancy
      (Array.unsafe_get paths i)
  then Array.unsafe_get outcomes i
  else scan_alternates admission occupancy paths outcomes (i + 1)

let compile ?(domains = 1) ~name ~routes ~admission ~allow_alternates () =
  let n = Graph.node_count (Route_table.graph routes) in
  let plan_for src dst =
    if src = dst || not (Route_table.has_route routes ~src ~dst) then
      unroutable
    else begin
      let p = Route_table.primary routes ~src ~dst in
      let alts = Route_table.alternate_array routes ~src ~dst in
      { plan_primary = Some p;
        routed_primary = Engine.Routed p;
        alt_paths = alts;
        alt_outcomes = Array.map (fun q -> Engine.Routed q) alts }
    end
  in
  (* per-source rows shard across domains; each plan depends only on its
     own pair's table entry, so the assembled array is bit-identical to
     the sequential Array.init for every domain count *)
  let rows =
    Pool.map ~domains
      (fun src -> Array.init n (fun dst -> plan_for src dst))
      (List.init n Fun.id)
  in
  let plans = Array.make (n * n) unroutable in
  List.iteri (fun src row -> Array.blit row 0 plans (src * n) n) rows;
  let decide ~occupancy ~(call : Trace.call) =
    let plan = plans.((call.Trace.src * n) + call.Trace.dst) in
    match plan.plan_primary with
    | None -> Engine.Lost
    | Some p ->
      if Admission.path_admits_primary admission ~occupancy p then
        plan.routed_primary
      else if not allow_alternates then Engine.Lost
      else
        scan_alternates admission occupancy plan.alt_paths plan.alt_outcomes 0
  in
  let is_primary ~(call : Trace.call) q =
    match plans.((call.Trace.src * n) + call.Trace.dst).plan_primary with
    | Some p -> q == p || Path.equal q p
    | None -> false
  in
  { Engine.name; decide; is_primary }

let decide ?observer ~routes ~admission ~choice ~allow_alternates ~occupancy
    (call : Trace.call) =
  match primary_for routes choice call with
  | None -> Engine.Lost
  | Some primary ->
    let primary_ok = Admission.path_admits_primary admission ~occupancy primary in
    (match observer with
    | Some f ->
      f
        (Arnet_obs.Event.Primary_attempt
           { time = call.Trace.time;
             src = call.Trace.src;
             dst = call.Trace.dst;
             hops = Path.hops primary;
             admitted = primary_ok })
    | None -> ());
    if primary_ok then Engine.Routed primary
    else if not allow_alternates then Engine.Lost
    else begin
      let src = call.Trace.src and dst = call.Trace.dst in
      let alternates =
        Route_table.alternates_excluding routes ~src ~dst primary
      in
      match observer with
      | None -> (
        (* hot path: no event construction, no refusal analysis *)
        let admissible p =
          Admission.path_admits_alternate admission ~occupancy p
        in
        match List.find_opt admissible alternates with
        | Some p -> Engine.Routed p
        | None -> Engine.Lost)
      | Some f ->
        let rec attempt = function
          | [] -> Engine.Lost
          | p :: rest -> (
            match Admission.alternate_refusal admission ~occupancy p with
            | None -> Engine.Routed p
            | Some (link, occ, threshold) ->
              f
                (Arnet_obs.Event.Alternate_rejected
                   { time = call.Trace.time;
                     src;
                     dst;
                     hops = Path.hops p;
                     link;
                     occupancy = occ;
                     threshold });
              attempt rest)
        in
        attempt alternates
    end
