open Arnet_paths
open Arnet_sim

type primary_choice =
  | Table
  | Sampled of (src:int -> dst:int -> u:float -> Path.t option)

let primary_for routes choice (call : Trace.call) =
  let src = call.Trace.src and dst = call.Trace.dst in
  match choice with
  | Table ->
    if Route_table.has_route routes ~src ~dst then
      Some (Route_table.primary routes ~src ~dst)
    else None
  | Sampled f -> f ~src ~dst ~u:call.Trace.u

let decide ?observer ~routes ~admission ~choice ~allow_alternates ~occupancy
    (call : Trace.call) =
  match primary_for routes choice call with
  | None -> Engine.Lost
  | Some primary ->
    let primary_ok = Admission.path_admits_primary admission ~occupancy primary in
    (match observer with
    | Some f ->
      f
        (Arnet_obs.Event.Primary_attempt
           { time = call.Trace.time;
             src = call.Trace.src;
             dst = call.Trace.dst;
             hops = Path.hops primary;
             admitted = primary_ok })
    | None -> ());
    if primary_ok then Engine.Routed primary
    else if not allow_alternates then Engine.Lost
    else begin
      let src = call.Trace.src and dst = call.Trace.dst in
      let alternates =
        Route_table.alternates_excluding routes ~src ~dst primary
      in
      match observer with
      | None -> (
        (* hot path: no event construction, no refusal analysis *)
        let admissible p =
          Admission.path_admits_alternate admission ~occupancy p
        in
        match List.find_opt admissible alternates with
        | Some p -> Engine.Routed p
        | None -> Engine.Lost)
      | Some f ->
        let rec attempt = function
          | [] -> Engine.Lost
          | p :: rest -> (
            match Admission.alternate_refusal admission ~occupancy p with
            | None -> Engine.Routed p
            | Some (link, occ, threshold) ->
              f
                (Arnet_obs.Event.Alternate_rejected
                   { time = call.Trace.time;
                     src;
                     dst;
                     hops = Path.hops p;
                     link;
                     occupancy = occ;
                     threshold });
              attempt rest)
        in
        attempt alternates
    end
