open Arnet_topology
open Arnet_paths
open Arnet_erlang
open Arnet_traffic
open Arnet_sim

let capacities_of routes =
  let g = Route_table.graph routes in
  Array.map (fun (l : Link.t) -> l.capacity) (Graph.links g)

let is_primary_checker routes choice ~call p =
  match Controller.primary_for routes choice call with
  | Some primary -> Path.equal p primary
  | None -> false

let two_tier ?observer ?domains ~name ~choice ~allow_alternates ~admission
    routes =
  match (observer, choice) with
  | None, Controller.Table ->
    (* the benchmark configuration: compiled, allocation-free decisions
       (identical outcomes to the generic path below) *)
    Controller.compile ?domains ~name ~routes ~admission ~allow_alternates ()
  | _ ->
    { Engine.name;
      decide =
        (fun ~occupancy ~call ->
          Controller.decide ?observer ~routes ~admission ~choice
            ~allow_alternates ~occupancy call);
      is_primary = is_primary_checker routes choice }

let single_path ?(choice = Controller.Table) ?observer ?domains routes =
  let admission = Admission.unprotected ~capacities:(capacities_of routes) in
  two_tier ?observer ?domains ~name:"single-path" ~choice
    ~allow_alternates:false ~admission routes

let uncontrolled ?(choice = Controller.Table) ?observer ?domains routes =
  let admission = Admission.unprotected ~capacities:(capacities_of routes) in
  two_tier ?observer ?domains ~name:"uncontrolled" ~choice
    ~allow_alternates:true ~admission routes

let controlled ?(choice = Controller.Table) ?observer ?domains ~reserves
    routes =
  let admission = Admission.make ~capacities:(capacities_of routes) ~reserves in
  two_tier ?observer ?domains ~name:"controlled" ~choice
    ~allow_alternates:true ~admission routes

let protected ?(choice = Controller.Table) ?observer ?domains ~reserves
    routes =
  let admission = Admission.make ~capacities:(capacities_of routes) ~reserves in
  two_tier ?observer ?domains ~name:"protected" ~choice
    ~allow_alternates:true ~admission routes

let controlled_auto ?(choice = Controller.Table) ?observer ?domains ?h
    ~matrix routes =
  let h = match h with None -> Route_table.h routes | Some h -> h in
  let reserves = Protection.levels routes matrix ~h in
  controlled ~choice ?observer ?domains ~reserves routes

let controlled_per_link_h ?(choice = Controller.Table) ?observer ~matrix
    routes =
  let reserves = Protection.levels_per_link_h routes matrix in
  let admission = Admission.make ~capacities:(capacities_of routes) ~reserves in
  two_tier ?observer ~name:"controlled-per-link-h" ~choice
    ~allow_alternates:true ~admission routes

let controlled_length_aware ?(choice = Controller.Table) ~matrix routes =
  let capacities = capacities_of routes in
  let loads = Loads.primary_link_loads routes matrix in
  let max_h = Stdlib.max 1 (Route_table.h routes) in
  (* thresholds.(k).(l-1): highest admissible occupancy (exclusive) for
     an l-hop alternate on link k *)
  let thresholds =
    Array.mapi
      (fun k c ->
        Array.init max_h (fun i ->
            let l = i + 1 in
            if loads.(k) <= 0. then c
            else c - Protection.level ~offered:loads.(k) ~capacity:c ~h:l))
      capacities
  in
  let decide ~occupancy ~call =
    match Controller.primary_for routes choice call with
    | None -> Engine.Lost
    | Some primary ->
      let primary_fits =
        Array.for_all
          (fun k -> occupancy.(k) < capacities.(k))
          primary.Path.link_ids
      in
      if primary_fits then Engine.Routed primary
      else begin
        let src = call.Trace.src and dst = call.Trace.dst in
        let admits p =
          let l = Path.hops p in
          l <= max_h
          && Array.for_all
               (fun k -> occupancy.(k) < thresholds.(k).(l - 1))
               p.Path.link_ids
        in
        match
          List.find_opt admits
            (Route_table.alternates_excluding routes ~src ~dst primary)
        with
        | Some p -> Engine.Routed p
        | None -> Engine.Lost
      end
  in
  { Engine.name = "controlled-length-aware";
    decide;
    is_primary = is_primary_checker routes choice }

let controlled_adaptive ?(choice = Controller.Table) ?observer ?h ?window
    ?smoothing ?(refresh = 10.) ?initial_loads routes =
  if refresh <= 0. then invalid_arg "Scheme.controlled_adaptive: bad refresh";
  let h = match h with None -> Route_table.h routes | Some h -> h in
  let capacities = capacities_of routes in
  let m = Array.length capacities in
  let estimators =
    Array.init m (fun k ->
        let initial =
          match initial_loads with None -> 0. | Some l -> l.(k)
        in
        Estimator.create ?window ?smoothing ~initial ())
  in
  let reserves =
    match initial_loads with
    | None -> Array.make m 0
    | Some loads -> Protection.levels_of_loads ~capacities ~loads ~h
  in
  let next_refresh = ref refresh in
  let admission = ref (Admission.make ~capacities ~reserves) in
  let decide ~occupancy ~call =
    let now = call.Trace.time in
    (* every primary set-up packet is seen by every link on the primary
       path, whether or not the call completes *)
    (match Controller.primary_for routes choice call with
    | Some primary ->
      Array.iter
        (fun k -> Estimator.observe estimators.(k) ~now)
        primary.Path.link_ids
    | None -> ());
    if now >= !next_refresh then begin
      Array.iteri
        (fun k e ->
          let offered = Estimator.estimate e ~now in
          reserves.(k) <-
            (if offered <= 0. then 0
             else Protection.level ~offered ~capacity:capacities.(k) ~h))
        estimators;
      admission := Admission.make ~capacities ~reserves;
      next_refresh := !next_refresh +. refresh
    end;
    Controller.decide ?observer ~routes ~admission:!admission ~choice
      ~allow_alternates:true ~occupancy call
  in
  { Engine.name = "controlled-adaptive";
    decide;
    is_primary = is_primary_checker routes choice }

let ott_krishnan ?(revenue = 1.) ?(reduced_load = false) ~matrix routes =
  if revenue <= 0. then invalid_arg "Scheme.ott_krishnan: revenue <= 0";
  let capacities = capacities_of routes in
  let loads =
    if not reduced_load then Loads.primary_link_loads routes matrix
    else begin
      let pair_routes = Loads.offered_to_pair_paths routes matrix in
      let blocking = Reduced_load.solve ~capacities pair_routes in
      Reduced_load.reduced_link_loads ~capacities ~blocking pair_routes
    end
  in
  let price_tables =
    Array.mapi
      (fun k c ->
        if loads.(k) <= 0. then None
        else Some (Shadow_price.make ~offered:loads.(k) ~capacity:c))
      capacities
  in
  let link_price ~occupancy k =
    if occupancy.(k) >= capacities.(k) then infinity
    else
      match price_tables.(k) with
      | None -> 0.  (* no primary traffic to displace *)
      | Some t -> Shadow_price.price t occupancy.(k)
  in
  let path_price ~occupancy p =
    Array.fold_left
      (fun acc k -> acc +. link_price ~occupancy k)
      0. p.Path.link_ids
  in
  let decide ~occupancy ~call =
    let src = call.Trace.src and dst = call.Trace.dst in
    if not (Route_table.has_route routes ~src ~dst) then Engine.Lost
    else begin
      (* all_paths is sorted by length, so strict improvement keeps the
         shortest among equal-price paths *)
      let best =
        List.fold_left
          (fun best p ->
            let cost = path_price ~occupancy p in
            match best with
            | Some (_, c) when c <= cost -> best
            | _ when cost = infinity -> best
            | _ -> Some (p, cost))
          None
          (Route_table.all_paths routes ~src ~dst)
      in
      match best with
      | Some (p, cost) when cost <= revenue -> Engine.Routed p
      | Some _ | None -> Engine.Lost
    end
  in
  { Engine.name = (if reduced_load then "ott-krishnan-reduced" else "ott-krishnan");
    decide;
    is_primary = is_primary_checker routes Controller.Table }

let least_busy ?reserves routes =
  let capacities = capacities_of routes in
  let admission =
    match reserves with
    | None -> Admission.unprotected ~capacities
    | Some reserves -> Admission.make ~capacities ~reserves
  in
  let decide ~occupancy ~call =
    let src = call.Trace.src and dst = call.Trace.dst in
    if not (Route_table.has_route routes ~src ~dst) then Engine.Lost
    else begin
      let primary = Route_table.primary routes ~src ~dst in
      if Admission.path_admits_primary admission ~occupancy primary then
        Engine.Routed primary
      else begin
        let admissible =
          Route_table.alternates_excluding routes ~src ~dst primary
          |> List.filter (Admission.path_admits_alternate admission ~occupancy)
        in
        match admissible with
        | [] -> Engine.Lost
        | first :: _ ->
          let shortest = Path.hops first in
          let same_length =
            List.filter (fun p -> Path.hops p = shortest) admissible
          in
          let busier a b =
            compare
              (Admission.free_circuits admission ~occupancy b)
              (Admission.free_circuits admission ~occupancy a)
          in
          (match List.stable_sort busier same_length with
          | best :: _ -> Engine.Routed best
          | [] -> Engine.Lost)
      end
    end
  in
  { Engine.name = "least-busy";
    decide;
    is_primary = is_primary_checker routes Controller.Table }

let name_of (p : Engine.policy) = p.Engine.name
