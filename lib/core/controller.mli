(** The two-tier routing decision of Section 1.

    Tier 1 (state-independent): a primary path is selected with no
    knowledge of network state — either the route table's unique
    minimum-hop path, or a sample from a bifurcated distribution using
    the call's pre-drawn uniform variate.

    Tier 2 (state-dependent): if the primary path is blocking, alternate
    paths are attempted in order of increasing hop length; an alternate
    completes only if every one of its links admits an alternate-routed
    call under the supplied {!Admission.t} (reserves all zero =
    uncontrolled alternate routing). *)

open Arnet_paths
open Arnet_sim

type primary_choice =
  | Table  (** the route table's deterministic primary *)
  | Sampled of (src:int -> dst:int -> u:float -> Path.t option)
      (** bifurcated SI policies: pick a primary using the call's
          uniform variate; [None] means the pair is unroutable *)

val primary_for :
  Route_table.t -> primary_choice -> Trace.call -> Path.t option
(** The primary path tier 1 assigns to this call. *)

val compile :
  ?domains:int ->
  name:string ->
  routes:Route_table.t ->
  admission:Admission.t ->
  allow_alternates:bool ->
  unit ->
  Engine.policy
(** The allocation-free form of {!decide} for the table-primary,
    unobserved case — what every scheme in the paper's benchmark
    configuration runs.  Decision material is precomputed once per
    ordered O-D pair: the primary path, its [Routed] outcome, the
    primary-excluded alternates (the route table's prebuilt attempt
    order) and their [Routed] outcomes.  Deciding a call is then plan
    lookup plus per-link occupancy compares; the steady-state per-call
    hot path (admit, departure, blocked-primary probe) allocates no
    minor-heap words.  Decisions are identical to
    [decide ~choice:Table] with no observer.  [domains] (default 1)
    shards the per-source plan rows across OCaml domains during
    compilation — at 1000+ nodes the n² plan build dominates setup —
    and the compiled policy is bit-identical for every domain count. *)

val decide :
  ?observer:(Arnet_obs.Event.t -> unit) ->
  routes:Route_table.t ->
  admission:Admission.t ->
  choice:primary_choice ->
  allow_alternates:bool ->
  occupancy:int array ->
  Trace.call ->
  Engine.outcome
(** The full decision: try the primary under the primary rule; when it
    blocks and [allow_alternates], try each stored alternate (excluding
    the chosen primary) in length order under the alternate rule; first
    fit wins, otherwise the call is lost.

    With an [observer], the decision explains itself as it goes: one
    [Primary_attempt] per routable call, then one [Alternate_rejected]
    per refused alternate carrying the first refusing link, its
    occupancy and the trunk-reservation threshold [C - r] that turned
    the call away.  Without one, the original allocation-free scan
    runs. *)
