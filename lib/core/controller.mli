(** The two-tier routing decision of Section 1.

    Tier 1 (state-independent): a primary path is selected with no
    knowledge of network state — either the route table's unique
    minimum-hop path, or a sample from a bifurcated distribution using
    the call's pre-drawn uniform variate.

    Tier 2 (state-dependent): if the primary path is blocking, alternate
    paths are attempted in order of increasing hop length; an alternate
    completes only if every one of its links admits an alternate-routed
    call under the supplied {!Admission.t} (reserves all zero =
    uncontrolled alternate routing). *)

open Arnet_paths
open Arnet_sim

type primary_choice =
  | Table  (** the route table's deterministic primary *)
  | Sampled of (src:int -> dst:int -> u:float -> Path.t option)
      (** bifurcated SI policies: pick a primary using the call's
          uniform variate; [None] means the pair is unroutable *)

val primary_for :
  Route_table.t -> primary_choice -> Trace.call -> Path.t option
(** The primary path tier 1 assigns to this call. *)

val decide :
  ?observer:(Arnet_obs.Event.t -> unit) ->
  routes:Route_table.t ->
  admission:Admission.t ->
  choice:primary_choice ->
  allow_alternates:bool ->
  occupancy:int array ->
  Trace.call ->
  Engine.outcome
(** The full decision: try the primary under the primary rule; when it
    blocks and [allow_alternates], try each stored alternate (excluding
    the chosen primary) in length order under the alternate rule; first
    fit wins, otherwise the call is lost.

    With an [observer], the decision explains itself as it goes: one
    [Primary_attempt] per routable call, then one [Alternate_rejected]
    per refused alternate carrying the first refusing link, its
    occupancy and the trunk-reservation threshold [C - r] that turned
    the call away.  Without one, the original allocation-free scan
    runs. *)
