open Arnet_paths

type t = { capacities : int array; reserves : int array }

let make ~capacities ~reserves =
  if Array.length capacities <> Array.length reserves then
    invalid_arg "Admission.make: length mismatch";
  Array.iteri
    (fun k r ->
      if r < 0 || r > capacities.(k) then
        invalid_arg "Admission.make: reserve out of range")
    reserves;
  { capacities = Array.copy capacities; reserves = Array.copy reserves }

let unprotected ~capacities =
  make ~capacities ~reserves:(Array.make (Array.length capacities) 0)

let capacities t = Array.copy t.capacities
let reserves t = Array.copy t.reserves

let link_admits_primary t ~occupancy k = occupancy.(k) < t.capacities.(k)

let link_admits_alternate t ~occupancy k =
  occupancy.(k) < t.capacities.(k) - t.reserves.(k)

(* the per-path walks recurse with plain arguments instead of taking a
   predicate closure: partially applying [link_admits_*] would allocate
   a closure on every call, and these two run once per simulated call *)
let rec primary_from caps occ ids i =
  i >= Array.length ids
  || begin
       let k = Array.unsafe_get ids i in
       occ.(k) < caps.(k) && primary_from caps occ ids (i + 1)
     end

let rec alternate_from caps res occ ids i =
  i >= Array.length ids
  || begin
       let k = Array.unsafe_get ids i in
       occ.(k) < caps.(k) - res.(k) && alternate_from caps res occ ids (i + 1)
     end

let path_admits_primary t ~occupancy p =
  primary_from t.capacities occupancy p.Path.link_ids 0

let path_admits_alternate t ~occupancy p =
  alternate_from t.capacities t.reserves occupancy p.Path.link_ids 0

let alternate_refusal t ~occupancy p =
  let ids = p.Path.link_ids in
  let n = Array.length ids in
  let rec go i =
    if i >= n then None
    else begin
      let k = ids.(i) in
      let threshold = t.capacities.(k) - t.reserves.(k) in
      if occupancy.(k) >= threshold then
        Some (k, occupancy.(k), threshold)
      else go (i + 1)
    end
  in
  go 0

let free_circuits t ~occupancy p =
  Array.fold_left
    (fun acc k -> Stdlib.min acc (t.capacities.(k) - occupancy.(k)))
    max_int p.Path.link_ids
