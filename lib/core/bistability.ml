open Arnet_erlang

type fixed_point = {
  direct_blocking : float;
  overflow_blocking : float;
  overflow_rate : float;
  network_blocking : float;
  iterations : int;
}

(* one application of the mean-field map: given the current blocking
   estimates, the implied overflow rate, then the exact birth-death
   solution of a single protected link under (direct, overflow) *)
let link_blocking ~offered ~capacity ~reserve ~overflow_rate =
  let chain =
    Birth_death.protected_link ~primary:offered
      ~overflow:(fun _ -> Float.max overflow_rate 1e-12)
      ~capacity ~reserve
  in
  let pi = Birth_death.stationary chain in
  let direct = pi.(capacity) in
  let overflow = ref 0. in
  for s = capacity - reserve to capacity do
    overflow := !overflow +. pi.(s)
  done;
  (direct, !overflow)

let fixed_point_from ?(tolerance = 1e-10) ?(max_iterations = 10_000)
    ?(attempts = 10) ~offered ~capacity ~reserve start =
  if attempts < 1 then invalid_arg "Bistability.fixed_point_from: attempts < 1";
  if offered <= 0. || not (Float.is_finite offered) then
    invalid_arg "Bistability.fixed_point_from: bad offered load";
  if capacity < 1 then invalid_arg "Bistability.fixed_point_from: capacity < 1";
  if reserve < 0 || reserve >= capacity then
    invalid_arg "Bistability.fixed_point_from: reserve outside [0, capacity)";
  let b_d = ref (match start with `Cold -> 0. | `Hot -> 1.) in
  let b_o = ref !b_d in
  let expected_tries b_o =
    let p = (1. -. b_o) ** 2. in
    if p <= 1e-12 then float_of_int attempts
    else (1. -. ((1. -. p) ** float_of_int attempts)) /. p
  in
  let rec iterate n =
    if n > max_iterations then
      invalid_arg "Bistability.fixed_point_from: no convergence";
    let overflow_rate =
      2. *. offered *. !b_d *. expected_tries !b_o *. (1. -. !b_o)
    in
    let d, o = link_blocking ~offered ~capacity ~reserve ~overflow_rate in
    let delta = Float.max (Float.abs (d -. !b_d)) (Float.abs (o -. !b_o)) in
    (* damping keeps the iteration inside the basin it started in *)
    b_d := (0.5 *. !b_d) +. (0.5 *. d);
    b_o := (0.5 *. !b_o) +. (0.5 *. o);
    if delta > tolerance then iterate (n + 1) else n
  in
  let iterations = iterate 1 in
  let overflow_rate =
    2. *. offered *. !b_d *. expected_tries !b_o *. (1. -. !b_o)
  in
  (* a call is lost iff blocked on its direct link and all its alternate
     tries fail (mean-field independence) *)
  let p = (1. -. !b_o) ** 2. in
  let all_fail = (1. -. p) ** float_of_int attempts in
  { direct_blocking = !b_d;
    overflow_blocking = !b_o;
    overflow_rate;
    network_blocking = !b_d *. all_fail;
    iterations }

let is_bistable ?(gap = 0.01) ?attempts ~offered ~capacity ~reserve () =
  let cold = fixed_point_from ?attempts ~offered ~capacity ~reserve `Cold in
  let hot = fixed_point_from ?attempts ~offered ~capacity ~reserve `Hot in
  Float.abs (hot.network_blocking -. cold.network_blocking) > gap

let hysteresis_scan ?attempts ~offered ~capacity ~reserve () =
  List.map
    (fun load ->
      ( load,
        fixed_point_from ?attempts ~offered:load ~capacity ~reserve `Cold,
        fixed_point_from ?attempts ~offered:load ~capacity ~reserve `Hot ))
    offered

let critical_load ?lo ?hi ?(precision = 0.05) ?attempts ~capacity ~reserve () =
  if precision <= 0. then invalid_arg "Bistability.critical_load: precision";
  let lo = match lo with Some x -> x | None -> 0.5 *. float_of_int capacity in
  let hi = match hi with Some x -> x | None -> 1.2 *. float_of_int capacity in
  if lo >= hi then invalid_arg "Bistability.critical_load: empty range";
  (* bistability holds on a band, not a half-line: walk the range and
     refine around the first bistable grid point *)
  let step = Float.max precision ((hi -. lo) /. 200.) in
  let rec scan a =
    if a > hi then None
    else if is_bistable ?attempts ~offered:a ~capacity ~reserve () then begin
      let left = ref (Float.max lo (a -. step)) and right = ref a in
      while !right -. !left > precision do
        let mid = (!left +. !right) /. 2. in
        if is_bistable ?attempts ~offered:mid ~capacity ~reserve () then
          right := mid
        else left := mid
      done;
      Some !right
    end
    else scan (a +. step)
  in
  scan lo
