type t = { n : int; demand : float array array }

let check_entry x =
  if not (Float.is_finite x) || x < 0. then
    invalid_arg "Matrix.make: demands must be nonnegative and finite";
  x

let make ~nodes f =
  if nodes < 2 then invalid_arg "Matrix.make: need >= 2 nodes";
  let row i =
    Array.init nodes (fun j -> if i = j then 0. else check_entry (f i j))
  in
  { n = nodes; demand = Array.init nodes row }

let uniform ~nodes ~demand = make ~nodes (fun _ _ -> demand)
let zero ~nodes = uniform ~nodes ~demand:0.

let of_array rows =
  let n = Array.length rows in
  if n < 2 then invalid_arg "Matrix.of_array: need >= 2 nodes";
  Array.iter
    (fun r ->
      if Array.length r <> n then invalid_arg "Matrix.of_array: not square")
    rows;
  Array.iteri
    (fun i r ->
      if r.(i) <> 0. then invalid_arg "Matrix.of_array: nonzero diagonal")
    rows;
  make ~nodes:n (fun i j -> rows.(i).(j))

let nodes t = t.n

let get t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg "Matrix.get: index out of range";
  t.demand.(i).(j)

let total t =
  Array.fold_left
    (fun acc row -> Array.fold_left ( +. ) acc row)
    0. t.demand

let scale t factor =
  if not (Float.is_finite factor) || factor < 0. then
    invalid_arg "Matrix.scale: bad factor";
  make ~nodes:t.n (fun i j -> t.demand.(i).(j) *. factor)

let add a b =
  if a.n <> b.n then invalid_arg "Matrix.add: size mismatch";
  make ~nodes:a.n (fun i j -> a.demand.(i).(j) +. b.demand.(i).(j))

let map t f = make ~nodes:t.n (fun i j -> f i j t.demand.(i).(j))

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if i <> j then acc := f !acc i j t.demand.(i).(j)
    done
  done;
  !acc

let iter_demands t f =
  fold t ~init:() ~f:(fun () i j d -> if d > 0. then f i j d)

let demand_count t =
  fold t ~init:0 ~f:(fun acc _ _ d -> if d > 0. then acc + 1 else acc)

let max_abs_diff a b =
  if a.n <> b.n then invalid_arg "Matrix.max_abs_diff: size mismatch";
  fold a ~init:0. ~f:(fun acc i j d -> Float.max acc (Float.abs (d -. b.demand.(i).(j))))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf ppf "@,";
      Array.iteri
        (fun j d ->
          if j > 0 then Format.fprintf ppf " ";
          Format.fprintf ppf "%6.2f" d)
        row)
    t.demand;
  Format.fprintf ppf "@]"
