exception Worker of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Worker { index; exn } ->
      Some
        (Printf.sprintf "Arnet_pool.Worker(index=%d): %s" index
           (Printexc.to_string exn))
    | _ -> None)

let available () = Stdlib.max 1 (Domain.recommended_domain_count ())

let domains_of_string s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n ->
    Error
      (Printf.sprintf
         "domain count must be at least 1 (got %d); valid range is 1 to the \
          machine's core count"
         n)
  | None ->
    Error
      (Printf.sprintf
         "domain count must be an integer >= 1 (got %S); valid range is 1 to \
          the machine's core count"
         (String.trim s))

let of_env ?(var = "ARNET_DOMAINS") () =
  match Sys.getenv_opt var with
  | None -> 1
  | Some s -> ( match domains_of_string s with Ok n -> n | Error _ -> 1)

let map_seq f xs =
  List.mapi
    (fun index x ->
      try f x with exn -> raise (Worker { index; exn }))
    xs

(* Record the failure with the lowest job index: deterministic enough
   for callers that report one culprit, and it biases towards the
   failure a sequential run would have hit first. *)
let rec record_failure failed index exn =
  match Atomic.get failed with
  | Some (i, _) when i <= index -> ()
  | prev ->
    if not (Atomic.compare_and_set failed prev (Some (index, exn))) then
      record_failure failed index exn

let map ?(domains = 1) f xs =
  if domains < 1 then invalid_arg "Pool.map: domains must be >= 1";
  let jobs = Array.of_list xs in
  let n = Array.length jobs in
  let width = Stdlib.min domains n in
  if width <= 1 then map_seq f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        if Option.is_some (Atomic.get failed) then continue := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f jobs.(i) with
            | r -> results.(i) <- Some r
            | exception exn -> record_failure failed i exn
        end
      done
    in
    let spawned = Array.init (width - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is the pool's last worker *)
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failed with
    | Some (index, exn) -> raise (Worker { index; exn })
    | None ->
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false)
           results)
  end
