(** A work pool over OCaml 5 domains for embarrassingly parallel jobs.

    The paper's evaluation replays identical call arrivals under many
    seeds and policies; those runs share no state, so they shard
    perfectly across cores.  {!map} is the only primitive the simulator
    needs: a deterministic, order-preserving parallel [List.map] with
    fail-fast error propagation.

    Jobs are pulled from a shared counter, so long and short jobs
    balance automatically; results are written into per-index slots, so
    the output order never depends on scheduling. *)

exception Worker of { index : int; exn : exn }
(** A job failed.  [index] is the position of the failing job in the
    input list (0-based) and [exn] the exception it raised.  When
    several jobs fail, the lowest recorded index wins.  A registered
    printer renders the payload. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed by up to [domains]
    domains (clamped to the number of jobs).  Results are returned in
    input order regardless of which domain ran which job.

    [domains = 1] (the default) runs everything on the calling domain —
    no domain is spawned.  With [domains > 1], [f] must be safe to call
    concurrently from several domains: it must not write shared mutable
    state without synchronization.

    A raising job cancels the pool: queued jobs are skipped (jobs
    already started run to completion) and the first failure re-raises
    on the caller as {!Worker}.  This holds for every domain count, so
    callers see one error surface.

    @raise Invalid_argument when [domains < 1].
    @raise Worker when a job raises. *)

val available : unit -> int
(** The runtime's recommendation for how many domains this machine runs
    well ([Domain.recommended_domain_count ()]); at least 1. *)

val domains_of_string : string -> (int, string) result
(** Parse a user-supplied domain count: [Ok n] for an integer [>= 1],
    otherwise a one-line error naming the valid range — the shared
    validation behind the [--domains] flag and {!of_env}. *)

val of_env : ?var:string -> unit -> int
(** Domain count requested through the environment: parses [var]
    (default [ARNET_DOMAINS]) as a positive integer.  Unset, empty,
    non-numeric or non-positive values mean 1 — the sequential path is
    always the default. *)
