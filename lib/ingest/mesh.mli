(** ISP-scale synthetic topologies for the compile benchmarks.

    Real backbone meshes are sparse, geographic and degree-bounded;
    {!random_mesh} reproduces that shape deterministically: nodes are
    scattered uniformly on the unit square, a spanning tree connects
    each node to its nearest already-placed neighbour with spare degree,
    and remaining degree budget is spent on nearest-neighbour chords.
    Every edge is a pair of opposite links, so the result is symmetric
    and strongly connected, and no node's undirected degree exceeds the
    bound. *)

val random_mesh :
  ?seed:int -> ?capacity:int -> ?degree:int -> nodes:int -> unit -> Topo.t
(** [random_mesh ~nodes ()] builds a mesh over [nodes >= 2] nodes named
    [n0 .. n<n-1>], every link of the given [capacity] (default 100),
    undirected degree at most [degree] (default 4, minimum 2).  The
    result is a pure function of [(seed, capacity, degree, nodes)];
    [seed] defaults to 0.  Coordinates are populated, so the regional
    failure model and the coordinate lint checks apply.
    @raise Invalid_argument on a bad parameter. *)

val gravity : ?total:float -> Topo.t -> Arnet_traffic.Matrix.t
(** Degree-weighted gravity traffic for a topology
    ({!Arnet_traffic.Gravity.degree_weighted}); [total] (default
    [5 * nodes]) is the summed offered load in Erlangs. *)
