(** An imported topology: a {!Arnet_topology.Graph.t} plus the metadata
    real topology files carry that the core graph type does not — a
    network name, optional per-node geographic coordinates, and counters
    describing what the importer had to clean up (parallel edges merged,
    self-loop edges dropped) so that [arn lint] can report on the raw
    file rather than on the already-sanitised graph. *)

open Arnet_topology

type t = private {
  name : string;  (** network name from the source file *)
  graph : Graph.t;
  coords : (float * float) option array;
      (** per node, [(longitude, latitude)] (or any planar [(x, y)]);
          length is always [Graph.node_count graph] *)
  merged_parallel : int;
      (** parallel edges the importer merged into one link (capacities
          summed) — [0] for generated or exported topologies *)
  dropped_self_loops : int;
      (** self-loop edges the importer discarded *)
}

val make :
  ?name:string ->
  ?coords:(float * float) option array ->
  ?merged_parallel:int ->
  ?dropped_self_loops:int ->
  Graph.t ->
  t
(** [make g] wraps a graph.  [name] defaults to ["topology"]; [coords]
    defaults to all-[None] and must otherwise have one slot per node and
    contain only finite floats.
    @raise Invalid_argument on length or finiteness violations. *)

val of_graph : ?name:string -> Graph.t -> t
(** [make] with no coordinates and zero counters. *)

val equal : t -> t -> bool
(** Structural equality: name, node labels, links (ids, endpoints,
    capacities) and coordinates.  The cleanup counters are metadata
    about an import, not about the topology, and are ignored — this is
    the equality the codec round-trip laws are stated in. *)

val normalized_coords : t -> (float * float) array option
(** Coordinates min-max scaled into the unit square, for the regional
    failure model's planar node positions.  [None] unless every node has
    coordinates; a degenerate axis (all nodes at one longitude or
    latitude) maps to [0.5]. *)

(** {1 Stats} *)

type summary = {
  nodes : int;
  links : int;
  total_capacity : int;
  min_capacity : int;  (** 0 when there are no links *)
  max_capacity : int;
  degree_min : int;  (** out-degree extremes over nodes *)
  degree_max : int;
  degree_mean : float;
  symmetric : bool;
  strongly_connected : bool;
  with_coords : int;  (** nodes carrying coordinates *)
}

val summarize : t -> summary
val pp_summary : name:string -> Format.formatter -> summary -> unit
(** The [arn topo stats] rendering: one [key value] line per field. *)
