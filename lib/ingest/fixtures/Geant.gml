# A GEANT-shaped European core (12 PoPs, 17 trunks) in the
# Topology-Zoo GML dialect.  Deliberately messier than Abilene to
# exercise the importer: capacities arrive as "bandwidth" or
# "LinkSpeed" (or are missing and take the default), and the
# London--Paris trunk appears twice — the importer merges the parallel
# edge (summing capacities) and the lint layer reports it.
graph [
  directed 0
  label "Geant"
  Network "Geant"
  node [
    id 1
    label "London"
    Longitude -0.13
    Latitude 51.51
  ]
  node [
    id 2
    label "Paris"
    Longitude 2.35
    Latitude 48.86
  ]
  node [
    id 3
    label "Amsterdam"
    Longitude 4.90
    Latitude 52.37
  ]
  node [
    id 4
    label "Brussels"
    Longitude 4.35
    Latitude 50.85
  ]
  node [
    id 5
    label "Frankfurt"
    Longitude 8.68
    Latitude 50.11
  ]
  node [
    id 6
    label "Geneva"
    Longitude 6.14
    Latitude 46.20
  ]
  node [
    id 7
    label "Milan"
    Longitude 9.19
    Latitude 45.46
  ]
  node [
    id 8
    label "Vienna"
    Longitude 16.37
    Latitude 48.21
  ]
  node [
    id 9
    label "Prague"
    Longitude 14.42
    Latitude 50.09
  ]
  node [
    id 10
    label "Budapest"
    Longitude 19.04
    Latitude 47.50
  ]
  node [
    id 11
    label "Madrid"
    Longitude -3.70
    Latitude 40.42
  ]
  node [
    id 12
    label "Copenhagen"
    Longitude 12.57
    Latitude 55.68
  ]
  edge [
    source 1
    target 2
    bandwidth 60
  ]
  edge [
    source 1
    target 2
    bandwidth 60
  ]
  edge [
    source 1
    target 3
    bandwidth 120
  ]
  edge [
    source 2
    target 4
    LinkSpeed 80
  ]
  edge [
    source 4
    target 3
    LinkSpeed 80
  ]
  edge [
    source 3
    target 5
    bandwidth 120
  ]
  edge [
    source 3
    target 12
    bandwidth 80
  ]
  edge [
    source 5
    target 12
    bandwidth 80
  ]
  edge [
    source 5
    target 9
    bandwidth 80
  ]
  edge [
    source 5
    target 6
    bandwidth 120
  ]
  edge [
    source 2
    target 6
    bandwidth 120
  ]
  edge [
    source 6
    target 7
    bandwidth 80
  ]
  edge [
    source 7
    target 8
    bandwidth 80
  ]
  edge [
    source 8
    target 9
    bandwidth 80
  ]
  edge [
    source 8
    target 10
    bandwidth 60
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 2
    target 11
    bandwidth 60
  ]
  edge [
    source 11
    target 6
    bandwidth 60
  ]
]
