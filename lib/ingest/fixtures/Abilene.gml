# Abilene, the Internet2 backbone (11 PoPs, 14 trunks), in the
# Topology-Zoo GML dialect.  Capacities are in calls, matching the
# repo-wide convention (Section 2 of the paper): one OC-192 trunk is
# modelled as 100 circuits.
graph [
  directed 0
  label "Abilene"
  Network "Abilene"
  Creator "hand-transcribed fixture"
  node [
    id 0
    label "Seattle"
    Longitude -122.33
    Latitude 47.61
  ]
  node [
    id 1
    label "Sunnyvale"
    Longitude -122.04
    Latitude 37.37
  ]
  node [
    id 2
    label "Los Angeles"
    Longitude -118.24
    Latitude 34.05
  ]
  node [
    id 3
    label "Denver"
    Longitude -104.98
    Latitude 39.74
  ]
  node [
    id 4
    label "Kansas City"
    Longitude -94.58
    Latitude 39.10
  ]
  node [
    id 5
    label "Houston"
    Longitude -95.37
    Latitude 29.76
  ]
  node [
    id 6
    label "Chicago"
    Longitude -87.63
    Latitude 41.88
  ]
  node [
    id 7
    label "Indianapolis"
    Longitude -86.16
    Latitude 39.77
  ]
  node [
    id 8
    label "Atlanta"
    Longitude -84.39
    Latitude 33.75
  ]
  node [
    id 9
    label "Washington DC"
    Longitude -77.04
    Latitude 38.91
  ]
  node [
    id 10
    label "New York"
    Longitude -74.01
    Latitude 40.71
  ]
  edge [
    source 0
    target 1
    capacity 100
  ]
  edge [
    source 0
    target 3
    capacity 100
  ]
  edge [
    source 1
    target 2
    capacity 100
  ]
  edge [
    source 1
    target 3
    capacity 100
  ]
  edge [
    source 2
    target 5
    capacity 100
  ]
  edge [
    source 3
    target 4
    capacity 100
  ]
  edge [
    source 4
    target 5
    capacity 100
  ]
  edge [
    source 4
    target 7
    capacity 100
  ]
  edge [
    source 5
    target 8
    capacity 100
  ]
  edge [
    source 6
    target 7
    capacity 100
  ]
  edge [
    source 6
    target 10
    capacity 100
  ]
  edge [
    source 7
    target 8
    capacity 100
  ]
  edge [
    source 8
    target 9
    capacity 100
  ]
  edge [
    source 9
    target 10
    capacity 100
  ]
]
