open Arnet_topology

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "GML:%d: %s" line s))) fmt

let default_capacity = 100

(* ------------------------------------------------------------------ *)
(* lexing *)

type tok = Lb | Rb | Atom of string | Quoted of string

let is_atom_char c =
  match c with
  | ' ' | '\t' | '\r' | '\n' | '[' | ']' | '"' | '#' -> false
  | _ -> true

let tokenize s =
  let n = String.length s in
  let toks = ref [] and line = ref 1 and i = ref 0 in
  let push t = toks := (!line, t) :: !toks in
  while !i < n do
    (match s.[!i] with
    | '\n' -> incr line; incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' -> while !i < n && s.[!i] <> '\n' do incr i done
    | '[' -> push Lb; incr i
    | ']' -> push Rb; incr i
    | '"' ->
      let l0 = !line in
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do
        if s.[!i] = '\n' then incr line;
        incr i
      done;
      if !i >= n then fail l0 "unterminated string";
      push (Quoted (String.sub s start (!i - start)));
      incr i
    | _ ->
      let start = !i in
      while !i < n && is_atom_char s.[!i] do incr i done;
      push (Atom (String.sub s start (!i - start))))
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* parsing to a generic key/value document *)

type value = Num of float | Str of string | Fields of (string * value) list

let rec parse_value toks =
  match toks with
  | [] -> fail 0 "unexpected end of input"
  | (line, tok) :: rest -> (
    match tok with
    | Quoted s -> (Str s, rest)
    | Atom a -> (
      match float_of_string_opt a with
      | Some f -> (Num f, rest)
      | None -> (Str a, rest))
    | Lb ->
      let fields, rest = parse_fields rest in
      (Fields fields, rest)
    | Rb -> fail line "unexpected ']'")

and parse_fields toks =
  match toks with
  | [] -> fail 0 "unterminated '['"
  | (_, Rb) :: rest -> ([], rest)
  | (_, Atom key) :: rest ->
    let v, rest = parse_value rest in
    let fields, rest = parse_fields rest in
    ((key, v) :: fields, rest)
  | (line, _) :: _ -> fail line "expected a key"

let rec parse_top toks acc =
  match toks with
  | [] -> List.rev acc
  | (_, Atom key) :: rest ->
    let v, rest = parse_value rest in
    parse_top rest ((key, v) :: acc)
  | (line, _) :: _ -> fail line "expected a top-level key"

let find_opt key fields = List.assoc_opt key fields
let find_all key fields =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) fields

let num_opt key fields =
  match find_opt key fields with
  | Some (Num f) -> Some f
  | Some (Str s) -> float_of_string_opt s
  | _ -> None

let str_opt key fields =
  match find_opt key fields with
  | Some (Str s) -> Some s
  | Some (Num f) ->
    (* integer-valued labels print without the ".": [label 3] is "3" *)
    Some
      (if Float.is_integer f then string_of_int (int_of_float f)
       else string_of_float f)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* semantics *)

let capacity_of_fields fields =
  let keys = [ "capacity"; "bandwidth"; "LinkSpeed" ] in
  match List.find_map (fun k -> num_opt k fields) keys with
  | None -> default_capacity
  | Some f ->
    if not (Float.is_finite f) || f < 0. then
      fail 0 "negative or non-finite edge capacity"
    else int_of_float (Float.round f)

let coords_of_fields fields =
  match (num_opt "Longitude" fields, num_opt "Latitude" fields) with
  | Some lon, Some lat -> Some (lon, lat)
  | _ -> (
    match find_opt "graphics" fields with
    | Some (Fields gfx) -> (
      match (num_opt "x" gfx, num_opt "y" gfx) with
      | Some x, Some y -> Some (x, y)
      | _ -> None)
    | _ -> None)

let parse text =
  let doc = parse_top (tokenize text) [] in
  let graph_fields =
    match find_opt "graph" doc with
    | Some (Fields f) -> f
    | _ -> fail 0 "no graph [ ... ] block"
  in
  let directed =
    match num_opt "directed" graph_fields with Some 1. -> true | _ -> false
  in
  let name =
    match str_opt "label" graph_fields with
    | Some s when s <> "" -> s
    | _ -> (
      match str_opt "Network" graph_fields with
      | Some s when s <> "" -> s
      | _ -> "gml")
  in
  (* nodes: dense renumbering in order of appearance *)
  let ids = Hashtbl.create 64 in
  let labels = ref [] and coords = ref [] and count = ref 0 in
  List.iter
    (fun v ->
      match v with
      | Fields fields ->
        let id =
          match num_opt "id" fields with
          | Some f when Float.is_integer f -> int_of_float f
          | _ -> fail 0 "node without an integer id"
        in
        if Hashtbl.mem ids id then fail 0 "duplicate node id %d" id;
        Hashtbl.add ids id !count;
        incr count;
        let label =
          match str_opt "label" fields with
          | Some s -> s
          | None -> Printf.sprintf "n%d" id
        in
        labels := label :: !labels;
        coords := coords_of_fields fields :: !coords
      | _ -> fail 0 "malformed node block")
    (find_all "node" graph_fields);
  let n = !count in
  let labels = Array.of_list (List.rev !labels) in
  let coords = Array.of_list (List.rev !coords) in
  (* edges: dedupe on (ordered or unordered) endpoint pair, keeping first
     appearance order; sum capacities of merged parallels *)
  let order = ref [] and caps = Hashtbl.create 64 in
  let merged = ref 0 and self_loops = ref 0 in
  let node_of id =
    match Hashtbl.find_opt ids id with
    | Some v -> v
    | None -> fail 0 "edge endpoint %d is not a declared node" id
  in
  List.iter
    (fun v ->
      match v with
      | Fields fields ->
        let endpoint key =
          match num_opt key fields with
          | Some f when Float.is_integer f -> node_of (int_of_float f)
          | _ -> fail 0 "edge without integer %s" key
        in
        let src = endpoint "source" and dst = endpoint "target" in
        let cap = capacity_of_fields fields in
        if src = dst then incr self_loops
        else begin
          let key =
            if directed then (src, dst) else (min src dst, max src dst)
          in
          match Hashtbl.find_opt caps key with
          | Some r ->
            r := !r + cap;
            incr merged
          | None ->
            Hashtbl.add caps key (ref cap);
            order := (src, dst) :: !order
        end
      | _ -> fail 0 "malformed edge block")
    (find_all "edge" graph_fields);
  let edges = List.rev !order in
  let cap_of src dst =
    let key = if directed then (src, dst) else (min src dst, max src dst) in
    !(Hashtbl.find caps key)
  in
  let links =
    if directed then
      List.mapi
        (fun i (src, dst) ->
          [ Link.make ~id:i ~src ~dst ~capacity:(cap_of src dst) ])
        edges
      |> List.concat
    else
      List.mapi
        (fun i (src, dst) ->
          let capacity = cap_of src dst in
          [ Link.make ~id:(2 * i) ~src ~dst ~capacity;
            Link.make ~id:((2 * i) + 1) ~src:dst ~dst:src ~capacity ])
        edges
      |> List.concat
  in
  let graph = Graph.create ~labels ~nodes:n links in
  Topo.make ~name ~coords ~merged_parallel:!merged
    ~dropped_self_loops:!self_loops graph

(* ------------------------------------------------------------------ *)
(* printing *)

let check_printable what s =
  if String.contains s '"' then
    invalid_arg (Printf.sprintf "Gml.to_gml: %s contains a '\"': %s" what s)

let float_str f = Printf.sprintf "%.17g" f

let to_gml (t : Topo.t) =
  check_printable "name" t.Topo.name;
  let g = t.Topo.graph in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "graph [\n";
  add "  directed 1\n";
  add "  label \"%s\"\n" t.Topo.name;
  for v = 0 to Graph.node_count g - 1 do
    let label = Graph.label g v in
    check_printable "node label" label;
    add "  node [\n";
    add "    id %d\n" v;
    add "    label \"%s\"\n" label;
    (match t.Topo.coords.(v) with
    | None -> ()
    | Some (lon, lat) ->
      add "    Longitude %s\n" (float_str lon);
      add "    Latitude %s\n" (float_str lat));
    add "  ]\n"
  done;
  Array.iter
    (fun (l : Link.t) ->
      add "  edge [\n";
      add "    source %d\n" l.Link.src;
      add "    target %d\n" l.Link.dst;
      add "    capacity %d\n" l.Link.capacity;
      add "  ]\n")
    (Graph.links g);
  add "]\n";
  Buffer.contents buf

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
