(** Topology-Zoo-style GML reader and writer.

    The dialect is the subset the Topology Zoo dataset uses: a top-level
    [graph [ ... ]] block holding [node [ id label Longitude Latitude ]]
    and [edge [ source target ... ]] sub-blocks, with [#] comments and
    quoted strings.  Everything else is tolerated and ignored.

    Semantics applied on import:
    - node ids may be arbitrary integers; they are renumbered densely in
      order of first appearance;
    - node display labels come from [label] (default ["n<id>"]);
    - coordinates come from [Longitude]/[Latitude], falling back to
      [graphics [ x y ]];
    - edge capacity comes from the first of [capacity], [bandwidth],
      [LinkSpeed] that parses as a number, rounded to the nearest
      integer; edges with none default to capacity {!default_capacity};
    - unless the file says [directed 1], each edge becomes a pair of
      opposite unidirectional links (edge [i] gets ids [2i], [2i+1]),
      matching {!Arnet_topology.Graph.of_edges};
    - parallel edges (same endpoints; same unordered pair when
      undirected) are merged into one link with summed capacity, and
      self-loop edges are dropped — both counted in the result's
      {!Topo.t.merged_parallel} and {!Topo.t.dropped_self_loops}. *)

exception Error of string
(** Malformed input; the message carries a line number. *)

val default_capacity : int
(** Capacity (calls) given to edges with no recognised bandwidth
    attribute: 100, the paper's fully-connected-network link size. *)

val parse : string -> Topo.t
(** @raise Error on malformed input. *)

val to_gml : Topo.t -> string
(** Canonical emission: a [directed 1] graph with one [edge] block per
    link in id order, so [parse (to_gml t)] equals [t] up to the cleanup
    counters ({!Topo.equal}) for every topology.
    @raise Invalid_argument if the name or a node label contains ['"']. *)

val load : string -> Topo.t
(** [load path] reads and parses a file.
    @raise Error on malformed content, [Sys_error] on IO failure. *)
