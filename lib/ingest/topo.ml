open Arnet_topology

type t = {
  name : string;
  graph : Graph.t;
  coords : (float * float) option array;
  merged_parallel : int;
  dropped_self_loops : int;
}

let make ?(name = "topology") ?coords ?(merged_parallel = 0)
    ?(dropped_self_loops = 0) graph =
  let n = Graph.node_count graph in
  let coords =
    match coords with None -> Array.make n None | Some c -> c
  in
  if Array.length coords <> n then
    invalid_arg "Topo.make: coords length <> node count";
  Array.iter
    (function
      | None -> ()
      | Some (x, y) ->
        if not (Float.is_finite x && Float.is_finite y) then
          invalid_arg "Topo.make: non-finite coordinate")
    coords;
  if merged_parallel < 0 || dropped_self_loops < 0 then
    invalid_arg "Topo.make: negative cleanup counter";
  { name; graph; coords; merged_parallel; dropped_self_loops }

let of_graph ?name graph = make ?name graph

let equal a b =
  let ga = a.graph and gb = b.graph in
  a.name = b.name
  && Graph.node_count ga = Graph.node_count gb
  && Graph.link_count ga = Graph.link_count gb
  && Array.for_all2 Link.equal (Graph.links ga) (Graph.links gb)
  && (let n = Graph.node_count ga in
      let ok = ref true in
      for v = 0 to n - 1 do
        if Graph.label ga v <> Graph.label gb v then ok := false
      done;
      !ok)
  && a.coords = b.coords

let normalized_coords t =
  let n = Graph.node_count t.graph in
  if n = 0 || Array.exists (fun c -> c = None) t.coords then None
  else begin
    let xs = Array.map (function Some (x, _) -> x | None -> 0.) t.coords in
    let ys = Array.map (function Some (_, y) -> y | None -> 0.) t.coords in
    let lo a = Array.fold_left Float.min a.(0) a in
    let hi a = Array.fold_left Float.max a.(0) a in
    let scale lo hi v = if hi > lo then (v -. lo) /. (hi -. lo) else 0.5 in
    let x0 = lo xs and x1 = hi xs and y0 = lo ys and y1 = hi ys in
    Some
      (Array.init n (fun v -> (scale x0 x1 xs.(v), scale y0 y1 ys.(v))))
  end

type summary = {
  nodes : int;
  links : int;
  total_capacity : int;
  min_capacity : int;
  max_capacity : int;
  degree_min : int;
  degree_max : int;
  degree_mean : float;
  symmetric : bool;
  strongly_connected : bool;
  with_coords : int;
}

let summarize t =
  let g = t.graph in
  let n = Graph.node_count g and m = Graph.link_count g in
  let caps = Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g) in
  let degs = Array.init n (Graph.degree_out g) in
  let fold f init a = Array.fold_left f init a in
  { nodes = n;
    links = m;
    total_capacity = Graph.total_capacity g;
    min_capacity = (if m = 0 then 0 else fold min max_int caps);
    max_capacity = (if m = 0 then 0 else fold max 0 caps);
    degree_min = (if n = 0 then 0 else fold min max_int degs);
    degree_max = (if n = 0 then 0 else fold max 0 degs);
    degree_mean = (if n = 0 then 0. else float_of_int m /. float_of_int n);
    symmetric = Graph.is_symmetric g;
    strongly_connected = (n > 0 && Graph.is_strongly_connected g);
    with_coords =
      Array.fold_left
        (fun acc c -> if c = None then acc else acc + 1)
        0 t.coords }

let pp_summary ~name ppf s =
  Format.fprintf ppf "@[<v>name                %s@," name;
  Format.fprintf ppf "nodes               %d@," s.nodes;
  Format.fprintf ppf "links               %d@," s.links;
  Format.fprintf ppf "total-capacity      %d@," s.total_capacity;
  Format.fprintf ppf "capacity-range      %d..%d@," s.min_capacity
    s.max_capacity;
  Format.fprintf ppf "out-degree          %d..%d (mean %.2f)@," s.degree_min
    s.degree_max s.degree_mean;
  Format.fprintf ppf "symmetric           %b@," s.symmetric;
  Format.fprintf ppf "strongly-connected  %b@," s.strongly_connected;
  Format.fprintf ppf "with-coordinates    %d/%d@]" s.with_coords s.nodes
