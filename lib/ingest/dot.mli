(** GraphViz dot reader and writer (no GraphViz dependency).

    The subset read is what network topologies need: an optionally
    [strict] [digraph]/[graph] with node statements, edge statements
    (chains allowed), attribute lists, quoted identifiers, and
    [//], [/* *\)] and [#] comments.  Subgraphs and ports are not
    supported.

    Semantics applied on import:
    - node names are renumbered densely in order of first appearance
      (node statements first, then edge endpoints);
    - a node's display label is its [label] attribute, defaulting to its
      dot name; coordinates come from [lon]/[lat] attributes;
    - an [a -> b] edge is one directed link; [a -- b] and
      [a -> b [dir=both]] produce both directions (this reads
      {!Arnet_topology.Graph.to_dot} output back);
    - edge capacity comes from [capacity], falling back to a numeric
      [label] (the {!Arnet_topology.Graph.to_dot} convention), else
      {!Gml.default_capacity};
    - repeated ordered endpoint pairs merge into one link with summed
      capacity, and self-loops are dropped, counted in
      {!Topo.t.merged_parallel} / {!Topo.t.dropped_self_loops};
    - [node]/[edge]/[graph] default-attribute statements and top-level
      [key=value] assignments are ignored. *)

exception Error of string
(** Malformed input; the message carries a line number. *)

val parse : string -> Topo.t
(** @raise Error on malformed input. *)

val to_dot : Topo.t -> string
(** Canonical emission: a [digraph] with nodes [n0 .. n<n-1>] carrying
    [label] (and [lon]/[lat] when present) and one [a -> b [capacity=c]]
    edge per link in id order, so [parse (to_dot t)] equals [t] up to
    the cleanup counters ({!Topo.equal}) for every topology.
    @raise Invalid_argument if the name or a node label contains ['"']. *)

val load : string -> Topo.t
(** [load path] reads and parses a file.
    @raise Error on malformed content, [Sys_error] on IO failure. *)
