open Arnet_topology

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "dot:%d: %s" line s))) fmt

(* ------------------------------------------------------------------ *)
(* lexing *)

type tok =
  | Lbrace
  | Rbrace
  | Lbrack
  | Rbrack
  | Semi
  | Comma
  | Eq
  | Arrow  (* -> *)
  | Undir  (* -- *)
  | Id of string

let is_id_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '+' -> true
  | _ -> false

let tokenize s =
  let n = String.length s in
  let toks = ref [] and line = ref 1 and i = ref 0 in
  let push t = toks := (!line, t) :: !toks in
  while !i < n do
    (match s.[!i] with
    | '\n' -> incr line; incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' -> while !i < n && s.[!i] <> '\n' do incr i done
    | '/' when !i + 1 < n && s.[!i + 1] = '/' ->
      while !i < n && s.[!i] <> '\n' do incr i done
    | '/' when !i + 1 < n && s.[!i + 1] = '*' ->
      let l0 = !line in
      i := !i + 2;
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then fail l0 "unterminated /* comment"
        else if s.[!i] = '*' && s.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else begin
          if s.[!i] = '\n' then incr line;
          incr i
        end
      done
    | '{' -> push Lbrace; incr i
    | '}' -> push Rbrace; incr i
    | '[' -> push Lbrack; incr i
    | ']' -> push Rbrack; incr i
    | ';' -> push Semi; incr i
    | ',' -> push Comma; incr i
    | '=' -> push Eq; incr i
    | '-' when !i + 1 < n && s.[!i + 1] = '>' -> push Arrow; i := !i + 2
    | '-' when !i + 1 < n && s.[!i + 1] = '-' -> push Undir; i := !i + 2
    | '-' ->
      (* a negative number: lex like an identifier *)
      let start = !i in
      incr i;
      while !i < n && is_id_char s.[!i] do incr i done;
      push (Id (String.sub s start (!i - start)))
    | '"' ->
      let l0 = !line in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then fail l0 "unterminated string"
        else
          match s.[!i] with
          | '"' -> closed := true; incr i
          | '\\' when !i + 1 < n ->
            Buffer.add_char buf s.[!i + 1];
            i := !i + 2
          | c ->
            if c = '\n' then incr line;
            Buffer.add_char buf c;
            incr i
      done;
      push (Id (Buffer.contents buf))
    | c when is_id_char c ->
      let start = !i in
      while !i < n && is_id_char s.[!i] do incr i done;
      push (Id (String.sub s start (!i - start)))
    | c -> fail !line "unexpected character %C" c)
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* parsing *)

type attr = string * string

let rec parse_attr_items toks acc : attr list * (int * tok) list =
  match toks with
  | (_, Rbrack) :: rest -> (List.rev acc, rest)
  | (_, Comma) :: rest | (_, Semi) :: rest -> parse_attr_items rest acc
  | (line, Id key) :: rest -> (
    match rest with
    | (_, Eq) :: (_, Id v) :: rest -> parse_attr_items rest ((key, v) :: acc)
    | _ -> fail line "expected %s=value in attribute list" key)
  | (line, _) :: _ -> fail line "malformed attribute list"
  | [] -> fail 0 "unterminated attribute list"

let parse_attrs toks =
  match toks with
  | (_, Lbrack) :: rest -> parse_attr_items rest []
  | _ -> ([], toks)

type builder = {
  names : (string, int) Hashtbl.t;
  mutable rev_labels : string list;
  mutable rev_coords : (float * float) option list;
  mutable node_count : int;
  arcs : (int * int, int ref) Hashtbl.t;
  mutable rev_arc_order : (int * int) list;
  mutable merged : int;
  mutable self_loops : int;
}

let new_builder () =
  { names = Hashtbl.create 64;
    rev_labels = [];
    rev_coords = [];
    node_count = 0;
    arcs = Hashtbl.create 64;
    rev_arc_order = [];
    merged = 0;
    self_loops = 0 }

let node_of b name =
  match Hashtbl.find_opt b.names name with
  | Some v -> v
  | None ->
    let v = b.node_count in
    Hashtbl.add b.names name v;
    b.node_count <- v + 1;
    b.rev_labels <- name :: b.rev_labels;
    b.rev_coords <- None :: b.rev_coords;
    v

let set_node_attrs b line v attrs =
  let lookup k = List.assoc_opt k attrs in
  (match lookup "label" with
  | None -> ()
  | Some label ->
    let labels = Array.of_list (List.rev b.rev_labels) in
    labels.(v) <- label;
    b.rev_labels <- List.rev (Array.to_list labels));
  match (lookup "lon", lookup "lat") with
  | None, None -> ()
  | Some lon, Some lat -> (
    match (float_of_string_opt lon, float_of_string_opt lat) with
    | Some x, Some y ->
      let coords = Array.of_list (List.rev b.rev_coords) in
      coords.(v) <- Some (x, y);
      b.rev_coords <- List.rev (Array.to_list coords)
    | _ -> fail line "bad lon/lat")
  | _ -> fail line "need both lon and lat"

let capacity_of_attrs line attrs =
  let numeric k =
    match List.assoc_opt k attrs with
    | None -> None
    | Some v -> (
      match float_of_string_opt v with
      | Some f when Float.is_finite f && f >= 0. ->
        Some (int_of_float (Float.round f))
      | Some _ -> fail line "negative or non-finite capacity"
      | None -> None)
  in
  match numeric "capacity" with
  | Some c -> Some c
  | None -> numeric "label"

let add_arc b src dst cap =
  if src = dst then b.self_loops <- b.self_loops + 1
  else
    match Hashtbl.find_opt b.arcs (src, dst) with
    | Some r ->
      r := !r + cap;
      b.merged <- b.merged + 1
    | None ->
      Hashtbl.add b.arcs (src, dst) (ref cap);
      b.rev_arc_order <- (src, dst) :: b.rev_arc_order

let default_stmt_keywords = [ "node"; "edge"; "graph" ]

let parse text =
  let toks = tokenize text in
  let toks =
    match toks with (_, Id "strict") :: rest -> rest | _ -> toks
  in
  let default_undirected, toks =
    match toks with
    | (_, Id "digraph") :: rest -> (false, rest)
    | (_, Id "graph") :: rest -> (true, rest)
    | (line, _) :: _ -> fail line "expected 'digraph' or 'graph'"
    | [] -> fail 0 "empty input"
  in
  let name, toks =
    match toks with
    | (_, Id name) :: rest -> (name, rest)
    | _ -> ("dot", toks)
  in
  let toks =
    match toks with
    | (_, Lbrace) :: rest -> rest
    | (line, _) :: _ -> fail line "expected '{'"
    | [] -> fail 0 "expected '{'"
  in
  let b = new_builder () in
  let rec stmts toks =
    match toks with
    | (_, Rbrace) :: rest -> rest
    | (_, Semi) :: rest -> stmts rest
    | (_, Id kw) :: (_, Lbrack) :: rest
      when List.mem kw default_stmt_keywords ->
      (* default-attribute statement: parse and discard *)
      let _, rest = parse_attr_items rest [] in
      stmts rest
    | (_, Id _) :: (_, Eq) :: (_, Id _) :: rest ->
      (* top-level graph attribute, e.g. rankdir=LR: ignored *)
      stmts rest
    | (line, Id first) :: rest ->
      (* node statement or edge chain *)
      let rec chain acc toks =
        match toks with
        | (_, Arrow) :: (_, Id next) :: rest ->
          chain ((next, false) :: acc) rest
        | (_, Undir) :: (_, Id next) :: rest ->
          chain ((next, true) :: acc) rest
        | _ -> (List.rev acc, toks)
      in
      let hops, rest = chain [] rest in
      let attrs, rest = parse_attrs rest in
      if hops = [] then begin
        let v = node_of b first in
        set_node_attrs b line v attrs
      end
      else begin
        let cap =
          match capacity_of_attrs line attrs with
          | Some c -> c
          | None -> Gml.default_capacity
        in
        let both_dirs = List.assoc_opt "dir" attrs = Some "both" in
        let src = ref (node_of b first) in
        List.iter
          (fun (next, undirected_op) ->
            let dst = node_of b next in
            let undirected =
              undirected_op || default_undirected || both_dirs
            in
            add_arc b !src dst cap;
            if undirected then add_arc b dst !src cap;
            src := dst)
          hops
      end;
      stmts rest
    | (line, _) :: _ -> fail line "malformed statement"
    | [] -> fail 0 "missing '}'"
  in
  let rest = stmts toks in
  (match rest with
  | [] -> ()
  | (line, _) :: _ -> fail line "trailing tokens after '}'");
  let labels = Array.of_list (List.rev b.rev_labels) in
  let coords = Array.of_list (List.rev b.rev_coords) in
  let links =
    List.mapi
      (fun i (src, dst) ->
        Link.make ~id:i ~src ~dst ~capacity:!(Hashtbl.find b.arcs (src, dst)))
      (List.rev b.rev_arc_order)
  in
  let graph = Graph.create ~labels ~nodes:b.node_count links in
  Topo.make ~name ~coords ~merged_parallel:b.merged
    ~dropped_self_loops:b.self_loops graph

(* ------------------------------------------------------------------ *)
(* printing *)

let check_printable what s =
  if String.contains s '"' || String.contains s '\\' then
    invalid_arg (Printf.sprintf "Dot.to_dot: %s contains '\"' or '\\': %s" what s)

let float_str f = Printf.sprintf "%.17g" f

let to_dot (t : Topo.t) =
  check_printable "name" t.Topo.name;
  let g = t.Topo.graph in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph \"%s\" {\n" t.Topo.name;
  for v = 0 to Graph.node_count g - 1 do
    let label = Graph.label g v in
    check_printable "node label" label;
    (match t.Topo.coords.(v) with
    | None -> add "  n%d [label=\"%s\"];\n" v label
    | Some (lon, lat) ->
      add "  n%d [label=\"%s\", lon=\"%s\", lat=\"%s\"];\n" v label
        (float_str lon) (float_str lat))
  done;
  Array.iter
    (fun (l : Link.t) ->
      add "  n%d -> n%d [capacity=%d];\n" l.Link.src l.Link.dst
        l.Link.capacity)
    (Graph.links g);
  add "}\n";
  Buffer.contents buf

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
