open Arnet_topology

let dist coords i j =
  let xi, yi = coords.(i) and xj, yj = coords.(j) in
  let dx = xi -. xj and dy = yi -. yj in
  (dx *. dx) +. (dy *. dy)

let random_mesh ?(seed = 0) ?(capacity = 100) ?(degree = 4) ~nodes () =
  if nodes < 2 then invalid_arg "Mesh.random_mesh: nodes < 2";
  if degree < 2 then invalid_arg "Mesh.random_mesh: degree < 2";
  if capacity < 0 then invalid_arg "Mesh.random_mesh: capacity < 0";
  let rng = Random.State.make [| 0x6d657368; seed; nodes; degree |] in
  let coords =
    Array.init nodes (fun _ ->
        let x = Random.State.float rng 1. in
        let y = Random.State.float rng 1. in
        (x, y))
  in
  let deg = Array.make nodes 0 in
  let linked = Hashtbl.create (nodes * degree) in
  let edges = ref [] in
  let connect i j =
    Hashtbl.add linked (min i j, max i j) ();
    deg.(i) <- deg.(i) + 1;
    deg.(j) <- deg.(j) + 1;
    edges := (i, j) :: !edges
  in
  (* spanning structure: node i joins its nearest predecessor with spare
     degree.  Predecessors 0..i-1 carry i-1 edges in total, so with
     degree >= 2 a spare slot always exists. *)
  for i = 1 to nodes - 1 do
    let best = ref (-1) in
    for j = 0 to i - 1 do
      if
        deg.(j) < degree
        && (!best < 0 || dist coords i j < dist coords i !best)
      then best := j
    done;
    connect i !best
  done;
  (* chords: spend remaining degree budget on nearest neighbours,
     closest pairs first per node *)
  for i = 0 to nodes - 1 do
    if deg.(i) < degree then begin
      let others =
        List.init nodes Fun.id
        |> List.filter (fun j ->
               j <> i && not (Hashtbl.mem linked (min i j, max i j)))
        |> List.sort (fun a b -> compare (dist coords i a) (dist coords i b))
      in
      List.iter
        (fun j ->
          if deg.(i) < degree && deg.(j) < degree then connect i j)
        others
    end
  done;
  let labels = Array.init nodes (Printf.sprintf "n%d") in
  let graph =
    Graph.of_edges ~labels ~nodes ~capacity (List.rev !edges)
  in
  Topo.make
    ~name:(Printf.sprintf "mesh%d-d%d-s%d" nodes degree seed)
    ~coords:(Array.map (fun c -> Some c) coords)
    graph

let gravity ?total (t : Topo.t) =
  let g = t.Topo.graph in
  let total =
    match total with
    | Some x -> x
    | None -> 5. *. float_of_int (Graph.node_count g)
  in
  Arnet_traffic.Gravity.degree_weighted g ~total
