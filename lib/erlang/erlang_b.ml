let check_offered offered =
  if not (Float.is_finite offered) || offered <= 0. then
    invalid_arg "Erlang_b.check_offered: offered load must be positive and finite"

let blocking_table ~offered ~capacity =
  check_offered offered;
  if capacity < 0 then invalid_arg "Erlang_b.blocking_table: negative capacity";
  let table = Array.make (capacity + 1) 1. in
  for x = 1 to capacity do
    let prev = table.(x - 1) in
    table.(x) <- offered *. prev /. (float_of_int x +. (offered *. prev))
  done;
  table

let blocking ~offered ~capacity =
  (blocking_table ~offered ~capacity).(capacity)

(* log (exp a + exp b) without overflow *)
let log_add a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else
    let hi = Float.max a b and lo = Float.min a b in
    hi +. log1p (exp (lo -. hi))

let log_inverse_table ~offered ~capacity =
  check_offered offered;
  if capacity < 0 then invalid_arg "Erlang_b.log_inverse_table: negative capacity";
  let table = Array.make (capacity + 1) 0. in
  for x = 1 to capacity do
    (* y_x = 1 + (x/a) y_{x-1} *)
    table.(x) <- log_add 0. (log (float_of_int x /. offered) +. table.(x - 1))
  done;
  table

let blocking_ratio ~offered ~capacity ~reserve =
  if reserve < 0 || reserve > capacity then
    invalid_arg "Erlang_b.blocking_ratio: reserve out of range";
  let ly = log_inverse_table ~offered ~capacity in
  (* B(a,c)/B(a,c-r) = y_{c-r} / y_c *)
  exp (ly.(capacity - reserve) -. ly.(capacity))

let mean_carried ~offered ~capacity =
  offered *. (1. -. blocking ~offered ~capacity)

let loss_rate ~offered ~capacity = offered *. blocking ~offered ~capacity

let dimension ~offered ~target_blocking =
  check_offered offered;
  if target_blocking <= 0. || target_blocking >= 1. then
    invalid_arg "Erlang_b.dimension: target must be in (0, 1)";
  (* B decreases in capacity; walk the stable forward recursion until
     the target is met — O(answer), and the answer is near the offered
     load for any practical target *)
  let rec grow c b =
    if b <= target_blocking then c
    else begin
      let c' = c + 1 in
      let b' = offered *. b /. (float_of_int c' +. (offered *. b)) in
      grow c' b'
    end
  in
  grow 0 1.

let loss_rate_derivative ~offered ~capacity =
  let b = blocking ~offered ~capacity in
  let db =
    b *. ((float_of_int capacity /. offered) -. 1. +. b)
  in
  b +. (offered *. db)
