type t = { births : float array; deaths : float array }

let positive_finite name a =
  Array.iter
    (fun x ->
      if not (Float.is_finite x) || x <= 0. then
        invalid_arg (Printf.sprintf "Birth_death.make: %s must be positive" name))
    a

let make ~births ~deaths =
  if Array.length births = 0 then invalid_arg "Birth_death.make: empty chain";
  if Array.length births <> Array.length deaths then
    invalid_arg "Birth_death.make: births/deaths length mismatch";
  positive_finite "births" births;
  positive_finite "deaths" deaths;
  { births = Array.copy births; deaths = Array.copy deaths }

let erlang ~births =
  let deaths = Array.init (Array.length births) (fun s -> float_of_int (s + 1)) in
  make ~births ~deaths

let protected_link ~primary ~overflow ~capacity ~reserve =
  if capacity < 1 then invalid_arg "Birth_death.protected_link: capacity < 1";
  if reserve < 0 || reserve > capacity then
    invalid_arg "Birth_death.protected_link: reserve out of range";
  if primary <= 0. then invalid_arg "Birth_death.protected_link: primary <= 0";
  let threshold = capacity - reserve in
  let birth s =
    if s < threshold then begin
      let o = overflow s in
      if o < 0. || not (Float.is_finite o) then
        invalid_arg "Birth_death.protected_link: bad overflow rate";
      primary +. o
    end
    else primary
  in
  erlang ~births:(Array.init capacity birth)

let capacity t = Array.length t.births

let log_weights t =
  let c = capacity t in
  let lw = Array.make (c + 1) 0. in
  for s = 0 to c - 1 do
    lw.(s + 1) <- lw.(s) +. log t.births.(s) -. log t.deaths.(s)
  done;
  lw

let stationary t =
  let lw = log_weights t in
  let m = Array.fold_left Float.max neg_infinity lw in
  let exps = Array.map (fun l -> exp (l -. m)) lw in
  let z = Array.fold_left ( +. ) 0. exps in
  Array.map (fun e -> e /. z) exps

let time_congestion t =
  let pi = stationary t in
  pi.(capacity t)

let call_congestion t ~arrival_at_full =
  if arrival_at_full < 0. then
    invalid_arg "Birth_death.call_congestion: negative rate";
  let pi = stationary t in
  let c = capacity t in
  let offered = ref (pi.(c) *. arrival_at_full) in
  let total = ref !offered in
  for s = 0 to c - 1 do
    total := !total +. (pi.(s) *. t.births.(s))
  done;
  ignore offered;
  if !total = 0. then 0. else pi.(c) *. arrival_at_full /. !total

let mean_occupancy t =
  let pi = stationary t in
  let acc = ref 0. in
  Array.iteri (fun s p -> acc := !acc +. (float_of_int s *. p)) pi;
  !acc

let death_from t s = if s = 0 then 0. else t.deaths.(s - 1)

let expected_passage_time t s =
  if s < 0 || s >= capacity t then
    invalid_arg "Birth_death.expected_passage_time: state out of range";
  (* m_j = (1 + d_j m_{j-1}) / b_j *)
  let m = ref 0. in
  for j = 0 to s do
    m := (1. +. (death_from t j *. !m)) /. t.births.(j)
  done;
  !m

let expected_accepted_until_up t s =
  if s < 0 || s >= capacity t then
    invalid_arg "Birth_death.expected_accepted_until_up: state out of range";
  (* X_j = 1 + (d_j / b_j) X_{j-1}, X_0 = 1  (Equation 5) *)
  let x = ref 0. in
  for j = 0 to s do
    x := 1. +. (death_from t j /. t.births.(j) *. !x)
  done;
  !x
