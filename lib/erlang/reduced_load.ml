type route = { offered : float; links : int list }

let validate ~capacities routes =
  let m = Array.length capacities in
  List.iter
    (fun r ->
      if r.offered <= 0. || not (Float.is_finite r.offered) then
        invalid_arg "Reduced_load.validate: offered load must be positive";
      if r.links = [] then invalid_arg "Reduced_load.validate: empty route";
      List.iter
        (fun k ->
          if k < 0 || k >= m then invalid_arg "Reduced_load.validate: unknown link")
        r.links)
    routes

let reduced_link_loads ~capacities ~blocking routes =
  let m = Array.length capacities in
  if Array.length blocking <> m then
    invalid_arg "Reduced_load.reduced_link_loads: blocking length mismatch";
  let loads = Array.make m 0. in
  let add_route r =
    let thin k =
      let pass =
        List.fold_left
          (fun acc j -> if j = k then acc else acc *. (1. -. blocking.(j)))
          1. r.links
      in
      loads.(k) <- loads.(k) +. (r.offered *. pass)
    in
    List.iter thin r.links
  in
  List.iter add_route routes;
  loads

let route_blocking ~blocking r =
  1.
  -. List.fold_left (fun acc j -> acc *. (1. -. blocking.(j))) 1. r.links

let solve ?(tolerance = 1e-10) ?(max_iterations = 10_000) ~capacities routes =
  validate ~capacities routes;
  let m = Array.length capacities in
  let blocking = Array.make m 0. in
  let rec iterate remaining =
    if remaining = 0 then
      invalid_arg "Reduced_load.solve: no convergence";
    let loads = reduced_link_loads ~capacities ~blocking routes in
    let delta = ref 0. in
    for k = 0 to m - 1 do
      let b =
        if loads.(k) <= 0. then 0.
        else Erlang_b.blocking ~offered:loads.(k) ~capacity:capacities.(k)
      in
      delta := Float.max !delta (Float.abs (b -. blocking.(k)));
      (* damped update keeps the iteration monotone enough to converge on
         heavily loaded meshes *)
      blocking.(k) <- (0.5 *. blocking.(k)) +. (0.5 *. b)
    done;
    if !delta > tolerance then iterate (remaining - 1)
  in
  iterate max_iterations;
  blocking
