(** Exhaustive enumeration of loop-free paths.

    The alternate-path sets of the paper are "all non-looping paths",
    optionally capped at [H] hops (the design parameter of Section 3.1),
    attempted in order of increasing length.  Networks of interest are
    small and sparse (the NSFNet model averages about 10 simple paths per
    pair), so exhaustive DFS enumeration is both exact and fast. *)

open Arnet_topology

val simple_paths : ?max_hops:int -> Graph.t -> src:int -> dst:int -> Path.t list
(** All loop-free paths from [src] to [dst] with at most [max_hops] links
    (default: no bound beyond loop-freedom, i.e. [node_count - 1]),
    sorted by {!Path.compare_by_length}.
    @raise Invalid_argument if [src = dst] or indices are bad. *)

val paths_from : ?max_hops:int -> Graph.t -> src:int -> Path.t list array
(** One whole route-table row at once: slot [dst] holds exactly
    [simple_paths ?max_hops g ~src ~dst] (slot [src] is empty).  A single
    shared DFS tree replaces [n - 1] per-pair trees that would each
    re-explore almost the same prefixes, which is what makes route-table
    construction tractable at 1000+ nodes.
    @raise Invalid_argument on a bad index or [max_hops < 1]. *)

val count_simple_paths : ?max_hops:int -> Graph.t -> src:int -> dst:int -> int
(** Path count without materializing paths. *)

val path_census :
  ?max_hops:int -> Graph.t -> (int * int * int) list
(** For every ordered pair, [(src, dst, simple-path count)].  Used to
    check the paper's "about 9 alternate paths on average, max 15, min 5"
    observation. *)
