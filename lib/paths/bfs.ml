open Arnet_topology

let bfs n start neighbours =
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(start) <- 0;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let relax w =
      if dist.(w) = max_int then begin
        dist.(w) <- dist.(v) + 1;
        Queue.add w queue
      end
    in
    List.iter relax (neighbours v)
  done;
  dist

let distances g ~src =
  if src < 0 || src >= Graph.node_count g then invalid_arg "Bfs.distances: bad source node";
  bfs (Graph.node_count g) src (Graph.successors g)

let distances_to g ~dst =
  if dst < 0 || dst >= Graph.node_count g then invalid_arg "Bfs.distances_to: bad destination node";
  let preds v = List.map (fun (l : Link.t) -> l.Link.src) (Graph.in_links g v) in
  bfs (Graph.node_count g) dst preds

let min_hop_path g ~src ~dst =
  if src = dst then invalid_arg "Bfs.min_hop_path: src = dst";
  let dist = distances_to g ~dst in
  if dist.(src) = max_int then None
  else begin
    (* Walk greedily towards dst, always taking the smallest-indexed
       neighbour that lies on some shortest path.  Successors are sorted
       ascending, so the first qualifying one gives the lexicographically
       smallest min-hop node sequence. *)
    let rec walk v acc =
      if v = dst then List.rev (v :: acc)
      else
        let next =
          List.find
            (fun w -> dist.(w) <> max_int && dist.(w) = dist.(v) - 1)
            (Graph.successors g v)
        in
        walk next (v :: acc)
    in
    Some (Path.of_nodes_unchecked g (Array.of_list (walk src [])))
  end

let eccentricity g v =
  let dist = distances g ~src:v in
  Array.fold_left
    (fun acc d -> if d = max_int then acc else max acc d)
    0 dist

let diameter g =
  let n = Graph.node_count g in
  if not (Graph.is_strongly_connected g) then
    invalid_arg "Bfs.diameter: graph not strongly connected";
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (eccentricity g v)
  done;
  !best
