open Arnet_topology

type t = { nodes : int array; link_ids : int array }

let resolve g nodes =
  let n = Array.length nodes in
  if n < 2 then invalid_arg "Path.resolve: need at least two nodes";
  let link_ids =
    Array.init (n - 1) (fun i ->
        match Graph.find_link g ~src:nodes.(i) ~dst:nodes.(i + 1) with
        | Some l -> l.Link.id
        | None ->
          invalid_arg
            (Printf.sprintf "Path.resolve: no link %d->%d" nodes.(i) nodes.(i + 1)))
  in
  { nodes; link_ids }

let of_nodes_unchecked g nodes = resolve g nodes

let with_link_ids_unchecked ~nodes ~link_ids =
  if Array.length nodes < 2 then
    invalid_arg "Path.with_link_ids_unchecked: need at least two nodes";
  if Array.length link_ids <> Array.length nodes - 1 then
    invalid_arg "Path.with_link_ids_unchecked: link_ids/nodes length mismatch";
  { nodes; link_ids }

let make g node_list =
  let nodes = Array.of_list node_list in
  let seen = Hashtbl.create (Array.length nodes) in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Path.make: repeated node";
      Hashtbl.add seen v ())
    nodes;
  resolve g nodes

let hops p = Array.length p.link_ids
let src p = p.nodes.(0)
let dst p = p.nodes.(Array.length p.nodes - 1)
let nodes p = Array.to_list p.nodes
let link_ids p = Array.to_list p.link_ids
let links g p = List.map (Graph.link g) (link_ids p)
let mem_node p v = Array.exists (fun x -> x = v) p.nodes
let mem_link p i = Array.exists (fun x -> x = i) p.link_ids
let equal a b = a.nodes = b.nodes

let compare_by_length a b =
  match compare (hops a) (hops b) with
  | 0 -> compare a.nodes b.nodes
  | c -> c

let pp ppf p =
  Format.fprintf ppf "[%s]"
    (String.concat "-" (Array.to_list (Array.map string_of_int p.nodes)))

let to_string p = Format.asprintf "%a" pp p
