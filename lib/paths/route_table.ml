open Arnet_topology

type entry = {
  primary : Path.t option;
  candidates : Path.t list;
  primary_alternates : Path.t array;
}
(* candidates: all simple paths <= h hops, sorted by length; may or may
   not contain the primary (which can be longer than h).
   primary_alternates: candidates minus the table primary, in attempt
   order — precomputed at build time so the per-call decision never
   filters a list (Controller iterates it index-wise, allocation-free). *)

type kind = Minhop | Custom | Protected
(* Minhop tables (the default build) are the only patchable kind: the
   primary is a pure function of the pair's min-hop path set, so the
   affected-pair analysis of [patch] is exact.  Custom-primary and
   Suurballe-protected tables must be rebuilt from scratch. *)

type t = { graph : Graph.t; h : int; entries : entry array array; kind : kind }

let empty_entry = { primary = None; candidates = []; primary_alternates = [||] }

let mk_entry primary candidates =
  let primary_alternates =
    match primary with
    | None -> [||]
    | Some p ->
      Array.of_list (List.filter (fun q -> not (Path.equal q p)) candidates)
  in
  { primary; candidates; primary_alternates }

(* the greedy walk of Bfs.min_hop_path, lifted out so one backward BFS
   per destination serves every source — identical output, since the
   walk depends only on the distance field and the sorted successors *)
let primary_from_dist g dist ~src ~dst =
  if dist.(src) = max_int then None
  else begin
    let rec walk v acc =
      if v = dst then List.rev (v :: acc)
      else
        let next =
          List.find
            (fun w -> dist.(w) <> max_int && dist.(w) = dist.(v) - 1)
            (Graph.successors g v)
        in
        walk next (v :: acc)
    in
    Some (Path.of_nodes_unchecked g (Array.of_list (walk src [])))
  end

let check_h = function
  | Some h when h < 1 -> invalid_arg "Route_table.build: h < 1"
  | _ -> ()

(* the pre-memoization pipeline: one backward BFS and one DFS tree per
   ordered pair.  Kept verbatim as the differential-testing oracle and
   the "sequential full rebuild" baseline of the compile bench. *)
let build_reference ?h ?primary g =
  let n = Graph.node_count g in
  check_h h;
  let h = match h with None -> n - 1 | Some h -> h in
  let kind = match primary with None -> Minhop | Some _ -> Custom in
  let primary_of =
    match primary with
    | Some f -> f
    | None -> fun ~src ~dst -> Bfs.min_hop_path g ~src ~dst
  in
  let entry src dst =
    if src = dst then empty_entry
    else
      let primary = primary_of ~src ~dst in
      let candidates = Enumerate.simple_paths ~max_hops:h g ~src ~dst in
      (match primary, candidates with
      | None, _ :: _ ->
        invalid_arg "Route_table.build: primary policy returned no path \
                     for a connected pair"
      | _ -> ());
      mk_entry primary candidates
  in
  let entries = Array.init n (fun src -> Array.init n (entry src)) in
  { graph = g; h; entries; kind }

let build ?(domains = 1) ?h ?primary g =
  if domains < 1 then invalid_arg "Route_table.build: domains must be >= 1";
  match primary with
  | Some _ ->
    (* a caller-supplied closure may be impure; run it on one domain in
       the reference per-pair order *)
    build_reference ?h ?primary g
  | None ->
    let n = Graph.node_count g in
    check_h h;
    let h = match h with None -> n - 1 | Some h -> h in
    (* one backward BFS per destination, shared by all n sources (the
       reference pipeline repeats it per ordered pair) *)
    let dist_to = Array.init n (fun dst -> Bfs.distances_to g ~dst) in
    let row src =
      let buckets = Enumerate.paths_from ~max_hops:h g ~src in
      Array.init n (fun dst ->
          if src = dst then empty_entry
          else
            mk_entry (primary_from_dist g dist_to.(dst) ~src ~dst) buckets.(dst))
    in
    let rows = Arnet_pool.map ~domains row (List.init n Fun.id) in
    { graph = g; h; entries = Array.of_list rows; kind = Minhop }

let protected ?(domains = 1) ?weight g =
  let n = Graph.node_count g in
  let entry src dst =
    if src = dst then empty_entry
    else
      match Suurballe.disjoint_pair ?weight g ~src ~dst with
      | Some (p, mate) ->
        { primary = Some p;
          candidates = [ p; mate ];
          primary_alternates = [| mate |] }
      | None -> (
        (* no two link-disjoint paths: protection is impossible, route
           on the min-hop primary alone *)
        match Bfs.min_hop_path g ~src ~dst with
        | None -> empty_entry
        | Some p ->
          { primary = Some p; candidates = [ p ]; primary_alternates = [||] })
  in
  let row src = Array.init n (entry src) in
  let rows = Arnet_pool.map ~domains row (List.init n Fun.id) in
  { graph = g; h = n - 1; entries = Array.of_list rows; kind = Protected }

let graph t = t.graph
let h t = t.h

let get t src dst =
  let n = Graph.node_count t.graph in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Route_table.get: bad node index";
  t.entries.(src).(dst)

let primary t ~src ~dst =
  match (get t src dst).primary with
  | Some p -> p
  | None -> invalid_arg "Route_table.primary: no route"

let has_route t ~src ~dst = (get t src dst).primary <> None

let alternates_excluding t ~src ~dst p =
  let e = get t src dst in
  match e.primary with
  | Some prim when prim == p || Path.equal prim p ->
    Array.to_list e.primary_alternates
  | _ -> List.filter (fun q -> not (Path.equal q p)) e.candidates

let alternates t ~src ~dst =
  match (get t src dst).primary with
  | None -> []
  | Some _ -> Array.to_list (get t src dst).primary_alternates

let alternate_array t ~src ~dst = (get t src dst).primary_alternates

let all_paths t ~src ~dst =
  let e = get t src dst in
  match e.primary with
  | None -> e.candidates
  | Some p ->
    if List.exists (Path.equal p) e.candidates then e.candidates
    else List.sort Path.compare_by_length (p :: e.candidates)

let max_alternate_hops t =
  let n = Graph.node_count t.graph in
  let best = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        List.iter
          (fun p -> best := max !best (Path.hops p))
          (alternates t ~src ~dst)
    done
  done;
  !best

let alternate_count_stats t ~min:mn ~max:mx =
  let n = Graph.node_count t.graph in
  mn := max_int;
  mx := 0;
  let total = ref 0 and pairs = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && has_route t ~src ~dst then begin
        let c = List.length (alternates t ~src ~dst) in
        incr pairs;
        total := !total + c;
        if c < !mn then mn := c;
        if c > !mx then mx := c
      end
    done
  done;
  if !pairs = 0 then 0. else float_of_int !total /. float_of_int !pairs

(* ------------------------------------------------------------------ *)
(* incremental recompile: rebuild only the ordered pairs a topology
   change can affect.

   The affected-pair analysis is exact because the default primary is
   canonical — the lexicographically-smallest min-hop path, a function
   of the pair's path set alone:

   - removing link k: a pair changes iff its primary or some candidate
     traverses k.  Otherwise the pair's min-hop set still contains its
     old primary (so the lexmin is unchanged) and its <= h candidate set
     loses nothing.
   - adding link u->v: any *new* path for (s, d) traverses u->v, so its
     hop count is at least dist(s, u) + 1 + dist(v, d).  A pair can
     change only when that lower bound fits under max h (hops primary)
     (or the pair was unroutable and both distances are now finite);
     such pairs are recomputed — possibly needlessly, never wrongly.
   - a capacity change affects no pair: routing here is hop-based. *)

type change =
  | Add_link of { src : int; dst : int; capacity : int }
  | Remove_link of { src : int; dst : int }
  | Set_capacity of { src : int; dst : int; capacity : int }

let labels_of g = Array.init (Graph.node_count g) (Graph.label g)

(* relocate a surviving path onto the renumbered graph: node sequence
   unchanged, link ids translated through [id_map] *)
let remap_path id_map (p : Path.t) =
  Path.with_link_ids_unchecked ~nodes:p.Path.nodes
    ~link_ids:(Array.map (fun k -> id_map.(k)) p.Path.link_ids)

let remap_entry id_map e =
  match e.primary with
  | None -> e
  | Some p ->
    mk_entry (Some (remap_path id_map p)) (List.map (remap_path id_map) e.candidates)

(* recompute the affected pairs, grouped by destination so each group
   shares one backward BFS; groups shard across domains *)
let recompute ~domains g' ~h by_dst =
  let groups =
    Hashtbl.fold (fun dst srcs acc -> (dst, srcs) :: acc) by_dst []
    |> List.sort compare
  in
  let one (dst, srcs) =
    let dist = Bfs.distances_to g' ~dst in
    List.map
      (fun src ->
        ( src,
          dst,
          mk_entry
            (primary_from_dist g' dist ~src ~dst)
            (Enumerate.simple_paths ~max_hops:h g' ~src ~dst) ))
      srcs
  in
  List.concat (Arnet_pool.map ~domains one groups)

let check_pair_nodes ~n ~op src dst =
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg (Printf.sprintf "Route_table.patch: %s: bad node index" op);
  if src = dst then
    invalid_arg (Printf.sprintf "Route_table.patch: %s: src = dst" op)

let apply_remove ~domains t ~src:u ~dst:v =
  let g = t.graph in
  let n = Graph.node_count g in
  check_pair_nodes ~n ~op:"remove" u v;
  let doomed =
    match Graph.find_link g ~src:u ~dst:v with
    | Some l -> l.Link.id
    | None ->
      invalid_arg
        (Printf.sprintf "Route_table.patch: remove: no link %d->%d" u v)
  in
  let g' = Graph.without_links g [ (u, v) ] in
  (* without_links renumbers link ids: translate survivors, -1 marks the
     removed id (never read — pairs that used it are recomputed) *)
  let id_map = Array.make (Graph.link_count g) (-1) in
  Graph.iter_links
    (fun (l : Link.t) ->
      if l.Link.id <> doomed then
        id_map.(l.Link.id) <-
          (Graph.find_link_exn g' ~src:l.Link.src ~dst:l.Link.dst).Link.id)
    g;
  let by_dst = Hashtbl.create 16 in
  let affected = ref 0 in
  let entries' =
    Array.mapi
      (fun src row ->
        Array.mapi
          (fun dst e ->
            if src = dst then e
            else begin
              let uses p = Path.mem_link p doomed in
              let hit =
                (match e.primary with Some p -> uses p | None -> false)
                || List.exists uses e.candidates
              in
              if hit then begin
                incr affected;
                Hashtbl.replace by_dst dst
                  (src :: Option.value ~default:[] (Hashtbl.find_opt by_dst dst));
                empty_entry (* placeholder, overwritten below *)
              end
              else remap_entry id_map e
            end)
          row)
      t.entries
  in
  List.iter
    (fun (src, dst, e) -> entries'.(src).(dst) <- e)
    (recompute ~domains g' ~h:t.h by_dst);
  ({ t with graph = g'; entries = entries' }, !affected)

let apply_add ~domains t ~src:u ~dst:v ~capacity =
  let g = t.graph in
  let n = Graph.node_count g in
  check_pair_nodes ~n ~op:"add" u v;
  if Graph.find_link g ~src:u ~dst:v <> None then
    invalid_arg
      (Printf.sprintf "Route_table.patch: add: link %d->%d already exists" u v);
  let m = Graph.link_count g in
  let links =
    Array.to_list (Graph.links g)
    @ [ Link.make ~id:m ~src:u ~dst:v ~capacity ]
  in
  (* appending keeps every existing link id stable, so untouched entries
     carry over without remapping *)
  let g' = Graph.create ~labels:(labels_of g) ~nodes:n links in
  let du = Bfs.distances_to g' ~dst:u in
  let dv = Bfs.distances g' ~src:v in
  let by_dst = Hashtbl.create 16 in
  let affected = ref 0 in
  let entries' = Array.map Array.copy t.entries in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && du.(src) <> max_int && dv.(dst) <> max_int then begin
        let hit =
          match t.entries.(src).(dst).primary with
          | None -> true (* newly routable: every new path uses u->v *)
          | Some p -> du.(src) + 1 + dv.(dst) <= max t.h (Path.hops p)
        in
        if hit then begin
          incr affected;
          Hashtbl.replace by_dst dst
            (src :: Option.value ~default:[] (Hashtbl.find_opt by_dst dst))
        end
      end
    done
  done;
  List.iter
    (fun (src, dst, e) -> entries'.(src).(dst) <- e)
    (recompute ~domains g' ~h:t.h by_dst);
  ({ t with graph = g'; entries = entries' }, !affected)

let apply_capacity t ~src ~dst ~capacity =
  let n = Graph.node_count t.graph in
  check_pair_nodes ~n ~op:"capacity" src dst;
  let g' = Graph.with_capacities t.graph [ (src, dst, capacity) ] in
  ({ t with graph = g' }, 0)

let patch ?(domains = 1) t changes =
  if domains < 1 then invalid_arg "Route_table.patch: domains must be >= 1";
  (match t.kind with
  | Minhop -> ()
  | Custom ->
    invalid_arg
      "Route_table.patch: table was built with a custom primary policy; \
       rebuild it instead"
  | Protected ->
    invalid_arg
      "Route_table.patch: protected tables are not patchable; rebuild \
       with Route_table.protected");
  List.fold_left
    (fun (t, total) change ->
      let t, changed =
        match change with
        | Add_link { src; dst; capacity } ->
          apply_add ~domains t ~src ~dst ~capacity
        | Remove_link { src; dst } -> apply_remove ~domains t ~src ~dst
        | Set_capacity { src; dst; capacity } ->
          apply_capacity t ~src ~dst ~capacity
      in
      (t, total + changed))
    (t, 0) changes

let equal a b =
  let opt_equal p q =
    match (p, q) with
    | None, None -> true
    | Some p, Some q -> Path.equal p q
    | _ -> false
  in
  let array_equal eq x y =
    Array.length x = Array.length y && Array.for_all2 eq x y
  in
  let entry_equal (ea : entry) (eb : entry) =
    opt_equal ea.primary eb.primary
    && List.equal Path.equal ea.candidates eb.candidates
    && array_equal Path.equal ea.primary_alternates eb.primary_alternates
  in
  a.h = b.h
  && Graph.node_count a.graph = Graph.node_count b.graph
  && array_equal (array_equal entry_equal) a.entries b.entries

let pp ppf t =
  let n = Graph.node_count t.graph in
  Format.fprintf ppf "@[<v>route table (H=%d)" t.h;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && has_route t ~src ~dst then
        Format.fprintf ppf "@,  %d->%d: primary %a, %d alternates" src dst
          Path.pp (primary t ~src ~dst)
          (List.length (alternates t ~src ~dst))
    done
  done;
  Format.fprintf ppf "@]"
