open Arnet_topology

type entry = {
  primary : Path.t option;
  candidates : Path.t list;
  primary_alternates : Path.t array;
}
(* candidates: all simple paths <= h hops, sorted by length; may or may
   not contain the primary (which can be longer than h).
   primary_alternates: candidates minus the table primary, in attempt
   order — precomputed at build time so the per-call decision never
   filters a list (Controller iterates it index-wise, allocation-free). *)

type t = { graph : Graph.t; h : int; entries : entry array array }

let build ?h ?primary g =
  let n = Graph.node_count g in
  let h = match h with None -> n - 1 | Some h -> h in
  if h < 1 then invalid_arg "Route_table.build: h < 1";
  let primary_of =
    match primary with
    | Some f -> f
    | None -> fun ~src ~dst -> Bfs.min_hop_path g ~src ~dst
  in
  let entry src dst =
    if src = dst then
      { primary = None; candidates = []; primary_alternates = [||] }
    else
      let primary = primary_of ~src ~dst in
      let candidates = Enumerate.simple_paths ~max_hops:h g ~src ~dst in
      (match primary, candidates with
      | None, _ :: _ ->
        invalid_arg "Route_table.build: primary policy returned no path \
                     for a connected pair"
      | _ -> ());
      let primary_alternates =
        match primary with
        | None -> [||]
        | Some p ->
          Array.of_list
            (List.filter (fun q -> not (Path.equal q p)) candidates)
      in
      { primary; candidates; primary_alternates }
  in
  let entries = Array.init n (fun src -> Array.init n (entry src)) in
  { graph = g; h; entries }

let protected ?weight g =
  let n = Graph.node_count g in
  let entry src dst =
    if src = dst then
      { primary = None; candidates = []; primary_alternates = [||] }
    else
      match Suurballe.disjoint_pair ?weight g ~src ~dst with
      | Some (p, mate) ->
        { primary = Some p;
          candidates = [ p; mate ];
          primary_alternates = [| mate |] }
      | None -> (
        (* no two link-disjoint paths: protection is impossible, route
           on the min-hop primary alone *)
        match Bfs.min_hop_path g ~src ~dst with
        | None -> { primary = None; candidates = []; primary_alternates = [||] }
        | Some p ->
          { primary = Some p; candidates = [ p ]; primary_alternates = [||] })
  in
  let entries = Array.init n (fun src -> Array.init n (entry src)) in
  { graph = g; h = n - 1; entries }

let graph t = t.graph
let h t = t.h

let get t src dst =
  let n = Graph.node_count t.graph in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Route_table.get: bad node index";
  t.entries.(src).(dst)

let primary t ~src ~dst =
  match (get t src dst).primary with
  | Some p -> p
  | None -> invalid_arg "Route_table.primary: no route"

let has_route t ~src ~dst = (get t src dst).primary <> None

let alternates_excluding t ~src ~dst p =
  let e = get t src dst in
  match e.primary with
  | Some prim when prim == p || Path.equal prim p ->
    Array.to_list e.primary_alternates
  | _ -> List.filter (fun q -> not (Path.equal q p)) e.candidates

let alternates t ~src ~dst =
  match (get t src dst).primary with
  | None -> []
  | Some _ -> Array.to_list (get t src dst).primary_alternates

let alternate_array t ~src ~dst = (get t src dst).primary_alternates

let all_paths t ~src ~dst =
  let e = get t src dst in
  match e.primary with
  | None -> e.candidates
  | Some p ->
    if List.exists (Path.equal p) e.candidates then e.candidates
    else List.sort Path.compare_by_length (p :: e.candidates)

let max_alternate_hops t =
  let n = Graph.node_count t.graph in
  let best = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        List.iter
          (fun p -> best := max !best (Path.hops p))
          (alternates t ~src ~dst)
    done
  done;
  !best

let alternate_count_stats t ~min:mn ~max:mx =
  let n = Graph.node_count t.graph in
  mn := max_int;
  mx := 0;
  let total = ref 0 and pairs = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && has_route t ~src ~dst then begin
        let c = List.length (alternates t ~src ~dst) in
        incr pairs;
        total := !total + c;
        if c < !mn then mn := c;
        if c > !mx then mx := c
      end
    done
  done;
  if !pairs = 0 then 0. else float_of_int !total /. float_of_int !pairs

let pp ppf t =
  let n = Graph.node_count t.graph in
  Format.fprintf ppf "@[<v>route table (H=%d)" t.h;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && has_route t ~src ~dst then
        Format.fprintf ppf "@,  %d->%d: primary %a, %d alternates" src dst
          Path.pp (primary t ~src ~dst)
          (List.length (alternates t ~src ~dst))
    done
  done;
  Format.fprintf ppf "@]"
