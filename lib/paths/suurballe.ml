open Arnet_topology

let is_link_disjoint a b =
  not (Array.exists (fun k -> Path.mem_link b k) a.Path.link_ids)

let check_weight w =
  if not (Float.is_finite w) || w < 0. then
    invalid_arg "Suurballe.check_weight: weights must be finite and nonnegative";
  w

(* Dijkstra over an explicit residual edge list.  Edges: (src, dst,
   cost, tag).  Returns the tag sequence of a cheapest src->dst walk. *)
let residual_dijkstra ~nodes ~edges ~src ~dst =
  let adjacency = Array.make nodes [] in
  List.iter
    (fun (u, v, cost, tag) -> adjacency.(u) <- (v, cost, tag) :: adjacency.(u))
    edges;
  Array.iteri
    (fun i l -> adjacency.(i) <- List.sort compare l)
    adjacency;
  let dist = Array.make nodes infinity in
  let parent = Array.make nodes None in
  let settled = Array.make nodes false in
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0., src)) in
  dist.(src) <- 0.;
  let rec loop () =
    match Pq.min_elt_opt !pq with
    | None -> ()
    | Some ((d, u) as elt) ->
      pq := Pq.remove elt !pq;
      if not settled.(u) then begin
        settled.(u) <- true;
        List.iter
          (fun (v, cost, tag) ->
            let nd = d +. cost in
            if nd < dist.(v) -. 1e-12 then begin
              dist.(v) <- nd;
              parent.(v) <- Some (u, tag);
              pq := Pq.add (nd, v) !pq
            end)
          adjacency.(u)
      end;
      loop ()
  in
  loop ();
  if dist.(dst) = infinity then None
  else begin
    let rec collect v acc =
      if v = src then acc
      else
        match parent.(v) with
        | Some (u, tag) -> collect u (tag :: acc)
        | None -> assert false
    in
    Some (collect dst [])
  end

(* walk one src->dst path through the combined edge set, consuming the
   edges it uses; drops any cycles so the result is loop-free *)
let walk_one ~nodes ~out ~src ~dst =
  ignore nodes;
  let rec go v acc =
    if v = dst then List.rev (v :: acc)
    else
      match out.(v) with
      | [] -> invalid_arg "Suurballe.walk_one: internal walk stuck"
      | next :: rest ->
        out.(v) <- rest;
        go next (v :: acc)
  in
  let raw = go src [] in
  (* cut loops: keep the last occurrence of each repeated node *)
  let rec dedup = function
    | [] -> []
    | v :: rest ->
      if List.mem v rest then
        (* skip forward to the last occurrence of v *)
        let rec after = function
          | [] -> []
          | w :: tl -> if w = v then (match after tl with [] -> v :: tl | r -> r) else after tl
        in
        dedup (v :: after rest)
      else v :: dedup rest
  in
  (* simpler and clearly correct loop cut: scan keeping first occurrence
     positions; when a node repeats, drop the intermediate cycle *)
  let simplify nodes_list =
    let tbl = Hashtbl.create 16 in
    let buf = ref [] in
    List.iter
      (fun v ->
        match Hashtbl.find_opt tbl v with
        | None ->
          Hashtbl.add tbl v ();
          buf := v :: !buf
        | Some () ->
          (* unwind the cycle back to v *)
          let rec unwind = function
            | [] -> [ v ]
            | w :: rest ->
              if w = v then w :: rest
              else begin
                Hashtbl.remove tbl w;
                unwind rest
              end
          in
          buf := unwind !buf)
      nodes_list;
    List.rev !buf
  in
  ignore dedup;
  simplify raw

let disjoint_pair ?weight g ~src ~dst =
  if src = dst then invalid_arg "Suurballe.disjoint_pair: src = dst";
  let weight =
    match weight with
    | None -> fun (_ : Link.t) -> 1.
    | Some w -> fun l -> check_weight (w l)
  in
  match Dijkstra.shortest_path g ~weight ~src ~dst with
  | None -> None
  | Some p1 ->
    let d = Dijkstra.distances g ~weight ~src in
    let on_p1 = Hashtbl.create 8 in
    Array.iter (fun k -> Hashtbl.replace on_p1 k ()) p1.Path.link_ids;
    let nodes = Graph.node_count g in
    let edges = ref [] in
    Graph.iter_links
      (fun l ->
        let u = l.Link.src and v = l.Link.dst in
        if Float.is_finite d.(u) && Float.is_finite d.(v) then begin
          let reduced = weight l +. d.(u) -. d.(v) in
          let reduced = Float.max 0. reduced in
          if Hashtbl.mem on_p1 l.Link.id then
            (* reverse the first path's links in the residual *)
            edges := (v, u, 0., `Reverse l.Link.id) :: !edges
          else edges := (u, v, reduced, `Forward l.Link.id) :: !edges
        end)
      g;
    (match residual_dijkstra ~nodes ~edges:!edges ~src ~dst with
    | None -> None
    | Some tags ->
      (* combine: start from P1's links, cancel reversed ones, add the
         second walk's forward links *)
      let used = Hashtbl.create 16 in
      Array.iter (fun k -> Hashtbl.replace used k ()) p1.Path.link_ids;
      List.iter
        (fun tag ->
          match tag with
          | `Reverse k -> Hashtbl.remove used k
          | `Forward k -> Hashtbl.replace used k ())
        tags;
      let out = Array.make nodes [] in
      Hashtbl.iter
        (fun k () ->
          let l = Graph.link g k in
          out.(l.Link.src) <- l.Link.dst :: out.(l.Link.src))
        used;
      Array.iteri (fun i l -> out.(i) <- List.sort compare l) out;
      let nodes_a = walk_one ~nodes ~out ~src ~dst in
      let nodes_b = walk_one ~nodes ~out ~src ~dst in
      let pa = Path.of_nodes_unchecked g (Array.of_list nodes_a) in
      let pb = Path.of_nodes_unchecked g (Array.of_list nodes_b) in
      if not (is_link_disjoint pa pb) then None
      else if Path.compare_by_length pa pb <= 0 then Some (pa, pb)
      else Some (pb, pa))

let edge_connectivity_at_least_two g =
  let n = Graph.node_count g in
  let ok = ref true in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && disjoint_pair g ~src ~dst = None then ok := false
    done
  done;
  !ok
