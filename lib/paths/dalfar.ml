open Arnet_topology

type stats = { expansions : int; crankbacks : int }

(* Depth-first expansion guided by local distance vectors, with
   crankback.  [yield] sees each discovered node sequence and returns
   [`Stop] to end the search. *)
let search g dv ~src ~dst ~max_hops ~yield =
  if src = dst then invalid_arg "Dalfar.search: src = dst";
  if max_hops < 1 then invalid_arg "Dalfar.search: max_hops < 1";
  let n = Graph.node_count g in
  let cap = min max_hops (n - 1) in
  let visited = Array.make n false in
  let stack = Array.make (cap + 1) 0 in
  let expansions = ref 0 and crankbacks = ref 0 in
  let viable v budget =
    (* neighbours ordered by the locally-estimated remaining length *)
    Graph.successors g v
    |> List.filter_map (fun w ->
           if visited.(w) then None
           else
             let d = Distance_vector.distance dv ~from:w ~to_:dst in
             if d = max_int || 1 + d > budget then None else Some (d, w))
    |> List.sort compare
    |> List.map snd
  in
  let rec explore v depth =
    stack.(depth) <- v;
    if v = dst then yield (Array.sub stack 0 (depth + 1))
    else begin
      visited.(v) <- true;
      let budget = cap - depth in
      let rec try_children = function
        | [] -> `Continue
        | w :: rest ->
          incr expansions;
          (match explore w (depth + 1) with
          | `Stop -> `Stop
          | `Continue -> try_children rest)
      in
      let outcome = try_children (viable v budget) in
      (* the set-up packet returns to v's predecessor *)
      incr crankbacks;
      visited.(v) <- false;
      outcome
    end
  in
  visited.(src) <- true;
  let (_ : [ `Stop | `Continue ]) = explore src 0 in
  visited.(src) <- false;
  { expansions = !expansions; crankbacks = !crankbacks }

let find_paths ?max_paths g dv ~src ~dst ~max_hops =
  let acc = ref [] in
  let found = ref 0 in
  let stats =
    search g dv ~src ~dst ~max_hops ~yield:(fun nodes ->
        acc := Path.of_nodes_unchecked g (Array.copy nodes) :: !acc;
        incr found;
        match max_paths with
        | Some m when !found >= m -> `Stop
        | _ -> `Continue)
  in
  (List.rev !acc, stats)

let first_available g dv ~src ~dst ~max_hops ~admits =
  let result = ref None in
  let stats =
    search g dv ~src ~dst ~max_hops ~yield:(fun nodes ->
        let p = Path.of_nodes_unchecked g (Array.copy nodes) in
        if admits p then begin
          result := Some p;
          `Stop
        end
        else `Continue)
  in
  match !result with Some p -> Some (p, stats) | None -> None

let matches_enumeration g dv ~src ~dst ~max_hops =
  let found, _ = find_paths g dv ~src ~dst ~max_hops in
  let expected = Enumerate.simple_paths ~max_hops g ~src ~dst in
  let key ps = List.sort compare (List.map Path.nodes ps) in
  key found = key expected
