open Arnet_topology

module Pq = struct
  (* tiny binary min-heap over (priority, payload) *)
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push h pri x =
    if h.size = Array.length h.data then begin
      let cap = max 16 (2 * h.size) in
      let data = Array.make cap (pri, x) in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- (pri, x);
    let i = ref h.size in
    h.size <- h.size + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      let pp, _ = h.data.(parent) and ip, _ = h.data.(!i) in
      if ip < pp then begin
        let tmp = h.data.(parent) in
        h.data.(parent) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let check_weight w =
  if not (Float.is_finite w) || w < 0. then
    invalid_arg "Dijkstra.check_weight: weights must be finite and nonnegative";
  w

let run g ~weight ~src =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: bad source";
  let dist = Array.make n infinity in
  let hops = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Pq.create () in
  dist.(src) <- 0.;
  hops.(src) <- 0;
  Pq.push heap 0. src;
  let rec loop () =
    match Pq.pop heap with
    | None -> ()
    | Some (_, v) ->
      if not settled.(v) then begin
        settled.(v) <- true;
        let relax (l : Link.t) =
          let w = check_weight (weight l) in
          let d = dist.(v) +. w in
          let better =
            d < dist.(l.Link.dst)
            || (d = dist.(l.Link.dst)
                && (hops.(v) + 1 < hops.(l.Link.dst)
                    || (hops.(v) + 1 = hops.(l.Link.dst)
                        && v < parent.(l.Link.dst))))
          in
          if better then begin
            dist.(l.Link.dst) <- d;
            hops.(l.Link.dst) <- hops.(v) + 1;
            parent.(l.Link.dst) <- v;
            Pq.push heap d l.Link.dst
          end
        in
        List.iter relax (Graph.out_links g v)
      end;
      loop ()
  in
  loop ();
  (dist, parent)

let distances g ~weight ~src = fst (run g ~weight ~src)

let shortest_path g ~weight ~src ~dst =
  if src = dst then invalid_arg "Dijkstra.shortest_path: src = dst";
  let dist, parent = run g ~weight ~src in
  if dist.(dst) = infinity then None
  else begin
    let rec collect v acc =
      if v = src then v :: acc else collect parent.(v) (v :: acc)
    in
    Some (Path.of_nodes_unchecked g (Array.of_list (collect dst [])))
  end
