open Arnet_topology

type t = {
  graph : Graph.t;
  dist : int array array;  (* dist.(v).(d) *)
  rounds : int;
  messages : int;
}

let infinite = max_int

let compute g =
  let n = Graph.node_count g in
  let dist =
    Array.init n (fun v ->
        Array.init n (fun d -> if v = d then 0 else infinite))
  in
  (* each round, v learns min over in-neighbours' vectors; messages flow
     along links (a neighbour's vector travels over the link towards v,
     so v hears from nodes it has a link *to*? No: distances must follow
     link direction — v can reach d via n when link v->n exists, so v
     needs n's vector, delivered over the reverse channel of v->n.  We
     count one message per link per round. *)
  let rounds = ref 0 and messages = ref 0 and changed = ref true in
  while !changed do
    incr rounds;
    messages := !messages + Graph.link_count g;
    changed := false;
    let snapshot = Array.map Array.copy dist in
    for v = 0 to n - 1 do
      List.iter
        (fun (l : Link.t) ->
          let via = snapshot.(l.Link.dst) in
          for d = 0 to n - 1 do
            if via.(d) <> infinite && via.(d) + 1 < dist.(v).(d) then begin
              dist.(v).(d) <- via.(d) + 1;
              changed := true
            end
          done)
        (Graph.out_links g v)
    done
  done;
  { graph = g; dist; rounds = !rounds; messages = !messages }

let check t v =
  if v < 0 || v >= Graph.node_count t.graph then
    invalid_arg "Distance_vector.check: bad node"

let distance t ~from ~to_ =
  check t from;
  check t to_;
  t.dist.(from).(to_)

let table t v =
  check t v;
  Array.copy t.dist.(v)

let next_hops t ~from ~to_ =
  check t from;
  check t to_;
  if from = to_ then []
  else
    let target = t.dist.(from).(to_) in
    if target = infinite then []
    else
      Graph.successors t.graph from
      |> List.filter (fun n -> t.dist.(n).(to_) = target - 1)

let rounds t = t.rounds
let messages t = t.messages

let agrees_with_bfs g t =
  let n = Graph.node_count g in
  let ok = ref true in
  for v = 0 to n - 1 do
    let d = Bfs.distances g ~src:v in
    for u = 0 to n - 1 do
      if d.(u) <> t.dist.(v).(u) then ok := false
    done
  done;
  !ok
