(** Precomputed routing tables: one primary path plus ordered alternates
    per ordered O-D pair.

    This is the static product of the paper's two-tier design: the SI
    tier fixes the unique primary path; the SD tier will attempt the
    alternates in the stored order (increasing hop length, as computed in
    a distributed fashion by DALFAR [14] — here centralized but
    identical in result).  An alternate whose hop count exceeds [H] is
    excluded (Section 3.1); primaries are never length-capped
    (Section 3.2: "H has nothing to do with the length of primary
    paths"). *)

open Arnet_topology

type t

val build :
  ?domains:int ->
  ?h:int ->
  ?primary:(src:int -> dst:int -> Path.t option) ->
  Graph.t -> t
(** [build ?domains ?h ?primary g] computes routes for every ordered pair.

    [h] is the maximum alternate hop length [H]; default: [node_count - 1]
    (unrestricted loop-free, the paper's "H = 11" case on NSFNet).
    [primary] overrides the default deterministic minimum-hop primary —
    use it for bifurcated or custom SI policies (alternates always exclude
    whatever primary path is in force at call time, see
    {!alternates_excluding}).

    With the default primary the construction is memoized: one backward
    BFS per destination (shared by all sources) and one DFS tree per
    source ({!Enumerate.paths_from}) replace the per-ordered-pair sweeps,
    and [domains] (default 1) shards the per-source rows across OCaml
    domains.  The resulting table is identical — path for path — to the
    sequential per-pair construction for every domain count.  A custom
    [primary] closure may be impure, so it always builds sequentially on
    the calling domain in per-pair order; [domains] is ignored.

    @raise Invalid_argument if [h < 1], [domains < 1], or some pair has
    no primary path while the graph claims connectivity for it. *)

val build_reference :
  ?h:int ->
  ?primary:(src:int -> dst:int -> Path.t option) ->
  Graph.t -> t
(** The pre-memoization pipeline — one backward BFS and one bounded DFS
    per ordered pair, exactly as [build] computed before shared-subtree
    memoization existed.  Kept as the differential-testing oracle
    ([equal (build g) (build_reference g)] must always hold) and as the
    "sequential full rebuild" baseline of the compile bench.  Quadratic
    BFS/DFS work: do not call it on large graphs outside benchmarks. *)

val protected : ?domains:int -> ?weight:(Link.t -> float) -> Graph.t -> t
(** [protected g] is the protection-path table: per ordered pair, the
    Suurballe minimum-total-weight link-disjoint pair (default weight:
    hop count) — the shorter path is the primary and the mate is the
    single alternate, so any one link failure leaves the pair routable.
    A pair with no disjoint pair falls back to its minimum-hop path with
    no alternates (protection is impossible there, not the table's
    fault); a disconnected pair has no route.  [h] reports
    [node_count - 1], the bound disjoint mates respect by loop-freedom.
    [domains] (default 1) shards per-source rows across OCaml domains;
    the table is identical for every domain count.
    @raise Invalid_argument when a weight is negative or non-finite. *)

(** {1 Incremental recompilation}

    A link-level topology change invalidates only the ordered pairs
    whose path sets it touches; {!patch} rebuilds exactly those (plus,
    for additions, a provably-safe superset) instead of the whole
    table.  This is what keeps failure storms over 1000-node graphs
    from triggering full recompiles.  Only default-primary (min-hop)
    tables are patchable: the canonical lexicographically-smallest
    min-hop primary depends on the pair's path set alone, which makes
    the affected-pair analysis exact. *)

type change =
  | Add_link of { src : int; dst : int; capacity : int }
      (** a new directed link; its id is [link_count] of the patched
          graph's predecessor (appending keeps existing ids stable) *)
  | Remove_link of { src : int; dst : int }
      (** drops the directed link; surviving link ids are renumbered
          exactly as {!Arnet_topology.Graph.without_links} renumbers
          them, and surviving paths are relocated accordingly *)
  | Set_capacity of { src : int; dst : int; capacity : int }
      (** capacity-only change: affects no route (routing is hop-based),
          the patched table just carries the updated graph *)

val patch : ?domains:int -> t -> change list -> t * int
(** [patch t changes] applies the changes left to right and returns the
    patched table plus the number of ordered-pair entries recomputed.
    The result is {!equal} to a from-scratch [build ~h] on the final
    graph.  [domains] shards the recomputed pairs (grouped by
    destination, sharing one backward BFS per group).
    @raise Invalid_argument when the table was built with a custom
    primary or {!protected}, when a named link is absent (remove /
    capacity) or already present (add), or on bad node indices. *)

val equal : t -> t -> bool
(** Entry-wise equality by {!Path.equal} (node sequences): same [h],
    same primaries, candidates and alternate orders for every pair.
    Link-id numbering is deliberately ignored — a patched table and a
    rebuilt table may number links differently after removals. *)

val graph : t -> Graph.t
val h : t -> int

val primary : t -> src:int -> dst:int -> Path.t
(** @raise Invalid_argument when [src = dst] or no route exists. *)

val has_route : t -> src:int -> dst:int -> bool

val alternates : t -> src:int -> dst:int -> Path.t list
(** Loop-free paths of at most [h] hops, excluding the primary, in
    attempt order. *)

val alternates_excluding : t -> src:int -> dst:int -> Path.t -> Path.t list
(** Alternates when the pair's primary for this particular call is the
    given path (used with bifurcated primaries): all stored candidate
    paths minus that path.  When the excluded path is the table's own
    primary this returns the precomputed list; other exclusions filter
    the candidates on the fly. *)

val alternate_array : t -> src:int -> dst:int -> Path.t array
(** The precomputed table-primary-excluded alternates, in attempt order
    (increasing hops) — same contents as {!alternates}, but the array
    the table already holds, so per-call consumers (the compiled
    controller) iterate it index-wise with zero allocation.  Aliased,
    not copied: treat as read-only.  Empty when the pair has no
    route. *)

val all_paths : t -> src:int -> dst:int -> Path.t list
(** Primary-eligible plus alternate candidates: every loop-free path of at
    most [h] hops, plus the primary even if longer than [h]; sorted by
    increasing length. *)

val max_alternate_hops : t -> int
(** Longest alternate stored in the table — by construction [<= h]. *)

val alternate_count_stats : t -> min:int ref -> max:int ref -> float
(** Average alternate count over connected ordered pairs; also writes the
    min and max (the paper reports avg ~9, max 15, min 5 for NSFNet at
    H = 11). *)

val pp : Format.formatter -> t -> unit
