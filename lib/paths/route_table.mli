(** Precomputed routing tables: one primary path plus ordered alternates
    per ordered O-D pair.

    This is the static product of the paper's two-tier design: the SI
    tier fixes the unique primary path; the SD tier will attempt the
    alternates in the stored order (increasing hop length, as computed in
    a distributed fashion by DALFAR [14] — here centralized but
    identical in result).  An alternate whose hop count exceeds [H] is
    excluded (Section 3.1); primaries are never length-capped
    (Section 3.2: "H has nothing to do with the length of primary
    paths"). *)

open Arnet_topology

type t

val build :
  ?h:int ->
  ?primary:(src:int -> dst:int -> Path.t option) ->
  Graph.t -> t
(** [build ?h ?primary g] computes routes for every ordered pair.

    [h] is the maximum alternate hop length [H]; default: [node_count - 1]
    (unrestricted loop-free, the paper's "H = 11" case on NSFNet).
    [primary] overrides the default deterministic minimum-hop primary —
    use it for bifurcated or custom SI policies (alternates always exclude
    whatever primary path is in force at call time, see
    {!alternates_excluding}).

    @raise Invalid_argument if [h < 1] or some pair has no primary path
    while the graph claims connectivity for it. *)

val protected : ?weight:(Link.t -> float) -> Graph.t -> t
(** [protected g] is the protection-path table: per ordered pair, the
    Suurballe minimum-total-weight link-disjoint pair (default weight:
    hop count) — the shorter path is the primary and the mate is the
    single alternate, so any one link failure leaves the pair routable.
    A pair with no disjoint pair falls back to its minimum-hop path with
    no alternates (protection is impossible there, not the table's
    fault); a disconnected pair has no route.  [h] reports
    [node_count - 1], the bound disjoint mates respect by loop-freedom.
    @raise Invalid_argument when a weight is negative or non-finite. *)

val graph : t -> Graph.t
val h : t -> int

val primary : t -> src:int -> dst:int -> Path.t
(** @raise Invalid_argument when [src = dst] or no route exists. *)

val has_route : t -> src:int -> dst:int -> bool

val alternates : t -> src:int -> dst:int -> Path.t list
(** Loop-free paths of at most [h] hops, excluding the primary, in
    attempt order. *)

val alternates_excluding : t -> src:int -> dst:int -> Path.t -> Path.t list
(** Alternates when the pair's primary for this particular call is the
    given path (used with bifurcated primaries): all stored candidate
    paths minus that path.  When the excluded path is the table's own
    primary this returns the precomputed list; other exclusions filter
    the candidates on the fly. *)

val alternate_array : t -> src:int -> dst:int -> Path.t array
(** The precomputed table-primary-excluded alternates, in attempt order
    (increasing hops) — same contents as {!alternates}, but the array
    the table already holds, so per-call consumers (the compiled
    controller) iterate it index-wise with zero allocation.  Aliased,
    not copied: treat as read-only.  Empty when the pair has no
    route. *)

val all_paths : t -> src:int -> dst:int -> Path.t list
(** Primary-eligible plus alternate candidates: every loop-free path of at
    most [h] hops, plus the primary even if longer than [h]; sorted by
    increasing length. *)

val max_alternate_hops : t -> int
(** Longest alternate stored in the table — by construction [<= h]. *)

val alternate_count_stats : t -> min:int ref -> max:int ref -> float
(** Average alternate count over connected ordered pairs; also writes the
    min and max (the paper reports avg ~9, max 15, min 5 for NSFNet at
    H = 11). *)

val pp : Format.formatter -> t -> unit
