open Arnet_topology

let check g src dst =
  let n = Graph.node_count g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Enumerate.check: bad node index";
  if src = dst then invalid_arg "Enumerate.check: src = dst"

let dfs ?max_hops g ~src ~dst ~visit =
  check g src dst;
  let n = Graph.node_count g in
  let cap = match max_hops with None -> n - 1 | Some h -> min h (n - 1) in
  if cap < 1 then invalid_arg "Enumerate.dfs: max_hops < 1";
  let on_path = Array.make n false in
  let stack = Array.make (cap + 1) 0 in
  let rec explore v depth =
    stack.(depth) <- v;
    if v = dst then visit (Array.sub stack 0 (depth + 1))
    else if depth < cap then begin
      on_path.(v) <- true;
      let step w = if not on_path.(w) && w <> src then explore w (depth + 1) in
      List.iter step (Graph.successors g v);
      on_path.(v) <- false
    end
  in
  explore src 0

let paths_from ?max_hops g ~src =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Enumerate.paths_from: bad node index";
  let cap = match max_hops with None -> n - 1 | Some h -> min h (n - 1) in
  if cap < 1 then invalid_arg "Enumerate.paths_from: max_hops < 1";
  let acc = Array.make n [] in
  let on_path = Array.make n false in
  let stack = Array.make (cap + 1) 0 in
  (* one DFS tree for the whole row: every visited prefix *is* a simple
     path to its endpoint, so each destination's bucket collects exactly
     the set the per-pair [dfs] would have found — at the cost of one
     tree instead of [n - 1] almost-identical ones *)
  let rec explore v depth =
    stack.(depth) <- v;
    if v <> src then
      acc.(v) <- Path.of_nodes_unchecked g (Array.sub stack 0 (depth + 1)) :: acc.(v);
    if depth < cap then begin
      on_path.(v) <- true;
      let step w = if not on_path.(w) && w <> src then explore w (depth + 1) in
      List.iter step (Graph.successors g v);
      on_path.(v) <- false
    end
  in
  explore src 0;
  Array.map (List.sort Path.compare_by_length) acc

let simple_paths ?max_hops g ~src ~dst =
  let acc = ref [] in
  dfs ?max_hops g ~src ~dst ~visit:(fun nodes ->
      acc := Path.of_nodes_unchecked g (Array.copy nodes) :: !acc);
  List.sort Path.compare_by_length !acc

let count_simple_paths ?max_hops g ~src ~dst =
  let count = ref 0 in
  dfs ?max_hops g ~src ~dst ~visit:(fun _ -> incr count);
  !count

let path_census ?max_hops g =
  let n = Graph.node_count g in
  let acc = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then
        acc := (src, dst, count_simple_paths ?max_hops g ~src ~dst) :: !acc
    done
  done;
  !acc
