(** Loop-free directed paths through a {!Arnet_topology.Graph.t}.

    A path is stored as its node sequence; the link sequence is derived
    and cached at construction, so simulators can walk link ids without
    hash lookups. *)

open Arnet_topology

type t = private {
  nodes : int array;  (** node sequence, length [hops + 1] *)
  link_ids : int array;  (** ids of the traversed links, length [hops] *)
}
(** Aliasing invariant: both arrays are logically immutable and are
    shared, never copied — the simulator queues [link_ids] itself as the
    departure payload of every call admitted on the path, and the route
    table hands out the same {!t} values for the lifetime of a run.
    Consumers must treat the arrays as read-only; mutating one corrupts
    every queued departure and routing decision that aliases it. *)

val make : Graph.t -> int list -> t
(** [make g nodes] checks that consecutive nodes are linked in [g] and
    that no node repeats.
    @raise Invalid_argument on a malformed or looping sequence. *)

val of_nodes_unchecked : Graph.t -> int array -> t
(** Trusted constructor for algorithms that already guarantee validity.
    Still resolves (and therefore checks existence of) every link. *)

val hops : t -> int
(** Number of links. *)

val src : t -> int
val dst : t -> int
val nodes : t -> int list
val link_ids : t -> int list

val links : Graph.t -> t -> Link.t list
(** The traversed links, in order. *)

val mem_node : t -> int -> bool
val mem_link : t -> int -> bool

val equal : t -> t -> bool

val compare_by_length : t -> t -> int
(** Orders by hop count first, then lexicographically by node sequence —
    the deterministic "increasing length" order in which alternates are
    attempted. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
