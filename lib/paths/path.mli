(** Loop-free directed paths through a {!Arnet_topology.Graph.t}.

    A path is stored as its node sequence; the link sequence is derived
    and cached at construction, so simulators can walk link ids without
    hash lookups. *)

open Arnet_topology

type t = private {
  nodes : int array;  (** node sequence, length [hops + 1] *)
  link_ids : int array;  (** ids of the traversed links, length [hops] *)
}
(** Aliasing invariant: both arrays are logically immutable and are
    shared, never copied — the simulator queues [link_ids] itself as the
    departure payload of every call admitted on the path, and the route
    table hands out the same {!t} values for the lifetime of a run.
    Consumers must treat the arrays as read-only; mutating one corrupts
    every queued departure and routing decision that aliases it. *)

val make : Graph.t -> int list -> t
(** [make g nodes] checks that consecutive nodes are linked in [g] and
    that no node repeats.
    @raise Invalid_argument on a malformed or looping sequence. *)

val of_nodes_unchecked : Graph.t -> int array -> t
(** Trusted constructor for algorithms that already guarantee validity.
    Still resolves (and therefore checks existence of) every link. *)

val with_link_ids_unchecked : nodes:int array -> link_ids:int array -> t
(** Fully trusted constructor: no graph lookup at all.  The caller owns
    both invariants — [nodes] is a loop-free path and [link_ids.(i)] is
    the id of link [nodes.(i) -> nodes.(i+1)] in whatever graph the path
    will be used against.  Exists for {!Route_table.patch}, which
    relocates surviving paths onto a graph whose link ids were renumbered
    by {!Arnet_topology.Graph.without_links}; both arrays are adopted
    without copying (see the aliasing invariant above).
    @raise Invalid_argument on a length mismatch. *)

val hops : t -> int
(** Number of links. *)

val src : t -> int
val dst : t -> int
val nodes : t -> int list
val link_ids : t -> int list

val links : Graph.t -> t -> Link.t list
(** The traversed links, in order. *)

val mem_node : t -> int -> bool
val mem_link : t -> int -> bool

val equal : t -> t -> bool

val compare_by_length : t -> t -> int
(** Orders by hop count first, then lexicographically by node sequence —
    the deterministic "increasing length" order in which alternates are
    attempted. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
