(** Source-level domain-safety linter behind [arn lint --source].

    The pass parses every [.ml] file under the scanned directories with
    compiler-libs ([Parse.implementation] — no ppx, no build plugin),
    inventories the shared-mutable-state sites each unit allocates at
    module-initialization time, classifies each site by the guard that
    makes (or fails to make) it safe under OCaml 5 domains, and
    intersects the unguarded ones with the set of modules reachable
    from domain-spawning entry points ({!Modgraph}).  Findings are
    ordinary {!Diagnostic} values ([Src] locations, stable [SRC0xx]
    codes) and flow through the same text/JSON renderers and exit-code
    contract as the configuration checks.

    What counts as a site: anything mutable allocated {e outside} a
    function body — top-level [ref]s and [lazy]s, [Hashtbl]/[Buffer]/
    [Queue]/[Stack]/[Bytes]/[Weak] containers, nonempty arrays, record
    values with mutable fields — plus ambient-state mutations such as
    [Random.self_init] or [Printexc.register_printer].  Expressions
    under [fun]/[function] are evaluated per call and are therefore
    worker-local by construction (the {!Arnet_sim.Pool} seed-major
    regeneration idiom); the walk does not descend into them.

    Guards recognized: [Atomic.make] ([SRC101] info), a record carrying
    its own [Mutex.t] field or a site used exclusively inside
    [Mutex.protect]-style applications ([SRC102] info), and
    [Domain.DLS.new_key] ([SRC103] info).  Unguarded sites are errors
    when their unit is domain-reachable and warnings otherwise; every
    finding can only be silenced by a matching {!Allowlist} entry, and
    entries matching nothing are themselves reported ([SRC008]). *)

type kind =
  | Ref_cell
  | Lazy_block
  | Container of string  (** e.g. ["Hashtbl"] *)
  | Array_value
  | Mutable_record of string  (** the record type's name *)
  | Dls_slot
  | Ambient of string  (** the mutating function, e.g. ["Sys.set_signal"] *)

type guard = Unguarded | Atomic | Mutex_protected | Domain_local

type site = {
  file : string;
  line : int;
  modname : string;  (** capitalized unit name *)
  ident : string;
      (** top-level binding holding the site ([Sub.x] inside submodules,
          the ambient function path for {!Ambient} sites, ["_"] for
          unnamed initializers) *)
  kind : kind;
  guard : guard;
}

type unit_info = {
  u_file : string;
  u_modname : string;
  u_sites : site list;
  u_deps : string list;
  u_spawn_entries : string list;
  u_calls : (string * string) list;
  u_error : (int * string) option;
      (** set when the file does not parse ([SRC007]) *)
}

val codes : (string * string) list
(** Every [SRCxxx] code with its one-line meaning — the table behind
    [arn lint --list] and the TUTORIAL. *)

val scan_string : ?filename:string -> string -> unit_info
(** Scan one unit from an in-memory source (tests use this). *)

val scan_file : string -> unit_info

val ml_files_under : string list -> string list
(** Every [.ml] under the given directories, depth-first, skipping
    [_build] and dot-directories, sorted within each directory. *)

val scan_dirs : string list -> unit_info list

val domain_reachable : unit_info list -> string list
(** Module names reachable from domain-spawning entry points, sorted
    (see {!Modgraph.domain_reachable}). *)

val report :
  ?allow:Allowlist.t ->
  ?allow_file:string ->
  unit_info list ->
  Diagnostic.t list
(** Classify every site against the reachability set and the allowlist;
    sorted errors-first.  [allow_file] (default ["lint/allow.sexp"]) is
    only used as the location of [SRC008] stale-entry findings and in
    message texts. *)

val run : ?allow_file:string -> dirs:string list -> unit -> Diagnostic.t list
(** [scan_dirs] + [report], loading the allowlist from [allow_file]
    when given.
    @raise Allowlist.Parse_error on a malformed allowlist.
    @raise Sys_error when a directory or the allowlist cannot be read. *)
