(** The check registry: named static-analysis passes over a routing
    configuration.

    A configuration bundles everything the simulator consumes — the
    topology, the two-tier route table, the traffic matrix and the
    per-link protection levels — plus the optional per-link primary
    loads a deployment might declare instead of deriving them from the
    matrix (Equation 1).  Individual checks tolerate missing pieces:
    a check that needs the matrix reports nothing when no matrix is
    given. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic

type import = {
  coords : (float * float) option array;
      (** per-node [(longitude, latitude)]; length = node count *)
  merged_parallel : int;  (** parallel edges the importer merged *)
  dropped_self_loops : int;  (** self-loop edges the importer dropped *)
}
(** What a topology importer saw in the raw file before sanitising it —
    {!Ingest_check} reports on this, since the merged graph alone can no
    longer show it.  Mirrors the metadata of [Arnet_ingest.Topo.t]
    (kept structural here so analysis does not depend on the ingest
    library). *)

type config = {
  graph : Graph.t;
  routes : Route_table.t option;
  matrix : Matrix.t option;
  reserves : int array option;  (** protection level [r^k] per link id *)
  loads : float array option;
      (** declared primary load [Lambda^k] per link id; when absent,
          checks derive loads from [routes] and [matrix] by Equation 1 *)
  import : import option;
      (** importer metadata; [None] for programmatically built graphs,
          which silences the import checks *)
  regional : bool;
      (** the deployment intends to drive the regional failure model,
          so missing coordinates escalate from info to error *)
}

val config :
  ?routes:Route_table.t ->
  ?matrix:Matrix.t ->
  ?reserves:int array ->
  ?loads:float array ->
  ?import:import ->
  ?regional:bool ->
  Graph.t ->
  config
(** [regional] defaults to [false].
    @raise Invalid_argument when [import] coordinates do not have one
    slot per node. *)

val effective_loads : config -> float array option
(** The declared [loads] when present, otherwise
    [Loads.primary_link_loads routes matrix] when both are available. *)

type t = {
  name : string;  (** short identifier, e.g. ["topology"] *)
  describe : string;  (** one-line summary for [--list] *)
  codes : (string * string) list;
      (** every diagnostic code the check can emit, with a one-line
          meaning — the source of truth behind [arn lint --list], so
          the documented table cannot drift from the registry *)
  run : config -> Diagnostic.t list;
}

val make :
  ?codes:(string * string) list ->
  name:string ->
  describe:string ->
  (config -> Diagnostic.t list) ->
  t

val register : t -> unit
(** Add a check to the global registry.  Re-registering a name replaces
    the previous entry (last registration wins); the built-in checks are
    registered by {!Lint} at module-initialisation time. *)

val registered : unit -> t list
(** All registered checks, in registration order. *)

val find : string -> t option

val run : ?only:string list -> config -> Diagnostic.t list
(** Run the registered checks — all of them, or the [only] named subset —
    and return the combined findings sorted with {!Diagnostic.compare}.
    @raise Invalid_argument when [only] names an unknown check. *)
