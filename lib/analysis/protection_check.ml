open Arnet_topology
open Arnet_paths
open Arnet_core

let loc_of (l : Link.t) =
  Diagnostic.Link { id = l.id; src = l.src; dst = l.dst }

let link_findings ~h (l : Link.t) ~offered ~reserve =
  let loc = loc_of l in
  if reserve < 0 || reserve > l.capacity then
    [
      Diagnostic.error ~code:"prot-range" loc
        (Printf.sprintf "reserve %d outside [0, C = %d]" reserve l.capacity);
    ]
  else if offered <= 0. then
    if reserve = 0 then []
    else
      [
        Diagnostic.warning ~code:"prot-zero-load" loc
          (Printf.sprintf
             "reserve %d on a link with no primary demand: nothing to \
              protect, alternate calls are refused for free"
             reserve);
      ]
  else if l.capacity = 0 then
    (* topology check already reports the unusable link *)
    []
  else
    let minimal = Protection.level ~offered ~capacity:l.capacity ~h in
    if reserve < minimal then
      let ratio = Protection.bound ~offered ~capacity:l.capacity ~reserve in
      [
        Diagnostic.error ~code:"prot-unsafe" loc
          (Printf.sprintf
             "Theorem 1 violated: B(%.4g,%d)/B(%.4g,%d) = %.4g > 1/%d at \
              r = %d (minimal safe r is %d)"
             offered l.capacity offered (l.capacity - reserve) ratio h
             reserve minimal);
      ]
    else if reserve > minimal then
      [
        Diagnostic.error ~code:"prot-not-minimal" loc
          (Printf.sprintf
             "r = %d is not minimal: the Theorem-1 ratio already meets \
              1/%d at r = %d, so the extra %d protected states refuse \
              alternate calls the guarantee would admit"
             reserve h minimal (reserve - minimal));
      ]
    else []

let run (c : Check.config) =
  match (c.reserves, Check.effective_loads c, c.routes) with
  | Some reserves, Some loads, Some routes ->
    let g = c.graph in
    let m = Graph.link_count g in
    if Array.length reserves <> m || Array.length loads <> m then
      [
        Diagnostic.error ~code:"prot-length" Diagnostic.Network
          (Printf.sprintf
             "%d reserves and %d loads for %d links \
              (Protection.levels_of_loads: length mismatch)"
             (Array.length reserves) (Array.length loads) m);
      ]
    else
      let h = Route_table.h routes in
      Graph.fold_links
        (fun l acc ->
          link_findings ~h l ~offered:loads.(l.Link.id)
            ~reserve:reserves.(l.Link.id)
          @ acc)
        g []
  | _ -> []

let check =
  Check.make ~name:"protection"
    ~describe:
      "0 <= r <= C, Theorem-1 ratio <= 1/H at r and > 1/H at r-1 \
       (minimality, cross-checked against Protection.level)"
    ~codes:
      [ ("prot-length", "reserves/loads arrays do not match the link count");
        ("prot-range", "r outside [0, C]");
        ("prot-unsafe", "Theorem-1 ratio > 1/H at r");
        ("prot-not-minimal", "ratio already <= 1/H at a smaller r");
        ("prot-zero-load", "reserve on a link with no primary demand") ]
    run
