let () =
  Check.register Topology_check.check;
  Check.register Ingest_check.check;
  Check.register Route_check.check;
  Check.register Protection_check.check;
  Check.register Traffic_check.check

let run ?only config = Check.run ?only config

let has_errors = List.exists Diagnostic.is_error

let exit_code ?(strict = false) ds =
  if has_errors ds || (strict && ds <> []) then 1 else 0

let summary ds =
  let count sev =
    List.length (List.filter (fun d -> d.Diagnostic.severity = sev) ds)
  in
  let plural n noun =
    Printf.sprintf "%d %s%s" n noun (if n = 1 then "" else "s")
  in
  let errors = count Diagnostic.Error
  and warnings = count Diagnostic.Warning
  and infos = count Diagnostic.Info in
  if errors = 0 && warnings = 0 && infos = 0 then "clean"
  else
    String.concat ", "
      (List.filter_map
         (fun (n, noun) -> if n > 0 then Some (plural n noun) else None)
         [ (errors, "error"); (warnings, "warning"); (infos, "info") ])

let pp_text ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) ds;
  Format.fprintf ppf "%s@." (summary ds)

let to_json = Diagnostic.json_of_list
