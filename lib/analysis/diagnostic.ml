type severity = Error | Warning | Info

type location =
  | Network
  | Node of int
  | Link of { id : int; src : int; dst : int }
  | Pair of { src : int; dst : int }
  | Src of { file : string; line : int }

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
}

let make severity ~code location message = { code; severity; location; message }
let error = make Error
let warning = make Warning
let info = make Info

let severity_label : severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

let severity_rank : severity -> int = function
  | Error -> 0
  | Warning -> 1
  | Info -> 2

(* source spans sort after the network-shaped locations, by file then
   line; the string leg rides in the same tuple so [compare] below
   stays a single lexicographic pass *)
let location_rank = function
  | Network -> (0, 0, 0, "")
  | Node v -> (1, v, 0, "")
  | Link { id; _ } -> (2, id, 0, "")
  | Pair { src; dst } -> (3, src, dst, "")
  | Src { file; line } -> (4, line, 0, file)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = Stdlib.compare (location_rank a.location) (location_rank b.location) in
      if c <> 0 then c else String.compare a.message b.message

let pp_location ppf = function
  | Network -> Format.pp_print_string ppf "network"
  | Node v -> Format.fprintf ppf "node %d" v
  | Link { id; src; dst } -> Format.fprintf ppf "link %d (%d->%d)" id src dst
  | Pair { src; dst } -> Format.fprintf ppf "pair %d->%d" src dst
  | Src { file; line } -> Format.fprintf ppf "%s:%d" file line

let pp ppf d =
  Format.fprintf ppf "%s[%s] %a: %s" (severity_label d.severity) d.code
    pp_location d.location d.message

let to_string d = Format.asprintf "%a" pp d

(* ------------------------------------------------------------------ *)
(* JSON emission *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let location_json = function
  | Network -> {|{"kind": "network"}|}
  | Node v -> Printf.sprintf {|{"kind": "node", "node": %d}|} v
  | Link { id; src; dst } ->
    Printf.sprintf {|{"kind": "link", "id": %d, "src": %d, "dst": %d}|} id src
      dst
  | Pair { src; dst } ->
    Printf.sprintf {|{"kind": "pair", "src": %d, "dst": %d}|} src dst
  | Src { file; line } ->
    Printf.sprintf {|{"kind": "src", "file": "%s", "line": %d}|} (escape file)
      line

let json_of one =
  Printf.sprintf
    {|{"code": "%s", "severity": "%s", "location": %s, "message": "%s"}|}
    (escape one.code)
    (severity_label one.severity)
    (location_json one.location)
    (escape one.message)

let json_of_list ds =
  match ds with
  | [] -> "[]"
  | ds -> "[\n  " ^ String.concat ",\n  " (List.map json_of ds) ^ "\n]"

(* ------------------------------------------------------------------ *)
(* JSON reading — a minimal recursive-descent reader for exactly the
   shape emitted above (objects of strings/ints, arrays of objects).
   Kept dependency-free: the container ships no JSON library. *)

type json =
  | J_string of string
  | J_int of int
  | J_obj of (string * json) list
  | J_arr of json list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail reason = invalid_arg ("Diagnostic.list_of_json: " ^ reason) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c at offset %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> fail "non-ASCII \\u escape"
          | None -> fail "bad \\u escape");
          loop ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected integer";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some i -> i
    | None -> fail "bad integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_string (parse_string ())
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some ('-' | '0' .. '9') -> J_int (parse_int ())
    | _ -> fail (Printf.sprintf "unexpected input at offset %d" !pos)
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (advance (); J_obj [])
    else
      let rec members acc =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((key, v) :: acc)
        | Some '}' ->
          advance ();
          J_obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected , or } in object"
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (advance (); J_arr [])
    else
      let rec elements acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements (v :: acc)
        | Some ']' ->
          advance ();
          J_arr (List.rev (v :: acc))
        | _ -> fail "expected , or ] in array"
      in
      elements []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> invalid_arg ("Diagnostic.list_of_json: missing field " ^ key)

let as_string = function
  | J_string s -> s
  | _ -> invalid_arg "Diagnostic.list_of_json: expected string"

let as_int = function
  | J_int i -> i
  | _ -> invalid_arg "Diagnostic.list_of_json: expected integer"

let severity_of_label : string -> severity = function
  | "error" -> Error
  | "warning" -> Warning
  | "info" -> Info
  | s -> invalid_arg ("Diagnostic.list_of_json: unknown severity " ^ s)

let location_of_json = function
  | J_obj fields -> (
    match as_string (field fields "kind") with
    | "network" -> Network
    | "node" -> Node (as_int (field fields "node"))
    | "link" ->
      Link
        {
          id = as_int (field fields "id");
          src = as_int (field fields "src");
          dst = as_int (field fields "dst");
        }
    | "pair" ->
      Pair { src = as_int (field fields "src"); dst = as_int (field fields "dst") }
    | "src" ->
      Src
        {
          file = as_string (field fields "file");
          line = as_int (field fields "line");
        }
    | k -> invalid_arg ("Diagnostic.list_of_json: unknown location kind " ^ k))
  | _ -> invalid_arg "Diagnostic.list_of_json: location must be an object"

let of_json = function
  | J_obj fields ->
    {
      code = as_string (field fields "code");
      severity = severity_of_label (as_string (field fields "severity"));
      location = location_of_json (field fields "location");
      message = as_string (field fields "message");
    }
  | _ -> invalid_arg "Diagnostic.list_of_json: diagnostic must be an object"

let list_of_json s =
  match parse_json s with
  | J_arr items -> List.map of_json items
  | _ -> invalid_arg "Diagnostic.list_of_json: expected a top-level array"
