type node = {
  name : string;
  file : string;
  deps : string list;
  spawn_entries : string list;
  calls : (string * string) list;
}

type t = { nodes : node list }

let create nodes = { nodes }

let node t name = List.find_opt (fun n -> n.name = name) t.nodes

let mem t name = node t name <> None

(* ------------------------------------------------------------------ *)
(* domain reachability.

   Roots are the compilation units that spawn concurrency themselves
   ([Domain.spawn] / [Thread.create]) plus every unit that calls one of
   a spawner's spawning entry points (today: [Pool.map] from Engine and
   Mr_engine) — the closures those callers build run on worker domains,
   so everything the caller can reference is domain-visible.  The
   reachable set is the downward dependency closure of the roots.

   This over-approximates (a caller's dependency used only on the main
   domain is still marked) and under-approximates in one known way:
   a closure built by module A, passed through module B, and only then
   handed to Pool.map is attributed to B, not A.  Both directions are
   documented in DESIGN.md; the allowlist absorbs the former, code
   review the latter. *)

let spawners t = List.filter (fun n -> n.spawn_entries <> []) t.nodes

let roots t =
  let spawn_mods = spawners t in
  let is_entry_call (m, f) =
    List.exists
      (fun s -> s.name = m && List.mem f s.spawn_entries)
      spawn_mods
  in
  let callers =
    List.filter (fun n -> List.exists is_entry_call n.calls) t.nodes
  in
  List.sort_uniq String.compare
    (List.map (fun n -> n.name) (spawn_mods @ callers))

let domain_reachable t =
  let reached = Hashtbl.create 32 in
  let rec visit name =
    if (not (Hashtbl.mem reached name)) && mem t name then begin
      Hashtbl.add reached name ();
      match node t name with
      | Some n -> List.iter visit n.deps
      | None -> ()
    end
  in
  List.iter visit (roots t);
  List.sort String.compare
    (Hashtbl.fold (fun name () acc -> name :: acc) reached [])

let is_domain_reachable t name = List.mem name (domain_reachable t)
