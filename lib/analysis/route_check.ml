open Arnet_topology
open Arnet_paths

let pair src dst = Diagnostic.Pair { src; dst }

(* Re-run the Path.t constructor checks against the lint graph.  Paths
   in a well-typed table were validated at build time, but against
   *their* graph — linting a table against a different (e.g. degraded)
   topology must catch paths that no longer exist.  The Invalid_argument
   text of Path.make is reused verbatim as the diagnostic message. *)
let path_findings g ~src ~dst ~role p =
  let describe reason =
    Diagnostic.error ~code:"route-malformed-path" (pair src dst)
      (Printf.sprintf "%s path %s: %s" role (Path.to_string p) reason)
  in
  let endpoint_findings =
    if Path.src p = src && Path.dst p = dst then []
    else
      [
        Diagnostic.error ~code:"route-endpoints" (pair src dst)
          (Printf.sprintf "%s path %s does not join %d to %d" role
             (Path.to_string p) src dst);
      ]
  in
  let shape_findings =
    match Path.make g (Path.nodes p) with
    | (_ : Path.t) -> []
    | exception Invalid_argument reason -> [ describe reason ]
  in
  endpoint_findings @ shape_findings

let pair_findings g routes ~dist ~src ~dst =
  let connected = dist.(src).(dst) < max_int in
  if not (Route_table.has_route routes ~src ~dst) then
    if connected then
      [
        Diagnostic.error ~code:"route-missing-primary" (pair src dst)
          "connected ordered pair has no primary path";
      ]
    else []
  else
    let primary = Route_table.primary routes ~src ~dst in
    let alternates = Route_table.alternates routes ~src ~dst in
    let h = Route_table.h routes in
    let primary_findings = path_findings g ~src ~dst ~role:"primary" primary in
    let detour_findings =
      if dist.(src).(dst) < Path.hops primary then
        [
          Diagnostic.info ~code:"route-primary-detour" (pair src dst)
            (Printf.sprintf
               "primary %s takes %d hops where %d suffice (custom SI \
                policy, or a stale table)"
               (Path.to_string primary) (Path.hops primary)
               dist.(src).(dst));
        ]
      else []
    in
    let alt_findings =
      List.concat_map (path_findings g ~src ~dst ~role:"alternate") alternates
    in
    let hop_findings =
      List.filter_map
        (fun p ->
          if Path.hops p > h then
            Some
              (Diagnostic.error ~code:"route-alt-hops" (pair src dst)
                 (Printf.sprintf "alternate %s has %d hops, exceeding H = %d"
                    (Path.to_string p) (Path.hops p) h))
          else None)
        alternates
    in
    let order_findings =
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          if Path.hops a > Path.hops b then
            [
              Diagnostic.error ~code:"route-alt-order" (pair src dst)
                (Printf.sprintf
                   "alternates out of order: %s (%d hops) attempted before \
                    %s (%d hops)"
                   (Path.to_string a) (Path.hops a) (Path.to_string b)
                   (Path.hops b));
            ]
          else sorted rest
        | _ -> []
      in
      sorted alternates
    in
    primary_findings @ detour_findings @ alt_findings @ hop_findings
    @ order_findings

let run (c : Check.config) =
  match c.routes with
  | None -> []
  | Some routes ->
    let g = c.graph in
    let n = Graph.node_count g in
    if Graph.node_count (Route_table.graph routes) <> n then
      [
        Diagnostic.error ~code:"route-graph-mismatch" Diagnostic.Network
          (Printf.sprintf
             "route table built over %d nodes, topology has %d"
             (Graph.node_count (Route_table.graph routes))
             n);
      ]
    else begin
      let dist = Array.init n (fun src -> Bfs.distances g ~src) in
      let acc = ref [] in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then
            acc := pair_findings g routes ~dist ~src ~dst @ !acc
        done
      done;
      !acc
    end

let check =
  Check.make ~name:"routes"
    ~describe:
      "every connected pair has a primary; alternates simple, sorted by \
       hop count and bounded by H"
    ~codes:
      [ ("route-graph-mismatch",
         "route table built over a different node count");
        ("route-missing-primary", "connected ordered pair without a primary");
        ("route-endpoints", "stored path does not join its O-D pair");
        ("route-malformed-path", "path not simple, or uses a nonexistent link");
        ("route-alt-order", "alternates not in nondecreasing hop order");
        ("route-alt-hops", "alternate longer than H");
        ("route-primary-detour",
         "primary longer than min-hop (custom SI policy?)") ]
    run
