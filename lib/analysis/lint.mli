(** The lint driver: run every check over a configuration and render the
    findings.

    Linking this module registers the four built-in checks
    ({!Topology_check}, {!Route_check}, {!Protection_check},
    {!Traffic_check}) in the {!Check} registry; callers can
    {!Check.register} more before invoking {!run}.

    Exit-code contract (mirrored by [arn lint]): [0] when no
    error-severity finding survives (warnings and infos are advisory,
    like compiler warnings without [-warn-error]), [1] when at least one
    error remains — or, under [strict], any finding at all; [2] is
    reserved by the CLI for configurations it cannot even load. *)

val run : ?only:string list -> Check.config -> Diagnostic.t list
(** All findings, sorted errors-first ({!Diagnostic.compare}). *)

val has_errors : Diagnostic.t list -> bool

val exit_code : ?strict:bool -> Diagnostic.t list -> int
(** [0] or [1] per the contract above; [strict] defaults to [false]. *)

val summary : Diagnostic.t list -> string
(** e.g. ["2 errors, 1 warning"] or ["clean"]. *)

val pp_text : Format.formatter -> Diagnostic.t list -> unit
(** One diagnostic per line followed by the summary line. *)

val to_json : Diagnostic.t list -> string
(** The [--format=json] payload: {!Diagnostic.json_of_list} of the
    findings (round-trips through {!Diagnostic.list_of_json}). *)
