(** Findings produced by the static verification pass.

    A diagnostic pins a violated (or suspicious) invariant to a
    location: a link, an ordered O-D pair, a node, the configuration as
    a whole — or, for the source-level domain-safety pass
    ({!Src_check}), a [file:line] span in this repository's own code.
    Codes are stable strings (kebab-case for configuration checks,
    ["SRC0xx"] for source checks) so scripts can filter on them; the
    full table lives in docs/TUTORIAL.md and is printed by
    [arn lint --list]. *)

type severity =
  | Error  (** the Theorem-1 guarantee (or basic well-formedness) is broken *)
  | Warning  (** legal but dangerous — e.g. an overloaded link *)
  | Info  (** noteworthy, no action required *)

type location =
  | Network  (** the configuration as a whole *)
  | Node of int
  | Link of { id : int; src : int; dst : int }
  | Pair of { src : int; dst : int }  (** an ordered O-D pair *)
  | Src of { file : string; line : int }
      (** a source span, as reported by [arn lint --source] *)

type t = {
  code : string;  (** stable kebab-case identifier *)
  severity : severity;
  location : location;
  message : string;  (** human-readable, [Module.function: reason] style *)
}

val error : code:string -> location -> string -> t
val warning : code:string -> location -> string -> t
val info : code:string -> location -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val is_error : t -> bool

val compare : t -> t -> int
(** Orders by severity (errors first), then code, then location — the
    stable report order. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity[code] location: message]. *)

val to_string : t -> string

(** {1 JSON}

    The emitted JSON is an array of objects
    [{"code": ..., "severity": ..., "location": {...}, "message": ...}].
    {!list_of_json} parses exactly that shape back (it is a minimal JSON
    reader, not a general-purpose one), so
    [list_of_json (json_of_list ds) = ds] for every diagnostic list. *)

val json_of_list : t list -> string

val list_of_json : string -> t list
(** @raise Invalid_argument on input that is not in the emitted shape. *)
