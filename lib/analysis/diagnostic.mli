(** Findings produced by the static verification pass.

    A diagnostic pins a violated (or suspicious) configuration invariant
    to a location in the network: a link, an ordered O-D pair, a node, or
    the configuration as a whole.  Codes are stable kebab-case strings
    (e.g. ["prot-not-minimal"]) so scripts can filter on them; the full
    table lives in docs/TUTORIAL.md. *)

type severity =
  | Error  (** the Theorem-1 guarantee (or basic well-formedness) is broken *)
  | Warning  (** legal but dangerous — e.g. an overloaded link *)
  | Info  (** noteworthy, no action required *)

type location =
  | Network  (** the configuration as a whole *)
  | Node of int
  | Link of { id : int; src : int; dst : int }
  | Pair of { src : int; dst : int }  (** an ordered O-D pair *)

type t = {
  code : string;  (** stable kebab-case identifier *)
  severity : severity;
  location : location;
  message : string;  (** human-readable, [Module.function: reason] style *)
}

val error : code:string -> location -> string -> t
val warning : code:string -> location -> string -> t
val info : code:string -> location -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val is_error : t -> bool

val compare : t -> t -> int
(** Orders by severity (errors first), then code, then location — the
    stable report order. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity[code] location: message]. *)

val to_string : t -> string

(** {1 JSON}

    The emitted JSON is an array of objects
    [{"code": ..., "severity": ..., "location": {...}, "message": ...}].
    {!list_of_json} parses exactly that shape back (it is a minimal JSON
    reader, not a general-purpose one), so
    [list_of_json (json_of_list ds) = ds] for every diagnostic list. *)

val json_of_list : t list -> string

val list_of_json : string -> t list
(** @raise Invalid_argument on input that is not in the emitted shape. *)
