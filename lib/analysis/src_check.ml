open Parsetree

(* ------------------------------------------------------------------ *)
(* the inventory *)

type kind =
  | Ref_cell
  | Lazy_block
  | Container of string
  | Array_value
  | Mutable_record of string
  | Dls_slot
  | Ambient of string

type guard = Unguarded | Atomic | Mutex_protected | Domain_local

type site = {
  file : string;
  line : int;
  modname : string;
  ident : string;
  kind : kind;
  guard : guard;
}

type unit_info = {
  u_file : string;
  u_modname : string;
  u_sites : site list;
  u_deps : string list;
  u_spawn_entries : string list;
  u_calls : (string * string) list;
  u_error : (int * string) option;
}

let codes =
  [ ("SRC001", "unguarded top-level ref");
    ("SRC002", "unguarded top-level lazy");
    ("SRC003",
     "unguarded top-level mutable container \
      (Hashtbl/Buffer/Queue/Stack/Bytes/Weak)");
    ("SRC004", "unguarded top-level array");
    ("SRC005", "unguarded top-level value with mutable record fields");
    ("SRC006",
     "ambient-state mutation at module initialization (Random.self_init, \
      Printexc.register_printer, Sys.set_signal, ...)");
    ("SRC007", "source file cannot be parsed");
    ("SRC008", "stale allowlist entry matches no current site");
    ("SRC101", "Atomic-guarded shared site (declare it in the allowlist)");
    ("SRC102", "Mutex-guarded shared site (declare it in the allowlist)");
    ("SRC103", "Domain.DLS slot (declare it in the allowlist)") ]

(* ------------------------------------------------------------------ *)
(* small parsetree helpers *)

let path_of lid = Longident.flatten lid

let rec pat_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pat_name p
  | Ppat_tuple ps -> List.find_map pat_name ps
  | _ -> None

(* module components of a reference: every component but the last names
   a module for value/constructor/field/type paths *)
let module_components ~value comps =
  if not value then comps
  else match List.rev comps with [] | [ _ ] -> [] | _ :: ms -> List.rev ms

let rec has_pair a b = function
  | x :: (y :: _ as rest) -> (x = a && y = b) || has_pair a b rest
  | _ -> false

let is_spawn_path comps =
  has_pair "Domain" "spawn" comps || has_pair "Thread" "create" comps

(* ------------------------------------------------------------------ *)
(* classification tables *)

let allocator = function
  | [ "ref" ] -> Some (Ref_cell, Unguarded)
  | [ "Atomic"; "make" ] -> Some (Ref_cell, Atomic)
  | [ "Domain"; "DLS"; "new_key" ] -> Some (Dls_slot, Domain_local)
  | [ (("Hashtbl" | "Buffer" | "Queue" | "Stack" | "Weak") as m); "create" ]
    ->
    Some (Container m, Unguarded)
  | [ "Bytes"; ("create" | "make") ] -> Some (Container "Bytes", Unguarded)
  | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ] ->
    Some (Array_value, Unguarded)
  | _ -> None

let ambient = function
  | [ "Random"; ("self_init" | "init" | "full_init" | "set_state") ]
  | [ "Printexc"; "register_printer" ]
  | [ "Sys"; "set_signal" ]
  | [ "Callback"; "register" ]
  | [ "at_exit" ] ->
    true
  | _ -> false

(* mutable labels declared by the unit's own record types:
   label -> (type name, a Mutex.t field sits in the same record) *)
let record_labels str =
  let labels = Hashtbl.create 8 in
  let note_decls decls =
    List.iter
      (fun d ->
        match d.ptype_kind with
        | Ptype_record fields ->
          let has_mutex =
            List.exists
              (fun f ->
                match f.pld_type.ptyp_desc with
                | Ptyp_constr ({ txt; _ }, _) ->
                  path_of txt = [ "Mutex"; "t" ]
                | _ -> false)
              fields
          in
          List.iter
            (fun f ->
              if f.pld_mutable = Asttypes.Mutable then
                Hashtbl.replace labels f.pld_name.txt
                  (d.ptype_name.txt, has_mutex))
            fields
        | _ -> ())
      decls
  in
  let rec items str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_type (_, decls) -> note_decls decls
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ }
          ->
          items sub
        | _ -> ())
      str
  in
  items str;
  labels

(* ------------------------------------------------------------------ *)
(* module-initialization-time walk: everything outside a function body
   is evaluated once when the unit is linked, so any mutable value it
   allocates is process-wide.  Expressions under [fun]/[function] are
   per-call and therefore worker-local by construction — the Pool
   idiom — and are not sites. *)

let init_sites ~file ~modname ~labels str =
  let sites = ref [] in
  let add ?(guard = Unguarded) ~loc ~ident kind =
    sites :=
      {
        file;
        line = loc.Location.loc_start.Lexing.pos_lnum;
        modname;
        ident;
        kind;
        guard;
      }
      :: !sites
  in
  let rec walk ~ident e =
    let loc = e.pexp_loc in
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
    | Pexp_lazy _ -> add ~loc ~ident Lazy_block
    | Pexp_array [] -> ()
    | Pexp_array es ->
      add ~loc ~ident Array_value;
      List.iter (walk ~ident) es
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let path = path_of txt in
      match allocator path with
      | Some (kind, guard) -> add ~guard ~loc ~ident kind
      | None ->
        if ambient path then
          add ~loc ~ident:(String.concat "." path)
            (Ambient (String.concat "." path));
        List.iter (fun (_, a) -> walk ~ident a) args)
    | Pexp_apply (f, args) ->
      walk ~ident f;
      List.iter (fun (_, a) -> walk ~ident a) args
    | Pexp_record (fields, base) -> (
      let mutable_of (lid, _) =
        match List.rev (path_of lid.Location.txt) with
        | label :: _ -> Hashtbl.find_opt labels label
        | [] -> None
      in
      match List.find_map mutable_of fields with
      | Some (type_name, has_mutex) ->
        add
          ~guard:(if has_mutex then Mutex_protected else Unguarded)
          ~loc ~ident (Mutable_record type_name)
      | None ->
        List.iter (fun (_, e) -> walk ~ident e) fields;
        Option.iter (walk ~ident) base)
    | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk ~ident vb.pvb_expr) vbs;
      walk ~ident body
    | Pexp_sequence (a, b) ->
      walk ~ident a;
      walk ~ident b
    | Pexp_ifthenelse (c, t, e) ->
      walk ~ident c;
      walk ~ident t;
      Option.iter (walk ~ident) e
    | Pexp_match (e, cases) | Pexp_try (e, cases) ->
      walk ~ident e;
      List.iter
        (fun case ->
          Option.iter (walk ~ident) case.pc_guard;
          walk ~ident case.pc_rhs)
        cases
    | Pexp_tuple es -> List.iter (walk ~ident) es
    | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      Option.iter (walk ~ident) arg
    | Pexp_field (e, _) -> walk ~ident e
    | Pexp_setfield (a, _, b) ->
      walk ~ident a;
      walk ~ident b
    | Pexp_open (_, e)
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_letmodule (_, _, e) ->
      walk ~ident e
    | _ -> ()
  in
  let rec items ~prefix str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let ident =
                prefix ^ Option.value ~default:"_" (pat_name vb.pvb_pat)
              in
              walk ~ident vb.pvb_expr)
            vbs
        | Pstr_eval (e, _) -> walk ~ident:(prefix ^ "_") e
        | Pstr_module
            ({ pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } as mb)
          ->
          let sub_prefix =
            match mb.pmb_name.Location.txt with
            | Some name -> prefix ^ name ^ "."
            | None -> prefix
          in
          items ~prefix:sub_prefix sub
        | _ -> ())
      str
  in
  items ~prefix:"" str;
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* Mutex-guard upgrade: a still-unguarded site whose every use in the
   unit sits inside an argument of a [Mutex.*] application (the
   [Mutex.protect m (fun () -> ...)] idiom) is reclassified as
   Mutex-guarded.  lock/...work.../unlock sequences are not recognized
   — the paper-trail for those belongs in the allowlist. *)

let mutex_guarded_idents str tracked =
  let bare = Hashtbl.create 8 in
  let guarded = Hashtbl.create 8 in
  let depth = ref 0 in
  let count tbl name =
    Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
  in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident name; _ }
            when List.mem name tracked ->
            count (if !depth > 0 then guarded else bare) name
          | Pexp_apply
              (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args)
            when (match path_of txt with
                 | "Mutex" :: _ -> true
                 | _ -> false) ->
            it.Ast_iterator.expr it f;
            incr depth;
            List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args;
            decr depth
          | _ -> default.Ast_iterator.expr it e);
    }
  in
  iter.Ast_iterator.structure iter str;
  List.filter
    (fun name ->
      Hashtbl.mem guarded name && not (Hashtbl.mem bare name))
    tracked

(* ------------------------------------------------------------------ *)
(* full-tree reference collection: module dependency edges, qualified
   value references (for spawn-entry call detection) and the spawning
   top-level bindings themselves *)

let collect_refs str =
  let deps = Hashtbl.create 32 in
  let calls = Hashtbl.create 32 in
  let note ~value lid =
    let comps = path_of lid in
    List.iter
      (fun m ->
        if m <> "" && m.[0] >= 'A' && m.[0] <= 'Z' then
          Hashtbl.replace deps m ())
      (module_components ~value comps);
    if value then
      match List.rev comps with
      | f :: m :: _ -> Hashtbl.replace calls (m, f) ()
      | _ -> ()
  in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } | Pexp_new { txt; _ } ->
            note ~value:true txt
          | Pexp_construct ({ txt; _ }, _) -> note ~value:true txt
          | Pexp_field (_, { txt; _ }) | Pexp_setfield (_, { txt; _ }, _) ->
            note ~value:true txt
          | Pexp_record (fields, _) ->
            List.iter
              (fun ({ Location.txt; _ }, _) -> note ~value:true txt)
              fields
          | _ -> ());
          default.Ast_iterator.expr it e);
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> note ~value:true txt
          | Ppat_record (fields, _) ->
            List.iter
              (fun ({ Location.txt; _ }, _) -> note ~value:true txt)
              fields
          | Ppat_open ({ txt; _ }, _) -> note ~value:false txt
          | _ -> ());
          default.Ast_iterator.pat it p);
      typ =
        (fun it t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; _ }, _) | Ptyp_class ({ txt; _ }, _) ->
            note ~value:true txt
          | _ -> ());
          default.Ast_iterator.typ it t);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; _ } -> note ~value:false txt
          | _ -> ());
          default.Ast_iterator.module_expr it me);
      module_type =
        (fun it mt ->
          (match mt.pmty_desc with
          | Pmty_ident { txt; _ } -> note ~value:false txt
          | _ -> ());
          default.Ast_iterator.module_type it mt);
    }
  in
  iter.Ast_iterator.structure iter str;
  let spawn_in_expr e =
    let found = ref false in
    let spawn_iter =
      {
        default with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } ->
              if is_spawn_path (path_of txt) then found := true
            | _ -> ());
            default.Ast_iterator.expr it e);
      }
    in
    spawn_iter.Ast_iterator.expr spawn_iter e;
    !found
  in
  let spawn_entries =
    List.concat_map
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.filter_map
            (fun vb ->
              match pat_name vb.pvb_pat with
              | Some name when spawn_in_expr vb.pvb_expr -> Some name
              | _ -> None)
            vbs
        | _ -> [])
      str
  in
  let to_list tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  ( List.sort String.compare (to_list deps),
    List.sort compare (to_list calls),
    spawn_entries )

(* ------------------------------------------------------------------ *)
(* per-unit scan *)

let normalize_file file =
  if String.length file > 2 && String.sub file 0 2 = "./" then
    String.sub file 2 (String.length file - 2)
  else file

let modname_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let failed_unit ~file ~modname (line, msg) =
  {
    u_file = file;
    u_modname = modname;
    u_sites = [];
    u_deps = [];
    u_spawn_entries = [];
    u_calls = [];
    u_error = Some (line, msg);
  }

let scan_lexbuf ~file lexbuf =
  let modname = modname_of_file file in
  match Parse.implementation lexbuf with
  | exception exn ->
    let error =
      match exn with
      | Syntaxerr.Error e ->
        ( (Syntaxerr.location_of_error e).Location.loc_start.Lexing.pos_lnum,
          "syntax error" )
      | Lexer.Error (_, loc) ->
        (loc.Location.loc_start.Lexing.pos_lnum, "lexer error")
      | exn -> (1, Printexc.to_string exn)
    in
    failed_unit ~file ~modname error
  | str ->
    let labels = record_labels str in
    let sites = init_sites ~file ~modname ~labels str in
    let unguarded =
      List.filter_map
        (fun s ->
          match (s.guard, s.kind) with
          | Unguarded, (Ref_cell | Container _ | Array_value) ->
            Some s.ident
          | _ -> None)
        sites
    in
    let promoted = mutex_guarded_idents str unguarded in
    let sites =
      List.map
        (fun s ->
          if s.guard = Unguarded && List.mem s.ident promoted then
            { s with guard = Mutex_protected }
          else s)
        sites
    in
    let deps, calls, spawn_entries = collect_refs str in
    {
      u_file = file;
      u_modname = modname;
      u_sites = sites;
      u_deps = deps;
      u_spawn_entries = spawn_entries;
      u_calls = calls;
      u_error = None;
    }

let scan_string ?(filename = "<string>") source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  scan_lexbuf ~file:(normalize_file filename) lexbuf

let scan_file file =
  let file = normalize_file file in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> scan_string ~filename:file source
  | exception Sys_error msg ->
    failed_unit ~file ~modname:(modname_of_file file) (1, msg)

(* ------------------------------------------------------------------ *)
(* repository walk *)

let ml_files_under dirs =
  let rec walk acc dir =
    let entries = Sys.readdir dir in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else if try Sys.is_directory path with Sys_error _ -> false then
          walk acc path
        else if Filename.check_suffix entry ".ml" then path :: acc
        else acc)
      acc entries
  in
  List.rev (List.fold_left walk [] (List.map normalize_file dirs))

let scan_dirs dirs = List.map scan_file (ml_files_under dirs)

(* ------------------------------------------------------------------ *)
(* reporting *)

let graph units =
  Modgraph.create
    (List.map
       (fun u ->
         {
           Modgraph.name = u.u_modname;
           file = u.u_file;
           deps = u.u_deps;
           spawn_entries = u.u_spawn_entries;
           calls = u.u_calls;
         })
       units)

let domain_reachable units = Modgraph.domain_reachable (graph units)

let code_of site =
  match (site.guard, site.kind) with
  | Atomic, _ -> "SRC101"
  | Mutex_protected, _ -> "SRC102"
  | Domain_local, _ -> "SRC103"
  | Unguarded, Ref_cell -> "SRC001"
  | Unguarded, Lazy_block -> "SRC002"
  | Unguarded, Container _ -> "SRC003"
  | Unguarded, Array_value -> "SRC004"
  | Unguarded, Mutable_record _ -> "SRC005"
  | Unguarded, Ambient _ -> "SRC006"
  | Unguarded, Dls_slot -> "SRC103"

let describe_kind = function
  | Ref_cell -> "ref"
  | Lazy_block -> "lazy block"
  | Container m -> m ^ " container"
  | Array_value -> "array"
  | Mutable_record t -> Printf.sprintf "value of mutable record type %s" t
  | Dls_slot -> "Domain.DLS slot"
  | Ambient f -> "call to " ^ f

let guard_label = function
  | Atomic -> "Atomic-guarded"
  | Mutex_protected -> "Mutex-guarded"
  | Domain_local -> "domain-local"
  | Unguarded -> "unguarded"

let report ?(allow = []) ?(allow_file = "lint/allow.sexp") units =
  let g = graph units in
  let reachable = domain_reachable units in
  let is_reachable m = List.mem m reachable in
  let used = Array.make (List.length allow) false in
  let allowed site code =
    let rec find i = function
      | [] -> false
      | entry :: rest ->
        if
          Allowlist.matches entry ~file:site.file ~ident:site.ident
            ~code
        then begin
          used.(i) <- true;
          true
        end
        else find (i + 1) rest
    in
    find 0 allow
  in
  let site_diag site =
    let code = code_of site in
    if allowed site code then None
    else
      let loc = Diagnostic.Src { file = site.file; line = site.line } in
      let shape = describe_kind site.kind in
      match site.guard with
      | Unguarded -> (
        match site.kind with
        | Ambient f ->
          Some
            (Diagnostic.warning ~code loc
               (Printf.sprintf
                  "%s mutates process-wide ambient state at module \
                   initialization; workers inherit it implicitly — declare \
                   the site in %s or move the mutation under an explicit \
                   entry point"
                  f allow_file))
        | _ ->
          if is_reachable site.modname then
            Some
              (Diagnostic.error ~code loc
                 (Printf.sprintf
                    "unguarded top-level %s `%s` is shared mutable state in \
                     domain-reachable module %s (worker closures spawned \
                     through %s can race on it): guard it with Atomic or a \
                     Mutex, move it under Domain.DLS or per-worker \
                     regeneration, or declare it in %s"
                    shape site.ident site.modname
                    (String.concat ", " (Modgraph.roots g))
                    allow_file))
          else
            Some
              (Diagnostic.warning ~code loc
                 (Printf.sprintf
                    "unguarded top-level %s `%s` in module %s is process-wide \
                     mutable state; no domain-spawning entry point reaches it \
                     today, but guard it or declare it in %s before the \
                     sharding work does"
                    shape site.ident site.modname allow_file)))
      | guard ->
        Some
          (Diagnostic.info ~code loc
             (Printf.sprintf
                "%s shared site `%s` (%s) is safe but undeclared: add it to \
                 %s with a reason so the shared-state budget stays explicit"
                (guard_label guard) site.ident shape allow_file))
  in
  let parse_diags =
    List.filter_map
      (fun u ->
        Option.map
          (fun (line, msg) ->
            Diagnostic.error ~code:"SRC007"
              (Diagnostic.Src { file = u.u_file; line })
              (Printf.sprintf "cannot parse %s: %s" u.u_file msg))
          u.u_error)
      units
  in
  let site_diags =
    List.concat_map
      (fun u -> List.filter_map site_diag u.u_sites)
      units
  in
  let stale_diags =
    List.concat
      (List.mapi
         (fun i (entry : Allowlist.entry) ->
           if used.(i) then []
           else
             [ Diagnostic.warning ~code:"SRC008"
                 (Diagnostic.Src { file = allow_file; line = entry.line })
                 (Printf.sprintf
                    "allowlist entry (%s, %s, %s) matches no current site: \
                     the declared shared state is gone — delete the entry"
                    entry.file entry.ident entry.code) ]
         )
         allow)
  in
  List.sort_uniq Diagnostic.compare
    (parse_diags @ site_diags @ stale_diags)

let run ?allow_file ~dirs () =
  let allow =
    match allow_file with
    | Some path -> Allowlist.of_file path
    | None -> []
  in
  let allow_file = Option.value ~default:"lint/allow.sexp" allow_file in
  report ~allow ~allow_file (scan_dirs dirs)
