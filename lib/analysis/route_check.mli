(** Route-table invariants (Sections 3.1–3.2).

    The two-tier scheme needs every connected ordered O-D pair to own a
    unique primary path, and a candidate list of simple (loop-free)
    alternates sorted by nondecreasing hop count and capped at [H] hops.
    Primaries are exempt from the [H] cap ("H has nothing to do with the
    length of primary paths").

    Reported nothing when the configuration carries no route table.

    Codes: [route-graph-mismatch] (E), [route-missing-primary] (E),
    [route-endpoints] (E), [route-malformed-path] (E),
    [route-alt-order] (E), [route-alt-hops] (E),
    [route-primary-detour] (I). *)

val check : Check.t

val run : Check.config -> Diagnostic.t list
