exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

type entry = {
  file : string;
  ident : string;
  code : string;
  reason : string;
  line : int;
}

type t = entry list

(* ------------------------------------------------------------------ *)
(* a tiny s-expression lexer: parens, bare atoms, double-quoted strings
   with backslash escapes (quote, backslash, n), and semicolon-to-end-
   of-line comments.  Kept dependency-free like Diagnostic's JSON
   reader: the container ships no sexp library. *)

type token = Lparen of int | Rparen of int | Atom of int * string

let tokenize s =
  let n = String.length s in
  let line = ref 1 in
  let pos = ref 0 in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  while !pos < n do
    (match s.[!pos] with
    | '\n' ->
      incr line;
      incr pos
    | ' ' | '\t' | '\r' -> incr pos
    | ';' ->
      while !pos < n && s.[!pos] <> '\n' do
        incr pos
      done
    | '(' ->
      push (Lparen !line);
      incr pos
    | ')' ->
      push (Rparen !line);
      incr pos
    | '"' ->
      let start_line = !line in
      let buf = Buffer.create 32 in
      incr pos;
      let closed = ref false in
      while (not !closed) && !pos < n do
        (match s.[!pos] with
        | '"' -> closed := true
        | '\\' ->
          if !pos + 1 >= n then fail start_line "truncated escape in string";
          (match s.[!pos + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | c -> fail start_line (Printf.sprintf "bad escape \\%c" c));
          incr pos
        | '\n' ->
          incr line;
          Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        incr pos
      done;
      if not !closed then fail start_line "unterminated string";
      push (Atom (start_line, Buffer.contents buf))
    | _ ->
      let start = !pos in
      let start_line = !line in
      while
        !pos < n
        && not
             (match s.[!pos] with
             | ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' | '"' -> true
             | _ -> false)
      do
        incr pos
      done;
      push (Atom (start_line, String.sub s start (!pos - start))));
    ()
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* each entry is a list of (key value) pairs:
     ((file lib/sim/engine.ml)
      (ident simulated_calls)
      (code SRC101)
      (reason "why this shared site is safe")) *)

let parse_entry line fields =
  let lookup key =
    match List.assoc_opt key fields with
    | Some v -> v
    | None ->
      fail line (Printf.sprintf "entry is missing the (%s ...) field" key)
  in
  {
    file = lookup "file";
    ident = lookup "ident";
    code = lookup "code";
    reason = lookup "reason";
    line;
  }

let parse_field = function
  | [ Atom (_, key); Atom (_, value) ] -> (key, value)
  | Atom (line, _) :: _ | Lparen line :: _ | Rparen line :: _ ->
    fail line "field must be (key value)"
  | [] -> fail 0 "empty field"

let of_string s =
  let tokens = tokenize s in
  (* recursive descent over exactly two nesting levels: entries of
     fields of atoms *)
  let rec entries acc = function
    | [] -> List.rev acc
    | Lparen line :: rest ->
      let fields, rest = fields line [] rest in
      entries (parse_entry line fields :: acc) rest
    | Rparen line :: _ -> fail line "unmatched )"
    | Atom (line, a) :: _ ->
      fail line (Printf.sprintf "expected ( to open an entry, got %S" a)
  and fields entry_line acc = function
    | Rparen _ :: rest -> (List.rev acc, rest)
    | Lparen line :: rest ->
      let toks, rest = field_tokens line [] rest in
      fields entry_line (parse_field toks :: acc) rest
    | Atom (line, a) :: _ ->
      fail line (Printf.sprintf "expected a (key value) field, got %S" a)
    | [] -> fail entry_line "unterminated entry"
  and field_tokens field_line acc = function
    | Rparen _ :: rest -> (List.rev acc, rest)
    | (Atom _ as t) :: rest -> field_tokens field_line (t :: acc) rest
    | Lparen line :: _ -> fail line "nested ( inside a field"
    | [] -> fail field_line "unterminated field"
  in
  entries [] tokens

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let needs_quoting a =
  a = ""
  || String.exists
       (function
         | ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' | '"' | '\\' -> true
         | _ -> false)
       a

let print_atom a =
  if not (needs_quoting a) then a
  else begin
    let buf = Buffer.create (String.length a + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      a;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_string entries =
  String.concat ""
    (List.map
       (fun e ->
         Printf.sprintf "((file %s)\n (ident %s)\n (code %s)\n (reason %s))\n"
           (print_atom e.file) (print_atom e.ident) (print_atom e.code)
           (print_atom e.reason))
       entries)

let matches entry ~file ~ident ~code =
  entry.file = file && entry.ident = ident && entry.code = code
