(** Traffic-matrix sanity and Equation-1 load consistency.

    The matrix must be the right size, with finite nonnegative demands
    and a zero diagonal (re-verified here even though
    {!Arnet_traffic.Matrix.make} enforces it, for configurations arriving
    from foreign front ends).  When the configuration declares per-link
    primary loads, they must agree with what Equation 1 derives from the
    route table and matrix — protection levels computed from stale loads
    silently void the Theorem-1 guarantee.  Links whose primary demand
    meets or exceeds capacity are flagged: they sit in the regime where
    alternate routing turns metastable (PAPERS.md, Olesker-Taylor), and
    the scheme will protect all of their states.

    Codes: [traffic-size] (E), [traffic-negative] (E),
    [traffic-diagonal] (E), [traffic-load-mismatch] (E),
    [traffic-overload] (W). *)

val check : Check.t

val run : Check.config -> Diagnostic.t list

val load_tolerance : float
(** Relative tolerance (on [max target 1.0]) above which declared and
    derived link loads count as mismatched. *)
