(** The checked-in shared-state allowlist read by [arn lint --source].

    Every intentional shared-mutable-state site the {!Src_check} pass
    finds must be declared here with a reason, so the shared-state
    budget of the codebase is explicit (DESIGN.md, "shared-state
    budget").  The file format is a sequence of s-expressions:

    {v
    ; engine.ml's process-wide benchmark odometer
    ((file lib/sim/engine.ml)
     (ident simulated_calls)
     (code SRC101)
     (reason "Atomic counter; racy reads only feed calls/sec reporting"))
    v}

    [file] is the path as scanned (repo-relative), [ident] the top-level
    binding (or the ambient function path for SRC006 sites), [code] the
    diagnostic the entry suppresses, and [reason] a one-line
    justification.  Entries that match no current site are themselves
    reported (SRC008), so the list cannot rot. *)

type entry = {
  file : string;
  ident : string;
  code : string;
  reason : string;
  line : int;  (** where the entry starts in the allowlist file *)
}

type t = entry list

exception Parse_error of int * string
(** Line number and reason, like {!Arnet_serial.Spec.Parse_error}. *)

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_file : string -> t
(** @raise Parse_error on malformed input, [Sys_error] on I/O. *)

val to_string : t -> string
(** Renders entries back in the canonical shape ([line] fields are not
    preserved); [of_string (to_string t)] equals [t] up to lines. *)

val matches : entry -> file:string -> ident:string -> code:string -> bool
