(** Import hygiene: findings about what a topology file contained
    before the importer sanitised it.

    The importer merges parallel edges, drops self-loops and tolerates
    missing coordinates, so the resulting graph always passes the
    structural {!Topology_check}s those raw defects would trip.  This
    check reads the {!Check.config.import} metadata instead and reports
    what was cleaned up — and, when the configuration declares the
    regional failure model ({!Check.config.regional}), escalates missing
    coordinates to errors, since that model needs planar positions for
    every node.  Silent when the configuration carries no import
    metadata. *)

val check : Check.t
(** Registered as ["import"] by {!Lint}. *)
