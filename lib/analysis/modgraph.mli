(** The module dependency graph behind the domain-reachability half of
    {!Src_check}.

    Each node is one scanned compilation unit; edges point at the
    modules it references.  A unit is {e domain-reachable} when worker
    code spawned through OCaml domains (or threads) can execute it:
    the unit spawns itself, calls a spawning entry point such as
    [Pool.map], or is in the dependency closure of one that does.
    Shared-mutable-state sites found by {!Src_check} in a
    domain-reachable unit are errors; elsewhere they are warnings
    (process-wide state is still worth declaring before the sharding
    work in ROADMAP.md makes it reachable). *)

type node = {
  name : string;  (** capitalized unit name, e.g. ["Engine"] *)
  file : string;
  deps : string list;  (** referenced module names, resolved or not *)
  spawn_entries : string list;
      (** top-level functions whose bodies call [Domain.spawn] or
          [Thread.create]; nonempty marks the unit a spawner *)
  calls : (string * string) list;
      (** qualified value references, e.g. [("Pool", "map")] *)
}

type t

val create : node list -> t
val mem : t -> string -> bool

val roots : t -> string list
(** Spawner units plus direct callers of their spawning entries,
    sorted. *)

val domain_reachable : t -> string list
(** The dependency closure of {!roots}, restricted to scanned units,
    sorted. *)

val is_domain_reachable : t -> string -> bool
