(** Topology well-formedness.

    The graph type already rejects most malformed inputs at construction
    ({!Arnet_topology.Graph.create} raises), but configurations can reach
    the lint pass from other front ends (file specs, generated code), and
    some legal graphs are still unusable by the paper's model — links of
    capacity zero, asymmetric edges, partitioned topologies.  This pass
    re-verifies everything statically and reports instead of raising.

    Codes: [topo-capacity] (E), [topo-self-loop] (E),
    [topo-duplicate-link] (E), [topo-disconnected] (E),
    [topo-asymmetric] (W), [topo-no-links] (W). *)

val check : Check.t

val run : Check.config -> Diagnostic.t list
(** [run] is [check.run]. *)
