open Arnet_topology

let counter_findings (i : Check.import) =
  let finding code count what =
    if count = 0 then []
    else
      [ Diagnostic.warning ~code Diagnostic.Network
          (Printf.sprintf
             "the source file had %d %s%s; the importer %s" count what
             (if count = 1 then "" else "s")
             (if code = "import-parallel-edge" then
                "merged them, summing capacities"
              else "dropped them")) ]
  in
  finding "import-parallel-edge" i.Check.merged_parallel "parallel edge"
  @ finding "import-self-loop" i.Check.dropped_self_loops "self-loop edge"

let coord_findings (c : Check.config) (i : Check.import) =
  let missing = ref [] in
  Array.iteri
    (fun v coord -> if coord = None then missing := v :: !missing)
    i.Check.coords;
  List.rev_map
    (fun v ->
      let msg =
        Printf.sprintf "node %s has no coordinates%s" (Graph.label c.graph v)
          (if c.Check.regional then
             ": the regional failure model needs a planar position for \
              every node"
           else "")
      in
      if c.Check.regional then
        Diagnostic.error ~code:"import-no-coords" (Diagnostic.Node v) msg
      else Diagnostic.info ~code:"import-no-coords" (Diagnostic.Node v) msg)
    !missing

let isolation_findings (c : Check.config) =
  let g = c.Check.graph in
  let acc = ref [] in
  for v = Graph.node_count g - 1 downto 0 do
    if Graph.degree_out g v = 0 && Graph.degree_in g v = 0 then
      acc :=
        Diagnostic.warning ~code:"import-isolated-node" (Diagnostic.Node v)
          (Printf.sprintf
             "node %s has no links at all: every pair involving it is \
              unroutable"
             (Graph.label g v))
        :: !acc
  done;
  !acc

let run (c : Check.config) =
  match c.Check.import with
  | None -> []
  | Some i -> counter_findings i @ coord_findings c i @ isolation_findings c

let check =
  Check.make ~name:"import"
    ~describe:
      "import hygiene: merged parallel edges, dropped self-loops, \
       isolated nodes, missing coordinates (errors under --regional)"
    ~codes:
      [ ("import-parallel-edge",
         "the source file had parallel edges; the importer merged them");
        ("import-self-loop",
         "the source file had self-loop edges; the importer dropped them");
        ("import-isolated-node", "an imported node has no links at all");
        ("import-no-coords",
         "a node lacks coordinates (error when the regional failure \
          model is requested)") ]
    run
