open Arnet_topology

let loc_of (l : Link.t) =
  Diagnostic.Link { id = l.id; src = l.src; dst = l.dst }

let capacity_findings g =
  Graph.fold_links
    (fun l acc ->
      if l.Link.capacity < 0 then
        (* same guard as Link.make — unreachable through the API, but a
           foreign front end could produce it *)
        Diagnostic.error ~code:"topo-capacity" (loc_of l)
          "Link.make: negative capacity"
        :: acc
      else if l.Link.capacity = 0 then
        Diagnostic.error ~code:"topo-capacity" (loc_of l)
          "zero capacity: the link can carry no calls, every path through \
           it is permanently blocked"
        :: acc
      else acc)
    g []

let self_loop_findings g =
  Graph.fold_links
    (fun l acc ->
      if l.Link.src = l.Link.dst then
        Diagnostic.error ~code:"topo-self-loop" (loc_of l) "Link.make: self-loop"
        :: acc
      else acc)
    g []

let duplicate_findings g =
  let seen = Hashtbl.create 16 in
  Graph.fold_links
    (fun l acc ->
      let key = (l.Link.src, l.Link.dst) in
      if Hashtbl.mem seen key then
        Diagnostic.error ~code:"topo-duplicate-link" (loc_of l)
          "Graph.create: duplicate directed link"
        :: acc
      else begin
        Hashtbl.add seen key ();
        acc
      end)
    g []

let symmetry_findings g =
  Graph.fold_links
    (fun l acc ->
      match Graph.find_link g ~src:l.Link.dst ~dst:l.Link.src with
      | None ->
        Diagnostic.warning ~code:"topo-asymmetric" (loc_of l)
          (Printf.sprintf
             "no reverse link %d->%d: the paper models every edge as a \
              pair of opposite unidirectional links"
             l.Link.dst l.Link.src)
        :: acc
      | Some r when r.Link.capacity <> l.Link.capacity ->
        Diagnostic.warning ~code:"topo-asymmetric" (loc_of l)
          (Printf.sprintf "reverse link has capacity %d, this one %d"
             r.Link.capacity l.Link.capacity)
        :: acc
      | Some _ -> acc)
    g []

let connectivity_findings g =
  let n = Graph.node_count g in
  if n <= 1 then []
  else if Graph.link_count g = 0 then
    [
      Diagnostic.warning ~code:"topo-no-links" Diagnostic.Network
        "the graph has no links at all";
    ]
  else if Graph.is_strongly_connected g then []
  else
    [
      Diagnostic.error ~code:"topo-disconnected" Diagnostic.Network
        "not strongly connected: some ordered O-D pairs have no path, so \
         no route table can cover every pair";
    ]

let run (c : Check.config) =
  let g = c.graph in
  capacity_findings g @ self_loop_findings g @ duplicate_findings g
  @ symmetry_findings g @ connectivity_findings g

let check =
  Check.make ~name:"topology"
    ~describe:
      "positive capacities, no self-loops or duplicate links, strong \
       connectivity, reverse-link symmetry"
    ~codes:
      [ ("topo-capacity", "link capacity is zero or negative");
        ("topo-self-loop", "link with src = dst");
        ("topo-duplicate-link", "two links share an ordered node pair");
        ("topo-disconnected", "graph not strongly connected");
        ("topo-asymmetric", "link without an equal-capacity reverse twin");
        ("topo-no-links", "graph has no links at all") ]
    run
