open Arnet_topology
open Arnet_paths
open Arnet_traffic

type import = {
  coords : (float * float) option array;
  merged_parallel : int;
  dropped_self_loops : int;
}

type config = {
  graph : Graph.t;
  routes : Route_table.t option;
  matrix : Matrix.t option;
  reserves : int array option;
  loads : float array option;
  import : import option;
  regional : bool;
}

let config ?routes ?matrix ?reserves ?loads ?import ?(regional = false) graph =
  (match import with
  | Some i when Array.length i.coords <> Graph.node_count graph ->
    invalid_arg "Check.config: import coords length <> node count"
  | _ -> ());
  { graph; routes; matrix; reserves; loads; import; regional }

let effective_loads c =
  match c.loads with
  | Some _ as l -> l
  | None -> (
    match (c.routes, c.matrix) with
    | Some routes, Some matrix
      when Matrix.nodes matrix = Graph.node_count c.graph ->
      Some (Loads.primary_link_loads routes matrix)
    | _ -> None)

type t = {
  name : string;
  describe : string;
  codes : (string * string) list;
  run : config -> Diagnostic.t list;
}

let make ?(codes = []) ~name ~describe run = { name; describe; codes; run }

let registry : t list ref = ref []

let register check =
  registry := List.filter (fun c -> c.name <> check.name) !registry @ [ check ]

let registered () = !registry
let find name = List.find_opt (fun c -> c.name = name) !registry

let run ?only config =
  let checks =
    match only with
    | None -> !registry
    | Some names ->
      List.map
        (fun name ->
          match find name with
          | Some c -> c
          | None -> invalid_arg ("Check.run: unknown check " ^ name))
        names
  in
  List.concat_map (fun c -> c.run config) checks
  |> List.sort_uniq Diagnostic.compare
