open Arnet_topology
open Arnet_traffic

let load_tolerance = 1e-6

let loc_of (l : Link.t) =
  Diagnostic.Link { id = l.id; src = l.src; dst = l.dst }

let entry_findings matrix =
  let off_diagonal =
    Matrix.fold matrix ~init:[] ~f:(fun acc i j d ->
        if Float.is_nan d || not (Float.is_finite d) || d < 0. then
          Diagnostic.error ~code:"traffic-negative"
            (Diagnostic.Pair { src = i; dst = j })
            (Printf.sprintf
               "demand %g is not a finite nonnegative Erlang load" d)
          :: acc
        else acc)
  in
  let diagonal = ref [] in
  for v = 0 to Matrix.nodes matrix - 1 do
    if Matrix.get matrix v v <> 0. then
      diagonal :=
        Diagnostic.error ~code:"traffic-diagonal" (Diagnostic.Node v)
          (Printf.sprintf "self-demand %g; the diagonal must be zero"
             (Matrix.get matrix v v))
        :: !diagonal
  done;
  off_diagonal @ !diagonal

let mismatch_findings g ~declared ~derived =
  Graph.fold_links
    (fun l acc ->
      let target = derived.(l.Link.id) and got = declared.(l.Link.id) in
      let rel = Float.abs (got -. target) /. Float.max target 1.0 in
      if rel > load_tolerance then
        Diagnostic.error ~code:"traffic-load-mismatch" (loc_of l)
          (Printf.sprintf
             "declared primary load %.6g, but Equation 1 derives %.6g from \
              the route table and matrix (relative error %.2g)"
             got target rel)
        :: acc
      else acc)
    g []

let overload_findings g loads =
  Graph.fold_links
    (fun l acc ->
      let lambda = loads.(l.Link.id) in
      if lambda >= float_of_int l.Link.capacity && l.Link.capacity > 0 then
        Diagnostic.warning ~code:"traffic-overload" (loc_of l)
          (Printf.sprintf
             "primary demand %.4g Erlangs meets or exceeds capacity %d: \
              the link will protect every state and refuse all alternate \
              calls"
             lambda l.Link.capacity)
        :: acc
      else acc)
    g []

let run (c : Check.config) =
  match c.matrix with
  | None -> (
    (* no matrix: declared loads can still flag overloads *)
    match c.loads with
    | Some loads when Array.length loads = Graph.link_count c.graph ->
      overload_findings c.graph loads
    | _ -> [])
  | Some matrix ->
    if Matrix.nodes matrix <> Graph.node_count c.graph then
      [
        Diagnostic.error ~code:"traffic-size" Diagnostic.Network
          (Printf.sprintf "matrix covers %d nodes, topology has %d"
             (Matrix.nodes matrix)
             (Graph.node_count c.graph));
      ]
    else
      let entries = entry_findings matrix in
      let m = Graph.link_count c.graph in
      let derived =
        match c.routes with
        | Some routes -> Some (Loads.primary_link_loads routes matrix)
        | None -> None
      in
      let mismatches =
        match (c.loads, derived) with
        | Some declared, Some derived when Array.length declared = m ->
          mismatch_findings c.graph ~declared ~derived
        | _ -> []
      in
      let overloads =
        match Check.effective_loads c with
        | Some loads when Array.length loads = m ->
          overload_findings c.graph loads
        | _ -> []
      in
      entries @ mismatches @ overloads

let check =
  Check.make ~name:"traffic"
    ~describe:
      "finite nonnegative demands, zero diagonal, declared loads agree \
       with Equation 1, overloaded links flagged"
    ~codes:
      [ ("traffic-size", "matrix node count differs from the graph");
        ("traffic-negative", "demand negative, NaN or infinite");
        ("traffic-diagonal", "nonzero self-demand");
        ("traffic-load-mismatch", "declared loads disagree with Equation 1");
        ("traffic-overload", "primary demand at or above link capacity") ]
    run
