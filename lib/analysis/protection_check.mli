(** Protection-level invariants (Section 3.1, Theorem 1).

    For every link [k] carrying primary demand [Lambda^k]: the reserve
    must lie in [0 <= r^k <= C^k], the Theorem-1 ratio
    [B(Lambda^k, C^k) / B(Lambda^k, C^k - r^k)] must be [<= 1/H] at
    [r^k] (otherwise one accepted alternate call can displace more than
    [1/H] primary calls in expectation — the guarantee is void), and
    [> 1/H] at [r^k - 1] (otherwise [r^k] is not minimal and the scheme
    refuses alternate traffic it could safely carry).  Both directions
    are cross-checked against {!Arnet_core.Protection.level}.  Links with
    no primary demand must carry [r = 0] — there is nothing to protect.

    Requires reserves plus loads (declared, or derivable from routes and
    matrix); reports nothing when they are absent.  [H] is taken from
    the route table.

    Codes: [prot-length] (E), [prot-range] (E), [prot-unsafe] (E),
    [prot-not-minimal] (E), [prot-zero-load] (W). *)

val check : Check.t

val run : Check.config -> Diagnostic.t list
