(** Bounded in-memory event buffer.

    Keeps the most recent [capacity] events — the "flight recorder" for
    interactive debugging: run with a ring attached, then inspect the
    tail of the stream after something interesting happens.  Constant
    memory regardless of run length. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val push : t -> Event.t -> unit
(** O(1); evicts the oldest event once full. *)

val sink : t -> Sink.t

val contents : t -> Event.t list
(** Oldest first; at most [capacity] events. *)

val capacity : t -> int
val length : t -> int
(** Events currently held. *)

val seen : t -> int
(** Total events ever pushed. *)

val dropped : t -> int
(** [seen - length]: how many fell off the back. *)

val clear : t -> unit
