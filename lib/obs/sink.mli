(** Pluggable consumers of the event stream.

    A sink is where emitted {!Event.t}s go: an in-memory {!Ring}, a
    {!Jsonl} file writer, an aggregating {!Counters}, a {!Metrics_sink}
    registry feed — or several at once via {!tee}.  The simulator side
    only ever sees the bare [emit] function ({!observer}), so the engine
    hot path stays a single closure call. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;  (** push buffered output downstream *)
  close : unit -> unit;  (** flush and release resources; idempotent *)
}

val make :
  ?flush:(unit -> unit) -> ?close:(unit -> unit) -> (Event.t -> unit) -> t
(** [flush] and [close] default to no-ops. *)

val null : t
(** Discards everything. *)

val tee : t list -> t
(** Broadcast each event to every sink, in order. *)

val filter : (Event.t -> bool) -> t -> t
(** Forward only events satisfying the predicate. *)

val observer : t -> Event.t -> unit
(** The emission function, in the shape the engine's [?observer]
    parameter expects. *)

val emit : t -> Event.t -> unit
val flush : t -> unit
val close : t -> unit
