(** JSON-lines trace files: one {!Event.t} per line.

    The durable form of the event stream — [arn simulate --trace]
    writes one, [arn trace summarize] folds one back.  Writing is
    line-buffered through the channel; reading is streaming, so
    arbitrarily long traces summarize in constant memory. *)

val sink_of_channel : ?close_channel:bool -> out_channel -> Sink.t
(** Events append as single lines.  [Sink.close] flushes, and closes
    the channel when [close_channel] (default false). *)

val sink_of_file : string -> Sink.t
(** Truncate-open [path]; [Sink.close] closes it. *)

val write_event : out_channel -> Event.t -> unit

val fold_file :
  string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** Fold over every event in the file, in order; blank lines are
    skipped.
    @raise Jsonu.Parse_error (prefixed with [path:line]) on a malformed
    line.
    @raise Sys_error when the file cannot be read. *)

val read_file : string -> Event.t list
(** Materialize a whole trace (tests and small files). *)
