(** The typed simulation event stream.

    One event per observable step of the call-by-call simulator: the
    engine emits call lifecycle events (arrival, admit, block,
    departure) plus per-run framing records, and the routing controller
    emits decision detail (the primary attempt and every alternate path
    refused by trunk reservation, with the offending link, its
    occupancy and the [C - r] threshold that refused it).

    Events serialize to one flat JSON object per event — the JSONL
    trace format consumed by [arn trace summarize] — and parse back
    losslessly. *)

type t =
  | Run_start of {
      policy : string;  (** routing policy name for this run *)
      warmup : float;  (** statistics window start, as passed to the engine *)
      duration : float;  (** trace duration *)
      nodes : int;
      links : int;
    }  (** Frames the start of one engine run inside a shared stream. *)
  | Arrival of { time : float; src : int; dst : int; holding : float }
  | Primary_attempt of {
      time : float;
      src : int;
      dst : int;
      hops : int;  (** primary path length *)
      admitted : bool;  (** false when some primary link was full *)
    }
  | Alternate_rejected of {
      time : float;
      src : int;
      dst : int;
      hops : int;  (** length of the refused alternate *)
      link : int;  (** first link that refused the call *)
      occupancy : int;  (** its occupancy at decision time *)
      threshold : int;
          (** the trunk-reservation bar [capacity - reserve]; the call
              was refused because [occupancy >= threshold] *)
    }
  | Admit of {
      time : float;
      src : int;
      dst : int;
      hops : int;
      primary : bool;  (** carried on the primary (vs an alternate) path *)
      links : int array;  (** link ids now holding one more circuit *)
    }
  | Block of { time : float; src : int; dst : int }
  | Departure of { time : float; links : int array }
  | Run_end of { time : float; calls : int }
      (** [calls] = total arrivals replayed (including warm-up). *)

val kind : t -> string
(** Stable snake_case tag, also the JSON "ev" field. *)

val kinds : string list
(** Every tag, in declaration order. *)

val time : t -> float
(** Event timestamp in simulated time; 0 for [Run_start]. *)

val to_json : t -> Jsonu.t
val to_json_string : t -> string

val of_json : Jsonu.t -> t
val of_json_string : string -> t
(** @raise Jsonu.Parse_error on malformed or unknown-kind input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
