type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let make ?(flush = fun () -> ()) ?(close = fun () -> ()) emit =
  { emit; flush; close }

let null = make (fun _ -> ())

let tee sinks =
  {
    emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let filter pred sink =
  { sink with emit = (fun ev -> if pred ev then sink.emit ev) }

let observer sink = sink.emit
let emit sink ev = sink.emit ev
let flush sink = sink.flush ()
let close sink = sink.close ()
