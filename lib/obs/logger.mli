(** A leveled structured logger for the long-running components (the
    admission daemon, the load generator) — the replacement for ad-hoc
    [Printf.eprintf] scattered through them.

    Two output formats over one call site: [Text] for a human tail
    ([2026-08-07T12:00:00.000Z INFO listening addr=tcp:...]) and
    [Jsonl] for machine consumption (one JSON object per line, fields
    inline).  Every line is flushed as it is written, so logs survive a
    kill.  The logger is plain synchronous output on the daemon's
    single thread — no buffering task, no locks. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)

type format = Text | Jsonl

type t

val create :
  ?level:level -> ?format:format -> ?clock:(unit -> float) -> out_channel -> t
(** [create chan] logs lines at or above [level] (default [Info]) to
    [chan] in [format] (default [Text]).  [clock] (default
    [Unix.gettimeofday]) stamps each line — injectable for
    deterministic tests. *)

val null : t
(** Drops everything; the default wherever a logger is optional. *)

val enabled : t -> level -> bool
(** Whether a line at [level] would be written — guard any expensive
    field construction with this. *)

val log : t -> level -> ?fields:(string * Jsonu.t) list -> string -> unit
(** One line: timestamp, level, message, then [fields] (rendered
    [k=v] in text, inline members in JSONL). *)

val debug : t -> ?fields:(string * Jsonu.t) list -> string -> unit
val info : t -> ?fields:(string * Jsonu.t) list -> string -> unit
val warn : t -> ?fields:(string * Jsonu.t) list -> string -> unit
val error : t -> ?fields:(string * Jsonu.t) list -> string -> unit
