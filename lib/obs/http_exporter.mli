(** The pure half of the daemon's telemetry endpoint: HTTP/1.0 request
    parsing, routing and response rendering, with no sockets and no
    dependencies.

    The socket half lives in the daemon's existing [Unix.select] loop
    (lib/service); this module only decides, given the request line of
    an incoming connection and a route table of body producers, which
    bytes to answer.  Responses are always [Connection: close] with an
    exact [Content-Length] — one request per connection, the simplest
    protocol a scraper (curl, Prometheus) needs. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

val text_content_type : string

val prometheus_content_type : string
(** [text/plain; version=0.0.4; charset=utf-8] — the exposition-format
    content type scrapers key on. *)

val json_content_type : string

val ok : content_type:string -> string -> response
val bad_request : string -> response
val not_found : string -> response
val method_not_allowed : string -> response

val parse_request_line : string -> (string * string, string) result
(** [Ok (method, target)] for a well-formed [METHOD TARGET HTTP/x.y]
    line of printable ASCII; [Error detail] otherwise (the detail goes
    into the 400 body). *)

val path_of_target : string -> string
(** Strips [?query] and [#fragment]. *)

val handle :
  routes:(string * (unit -> string * string)) list -> string -> response
(** Dispatch one request line.  [routes] maps a path to a producer
    returning [(content_type, body)], evaluated only when that path is
    hit.  Malformed line → 400; non-GET/HEAD method → 405; unknown
    path → 404; HEAD answers with an empty body and the GET headers. *)

val render : response -> string
(** The bytes on the wire: status line, [Content-Type],
    [Content-Length], [Connection: close], blank line, body. *)
