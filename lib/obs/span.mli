(** Wall-clock phase timing.

    A span measures one named phase of real (not simulated) time — an
    experiment section, a benchmark run, a route-table build.  Spans
    carry optional metadata (calls simulated, items processed) and
    serialize to JSON, which is how [bench/main.exe] populates
    [BENCH_2.json] with the perf trajectory. *)

type t

val monotonic : unit -> unit -> float
(** [monotonic ()] is a fresh non-decreasing clock: [Unix.gettimeofday]
    clamped to its own high-water mark, the dependency-free stand-in
    for [CLOCK_MONOTONIC].  A wall-clock step backwards reads as a
    zero-length interval, never a negative one.  Each clock carries its
    own state — create one per measuring site. *)

val start : string -> t
(** Starts timing immediately ([Unix.gettimeofday]). *)

val stop : t -> float
(** Freeze and return the duration in seconds.  Idempotent: later calls
    return the first recorded duration. *)

val elapsed : t -> float
(** Seconds so far (or the frozen duration once stopped). *)

val name : t -> string
val finished : t -> bool

val set_meta : t -> string -> Jsonu.t -> unit
(** Attach a metadata field (replacing any previous value for the key);
    appears in {!to_json}. *)

val to_json : t -> Jsonu.t
(** [{"name": ..., "wall_s": ..., <meta fields>}]. *)

(** {1 Recording several phases} *)

type recorder

val recorder : unit -> recorder

val record : recorder -> string -> (unit -> 'a) -> 'a
(** Time [f] under the given name; the span is recorded even when [f]
    raises. *)

val note : recorder -> t -> unit
(** Add an externally managed span. *)

val spans : recorder -> t list
(** In recording order. *)

val recorder_to_json : recorder -> Jsonu.t
